file(REMOVE_RECURSE
  "CMakeFiles/hoard_planner.dir/hoard_planner.cpp.o"
  "CMakeFiles/hoard_planner.dir/hoard_planner.cpp.o.d"
  "hoard_planner"
  "hoard_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoard_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
