# Empty dependencies file for hoard_planner.
# This may be replaced when dependencies are built.
