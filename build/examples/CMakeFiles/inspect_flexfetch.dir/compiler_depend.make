# Empty compiler generated dependencies file for inspect_flexfetch.
# This may be replaced when dependencies are built.
