file(REMOVE_RECURSE
  "CMakeFiles/inspect_flexfetch.dir/inspect_flexfetch.cpp.o"
  "CMakeFiles/inspect_flexfetch.dir/inspect_flexfetch.cpp.o.d"
  "inspect_flexfetch"
  "inspect_flexfetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_flexfetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
