file(REMOVE_RECURSE
  "CMakeFiles/roaming_user.dir/roaming_user.cpp.o"
  "CMakeFiles/roaming_user.dir/roaming_user.cpp.o.d"
  "roaming_user"
  "roaming_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
