# Empty dependencies file for roaming_user.
# This may be replaced when dependencies are built.
