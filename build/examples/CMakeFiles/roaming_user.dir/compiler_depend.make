# Empty compiler generated dependencies file for roaming_user.
# This may be replaced when dependencies are built.
