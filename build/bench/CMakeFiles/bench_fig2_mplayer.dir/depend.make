# Empty dependencies file for bench_fig2_mplayer.
# This may be replaced when dependencies are built.
