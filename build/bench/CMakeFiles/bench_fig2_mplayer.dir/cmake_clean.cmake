file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_mplayer.dir/bench_fig2_mplayer.cpp.o"
  "CMakeFiles/bench_fig2_mplayer.dir/bench_fig2_mplayer.cpp.o.d"
  "bench_fig2_mplayer"
  "bench_fig2_mplayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mplayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
