file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_forced_spinup.dir/bench_fig4_forced_spinup.cpp.o"
  "CMakeFiles/bench_fig4_forced_spinup.dir/bench_fig4_forced_spinup.cpp.o.d"
  "bench_fig4_forced_spinup"
  "bench_fig4_forced_spinup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_forced_spinup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
