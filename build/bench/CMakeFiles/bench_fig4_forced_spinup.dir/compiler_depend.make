# Empty compiler generated dependencies file for bench_fig4_forced_spinup.
# This may be replaced when dependencies are built.
