# Empty dependencies file for bench_fig3_thunderbird.
# This may be replaced when dependencies are built.
