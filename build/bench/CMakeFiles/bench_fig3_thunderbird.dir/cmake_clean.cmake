file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_thunderbird.dir/bench_fig3_thunderbird.cpp.o"
  "CMakeFiles/bench_fig3_thunderbird.dir/bench_fig3_thunderbird.cpp.o.d"
  "bench_fig3_thunderbird"
  "bench_fig3_thunderbird.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_thunderbird.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
