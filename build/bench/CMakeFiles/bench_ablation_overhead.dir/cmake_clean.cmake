file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overhead.dir/bench_ablation_overhead.cpp.o"
  "CMakeFiles/bench_ablation_overhead.dir/bench_ablation_overhead.cpp.o.d"
  "bench_ablation_overhead"
  "bench_ablation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
