# Empty compiler generated dependencies file for bench_ablation_lossrate.
# This may be replaced when dependencies are built.
