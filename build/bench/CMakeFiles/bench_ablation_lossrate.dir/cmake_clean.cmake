file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lossrate.dir/bench_ablation_lossrate.cpp.o"
  "CMakeFiles/bench_ablation_lossrate.dir/bench_ablation_lossrate.cpp.o.d"
  "bench_ablation_lossrate"
  "bench_ablation_lossrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lossrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
