file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timeout.dir/bench_ablation_timeout.cpp.o"
  "CMakeFiles/bench_ablation_timeout.dir/bench_ablation_timeout.cpp.o.d"
  "bench_ablation_timeout"
  "bench_ablation_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
