file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_grep_make.dir/bench_fig1_grep_make.cpp.o"
  "CMakeFiles/bench_fig1_grep_make.dir/bench_fig1_grep_make.cpp.o.d"
  "bench_fig1_grep_make"
  "bench_fig1_grep_make.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_grep_make.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
