# Empty dependencies file for bench_fig1_grep_make.
# This may be replaced when dependencies are built.
