file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cscan.dir/bench_ablation_cscan.cpp.o"
  "CMakeFiles/bench_ablation_cscan.dir/bench_ablation_cscan.cpp.o.d"
  "bench_ablation_cscan"
  "bench_ablation_cscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
