# Empty dependencies file for bench_ablation_cscan.
# This may be replaced when dependencies are built.
