# Empty dependencies file for bench_ablation_stage.
# This may be replaced when dependencies are built.
