# Empty dependencies file for flexfetch_bench_harness.
# This may be replaced when dependencies are built.
