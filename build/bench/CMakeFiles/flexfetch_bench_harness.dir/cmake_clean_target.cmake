file(REMOVE_RECURSE
  "libflexfetch_bench_harness.a"
)
