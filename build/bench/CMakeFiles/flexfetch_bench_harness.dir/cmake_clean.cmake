file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/flexfetch_bench_harness.dir/harness.cpp.o.d"
  "libflexfetch_bench_harness.a"
  "libflexfetch_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
