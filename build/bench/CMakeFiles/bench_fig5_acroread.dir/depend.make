# Empty dependencies file for bench_fig5_acroread.
# This may be replaced when dependencies are built.
