file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_acroread.dir/bench_fig5_acroread.cpp.o"
  "CMakeFiles/bench_fig5_acroread.dir/bench_fig5_acroread.cpp.o.d"
  "bench_fig5_acroread"
  "bench_fig5_acroread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_acroread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
