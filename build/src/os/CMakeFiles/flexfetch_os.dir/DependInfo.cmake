
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/buffer_cache.cpp" "src/os/CMakeFiles/flexfetch_os.dir/buffer_cache.cpp.o" "gcc" "src/os/CMakeFiles/flexfetch_os.dir/buffer_cache.cpp.o.d"
  "/root/repo/src/os/file_layout.cpp" "src/os/CMakeFiles/flexfetch_os.dir/file_layout.cpp.o" "gcc" "src/os/CMakeFiles/flexfetch_os.dir/file_layout.cpp.o.d"
  "/root/repo/src/os/io_scheduler.cpp" "src/os/CMakeFiles/flexfetch_os.dir/io_scheduler.cpp.o" "gcc" "src/os/CMakeFiles/flexfetch_os.dir/io_scheduler.cpp.o.d"
  "/root/repo/src/os/process.cpp" "src/os/CMakeFiles/flexfetch_os.dir/process.cpp.o" "gcc" "src/os/CMakeFiles/flexfetch_os.dir/process.cpp.o.d"
  "/root/repo/src/os/readahead.cpp" "src/os/CMakeFiles/flexfetch_os.dir/readahead.cpp.o" "gcc" "src/os/CMakeFiles/flexfetch_os.dir/readahead.cpp.o.d"
  "/root/repo/src/os/vfs.cpp" "src/os/CMakeFiles/flexfetch_os.dir/vfs.cpp.o" "gcc" "src/os/CMakeFiles/flexfetch_os.dir/vfs.cpp.o.d"
  "/root/repo/src/os/writeback.cpp" "src/os/CMakeFiles/flexfetch_os.dir/writeback.cpp.o" "gcc" "src/os/CMakeFiles/flexfetch_os.dir/writeback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexfetch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/flexfetch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/flexfetch_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
