file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_os.dir/buffer_cache.cpp.o"
  "CMakeFiles/flexfetch_os.dir/buffer_cache.cpp.o.d"
  "CMakeFiles/flexfetch_os.dir/file_layout.cpp.o"
  "CMakeFiles/flexfetch_os.dir/file_layout.cpp.o.d"
  "CMakeFiles/flexfetch_os.dir/io_scheduler.cpp.o"
  "CMakeFiles/flexfetch_os.dir/io_scheduler.cpp.o.d"
  "CMakeFiles/flexfetch_os.dir/process.cpp.o"
  "CMakeFiles/flexfetch_os.dir/process.cpp.o.d"
  "CMakeFiles/flexfetch_os.dir/readahead.cpp.o"
  "CMakeFiles/flexfetch_os.dir/readahead.cpp.o.d"
  "CMakeFiles/flexfetch_os.dir/vfs.cpp.o"
  "CMakeFiles/flexfetch_os.dir/vfs.cpp.o.d"
  "CMakeFiles/flexfetch_os.dir/writeback.cpp.o"
  "CMakeFiles/flexfetch_os.dir/writeback.cpp.o.d"
  "libflexfetch_os.a"
  "libflexfetch_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
