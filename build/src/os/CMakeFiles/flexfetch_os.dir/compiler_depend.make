# Empty compiler generated dependencies file for flexfetch_os.
# This may be replaced when dependencies are built.
