file(REMOVE_RECURSE
  "libflexfetch_os.a"
)
