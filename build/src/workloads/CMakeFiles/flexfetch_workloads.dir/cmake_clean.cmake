file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_workloads.dir/generators.cpp.o"
  "CMakeFiles/flexfetch_workloads.dir/generators.cpp.o.d"
  "CMakeFiles/flexfetch_workloads.dir/scenarios.cpp.o"
  "CMakeFiles/flexfetch_workloads.dir/scenarios.cpp.o.d"
  "libflexfetch_workloads.a"
  "libflexfetch_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
