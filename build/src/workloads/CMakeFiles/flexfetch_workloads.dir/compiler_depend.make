# Empty compiler generated dependencies file for flexfetch_workloads.
# This may be replaced when dependencies are built.
