file(REMOVE_RECURSE
  "libflexfetch_workloads.a"
)
