file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_core.dir/burst.cpp.o"
  "CMakeFiles/flexfetch_core.dir/burst.cpp.o.d"
  "CMakeFiles/flexfetch_core.dir/decision.cpp.o"
  "CMakeFiles/flexfetch_core.dir/decision.cpp.o.d"
  "CMakeFiles/flexfetch_core.dir/estimator.cpp.o"
  "CMakeFiles/flexfetch_core.dir/estimator.cpp.o.d"
  "CMakeFiles/flexfetch_core.dir/flexfetch.cpp.o"
  "CMakeFiles/flexfetch_core.dir/flexfetch.cpp.o.d"
  "CMakeFiles/flexfetch_core.dir/profile.cpp.o"
  "CMakeFiles/flexfetch_core.dir/profile.cpp.o.d"
  "CMakeFiles/flexfetch_core.dir/profile_store.cpp.o"
  "CMakeFiles/flexfetch_core.dir/profile_store.cpp.o.d"
  "CMakeFiles/flexfetch_core.dir/stage.cpp.o"
  "CMakeFiles/flexfetch_core.dir/stage.cpp.o.d"
  "libflexfetch_core.a"
  "libflexfetch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
