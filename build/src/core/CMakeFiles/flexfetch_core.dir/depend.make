# Empty dependencies file for flexfetch_core.
# This may be replaced when dependencies are built.
