file(REMOVE_RECURSE
  "libflexfetch_core.a"
)
