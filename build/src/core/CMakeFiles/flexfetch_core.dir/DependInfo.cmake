
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/burst.cpp" "src/core/CMakeFiles/flexfetch_core.dir/burst.cpp.o" "gcc" "src/core/CMakeFiles/flexfetch_core.dir/burst.cpp.o.d"
  "/root/repo/src/core/decision.cpp" "src/core/CMakeFiles/flexfetch_core.dir/decision.cpp.o" "gcc" "src/core/CMakeFiles/flexfetch_core.dir/decision.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/flexfetch_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/flexfetch_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/flexfetch.cpp" "src/core/CMakeFiles/flexfetch_core.dir/flexfetch.cpp.o" "gcc" "src/core/CMakeFiles/flexfetch_core.dir/flexfetch.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/flexfetch_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/flexfetch_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/profile_store.cpp" "src/core/CMakeFiles/flexfetch_core.dir/profile_store.cpp.o" "gcc" "src/core/CMakeFiles/flexfetch_core.dir/profile_store.cpp.o.d"
  "/root/repo/src/core/stage.cpp" "src/core/CMakeFiles/flexfetch_core.dir/stage.cpp.o" "gcc" "src/core/CMakeFiles/flexfetch_core.dir/stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexfetch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/flexfetch_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/flexfetch_device.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/flexfetch_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/flexfetch_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hoard/CMakeFiles/flexfetch_hoard.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
