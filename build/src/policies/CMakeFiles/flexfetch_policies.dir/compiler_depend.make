# Empty compiler generated dependencies file for flexfetch_policies.
# This may be replaced when dependencies are built.
