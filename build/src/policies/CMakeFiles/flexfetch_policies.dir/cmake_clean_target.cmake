file(REMOVE_RECURSE
  "libflexfetch_policies.a"
)
