file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_policies.dir/bluefs.cpp.o"
  "CMakeFiles/flexfetch_policies.dir/bluefs.cpp.o.d"
  "CMakeFiles/flexfetch_policies.dir/factory.cpp.o"
  "CMakeFiles/flexfetch_policies.dir/factory.cpp.o.d"
  "CMakeFiles/flexfetch_policies.dir/oracle.cpp.o"
  "CMakeFiles/flexfetch_policies.dir/oracle.cpp.o.d"
  "libflexfetch_policies.a"
  "libflexfetch_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
