file(REMOVE_RECURSE
  "libflexfetch_trace.a"
)
