# Empty compiler generated dependencies file for flexfetch_trace.
# This may be replaced when dependencies are built.
