file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_trace.dir/builder.cpp.o"
  "CMakeFiles/flexfetch_trace.dir/builder.cpp.o.d"
  "CMakeFiles/flexfetch_trace.dir/strace_import.cpp.o"
  "CMakeFiles/flexfetch_trace.dir/strace_import.cpp.o.d"
  "CMakeFiles/flexfetch_trace.dir/trace.cpp.o"
  "CMakeFiles/flexfetch_trace.dir/trace.cpp.o.d"
  "CMakeFiles/flexfetch_trace.dir/trace_io.cpp.o"
  "CMakeFiles/flexfetch_trace.dir/trace_io.cpp.o.d"
  "libflexfetch_trace.a"
  "libflexfetch_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
