file(REMOVE_RECURSE
  "libflexfetch_common.a"
)
