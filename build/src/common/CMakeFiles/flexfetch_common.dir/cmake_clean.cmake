file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_common.dir/error.cpp.o"
  "CMakeFiles/flexfetch_common.dir/error.cpp.o.d"
  "CMakeFiles/flexfetch_common.dir/format.cpp.o"
  "CMakeFiles/flexfetch_common.dir/format.cpp.o.d"
  "CMakeFiles/flexfetch_common.dir/stats.cpp.o"
  "CMakeFiles/flexfetch_common.dir/stats.cpp.o.d"
  "libflexfetch_common.a"
  "libflexfetch_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
