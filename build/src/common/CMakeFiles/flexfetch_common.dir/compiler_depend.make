# Empty compiler generated dependencies file for flexfetch_common.
# This may be replaced when dependencies are built.
