file(REMOVE_RECURSE
  "libflexfetch_sim.a"
)
