file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_sim.dir/results.cpp.o"
  "CMakeFiles/flexfetch_sim.dir/results.cpp.o.d"
  "CMakeFiles/flexfetch_sim.dir/simulator.cpp.o"
  "CMakeFiles/flexfetch_sim.dir/simulator.cpp.o.d"
  "libflexfetch_sim.a"
  "libflexfetch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
