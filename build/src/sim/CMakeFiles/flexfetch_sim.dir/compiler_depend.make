# Empty compiler generated dependencies file for flexfetch_sim.
# This may be replaced when dependencies are built.
