file(REMOVE_RECURSE
  "libflexfetch_hoard.a"
)
