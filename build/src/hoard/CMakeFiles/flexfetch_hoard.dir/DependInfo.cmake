
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hoard/hoard_set.cpp" "src/hoard/CMakeFiles/flexfetch_hoard.dir/hoard_set.cpp.o" "gcc" "src/hoard/CMakeFiles/flexfetch_hoard.dir/hoard_set.cpp.o.d"
  "/root/repo/src/hoard/sync.cpp" "src/hoard/CMakeFiles/flexfetch_hoard.dir/sync.cpp.o" "gcc" "src/hoard/CMakeFiles/flexfetch_hoard.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexfetch_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/flexfetch_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
