# Empty compiler generated dependencies file for flexfetch_hoard.
# This may be replaced when dependencies are built.
