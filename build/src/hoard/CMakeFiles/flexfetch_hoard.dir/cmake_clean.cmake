file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_hoard.dir/hoard_set.cpp.o"
  "CMakeFiles/flexfetch_hoard.dir/hoard_set.cpp.o.d"
  "CMakeFiles/flexfetch_hoard.dir/sync.cpp.o"
  "CMakeFiles/flexfetch_hoard.dir/sync.cpp.o.d"
  "libflexfetch_hoard.a"
  "libflexfetch_hoard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_hoard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
