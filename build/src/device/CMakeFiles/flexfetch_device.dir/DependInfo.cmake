
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/adaptive_timeout.cpp" "src/device/CMakeFiles/flexfetch_device.dir/adaptive_timeout.cpp.o" "gcc" "src/device/CMakeFiles/flexfetch_device.dir/adaptive_timeout.cpp.o.d"
  "/root/repo/src/device/disk.cpp" "src/device/CMakeFiles/flexfetch_device.dir/disk.cpp.o" "gcc" "src/device/CMakeFiles/flexfetch_device.dir/disk.cpp.o.d"
  "/root/repo/src/device/energy_meter.cpp" "src/device/CMakeFiles/flexfetch_device.dir/energy_meter.cpp.o" "gcc" "src/device/CMakeFiles/flexfetch_device.dir/energy_meter.cpp.o.d"
  "/root/repo/src/device/params.cpp" "src/device/CMakeFiles/flexfetch_device.dir/params.cpp.o" "gcc" "src/device/CMakeFiles/flexfetch_device.dir/params.cpp.o.d"
  "/root/repo/src/device/wnic.cpp" "src/device/CMakeFiles/flexfetch_device.dir/wnic.cpp.o" "gcc" "src/device/CMakeFiles/flexfetch_device.dir/wnic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/flexfetch_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
