# Empty compiler generated dependencies file for flexfetch_device.
# This may be replaced when dependencies are built.
