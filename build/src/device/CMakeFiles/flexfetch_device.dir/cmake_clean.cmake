file(REMOVE_RECURSE
  "CMakeFiles/flexfetch_device.dir/adaptive_timeout.cpp.o"
  "CMakeFiles/flexfetch_device.dir/adaptive_timeout.cpp.o.d"
  "CMakeFiles/flexfetch_device.dir/disk.cpp.o"
  "CMakeFiles/flexfetch_device.dir/disk.cpp.o.d"
  "CMakeFiles/flexfetch_device.dir/energy_meter.cpp.o"
  "CMakeFiles/flexfetch_device.dir/energy_meter.cpp.o.d"
  "CMakeFiles/flexfetch_device.dir/params.cpp.o"
  "CMakeFiles/flexfetch_device.dir/params.cpp.o.d"
  "CMakeFiles/flexfetch_device.dir/wnic.cpp.o"
  "CMakeFiles/flexfetch_device.dir/wnic.cpp.o.d"
  "libflexfetch_device.a"
  "libflexfetch_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexfetch_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
