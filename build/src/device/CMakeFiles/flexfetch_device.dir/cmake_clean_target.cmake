file(REMOVE_RECURSE
  "libflexfetch_device.a"
)
