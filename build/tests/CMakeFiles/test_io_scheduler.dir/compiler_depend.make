# Empty compiler generated dependencies file for test_io_scheduler.
# This may be replaced when dependencies are built.
