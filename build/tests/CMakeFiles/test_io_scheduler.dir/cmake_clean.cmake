file(REMOVE_RECURSE
  "CMakeFiles/test_io_scheduler.dir/test_io_scheduler.cpp.o"
  "CMakeFiles/test_io_scheduler.dir/test_io_scheduler.cpp.o.d"
  "test_io_scheduler"
  "test_io_scheduler.pdb"
  "test_io_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
