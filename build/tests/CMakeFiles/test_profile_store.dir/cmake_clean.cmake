file(REMOVE_RECURSE
  "CMakeFiles/test_profile_store.dir/test_profile_store.cpp.o"
  "CMakeFiles/test_profile_store.dir/test_profile_store.cpp.o.d"
  "test_profile_store"
  "test_profile_store.pdb"
  "test_profile_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
