# Empty compiler generated dependencies file for test_profile_store.
# This may be replaced when dependencies are built.
