file(REMOVE_RECURSE
  "CMakeFiles/test_seek_model.dir/test_seek_model.cpp.o"
  "CMakeFiles/test_seek_model.dir/test_seek_model.cpp.o.d"
  "test_seek_model"
  "test_seek_model.pdb"
  "test_seek_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seek_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
