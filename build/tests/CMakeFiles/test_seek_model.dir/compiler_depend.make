# Empty compiler generated dependencies file for test_seek_model.
# This may be replaced when dependencies are built.
