file(REMOVE_RECURSE
  "CMakeFiles/test_strace_import.dir/test_strace_import.cpp.o"
  "CMakeFiles/test_strace_import.dir/test_strace_import.cpp.o.d"
  "test_strace_import"
  "test_strace_import.pdb"
  "test_strace_import[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strace_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
