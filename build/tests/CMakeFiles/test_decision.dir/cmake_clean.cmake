file(REMOVE_RECURSE
  "CMakeFiles/test_decision.dir/test_decision.cpp.o"
  "CMakeFiles/test_decision.dir/test_decision.cpp.o.d"
  "test_decision"
  "test_decision.pdb"
  "test_decision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
