file(REMOVE_RECURSE
  "CMakeFiles/test_wnic.dir/test_wnic.cpp.o"
  "CMakeFiles/test_wnic.dir/test_wnic.cpp.o.d"
  "test_wnic"
  "test_wnic.pdb"
  "test_wnic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
