# Empty compiler generated dependencies file for test_wnic.
# This may be replaced when dependencies are built.
