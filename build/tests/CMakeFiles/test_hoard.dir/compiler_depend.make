# Empty compiler generated dependencies file for test_hoard.
# This may be replaced when dependencies are built.
