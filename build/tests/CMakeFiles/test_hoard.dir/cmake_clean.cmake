file(REMOVE_RECURSE
  "CMakeFiles/test_hoard.dir/test_hoard.cpp.o"
  "CMakeFiles/test_hoard.dir/test_hoard.cpp.o.d"
  "test_hoard"
  "test_hoard.pdb"
  "test_hoard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hoard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
