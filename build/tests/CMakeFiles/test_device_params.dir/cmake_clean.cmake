file(REMOVE_RECURSE
  "CMakeFiles/test_device_params.dir/test_device_params.cpp.o"
  "CMakeFiles/test_device_params.dir/test_device_params.cpp.o.d"
  "test_device_params"
  "test_device_params.pdb"
  "test_device_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
