# Empty dependencies file for test_burst.
# This may be replaced when dependencies are built.
