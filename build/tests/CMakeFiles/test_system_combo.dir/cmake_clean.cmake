file(REMOVE_RECURSE
  "CMakeFiles/test_system_combo.dir/test_system_combo.cpp.o"
  "CMakeFiles/test_system_combo.dir/test_system_combo.cpp.o.d"
  "test_system_combo"
  "test_system_combo.pdb"
  "test_system_combo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_combo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
