# Empty dependencies file for test_system_combo.
# This may be replaced when dependencies are built.
