file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive_timeout.dir/test_adaptive_timeout.cpp.o"
  "CMakeFiles/test_adaptive_timeout.dir/test_adaptive_timeout.cpp.o.d"
  "test_adaptive_timeout"
  "test_adaptive_timeout.pdb"
  "test_adaptive_timeout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
