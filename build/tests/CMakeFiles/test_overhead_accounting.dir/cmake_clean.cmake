file(REMOVE_RECURSE
  "CMakeFiles/test_overhead_accounting.dir/test_overhead_accounting.cpp.o"
  "CMakeFiles/test_overhead_accounting.dir/test_overhead_accounting.cpp.o.d"
  "test_overhead_accounting"
  "test_overhead_accounting.pdb"
  "test_overhead_accounting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overhead_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
