# Empty dependencies file for test_overhead_accounting.
# This may be replaced when dependencies are built.
