file(REMOVE_RECURSE
  "CMakeFiles/test_file_layout.dir/test_file_layout.cpp.o"
  "CMakeFiles/test_file_layout.dir/test_file_layout.cpp.o.d"
  "test_file_layout"
  "test_file_layout.pdb"
  "test_file_layout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
