# Empty dependencies file for test_file_layout.
# This may be replaced when dependencies are built.
