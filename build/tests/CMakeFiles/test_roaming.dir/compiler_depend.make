# Empty compiler generated dependencies file for test_roaming.
# This may be replaced when dependencies are built.
