file(REMOVE_RECURSE
  "CMakeFiles/test_estimator_consistency.dir/test_estimator_consistency.cpp.o"
  "CMakeFiles/test_estimator_consistency.dir/test_estimator_consistency.cpp.o.d"
  "test_estimator_consistency"
  "test_estimator_consistency.pdb"
  "test_estimator_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_estimator_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
