# Empty dependencies file for test_estimator_consistency.
# This may be replaced when dependencies are built.
