# Empty dependencies file for test_flexfetch.
# This may be replaced when dependencies are built.
