file(REMOVE_RECURSE
  "CMakeFiles/test_flexfetch.dir/test_flexfetch.cpp.o"
  "CMakeFiles/test_flexfetch.dir/test_flexfetch.cpp.o.d"
  "test_flexfetch"
  "test_flexfetch.pdb"
  "test_flexfetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flexfetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
