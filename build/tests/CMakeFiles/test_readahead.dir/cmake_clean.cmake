file(REMOVE_RECURSE
  "CMakeFiles/test_readahead.dir/test_readahead.cpp.o"
  "CMakeFiles/test_readahead.dir/test_readahead.cpp.o.d"
  "test_readahead"
  "test_readahead.pdb"
  "test_readahead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
