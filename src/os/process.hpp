// Process-group bookkeeping (Section 2.1): FlexFetch associates all file
// accesses of processes in one Linux process group with one program, so a
// `make` spawning many `gcc`s is profiled as a single program.
#pragma once

#include <string>
#include <unordered_map>

#include "trace/record.hpp"

namespace flexfetch::os {

class ProcessTable {
 public:
  /// Declares that process group `pgid` belongs to program `name`.
  /// `profiled` marks programs FlexFetch tracks (Section 2.3.3 separates
  /// profiled programs from other disk users such as system write-back).
  void register_program(trace::ProcessGroup pgid, std::string name,
                        bool profiled = true);

  bool known(trace::ProcessGroup pgid) const { return programs_.contains(pgid); }
  const std::string& name_of(trace::ProcessGroup pgid) const;
  bool is_profiled(trace::ProcessGroup pgid) const;

  std::size_t size() const { return programs_.size(); }

 private:
  struct Program {
    std::string name;
    bool profiled = true;
  };
  std::unordered_map<trace::ProcessGroup, Program> programs_;
};

}  // namespace flexfetch::os
