// Two-window sequential readahead — the paper's simulator "emulates ... the
// two-window readahead policy that prefetches up to 32 pages" (Section 3.1).
//
// Per open file stream we keep a current window and an ahead window. A read
// that continues the sequential stream grows the window (doubling, Linux
// style) up to 32 pages = 128 KiB; a non-sequential read resets it. The
// engine turns each application read into the page range the kernel would
// actually request from the device.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "os/page.hpp"

namespace flexfetch::os {

struct ReadaheadConfig {
  std::uint64_t min_window_pages = 4;   ///< Initial window (16 KiB).
  std::uint64_t max_window_pages = 32;  ///< Cap (128 KiB), per the paper.
};

/// A contiguous page range the kernel wants resident.
struct PageRange {
  Inode inode = 0;
  std::uint64_t first_page = 0;
  std::uint64_t page_count = 0;

  std::uint64_t end_page() const { return first_page + page_count; }
  Bytes offset() const { return first_page * kPageSize; }
  Bytes size() const { return page_count * kPageSize; }
};

class Readahead {
 public:
  explicit Readahead(ReadaheadConfig config = {});

  /// Computes the page range to make resident for a read of
  /// [offset, offset+size) in `inode`, including the prefetch extension.
  /// Updates the per-file sequential-detection state.
  PageRange on_read(Inode inode, Bytes offset, Bytes size);

  /// Forgets per-file state (file closed).
  void forget(Inode inode);

  /// Current window size in pages for a file (min window if unknown).
  std::uint64_t window_pages(Inode inode) const;

 private:
  struct Stream {
    std::uint64_t next_demand = 0;   ///< Expected next demanded page.
    std::uint64_t prefetch_end = 0;  ///< End of the area already requested.
    std::uint64_t window = 0;        ///< Current ahead-window; 0 = fresh.
  };

  ReadaheadConfig config_;
  std::unordered_map<Inode, Stream> streams_;
};

}  // namespace flexfetch::os
