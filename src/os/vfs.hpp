// The VFS layer: turns application read/write syscalls into device page
// fetches, going through the buffer cache and readahead, and exposes
// write-back flush planning. This is the glue the simulator drives.
#pragma once

#include <vector>

#include "os/buffer_cache.hpp"
#include "os/readahead.hpp"
#include "os/writeback.hpp"
#include "trace/record.hpp"

namespace flexfetch::os {

struct VfsConfig {
  BufferCacheConfig cache;
  ReadaheadConfig readahead;
  WritebackConfig writeback;
};

/// Outcome of planning a read syscall.
struct ReadPlan {
  /// Contiguous page ranges that must be fetched from a device
  /// (miss runs inside the demanded+readahead window).
  std::vector<PageRange> fetches;
  std::uint64_t pages_demanded = 0;
  std::uint64_t pages_hit = 0;  ///< Demanded pages already resident.
  /// Dirty pages evicted while inserting the fetched pages; the caller must
  /// write these to a device synchronously.
  std::vector<DirtyPage> evicted_dirty;

  bool fully_cached() const { return fetches.empty(); }
  Bytes bytes_to_fetch() const;

  /// Resets counters and empties the vectors, keeping their capacity —
  /// callers on the hot path reuse one plan across calls.
  void reset();
};

/// Outcome of planning a write syscall (writes are buffered).
struct WritePlan {
  std::uint64_t pages_dirtied = 0;
  std::vector<DirtyPage> evicted_dirty;  ///< Forced synchronous flushes.

  void reset();
};

class Vfs {
 public:
  explicit Vfs(VfsConfig config = {});

  /// Plans a read into a caller-owned plan (reset() + refilled; reusing one
  /// plan across calls makes this allocation-free at steady state). Returns
  /// miss ranges (with readahead applied) and inserts the to-be-fetched
  /// pages into the cache. `file_extent`, when non-zero, caps the readahead
  /// at end-of-file (the kernel never prefetches past EOF); the demanded
  /// range is never truncated. `demand_first`/`demand_end` are the record's
  /// page span (page_index/page_end_index of its byte range), which compiled
  /// traces precompute.
  void plan_read(const trace::SyscallRecord& r, Seconds now, Bytes file_extent,
                 std::uint64_t demand_first, std::uint64_t demand_end,
                 ReadPlan& plan);

  /// Allocating convenience: derives the page span from the record.
  ReadPlan plan_read(const trace::SyscallRecord& r, Seconds now,
                     Bytes file_extent = Bytes{});

  /// Plans a buffered write: dirties the pages of [first, end).
  void plan_write(const trace::SyscallRecord& r, Seconds now,
                  std::uint64_t first, std::uint64_t end, WritePlan& plan);

  WritePlan plan_write(const trace::SyscallRecord& r, Seconds now);

  /// Appends the dirty pages the write-back policy wants flushed now to the
  /// caller-owned `out` (cleared first).
  void select_writeback(Seconds now, bool device_active,
                        std::vector<DirtyPage>& out) const;

  std::vector<DirtyPage> select_writeback(Seconds now, bool device_active) const;

  /// Marks pages clean after their flush completed.
  void complete_writeback(const std::vector<DirtyPage>& pages);

  /// Coalesces pages into per-inode contiguous ranges (flush batching),
  /// sorting by (inode, page) first.
  static std::vector<PageRange> coalesce(std::vector<PageId> pages);

  /// Coalesces adjacent runs while preserving the given order — used for
  /// write-back, which submits oldest-dirty-first and leaves reordering to
  /// the I/O scheduler.
  static std::vector<PageRange> coalesce_ordered(const std::vector<PageId>& pages);

  /// In-place variant: `out` is cleared and refilled (capacity kept).
  static void coalesce_ordered_into(const std::vector<PageId>& pages,
                                    std::vector<PageRange>& out);

  /// True if every page of [offset, offset+size) in `inode` is resident —
  /// FlexFetch's Section 2.3.2 cache filter uses this.
  bool range_cached(Inode inode, Bytes offset, Bytes size) const;

  /// Page-span form for callers that already know the range's pages.
  bool range_cached_pages(Inode inode, std::uint64_t first_page,
                          std::uint64_t end_page) const;

  BufferCache& cache() { return cache_; }
  const BufferCache& cache() const { return cache_; }
  Readahead& readahead() { return readahead_; }
  const WritebackPolicy& writeback() const { return writeback_; }

 private:
  BufferCache cache_;
  Readahead readahead_;
  WritebackPolicy writeback_;
};

}  // namespace flexfetch::os
