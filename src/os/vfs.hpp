// The VFS layer: turns application read/write syscalls into device page
// fetches, going through the buffer cache and readahead, and exposes
// write-back flush planning. This is the glue the simulator drives.
#pragma once

#include <vector>

#include "os/buffer_cache.hpp"
#include "os/readahead.hpp"
#include "os/writeback.hpp"
#include "trace/record.hpp"

namespace flexfetch::os {

struct VfsConfig {
  BufferCacheConfig cache;
  ReadaheadConfig readahead;
  WritebackConfig writeback;
};

/// Outcome of planning a read syscall.
struct ReadPlan {
  /// Contiguous page ranges that must be fetched from a device
  /// (miss runs inside the demanded+readahead window).
  std::vector<PageRange> fetches;
  std::uint64_t pages_demanded = 0;
  std::uint64_t pages_hit = 0;  ///< Demanded pages already resident.
  /// Dirty pages evicted while inserting the fetched pages; the caller must
  /// write these to a device synchronously.
  std::vector<DirtyPage> evicted_dirty;

  bool fully_cached() const { return fetches.empty(); }
  Bytes bytes_to_fetch() const;
};

/// Outcome of planning a write syscall (writes are buffered).
struct WritePlan {
  std::uint64_t pages_dirtied = 0;
  std::vector<DirtyPage> evicted_dirty;  ///< Forced synchronous flushes.
};

class Vfs {
 public:
  explicit Vfs(VfsConfig config = {});

  /// Plans a read: returns miss ranges (with readahead applied) and inserts
  /// the to-be-fetched pages into the cache. `file_extent`, when non-zero,
  /// caps the readahead at end-of-file (the kernel never prefetches past
  /// EOF); the demanded range is never truncated.
  ReadPlan plan_read(const trace::SyscallRecord& r, Seconds now,
                     Bytes file_extent = 0);

  /// Plans a buffered write: dirties the covered pages.
  WritePlan plan_write(const trace::SyscallRecord& r, Seconds now);

  /// Dirty pages the write-back policy wants flushed now.
  std::vector<DirtyPage> select_writeback(Seconds now, bool device_active) const;

  /// Marks pages clean after their flush completed.
  void complete_writeback(const std::vector<DirtyPage>& pages);

  /// Coalesces pages into per-inode contiguous ranges (flush batching),
  /// sorting by (inode, page) first.
  static std::vector<PageRange> coalesce(std::vector<PageId> pages);

  /// Coalesces adjacent runs while preserving the given order — used for
  /// write-back, which submits oldest-dirty-first and leaves reordering to
  /// the I/O scheduler.
  static std::vector<PageRange> coalesce_ordered(const std::vector<PageId>& pages);

  /// True if every page of [offset, offset+size) in `inode` is resident —
  /// FlexFetch's Section 2.3.2 cache filter uses this.
  bool range_cached(Inode inode, Bytes offset, Bytes size) const;

  BufferCache& cache() { return cache_; }
  const BufferCache& cache() const { return cache_; }
  Readahead& readahead() { return readahead_; }
  const WritebackPolicy& writeback() const { return writeback_; }

 private:
  BufferCache cache_;
  Readahead readahead_;
  WritebackPolicy writeback_;
};

}  // namespace flexfetch::os
