#include "os/buffer_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexfetch::os {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

BufferCache::BufferCache(BufferCacheConfig config)
    : capacity_(config.capacity_pages),
      kin_(static_cast<std::size_t>(config.kin_fraction *
                                    static_cast<double>(config.capacity_pages))),
      kout_(static_cast<std::size_t>(config.kout_fraction *
                                     static_cast<double>(config.capacity_pages))) {
  FF_REQUIRE(capacity_ >= 4, "buffer cache: capacity too small");
  FF_REQUIRE(config.kin_fraction > 0.0 && config.kin_fraction < 1.0,
             "buffer cache: kin fraction out of (0,1)");
  FF_REQUIRE(config.kout_fraction > 0.0, "buffer cache: kout fraction <= 0");
  kin_ = std::max<std::size_t>(kin_, 1);
  kout_ = std::max<std::size_t>(kout_, 1);

  // One slot per resident page plus one per ghost; both populations are
  // bounded (<= capacity_ residents, <= kout_ ghosts), so the arena never
  // grows and a free slot always exists when insert_new needs one.
  const std::size_t slots = capacity_ + kout_;
  FF_REQUIRE(slots < kNull, "buffer cache: capacity too large for 32-bit slots");
  arena_.resize(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    arena_[i].next = i + 1 < slots ? static_cast<std::uint32_t>(i + 1) : kNull;
  }
  free_head_ = 0;

  // <= 50% load factor, power-of-two size: the table is sized once and
  // never rehashes.
  map_.resize(next_pow2(2 * slots));
  map_mask_ = map_.size() - 1;
}

std::uint32_t BufferCache::map_find(const PageId& id) const {
  std::size_t pos = PageIdHash{}(id) & map_mask_;
  while (map_[pos].slot != kNull) {
    if (map_[pos].key == id) return map_[pos].slot;
    pos = (pos + 1) & map_mask_;
  }
  return kNull;
}

void BufferCache::map_insert(const PageId& id, std::uint32_t slot) {
  std::size_t pos = PageIdHash{}(id) & map_mask_;
  while (map_[pos].slot != kNull) pos = (pos + 1) & map_mask_;
  map_[pos].key = id;
  map_[pos].slot = slot;
}

void BufferCache::map_erase(const PageId& id) {
  std::size_t pos = PageIdHash{}(id) & map_mask_;
  while (!(map_[pos].slot != kNull && map_[pos].key == id)) {
    pos = (pos + 1) & map_mask_;
  }
  // Backward-shift deletion keeps probe sequences unbroken without
  // tombstones: any entry displaced past the hole moves into it.
  std::size_t hole = pos;
  std::size_t next = (hole + 1) & map_mask_;
  while (map_[next].slot != kNull) {
    const std::size_t home = PageIdHash{}(map_[next].key) & map_mask_;
    if (((next - home) & map_mask_) >= ((next - hole) & map_mask_)) {
      map_[hole] = map_[next];
      hole = next;
    }
    next = (next + 1) & map_mask_;
  }
  map_[hole].slot = kNull;
}

std::uint32_t BufferCache::alloc_slot() {
  FF_ASSERT(free_head_ != kNull);
  const std::uint32_t s = free_head_;
  free_head_ = arena_[s].next;
  return s;
}

void BufferCache::free_slot(std::uint32_t s) {
  arena_[s].where = Where::kFree;
  arena_[s].next = free_head_;
  free_head_ = s;
}

void BufferCache::chain_push_front(Chain& c, std::uint32_t s) {
  arena_[s].prev = kNull;
  arena_[s].next = c.head;
  if (c.head != kNull) {
    arena_[c.head].prev = s;
  } else {
    c.tail = s;
  }
  c.head = s;
  ++c.size;
}

void BufferCache::chain_unlink(Chain& c, std::uint32_t s) {
  const std::uint32_t p = arena_[s].prev;
  const std::uint32_t n = arena_[s].next;
  if (p != kNull) arena_[p].next = n; else c.head = n;
  if (n != kNull) arena_[n].prev = p; else c.tail = p;
  --c.size;
}

bool BufferCache::lookup(const PageId& id, Seconds /*now*/) {
  ++stats_.lookups;
  const std::uint32_t s = map_find(id);
  if (s == kNull) return false;
  if (arena_[s].where == Where::kA1out) {
    ++stats_.ghost_hits;
    return false;
  }
  ++stats_.hits;
  if (arena_[s].where == Where::kAm && am_.head != s) {
    chain_unlink(am_, s);  // Promote to MRU.
    chain_push_front(am_, s);
  }
  // 2Q: a hit in A1in leaves the page in place (FIFO order unchanged).
  return true;
}

bool BufferCache::contains(const PageId& id) const {
  const std::uint32_t s = map_find(id);
  return s != kNull && arena_[s].where != Where::kA1out;
}

void BufferCache::fill(const PageId& id, Seconds now,
                       std::vector<DirtyPage>& flushed) {
  const std::uint32_t s = map_find(id);
  if (s != kNull && arena_[s].where != Where::kA1out) return;  // Resident.
  insert_new(id, /*dirty=*/false, now, flushed);
}

void BufferCache::write(const PageId& id, Seconds now,
                        std::vector<DirtyPage>& flushed) {
  const std::uint32_t s = map_find(id);
  if (s != kNull && arena_[s].where != Where::kA1out) {
    if (!arena_[s].dirty) mark_dirty(s, now);
    if (arena_[s].where == Where::kAm && am_.head != s) {
      chain_unlink(am_, s);
      chain_push_front(am_, s);
    }
    return;
  }
  insert_new(id, /*dirty=*/true, now, flushed);
}

std::vector<DirtyPage> BufferCache::fill(const PageId& id, Seconds now) {
  std::vector<DirtyPage> flushed;
  fill(id, now, flushed);
  return flushed;
}

std::vector<DirtyPage> BufferCache::write(const PageId& id, Seconds now) {
  std::vector<DirtyPage> flushed;
  write(id, now, flushed);
  return flushed;
}

void BufferCache::mark_dirty(std::uint32_t s, Seconds now) {
  Slot& sl = arena_[s];
  sl.dirty = true;
  sl.dirtied_at = now;
  // Simulation time only moves forward, so this is an O(1) append on the
  // hot path; the backward scan runs only for out-of-order timestamps
  // (direct API use) and keeps the sorted-by-age invariant regardless.
  std::uint32_t after = dirty_list_.tail;
  while (after != kNull && arena_[after].dirtied_at > now) {
    after = arena_[after].dirty_prev;
  }
  if (after == kNull) {  // New oldest entry: link at the head.
    sl.dirty_prev = kNull;
    sl.dirty_next = dirty_list_.head;
    if (dirty_list_.head != kNull) {
      arena_[dirty_list_.head].dirty_prev = s;
    } else {
      dirty_list_.tail = s;
    }
    dirty_list_.head = s;
  } else {  // Link directly after `after`.
    sl.dirty_prev = after;
    sl.dirty_next = arena_[after].dirty_next;
    if (sl.dirty_next != kNull) {
      arena_[sl.dirty_next].dirty_prev = s;
    } else {
      dirty_list_.tail = s;
    }
    arena_[after].dirty_next = s;
  }
  ++dirty_list_.size;
}

void BufferCache::dirty_unlink(std::uint32_t s) {
  Slot& sl = arena_[s];
  if (sl.dirty_prev != kNull) {
    arena_[sl.dirty_prev].dirty_next = sl.dirty_next;
  } else {
    dirty_list_.head = sl.dirty_next;
  }
  if (sl.dirty_next != kNull) {
    arena_[sl.dirty_next].dirty_prev = sl.dirty_prev;
  } else {
    dirty_list_.tail = sl.dirty_prev;
  }
  --dirty_list_.size;
  sl.dirty = false;
  sl.dirty_prev = sl.dirty_next = kNull;
}

void BufferCache::insert_new(const PageId& id, bool dirty, Seconds now,
                             std::vector<DirtyPage>& flushed) {
  make_room(flushed);
  ++stats_.insertions;
  // Re-find after make_room: evicting may have trimmed this id's ghost slot.
  const std::uint32_t ghost = map_find(id);
  std::uint32_t s;
  if (ghost != kNull) {
    // Re-reference of a recently evicted page: admit straight to Am.
    FF_ASSERT(arena_[ghost].where == Where::kA1out);
    chain_unlink(a1out_, ghost);
    s = ghost;
    chain_push_front(am_, s);
    arena_[s].where = Where::kAm;
  } else {
    s = alloc_slot();
    arena_[s].id = id;
    map_insert(id, s);
    chain_push_front(a1in_, s);
    arena_[s].where = Where::kA1in;
  }
  arena_[s].dirty = false;
  arena_[s].dirty_prev = arena_[s].dirty_next = kNull;
  if (dirty) mark_dirty(s, now);
}

void BufferCache::make_room(std::vector<DirtyPage>& flushed) {
  if (a1in_.size + am_.size < capacity_) return;
  // 2Q "reclaim": prefer shrinking an over-quota A1in, else take the Am LRU.
  if (a1in_.size > kin_ || am_.size == 0) {
    FF_ASSERT(a1in_.size > 0);
    const std::uint32_t victim = a1in_.tail;
    Slot& sl = arena_[victim];
    if (sl.dirty) {
      flushed.push_back(DirtyPage{sl.id, sl.dirtied_at});
      dirty_unlink(victim);
    }
    chain_unlink(a1in_, victim);
    ++stats_.evictions;
    // The victim becomes a ghost in place: same slot, same map entry.
    sl.where = Where::kA1out;
    chain_push_front(a1out_, victim);
    while (a1out_.size > kout_) {
      const std::uint32_t g = a1out_.tail;
      chain_unlink(a1out_, g);
      map_erase(arena_[g].id);
      free_slot(g);
    }
  } else {
    const std::uint32_t victim = am_.tail;
    Slot& sl = arena_[victim];
    if (sl.dirty) {
      flushed.push_back(DirtyPage{sl.id, sl.dirtied_at});
      dirty_unlink(victim);
    }
    chain_unlink(am_, victim);
    map_erase(sl.id);
    free_slot(victim);
    ++stats_.evictions;
  }
}

void BufferCache::mark_clean(const PageId& id) {
  const std::uint32_t s = map_find(id);
  if (s == kNull || arena_[s].where == Where::kA1out) return;
  if (arena_[s].dirty) dirty_unlink(s);
}

void BufferCache::append_dirty_pages(std::vector<DirtyPage>& out) const {
  for (std::uint32_t s = dirty_list_.head; s != kNull; s = arena_[s].dirty_next) {
    out.push_back(DirtyPage{arena_[s].id, arena_[s].dirtied_at});
  }
}

void BufferCache::append_dirty_pages_older_than(Seconds now, Seconds min_age,
                                                std::vector<DirtyPage>& out) const {
  // The chain is ordered by dirtied_at, so eligible pages form a prefix.
  for (std::uint32_t s = dirty_list_.head; s != kNull; s = arena_[s].dirty_next) {
    if (now - arena_[s].dirtied_at < min_age) break;
    out.push_back(DirtyPage{arena_[s].id, arena_[s].dirtied_at});
  }
}

std::vector<DirtyPage> BufferCache::dirty_pages() const {
  std::vector<DirtyPage> out;
  out.reserve(dirty_list_.size);
  append_dirty_pages(out);
  return out;
}

std::vector<DirtyPage> BufferCache::dirty_pages_older_than(Seconds now,
                                                           Seconds min_age) const {
  std::vector<DirtyPage> out;
  append_dirty_pages_older_than(now, min_age, out);
  return out;
}

void BufferCache::clear() {
  a1in_ = Chain{};
  am_ = Chain{};
  a1out_ = Chain{};
  dirty_list_ = Chain{};
  const std::size_t slots = arena_.size();
  for (std::size_t i = 0; i < slots; ++i) {
    arena_[i] = Slot{};
    arena_[i].next = i + 1 < slots ? static_cast<std::uint32_t>(i + 1) : kNull;
  }
  free_head_ = 0;
  for (auto& e : map_) e.slot = kNull;
}

}  // namespace flexfetch::os
