#include "os/buffer_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexfetch::os {

BufferCache::BufferCache(BufferCacheConfig config)
    : capacity_(config.capacity_pages),
      kin_(static_cast<std::size_t>(config.kin_fraction *
                                    static_cast<double>(config.capacity_pages))),
      kout_(static_cast<std::size_t>(config.kout_fraction *
                                     static_cast<double>(config.capacity_pages))) {
  FF_REQUIRE(capacity_ >= 4, "buffer cache: capacity too small");
  FF_REQUIRE(config.kin_fraction > 0.0 && config.kin_fraction < 1.0,
             "buffer cache: kin fraction out of (0,1)");
  FF_REQUIRE(config.kout_fraction > 0.0, "buffer cache: kout fraction <= 0");
  kin_ = std::max<std::size_t>(kin_, 1);
  kout_ = std::max<std::size_t>(kout_, 1);
}

bool BufferCache::lookup(const PageId& id, Seconds /*now*/) {
  ++stats_.lookups;
  auto it = table_.find(id);
  if (it == table_.end()) {
    if (ghost_table_.contains(id)) ++stats_.ghost_hits;
    return false;
  }
  ++stats_.hits;
  Entry& e = it->second;
  if (e.queue == Queue::kAm) {
    am_.splice(am_.begin(), am_, e.pos);  // Promote to MRU.
  }
  // 2Q: a hit in A1in leaves the page in place (FIFO order unchanged).
  return true;
}

bool BufferCache::contains(const PageId& id) const { return table_.contains(id); }

std::vector<DirtyPage> BufferCache::fill(const PageId& id, Seconds now) {
  std::vector<DirtyPage> flushed;
  if (table_.contains(id)) return flushed;  // Already resident.
  insert_new(id, /*dirty=*/false, now, flushed);
  return flushed;
}

std::vector<DirtyPage> BufferCache::write(const PageId& id, Seconds now) {
  std::vector<DirtyPage> flushed;
  auto it = table_.find(id);
  if (it != table_.end()) {
    Entry& e = it->second;
    if (!e.dirty) mark_dirty(id, e, now);
    if (e.queue == Queue::kAm) am_.splice(am_.begin(), am_, e.pos);
    return flushed;
  }
  insert_new(id, /*dirty=*/true, now, flushed);
  return flushed;
}

void BufferCache::mark_dirty(const PageId& id, Entry& e, Seconds now) {
  e.dirty = true;
  e.dirtied_at = now;
  // Simulation time only moves forward, so this is an O(1) append on the
  // hot path; the backward scan runs only for out-of-order timestamps
  // (direct API use) and keeps the sorted-by-age invariant regardless.
  auto pos = dirty_.end();
  while (pos != dirty_.begin() && std::prev(pos)->dirtied_at > now) --pos;
  e.dirty_pos = dirty_.insert(pos, DirtyPage{id, now});
}

void BufferCache::insert_new(const PageId& id, bool dirty, Seconds now,
                             std::vector<DirtyPage>& flushed) {
  make_room(flushed);
  ++stats_.insertions;
  Entry e;
  if (dirty) mark_dirty(id, e, now);
  auto ghost = ghost_table_.find(id);
  if (ghost != ghost_table_.end()) {
    // Re-reference of a recently evicted page: admit straight to Am.
    a1out_.erase(ghost->second);
    ghost_table_.erase(ghost);
    am_.push_front(id);
    e.queue = Queue::kAm;
    e.pos = am_.begin();
  } else {
    a1in_.push_front(id);
    e.queue = Queue::kA1in;
    e.pos = a1in_.begin();
  }
  table_.emplace(id, e);
}

void BufferCache::make_room(std::vector<DirtyPage>& flushed) {
  if (table_.size() < capacity_) return;
  // 2Q "reclaim": prefer shrinking an over-quota A1in, else take the Am LRU.
  if (a1in_.size() > kin_ || am_.empty()) {
    FF_ASSERT(!a1in_.empty());
    const PageId victim = a1in_.back();
    evict(victim, flushed);
    push_ghost(victim);
  } else {
    const PageId victim = am_.back();
    evict(victim, flushed);
  }
}

void BufferCache::evict(const PageId& id, std::vector<DirtyPage>& flushed) {
  auto it = table_.find(id);
  FF_ASSERT(it != table_.end());
  Entry& e = it->second;
  if (e.dirty) {
    flushed.push_back(DirtyPage{id, e.dirtied_at});
    dirty_.erase(e.dirty_pos);
  }
  if (e.queue == Queue::kA1in) {
    a1in_.erase(e.pos);
  } else {
    am_.erase(e.pos);
  }
  table_.erase(it);
  ++stats_.evictions;
}

void BufferCache::push_ghost(const PageId& id) {
  a1out_.push_front(id);
  ghost_table_[id] = a1out_.begin();
  while (a1out_.size() > kout_) {
    ghost_table_.erase(a1out_.back());
    a1out_.pop_back();
  }
}

void BufferCache::mark_clean(const PageId& id) {
  auto it = table_.find(id);
  if (it == table_.end()) return;
  Entry& e = it->second;
  if (e.dirty) {
    e.dirty = false;
    dirty_.erase(e.dirty_pos);
  }
}

std::vector<DirtyPage> BufferCache::dirty_pages() const {
  return {dirty_.begin(), dirty_.end()};
}

std::vector<DirtyPage> BufferCache::dirty_pages_older_than(Seconds now,
                                                           Seconds min_age) const {
  std::vector<DirtyPage> out;
  if (dirty_.empty()) return out;
  // The list is ordered by dirtied_at, so eligible pages form a prefix.
  for (const DirtyPage& d : dirty_) {
    if (now - d.dirtied_at < min_age) break;
    out.push_back(d);
  }
  return out;
}

void BufferCache::clear() {
  a1in_.clear();
  am_.clear();
  a1out_.clear();
  dirty_.clear();
  table_.clear();
  ghost_table_.clear();
}

}  // namespace flexfetch::os
