// Page identity for the buffer-cache substrate.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "common/units.hpp"
#include "trace/record.hpp"

namespace flexfetch::os {

using trace::Inode;

/// Identifies one 4 KiB page of one file.
struct PageId {
  Inode inode = 0;
  std::uint64_t index = 0;  ///< Page number within the file.

  auto operator<=>(const PageId&) const = default;

  Bytes offset() const { return index * kPageSize; }
};

struct PageIdHash {
  std::size_t operator()(const PageId& p) const {
    // 64-bit mix of the two fields (splitmix-style finalizer).
    std::uint64_t z = p.inode * 0x9e3779b97f4a7c15ULL + p.index;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// First page index covering byte `offset`.
constexpr std::uint64_t page_index(Bytes offset) { return offset / kPageSize; }

/// Index one past the last page covering [offset, offset+size).
constexpr std::uint64_t page_end_index(Bytes offset, Bytes size) {
  return size == Bytes{} ? page_index(offset)
                         : (offset + size - Bytes{1}) / kPageSize + 1;
}

}  // namespace flexfetch::os
