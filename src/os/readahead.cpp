#include "os/readahead.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexfetch::os {

Readahead::Readahead(ReadaheadConfig config) : config_(config) {
  FF_REQUIRE(config.min_window_pages >= 1, "readahead: min window < 1 page");
  FF_REQUIRE(config.max_window_pages >= config.min_window_pages,
             "readahead: max window below min window");
}

PageRange Readahead::on_read(Inode inode, Bytes offset, Bytes size) {
  FF_REQUIRE(size > Bytes{}, "readahead: zero-size read");
  const std::uint64_t first = page_index(offset);
  const std::uint64_t last_end = page_end_index(offset, size);
  const std::uint64_t demand = last_end - first;

  Stream& s = streams_[inode];
  // Sequential continuation: the read starts at or before the expected
  // next demanded page and does not end before it.
  const bool sequential =
      s.window != 0 && first <= s.next_demand && last_end >= s.next_demand;

  std::uint64_t want_end;
  if (sequential) {
    // Keep the already-prefetched area resident; when the demand closes in
    // on the prefetched edge (within half a window), issue the next ahead
    // window, doubling its size up to the 32-page / 128 KiB cap — the
    // two-window readahead of Section 3.1.
    want_end = std::max(last_end, s.prefetch_end);
    if (last_end + s.window / 2 >= s.prefetch_end) {
      s.window = std::min(s.window * 2, config_.max_window_pages);
      want_end = std::max(want_end, last_end + s.window);
    }
  } else {
    // Fresh or non-sequential access: restart with the minimum window.
    s.window = config_.min_window_pages;
    want_end = first + std::max(demand, config_.min_window_pages);
  }
  s.next_demand = last_end;
  s.prefetch_end = want_end;

  return PageRange{
      .inode = inode, .first_page = first, .page_count = want_end - first};
}

void Readahead::forget(Inode inode) { streams_.erase(inode); }

std::uint64_t Readahead::window_pages(Inode inode) const {
  auto it = streams_.find(inode);
  return it == streams_.end() ? config_.min_window_pages : it->second.window;
}

}  // namespace flexfetch::os
