#include "os/vfs.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"

namespace flexfetch::os {

Bytes ReadPlan::bytes_to_fetch() const {
  Bytes total = Bytes{0};
  for (const auto& f : fetches) total += f.size();
  return total;
}

void ReadPlan::reset() {
  fetches.clear();
  evicted_dirty.clear();
  pages_demanded = 0;
  pages_hit = 0;
}

void WritePlan::reset() {
  evicted_dirty.clear();
  pages_dirtied = 0;
}

Vfs::Vfs(VfsConfig config)
    : cache_(config.cache),
      readahead_(config.readahead),
      writeback_(config.writeback) {}

void Vfs::plan_read(const trace::SyscallRecord& r, Seconds now,
                    Bytes file_extent, std::uint64_t demand_first,
                    std::uint64_t demand_end, ReadPlan& plan) {
  FF_REQUIRE(r.op == trace::OpType::kRead, "plan_read: not a read record");
  plan.reset();

  const PageRange want = readahead_.on_read(r.inode, r.offset, r.size);
  plan.pages_demanded = demand_end - demand_first;

  // Prefetch stops at end-of-file; demand is always honoured.
  std::uint64_t want_end = want.end_page();
  if (file_extent > Bytes{}) {
    want_end = std::max(demand_end,
                        std::min(want_end, page_end_index(Bytes{}, file_extent)));
  }

  std::optional<PageRange> open_run;
  for (std::uint64_t p = want.first_page; p < want_end; ++p) {
    const PageId id{r.inode, p};
    const bool demanded = p >= demand_first && p < demand_end;
    bool resident;
    if (demanded) {
      resident = cache_.lookup(id, now);
      if (resident) ++plan.pages_hit;
    } else {
      // Readahead pages do not count as application lookups.
      resident = cache_.contains(id);
    }
    if (resident) {
      if (open_run) {
        plan.fetches.push_back(*open_run);
        open_run.reset();
      }
      continue;
    }
    // Miss: schedule the fetch and make the page resident; evicted dirty
    // pages land directly in the plan's buffer.
    cache_.fill(id, now, plan.evicted_dirty);
    if (open_run && open_run->end_page() == p) {
      ++open_run->page_count;
    } else {
      if (open_run) plan.fetches.push_back(*open_run);
      open_run = PageRange{.inode = r.inode, .first_page = p, .page_count = 1};
    }
  }
  if (open_run) plan.fetches.push_back(*open_run);
}

ReadPlan Vfs::plan_read(const trace::SyscallRecord& r, Seconds now,
                        Bytes file_extent) {
  ReadPlan plan;
  plan_read(r, now, file_extent, page_index(r.offset),
            page_end_index(r.offset, r.size), plan);
  return plan;
}

void Vfs::plan_write(const trace::SyscallRecord& r, Seconds now,
                     std::uint64_t first, std::uint64_t end, WritePlan& plan) {
  FF_REQUIRE(r.op == trace::OpType::kWrite, "plan_write: not a write record");
  plan.reset();
  for (std::uint64_t p = first; p < end; ++p) {
    cache_.write(PageId{r.inode, p}, now, plan.evicted_dirty);
    ++plan.pages_dirtied;
  }
}

WritePlan Vfs::plan_write(const trace::SyscallRecord& r, Seconds now) {
  WritePlan plan;
  plan_write(r, now, page_index(r.offset), page_end_index(r.offset, r.size),
             plan);
  return plan;
}

void Vfs::select_writeback(Seconds now, bool device_active,
                           std::vector<DirtyPage>& out) const {
  writeback_.select_flush(cache_, now, device_active, out);
}

std::vector<DirtyPage> Vfs::select_writeback(Seconds now,
                                             bool device_active) const {
  return writeback_.select_flush(cache_, now, device_active);
}

void Vfs::complete_writeback(const std::vector<DirtyPage>& pages) {
  for (const auto& d : pages) cache_.mark_clean(d.page);
}

std::vector<PageRange> Vfs::coalesce(std::vector<PageId> pages) {
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  std::vector<PageRange> out;
  for (const PageId& id : pages) {
    if (!out.empty() && out.back().inode == id.inode &&
        out.back().end_page() == id.index) {
      ++out.back().page_count;
    } else {
      out.push_back(PageRange{.inode = id.inode, .first_page = id.index,
                              .page_count = 1});
    }
  }
  return out;
}

void Vfs::coalesce_ordered_into(const std::vector<PageId>& pages,
                                std::vector<PageRange>& out) {
  out.clear();
  for (const PageId& id : pages) {
    if (!out.empty() && out.back().inode == id.inode &&
        out.back().end_page() == id.index) {
      ++out.back().page_count;
    } else {
      out.push_back(PageRange{.inode = id.inode, .first_page = id.index,
                              .page_count = 1});
    }
  }
}

std::vector<PageRange> Vfs::coalesce_ordered(const std::vector<PageId>& pages) {
  std::vector<PageRange> out;
  coalesce_ordered_into(pages, out);
  return out;
}

bool Vfs::range_cached(Inode inode, Bytes offset, Bytes size) const {
  return range_cached_pages(inode, page_index(offset),
                            page_end_index(offset, size));
}

bool Vfs::range_cached_pages(Inode inode, std::uint64_t first_page,
                             std::uint64_t end_page) const {
  for (std::uint64_t p = first_page; p < end_page; ++p) {
    if (!cache_.contains(PageId{inode, p})) return false;
  }
  return true;
}

}  // namespace flexfetch::os
