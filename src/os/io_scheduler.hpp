// C-SCAN (circular elevator) I/O request scheduler with contiguous-request
// merging — the "C-SCAN I/O request scheduling mechanism" plus request
// merging the paper's simulator emulates (Sections 2.1, 3.1).
//
// Pending disk requests are kept sorted by LBA. The dispatcher services
// requests in ascending LBA order from the current head position, wrapping
// to the lowest LBA when it passes the end — one sweep direction only, as
// C-SCAN prescribes. Adjacent requests of the same direction are merged on
// insert.
//
// The queue is a flat vector sorted by start LBA (binary search + shift on
// insert). Queue depths are small — one syscall's page ranges — so the flat
// layout beats the former std::map node allocation on every submit.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "device/request.hpp"

namespace flexfetch::os {

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t merged = 0;     ///< Requests absorbed into an existing one.
  std::uint64_t dispatched = 0;
  std::uint64_t sweeps = 0;     ///< Head wrap-arounds.
};

class CScanScheduler {
 public:
  /// Queues a request, merging it with an LBA-adjacent pending request of
  /// the same direction when possible.
  void submit(const device::DeviceRequest& req);

  /// Removes and returns the next request at/after the head position,
  /// wrapping circularly; nullopt if empty. Advances the head past the
  /// dispatched request.
  std::optional<device::DeviceRequest> dispatch();

  /// Pre-sizes the queue so steady-state submit()s below `n` pending
  /// requests never allocate.
  void reserve(std::size_t n) { queue_.reserve(n); }

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  Bytes head() const { return head_; }
  void set_head(Bytes lba) { head_ = lba; }
  const SchedulerStats& stats() const { return stats_; }

 private:
  /// Sorted by start LBA. Writes and reads are kept as distinct entries
  /// unless contiguous with matching direction.
  std::vector<device::DeviceRequest> queue_;
  Bytes head_ = Bytes{0};
  SchedulerStats stats_;
};

}  // namespace flexfetch::os
