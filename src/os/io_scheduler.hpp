// C-SCAN (circular elevator) I/O request scheduler with contiguous-request
// merging — the "C-SCAN I/O request scheduling mechanism" plus request
// merging the paper's simulator emulates (Sections 2.1, 3.1).
//
// Pending disk requests are kept sorted by LBA. The dispatcher services
// requests in ascending LBA order from the current head position, wrapping
// to the lowest LBA when it passes the end — one sweep direction only, as
// C-SCAN prescribes. Adjacent requests of the same direction are merged on
// insert.
#pragma once

#include <cstddef>
#include <map>
#include <optional>

#include "device/request.hpp"

namespace flexfetch::os {

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t merged = 0;     ///< Requests absorbed into an existing one.
  std::uint64_t dispatched = 0;
  std::uint64_t sweeps = 0;     ///< Head wrap-arounds.
};

class CScanScheduler {
 public:
  /// Queues a request, merging it with an LBA-adjacent pending request of
  /// the same direction when possible.
  void submit(const device::DeviceRequest& req);

  /// Removes and returns the next request at/after the head position,
  /// wrapping circularly; nullopt if empty. Advances the head past the
  /// dispatched request.
  std::optional<device::DeviceRequest> dispatch();

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  Bytes head() const { return head_; }
  void set_head(Bytes lba) { head_ = lba; }
  const SchedulerStats& stats() const { return stats_; }

 private:
  /// Keyed by start LBA. Writes and reads are kept as distinct entries
  /// unless contiguous with matching direction.
  std::map<Bytes, device::DeviceRequest> queue_;
  Bytes head_ = 0;
  SchedulerStats stats_;
};

}  // namespace flexfetch::os
