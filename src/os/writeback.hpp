// Asynchronous write-back with Linux laptop-mode behaviour (Section 3.1):
// dirty pages are flushed eagerly while the target device is in a
// high-power state, and flushes are delayed (up to a long expiry or a
// memory-pressure threshold) while the device is in a low-power state.
#pragma once

#include <vector>

#include "os/buffer_cache.hpp"

namespace flexfetch::os {

struct WritebackConfig {
  /// Normal dirty expiry (Linux dirty_expire_centisecs default, 30 s).
  Seconds dirty_expire = Seconds{30.0};
  /// Laptop-mode maximum age of dirty data while the device sleeps
  /// (Linux laptop_mode lm_dirty_expire, 10 min).
  Seconds laptop_mode_expire = Seconds{600.0};
  /// Memory-pressure threshold: flush regardless of device state when this
  /// many pages are dirty.
  std::size_t dirty_pressure_pages = 4096;
  /// Period of the background flusher thread (pdflush wakeup).
  Seconds flush_interval = Seconds{5.0};
};

class WritebackPolicy {
 public:
  explicit WritebackPolicy(WritebackConfig config = {});

  const WritebackConfig& config() const { return config_; }

  /// Dirty pages that must be flushed at `now`, appended to the caller's
  /// `out` (cleared first; keeping one buffer per caller makes periodic
  /// flusher wakeups allocation-free, even the frequent empty ones).
  ///
  /// `device_active` — whether the write-back target is currently in a
  /// high-power state (disk spinning / WNIC in CAM). Laptop mode flushes
  /// everything eagerly in that case ("eager writing back dirty blocks to
  /// active disks"), and otherwise only what has exceeded the laptop-mode
  /// expiry or what memory pressure forces out.
  void select_flush(const BufferCache& cache, Seconds now, bool device_active,
                    std::vector<DirtyPage>& out) const;

  std::vector<DirtyPage> select_flush(const BufferCache& cache, Seconds now,
                                      bool device_active) const;

  /// Next time the background flusher should run after `now`.
  Seconds next_wakeup(Seconds now) const { return now + config_.flush_interval; }

 private:
  WritebackConfig config_;
};

}  // namespace flexfetch::os
