#include "os/process.hpp"

#include "common/error.hpp"

namespace flexfetch::os {

void ProcessTable::register_program(trace::ProcessGroup pgid, std::string name,
                                    bool profiled) {
  programs_[pgid] = Program{std::move(name), profiled};
}

const std::string& ProcessTable::name_of(trace::ProcessGroup pgid) const {
  static const std::string kUnknown = "<unknown>";
  auto it = programs_.find(pgid);
  return it == programs_.end() ? kUnknown : it->second.name;
}

bool ProcessTable::is_profiled(trace::ProcessGroup pgid) const {
  auto it = programs_.find(pgid);
  return it != programs_.end() && it->second.profiled;
}

}  // namespace flexfetch::os
