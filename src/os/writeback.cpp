#include "os/writeback.hpp"

#include "common/error.hpp"

namespace flexfetch::os {

WritebackPolicy::WritebackPolicy(WritebackConfig config) : config_(config) {
  FF_REQUIRE(config.dirty_expire > Seconds{}, "writeback: dirty_expire must be positive");
  FF_REQUIRE(config.laptop_mode_expire >= config.dirty_expire,
             "writeback: laptop-mode expiry below normal expiry");
  FF_REQUIRE(config.flush_interval > Seconds{}, "writeback: flush interval must be positive");
}

void WritebackPolicy::select_flush(const BufferCache& cache, Seconds now,
                                   bool device_active,
                                   std::vector<DirtyPage>& out) const {
  out.clear();
  if (cache.dirty_count() == 0) return;

  if (device_active) {
    // Laptop mode: the device is already powered — flush everything that
    // has reached the normal expiry, plus piggyback the rest (eager flush).
    cache.append_dirty_pages(out);
    return;
  }
  if (cache.dirty_count() >= config_.dirty_pressure_pages) {
    cache.append_dirty_pages(out);  // Memory pressure overrides power saving.
    return;
  }
  cache.append_dirty_pages_older_than(now, config_.laptop_mode_expire, out);
}

std::vector<DirtyPage> WritebackPolicy::select_flush(const BufferCache& cache,
                                                     Seconds now,
                                                     bool device_active) const {
  std::vector<DirtyPage> out;
  select_flush(cache, now, device_active, out);
  return out;
}

}  // namespace flexfetch::os
