// 2Q buffer cache (Johnson & Shasha, VLDB'94) — the "2Q-like page
// replacement algorithm" the paper's simulator uses for the Linux buffer
// cache (Section 3.1).
//
// Three structures:
//   * A1in : FIFO of pages seen once recently (hot admission buffer),
//   * A1out: ghost FIFO of page ids recently evicted from A1in,
//   * Am   : LRU of pages re-referenced after leaving A1in.
//
// A page hit in A1out on (re)admission goes straight to Am; a brand-new page
// goes to A1in. Dirty state is tracked per page so the write-back substrate
// can find flush candidates.
//
// Storage layout: every page (resident or ghost) lives in one slot of a flat
// arena sized at construction to capacity + kout. The A1in/Am/A1out queues
// and the age-ordered dirty list are intrusive doubly-linked chains of slot
// indices, and a fixed-size open-addressing table maps PageId -> slot. After
// construction no operation allocates: lookup/fill/write/mark_clean run
// entirely inside the arena, and evicted dirty pages are appended to a
// caller-owned scratch buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "os/page.hpp"

namespace flexfetch::os {

struct BufferCacheConfig {
  /// Total cache capacity in pages (default 64 MiB of 4 KiB pages — a
  /// laptop-era memory budget).
  std::size_t capacity_pages = 16384;
  /// A1in capacity as a fraction of total (2Q paper recommends ~25%).
  double kin_fraction = 0.25;
  /// A1out ghost capacity as a fraction of total (2Q recommends ~50%).
  double kout_fraction = 0.50;
};

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t ghost_hits = 0;  ///< Misses whose id was in A1out.
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

/// A dirty page due for write-back.
struct DirtyPage {
  PageId page;
  Seconds dirtied_at = Seconds{0.0};
};

class BufferCache {
 public:
  explicit BufferCache(BufferCacheConfig config = {});

  /// True and promotes the page if resident (a cache hit).
  bool lookup(const PageId& id, Seconds now);

  /// True without promoting or counting a lookup (used by FlexFetch's
  /// Section 2.3.2 profile filtering).
  bool contains(const PageId& id) const;

  /// Inserts a clean page fetched from a device. Dirty pages evicted to
  /// make room are APPENDED to `flushed` (the caller owns the buffer and
  /// must flush them); nothing is cleared.
  void fill(const PageId& id, Seconds now, std::vector<DirtyPage>& flushed);

  /// Inserts/marks a page dirty (application write). Evictions reported as
  /// fill().
  void write(const PageId& id, Seconds now, std::vector<DirtyPage>& flushed);

  /// Allocating conveniences (tests / one-shot callers).
  std::vector<DirtyPage> fill(const PageId& id, Seconds now);
  std::vector<DirtyPage> write(const PageId& id, Seconds now);

  /// Marks a page clean after its write-back completed.
  void mark_clean(const PageId& id);

  /// Appends all dirty pages, oldest first, to `out`. O(dirty) — reads the
  /// insertion-ordered dirty chain (dirtied_at is monotone in simulation
  /// time, so insertion order IS age order).
  void append_dirty_pages(std::vector<DirtyPage>& out) const;

  /// Appends dirty pages whose age at `now` is at least `min_age`, oldest
  /// first. O(matches) — a prefix scan of the dirty chain.
  void append_dirty_pages_older_than(Seconds now, Seconds min_age,
                                     std::vector<DirtyPage>& out) const;

  std::vector<DirtyPage> dirty_pages() const;
  std::vector<DirtyPage> dirty_pages_older_than(Seconds now, Seconds min_age) const;

  std::size_t size() const { return a1in_.size + am_.size; }
  std::size_t capacity() const { return capacity_; }
  std::size_t dirty_count() const { return dirty_list_.size; }
  const CacheStats& stats() const { return stats_; }

  /// Drops every page (clean and dirty) — test helper / remount semantics.
  void clear();

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  /// Which chain a slot is linked into (kFree slots sit on the free list).
  enum class Where : std::uint8_t { kFree, kA1in, kAm, kA1out };

  struct Slot {
    PageId id;
    std::uint32_t prev = kNull;        ///< Queue chain (or free-list next).
    std::uint32_t next = kNull;
    std::uint32_t dirty_prev = kNull;  ///< Dirty chain, valid iff dirty.
    std::uint32_t dirty_next = kNull;
    Where where = Where::kFree;
    bool dirty = false;
    Seconds dirtied_at = Seconds{0.0};
  };

  /// Doubly-linked chain of slot indices; head = front (newest/MRU for the
  /// queues, oldest for the dirty list).
  struct Chain {
    std::uint32_t head = kNull;
    std::uint32_t tail = kNull;
    std::size_t size = 0;
  };

  struct MapEntry {
    PageId key;
    std::uint32_t slot = kNull;  ///< kNull = empty bucket.
  };

  // Open-addressing table (linear probe, backward-shift deletion); sized at
  // construction so it never rehashes.
  std::uint32_t map_find(const PageId& id) const;
  void map_insert(const PageId& id, std::uint32_t slot);
  void map_erase(const PageId& id);

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t s);

  void chain_push_front(Chain& c, std::uint32_t s);
  void chain_unlink(Chain& c, std::uint32_t s);

  void mark_dirty(std::uint32_t s, Seconds now);
  void dirty_unlink(std::uint32_t s);

  /// Ensures a free resident slot, evicting per 2Q; collects evicted dirty
  /// pages.
  void make_room(std::vector<DirtyPage>& flushed);
  void insert_new(const PageId& id, bool dirty, Seconds now,
                  std::vector<DirtyPage>& flushed);

  std::size_t capacity_;
  std::size_t kin_;
  std::size_t kout_;

  std::vector<Slot> arena_;  ///< capacity_ + kout_ slots, fixed size.
  std::uint32_t free_head_ = kNull;
  std::vector<MapEntry> map_;
  std::size_t map_mask_ = 0;

  Chain a1in_;   ///< head = newest, tail = FIFO eviction end.
  Chain am_;     ///< head = MRU, tail = LRU.
  Chain a1out_;  ///< ghost ids, head = newest.
  /// Dirty pages in dirtying order (head = oldest). Simulation time only
  /// moves forward, so the chain stays sorted by dirtied_at without ever
  /// being resorted; the flusher's age queries become prefix scans.
  Chain dirty_list_;
  CacheStats stats_;
};

}  // namespace flexfetch::os
