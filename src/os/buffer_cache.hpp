// 2Q buffer cache (Johnson & Shasha, VLDB'94) — the "2Q-like page
// replacement algorithm" the paper's simulator uses for the Linux buffer
// cache (Section 3.1).
//
// Three structures:
//   * A1in : FIFO of pages seen once recently (hot admission buffer),
//   * A1out: ghost FIFO of page ids recently evicted from A1in,
//   * Am   : LRU of pages re-referenced after leaving A1in.
//
// A page hit in A1out on (re)admission goes straight to Am; a brand-new page
// goes to A1in. Dirty state is tracked per page so the write-back substrate
// can find flush candidates.
#pragma once

#include <cstddef>
#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "os/page.hpp"

namespace flexfetch::os {

struct BufferCacheConfig {
  /// Total cache capacity in pages (default 64 MiB of 4 KiB pages — a
  /// laptop-era memory budget).
  std::size_t capacity_pages = 16384;
  /// A1in capacity as a fraction of total (2Q paper recommends ~25%).
  double kin_fraction = 0.25;
  /// A1out ghost capacity as a fraction of total (2Q recommends ~50%).
  double kout_fraction = 0.50;
};

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t ghost_hits = 0;  ///< Misses whose id was in A1out.
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

/// A dirty page due for write-back.
struct DirtyPage {
  PageId page;
  Seconds dirtied_at = 0.0;
};

class BufferCache {
 public:
  explicit BufferCache(BufferCacheConfig config = {});

  /// True and promotes the page if resident (a cache hit).
  bool lookup(const PageId& id, Seconds now);

  /// True without promoting or counting a lookup (used by FlexFetch's
  /// Section 2.3.2 profile filtering).
  bool contains(const PageId& id) const;

  /// Inserts a clean page fetched from a device. Returns any dirty pages
  /// evicted to make room (the caller must flush them).
  std::vector<DirtyPage> fill(const PageId& id, Seconds now);

  /// Inserts/marks a page dirty (application write). Returns evicted dirty
  /// pages, as fill().
  std::vector<DirtyPage> write(const PageId& id, Seconds now);

  /// Marks a page clean after its write-back completed.
  void mark_clean(const PageId& id);

  /// All dirty pages, oldest first. O(dirty) — reads the insertion-ordered
  /// dirty list (dirtied_at is monotone in simulation time, so insertion
  /// order IS age order).
  std::vector<DirtyPage> dirty_pages() const;

  /// Dirty pages whose age at `now` is at least `min_age`, oldest first.
  /// O(matches) — a prefix scan of the dirty list.
  std::vector<DirtyPage> dirty_pages_older_than(Seconds now, Seconds min_age) const;

  std::size_t size() const { return table_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t dirty_count() const { return dirty_.size(); }
  const CacheStats& stats() const { return stats_; }

  /// Drops every page (clean and dirty) — test helper / remount semantics.
  void clear();

 private:
  enum class Queue : std::uint8_t { kA1in, kAm };

  struct Entry {
    Queue queue;
    std::list<PageId>::iterator pos;
    bool dirty = false;
    Seconds dirtied_at = 0.0;
    /// Valid iff dirty: this page's node in dirty_ (O(1) mark_clean/evict).
    std::list<DirtyPage>::iterator dirty_pos;
  };

  void mark_dirty(const PageId& id, Entry& e, Seconds now);

  /// Ensures a free slot, evicting per 2Q; collects evicted dirty pages.
  void make_room(std::vector<DirtyPage>& flushed);
  void insert_new(const PageId& id, bool dirty, Seconds now,
                  std::vector<DirtyPage>& flushed);
  void evict(const PageId& id, std::vector<DirtyPage>& flushed);
  void push_ghost(const PageId& id);

  std::size_t capacity_;
  std::size_t kin_;
  std::size_t kout_;

  std::list<PageId> a1in_;  ///< front = newest, back = FIFO eviction end.
  std::list<PageId> am_;    ///< front = MRU, back = LRU.
  std::list<PageId> a1out_;  ///< ghost ids, front = newest.
  /// Dirty pages in dirtying order (front = oldest). Simulation time only
  /// moves forward, so the list stays sorted by dirtied_at without ever
  /// being resorted; the flusher's age queries become prefix scans.
  std::list<DirtyPage> dirty_;
  std::unordered_map<PageId, Entry, PageIdHash> table_;
  std::unordered_map<PageId, std::list<PageId>::iterator, PageIdHash> ghost_table_;
  CacheStats stats_;
};

}  // namespace flexfetch::os
