#include "os/io_scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexfetch::os {

namespace {

/// First queue entry with start LBA >= lba.
std::vector<device::DeviceRequest>::iterator lower_bound_lba(
    std::vector<device::DeviceRequest>& queue, Bytes lba) {
  return std::lower_bound(
      queue.begin(), queue.end(), lba,
      [](const device::DeviceRequest& r, Bytes key) { return r.lba < key; });
}

}  // namespace

void CScanScheduler::submit(const device::DeviceRequest& req) {
  FF_REQUIRE(req.size > Bytes{}, "scheduler: zero-size request");
  ++stats_.submitted;

  // Try to merge with the predecessor (ends exactly where req starts).
  if (!queue_.empty()) {
    auto next = lower_bound_lba(queue_, req.lba);
    if (next != queue_.begin()) {
      auto prev = std::prev(next);
      device::DeviceRequest& p = *prev;
      if (p.is_write == req.is_write && p.lba + p.size == req.lba) {
        p.size += req.size;
        ++stats_.merged;
        // The grown request may now abut its successor; fold that in too.
        if (next != queue_.end() && next->is_write == p.is_write &&
            p.lba + p.size == next->lba) {
          p.size += next->size;
          queue_.erase(next);
          ++stats_.merged;
        }
        return;
      }
    }
    // Try to merge with the successor (req ends exactly where it starts).
    if (next != queue_.end() && next->is_write == req.is_write &&
        req.lba + req.size == next->lba) {
      next->lba = req.lba;
      next->size += req.size;
      ++stats_.merged;
      return;
    }
    if (next != queue_.end() && next->lba == req.lba) {
      // Overlapping start: widen the existing entry (rare; conservative).
      next->size = std::max(next->size, req.size);
      ++stats_.merged;
      return;
    }
    queue_.insert(next, req);
    return;
  }

  queue_.push_back(req);
}

std::optional<device::DeviceRequest> CScanScheduler::dispatch() {
  if (queue_.empty()) return std::nullopt;
  auto it = lower_bound_lba(queue_, head_);
  if (it == queue_.end()) {
    it = queue_.begin();  // C-SCAN wrap: jump back to the lowest LBA.
    ++stats_.sweeps;
  }
  const device::DeviceRequest req = *it;
  queue_.erase(it);
  head_ = req.lba + req.size;
  ++stats_.dispatched;
  return req;
}

}  // namespace flexfetch::os
