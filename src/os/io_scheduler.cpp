#include "os/io_scheduler.hpp"

#include "common/error.hpp"

namespace flexfetch::os {

void CScanScheduler::submit(const device::DeviceRequest& req) {
  FF_REQUIRE(req.size > 0, "scheduler: zero-size request");
  ++stats_.submitted;

  // Try to merge with the predecessor (ends exactly where req starts).
  if (!queue_.empty()) {
    auto next = queue_.lower_bound(req.lba);
    if (next != queue_.begin()) {
      auto prev = std::prev(next);
      device::DeviceRequest& p = prev->second;
      if (p.is_write == req.is_write && p.lba + p.size == req.lba) {
        p.size += req.size;
        ++stats_.merged;
        // The grown request may now abut its successor; fold that in too.
        if (next != queue_.end() && next->second.is_write == p.is_write &&
            p.lba + p.size == next->first) {
          p.size += next->second.size;
          queue_.erase(next);
          ++stats_.merged;
        }
        return;
      }
    }
    // Try to merge with the successor (req ends exactly where it starts).
    if (next != queue_.end() && next->second.is_write == req.is_write &&
        req.lba + req.size == next->first) {
      device::DeviceRequest grown = next->second;
      grown.lba = req.lba;
      grown.size += req.size;
      queue_.erase(next);
      queue_.emplace(grown.lba, grown);
      ++stats_.merged;
      return;
    }
  }

  auto [it, inserted] = queue_.emplace(req.lba, req);
  if (!inserted) {
    // Overlapping start: widen the existing entry (rare; conservative).
    it->second.size = std::max(it->second.size, req.size);
    ++stats_.merged;
  }
}

std::optional<device::DeviceRequest> CScanScheduler::dispatch() {
  if (queue_.empty()) return std::nullopt;
  auto it = queue_.lower_bound(head_);
  if (it == queue_.end()) {
    it = queue_.begin();  // C-SCAN wrap: jump back to the lowest LBA.
    ++stats_.sweeps;
  }
  device::DeviceRequest req = it->second;
  queue_.erase(it);
  head_ = req.lba + req.size;
  ++stats_.dispatched;
  return req;
}

}  // namespace flexfetch::os
