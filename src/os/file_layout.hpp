// Maps file bytes to linear disk addresses.
//
// The paper lays traced files out sequentially on the disk "with a small
// random distance between files to simulate a real layout" (Section 3.2),
// and assumes sequential file data is contiguous on disk (FFS-style
// allocation, Section 2.1). This mapper reproduces that: files are placed in
// first-touch order, each followed by a random gap.
#pragma once

#include <map>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "trace/record.hpp"

namespace flexfetch::os {

class FileLayout {
 public:
  explicit FileLayout(Bytes capacity = 30 * kGiB, std::uint64_t seed = 42,
                      Bytes min_gap = 4 * kKiB, Bytes max_gap = 512 * kKiB);

  /// Places a file of `size` bytes at the next free position (no-op if the
  /// file is already placed with at least this extent; growing a file moves
  /// its tail allocation only in the trivial in-place case, otherwise the
  /// extent is simply extended — contiguity is an explicit model assumption).
  void ensure(trace::Inode inode, Bytes size);

  /// Places every file of a trace's extent map (in inode order).
  void place_all(const std::map<trace::Inode, Bytes>& extents);

  bool contains(trace::Inode inode) const;

  /// Linear byte address of (inode, offset). The file must be placed.
  Bytes lba(trace::Inode inode, Bytes offset) const;

  /// Known size of a file (0 if never placed).
  Bytes extent_of(trace::Inode inode) const;

  std::size_t file_count() const { return start_.size(); }
  Bytes bytes_allocated() const { return next_free_; }

 private:
  Bytes capacity_;
  Bytes min_gap_;
  Bytes max_gap_;
  Bytes next_free_ = Bytes{0};
  Rng rng_;
  std::unordered_map<trace::Inode, Bytes> start_;
  std::unordered_map<trace::Inode, Bytes> extent_;
};

}  // namespace flexfetch::os
