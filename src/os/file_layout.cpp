#include "os/file_layout.hpp"

#include "common/error.hpp"

namespace flexfetch::os {

FileLayout::FileLayout(Bytes capacity, std::uint64_t seed, Bytes min_gap,
                       Bytes max_gap)
    : capacity_(capacity), min_gap_(min_gap), max_gap_(max_gap), rng_(seed) {
  FF_REQUIRE(capacity > Bytes{}, "file layout: zero capacity");
  FF_REQUIRE(min_gap <= max_gap, "file layout: min_gap > max_gap");
}

void FileLayout::ensure(trace::Inode inode, Bytes size) {
  auto it = start_.find(inode);
  if (it != start_.end()) {
    Bytes& ext = extent_[inode];
    if (size > ext) {
      // Growing the extent keeps the file contiguous by model assumption;
      // if the growth collides with the next allocation we still treat the
      // address range as logically contiguous for seek purposes.
      if (it->second + size > next_free_) next_free_ = it->second + size;
      ext = size;
    }
    return;
  }
  const Bytes gap =
      min_gap_ + Bytes{rng_.uniform_int(0, (max_gap_ - min_gap_).value())};
  const Bytes start = next_free_ + gap;
  if (start + size > capacity_) {
    throw ConfigError("file layout: disk capacity exhausted");
  }
  start_[inode] = start;
  extent_[inode] = size;
  next_free_ = start + size;
}

void FileLayout::place_all(const std::map<trace::Inode, Bytes>& extents) {
  for (const auto& [inode, size] : extents) ensure(inode, size);
}

bool FileLayout::contains(trace::Inode inode) const {
  return start_.contains(inode);
}

Bytes FileLayout::extent_of(trace::Inode inode) const {
  auto it = extent_.find(inode);
  return it == extent_.end() ? Bytes{} : it->second;
}

Bytes FileLayout::lba(trace::Inode inode, Bytes offset) const {
  auto it = start_.find(inode);
  FF_REQUIRE(it != start_.end(), "file layout: unknown inode");
  return it->second + offset;
}

}  // namespace flexfetch::os
