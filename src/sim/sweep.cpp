#include "sim/sweep.hpp"

#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "policies/factory.hpp"

namespace flexfetch::sim {

JobsResolution resolve_jobs_detail(int requested) {
  JobsResolution r;
  r.requested = requested > 0 ? requested : 0;
  if (requested > 0) {
    r.effective = requested;
    return r;
  }
  if (const char* env = std::getenv("FF_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      r.effective = n;
      r.from_env = true;
      return r;
    }
  }
  // Unset: clamp to what the host can actually run in parallel.
  r.effective = static_cast<int>(ThreadPool::default_concurrency());
  return r;
}

int resolve_jobs(int requested) {
  return resolve_jobs_detail(requested).effective;
}

SimResult run_cell(const SweepCell& cell) {
  FF_REQUIRE(cell.scenario != nullptr, "sweep: cell has no scenario");
  SimConfig config = cell.config;
  config.wnic = cell.wnic;
  auto policy = policies::make_policy(cell.policy, cell.scenario->profiles,
                                      &cell.scenario->oracle_future,
                                      cell.loss_rate);
  Simulator simulator(config, cell.scenario->programs, *policy);
  return simulator.run();
}

std::vector<SimResult> run_sweep(const std::vector<SweepCell>& cells,
                                 const SweepOptions& options) {
  std::vector<SimResult> results(cells.size());
  const int jobs = resolve_jobs(options.jobs);
  if (jobs <= 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = run_cell(cells[i]);
    }
    return results;
  }
  ThreadPool pool(static_cast<unsigned>(jobs));
  parallel_for(pool, cells.size(),
               [&](std::size_t i) { results[i] = run_cell(cells[i]); });
  return results;
}

void run_sweep_streaming(const std::vector<SweepCell>& cells,
                         const SweepOptions& options, const CellSink& sink) {
  FF_REQUIRE(sink != nullptr, "run_sweep_streaming: null sink");
  const int jobs = resolve_jobs(options.jobs);
  if (jobs <= 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      sink(i, cells[i], run_cell(cells[i]));
    }
    return;
  }

  // Bounded-reorder streaming: workers take cells in grid order (the pool
  // queue is FIFO) but may finish out of order; completed results park in
  // `parked` until the emission cursor reaches them. A worker may not
  // *start* a cell more than `window` ahead of the cursor, which bounds
  // parked results — and therefore peak memory — at O(jobs).
  //
  // No deadlock: the gate admits any index < next_emit + window, and with
  // window >= jobs the cell at next_emit is always either already parked
  // (the cursor then advances) or held by a worker whose gate is open.
  const std::size_t window = static_cast<std::size_t>(jobs) * 4;
  std::mutex mu;
  std::condition_variable gate;
  std::map<std::size_t, SimResult> parked;
  std::size_t next_emit = 0;
  std::exception_ptr first_error;

  const auto run_one = [&](std::size_t i) {
    {
      std::unique_lock lock(mu);
      gate.wait(lock, [&] {
        return first_error != nullptr || i < next_emit + window;
      });
      if (first_error != nullptr) return;  // Drain without running.
    }
    SimResult result;
    std::exception_ptr error;
    try {
      result = run_cell(cells[i]);
    } catch (...) {
      error = std::current_exception();
    }
    std::unique_lock lock(mu);
    if (error != nullptr) {
      if (first_error == nullptr) first_error = error;
      gate.notify_all();
      return;
    }
    parked.emplace(i, std::move(result));
    // Whoever completes the head of the window drains every consecutive
    // parked result. The sink runs under the lock: serial, in order.
    while (first_error == nullptr && !parked.empty() &&
           parked.begin()->first == next_emit) {
      auto node = parked.extract(parked.begin());
      const std::size_t idx = node.key();
      try {
        sink(idx, cells[idx], std::move(node.mapped()));
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
        break;
      }
      ++next_emit;
    }
    gate.notify_all();
  };

  {
    ThreadPool pool(static_cast<unsigned>(jobs));
    parallel_for(pool, cells.size(), run_one);
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void RunningStat::add(double x) {
  ++n_;
  if (n_ == 1) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * (nb / n_total);
  m2_ += other.m2_ + delta * delta * (na * nb / n_total);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void StratumAggregate::add(const SimResult& result) {
  ++cells;
  energy_j.add(result.total_energy().value());
  disk_energy_j.add(result.disk_energy().value());
  wnic_energy_j.add(result.wnic_energy().value());
  makespan_s.add(result.makespan.value());
  io_time_s.add(result.io_time.value());
  metrics.merge(result.metrics);
}

void StratumAggregate::merge(const StratumAggregate& other) {
  cells += other.cells;
  energy_j.merge(other.energy_j);
  disk_energy_j.merge(other.disk_energy_j);
  wnic_energy_j.merge(other.wnic_energy_j);
  makespan_s.merge(other.makespan_s);
  io_time_s.merge(other.io_time_s);
  metrics.merge(other.metrics);
}

void SweepAggregator::add(const SweepCell& cell, const SimResult& result) {
  ++cells_seen_;
  std::string key =
      (cell.scenario != nullptr ? cell.scenario->name : std::string{"?"});
  key += '/';
  key += cell.policy;
  strata_[std::move(key)].add(result);
}

void SweepAggregator::merge(const SweepAggregator& other) {
  cells_seen_ += other.cells_seen_;
  for (const auto& [key, st] : other.strata_) strata_[key].merge(st);
}

void SweepAggregator::merge_stratum(const std::string& key,
                                    const StratumAggregate& partial) {
  cells_seen_ += partial.cells;
  strata_[key].merge(partial);
}

void SweepAggregator::restore_stratum(std::string key,
                                      StratumAggregate partial) {
  FF_REQUIRE(!strata_.contains(key),
             "sweep: restore_stratum over an existing stratum");
  cells_seen_ += partial.cells;
  strata_.emplace(std::move(key), std::move(partial));
}

std::uint64_t fold_result_digest(std::uint64_t digest,
                                 const SimResult& result) {
  const auto fold_u64 = [&digest](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      digest = (digest ^ ((v >> (byte * 8)) & 0xffULL)) * 0x100000001b3ULL;
    }
  };
  const auto fold_double = [&](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    fold_u64(bits);
  };
  for (const char c : result.policy) {
    fold_u64(static_cast<unsigned char>(c));
  }
  fold_double(result.makespan.value());
  fold_double(result.io_time.value());
  fold_double(result.total_energy().value());
  fold_double(result.disk_energy().value());
  fold_double(result.wnic_energy().value());
  fold_u64(result.syscalls);
  fold_u64(result.disk_requests);
  fold_u64(result.net_requests);
  fold_u64(result.disk_bytes.value());
  fold_u64(result.net_bytes.value());
  return digest;
}

std::vector<SweepCell> make_grid(
    const std::vector<const workloads::ScenarioBundle*>& scenarios,
    const std::vector<std::string>& policies,
    const std::vector<device::WnicParams>& wnics, const SimConfig& base) {
  std::vector<SweepCell> cells;
  cells.reserve(scenarios.size() * policies.size() * wnics.size());
  for (const auto* scenario : scenarios) {
    for (const auto& policy : policies) {
      for (const auto& wnic : wnics) {
        SweepCell cell;
        cell.scenario = scenario;
        cell.policy = policy;
        cell.wnic = wnic;
        cell.config = base;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_sweep_json(std::ostream& os, const std::vector<SweepCell>& cells,
                      const std::vector<SimResult>& results,
                      const SweepRunInfo& info) {
  FF_REQUIRE(cells.size() == results.size(),
             "write_sweep_json: cells/results size mismatch");
  const unsigned hw = info.hardware_concurrency != 0
                          ? info.hardware_concurrency
                          : ThreadPool::default_concurrency();
  os << "{\n";
  os << "  \"jobs\": " << info.jobs << ",\n";
  os << "  \"jobs_requested\": " << info.jobs_requested << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"wall_seconds\": " << info.wall_seconds << ",\n";
  os << "  \"serial_wall_seconds\": " << info.serial_wall_seconds << ",\n";
  os << "  \"speedup\": " << info.speedup() << ",\n";
  os << "  \"serial_fallback\": " << (info.serial_fallback ? "true" : "false")
     << ",\n";
  os << "  \"peak_rss_bytes\": " << info.peak_rss_bytes << ",\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    const SimResult& r = results[i];
    os << "    {\"scenario\": ";
    write_json_string(os, c.scenario != nullptr ? c.scenario->name : "");
    os << ", \"policy\": ";
    write_json_string(os, c.policy);
    if (!c.axis.empty()) {
      os << ", \"axis\": ";
      write_json_string(os, c.axis);
      os << ", \"axis_value\": " << c.axis_value;
    }
    os << ", \"latency_ms\": " << (c.wnic.latency * 1e3).value();
    os << ", \"bandwidth_mbps\": " << c.wnic.bandwidth / units::mbps(1.0);
    os << ", \"energy_j\": " << r.total_energy().value();
    os << ", \"disk_energy_j\": " << r.disk_energy().value();
    os << ", \"wnic_energy_j\": " << r.wnic_energy().value();
    os << ", \"makespan_s\": " << r.makespan.value();
    os << ", \"io_time_s\": " << r.io_time.value();
    if (!r.metrics.empty()) {
      os << ", \"metrics\": {";
      bool first = true;
      for (const auto& [name, metric] : r.metrics.items()) {
        if (!first) os << ", ";
        first = false;
        write_json_string(os, name);
        os << ": " << metric.value;
      }
      os << "}";
    }
    os << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

namespace {

void write_stat(std::ostream& os, const char* key, const RunningStat& s) {
  os << '"' << key << "\": {\"mean\": " << s.mean()
     << ", \"stddev\": " << s.stddev() << ", \"min\": " << s.min()
     << ", \"max\": " << s.max() << "}";
}

}  // namespace

double histogram_quantile(const telemetry::Histogram& h, double q) {
  if (h.empty()) return 0.0;  // No samples — no quantiles to report.
  // Clamp the rank to [1, count]: q <= 0 lands on the first populated
  // bucket rather than tripping the `seen >= 0` degenerate match at
  // bucket 0, and q >= 1 is the max-populated bucket.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(h.count()))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < telemetry::Histogram::kBuckets; ++b) {
    seen += h.buckets()[b];
    if (seen >= target) return telemetry::Histogram::bucket_upper_edge(b);
  }
  return h.max();
}

void write_strata_json(std::ostream& os, const SweepAggregator& agg,
                       int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "\"strata\": [\n";
  std::size_t i = 0;
  const auto& strata = agg.strata();
  for (const auto& [key, st] : strata) {
    os << pad << "  {\"key\": ";
    write_json_string(os, key);
    os << ", \"cells\": " << st.cells << ",\n" << pad << "   ";
    write_stat(os, "energy_j", st.energy_j);
    os << ",\n" << pad << "   ";
    write_stat(os, "disk_energy_j", st.disk_energy_j);
    os << ",\n" << pad << "   ";
    write_stat(os, "wnic_energy_j", st.wnic_energy_j);
    os << ",\n" << pad << "   ";
    write_stat(os, "makespan_s", st.makespan_s);
    os << ",\n" << pad << "   ";
    write_stat(os, "io_time_s", st.io_time_s);
    if (!st.metrics.items().empty()) {
      os << ",\n" << pad << "   \"metrics\": {";
      bool first = true;
      for (const auto& [name, metric] : st.metrics.items()) {
        if (!first) os << ", ";
        first = false;
        write_json_string(os, name);
        os << ": " << metric.value;
      }
      os << "}";
    }
    if (!st.metrics.histograms().empty()) {
      os << ",\n" << pad << "   \"histograms\": {";
      bool first = true;
      for (const auto& [name, h] : st.metrics.histograms()) {
        if (!first) os << ", ";
        first = false;
        write_json_string(os, name);
        os << ": {\"count\": " << h.count() << ", \"mean\": " << h.mean()
           << ", \"min\": " << h.min() << ", \"max\": " << h.max()
           << ", \"p50\": " << histogram_quantile(h, 0.50)
           << ", \"p99\": " << histogram_quantile(h, 0.99) << "}";
      }
      os << "}";
    }
    os << "}" << (++i < strata.size() ? "," : "") << "\n";
  }
  os << pad << "]";
}

void write_aggregate_json(std::ostream& os, const SweepAggregator& agg,
                          const SweepRunInfo& info) {
  const unsigned hw = info.hardware_concurrency != 0
                          ? info.hardware_concurrency
                          : ThreadPool::default_concurrency();
  os << "{\n";
  os << "  \"jobs\": " << info.jobs << ",\n";
  os << "  \"jobs_requested\": " << info.jobs_requested << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"wall_seconds\": " << info.wall_seconds << ",\n";
  os << "  \"serial_fallback\": " << (info.serial_fallback ? "true" : "false")
     << ",\n";
  os << "  \"peak_rss_bytes\": " << info.peak_rss_bytes << ",\n";
  os << "  \"cells\": " << agg.cells_seen() << ",\n";
  write_strata_json(os, agg, 2);
  os << "\n}\n";
}

void write_sweep_summary_json(std::ostream& os, const SweepAggregator& agg,
                              const SweepRunInfo& info,
                              std::uint64_t cell_count,
                              std::uint64_t cells_digest) {
  const unsigned hw = info.hardware_concurrency != 0
                          ? info.hardware_concurrency
                          : ThreadPool::default_concurrency();
  char digest_hex[19];
  std::snprintf(digest_hex, sizeof(digest_hex), "0x%016llx",
                static_cast<unsigned long long>(cells_digest));
  os << "{\n";
  os << "  \"jobs\": " << info.jobs << ",\n";
  os << "  \"jobs_requested\": " << info.jobs_requested << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"wall_seconds\": " << info.wall_seconds << ",\n";
  os << "  \"serial_wall_seconds\": " << info.serial_wall_seconds << ",\n";
  os << "  \"speedup\": " << info.speedup() << ",\n";
  os << "  \"serial_fallback\": " << (info.serial_fallback ? "true" : "false")
     << ",\n";
  os << "  \"peak_rss_bytes\": " << info.peak_rss_bytes << ",\n";
  os << "  \"cells_mode\": \"off\",\n";
  os << "  \"cell_count\": " << cell_count << ",\n";
  os << "  \"cells_digest\": \"" << digest_hex << "\",\n";
  write_strata_json(os, agg, 2);
  os << "\n}\n";
}

}  // namespace flexfetch::sim
