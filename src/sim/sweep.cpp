#include "sim/sweep.hpp"

#include <cstdlib>
#include <ostream>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "policies/factory.hpp"

namespace flexfetch::sim {

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FF_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return static_cast<int>(ThreadPool::default_concurrency());
}

SimResult run_cell(const SweepCell& cell) {
  FF_REQUIRE(cell.scenario != nullptr, "sweep: cell has no scenario");
  SimConfig config = cell.config;
  config.wnic = cell.wnic;
  auto policy = policies::make_policy(cell.policy, cell.scenario->profiles,
                                      &cell.scenario->oracle_future,
                                      cell.loss_rate);
  Simulator simulator(config, cell.scenario->programs, *policy);
  return simulator.run();
}

std::vector<SimResult> run_sweep(const std::vector<SweepCell>& cells,
                                 const SweepOptions& options) {
  std::vector<SimResult> results(cells.size());
  const int jobs = resolve_jobs(options.jobs);
  if (jobs <= 1 || cells.size() <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      results[i] = run_cell(cells[i]);
    }
    return results;
  }
  ThreadPool pool(static_cast<unsigned>(jobs));
  parallel_for(pool, cells.size(),
               [&](std::size_t i) { results[i] = run_cell(cells[i]); });
  return results;
}

std::vector<SweepCell> make_grid(
    const std::vector<const workloads::ScenarioBundle*>& scenarios,
    const std::vector<std::string>& policies,
    const std::vector<device::WnicParams>& wnics, const SimConfig& base) {
  std::vector<SweepCell> cells;
  cells.reserve(scenarios.size() * policies.size() * wnics.size());
  for (const auto* scenario : scenarios) {
    for (const auto& policy : policies) {
      for (const auto& wnic : wnics) {
        SweepCell cell;
        cell.scenario = scenario;
        cell.policy = policy;
        cell.wnic = wnic;
        cell.config = base;
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_sweep_json(std::ostream& os, const std::vector<SweepCell>& cells,
                      const std::vector<SimResult>& results,
                      const SweepRunInfo& info) {
  FF_REQUIRE(cells.size() == results.size(),
             "write_sweep_json: cells/results size mismatch");
  const unsigned hw = info.hardware_concurrency != 0
                          ? info.hardware_concurrency
                          : ThreadPool::default_concurrency();
  os << "{\n";
  os << "  \"jobs\": " << info.jobs << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"wall_seconds\": " << info.wall_seconds << ",\n";
  os << "  \"serial_wall_seconds\": " << info.serial_wall_seconds << ",\n";
  os << "  \"speedup\": " << info.speedup() << ",\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    const SimResult& r = results[i];
    os << "    {\"scenario\": ";
    write_json_string(os, c.scenario != nullptr ? c.scenario->name : "");
    os << ", \"policy\": ";
    write_json_string(os, c.policy);
    if (!c.axis.empty()) {
      os << ", \"axis\": ";
      write_json_string(os, c.axis);
      os << ", \"axis_value\": " << c.axis_value;
    }
    os << ", \"latency_ms\": " << (c.wnic.latency * 1e3).value();
    os << ", \"bandwidth_mbps\": " << c.wnic.bandwidth / units::mbps(1.0);
    os << ", \"energy_j\": " << r.total_energy().value();
    os << ", \"disk_energy_j\": " << r.disk_energy().value();
    os << ", \"wnic_energy_j\": " << r.wnic_energy().value();
    os << ", \"makespan_s\": " << r.makespan.value();
    os << ", \"io_time_s\": " << r.io_time.value();
    if (!r.metrics.empty()) {
      os << ", \"metrics\": {";
      bool first = true;
      for (const auto& [name, metric] : r.metrics.items()) {
        if (!first) os << ", ";
        first = false;
        write_json_string(os, name);
        os << ": " << metric.value;
      }
      os << "}";
    }
    os << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

}  // namespace flexfetch::sim
