// Read/write view of the simulated machine handed to policies.
#pragma once

#include "common/units.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "energy/battery.hpp"
#include "os/file_layout.hpp"
#include "os/process.hpp"
#include "os/vfs.hpp"
#include "telemetry/recorder.hpp"

namespace flexfetch::faults {
struct FaultSchedule;
class SimAudit;
}  // namespace flexfetch::faults

namespace flexfetch::sim {

class SimContext {
 public:
  SimContext(device::Disk& disk, device::Wnic& wnic, os::Vfs& vfs,
             os::FileLayout& layout, os::ProcessTable& processes,
             telemetry::Recorder* recorder = nullptr,
             const faults::FaultSchedule* faults = nullptr,
             faults::SimAudit* audit = nullptr)
      : disk_(disk), wnic_(wnic), vfs_(vfs), layout_(layout),
        processes_(processes), recorder_(recorder), faults_(faults),
        audit_(audit) {}

  Seconds now() const { return now_; }
  void set_now(Seconds t) { now_ = t; }

  device::Disk& disk() { return disk_; }
  const device::Disk& disk() const { return disk_; }
  device::Wnic& wnic() { return wnic_; }
  const device::Wnic& wnic() const { return wnic_; }

  os::Vfs& vfs() { return vfs_; }
  const os::Vfs& vfs() const { return vfs_; }
  os::FileLayout& layout() { return layout_; }
  const os::ProcessTable& processes() const { return processes_; }

  /// The simulator's event recorder, or nullptr when telemetry is off.
  /// Policies may emit their own events through it.
  telemetry::Recorder* recorder() const { return recorder_; }

  /// The run's fault schedule, or nullptr when no faults are injected.
  /// Policies may consult it to react to an ongoing outage/stall.
  const faults::FaultSchedule* faults() const { return faults_; }

  /// The run's invariant auditor, or nullptr when auditing is off.
  faults::SimAudit* audit() const { return audit_; }

  /// The simulator's battery tracker (read-only for policies; the
  /// simulator owns and advances it), or nullptr when no battery is
  /// modeled (contexts built outside a Simulator). Adaptive loss-rate
  /// curves read their BatteryState here.
  const energy::BatteryTracker* battery() const { return battery_; }
  void set_battery(const energy::BatteryTracker* battery) {
    battery_ = battery;
  }

 private:
  Seconds now_ = Seconds{0.0};
  device::Disk& disk_;
  device::Wnic& wnic_;
  os::Vfs& vfs_;
  os::FileLayout& layout_;
  os::ProcessTable& processes_;
  telemetry::Recorder* recorder_ = nullptr;
  const faults::FaultSchedule* faults_ = nullptr;
  faults::SimAudit* audit_ = nullptr;
  const energy::BatteryTracker* battery_ = nullptr;
};

}  // namespace flexfetch::sim
