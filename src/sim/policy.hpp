// The data-source policy interface.
//
// A Policy decides, for every device-level request, whether it is serviced
// by the local disk or by the remote server over the WNIC (the two replicas
// of Section 1). Policies observe syscalls and service results so that
// history-aware schemes (FlexFetch) and reactive schemes (BlueFS) can both
// be expressed.
#pragma once

#include <string>

#include "device/request.hpp"
#include "trace/record.hpp"

namespace flexfetch::telemetry {
class MetricsRegistry;
}

namespace flexfetch::sim {

class SimContext;

/// Everything a policy may inspect about one device-level request.
struct RequestContext {
  device::DeviceRequest request;
  /// Originating syscall, or nullptr for write-back traffic.
  const trace::SyscallRecord* syscall = nullptr;
  trace::ProcessGroup pgid = 0;
  /// Whether the owning program is profiled by FlexFetch (Section 2.3.3
  /// distinguishes profiled programs from other disk users).
  bool profiled = true;
  /// Data available only on the local disk (e.g. the xmms MP3 collection of
  /// Section 3.3.4); the simulator forces such requests to the disk.
  bool disk_pinned = false;
  bool is_writeback = false;
};

class Policy {
 public:
  virtual ~Policy() = default;

  /// Called once before the simulation starts.
  virtual void begin(SimContext& /*ctx*/) {}

  /// Chooses the device for a request. Called only for requests that are
  /// not disk-pinned.
  virtual device::DeviceKind select(const RequestContext& req, SimContext& ctx) = 0;

  /// Observes every application syscall (including cache hits); lets
  /// history-aware policies maintain the current run's profile.
  virtual void on_syscall(const trace::SyscallRecord& /*r*/, SimContext& /*ctx*/) {}

  /// Observes the outcome of every serviced device request, including
  /// disk-pinned ones the policy did not choose.
  virtual void observe(const RequestContext& /*req*/, device::DeviceKind /*used*/,
                       const device::ServiceResult& /*result*/,
                       SimContext& /*ctx*/) {}

  /// Called once after the last request completes.
  virtual void end(SimContext& /*ctx*/) {}

  /// Contributes policy-specific metrics to the run's registry (called by
  /// the simulator after end() when telemetry is enabled).
  virtual void export_metrics(telemetry::MetricsRegistry& /*metrics*/) const {}

  virtual std::string name() const = 0;
};

}  // namespace flexfetch::sim
