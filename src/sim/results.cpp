#include "sim/results.hpp"

#include <sstream>

#include "common/format.hpp"

namespace flexfetch::sim {

std::string SimResult::report() const {
  std::ostringstream os;
  os << "policy: " << policy << '\n';
  os << "  makespan: " << format_seconds(makespan)
     << "  io-time: " << format_seconds(io_time) << '\n';
  os << "  energy total: " << format_joules(total_energy())
     << "  (disk " << format_joules(disk_energy()) << ", wnic "
     << format_joules(wnic_energy()) << ")\n";
  os << "  disk: " << disk_requests << " reqs, " << format_bytes(disk_bytes)
     << ", " << disk_counters.spin_ups << " spin-ups\n";
  os << "  wnic: " << net_requests << " reqs, " << format_bytes(net_bytes)
     << ", " << wnic_counters.wakes << " wakes, " << wnic_counters.psm_transfers
     << " psm-transfers\n";
  os << "  cache: " << cache_stats.lookups << " lookups, "
     << strprintf("%.1f%%", cache_stats.hit_rate() * 100.0) << " hit rate\n";
  if (sync_batches > 0) {
    os << "  sync: " << format_bytes(sync_bytes) << " in " << sync_batches
       << " batches\n";
  }
  os << "  disk energy breakdown:\n" << disk_meter.report();
  os << "  wnic energy breakdown:\n" << wnic_meter.report();
  return os.str();
}

}  // namespace flexfetch::sim
