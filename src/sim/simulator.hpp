// Trace-driven discrete-event simulator of the mobile I/O stack.
//
// Replays one or more syscall traces closed-loop (request i+1 becomes ready
// `think time` after request i completes, so wall-clock time depends on the
// chosen devices), through the VFS (buffer cache + readahead), to the disk
// and WNIC power models, under a pluggable data-source Policy. This is the
// counterpart of the simulator described in Section 3.1 of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "device/adaptive_timeout.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "energy/battery.hpp"
#include "faults/audit.hpp"
#include "faults/schedule.hpp"
#include "hoard/sync.hpp"
#include "medium/link.hpp"
#include "os/file_layout.hpp"
#include "os/io_scheduler.hpp"
#include "os/process.hpp"
#include "os/vfs.hpp"
#include "sim/context.hpp"
#include "sim/policy.hpp"
#include "sim/results.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "trace/compiled.hpp"
#include "trace/trace.hpp"

namespace flexfetch::sim {

/// One program participating in a simulation.
struct ProgramSpec {
  trace::Trace trace;
  std::string name;
  /// Tracked by FlexFetch profiles (Section 2.3.3 distinguishes profiled
  /// programs from other disk users).
  bool profiled = true;
  /// Data exists only on the local disk (forces all its requests there),
  /// like the xmms MP3 files of Section 3.3.4.
  bool disk_pinned = false;
  /// Optional pre-compiled form of `trace` (derived data only — see
  /// trace/compiled.hpp). Sharing one across simulations of the same trace
  /// (e.g. a sweep grid) skips the per-Simulator compilation; when null the
  /// Simulator compiles the trace itself.
  std::shared_ptr<const trace::CompiledTrace> compiled = nullptr;
};

struct SimConfig {
  device::DiskParams disk = device::DiskParams::hitachi_dk23da_distance();
  device::WnicParams wnic = device::WnicParams::cisco_aironet350();
  os::VfsConfig vfs;
  std::uint64_t layout_seed = 42;
  /// Run the periodic background flusher (asynchronous write-back).
  bool enable_writeback = true;
  /// Order batched disk requests with the C-SCAN elevator (false = FIFO,
  /// for the scheduler ablation; only measurable with the kDistance disk
  /// seek model).
  bool use_cscan = true;
  /// Run the replica synchronization daemon: local writes accumulate
  /// upload debt that is periodically shipped to the server over the WNIC
  /// (the hoarding-system traffic the paper's Section 5 assumes away).
  bool enable_sync = false;
  hoard::SyncConfig sync;
  /// Adapt the disk's spin-down timeout at run time (Douglis/Helmbold
  /// style, the paper's Section 4 related work) instead of the fixed
  /// laptop-mode 20 s.
  bool adaptive_disk_timeout = false;
  device::AdaptiveTimeoutConfig adaptive_timeout;
  /// Keep a per-request log in the result (memory-hungry; off by default).
  bool collect_request_log = false;
  /// Battery model fed by the event loop (validated at construction).
  /// The defaults — full charge, on battery — reproduce the paper's
  /// setting; adaptive loss-rate policies read the tracked state through
  /// SimContext::battery().
  energy::BatteryParams battery;
  /// Structured event tracing + metrics (off by default; when off, the
  /// instrumentation cost is one null-pointer branch per site).
  telemetry::TelemetryConfig telemetry;
  /// Deterministic injected faults (WNIC outages/degradations, disk
  /// spin-up stalls). An empty schedule — the default — leaves the devices
  /// entirely unhooked, so results are bit-identical to a fault-free build.
  faults::FaultSchedule faults;
  /// Run-time invariant checks (see faults/audit.hpp). Observation only:
  /// enabling the audit never changes results, it can only throw.
  faults::AuditConfig audit;
};

class Simulator {
 public:
  /// The policy is owned by the caller and must outlive run(); this allows
  /// callers to inspect policy state (e.g. recorded profiles) afterwards.
  Simulator(SimConfig config, std::vector<ProgramSpec> programs, Policy& policy);

  /// Runs the whole simulation and returns the aggregate result.
  /// Equivalent to start(); while (step()) {}; finish().
  SimResult run();

  // Steppable interface — what MultiClientSim (medium/multi_client.hpp)
  // drives to interleave N simulators over shared resources on one global
  // event loop. The decomposition is exact: run() is defined in terms of
  // it, so stepping a lone simulator to completion is bit-identical to
  // run().

  /// Connects this simulator's WNIC to a shared medium (see
  /// medium/link.hpp). Must be called before start(); the link must
  /// outlive the simulation.
  void attach_medium(medium::ClientLink* link);

  /// Schedules the initial events and opens the policy. Call once.
  void start();
  /// Processes the single earliest pending event. Returns false (doing
  /// nothing) once no events remain.
  bool step();
  /// True once every pending event has been processed.
  bool done() const { return queue_.empty(); }
  /// Time of the earliest pending event. Only valid while !done().
  Seconds next_event_time() const;
  /// Closes the policy, settles trailing idle energy and returns the
  /// result. Call once, after done().
  SimResult finish();

  /// Simulation clock: the time of the last processed event.
  Seconds now() const { return ctx_.now(); }
  /// Total metered device energy so far — the coordinator's input to
  /// battery reporting.
  Joules device_energy() const {
    return disk_.meter().total() + wnic_.meter().total();
  }
  /// The battery model tracking this simulator's energy trajectory.
  const energy::BatteryTracker& battery() const { return battery_; }

 private:
  struct Program {
    ProgramSpec spec;
    /// spec.compiled.get() or owned.get() — never null after construction.
    const trace::CompiledTrace* ct = nullptr;
    /// Holds the compilation when the spec did not ship one.
    std::shared_ptr<const trace::CompiledTrace> owned;
    std::size_t cursor = 0;
    bool done() const { return cursor >= spec.trace.size(); }
  };

  enum class EventKind : std::uint8_t { kSyscall, kFlusher, kSync };

  struct Event {
    Seconds time;
    std::uint64_t seq;  ///< Tie-breaker for deterministic ordering.
    EventKind kind;
    std::size_t program;  ///< Valid for kSyscall.

    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void schedule(Seconds t, EventKind kind, std::size_t program);
  Event pop_event();
  void handle_syscall(const Event& ev);
  void run_flusher(Seconds t);
  void run_sync(Seconds t);

  /// Services page ranges on policy-chosen devices; returns the completion
  /// time of the last range.
  Seconds service_ranges(Seconds t, const std::vector<os::PageRange>& ranges,
                         const trace::SyscallRecord* origin,
                         const Program& program, bool is_writeback);

  /// Synchronously flushes dirty pages evicted under pressure.
  Seconds flush_dirty(Seconds t, const std::vector<os::DirtyPage>& dirty,
                      const Program* program);

  device::DeviceKind choose_device(RequestContext& rc);
  Seconds dispatch(Seconds t, const RequestContext& rc, device::DeviceKind kind);
  void log_request(const RequestContext& rc, device::DeviceKind kind,
                   const device::ServiceResult& res);
  /// Fills result_.metrics from the run's final stats (telemetry only).
  void populate_metrics();

  SimConfig config_;
  std::vector<Program> programs_;
  Policy& policy_;

  device::Disk disk_;
  device::Wnic wnic_;
  os::Vfs vfs_;
  os::FileLayout layout_;
  os::ProcessTable processes_;
  os::CScanScheduler scheduler_;
  std::optional<hoard::SyncManager> sync_;
  std::optional<device::AdaptiveTimeoutController> timeout_controller_;
  /// Must precede ctx_: ctx_ captures recorder_.get() at construction.
  std::unique_ptr<telemetry::Recorder> recorder_;
  /// Must precede ctx_ for the same reason (ctx_ captures &*audit_).
  std::optional<faults::SimAudit> audit_;
  /// Must precede ctx_ (ctx_ captures &battery_).
  energy::BatteryTracker battery_;
  SimContext ctx_;

  std::set<trace::Inode> pinned_inodes_;
  /// Pre-reserved flat binary heap ordered by Event::operator> (min-heap on
  /// (time, seq)); holds at most one event per program plus the flusher and
  /// sync timers.
  std::vector<Event> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t active_programs_ = 0;
  bool started_ = false;
  SimResult result_;

  // Scratch buffers reused across events so the steady-state event loop
  // performs no heap allocation. Planning (read_plan_/write_plan_) and
  // flushing (flush_pages_/flush_ranges_, wb_scratch_) never nest with
  // themselves, so one buffer each suffices.
  os::ReadPlan read_plan_;
  os::WritePlan write_plan_;
  std::vector<os::DirtyPage> wb_scratch_;
  std::vector<os::PageId> flush_pages_;
  std::vector<os::PageRange> flush_ranges_;

  // Telemetry bookkeeping (only advanced when recorder_ is live).
  std::uint64_t wb_sync_flushes_ = 0;
  std::uint64_t wb_periodic_flushes_ = 0;
  std::uint64_t sched_max_depth_ = 0;
};

/// Convenience: simulate a single trace under a policy.
SimResult simulate(const SimConfig& config, const trace::Trace& trace,
                   Policy& policy);

}  // namespace flexfetch::sim
