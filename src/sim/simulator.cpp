#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "telemetry/emit.hpp"

namespace flexfetch::sim {

namespace {

namespace tele = flexfetch::telemetry;

constexpr tele::EventDesc kSyscallRead{.name = "syscall.read",
                                       .category = tele::Category::kSim,
                                       .phase = tele::Phase::kSpan,
                                       .level = tele::Level::kVerbose,
                                       .n_args = 3,
                                       .track = tele::track::kSim,
                                       .keys = {"inode", "bytes", "pgid"}};

constexpr tele::EventDesc kSyscallWrite{.name = "syscall.write",
                                        .category = tele::Category::kSim,
                                        .phase = tele::Phase::kSpan,
                                        .level = tele::Level::kVerbose,
                                        .n_args = 3,
                                        .track = tele::track::kSim,
                                        .keys = {"inode", "bytes", "pgid"}};

// Battery trajectory counters, sampled at the tracker's cadence (not per
// event): the level story of a run in a handful of points.
constexpr tele::EventDesc kBatteryLevel{.name = "battery.level",
                                        .category = tele::Category::kBattery,
                                        .phase = tele::Phase::kCounter,
                                        .level = tele::Level::kVerbose,
                                        .track = tele::track::kBattery};

constexpr tele::EventDesc kBatteryDrain{.name = "battery.drain_w",
                                        .category = tele::Category::kBattery,
                                        .phase = tele::Phase::kCounter,
                                        .level = tele::Level::kVerbose,
                                        .track = tele::track::kBattery};

constexpr tele::EventDesc kSchedDepth{.name = "sched.depth",
                                      .category = tele::Category::kScheduler,
                                      .phase = tele::Phase::kCounter,
                                      .level = tele::Level::kVerbose,
                                      .track = tele::track::kScheduler};

constexpr tele::EventDesc kFlushSync{.name = "flush.sync",
                                     .category = tele::Category::kWriteback,
                                     .phase = tele::Phase::kSpan,
                                     .level = tele::Level::kDetail,
                                     .n_args = 1,
                                     .track = tele::track::kWriteback,
                                     .keys = {"pages"}};

constexpr tele::EventDesc kFlushPeriodic{.name = "flush.periodic",
                                         .category = tele::Category::kWriteback,
                                         .phase = tele::Phase::kSpan,
                                         .level = tele::Level::kDetail,
                                         .n_args = 1,
                                         .track = tele::track::kWriteback,
                                         .keys = {"pages"}};

constexpr tele::EventDesc kCacheDirty{.name = "cache.dirty",
                                      .category = tele::Category::kCache,
                                      .phase = tele::Phase::kCounter,
                                      .level = tele::Level::kVerbose,
                                      .track = tele::track::kWriteback};

}  // namespace

Simulator::Simulator(SimConfig config, std::vector<ProgramSpec> programs,
                     Policy& policy)
    : config_(config),
      policy_(policy),
      disk_(config.disk),
      wnic_(config.wnic),
      vfs_(config.vfs),
      layout_(config.disk.capacity, config.layout_seed),
      recorder_(config.telemetry.enabled
                    ? std::make_unique<telemetry::Recorder>(config.telemetry)
                    : nullptr),
      battery_(config.battery),  // Validates config.battery.
      ctx_(disk_, wnic_, vfs_, layout_, processes_, recorder_.get(),
           config_.faults.empty() ? nullptr : &config_.faults,
           config_.audit.enabled ? &audit_.emplace(config_.audit) : nullptr) {
  FF_REQUIRE(!programs.empty(), "simulator: no programs");
  ctx_.set_battery(&battery_);
  if (recorder_) {
    disk_.attach_telemetry(recorder_.get());
    wnic_.attach_telemetry(recorder_.get());
  }
  if (!config_.faults.empty()) {
    // Schedules are owned by config_ and outlive the devices and every
    // copy made of them (estimator replicas share the pointer).
    config_.faults.validate();
    disk_.set_fault_schedule(&config_.faults.disk);
    wnic_.set_fault_schedule(&config_.faults.wnic);
  }
  trace::ProcessGroup next_pgid = 1;
  for (auto& spec : programs) {
    Program p;
    p.spec = std::move(spec);
    // The compiled trace carries the closed-loop think times, per-record
    // page spans, and file extents/sets derived once from the trace.
    if (p.spec.compiled != nullptr) {
      p.ct = p.spec.compiled.get();
    } else {
      p.owned = std::make_shared<trace::CompiledTrace>(p.spec.trace);
      p.ct = p.owned.get();
    }
    const auto& t = p.spec.trace;
    const trace::ProcessGroup pgid =
        t.empty() ? next_pgid++ : t[0].pgid;
    processes_.register_program(pgid, p.spec.name, p.spec.profiled);
    if (p.spec.disk_pinned) {
      for (const auto ino : p.ct->file_set()) pinned_inodes_.insert(ino);
    }
    programs_.push_back(std::move(p));
  }
  // One pending syscall per program plus the flusher and sync timers; the
  // heap never outgrows this, so it never reallocates mid-run.
  queue_.reserve(programs_.size() + 2);
}

void Simulator::schedule(Seconds t, EventKind kind, std::size_t program) {
  queue_.push_back(Event{t, next_seq_++, kind, program});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

Simulator::Event Simulator::pop_event() {
  std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
  const Event e = queue_.back();
  queue_.pop_back();
  return e;
}

SimResult Simulator::run() {
  start();
  while (step()) {
  }
  return finish();
}

void Simulator::attach_medium(medium::ClientLink* link) {
  FF_REQUIRE(!started_, "simulator: attach_medium after start");
  wnic_.attach_medium(link);
}

void Simulator::start() {
  FF_REQUIRE(!started_, "simulator: start called twice");
  started_ = true;
  result_ = SimResult{};
  result_.policy = policy_.name();

  std::size_t expected_requests = 0;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    const Program& p = programs_[i];
    if (p.spec.trace.empty()) continue;
    // Pre-place the program's files so disk layout follows inode order,
    // mirroring the paper's sequential file mapping.
    layout_.place_all(p.ct->file_extents());
    schedule(p.ct->start_time(), EventKind::kSyscall, i);
    ++active_programs_;
    expected_requests += p.ct->data_transfers();
  }
  if (config_.collect_request_log) {
    result_.request_log.reserve(expected_requests);
  }
  if (config_.enable_writeback) {
    schedule(vfs_.writeback().next_wakeup(Seconds{}), EventKind::kFlusher, 0);
  }
  if (config_.enable_sync) {
    sync_.emplace(config_.sync);
    schedule(sync_->next_wakeup(Seconds{}), EventKind::kSync, 0);
  }
  if (config_.adaptive_disk_timeout) {
    timeout_controller_.emplace(config_.adaptive_timeout);
  }

  policy_.begin(ctx_);
}

Seconds Simulator::next_event_time() const {
  FF_ASSERT(!queue_.empty());
  // Flat binary min-heap on (time, seq): the root is the front.
  return queue_.front().time;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  const Event ev = pop_event();
  ctx_.set_now(ev.time);
  if (ev.kind == EventKind::kSyscall) {
    handle_syscall(ev);
  } else if (ev.kind == EventKind::kFlusher && active_programs_ > 0) {
    run_flusher(ev.time);
    schedule(vfs_.writeback().next_wakeup(ev.time), EventKind::kFlusher, 0);
  } else if (ev.kind == EventKind::kSync &&
             (active_programs_ > 0 ||
              (sync_ && sync_->pending_upload() > Bytes{}))) {
    run_sync(ev.time);
    if (active_programs_ > 0 || sync_->pending_upload() > Bytes{}) {
      schedule(sync_->next_wakeup(ev.time), EventKind::kSync, 0);
    }
  }
  // Feed the battery model the post-event energy trajectory. The tracker
  // subsamples internally, so the common case is one compare; counters go
  // out only when a sample is actually folded.
  if (battery_.observe(ev.time, device_energy())) {
    FF_EMIT_COUNTER(recorder_.get(), kBatteryLevel, ev.time,
                    battery_.fraction());
    FF_EMIT_COUNTER(recorder_.get(), kBatteryDrain, ev.time,
                    battery_.drain_estimate().value());
  }
  if (audit_) audit_->on_event(ev.time, disk_, wnic_, vfs_);
  return true;
}

SimResult Simulator::finish() {
  FF_REQUIRE(started_ && queue_.empty(),
             "simulator: finish before events drained");
  policy_.end(ctx_);

  // Account trailing idle/standby energy up to the end of the run so every
  // policy is charged over the same window it produced.
  disk_.advance_to(result_.makespan);
  wnic_.advance_to(result_.makespan);

  result_.disk_meter = disk_.meter();
  result_.wnic_meter = wnic_.meter();
  result_.disk_counters = disk_.counters();
  result_.wnic_counters = wnic_.counters();
  result_.cache_stats = vfs_.cache().stats();
  result_.scheduler_stats = scheduler_.stats();

  if (recorder_) {
    // Close the open power-state spans now that the devices sit at makespan.
    disk_.flush_telemetry();
    wnic_.flush_telemetry();
    populate_metrics();
    policy_.export_metrics(result_.metrics);
    result_.trace_events = recorder_->take_events();
    result_.trace_events_dropped = recorder_->dropped();
  }
  if (audit_) {
    // With telemetry off the span is empty and on_run_end only re-checks
    // the meters.
    audit_->on_run_end(disk_, wnic_, result_.trace_events,
                       result_.trace_events_dropped);
  }
  return result_;
}

void Simulator::handle_syscall(const Event& ev) {
  Program& p = programs_[ev.program];
  FF_ASSERT(!p.done());
  const trace::SyscallRecord& r = p.spec.trace[p.cursor];

  policy_.on_syscall(r, ctx_);

  Seconds completion = ev.time;
  switch (r.op) {
    case trace::OpType::kRead: {
      vfs_.plan_read(r, ev.time, layout_.extent_of(r.inode),
                     p.ct->first_page(p.cursor), p.ct->end_page(p.cursor),
                     read_plan_);
      if (!read_plan_.evicted_dirty.empty()) {
        completion = std::max(
            completion, flush_dirty(ev.time, read_plan_.evicted_dirty, &p));
      }
      if (!read_plan_.fetches.empty()) {
        completion = std::max(completion, service_ranges(completion,
                                                         read_plan_.fetches,
                                                         &r, p, false));
      }
      break;
    }
    case trace::OpType::kWrite: {
      vfs_.plan_write(r, ev.time, p.ct->first_page(p.cursor),
                      p.ct->end_page(p.cursor), write_plan_);
      if (!write_plan_.evicted_dirty.empty()) {
        completion = std::max(
            completion, flush_dirty(ev.time, write_plan_.evicted_dirty, &p));
      }
      // Local writes diverge the replica; the sync daemon will upload them.
      if (sync_) sync_->on_local_write(r.inode, r.size, ev.time);
      break;
    }
    case trace::OpType::kClose:
      vfs_.readahead().forget(r.inode);
      break;
    case trace::OpType::kOpen:
    case trace::OpType::kSeek:
      break;
  }

  if (recorder_ && completion > ev.time &&
      (r.op == trace::OpType::kRead || r.op == trace::OpType::kWrite)) {
    recorder_->hist(telemetry::HistId::kSyscallLatency)
        .record((completion - ev.time).value());
    FF_EMIT_SPAN(recorder_.get(),
                 r.op == trace::OpType::kRead ? kSyscallRead : kSyscallWrite,
                 ev.time, completion, static_cast<double>(r.inode),
                 r.size.as_double(), static_cast<double>(r.pgid));
  }

  ++result_.syscalls;
  result_.io_time += completion - ev.time;
  result_.makespan = std::max(result_.makespan, completion);

  ++p.cursor;
  if (!p.done()) {
    schedule(completion + p.ct->think(p.cursor), EventKind::kSyscall,
             ev.program);
  } else {
    --active_programs_;
  }
}

Seconds Simulator::service_ranges(Seconds t,
                                  const std::vector<os::PageRange>& ranges,
                                  const trace::SyscallRecord* origin,
                                  const Program& program, bool is_writeback) {
  Seconds completion = t;
  std::optional<RequestContext> disk_rc;

  for (const auto& range : ranges) {
    layout_.ensure(range.inode, range.offset() + range.size());
    RequestContext rc;
    rc.request = device::DeviceRequest{
        .lba = layout_.lba(range.inode, range.offset()),
        .size = range.size(),
        .is_write = is_writeback,
    };
    rc.syscall = origin;
    rc.pgid = origin != nullptr ? origin->pgid
                                : (program.spec.trace.empty()
                                       ? 0
                                       : program.spec.trace[0].pgid);
    rc.profiled = program.spec.profiled;
    rc.disk_pinned =
        program.spec.disk_pinned || pinned_inodes_.contains(range.inode);
    rc.is_writeback = is_writeback;

    const device::DeviceKind kind = choose_device(rc);
    if (kind == device::DeviceKind::kDisk) {
      if (config_.use_cscan) {
        // Disk requests of one call go through the C-SCAN scheduler so
        // they are serviced in elevator order and LBA-adjacent ranges
        // merge.
        scheduler_.submit(rc.request);
        // All ranges of one call share identity fields; keep one
        // representative context for the batch.
        if (!disk_rc) disk_rc = rc;
      } else {
        completion = std::max(completion, dispatch(t, rc, kind));
      }
    } else {
      completion = std::max(completion, dispatch(t, rc, kind));
    }
  }

  if (disk_rc) {
    if (recorder_) {
      const auto depth = static_cast<std::uint64_t>(scheduler_.pending());
      sched_max_depth_ = std::max(sched_max_depth_, depth);
      recorder_->hist(telemetry::HistId::kSchedDepth)
          .record(static_cast<double>(depth));
      FF_EMIT_COUNTER(recorder_.get(), kSchedDepth, t,
                      static_cast<double>(depth));
    }
    Seconds cursor = t;
    while (auto req = scheduler_.dispatch()) {
      disk_rc->request = *req;
      cursor = dispatch(cursor, *disk_rc, device::DeviceKind::kDisk);
      completion = std::max(completion, cursor);
    }
  }
  return completion;
}

Seconds Simulator::flush_dirty(Seconds t, const std::vector<os::DirtyPage>& dirty,
                               const Program* program) {
  flush_pages_.clear();
  flush_pages_.reserve(dirty.size());
  for (const auto& d : dirty) flush_pages_.push_back(d.page);
  // Oldest-dirty-first submission; the I/O scheduler (if enabled) reorders
  // for the head, exactly as pdflush + elevator divide the work.
  os::Vfs::coalesce_ordered_into(flush_pages_, flush_ranges_);
  const auto& ranges = flush_ranges_;
  // Write-back issued by the kernel (periodic flusher) is not attributed to
  // any profiled program.
  static const Program kSystem = [] {
    Program p;
    p.spec.name = "<writeback>";
    p.spec.profiled = false;
    return p;
  }();
  const Seconds completion =
      service_ranges(t, ranges, nullptr, program != nullptr ? *program : kSystem,
                     /*is_writeback=*/true);
  vfs_.complete_writeback(dirty);
  if (recorder_) {
    // Flushes triggered by eviction pressure block the evicting program
    // (sync); the periodic flusher runs in the background.
    const bool sync_flush = program != nullptr;
    if (sync_flush) {
      ++wb_sync_flushes_;
    } else {
      ++wb_periodic_flushes_;
    }
    FF_EMIT_SPAN(recorder_.get(), sync_flush ? kFlushSync : kFlushPeriodic, t,
                 completion, static_cast<double>(dirty.size()));
  }
  return completion;
}

void Simulator::run_sync(Seconds t) {
  FF_ASSERT(sync_.has_value());
  const auto batch = sync_->take_batch(t);
  Seconds cursor = t;
  for (const auto& item : batch) {
    // Replica traffic goes to the server by definition: always the WNIC.
    const device::DeviceRequest req{
        .lba = Bytes{}, .size = item.bytes, .is_write = item.upload};
    const auto res = wnic_.service(cursor, req);
    cursor = res.completion;
    ++result_.net_requests;
    result_.net_bytes += item.bytes;
    result_.sync_bytes += item.bytes;
    result_.makespan = std::max(result_.makespan, res.completion);
    if (config_.collect_request_log) {
      result_.request_log.push_back(RequestLogEntry{
          .arrival = res.arrival,
          .completion = res.completion,
          .device = device::DeviceKind::kNetwork,
          .size = item.bytes,
          .energy = res.energy,
          .pgid = 0,
          .is_writeback = true,
      });
    }
  }
  if (!batch.empty()) ++result_.sync_batches;
}

void Simulator::run_flusher(Seconds t) {
  disk_.advance_to(t);
  wnic_.advance_to(t);
  FF_EMIT_COUNTER(recorder_.get(), kCacheDirty, t,
                  static_cast<double>(vfs_.cache().dirty_count()));
  const bool device_active =
      disk_.is_spinning() || wnic_.state() == device::WnicState::kCam;
  vfs_.select_writeback(t, device_active, wb_scratch_);
  if (!wb_scratch_.empty()) flush_dirty(t, wb_scratch_, nullptr);
}

device::DeviceKind Simulator::choose_device(RequestContext& rc) {
  if (rc.disk_pinned) return device::DeviceKind::kDisk;
  return policy_.select(rc, ctx_);
}

Seconds Simulator::dispatch(Seconds t, const RequestContext& rc,
                            device::DeviceKind kind) {
  device::ServiceResult res;
  if (kind == device::DeviceKind::kDisk) {
    res = disk_.service(t, rc.request);
    if (timeout_controller_) timeout_controller_->observe(disk_, res);
    ++result_.disk_requests;
    result_.disk_bytes += rc.request.size;
  } else {
    res = wnic_.service(t, rc.request);
    ++result_.net_requests;
    result_.net_bytes += rc.request.size;
  }
  policy_.observe(rc, kind, res, ctx_);
  log_request(rc, kind, res);
  return res.completion;
}

void Simulator::log_request(const RequestContext& rc, device::DeviceKind kind,
                            const device::ServiceResult& res) {
  if (!config_.collect_request_log) return;
  result_.request_log.push_back(RequestLogEntry{
      .arrival = res.arrival,
      .completion = res.completion,
      .device = kind,
      .size = rc.request.size,
      .energy = res.energy,
      .pgid = rc.pgid,
      .is_writeback = rc.is_writeback,
  });
}

void Simulator::populate_metrics() {
  FF_ASSERT(recorder_ != nullptr);
  auto& m = result_.metrics;
  const auto num = [](std::uint64_t v) { return static_cast<double>(v); };

  m.add("sim.syscalls", num(result_.syscalls));
  m.set("sim.makespan_s", result_.makespan.value());
  m.set("sim.io_time_s", result_.io_time.value());
  m.add("sim.disk_requests", num(result_.disk_requests));
  m.add("sim.net_requests", num(result_.net_requests));
  m.add("sim.disk_bytes", num(result_.disk_bytes.value()));
  m.add("sim.net_bytes", num(result_.net_bytes.value()));
  m.add("sim.sync_batches", num(result_.sync_batches));
  m.add("sim.sync_bytes", num(result_.sync_bytes.value()));

  m.set("disk.energy_j", result_.disk_meter.total().value());
  m.add("disk.requests", num(result_.disk_counters.requests));
  m.add("disk.spin_ups", num(result_.disk_counters.spin_ups));
  m.add("disk.spin_downs", num(result_.disk_counters.spin_downs));
  m.add("disk.sequential_hits", num(result_.disk_counters.sequential_hits));
  m.set("disk.seek_time_s", result_.disk_counters.seek_time.value());
  m.add("disk.spin_up_stalls", num(result_.disk_counters.spin_up_stalls));
  m.set("disk.stall_time_s", result_.disk_counters.stall_time.value());

  m.set("wnic.energy_j", result_.wnic_meter.total().value());
  m.add("wnic.requests", num(result_.wnic_counters.requests));
  m.add("wnic.wakes", num(result_.wnic_counters.wakes));
  m.add("wnic.sleeps", num(result_.wnic_counters.sleeps));
  m.add("wnic.psm_transfers", num(result_.wnic_counters.psm_transfers));
  m.add("wnic.outage_stalls", num(result_.wnic_counters.outage_stalls));
  m.add("wnic.degraded_transfers",
        num(result_.wnic_counters.degraded_transfers));
  m.set("wnic.outage_wait_s", result_.wnic_counters.outage_wait.value());
  m.add("wnic.contended_transfers",
        num(result_.wnic_counters.contended_transfers));
  m.add("wnic.server_queue_waits",
        num(result_.wnic_counters.server_queue_waits));
  m.set("wnic.server_queue_wait_s",
        result_.wnic_counters.server_queue_wait.value());

  m.add("cache.lookups", num(result_.cache_stats.lookups));
  m.add("cache.hits", num(result_.cache_stats.hits));
  m.add("cache.ghost_hits", num(result_.cache_stats.ghost_hits));
  m.add("cache.insertions", num(result_.cache_stats.insertions));
  m.add("cache.evictions", num(result_.cache_stats.evictions));
  m.set("cache.hit_rate", result_.cache_stats.hit_rate());

  m.add("sched.submitted", num(result_.scheduler_stats.submitted));
  m.add("sched.merged", num(result_.scheduler_stats.merged));
  m.add("sched.dispatched", num(result_.scheduler_stats.dispatched));
  m.add("sched.sweeps", num(result_.scheduler_stats.sweeps));
  m.set_max("sched.max_depth", num(sched_max_depth_));

  m.add("wb.sync_flushes", num(wb_sync_flushes_));
  m.add("wb.periodic_flushes", num(wb_periodic_flushes_));

  m.set("battery.fraction_end", battery_.fraction());
  m.set("battery.drain_w_est", battery_.drain_estimate().value());
  // Unbounded on wall power — JSON has no infinity, so only a finite
  // horizon is recorded.
  if (std::isfinite(battery_.horizon().value())) {
    m.set("battery.horizon_s", battery_.horizon().value());
  }

  m.add("telemetry.events_emitted", num(recorder_->emitted()));
  m.add("telemetry.dropped", num(recorder_->dropped()));

  // Pre-aggregated hot-path histograms (service times, request sizes,
  // queue depths) ride beside the scalar namespace.
  recorder_->export_histograms(m);
}

SimResult simulate(const SimConfig& config, const trace::Trace& trace,
                   Policy& policy) {
  std::vector<ProgramSpec> programs;
  programs.push_back(ProgramSpec{.trace = trace, .name = trace.name()});
  Simulator sim(config, std::move(programs), policy);
  return sim.run();
}

}  // namespace flexfetch::sim
