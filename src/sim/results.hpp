// Results of one policy's simulation run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "os/buffer_cache.hpp"
#include "os/io_scheduler.hpp"
#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"

namespace flexfetch::sim {

/// One serviced device request (optional per-request log for diagnostics).
struct RequestLogEntry {
  Seconds arrival = Seconds{0.0};
  Seconds completion = Seconds{0.0};
  device::DeviceKind device = device::DeviceKind::kDisk;
  Bytes size = Bytes{0};
  Joules energy = Joules{0.0};
  trace::ProcessGroup pgid = 0;
  bool is_writeback = false;
};

struct SimResult {
  std::string policy;

  /// Completion time of the last application syscall.
  Seconds makespan = Seconds{0.0};
  /// Sum over syscalls of their service delays (time the applications
  /// spent blocked on I/O) — the paper's "I/O execution time".
  Seconds io_time = Seconds{0.0};

  device::EnergyMeter disk_meter;
  device::EnergyMeter wnic_meter;
  device::DiskCounters disk_counters;
  device::WnicCounters wnic_counters;
  os::CacheStats cache_stats;
  os::SchedulerStats scheduler_stats;

  std::uint64_t syscalls = 0;
  std::uint64_t disk_requests = 0;
  std::uint64_t net_requests = 0;
  Bytes disk_bytes = Bytes{0};
  Bytes net_bytes = Bytes{0};

  /// Replica synchronization traffic (only with SimConfig::enable_sync).
  std::uint64_t sync_batches = 0;
  Bytes sync_bytes = Bytes{0};

  std::vector<RequestLogEntry> request_log;  ///< Only if logging enabled.

  /// Telemetry (only populated when SimConfig::telemetry.enabled). The
  /// metrics registry is always filled in that case; trace events are kept
  /// only when the ring capacity is non-zero.
  telemetry::MetricsRegistry metrics;
  std::vector<telemetry::TraceEvent> trace_events;
  std::uint64_t trace_events_dropped = 0;

  Joules disk_energy() const { return disk_meter.total(); }
  Joules wnic_energy() const { return wnic_meter.total(); }
  Joules total_energy() const { return disk_energy() + wnic_energy(); }

  /// Multi-line human-readable summary.
  std::string report() const;
};

}  // namespace flexfetch::sim
