// Parallel sweep engine for the paper's evaluation grids.
//
// The whole Section 3.3 evaluation is a grid of independent trace-driven
// simulations: (scenario, policy, WNIC parameters) cells. Each cell
// constructs its own Simulator and policy from a shared *read-only*
// ScenarioBundle, so cells can run concurrently on a thread pool without
// any synchronisation beyond the task queue.
//
// Thread-safety contract: run_sweep may read each ScenarioBundle from many
// threads at once, so bundles must not be mutated for the duration of the
// call (they are only read through const references; ScenarioBundle has no
// mutable members or lazily-populated caches, and every RNG in the stack is
// an explicitly seeded, per-simulator instance — see DESIGN.md).
//
// Determinism guarantee: results are returned in grid (submission) order
// and each cell's SimResult is bit-identical whether the grid runs on one
// worker or many — scheduling affects only wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/results.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch::sim {

/// One cell of an evaluation grid. `scenario` must outlive the sweep call.
struct SweepCell {
  const workloads::ScenarioBundle* scenario = nullptr;
  /// Policy factory name (see policies::make_policy).
  std::string policy;
  device::WnicParams wnic;
  /// Base simulator configuration; its `wnic` member is replaced by the
  /// cell's `wnic` above.
  SimConfig config;
  /// Maximum tolerable performance loss rate handed to the policy factory
  /// (FlexFetch variants and Oracle; ignored by the fixed policies).
  double loss_rate = 0.25;
  /// Optional sweep-axis annotation carried through to the JSON emitter
  /// (e.g. axis = "latency_ms", axis_value = 5.0).
  std::string axis;
  double axis_value = 0.0;
};

struct SweepOptions {
  /// Worker count. <= 0 resolves via the FF_JOBS environment variable,
  /// falling back to hardware_concurrency(); 1 runs inline on the calling
  /// thread (the serial baseline).
  int jobs = 0;
};

/// Resolves an effective worker count: `requested` if positive, else
/// FF_JOBS if set to a positive integer, else hardware concurrency.
int resolve_jobs(int requested);

/// How a worker count was arrived at — recorded in sweep artifacts so a
/// benchmark JSON says both what was asked for and what actually ran.
struct JobsResolution {
  int requested = 0;  ///< The --jobs flag value; 0 = auto.
  int effective = 1;  ///< What resolve_jobs() settled on.
  bool from_env = false;  ///< Effective count came from FF_JOBS.
};

/// resolve_jobs with provenance: unset (<= 0) requests clamp to the
/// host's hardware_concurrency (via FF_JOBS if set).
JobsResolution resolve_jobs_detail(int requested);

/// Runs one cell: builds the policy and a fresh Simulator, returns the
/// result. This is the unit of work the engine fans out.
SimResult run_cell(const SweepCell& cell);

/// Runs every cell and returns results in grid order (results[i] is
/// cells[i]). Cells fan out across resolve_jobs(options.jobs) workers;
/// the first cell failure is rethrown after in-flight cells finish.
std::vector<SimResult> run_sweep(const std::vector<SweepCell>& cells,
                                 const SweepOptions& options = {});

/// Cartesian-grid helper: one cell per (scenario, policy, wnic), wnics
/// innermost — the row-major order the figure tables print in.
std::vector<SweepCell> make_grid(
    const std::vector<const workloads::ScenarioBundle*>& scenarios,
    const std::vector<std::string>& policies,
    const std::vector<device::WnicParams>& wnics, const SimConfig& base = {});

/// Streaming per-cell delivery: called once per cell, in strict grid
/// order (index 0, 1, 2...), with the result moved in so the engine can
/// release it immediately — aggregate consumers never hold more than a
/// bounded window of SimResults in memory.
using CellSink =
    std::function<void(std::size_t index, const SweepCell& cell,
                       SimResult&& result)>;

/// Runs every cell like run_sweep, but hands each result to `sink` as
/// soon as it (and all its predecessors) completed, instead of
/// accumulating a results vector. Workers stay at most a bounded reorder
/// window ahead of the in-order emission point, so peak memory is
/// O(jobs), not O(cells). The sink is invoked serially (never
/// concurrently with itself) and sees bit-identical results in identical
/// order whatever the worker count. The first cell failure is rethrown
/// after in-flight cells finish; cells after a failed one are not
/// delivered.
void run_sweep_streaming(const std::vector<SweepCell>& cells,
                         const SweepOptions& options, const CellSink& sink);

/// Streaming (Welford) mean/variance accumulator with exact merge — the
/// scalar counterpart of telemetry::Histogram for sweep aggregation.
class RunningStat {
 public:
  void add(double x);
  /// Chan et al. parallel combination: merging partials is exact in the
  /// same sense as sequential accumulation (no second pass over data).
  void merge(const RunningStat& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (M2 / n).
  double variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Raw second central moment (M2), exposed — with from_raw below — so
  /// checkpoints can round-trip a partial exactly (fleet shard summaries
  /// must merge to bit-identical aggregates after a save/load cycle).
  double m2() const { return m2_; }

  /// Reconstructs a stat from its serialized raw fields. The inverse of
  /// reading (count, mean, m2, min, max): feeding the values back yields
  /// a stat whose merge behaviour is bit-identical to the original.
  static RunningStat from_raw(std::uint64_t n, double mean, double m2,
                              double min, double max) {
    RunningStat s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Aggregate over one stratum of a sweep (one scenario x policy pair):
/// running stats over the headline scalars plus the merged metrics
/// registry (counters add, histograms merge bucket-wise).
struct StratumAggregate {
  std::uint64_t cells = 0;
  RunningStat energy_j;
  RunningStat disk_energy_j;
  RunningStat wnic_energy_j;
  RunningStat makespan_s;
  RunningStat io_time_s;
  telemetry::MetricsRegistry metrics;

  void add(const SimResult& result);

  /// Folds another partial in: Chan-merge on every stat, metric-kind-wise
  /// merge on the registry. The fleet merge contract (see
  /// src/fleet/runner.hpp) is built on this being a pure function of the
  /// two operands — merging the same partials in the same order always
  /// reproduces the same bits.
  void merge(const StratumAggregate& other);
};

/// Upper edge of the first histogram bucket whose cumulative count reaches
/// q * count — a conservative (over-estimating by at most one power of
/// two) quantile. q <= 0 returns the first populated bucket's edge; an
/// empty histogram has no quantiles and returns 0.0.
double histogram_quantile(const telemetry::Histogram& h, double q);

/// Folds streamed cell results into per-stratum aggregates. Feed it from
/// a CellSink: strata keys are "scenario/policy", kept sorted, and since
/// the sink runs in grid order the aggregate is deterministic and
/// identical for any worker count.
class SweepAggregator {
 public:
  void add(const SweepCell& cell, const SimResult& result);

  /// Folds a whole partial aggregator in, stratum by stratum (new keys
  /// are inserted, existing ones Chan-merged). This is the shard-merge
  /// step of the fleet runner: parent folds worker partials in a fixed
  /// (block-index) order, so the result is independent of which process
  /// computed which partial and of completion order.
  void merge(const SweepAggregator& other);

  /// Inserts/merges one externally reconstructed stratum partial; its
  /// cells count toward cells_seen().
  void merge_stratum(const std::string& key, const StratumAggregate& partial);

  /// Checkpoint-restore: inserts a reconstructed stratum verbatim. The
  /// key must not already exist (ConfigError otherwise). Unlike
  /// merge_stratum, no arithmetic touches the partial — counters merged
  /// into a default-zero stratum would go through `0.0 + v`, which is
  /// not the identity for every double — so a parsed checkpoint block
  /// is bit-identical to the aggregator that was written.
  void restore_stratum(std::string key, StratumAggregate partial);

  std::uint64_t cells_seen() const { return cells_seen_; }
  const std::map<std::string, StratumAggregate>& strata() const {
    return strata_;
  }

 private:
  std::uint64_t cells_seen_ = 0;
  std::map<std::string, StratumAggregate> strata_;
};

/// Order-sensitive FNV-1a fold of every scalar write_sweep_json records
/// for a cell (bit patterns, not rounded text). Two passes over the same
/// grid produce equal digests iff every cell result is bit-identical —
/// the O(1)-memory determinism gate behind `bench_sweep --cells=off`,
/// where the per-cell results vector is never materialized.
std::uint64_t fold_result_digest(std::uint64_t digest, const SimResult& result);

/// Seed for fold_result_digest chains (FNV-1a offset basis).
inline constexpr std::uint64_t kResultDigestSeed = 0xcbf29ce484222325ULL;

/// Timing metadata recorded alongside the per-cell results.
struct SweepRunInfo {
  int jobs = 1;
  /// The worker count asked for (0 = auto) before clamping/resolution.
  int jobs_requested = 0;
  /// Host cores at measurement time (contextualises the speedup; a 1-core
  /// host cannot show one). Filled by write_sweep_json if left at 0.
  unsigned hardware_concurrency = 0;
  double wall_seconds = 0.0;
  /// Wall-clock of a jobs=1 reference run of the same grid, if one was
  /// taken (<= 0 means not measured).
  double serial_wall_seconds = 0.0;
  /// The run already was serial (effective jobs == 1), so no separate
  /// jobs=1 baseline pass was taken — the single pass is its own
  /// baseline and no speedup is measurable.
  bool serial_fallback = false;
  /// Peak resident set size of the measuring process (getrusage
  /// ru_maxrss), measured by the bench harness just before emission;
  /// 0 = not measured. Makes memory-boundedness claims checkable from
  /// the JSON record instead of asserted.
  std::uint64_t peak_rss_bytes = 0;

  double speedup() const {
    return (serial_wall_seconds > 0.0 && wall_seconds > 0.0)
               ? serial_wall_seconds / wall_seconds
               : 0.0;
  }
};

/// Emits the machine-readable sweep record: run metadata plus one JSON
/// object per cell (scenario, policy, wnic point, energy/time). Keys are
/// stable across PRs so perf trajectories can be diffed.
void write_sweep_json(std::ostream& os, const std::vector<SweepCell>& cells,
                      const std::vector<SimResult>& results,
                      const SweepRunInfo& info);

/// Emits the aggregate sweep record: run metadata plus one JSON object
/// per stratum with mean/stddev/min/max of the headline scalars, the
/// merged scalar metrics, and bucket-quantile summaries of the merged
/// histograms. Constant-size output however many cells streamed through.
void write_aggregate_json(std::ostream& os, const SweepAggregator& agg,
                          const SweepRunInfo& info);

/// Emits just the `"strata": [...]` key/value pair of the aggregate
/// record at the given indent depth (no trailing comma or newline) —
/// shared by write_aggregate_json, the cells-off sweep record, and
/// BENCH_fleet.json so all three stay schema-aligned.
void write_strata_json(std::ostream& os, const SweepAggregator& agg,
                       int indent);

/// Cells-off sweep record: the run metadata of write_sweep_json plus the
/// per-stratum aggregates and the streaming determinism digest — but no
/// cells[] array, so output size and memory are bounded by strata count
/// however large the grid was (`bench_sweep --cells=off`).
void write_sweep_summary_json(std::ostream& os, const SweepAggregator& agg,
                              const SweepRunInfo& info,
                              std::uint64_t cell_count,
                              std::uint64_t cells_digest);

}  // namespace flexfetch::sim
