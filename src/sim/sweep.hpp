// Parallel sweep engine for the paper's evaluation grids.
//
// The whole Section 3.3 evaluation is a grid of independent trace-driven
// simulations: (scenario, policy, WNIC parameters) cells. Each cell
// constructs its own Simulator and policy from a shared *read-only*
// ScenarioBundle, so cells can run concurrently on a thread pool without
// any synchronisation beyond the task queue.
//
// Thread-safety contract: run_sweep may read each ScenarioBundle from many
// threads at once, so bundles must not be mutated for the duration of the
// call (they are only read through const references; ScenarioBundle has no
// mutable members or lazily-populated caches, and every RNG in the stack is
// an explicitly seeded, per-simulator instance — see DESIGN.md).
//
// Determinism guarantee: results are returned in grid (submission) order
// and each cell's SimResult is bit-identical whether the grid runs on one
// worker or many — scheduling affects only wall-clock time.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/results.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch::sim {

/// One cell of an evaluation grid. `scenario` must outlive the sweep call.
struct SweepCell {
  const workloads::ScenarioBundle* scenario = nullptr;
  /// Policy factory name (see policies::make_policy).
  std::string policy;
  device::WnicParams wnic;
  /// Base simulator configuration; its `wnic` member is replaced by the
  /// cell's `wnic` above.
  SimConfig config;
  /// Maximum tolerable performance loss rate handed to the policy factory
  /// (FlexFetch variants and Oracle; ignored by the fixed policies).
  double loss_rate = 0.25;
  /// Optional sweep-axis annotation carried through to the JSON emitter
  /// (e.g. axis = "latency_ms", axis_value = 5.0).
  std::string axis;
  double axis_value = 0.0;
};

struct SweepOptions {
  /// Worker count. <= 0 resolves via the FF_JOBS environment variable,
  /// falling back to hardware_concurrency(); 1 runs inline on the calling
  /// thread (the serial baseline).
  int jobs = 0;
};

/// Resolves an effective worker count: `requested` if positive, else
/// FF_JOBS if set to a positive integer, else hardware concurrency.
int resolve_jobs(int requested);

/// Runs one cell: builds the policy and a fresh Simulator, returns the
/// result. This is the unit of work the engine fans out.
SimResult run_cell(const SweepCell& cell);

/// Runs every cell and returns results in grid order (results[i] is
/// cells[i]). Cells fan out across resolve_jobs(options.jobs) workers;
/// the first cell failure is rethrown after in-flight cells finish.
std::vector<SimResult> run_sweep(const std::vector<SweepCell>& cells,
                                 const SweepOptions& options = {});

/// Cartesian-grid helper: one cell per (scenario, policy, wnic), wnics
/// innermost — the row-major order the figure tables print in.
std::vector<SweepCell> make_grid(
    const std::vector<const workloads::ScenarioBundle*>& scenarios,
    const std::vector<std::string>& policies,
    const std::vector<device::WnicParams>& wnics, const SimConfig& base = {});

/// Timing metadata recorded alongside the per-cell results.
struct SweepRunInfo {
  int jobs = 1;
  /// Host cores at measurement time (contextualises the speedup; a 1-core
  /// host cannot show one). Filled by write_sweep_json if left at 0.
  unsigned hardware_concurrency = 0;
  double wall_seconds = 0.0;
  /// Wall-clock of a jobs=1 reference run of the same grid, if one was
  /// taken (<= 0 means not measured).
  double serial_wall_seconds = 0.0;

  double speedup() const {
    return (serial_wall_seconds > 0.0 && wall_seconds > 0.0)
               ? serial_wall_seconds / wall_seconds
               : 0.0;
  }
};

/// Emits the machine-readable sweep record: run metadata plus one JSON
/// object per cell (scenario, policy, wnic point, energy/time). Keys are
/// stable across PRs so perf trajectories can be diffed.
void write_sweep_json(std::ostream& os, const std::vector<SweepCell>& cells,
                      const std::vector<SimResult>& results,
                      const SweepRunInfo& info);

}  // namespace flexfetch::sim
