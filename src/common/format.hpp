// Human-readable formatting helpers (std::format is unavailable on GCC 12).
#pragma once

#include <string>

#include "common/units.hpp"

namespace flexfetch {

/// "1.5 KiB", "240.0 MiB", ...
std::string format_bytes(Bytes bytes);

/// "12.3 ms", "4.56 s", "2.1 min", ...
std::string format_seconds(Seconds s);

/// "1522.4 J"
std::string format_joules(Joules j);

/// printf-style helper returning std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace flexfetch
