#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace flexfetch {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  FF_REQUIRE(hi > lo, "histogram: hi must exceed lo");
  FF_REQUIRE(buckets > 0, "histogram: need at least one bucket");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const {
  FF_ASSERT(i < counts_.size());
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  FF_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cum + c >= target && c > 0.0) {
      const double frac = (target - cum) / c;
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum += c;
  }
  return hi_;
}

std::string Histogram::to_string(std::size_t width) const {
  std::ostringstream os;
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << '[' << bucket_lo(i) << ", " << bucket_hi(i) << ") ";
    const std::size_t bar = counts_[i] * width / peak;
    for (std::size_t j = 0; j < bar; ++j) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  return os.str();
}

double percentile(std::vector<double> values, double p) {
  FF_REQUIRE(!values.empty(), "percentile of empty sample");
  FF_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace flexfetch
