// Small statistics toolkit used by result reporting, tests, and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace flexfetch {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;      ///< Sample variance (n-1); 0 if n < 2.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-boundary histogram with linear buckets plus under/overflow.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Approximate quantile (q in [0,1]) by linear interpolation in buckets.
  double quantile(double q) const;

  std::string to_string(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

/// Exact percentile of a sample (copies and sorts; fine at simulation scale).
double percentile(std::vector<double> values, double p);

}  // namespace flexfetch
