#include "common/format.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace flexfetch {

std::string format_bytes(Bytes bytes) {
  const auto b = static_cast<double>(bytes);
  if (bytes < kKiB) return strprintf("%llu B", static_cast<unsigned long long>(bytes));
  if (bytes < kMiB) return strprintf("%.1f KiB", b / static_cast<double>(kKiB));
  if (bytes < kGiB) return strprintf("%.1f MiB", b / static_cast<double>(kMiB));
  return strprintf("%.2f GiB", b / static_cast<double>(kGiB));
}

std::string format_seconds(Seconds s) {
  if (s < 0) return "-" + format_seconds(-s);
  if (s < 1e-3) return strprintf("%.1f us", s * 1e6);
  if (s < 1.0) return strprintf("%.1f ms", s * 1e3);
  if (s < 120.0) return strprintf("%.2f s", s);
  return strprintf("%.1f min", s / 60.0);
}

std::string format_joules(Joules j) { return strprintf("%.1f J", j); }

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args2);
    return {};
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args2);
  va_end(args2);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace flexfetch
