#include "common/format.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace flexfetch {

std::string format_bytes(Bytes bytes) {
  const double b = bytes.as_double();
  if (bytes < kKiB)
    return strprintf("%llu B",
                     static_cast<unsigned long long>(bytes.value()));
  if (bytes < kMiB) return strprintf("%.1f KiB", b / kKiB.as_double());
  if (bytes < kGiB) return strprintf("%.1f MiB", b / kMiB.as_double());
  return strprintf("%.2f GiB", b / kGiB.as_double());
}

std::string format_seconds(Seconds s) {
  if (s < Seconds{}) return "-" + format_seconds(-s);
  if (s < units::us(1000.0)) return strprintf("%.1f us", s.value() * 1e6);
  if (s < Seconds{1.0}) return strprintf("%.1f ms", s.value() * 1e3);
  if (s < Seconds{120.0}) return strprintf("%.2f s", s.value());
  return strprintf("%.1f min", s.value() / 60.0);
}

std::string format_joules(Joules j) { return strprintf("%.1f J", j.value()); }

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args2);
    return {};
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args2);
  va_end(args2);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace flexfetch
