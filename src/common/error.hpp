// Error handling for FlexFetch.
//
// The library is exception-based at API boundaries (invalid configuration,
// malformed traces) and assertion-based for internal invariants.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace flexfetch {

/// Base class of all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration (device parameters, policy knobs...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Malformed or inconsistent trace input.
class TraceError : public Error {
 public:
  explicit TraceError(const std::string& what) : Error("trace error: " + what) {}
};

/// Internal invariant violation; always indicates a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, std::source_location loc);
}  // namespace detail

/// Checks an internal invariant; throws InternalError on failure.
/// Kept on in all build types: the simulator is cheap relative to the
/// confidence the checks buy.
#define FF_ASSERT(expr)                                                       \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::flexfetch::detail::assert_fail(#expr, std::source_location::current()); \
    }                                                                         \
  } while (false)

/// Validates a user-facing precondition; throws ConfigError on failure.
#define FF_REQUIRE(expr, msg)                 \
  do {                                        \
    if (!(expr)) {                            \
      throw ::flexfetch::ConfigError(msg);    \
    }                                         \
  } while (false)

}  // namespace flexfetch
