// Strong dimensional types used throughout FlexFetch.
//
// FlexFetch's decision rule is an energy/time accounting argument: the
// policy compares joules and seconds computed across the disk, WNIC, cache
// and estimator layers. Until PR 6 these were bare `double` aliases, so a
// watts-where-joules-expected bug compiled silently (exactly the class of
// bug PR 5's seek-charging fix was). Each quantity is now a distinct
// constexpr wrapper that only admits physically valid operations:
//
//   * same-dimension: q + q, q - q, -q, q += q, q -= q, comparisons
//   * scalar scaling: q * s, s * q, q / s, q *= s, q /= s   (s: double)
//   * ratios:         q / q -> double (dimensionless)
//   * cross-dimension (and only these):
//       Watts  * Seconds        -> Joules     (and commuted)
//       Joules / Seconds        -> Watts
//       Joules / Watts          -> Seconds
//       Bytes  / BytesPerSecond -> Seconds
//       BytesPerSecond * Seconds-> double     (fractional byte count)
//
// Everything else — `Joules + Watts`, `Seconds * Seconds` into a Seconds,
// passing a raw double where a unit is expected — is a compile error (the
// tests/compile_fail harness pins this). The wrappers are zero-overhead:
// one public field's worth of storage, every operation constexpr and
// inline, no virtuals, trivially copyable.
//
// Conventions (documented once, enforced by the compiler everywhere):
//   * Seconds        : double-backed, seconds
//   * Joules         : double-backed, joules
//   * Watts          : double-backed, watts
//   * Bytes          : uint64-backed, bytes
//   * BytesPerSecond : double-backed, bytes per second
//
// Raw representations enter through the explicit constructors (or the
// `units::` helpers) and leave through `.value()` — grep for `.value()` to
// find every boundary where a quantity meets unit-less code (printf, JSON,
// statistics).
#pragma once

#include <compare>
#include <cstdint>

namespace flexfetch {

namespace detail {

/// Strong wrapper over `double` for one physical dimension. `Tag` is an
/// empty marker type; quantities with different tags do not mix except
/// through the cross-dimension operators defined below.
template <class Tag>
class FloatQuantity {
 public:
  constexpr FloatQuantity() = default;
  explicit constexpr FloatQuantity(double v) : v_(v) {}

  /// The raw value in the dimension's SI unit.
  [[nodiscard]] constexpr double value() const { return v_; }

  // Same-dimension arithmetic.
  [[nodiscard]] constexpr FloatQuantity operator+(FloatQuantity o) const {
    return FloatQuantity{v_ + o.v_};
  }
  [[nodiscard]] constexpr FloatQuantity operator-(FloatQuantity o) const {
    return FloatQuantity{v_ - o.v_};
  }
  [[nodiscard]] constexpr FloatQuantity operator-() const {
    return FloatQuantity{-v_};
  }
  constexpr FloatQuantity& operator+=(FloatQuantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr FloatQuantity& operator-=(FloatQuantity o) {
    v_ -= o.v_;
    return *this;
  }

  // Scalar scaling.
  [[nodiscard]] constexpr FloatQuantity operator*(double s) const {
    return FloatQuantity{v_ * s};
  }
  [[nodiscard]] constexpr FloatQuantity operator/(double s) const {
    return FloatQuantity{v_ / s};
  }
  constexpr FloatQuantity& operator*=(double s) {
    v_ *= s;
    return *this;
  }
  constexpr FloatQuantity& operator/=(double s) {
    v_ /= s;
    return *this;
  }
  [[nodiscard]] friend constexpr FloatQuantity operator*(double s,
                                                         FloatQuantity q) {
    return FloatQuantity{s * q.v_};
  }

  /// Ratio of two same-dimension quantities is dimensionless.
  [[nodiscard]] constexpr double operator/(FloatQuantity o) const {
    return v_ / o.v_;
  }

  [[nodiscard]] constexpr auto operator<=>(const FloatQuantity&) const =
      default;

 private:
  double v_ = 0.0;
};

}  // namespace detail

using Seconds = detail::FloatQuantity<struct TimeDim>;
using Joules = detail::FloatQuantity<struct EnergyDim>;
using Watts = detail::FloatQuantity<struct PowerDim>;
using BytesPerSecond = detail::FloatQuantity<struct BandwidthDim>;

// Cross-dimension algebra: the only physically meaningful products and
// quotients. Everything absent from this list is a compile error.
[[nodiscard]] constexpr Joules operator*(Watts p, Seconds t) {
  return Joules{p.value() * t.value()};
}
[[nodiscard]] constexpr Joules operator*(Seconds t, Watts p) {
  return Joules{t.value() * p.value()};
}
[[nodiscard]] constexpr Watts operator/(Joules e, Seconds t) {
  return Watts{e.value() / t.value()};
}
[[nodiscard]] constexpr Seconds operator/(Joules e, Watts p) {
  return Seconds{e.value() / p.value()};
}
/// Fractional byte count moved in `t` at rate `bw` (double: callers decide
/// how to round back into whole Bytes).
[[nodiscard]] constexpr double operator*(BytesPerSecond bw, Seconds t) {
  return bw.value() * t.value();
}
[[nodiscard]] constexpr double operator*(Seconds t, BytesPerSecond bw) {
  return t.value() * bw.value();
}

/// Byte count: uint64-backed so sizes, offsets and LBAs stay exact. Admits
/// integer-quantity arithmetic (sum/difference/min/max, integer scaling,
/// ratio and remainder) plus Bytes / BytesPerSecond -> Seconds.
class Bytes {
 public:
  constexpr Bytes() = default;
  explicit constexpr Bytes(std::uint64_t v) : v_(v) {}

  /// The raw count of bytes.
  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  /// The count as a double (rate and ratio math).
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(v_);
  }

  [[nodiscard]] constexpr Bytes operator+(Bytes o) const {
    return Bytes{v_ + o.v_};
  }
  [[nodiscard]] constexpr Bytes operator-(Bytes o) const {
    return Bytes{v_ - o.v_};
  }
  constexpr Bytes& operator+=(Bytes o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    v_ -= o.v_;
    return *this;
  }

  // Integer scaling.
  [[nodiscard]] constexpr Bytes operator*(std::uint64_t s) const {
    return Bytes{v_ * s};
  }
  [[nodiscard]] constexpr Bytes operator/(std::uint64_t s) const {
    return Bytes{v_ / s};
  }
  [[nodiscard]] friend constexpr Bytes operator*(std::uint64_t s, Bytes b) {
    return Bytes{s * b.v_};
  }

  /// Ratio of two byte counts is a dimensionless (truncating) count.
  [[nodiscard]] constexpr std::uint64_t operator/(Bytes o) const {
    return v_ / o.v_;
  }
  [[nodiscard]] constexpr Bytes operator%(Bytes o) const {
    return Bytes{v_ % o.v_};
  }

  [[nodiscard]] constexpr auto operator<=>(const Bytes&) const = default;

 private:
  std::uint64_t v_ = 0;
};

[[nodiscard]] constexpr Seconds operator/(Bytes size, BytesPerSecond bw) {
  return Seconds{size.as_double() / bw.value()};
}

inline constexpr Bytes kKiB{1024};
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Linux page size assumed by the buffer-cache substrate.
inline constexpr Bytes kPageSize = 4 * kKiB;

/// Maximum Linux readahead/prefetch window the paper assumes (Section 2.1).
inline constexpr Bytes kMaxPrefetchWindow = 128 * kKiB;

namespace units {

/// Megabits per second -> bytes per second (network vendors use decimal mega).
[[nodiscard]] constexpr BytesPerSecond mbps(double megabits) {
  return BytesPerSecond{megabits * 1e6 / 8.0};
}

/// Megabytes per second -> bytes per second (disk vendors use decimal mega).
[[nodiscard]] constexpr BytesPerSecond mb_per_s(double megabytes) {
  return BytesPerSecond{megabytes * 1e6};
}

[[nodiscard]] constexpr Seconds ms(double milliseconds) {
  return Seconds{milliseconds * 1e-3};
}
[[nodiscard]] constexpr Seconds us(double microseconds) {
  return Seconds{microseconds * 1e-6};
}
[[nodiscard]] constexpr Seconds minutes(double m) { return Seconds{m * 60.0}; }

[[nodiscard]] constexpr Bytes kib(std::uint64_t n) { return n * kKiB; }
[[nodiscard]] constexpr Bytes mib(std::uint64_t n) { return n * kMiB; }

}  // namespace units

/// Number of whole pages covering `bytes` (ceiling division).
[[nodiscard]] constexpr std::uint64_t pages_for(Bytes bytes) {
  return (bytes.value() + kPageSize.value() - 1) / kPageSize.value();
}

/// Transfer time of `size` bytes at `bw` bytes/second.
[[nodiscard]] constexpr Seconds transfer_time(Bytes size, BytesPerSecond bw) {
  return bw.value() > 0.0 ? Seconds{size.as_double() / bw.value()}
                          : Seconds{};
}

}  // namespace flexfetch
