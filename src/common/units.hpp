// Units and conversions used throughout FlexFetch.
//
// Conventions (documented once, used everywhere):
//   * time      : double, seconds
//   * energy    : double, joules
//   * power     : double, watts
//   * size      : std::uint64_t, bytes
//   * bandwidth : double, bytes per second
#pragma once

#include <cstdint>

namespace flexfetch {

using Seconds = double;
using Joules  = double;
using Watts   = double;
using Bytes   = std::uint64_t;
using BytesPerSecond = double;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Linux page size assumed by the buffer-cache substrate.
inline constexpr Bytes kPageSize = 4 * kKiB;

/// Maximum Linux readahead/prefetch window the paper assumes (Section 2.1).
inline constexpr Bytes kMaxPrefetchWindow = 128 * kKiB;

namespace units {

/// Megabits per second -> bytes per second (network vendors use decimal mega).
constexpr BytesPerSecond mbps(double megabits) { return megabits * 1e6 / 8.0; }

/// Megabytes per second -> bytes per second (disk vendors use decimal mega).
constexpr BytesPerSecond mb_per_s(double megabytes) { return megabytes * 1e6; }

constexpr Seconds ms(double milliseconds) { return milliseconds * 1e-3; }
constexpr Seconds us(double microseconds) { return microseconds * 1e-6; }
constexpr Seconds minutes(double m) { return m * 60.0; }

constexpr Bytes kib(std::uint64_t n) { return n * kKiB; }
constexpr Bytes mib(std::uint64_t n) { return n * kMiB; }

}  // namespace units

/// Number of whole pages covering `bytes` (ceiling division).
constexpr std::uint64_t pages_for(Bytes bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

/// Transfer time of `size` bytes at `bw` bytes/second.
constexpr Seconds transfer_time(Bytes size, BytesPerSecond bw) {
  return bw > 0.0 ? static_cast<double>(size) / bw : 0.0;
}

}  // namespace flexfetch
