// Fixed-size worker pool with a single FIFO task queue.
//
// Built for the sweep engine (sim/sweep.hpp): sweep cells are coarse,
// independent jobs, so a plain mutex-protected queue is plenty — workers
// pull the next task when free, which is work-stealing-equivalent for
// tasks this size. Results stay deterministic because callers index their
// output slots by submission order, never by completion order.
//
// Exceptions thrown by a task are captured in its future and rethrown at
// get(), so parallel_for can propagate the first failure to the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace flexfetch {

class ThreadPool {
 public:
  /// `threads == 0` uses default_concurrency(). A 1-thread pool executes
  /// tasks strictly in submission order (FIFO queue, single consumer).
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) threads = default_concurrency();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Hardware concurrency, never less than 1.
  static unsigned default_concurrency() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// Enqueues `fn` and returns a future for its result. The future holds
  /// any exception the task throws.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn&& fn) {
    using R = std::invoke_result_t<Fn>;
    // packaged_task is move-only; std::function requires copyable targets.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) on the pool and blocks until all complete.
/// If any invocation throws, rethrows the lowest-index exception after
/// every task has finished (no task is cancelled mid-flight).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending.push_back(pool.submit([i, &fn] { fn(i); }));
  }
  std::exception_ptr first;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace flexfetch
