#include "common/error.hpp"

#include <sstream>

namespace flexfetch::detail {

void assert_fail(const char* expr, std::source_location loc) {
  std::ostringstream os;
  os << "assertion `" << expr << "` failed at " << loc.file_name() << ':'
     << loc.line() << " in " << loc.function_name();
  throw InternalError(os.str());
}

}  // namespace flexfetch::detail
