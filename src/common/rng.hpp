// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (workload generators, layout
// jitter) draws from an explicitly seeded Rng so that whole simulations are
// bit-reproducible. We implement xoshiro256** seeded via SplitMix64 rather
// than relying on std::mt19937 so that streams are stable across standard
// library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/error.hpp"

namespace flexfetch {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna; fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    FF_ASSERT(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return (*this)();  // full 64-bit range
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto l = static_cast<std::uint64_t>(m);
    if (l < range) {
      const std::uint64_t t = (0 - range) % range;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential with mean `mean` (> 0).
  double exponential(double mean) {
    FF_ASSERT(mean > 0.0);
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double normal(double mu = 0.0, double sigma = 1.0) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return mu + sigma * z;
  }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Truncated normal clamped to [lo, hi] by resampling (max 64 tries,
  /// then clamps — keeps the generator total).
  double normal_clamped(double mu, double sigma, double lo, double hi) {
    FF_ASSERT(lo <= hi);
    for (int i = 0; i < 64; ++i) {
      const double x = normal(mu, sigma);
      if (x >= lo && x <= hi) return x;
    }
    const double x = normal(mu, sigma);
    return x < lo ? lo : (x > hi ? hi : x);
  }

  /// Zipf-distributed rank in [1, n] with exponent `s` (rejection sampling).
  std::uint64_t zipf(std::uint64_t n, double s) {
    FF_ASSERT(n >= 1);
    // Rejection-inversion (Hörmann) is overkill for simulation sizes; use
    // the classic rejection method with the integrable bounding function.
    const double b = std::pow(2.0, s - 1.0);
    while (true) {
      const double u = uniform();
      const double v = uniform();
      const auto x = static_cast<std::uint64_t>(
          std::floor(std::pow(static_cast<double>(n) + 1.0, u)));
      if (x < 1 || x > n) continue;
      const double t = std::pow(1.0 + 1.0 / static_cast<double>(x), s - 1.0);
      if (v * static_cast<double>(x) * (t - 1.0) / (b - 1.0) <= t / b) {
        return x;
      }
    }
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-component determinism).
  Rng fork() { return Rng((*this)() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Centralized seed derivation. Every place that turns one seed into
/// several independent streams goes through this namespace, so the
/// repo-wide seeding discipline is one screenful of code instead of
/// scattered arithmetic. Two families live here:
///
///  * derive_stream — the SplitMix64-based hierarchical splitter. One
///    master seed fans out into any number of child streams keyed by a
///    64-bit stream id (a domain tag, a user index, a shard number...),
///    and children split again: derive_stream(derive_stream(m, a), b).
///    Any consumer can regenerate stream (a, b) without touching the
///    streams between — the property the fleet population generator
///    needs so worker shard k can rebuild exactly its users.
///
///  * The frozen legacy mappings the paper scenarios were generated
///    with (profile_run/eval_run/domain). These are pinned by golden
///    tests: changing them would silently regenerate every trace and
///    invalidate every recorded figure and BENCH_*.json artifact.
namespace seeds {

/// Domain tags for derive_stream hierarchies (arbitrary but fixed).
inline constexpr std::uint64_t kFleetUserDomain = 0x666c757372ULL;   // "flusr"
inline constexpr std::uint64_t kFleetFaultDomain = 0x666c666cULL;    // "flfl"
inline constexpr std::uint64_t kFleetScenarioDomain = 0x666c7363ULL; // "flsc"

/// SplitMix64-based stream splitter: mixes the master through one
/// SplitMix64 step, perturbs with the (golden-ratio-spread) stream id,
/// and mixes again. Bijective in `master` for fixed `stream`; avalanche
/// in both arguments; constexpr so goldens can be static_asserted.
constexpr std::uint64_t derive_stream(std::uint64_t master,
                                      std::uint64_t stream) {
  SplitMix64 outer(master);
  SplitMix64 inner(outer.next() ^
                   (stream + 0x9e3779b97f4a7c15ULL) * 0xd1342543de82ef95ULL);
  return inner.next();
}

/// Two-level convenience: stream `index` within `domain` under `master`.
constexpr std::uint64_t derive_stream(std::uint64_t master,
                                      std::uint64_t domain,
                                      std::uint64_t index) {
  return derive_stream(derive_stream(master, domain), index);
}

/// Legacy scenario-run split (frozen): the profiling run of scenario
/// seed s replays run 2s, the evaluation run 2s+1 — different think
/// times, same file structure.
constexpr std::uint64_t profile_run(std::uint64_t scenario_seed) {
  return scenario_seed * 2;
}
constexpr std::uint64_t eval_run(std::uint64_t scenario_seed) {
  return scenario_seed * 2 + 1;
}

/// Legacy per-generator domain separation (frozen): each workload
/// generator XORs its ASCII tag into both of its seeds so "grep run 3"
/// and "make run 3" draw from unrelated streams.
constexpr std::uint64_t domain(std::uint64_t seed, std::uint64_t tag) {
  return seed ^ tag;
}

}  // namespace seeds

}  // namespace flexfetch
