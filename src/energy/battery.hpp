// First-class battery model: the one place a battery fraction is defined,
// clamped, and estimated.
//
// The paper's energy accounting stops at the device meters; this module
// models the *platform* those devices live in — a fixed-capacity pack, a
// base platform drain (CPU, display, chipset) outside the metered disk +
// WNIC, a wall-power flag, and an EWMA discharge-rate estimator in the
// style of the BOINC-MGE scheduler's `decode_sched_data` host-status
// averaging. From those it derives the *energy horizon* — how long the
// machine keeps running at the estimated drain — which the adaptive
// loss-rate curves (loss_curve.hpp) consume.
//
// Two consumers share this state (ROADMAP item 2): the shared medium's
// admission reporting (medium/medium.hpp re-exports BatteryParams) and the
// FlexFetch policy's per-stage loss-rate query (via SimContext::battery).
//
// Invariant: a battery fraction is produced only by this module, already
// clamped to [0, 1] by clamp_fraction(); parameters are validated by
// BatteryParams::validate() at construction sites instead of silently
// clamped downstream (tools/lint_invariants.py rule R5 bans battery
// fraction clamps outside src/energy/).
#pragma once

#include "common/units.hpp"

namespace flexfetch::energy {

/// The single clamp helper for battery fractions. Model outputs pass
/// through here; *inputs* are validated, never clamped (clamping an input
/// masks a configuration bug — see BatteryParams::validate).
double clamp_fraction(double f);

/// Per-client battery model: a linear platform drain plus the metered
/// device energy, against a fixed capacity.
struct BatteryParams {
  Joules capacity = Joules{180000.0};  ///< ~50 Wh laptop pack.
  double initial_fraction = 1.0;
  /// Platform draw outside the modeled disk + WNIC (CPU, display...).
  Watts base_drain = Watts{10.0};
  /// Plugged in: the pack does not discharge (fraction holds at
  /// initial_fraction, horizon is unbounded) and adaptive loss-rate
  /// curves treat energy as free.
  bool on_wall_power = false;

  /// FF_REQUIREs initial_fraction in [0, 1], positive capacity and
  /// non-negative base_drain. Construction sites (SharedMedium::add_client,
  /// Simulator) call this instead of masking bad input with a clamp.
  void validate() const;

  /// Energy drained by time `t` having metered `device_energy`: the base
  /// platform drain integrated over [0, t] plus the device meters. Zero
  /// on wall power.
  Joules drained_at(Seconds t, Joules device_energy) const;
  /// Fraction remaining at `t`, clamped to [0, 1]. Monotone non-increasing
  /// in both `t` and `device_energy`.
  double fraction_at(Seconds t, Joules device_energy) const;
  /// Energy remaining at `t` (capacity * fraction_at).
  Joules remaining_at(Seconds t, Joules device_energy) const;
};

/// Snapshot of battery state handed to loss-rate curves: what is left,
/// whether it matters (wall power), and how fast it is going.
struct BatteryState {
  double fraction = 1.0;
  bool on_wall_power = false;
  /// EWMA-estimated total platform draw (base + device), in watts.
  Watts drain_estimate = Watts{0.0};
  /// remaining_J / drain_estimate_W; infinity on wall power.
  Seconds horizon = Seconds{0.0};

  bool dead() const { return !on_wall_power && fraction <= 0.0; }
};

/// Observes the (time, metered device energy) trajectory of one simulator
/// and maintains the discharge-rate estimate and energy horizon.
///
/// The estimator is the BOINC-MGE `decode_sched_data` shape: each
/// accepted observation folds the interval's mean power into an EWMA with
/// a time-constant weight `alpha = 1 - exp(-dt / tau)`, so the estimate
/// is invariant to how finely the same trajectory is sampled. It is
/// seeded with the configured base drain — the best prior before any
/// device activity is observed. Deterministic: state is a pure function
/// of the observation sequence, which the simulator's event loop makes a
/// pure function of config and seeds.
class BatteryTracker {
 public:
  explicit BatteryTracker(BatteryParams params,
                          Seconds tau = Seconds{30.0},
                          Seconds min_sample_interval = Seconds{1.0});

  /// Feeds one (simulated time, cumulative metered device energy) sample.
  /// Observations closer than min_sample_interval to the last accepted
  /// one are skipped — the next accepted sample covers the whole gap, so
  /// the hot path pays one compare per event and an exp() only at the
  /// sampling cadence. Time must be non-decreasing. Returns whether the
  /// sample was accepted (callers emit telemetry at that cadence).
  bool observe(Seconds t, Joules device_energy);

  const BatteryParams& params() const { return params_; }
  /// Fraction at the last accepted observation.
  double fraction() const { return fraction_; }
  /// Current EWMA total-drain estimate (base + device), in watts.
  Watts drain_estimate() const { return drain_estimate_; }
  /// Remaining energy / estimated drain; infinity on wall power, pinned
  /// at zero once the pack is empty.
  Seconds horizon() const;
  /// The whole snapshot a loss-rate curve consumes.
  BatteryState state() const;

 private:
  BatteryParams params_;
  Seconds tau_;
  Seconds min_sample_interval_;
  Seconds last_t_ = Seconds{0.0};
  Joules last_device_energy_ = Joules{0.0};
  double fraction_ = 1.0;
  Watts drain_estimate_ = Watts{0.0};
};

}  // namespace flexfetch::energy
