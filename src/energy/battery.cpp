#include "energy/battery.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace flexfetch::energy {

double clamp_fraction(double f) { return std::clamp(f, 0.0, 1.0); }

void BatteryParams::validate() const {
  FF_REQUIRE(initial_fraction >= 0.0 && initial_fraction <= 1.0,
             "battery: initial_fraction must be in [0, 1]");
  FF_REQUIRE(capacity > Joules{}, "battery: capacity must be positive");
  FF_REQUIRE(base_drain >= Watts{}, "battery: base_drain must be non-negative");
}

Joules BatteryParams::drained_at(Seconds t, Joules device_energy) const {
  if (on_wall_power) return Joules{0.0};
  return base_drain * t + device_energy;
}

double BatteryParams::fraction_at(Seconds t, Joules device_energy) const {
  FF_ASSERT(capacity > Joules{});
  const double f = initial_fraction - drained_at(t, device_energy) / capacity;
  return clamp_fraction(f);
}

Joules BatteryParams::remaining_at(Seconds t, Joules device_energy) const {
  return fraction_at(t, device_energy) * capacity;
}

BatteryTracker::BatteryTracker(BatteryParams params, Seconds tau,
                               Seconds min_sample_interval)
    : params_(params), tau_(tau), min_sample_interval_(min_sample_interval) {
  params_.validate();
  FF_REQUIRE(tau_ > Seconds{}, "battery: EWMA tau must be positive");
  FF_REQUIRE(min_sample_interval_ >= Seconds{},
             "battery: negative sample interval");
  fraction_ = clamp_fraction(params_.initial_fraction);
  // Seeded with the configured platform drain: the best prior before any
  // device activity has been observed.
  drain_estimate_ = params_.base_drain;
}

bool BatteryTracker::observe(Seconds t, Joules device_energy) {
  const Seconds dt = t - last_t_;
  if (dt < min_sample_interval_) return false;  // Folded into later samples.
  // Mean total platform power over the skipped window: base drain plus
  // the device meters' increment. Folding the whole window at once with a
  // time-constant weight makes the estimate invariant to sampling grain.
  const double watts = params_.base_drain.value() +
                       (device_energy - last_device_energy_).value() /
                           dt.value();
  const double alpha = 1.0 - std::exp(-(dt / tau_));
  drain_estimate_ =
      Watts{drain_estimate_.value() +
            alpha * (watts - drain_estimate_.value())};
  fraction_ = params_.fraction_at(t, device_energy);
  last_t_ = t;
  last_device_energy_ = device_energy;
  return true;
}

Seconds BatteryTracker::horizon() const {
  if (params_.on_wall_power) {
    return Seconds{std::numeric_limits<double>::infinity()};
  }
  if (fraction_ <= 0.0) return Seconds{0.0};
  const Joules remaining = fraction_ * params_.capacity;
  const Watts drain =
      std::max(drain_estimate_, Watts{1e-6});  // Guard an all-zero config.
  return remaining / drain;
}

BatteryState BatteryTracker::state() const {
  return BatteryState{.fraction = fraction_,
                      .on_wall_power = params_.on_wall_power,
                      .drain_estimate = drain_estimate_,
                      .horizon = horizon()};
}

}  // namespace flexfetch::energy
