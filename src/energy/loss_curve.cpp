#include "energy/loss_curve.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"

namespace flexfetch::energy {

namespace {

/// Shortest %g rendering that round-trips the values we use (rates and
/// horizons are human-entered, not accumulated) — keeps curve names
/// stable and readable ("linear@0.05:0.5").
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

void require_rate(double r, const char* what) {
  FF_REQUIRE(r >= 0.0, std::string("loss curve: negative ") + what);
}

}  // namespace

ConstantCurve::ConstantCurve(double rate) : rate_(rate) {
  require_rate(rate_, "constant rate");
}

double ConstantCurve::loss_rate(const BatteryState& /*state*/) const {
  // Deliberately state-blind, wall power included: this is the frozen
  // static baseline the degeneracy gate compares against.
  return rate_;
}

std::string ConstantCurve::name() const { return "constant@" + num(rate_); }

LinearCurve::LinearCurve(double rate_full, double rate_empty)
    : rate_full_(rate_full), rate_empty_(rate_empty) {
  require_rate(rate_full_, "full-battery rate");
  require_rate(rate_empty_, "empty-battery rate");
}

double LinearCurve::loss_rate(const BatteryState& state) const {
  if (state.on_wall_power) return 0.0;
  // Frozen arithmetic: bit-identical to the fleet's historical
  // PopulationGenerator::loss_rate_for interpolation (which delegates
  // here — golden users in tests/test_fleet.cpp pin it).
  const double drain = 1.0 - state.fraction;
  return rate_full_ + (rate_empty_ - rate_full_) * drain;
}

std::string LinearCurve::name() const {
  return "linear@" + num(rate_full_) + ":" + num(rate_empty_);
}

StepCurve::StepCurve(double threshold, double rate_above, double rate_below)
    : threshold_(threshold), rate_above_(rate_above), rate_below_(rate_below) {
  FF_REQUIRE(threshold_ >= 0.0 && threshold_ <= 1.0,
             "loss curve: step threshold must be in [0, 1]");
  require_rate(rate_above_, "above-threshold rate");
  require_rate(rate_below_, "below-threshold rate");
}

double StepCurve::loss_rate(const BatteryState& state) const {
  if (state.on_wall_power) return 0.0;
  return state.fraction > threshold_ ? rate_above_ : rate_below_;
}

std::string StepCurve::name() const {
  return "step@" + num(threshold_) + ":" + num(rate_above_) + ":" +
         num(rate_below_);
}

HorizonRatioCurve::HorizonRatioCurve(Seconds reference_horizon,
                                     double rate_full, double rate_empty)
    : reference_horizon_(reference_horizon),
      rate_full_(rate_full),
      rate_empty_(rate_empty) {
  FF_REQUIRE(reference_horizon_ > Seconds{},
             "loss curve: reference horizon must be positive");
  require_rate(rate_full_, "full-battery rate");
  require_rate(rate_empty_, "empty-battery rate");
}

double HorizonRatioCurve::loss_rate(const BatteryState& state) const {
  if (state.on_wall_power) return 0.0;  // Horizon is unbounded anyway.
  if (state.horizon <= Seconds{}) return rate_empty_;  // Dead: saturate.
  // H / (H + horizon) sweeps 1 -> 0 as the horizon grows past the
  // reference, so the rate sweeps rate_empty -> rate_full.
  const double urgency =
      reference_horizon_.value() /
      (reference_horizon_.value() + state.horizon.value());
  return rate_full_ + (rate_empty_ - rate_full_) * urgency;
}

std::string HorizonRatioCurve::name() const {
  return "horizon-ratio@" + num(reference_horizon_.value()) + ":" +
         num(rate_full_) + ":" + num(rate_empty_);
}

namespace {

/// Splits "p1:p2:p3" into doubles; throws ConfigError on junk.
std::vector<double> parse_params(const std::string& text,
                                 const std::string& spec) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t colon = text.find(':', pos);
    const std::string tok =
        text.substr(pos, colon == std::string::npos ? colon : colon - pos);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    FF_REQUIRE(!tok.empty() && end != nullptr && *end == '\0',
               "loss curve: bad parameter '" + tok + "' in '" + spec + "'");
    out.push_back(v);
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  return out;
}

void require_arity(const std::vector<double>& p,
                   std::initializer_list<std::size_t> allowed,
                   const std::string& spec) {
  for (std::size_t n : allowed) {
    if (p.size() == n) return;
  }
  throw ConfigError("loss curve: wrong parameter count in '" + spec + "'");
}

}  // namespace

std::unique_ptr<LossRateCurve> make_loss_curve(const std::string& spec,
                                               double fallback_rate) {
  const std::size_t at = spec.find('@');
  const std::string kind = spec.substr(0, at);
  std::vector<double> p;
  if (at != std::string::npos) p = parse_params(spec.substr(at + 1), spec);

  if (kind == "constant") {
    require_arity(p, {0, 1}, spec);
    return std::make_unique<ConstantCurve>(p.empty() ? fallback_rate : p[0]);
  }
  if (kind == "linear") {
    require_arity(p, {0, 2}, spec);
    return p.empty() ? std::make_unique<LinearCurve>(kDefaultRateFull,
                                                     kDefaultRateEmpty)
                     : std::make_unique<LinearCurve>(p[0], p[1]);
  }
  if (kind == "step") {
    require_arity(p, {0, 3}, spec);
    return p.empty()
               ? std::make_unique<StepCurve>(0.2, fallback_rate,
                                             kDefaultRateEmpty)
               : std::make_unique<StepCurve>(p[0], p[1], p[2]);
  }
  if (kind == "horizon-ratio") {
    require_arity(p, {0, 1, 3}, spec);
    const Seconds href =
        Seconds{p.empty() ? kDefaultReferenceHorizonS : p[0]};
    return p.size() == 3
               ? std::make_unique<HorizonRatioCurve>(href, p[1], p[2])
               : std::make_unique<HorizonRatioCurve>(href, kDefaultRateFull,
                                                     kDefaultRateEmpty);
  }
  throw ConfigError("unknown loss curve '" + kind + "' (want constant, " +
                    "linear, step, or horizon-ratio)");
}

}  // namespace flexfetch::energy
