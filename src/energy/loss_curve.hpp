// Pluggable loss-rate curves: how much I/O performance FlexFetch may
// sacrifice for energy, as a function of battery state.
//
// The paper fixes the maximum tolerable performance loss rate at 25%
// (Section 2.2); this interface makes it a function of the battery model
// (battery.hpp), in the shape of eh-sim's pluggable `eh_scheme`: one
// virtual query per decision, implementations are tiny value types.
//
//   constant@R          — always R. The degeneracy baseline: FlexFetch
//                         with `constant@0.25` is bit-identical to the
//                         static 25% knob (gated in bench_battery + CI).
//   linear[@F:E]        — F + (E - F) * (1 - fraction). The fleet's
//                         PopulationGenerator::loss_rate_for interpolation,
//                         promoted to a first-class curve (the fleet now
//                         delegates here; its arithmetic is frozen).
//   step[@T:A:B]        — A while fraction > T, B at or below (a low-power
//                         mode threshold).
//   horizon-ratio[@H:F:E] — F + (E - F) * H / (H + horizon): long horizon
//                         behaves like a full battery, horizon -> 0
//                         saturates at E (loss_rate_empty).
//
// Wall power: every curve except `constant` returns 0 when plugged in —
// energy is free, so no performance is traded for it. `constant` ignores
// state entirely (that is its contract: the frozen static baseline).
// Dead battery: linear/step/horizon-ratio all saturate at their "empty"
// rate — maximal willingness to wait for the cheaper source.
#pragma once

#include <memory>
#include <string>

#include "energy/battery.hpp"

namespace flexfetch::energy {

/// One stage-decision query: battery state in, tolerable loss rate out.
/// Implementations must be pure (no internal state mutation) — the same
/// state always yields the same rate, so decisions stay deterministic and
/// estimator replays see what the live decision saw.
class LossRateCurve {
 public:
  virtual ~LossRateCurve() = default;
  virtual double loss_rate(const BatteryState& state) const = 0;
  /// Canonical spec string ("linear@0.05:0.5"): round-trips through
  /// make_loss_curve and labels policy names / JSON records.
  virtual std::string name() const = 0;
};

class ConstantCurve final : public LossRateCurve {
 public:
  explicit ConstantCurve(double rate);
  double loss_rate(const BatteryState& state) const override;
  std::string name() const override;

 private:
  double rate_;
};

class LinearCurve final : public LossRateCurve {
 public:
  LinearCurve(double rate_full, double rate_empty);
  double loss_rate(const BatteryState& state) const override;
  std::string name() const override;

 private:
  double rate_full_;
  double rate_empty_;
};

class StepCurve final : public LossRateCurve {
 public:
  StepCurve(double threshold, double rate_above, double rate_below);
  double loss_rate(const BatteryState& state) const override;
  std::string name() const override;

 private:
  double threshold_;
  double rate_above_;
  double rate_below_;
};

class HorizonRatioCurve final : public LossRateCurve {
 public:
  HorizonRatioCurve(Seconds reference_horizon, double rate_full,
                    double rate_empty);
  double loss_rate(const BatteryState& state) const override;
  std::string name() const override;

 private:
  Seconds reference_horizon_;
  double rate_full_;
  double rate_empty_;
};

/// Default endpoints shared by the parametric curves — the same values
/// the fleet population uses (population.hpp loss_rate_full/empty).
inline constexpr double kDefaultRateFull = 0.05;
inline constexpr double kDefaultRateEmpty = 0.5;
/// Default horizon-ratio reference: 30 simulated minutes.
inline constexpr double kDefaultReferenceHorizonS = 1800.0;

/// Parses a curve spec: "<kind>[@p1[:p2[:p3]]]" with the kinds documented
/// above. A bare "constant" uses `fallback_rate` (the sweep cell's
/// loss_rate knob); every other kind has the defaults listed above.
/// Throws ConfigError on unknown kinds, malformed numbers, or
/// out-of-range parameters.
std::unique_ptr<LossRateCurve> make_loss_curve(const std::string& spec,
                                               double fallback_rate = 0.25);

}  // namespace flexfetch::energy
