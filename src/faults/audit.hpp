// SimAudit: run-time invariant checker for the simulator.
//
// The simulator's determinism and energy accounting are contracts the rest
// of the project leans on (sweep bit-identity, telemetry-on/off identity,
// the estimator's counterfactual purity). SimAudit enforces them while a
// simulation runs instead of trusting them:
//
//  * clock monotonicity — the event-loop clock and each device's internal
//    clock never move backwards;
//  * energy conservation — per-category meters are non-negative and
//    non-decreasing, their sums match the meters' totals, and at end of
//    run the power-state spans emitted to telemetry tile the device
//    timeline with span-integral energies consistent with the meters;
//  * cache page accounting — resident pages equal insertions minus
//    evictions, dirty pages never exceed residents, hits never exceed
//    lookups;
//  * estimate purity — a counterfactual estimate()/decision pass leaves
//    the live devices (clock, state, meters, counters) and the telemetry
//    recorder byte-identical to before (the class of bug the detached
//    device copies exist to prevent).
//
// A violation throws InternalError: an audit failure is a library bug, not
// a user error. Auditing is off by default (SimConfig::audit.enabled); the
// FLEXFETCH_AUDIT CMake option flips the default so a CI leg runs every
// test with invariants enforced. The audit only observes — enabling it
// never changes a simulation's results.
#pragma once

#include <cstdint>
#include <span>

#include "common/units.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "medium/medium.hpp"
#include "os/vfs.hpp"
#include "telemetry/event.hpp"
#include "telemetry/recorder.hpp"

namespace flexfetch::faults {

#ifdef FLEXFETCH_AUDIT_DEFAULT_ON
inline constexpr bool kAuditDefaultEnabled = true;
#else
inline constexpr bool kAuditDefaultEnabled = false;
#endif

struct AuditConfig {
  /// Defaults to the FLEXFETCH_AUDIT build option.
  bool enabled = kAuditDefaultEnabled;
  /// Absolute + relative tolerance for span-integral energy comparisons
  /// (the meters accumulate in a different order than the audit sums, so
  /// bit-equality is not expected there; everything else is exact).
  double energy_eps = 1e-6;
};

/// Byte-comparable digest of everything a counterfactual replay must not
/// touch. Captured before an estimate, checked after.
struct PuritySnapshot {
  Seconds disk_now = Seconds{0.0};
  device::DiskState disk_state = device::DiskState::kIdle;
  Joules disk_energy = Joules{0.0};
  std::uint64_t disk_requests = 0;
  std::uint64_t disk_spin_ups = 0;
  Seconds wnic_now = Seconds{0.0};
  device::WnicState wnic_state = device::WnicState::kCam;
  Joules wnic_energy = Joules{0.0};
  std::uint64_t wnic_requests = 0;
  std::uint64_t wnic_wakes = 0;
  std::uint64_t recorder_emitted = 0;
};

class SimAudit {
 public:
  explicit SimAudit(AuditConfig config = {}) : config_(config) {}

  /// Invariant sweep after one event-loop iteration: clock monotonicity,
  /// meter conservation, cache accounting.
  void on_event(Seconds event_time, const device::Disk& disk,
                const device::Wnic& wnic, const os::Vfs& vfs);

  PuritySnapshot capture(const device::Disk& disk, const device::Wnic& wnic,
                         const telemetry::Recorder* recorder) const;

  /// Throws unless the live world matches `before` exactly.
  void check_estimate_purity(const PuritySnapshot& before,
                             const device::Disk& disk,
                             const device::Wnic& wnic,
                             const telemetry::Recorder* recorder);

  /// End-of-run reconciliation of the telemetry power timelines against
  /// the energy meters. Only meaningful when every event was retained
  /// (`dropped == 0`); otherwise the span checks are skipped.
  void on_run_end(const device::Disk& disk, const device::Wnic& wnic,
                  std::span<const telemetry::TraceEvent> events,
                  std::uint64_t dropped);

  /// Shared-medium invariants after one coordinator step at `t`: active
  /// airtime shares sum to <= 1, the server never skipped a usable free
  /// slot (work conservation), server busy time fits capacity x horizon,
  /// and the medium and server agree on total bytes served.
  void on_medium_step(Seconds t, const medium::SharedMedium& medium);

  /// Total individual invariant checks performed (tests assert > 0).
  std::uint64_t checks() const { return checks_; }

 private:
  void check_meter(const device::EnergyMeter& meter, Joules& last_total,
                   const char* device);
  [[noreturn]] void fail(const std::string& what) const;
  bool close(double a, double b) const;

  AuditConfig config_;
  Seconds last_event_time_ = Seconds{0.0};
  Seconds last_disk_now_ = Seconds{0.0};
  Seconds last_wnic_now_ = Seconds{0.0};
  Joules last_disk_total_ = Joules{0.0};
  Joules last_wnic_total_ = Joules{0.0};
  std::uint64_t checks_ = 0;
};

}  // namespace flexfetch::faults
