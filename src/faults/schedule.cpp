#include "faults/schedule.hpp"

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace flexfetch::faults {

namespace {

template <typename Window>
void validate_windows(const std::vector<Window>& windows, const char* what) {
  Seconds prev_end = Seconds{-1.0};
  for (const Window& w : windows) {
    FF_REQUIRE(w.start >= Seconds{},
               std::string("fault schedule: negative ") + what + " start");
    FF_REQUIRE(w.end > w.start,
               std::string("fault schedule: empty ") + what + " window");
    FF_REQUIRE(w.start >= prev_end,
               std::string("fault schedule: ") + what +
                   " windows overlap or are unsorted");
    prev_end = w.end;
  }
}

/// Draws sorted, disjoint windows with exponential inter-arrival times and
/// exponential (capped) durations over [0, horizon).
template <typename Window, typename Fill>
std::vector<Window> draw_windows(Rng& rng, Seconds horizon, double per_hour,
                                 Seconds mean_length, Seconds max_length,
                                 Fill&& fill) {
  std::vector<Window> windows;
  if (per_hour <= 0.0 || horizon <= Seconds{}) return windows;
  const Seconds mean_gap = Seconds{3600.0 / per_hour};
  Seconds t = Seconds{rng.exponential(mean_gap.value())};
  while (t < horizon) {
    Window w;
    w.start = t;
    const Seconds len =
        std::min(max_length,
                 Seconds{std::max(0.1, rng.exponential(mean_length.value()))});
    w.end = t + len;
    fill(w, rng);
    windows.push_back(w);
    t = w.end + Seconds{rng.exponential(mean_gap.value())};
  }
  return windows;
}

}  // namespace

void FaultSchedule::validate() const {
  validate_windows(wnic.outages, "outage");
  validate_windows(wnic.degradations, "degradation");
  validate_windows(disk.spin_up_stalls, "spin-up stall");
  for (const DegradationWindow& w : wnic.degradations) {
    FF_REQUIRE(w.factor > 0.0 && w.factor <= 1.0,
               "fault schedule: degradation factor outside (0, 1]");
  }
  for (const SpinUpStall& s : disk.spin_up_stalls) {
    FF_REQUIRE(s.extra_time >= Seconds{},
               "fault schedule: negative spin-up stall extra time");
    FF_REQUIRE(s.extra_energy >= Joules{},
               "fault schedule: negative spin-up stall extra energy");
  }
}

FaultSchedule generate_schedule(std::uint64_t seed,
                                const FaultScheduleParams& params) {
  FF_REQUIRE(params.horizon > Seconds{}, "fault schedule: non-positive horizon");
  FF_REQUIRE(params.min_factor > 0.0 && params.max_factor <= 1.0 &&
                 params.min_factor <= params.max_factor,
             "fault schedule: degradation factor range outside (0, 1]");
  // One forked stream per fault class, so tuning one class's rate never
  // perturbs the windows another class draws.
  Rng root(seed);
  Rng outage_rng = root.fork();
  Rng degradation_rng = root.fork();
  Rng stall_rng = root.fork();

  FaultSchedule schedule;
  schedule.wnic.outages = draw_windows<OutageWindow>(
      outage_rng, params.horizon, params.outages_per_hour, params.mean_outage,
      params.max_outage, [](OutageWindow&, Rng&) {});
  schedule.wnic.degradations = draw_windows<DegradationWindow>(
      degradation_rng, params.horizon, params.degradations_per_hour,
      params.mean_degradation, params.max_degradation,
      [&params](DegradationWindow& w, Rng& rng) {
        w.factor = rng.uniform(params.min_factor, params.max_factor);
      });
  schedule.disk.spin_up_stalls = draw_windows<SpinUpStall>(
      stall_rng, params.horizon, params.stalls_per_hour,
      params.mean_stall_window, /*max_length=*/4.0 * params.mean_stall_window,
      [&params](SpinUpStall& s, Rng& rng) {
        s.extra_time = std::min(params.max_stall_extra,
                                Seconds{rng.exponential(params.mean_stall_extra.value())});
        s.extra_energy = params.stall_energy_per_second * s.extra_time;
      });
  schedule.validate();
  return schedule;
}

}  // namespace flexfetch::faults
