#include "faults/audit.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/format.hpp"

namespace flexfetch::faults {

namespace {

/// Per-power-state span-duration totals of one device's telemetry track.
struct TrackTiling {
  bool any = false;
  Seconds first_start = Seconds{0.0};
  Seconds last_end = Seconds{0.0};
  /// Sum of span durations whose name matches the given state label.
  Seconds total_for(std::span<const telemetry::TraceEvent> events,
                    std::uint32_t track, const char* state) {
    Seconds total = Seconds{0.0};
    for (const auto& ev : events) {
      if (ev.phase != telemetry::Phase::kSpan || ev.track != track) continue;
      if (std::string_view(ev.name) == state) total += ev.duration;
    }
    return total;
  }
};

}  // namespace

void SimAudit::fail(const std::string& what) const {
  throw InternalError("sim audit: " + what);
}

bool SimAudit::close(double a, double b) const {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= config_.energy_eps * scale;
}

void SimAudit::check_meter(const device::EnergyMeter& meter,
                           Joules& last_total, const char* device) {
  Joules sum = Joules{0.0};
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(device::EnergyCategory::kCount); ++c) {
    const Joules j = meter[static_cast<device::EnergyCategory>(c)];
    if (j < Joules{}) {
      fail(std::string(device) + " meter category " +
           to_string(static_cast<device::EnergyCategory>(c)) + " is negative");
    }
    sum += j;
  }
  // total() is defined as the category sum, so this is exact by
  // construction — the check guards against a future total cache drifting.
  if (sum != meter.total()) {
    fail(std::string(device) + " meter categories do not sum to total");
  }
  if (meter.total() < last_total) {
    fail(std::string(device) + " meter total decreased");
  }
  last_total = meter.total();
  checks_ += 3;
}

void SimAudit::on_event(Seconds event_time, const device::Disk& disk,
                        const device::Wnic& wnic, const os::Vfs& vfs) {
  if (event_time < last_event_time_) fail("event clock moved backwards");
  if (disk.now() < last_disk_now_) fail("disk clock moved backwards");
  if (wnic.now() < last_wnic_now_) fail("wnic clock moved backwards");
  last_event_time_ = event_time;
  last_disk_now_ = disk.now();
  last_wnic_now_ = wnic.now();
  checks_ += 3;

  check_meter(disk.meter(), last_disk_total_, "disk");
  check_meter(wnic.meter(), last_wnic_total_, "wnic");

  const os::BufferCache& cache = vfs.cache();
  const os::CacheStats& cs = cache.stats();
  if (cs.insertions < cs.evictions) {
    fail("cache evicted more pages than it inserted");
  }
  if (cache.size() != cs.insertions - cs.evictions) {
    fail("cache resident pages != insertions - evictions");
  }
  if (cache.size() > cache.capacity()) fail("cache over capacity");
  if (cache.dirty_count() > cache.size()) {
    fail("cache dirty pages exceed resident pages");
  }
  if (cs.hits > cs.lookups) fail("cache hits exceed lookups");
  checks_ += 5;
}

PuritySnapshot SimAudit::capture(const device::Disk& disk,
                                 const device::Wnic& wnic,
                                 const telemetry::Recorder* recorder) const {
  return PuritySnapshot{
      .disk_now = disk.now(),
      .disk_state = disk.state(),
      .disk_energy = disk.meter().total(),
      .disk_requests = disk.counters().requests,
      .disk_spin_ups = disk.counters().spin_ups,
      .wnic_now = wnic.now(),
      .wnic_state = wnic.state(),
      .wnic_energy = wnic.meter().total(),
      .wnic_requests = wnic.counters().requests,
      .wnic_wakes = wnic.counters().wakes,
      .recorder_emitted = recorder != nullptr ? recorder->emitted() : 0,
  };
}

void SimAudit::check_estimate_purity(const PuritySnapshot& before,
                                     const device::Disk& disk,
                                     const device::Wnic& wnic,
                                     const telemetry::Recorder* recorder) {
  const PuritySnapshot after = capture(disk, wnic, recorder);
  if (after.disk_now != before.disk_now ||
      after.disk_state != before.disk_state ||
      after.disk_energy != before.disk_energy ||
      after.disk_requests != before.disk_requests ||
      after.disk_spin_ups != before.disk_spin_ups) {
    fail("counterfactual replay mutated the live disk");
  }
  if (after.wnic_now != before.wnic_now ||
      after.wnic_state != before.wnic_state ||
      after.wnic_energy != before.wnic_energy ||
      after.wnic_requests != before.wnic_requests ||
      after.wnic_wakes != before.wnic_wakes) {
    fail("counterfactual replay mutated the live wnic");
  }
  if (after.recorder_emitted != before.recorder_emitted) {
    fail("counterfactual replay leaked telemetry events into the recorder");
  }
  checks_ += 3;
}

void SimAudit::on_run_end(const device::Disk& disk, const device::Wnic& wnic,
                          std::span<const telemetry::TraceEvent> events,
                          std::uint64_t dropped) {
  check_meter(disk.meter(), last_disk_total_, "disk");
  check_meter(wnic.meter(), last_wnic_total_, "wnic");
  // The power-span reconciliation needs the complete timeline; a lossy ring
  // (or telemetry off) leaves nothing sound to check.
  if (dropped != 0 || events.empty()) return;

  for (const std::uint32_t track :
       {telemetry::track::kDiskPower, telemetry::track::kWnicPower}) {
    const char* which =
        track == telemetry::track::kDiskPower ? "disk" : "wnic";
    const Seconds final_now =
        track == telemetry::track::kDiskPower ? disk.now() : wnic.now();
    bool any = false;
    Seconds cursor = Seconds{0.0};
    for (const auto& ev : events) {
      if (ev.phase != telemetry::Phase::kSpan || ev.track != track) continue;
      if (!any) {
        if (!close(ev.start.value(), 0.0)) {
          fail(std::string(which) + " power timeline does not start at 0");
        }
      } else if (!close(ev.start.value(), cursor.value())) {
        fail(std::string(which) + " power timeline has a gap or overlap at " +
             format_seconds(ev.start));
      }
      cursor = ev.end();
      any = true;
      ++checks_;
    }
    if (any && !close(cursor.value(), final_now.value())) {
      fail(std::string(which) +
           " power timeline does not tile up to the device clock");
    }
  }

  TrackTiling tiling;
  // Standby time carries no transfers, so its span integral must equal the
  // metered standby energy; idle/CAM/PSM spans contain transfer time too,
  // so their integrals only bound the idle-category energy from above.
  const Seconds standby = tiling.total_for(
      events, telemetry::track::kDiskPower, to_string(device::DiskState::kStandby));
  const Joules standby_j = standby * disk.params().standby_power;
  if (!close(standby_j.value(),
             disk.meter()[device::EnergyCategory::kStandby].value())) {
    fail("disk standby span integral does not match the meter");
  }
  const Seconds idle = tiling.total_for(
      events, telemetry::track::kDiskPower, to_string(device::DiskState::kIdle));
  if (disk.meter()[device::EnergyCategory::kIdle] >
      idle * disk.params().idle_power + Joules{config_.energy_eps}) {
    fail("disk idle energy exceeds its span integral");
  }
  const Seconds cam = tiling.total_for(
      events, telemetry::track::kWnicPower, to_string(device::WnicState::kCam));
  if (wnic.meter()[device::EnergyCategory::kCamIdle] >
      cam * wnic.params().cam_idle_power + Joules{config_.energy_eps}) {
    fail("wnic CAM idle energy exceeds its span integral");
  }
  const Seconds psm = tiling.total_for(
      events, telemetry::track::kWnicPower, to_string(device::WnicState::kPsm));
  if (wnic.meter()[device::EnergyCategory::kPsmIdle] >
      psm * wnic.params().psm_idle_power + Joules{config_.energy_eps}) {
    fail("wnic PSM idle energy exceeds its span integral");
  }
  checks_ += 4;
}

void SimAudit::on_medium_step(Seconds t, const medium::SharedMedium& medium) {
  // Airtime conservation: each active client holds quality_i / n_i of the
  // channel where n_i counts the clients *it* sees active; with everyone
  // active n_i = n, so the shares sum to at most 1. share_eps absorbs the
  // float division only — the shares are exact small-integer rationals.
  double share_sum = 0.0;
  for (std::size_t i = 0; i < medium.client_count(); ++i) {
    if (medium.client_active_at(i, t)) share_sum += medium.airtime_share(i, t);
  }
  if (share_sum > 1.0 + medium.params().share_eps) {
    fail("medium airtime shares of active clients sum above 1");
  }

  const medium::ServerStats& ss = medium.server().stats();
  if (ss.conservation_violations != 0) {
    fail("server admission made a request wait past a usable free slot");
  }
  const double cap_horizon =
      static_cast<double>(medium.server().params().capacity) *
      medium.server().horizon().value();
  if (ss.busy.value() > cap_horizon + config_.energy_eps) {
    fail("server busy time exceeds capacity x horizon");
  }
  if (medium.stats().bytes != ss.served_bytes) {
    fail("medium and server disagree on total bytes served");
  }
  checks_ += 4;
}

}  // namespace flexfetch::faults
