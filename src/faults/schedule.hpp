// Deterministic fault schedules for the device models.
//
// FlexFetch's value proposition is making the right source choice under
// imperfect conditions, so the simulator can layer scripted faults on top
// of the nominal device behaviour: WNIC disconnection windows (the card is
// associated to no access point and no transfer can start) and step
// degradations (rain fade, interference) on top of the roaming bandwidth
// schedule, and disk spin-up stalls (retries on the first head load after
// a park) that stretch the spin-up and burn extra energy.
//
// Schedules are plain data validated up front: windows are sorted and
// disjoint, so the point queries below are O(log n) and allocation-free.
// The query helpers are header-only on purpose — the device models include
// this header without linking against the faults library, which keeps the
// module graph acyclic (faults links device for the audit, not vice
// versa). Devices hold a *pointer* to their schedule: copies made for
// counterfactual estimation share it, so an estimate naturally prices the
// remainder of an ongoing outage.
//
// Reproducibility contract: schedules are either hand-written or produced
// by generate_schedule(seed, params), which draws every window from one
// explicitly seeded Rng — the same seed always yields the same schedule,
// on every platform.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace flexfetch::faults {

/// A [start, end) interval during which the WNIC is disassociated: no
/// transfer may begin; requests wait at the device (whose power-state
/// timers keep running) until the window closes.
struct OutageWindow {
  Seconds start = Seconds{0.0};
  Seconds end = Seconds{0.0};
};

/// A [start, end) interval during which the effective link rate is the
/// nominal (roaming-schedule) rate multiplied by `factor` (0 < factor <= 1).
struct DegradationWindow {
  Seconds start = Seconds{0.0};
  Seconds end = Seconds{0.0};
  double factor = 1.0;
};

/// A disk spin-up beginning inside [start, end) takes `extra_time` longer
/// and costs `extra_energy` more (head-load retries).
struct SpinUpStall {
  Seconds start = Seconds{0.0};
  Seconds end = Seconds{0.0};
  Seconds extra_time = Seconds{0.0};
  Joules extra_energy = Joules{0.0};
};

namespace detail {

/// Finds the window of a sorted, disjoint list containing `t`, or nullptr.
template <typename Window>
const Window* window_at(const std::vector<Window>& windows, Seconds t) {
  // First window starting after t; its predecessor is the only candidate.
  auto it = std::upper_bound(
      windows.begin(), windows.end(), t,
      [](Seconds v, const Window& w) { return v < w.start; });
  if (it == windows.begin()) return nullptr;
  const Window& w = *(it - 1);
  return t < w.end ? &w : nullptr;
}

}  // namespace detail

struct WnicFaultSchedule {
  /// Disconnection windows, sorted by start, pairwise disjoint.
  std::vector<OutageWindow> outages;
  /// Rate-degradation windows, sorted by start, pairwise disjoint.
  std::vector<DegradationWindow> degradations;

  bool empty() const { return outages.empty() && degradations.empty(); }

  /// The outage in effect at `t`, or nullptr.
  const OutageWindow* outage_at(Seconds t) const {
    return detail::window_at(outages, t);
  }

  /// Bandwidth multiplier in effect at `t` (1.0 outside every window).
  double degradation_at(Seconds t) const {
    const DegradationWindow* w = detail::window_at(degradations, t);
    return w != nullptr ? w->factor : 1.0;
  }
};

struct DiskFaultSchedule {
  /// Spin-up stall windows, sorted by start, pairwise disjoint.
  std::vector<SpinUpStall> spin_up_stalls;

  bool empty() const { return spin_up_stalls.empty(); }

  /// The stall affecting a spin-up that begins at `t`, or nullptr.
  const SpinUpStall* stall_at(Seconds t) const {
    return detail::window_at(spin_up_stalls, t);
  }
};

/// The complete fault script of one simulation run, carried in SimConfig.
/// An empty schedule is the default and is strictly equivalent to not
/// attaching one: the device hot paths only consult it through a pointer
/// the Simulator leaves null in that case.
struct FaultSchedule {
  WnicFaultSchedule wnic;
  DiskFaultSchedule disk;

  bool empty() const { return wnic.empty() && disk.empty(); }

  /// Throws ConfigError unless every window list is sorted, disjoint and
  /// physically meaningful (positive spans, factors in (0, 1]).
  void validate() const;
};

/// Knobs of the seeded schedule generator. Means are for exponential
/// inter-arrival/duration draws; a rate of 0 disables that fault class.
struct FaultScheduleParams {
  /// Schedule horizon: no window starts at or after this time.
  Seconds horizon = Seconds{600.0};

  /// WNIC disconnections (AP handoffs, dead spots).
  double outages_per_hour = 12.0;
  Seconds mean_outage = Seconds{8.0};
  Seconds max_outage = Seconds{60.0};

  /// WNIC rate degradations.
  double degradations_per_hour = 6.0;
  Seconds mean_degradation = Seconds{20.0};
  Seconds max_degradation = Seconds{120.0};
  double min_factor = 0.25;  ///< Degradation factors drawn from
  double max_factor = 0.75;  ///< [min_factor, max_factor).

  /// Disk spin-up stalls.
  double stalls_per_hour = 6.0;
  Seconds mean_stall_window = Seconds{15.0};
  Seconds mean_stall_extra = Seconds{2.0};
  Seconds max_stall_extra = Seconds{6.0};
  Watts stall_energy_per_second = Watts{2.5};  ///< ~ active power during retries.
};

/// Draws a reproducible fault schedule: same seed + params => identical
/// schedule. The result always passes validate().
FaultSchedule generate_schedule(std::uint64_t seed,
                                const FaultScheduleParams& params = {});

}  // namespace flexfetch::faults
