// Synthetic trace generators for the six Table 3 applications.
#pragma once

#include "common/rng.hpp"
#include "trace/trace.hpp"
#include "workloads/params.hpp"

namespace flexfetch::workloads {

/// Each generator is deterministic in (params, structure_seed, run_seed):
/// structure_seed fixes the file population, run_seed varies think times
/// between executions of "the same program".
trace::Trace grep_trace(const GrepParams& p = {}, std::uint64_t structure_seed = 1,
                        std::uint64_t run_seed = 1);
trace::Trace make_trace(const MakeParams& p = {}, std::uint64_t structure_seed = 1,
                        std::uint64_t run_seed = 1);
trace::Trace xmms_trace(const XmmsParams& p = {}, std::uint64_t structure_seed = 1,
                        std::uint64_t run_seed = 1);
trace::Trace mplayer_trace(const MplayerParams& p = {},
                           std::uint64_t structure_seed = 1,
                           std::uint64_t run_seed = 1);
trace::Trace thunderbird_trace(const ThunderbirdParams& p = {},
                               std::uint64_t structure_seed = 1,
                               std::uint64_t run_seed = 1);
trace::Trace acroread_trace(const AcroreadParams& p = {},
                            std::uint64_t structure_seed = 1,
                            std::uint64_t run_seed = 1);

}  // namespace flexfetch::workloads
