#include "workloads/generators.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/builder.hpp"

namespace flexfetch::workloads {

using trace::Trace;
using trace::TraceBuilder;

namespace {

/// Samples `count` file sizes with a lognormal shape, rescaled to sum to
/// `total` (at least one page each).
std::vector<Bytes> sample_file_sizes(std::size_t count, Bytes total, Rng& rng) {
  FF_REQUIRE(count > 0, "workload: zero files");
  std::vector<double> raw(count);
  double sum = 0.0;
  for (auto& r : raw) {
    r = rng.lognormal(0.0, 0.8);
    sum += r;
  }
  std::vector<Bytes> sizes(count);
  Bytes assigned = Bytes{0};
  for (std::size_t i = 0; i < count; ++i) {
    const auto share = Bytes{
        static_cast<std::uint64_t>(raw[i] / sum * total.as_double())};
    sizes[i] = std::max<Bytes>(share, kPageSize);
    assigned += sizes[i];
  }
  // Give any rounding remainder to the last file.
  if (assigned < total) sizes.back() += total - assigned;
  return sizes;
}

/// Positive think time around `mean` with lognormal jitter.
Seconds jittered_think(Seconds mean, Rng& rng, double sigma = 0.45) {
  if (mean <= Seconds{}) return Seconds{};
  return mean * rng.lognormal(-sigma * sigma / 2.0, sigma);
}

}  // namespace

Trace grep_trace(const GrepParams& p, std::uint64_t structure_seed,
                 std::uint64_t run_seed) {
  Rng structure(seeds::domain(structure_seed, 0x67726570ULL));  // "grep"
  Rng run(seeds::domain(run_seed, 0x67726570ULL));
  const auto sizes = sample_file_sizes(p.file_count, p.total_bytes, structure);

  TraceBuilder b("grep");
  b.process(p.pid, p.pid);
  for (std::size_t i = 0; i < p.file_count; ++i) {
    const trace::Inode ino = p.inode_base + i;
    b.open(ino);
    b.read_file(ino, sizes[i], p.read_chunk);
    b.close(ino);
    b.think(jittered_think(p.per_file_think_mean, run));
  }
  return b.build();
}

Trace make_trace(const MakeParams& p, std::uint64_t structure_seed,
                 std::uint64_t run_seed) {
  Rng structure(seeds::domain(structure_seed, 0x6d616b65ULL));  // "make"
  Rng run(seeds::domain(run_seed, 0x6d616b65ULL));

  const trace::Inode src_base = p.inode_base;
  const trace::Inode hdr_base = p.inode_base + 100'000;
  const trace::Inode obj_base = p.inode_base + 200'000;
  const trace::Inode image_ino = p.inode_base + 299'999;

  std::vector<Bytes> src_sizes(p.compile_units);
  for (auto& s : src_sizes) {
    s = std::max<Bytes>(
        Bytes{static_cast<std::uint64_t>(structure.lognormal(0.0, 0.6) *
                                         p.source_mean.as_double())},
        kPageSize);
  }
  std::vector<Bytes> hdr_sizes(p.header_pool);
  for (auto& s : hdr_sizes) {
    s = std::max<Bytes>(
        Bytes{static_cast<std::uint64_t>(structure.lognormal(0.0, 0.6) *
                                         p.header_mean.as_double())},
        kPageSize);
  }

  TraceBuilder b("make");
  // `make` spawns one gcc per unit; all share the make process group.
  b.process(p.pid, p.pid);

  std::vector<Bytes> obj_sizes(p.compile_units, Bytes{});
  for (std::size_t unit = 0; unit < p.compile_units; ++unit) {
    const trace::Inode src = src_base + unit;
    b.open(src);
    b.read_file(src, src_sizes[unit], 16 * kKiB);
    b.close(src);

    // Preprocessing reads the unit's headers back to back, then the bulk
    // of the compilation runs without I/O.
    const std::size_t hdr_count =
        run.uniform_int(p.headers_per_unit_min, p.headers_per_unit_max);
    for (std::size_t h = 0; h < hdr_count; ++h) {
      // Zipf-ranked header selection: a few headers are included by nearly
      // every unit (cache reuse), most are rare.
      const std::size_t rank =
          static_cast<std::size_t>(run.zipf(p.header_pool, 1.1)) - 1;
      const trace::Inode hdr = hdr_base + rank;
      b.open(hdr);
      b.read_file(hdr, hdr_sizes[rank], 16 * kKiB);
      b.close(hdr);
      b.think(jittered_think(Seconds{8e-3}, run));  // Preprocessing between includes.
    }

    b.think(jittered_think(p.compile_think_mean, run));  // Compilation.

    const Bytes obj = std::max<Bytes>(
        Bytes{static_cast<std::uint64_t>(run.lognormal(0.0, 0.4) *
                                         p.object_mean.as_double())},
        kPageSize);
    obj_sizes[unit] = obj;
    b.open(obj_base + unit);
    b.write_file(obj_base + unit, obj, 32 * kKiB);
    b.close(obj_base + unit);
    b.think(jittered_think(Seconds{0.05}, run));  // make bookkeeping.
  }

  // Link phase: re-read all objects, write the image.
  for (std::size_t unit = 0; unit < p.compile_units; ++unit) {
    b.read_file(obj_base + unit, obj_sizes[unit], 64 * kKiB);
    b.think(jittered_think(Seconds{4e-3}, run));
  }
  b.think(jittered_think(Seconds{2.0}, run));  // Relocation/symbol resolution.
  b.write_file(image_ino, p.image_bytes, 128 * kKiB);
  return b.build();
}

Trace xmms_trace(const XmmsParams& p, std::uint64_t structure_seed,
                 std::uint64_t run_seed) {
  Rng structure(seeds::domain(structure_seed, 0x786d6d73ULL));  // "xmms"
  Rng run(seeds::domain(run_seed, 0x786d6d73ULL));
  const auto sizes =
      sample_file_sizes(p.song_count, p.song_mean * p.song_count, structure);

  // Playback pacing: one chunk per (chunk / bitrate) seconds.
  const double bytes_per_second = p.bitrate_kbps * 1000.0 / 8.0;
  const Seconds period =
      Seconds{p.read_chunk.as_double() / bytes_per_second};

  TraceBuilder b("xmms");
  b.process(p.pid, p.pid);
  for (std::size_t i = 0; i < p.song_count; ++i) {
    const trace::Inode ino = p.inode_base + i;
    b.open(ino);
    for (Bytes off = Bytes{0}; off < sizes[i]; off += p.read_chunk) {
      if (p.max_duration > Seconds{} && b.now() >= p.max_duration) {
        return b.build();
      }
      const Bytes n = std::min<Bytes>(p.read_chunk, sizes[i] - off);
      b.read(ino, off, n);
      b.think(jittered_think(period, run, 0.1));
    }
    b.close(ino);
  }
  return b.build();
}

Trace mplayer_trace(const MplayerParams& p, std::uint64_t structure_seed,
                    std::uint64_t run_seed) {
  Rng structure(seeds::domain(structure_seed, 0x6d706c61ULL));  // "mpla"
  Rng run(seeds::domain(run_seed, 0x6d706c61ULL));
  const auto aux_sizes =
      sample_file_sizes(p.aux_files, p.aux_mean * p.aux_files, structure);

  TraceBuilder b("mplayer");
  b.process(p.pid, p.pid);

  // Startup burst: codecs, fonts, config.
  for (std::size_t i = 0; i < p.aux_files; ++i) {
    const trace::Inode ino = p.inode_base + 1000 + i;
    b.read_file(ino, aux_sizes[i], 32 * kKiB);
    b.think(jittered_think(Seconds{1e-3}, run));
  }
  b.think(jittered_think(Seconds{0.8}, run));  // Demuxer startup.

  // Playback: the demuxer refills its buffer with a small read every
  // chunk_period — continuous but sparse access (Section 3.3.2).
  for (std::size_t m = 0; m < p.movie_count; ++m) {
    const trace::Inode ino = p.inode_base + m;
    b.open(ino);
    for (Bytes off = Bytes{0}; off < p.movie_bytes; off += p.read_chunk) {
      const Bytes n = std::min<Bytes>(p.read_chunk, p.movie_bytes - off);
      b.read(ino, off, n);
      b.think(jittered_think(p.chunk_period, run, 0.08));
    }
    b.close(ino);
    b.think(jittered_think(Seconds{2.5}, run));  // Next item in the playlist.
  }
  return b.build();
}

Trace thunderbird_trace(const ThunderbirdParams& p,
                        std::uint64_t structure_seed, std::uint64_t run_seed) {
  Rng structure(seeds::domain(structure_seed, 0x74686e64ULL));  // "thnd"
  Rng run(seeds::domain(run_seed, 0x74686e64ULL));
  const auto small_sizes =
      sample_file_sizes(p.small_files, p.small_mean * p.small_files, structure);

  const trace::Inode mbox_base = p.inode_base;
  const trace::Inode small_base = p.inode_base + 1000;

  TraceBuilder b("thunderbird");
  b.process(p.pid, p.pid);

  // Startup: enumerate the profile — configuration, index and attachment
  // cache files are all touched while building folder views.
  for (std::size_t i = 0; i < p.small_files; ++i) {
    b.read_file(small_base + i, small_sizes[i], 16 * kKiB);
    b.think(jittered_think(Seconds{2e-3}, run));
  }
  b.think(jittered_think(Seconds{3.0}, run));

  // Phase 1: the user opens emails one after another with long think times
  // in between (Section 3.3.3: "reads several emails one after another with
  // considerable think time in between").
  for (std::size_t e = 0; e < p.emails_read; ++e) {
    const std::size_t mbox = run.uniform_int(0, p.mailbox_count - 1);
    const Bytes max_off = p.mailbox_bytes > p.email_read_bytes
                              ? p.mailbox_bytes - p.email_read_bytes
                              : Bytes{};
    Bytes off = max_off > Bytes{}
                    ? run.uniform_int(0, max_off / kPageSize) * kPageSize
                    : Bytes{};
    for (Bytes got = Bytes{0}; got < p.email_read_bytes; got += 16 * kKiB) {
      const Bytes n = std::min<Bytes>(16 * kKiB, p.email_read_bytes - got);
      b.read(mbox_base + mbox, off + got, n);
    }
    // Occasionally consult an index/attachment file.
    if (run.chance(0.5)) {
      const std::size_t i = run.uniform_int(0, p.small_files - 1);
      b.read_file(small_base + i, std::min<Bytes>(small_sizes[i], 8 * kKiB),
                  8 * kKiB);
    }
    b.think(jittered_think(p.read_think_mean, run, 0.3));
  }

  // Phase 2: full-text search quickly scans every mail file (bursty).
  for (std::size_t m = 0; m < p.mailbox_count; ++m) {
    b.read_file(mbox_base + m, p.mailbox_bytes, p.search_chunk);
    b.think(jittered_think(Seconds{0.02}, run));
  }
  return b.build();
}

Trace acroread_trace(const AcroreadParams& p, std::uint64_t structure_seed,
                     std::uint64_t run_seed) {
  Rng run(seeds::domain(run_seed, 0x6163726fULL));  // "acro"
  (void)structure_seed;  // File sizes are fixed by the params.

  TraceBuilder b("acroread");
  b.process(p.pid, p.pid);
  for (std::size_t s = 0; s < p.searches; ++s) {
    const trace::Inode ino = p.inode_base + (s % p.file_count);
    // A keyword search decompresses and scans the whole document: one
    // sequential burst over the file.
    b.read_file(ino, p.file_bytes, p.scan_chunk);
    b.think(jittered_think(p.interval, run, 0.1));
  }
  return b.build();
}

}  // namespace flexfetch::workloads
