#include "workloads/scenarios.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace flexfetch::workloads {

using core::Profile;
using sim::ProgramSpec;
using trace::Trace;

namespace {

/// Shifts `second` to begin `gap` seconds after `first` ends.
Trace after(const Trace& first, Trace second, Seconds gap) {
  second.shift(first.end_time() + gap - second.start_time());
  return second;
}

Profile record_profile(const Trace& t) {
  return Profile::from_trace(t, kProfileBurstThreshold);
}

Trace merge_all(std::initializer_list<const Trace*> traces, std::string name) {
  Trace merged(std::move(name));
  for (const Trace* t : traces) merged.merge(*t);
  return merged;
}

/// Pre-compiles every program's trace so each sweep cell's Simulator reuses
/// the shared derived arrays instead of recompiling per run.
ScenarioBundle compiled(ScenarioBundle b) {
  for (auto& p : b.programs) {
    p.compiled = std::make_shared<const trace::CompiledTrace>(p.trace);
  }
  return b;
}

// Tuning application. Every helper is the exact identity at scale 1.0
// (the early return below, plus IEEE `x * 1.0 == x` for the think
// scalings), which is what keeps the default-tuned bundles bit-identical
// to the historical ones.

std::size_t scale_count(std::size_t n, double s, std::size_t floor_count) {
  if (s == 1.0) return n;
  const auto scaled = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * s));
  return std::max(scaled, floor_count);
}

Bytes scale_bytes(Bytes b, double s) {
  if (s == 1.0) return b;
  const auto scaled = static_cast<std::uint64_t>(
      std::llround(b.as_double() * s));
  return std::max(Bytes{scaled}, Bytes{4096});
}

GrepParams tuned(GrepParams p, const ScenarioTuning& t) {
  p.file_count = scale_count(p.file_count, t.workload_scale, 8);
  p.total_bytes = scale_bytes(p.total_bytes, t.workload_scale);
  p.per_file_think_mean = p.per_file_think_mean * t.think_scale;
  return p;
}

MakeParams tuned(MakeParams p, const ScenarioTuning& t) {
  p.compile_units = scale_count(p.compile_units, t.workload_scale, 4);
  p.header_pool = scale_count(p.header_pool, t.workload_scale, 8);
  p.compile_think_mean = p.compile_think_mean * t.think_scale;
  return p;
}

XmmsParams tuned(XmmsParams p, const ScenarioTuning& t) {
  p.song_count = scale_count(p.song_count, t.workload_scale, 4);
  return p;
}

MplayerParams tuned(MplayerParams p, const ScenarioTuning& t) {
  p.movie_count = scale_count(p.movie_count, t.workload_scale, 1);
  p.movie_bytes = scale_bytes(p.movie_bytes, t.workload_scale);
  p.aux_files = scale_count(p.aux_files, t.workload_scale, 4);
  p.chunk_period = p.chunk_period * t.think_scale;
  return p;
}

ThunderbirdParams tuned(ThunderbirdParams p, const ScenarioTuning& t) {
  p.mailbox_count = scale_count(p.mailbox_count, t.workload_scale, 2);
  p.mailbox_bytes = scale_bytes(p.mailbox_bytes, t.workload_scale);
  p.small_files = scale_count(p.small_files, t.workload_scale, 4);
  p.emails_read = scale_count(p.emails_read, t.workload_scale, 3);
  p.read_think_mean = p.read_think_mean * t.think_scale;
  return p;
}

AcroreadParams tuned(AcroreadParams p, const ScenarioTuning& t) {
  p.file_count = scale_count(p.file_count, t.workload_scale, 2);
  p.file_bytes = scale_bytes(p.file_bytes, t.workload_scale);
  p.searches = scale_count(p.searches, t.workload_scale, 2);
  p.interval = p.interval * t.think_scale;
  return p;
}

/// grep followed by make, as two profiled programs. `run` selects the
/// execution (profiling runs and evaluation runs use different run seeds
/// but the same structure seed, so they touch the same files).
struct GrepMake {
  Trace grep;
  Trace make;
};

GrepMake build_grep_make(std::uint64_t seed, std::uint64_t run,
                         const ScenarioTuning& t) {
  GrepMake g;
  g.grep = grep_trace(tuned(GrepParams{}, t), seed, run);
  g.make =
      after(g.grep, make_trace(tuned(MakeParams{}, t), seed, run), Seconds{2.0});
  return g;
}

}  // namespace

ScenarioBundle scenario_grep_make(std::uint64_t seed,
                                  const ScenarioTuning& tuning) {
  const GrepMake prior =
      build_grep_make(seed, seeds::profile_run(seed), tuning);
  GrepMake eval = build_grep_make(seed, seeds::eval_run(seed), tuning);

  ScenarioBundle b;
  b.name = "grep+make";
  b.oracle_future = merge_all({&eval.grep, &eval.make}, "grep+make");
  b.profiles = {record_profile(prior.grep), record_profile(prior.make)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.grep), .name = "grep"});
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.make), .name = "make"});
  return compiled(std::move(b));
}

ScenarioBundle scenario_mplayer(std::uint64_t seed,
                                const ScenarioTuning& tuning) {
  const MplayerParams params = tuned(MplayerParams{}, tuning);
  Trace prior = mplayer_trace(params, seed, seeds::profile_run(seed));
  Trace eval = mplayer_trace(params, seed, seeds::eval_run(seed));

  ScenarioBundle b;
  b.name = "mplayer";
  b.oracle_future = eval;
  b.profiles = {record_profile(prior)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval), .name = "mplayer"});
  return compiled(std::move(b));
}

ScenarioBundle scenario_thunderbird(std::uint64_t seed,
                                    const ScenarioTuning& tuning) {
  const ThunderbirdParams params = tuned(ThunderbirdParams{}, tuning);
  Trace prior = thunderbird_trace(params, seed, seeds::profile_run(seed));
  Trace eval = thunderbird_trace(params, seed, seeds::eval_run(seed));

  ScenarioBundle b;
  b.name = "thunderbird";
  b.oracle_future = eval;
  b.profiles = {record_profile(prior)};
  b.programs.push_back(
      ProgramSpec{.trace = std::move(eval), .name = "thunderbird"});
  return compiled(std::move(b));
}

ScenarioBundle scenario_forced_spinup(std::uint64_t seed,
                                      const ScenarioTuning& tuning) {
  const GrepMake prior =
      build_grep_make(seed, seeds::profile_run(seed), tuning);
  GrepMake eval = build_grep_make(seed, seeds::eval_run(seed), tuning);

  // xmms plays MP3s that exist only on the local disk, for as long as the
  // programming session lasts (Section 3.3.4).
  XmmsParams xp = tuned(XmmsParams{}, tuning);
  xp.max_duration = eval.make.end_time();
  Trace xmms = xmms_trace(xp, seed, seeds::eval_run(seed));

  ScenarioBundle b;
  b.name = "grep+make/xmms";
  b.oracle_future = merge_all({&eval.grep, &eval.make}, "grep+make");
  b.profiles = {record_profile(prior.grep), record_profile(prior.make)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.grep), .name = "grep"});
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.make), .name = "make"});
  b.programs.push_back(ProgramSpec{.trace = std::move(xmms),
                                   .name = "xmms",
                                   .profiled = false,
                                   .disk_pinned = true});
  return compiled(std::move(b));
}

ScenarioBundle scenario_stale_acroread(std::uint64_t seed,
                                       const ScenarioTuning& tuning) {
  // The profile was recorded from a light run: 2 MB PDFs at 25 s intervals
  // (longer than the disk spin-down timeout). The current execution scans
  // 20 MB PDFs every 10 s.
  Trace prior = acroread_trace(tuned(AcroreadParams::stale_profile_run(), tuning),
                               seed, seeds::profile_run(seed));
  Trace eval = acroread_trace(tuned(AcroreadParams{}, tuning), seed,
                              seeds::eval_run(seed));

  ScenarioBundle b;
  b.name = "acroread(stale-profile)";
  b.oracle_future = eval;
  b.profiles = {record_profile(prior)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval), .name = "acroread"});
  return compiled(std::move(b));
}

ScenarioBundle scenario_grep_make(std::uint64_t seed) {
  return scenario_grep_make(seed, ScenarioTuning{});
}
ScenarioBundle scenario_mplayer(std::uint64_t seed) {
  return scenario_mplayer(seed, ScenarioTuning{});
}
ScenarioBundle scenario_thunderbird(std::uint64_t seed) {
  return scenario_thunderbird(seed, ScenarioTuning{});
}
ScenarioBundle scenario_forced_spinup(std::uint64_t seed) {
  return scenario_forced_spinup(seed, ScenarioTuning{});
}
ScenarioBundle scenario_stale_acroread(std::uint64_t seed) {
  return scenario_stale_acroread(seed, ScenarioTuning{});
}

std::vector<ScenarioBundle> all_scenarios(std::uint64_t seed,
                                          const ScenarioTuning& tuning) {
  std::vector<ScenarioBundle> out;
  out.push_back(scenario_grep_make(seed, tuning));
  out.push_back(scenario_mplayer(seed, tuning));
  out.push_back(scenario_thunderbird(seed, tuning));
  out.push_back(scenario_forced_spinup(seed, tuning));
  out.push_back(scenario_stale_acroread(seed, tuning));
  return out;
}

std::vector<ScenarioBundle> all_scenarios(std::uint64_t seed) {
  return all_scenarios(seed, ScenarioTuning{});
}

}  // namespace flexfetch::workloads
