#include "workloads/scenarios.hpp"

namespace flexfetch::workloads {

using core::Profile;
using sim::ProgramSpec;
using trace::Trace;

namespace {

/// Shifts `second` to begin `gap` seconds after `first` ends.
Trace after(const Trace& first, Trace second, Seconds gap) {
  second.shift(first.end_time() + gap - second.start_time());
  return second;
}

Profile record_profile(const Trace& t) {
  return Profile::from_trace(t, kProfileBurstThreshold);
}

Trace merge_all(std::initializer_list<const Trace*> traces, std::string name) {
  Trace merged(std::move(name));
  for (const Trace* t : traces) merged.merge(*t);
  return merged;
}

/// Pre-compiles every program's trace so each sweep cell's Simulator reuses
/// the shared derived arrays instead of recompiling per run.
ScenarioBundle compiled(ScenarioBundle b) {
  for (auto& p : b.programs) {
    p.compiled = std::make_shared<const trace::CompiledTrace>(p.trace);
  }
  return b;
}

/// grep followed by make, as two profiled programs. `run` selects the
/// execution (profiling runs and evaluation runs use different run seeds
/// but the same structure seed, so they touch the same files).
struct GrepMake {
  Trace grep;
  Trace make;
};

GrepMake build_grep_make(std::uint64_t seed, std::uint64_t run) {
  GrepMake g;
  g.grep = grep_trace(GrepParams{}, seed, run);
  g.make = after(g.grep, make_trace(MakeParams{}, seed, run), Seconds{2.0});
  return g;
}

}  // namespace

ScenarioBundle scenario_grep_make(std::uint64_t seed) {
  const GrepMake prior = build_grep_make(seed, /*run=*/seed * 2);
  GrepMake eval = build_grep_make(seed, /*run=*/seed * 2 + 1);

  ScenarioBundle b;
  b.name = "grep+make";
  b.oracle_future = merge_all({&eval.grep, &eval.make}, "grep+make");
  b.profiles = {record_profile(prior.grep), record_profile(prior.make)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.grep), .name = "grep"});
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.make), .name = "make"});
  return compiled(std::move(b));
}

ScenarioBundle scenario_mplayer(std::uint64_t seed) {
  Trace prior = mplayer_trace(MplayerParams{}, seed, seed * 2);
  Trace eval = mplayer_trace(MplayerParams{}, seed, seed * 2 + 1);

  ScenarioBundle b;
  b.name = "mplayer";
  b.oracle_future = eval;
  b.profiles = {record_profile(prior)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval), .name = "mplayer"});
  return compiled(std::move(b));
}

ScenarioBundle scenario_thunderbird(std::uint64_t seed) {
  Trace prior = thunderbird_trace(ThunderbirdParams{}, seed, seed * 2);
  Trace eval = thunderbird_trace(ThunderbirdParams{}, seed, seed * 2 + 1);

  ScenarioBundle b;
  b.name = "thunderbird";
  b.oracle_future = eval;
  b.profiles = {record_profile(prior)};
  b.programs.push_back(
      ProgramSpec{.trace = std::move(eval), .name = "thunderbird"});
  return compiled(std::move(b));
}

ScenarioBundle scenario_forced_spinup(std::uint64_t seed) {
  const GrepMake prior = build_grep_make(seed, /*run=*/seed * 2);
  GrepMake eval = build_grep_make(seed, /*run=*/seed * 2 + 1);

  // xmms plays MP3s that exist only on the local disk, for as long as the
  // programming session lasts (Section 3.3.4).
  XmmsParams xp;
  xp.max_duration = eval.make.end_time();
  Trace xmms = xmms_trace(xp, seed, seed * 2 + 1);

  ScenarioBundle b;
  b.name = "grep+make/xmms";
  b.oracle_future = merge_all({&eval.grep, &eval.make}, "grep+make");
  b.profiles = {record_profile(prior.grep), record_profile(prior.make)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.grep), .name = "grep"});
  b.programs.push_back(ProgramSpec{.trace = std::move(eval.make), .name = "make"});
  b.programs.push_back(ProgramSpec{.trace = std::move(xmms),
                                   .name = "xmms",
                                   .profiled = false,
                                   .disk_pinned = true});
  return compiled(std::move(b));
}

ScenarioBundle scenario_stale_acroread(std::uint64_t seed) {
  // The profile was recorded from a light run: 2 MB PDFs at 25 s intervals
  // (longer than the disk spin-down timeout). The current execution scans
  // 20 MB PDFs every 10 s.
  Trace prior =
      acroread_trace(AcroreadParams::stale_profile_run(), seed, seed * 2);
  Trace eval = acroread_trace(AcroreadParams{}, seed, seed * 2 + 1);

  ScenarioBundle b;
  b.name = "acroread(stale-profile)";
  b.oracle_future = eval;
  b.profiles = {record_profile(prior)};
  b.programs.push_back(ProgramSpec{.trace = std::move(eval), .name = "acroread"});
  return compiled(std::move(b));
}

std::vector<ScenarioBundle> all_scenarios(std::uint64_t seed) {
  std::vector<ScenarioBundle> out;
  out.push_back(scenario_grep_make(seed));
  out.push_back(scenario_mplayer(seed));
  out.push_back(scenario_thunderbird(seed));
  out.push_back(scenario_forced_spinup(seed));
  out.push_back(scenario_stale_acroread(seed));
  return out;
}

}  // namespace flexfetch::workloads
