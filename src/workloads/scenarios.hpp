// The five evaluation scenarios of Section 3.3, bundled: the programs to
// replay, the prior-run profiles FlexFetch consults, and the merged future
// trace the Oracle policy sees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "sim/simulator.hpp"
#include "workloads/generators.hpp"

namespace flexfetch::workloads {

/// Burst threshold used when recording profiles: the DK23DA's average
/// access time (13 ms seek + 7 ms rotation), per Section 2.1.
inline constexpr Seconds kProfileBurstThreshold = Seconds{0.020};

struct ScenarioBundle {
  std::string name;
  /// Programs of the evaluation run (replayed by the simulator).
  std::vector<sim::ProgramSpec> programs;
  /// Profiles recorded from a *prior* run (different run seed) of each
  /// profiled program — what FlexFetch consults.
  std::vector<core::Profile> profiles;
  /// Merged evaluation-run trace of the profiled programs (Oracle input).
  trace::Trace oracle_future;
};

/// Per-user variation knobs for the paper scenarios, used by the fleet
/// population (src/fleet/). The default-constructed tuning is the exact
/// identity: every scaling below short-circuits on 1.0, so
/// scenario_x(seed) and scenario_x(seed, ScenarioTuning{}) build
/// bit-identical bundles (pinned by tests).
struct ScenarioTuning {
  /// Multiplies user think/pacing times (email reading pauses, compile
  /// times, media refill periods...). >1 = a slower user.
  double think_scale = 1.0;
  /// Multiplies workload footprints (file counts, per-file bytes) —
  /// fleet sweeps run scaled-down scenario instances so a million users
  /// stay tractable while keeping each scenario's access *shape*.
  double workload_scale = 1.0;
};

/// Section 3.3.1 — programming: grep over the source tree, then a kernel
/// build.
ScenarioBundle scenario_grep_make(std::uint64_t seed = 1);
ScenarioBundle scenario_grep_make(std::uint64_t seed,
                                  const ScenarioTuning& tuning);

/// Section 3.3.2 — media streaming with mplayer.
ScenarioBundle scenario_mplayer(std::uint64_t seed = 1);
ScenarioBundle scenario_mplayer(std::uint64_t seed,
                                const ScenarioTuning& tuning);

/// Section 3.3.3 — email reading + search with Thunderbird.
ScenarioBundle scenario_thunderbird(std::uint64_t seed = 1);
ScenarioBundle scenario_thunderbird(std::uint64_t seed,
                                    const ScenarioTuning& tuning);

/// Section 3.3.4 — grep+make while xmms (disk-pinned, unprofiled MP3s)
/// keeps the disk spinning.
ScenarioBundle scenario_forced_spinup(std::uint64_t seed = 1);
ScenarioBundle scenario_forced_spinup(std::uint64_t seed,
                                      const ScenarioTuning& tuning);

/// Section 3.3.5 — Acroread whose profile was recorded from a much lighter
/// run (2 MB PDFs at 25 s) than the current one (20 MB PDFs at 10 s).
ScenarioBundle scenario_stale_acroread(std::uint64_t seed = 1);
ScenarioBundle scenario_stale_acroread(std::uint64_t seed,
                                       const ScenarioTuning& tuning);

/// All five, in paper order.
std::vector<ScenarioBundle> all_scenarios(std::uint64_t seed = 1);
std::vector<ScenarioBundle> all_scenarios(std::uint64_t seed,
                                          const ScenarioTuning& tuning);

/// Number of scenarios all_scenarios returns (fleet population mixes
/// sample a scenario index in [0, kScenarioCount)).
inline constexpr std::size_t kScenarioCount = 5;

}  // namespace flexfetch::workloads
