// Parameter sets for the six synthetic application workloads of Table 3.
//
// The paper drove its simulator with strace logs of real runs; those traces
// are not available, so each generator synthesizes a trace matching the
// paper's published file counts / footprints (Table 3) and the per-scenario
// narrative of Section 3.3 (burstiness, think-time structure, phases).
// Generators split determinism in two: `structure_seed` fixes the file
// population (inodes, sizes) so that a profiling run and an evaluation run
// see the *same files*, while `run_seed` varies think times and small
// per-run jitter between executions.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "trace/record.hpp"

namespace flexfetch::workloads {

/// grep over a source tree: a single fast scan of many small files
/// (Table 3: 1332 files, 50.4 MB).
struct GrepParams {
  std::size_t file_count = 1332;
  Bytes total_bytes = static_cast<Bytes>(50.4 * 1e6);
  Bytes read_chunk = 16 * kKiB;
  /// Tiny per-file processing time: grep is I/O-bound.
  Seconds per_file_think_mean = Seconds{1.5e-3};
  trace::Inode inode_base = 10'000;
  trace::Pid pid = 2001;
};

/// Kernel build: compile units read sources+headers, think (compile),
/// write objects (Table 3: 2579 files, 72.5 MB; "takes several minutes").
struct MakeParams {
  std::size_t compile_units = 220;
  std::size_t header_pool = 1500;       ///< Shared headers (cache reuse).
  std::size_t headers_per_unit_min = 2;
  std::size_t headers_per_unit_max = 7;
  Bytes source_mean = 12 * kKiB;
  Bytes header_mean = 18 * kKiB;
  Bytes object_mean = 40 * kKiB;
  /// Compile think time per unit (seconds, lognormal-ish around the mean):
  /// gcc on a 2007 laptop took a few seconds per kernel translation unit.
  /// The gap is long enough for the WNIC to drop into PSM between units
  /// (0.8 s timeout) but far below the disk's 20 s spin-down timeout —
  /// exactly the "non-bursty" pattern for which the paper calls the WNIC
  /// energy efficient (Section 3.3.1).
  Seconds compile_think_mean = Seconds{4.0};
  /// Final link phase: read all objects, write the kernel image.
  Bytes image_bytes = 4 * kMiB;
  trace::Inode inode_base = 20'000;
  trace::Pid pid = 2002;
};

/// MP3 player: paced playlist streaming; files stored ONLY on the local
/// disk in the Section 3.3.4 scenario (Table 3: 116 files, 47.9 MB).
struct XmmsParams {
  std::size_t song_count = 116;
  Bytes song_mean = 420 * kKiB;
  double bitrate_kbps = 128.0;
  Bytes read_chunk = 64 * kKiB;
  /// Cap on how long the playlist plays (0 = play everything once).
  Seconds max_duration = Seconds{0.0};
  trace::Inode inode_base = 30'000;
  trace::Pid pid = 2003;
};

/// Movie player: continuous paced reads of large movie files, small amount
/// at a time (Table 3: 121 files, 136.3 MB).
struct MplayerParams {
  std::size_t movie_count = 3;
  Bytes movie_bytes = 44 * kMiB;
  std::size_t aux_files = 118;        ///< Codecs/fonts read at startup.
  Bytes aux_mean = 24 * kKiB;
  /// Demuxer buffer refill: the player pulls a large chunk, then plays from
  /// memory. 2 MiB every 40 s is a ~410 kbps stream (a 44 MB movie plays
  /// ~14.5 min). The sparse refills let the disk duty-cycle through
  /// standby, which produces the paper's Figure 2(b) shape: the WNIC wins
  /// at high bandwidth, the disk below ~2 Mbps.
  Bytes read_chunk = 2 * kMiB;
  Seconds chunk_period = Seconds{40.0};
  trace::Inode inode_base = 40'000;
  trace::Pid pid = 2004;
};

/// Email client: reads several emails with long user think times, then
/// searches all mail files in one burst (Table 3: 283 files, 188.1 MB).
struct ThunderbirdParams {
  std::size_t mailbox_count = 6;
  Bytes mailbox_bytes = 26 * kMiB;
  std::size_t small_files = 277;      ///< Config, index, attachment cache.
  Bytes small_mean = 16 * kKiB;
  std::size_t emails_read = 15;
  Bytes email_read_bytes = 96 * kKiB; ///< Data pulled per opened email.
  /// User reading an email. Deliberately straddles the 20 s disk spin-down
  /// timeout: servicing these sparse small reads from the disk makes it
  /// thrash between idle and standby (the Section 3.3.3 motivation).
  Seconds read_think_mean = Seconds{22.0};
  Bytes search_chunk = 128 * kKiB;
  trace::Inode inode_base = 50'000;
  trace::Pid pid = 2005;
};

/// PDF reader keyword search (Section 3.3.5). The *current* run scans
/// several 20 MB PDFs with 10 s intervals; the *stale profile* run read
/// 2 MB PDFs with 25 s intervals (longer than the disk timeout).
struct AcroreadParams {
  std::size_t file_count = 10;
  Bytes file_bytes = Bytes{20'000'000};
  Seconds interval = Seconds{10.0};
  std::size_t searches = 12;          ///< Keyword searches performed.
  Bytes scan_chunk = 128 * kKiB;
  trace::Inode inode_base = 60'000;
  trace::Pid pid = 2006;

  /// The execution the out-of-date profile was recorded from.
  static AcroreadParams stale_profile_run() {
    AcroreadParams p;
    p.file_bytes = Bytes{2'000'000};
    p.interval = Seconds{25.0};
    return p;
  }
};

}  // namespace flexfetch::workloads
