#include "medium/server.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace flexfetch::medium {

namespace {

/// Earliest-free slot within [first, count), lowest index on ties.
std::size_t earliest_free(std::span<const Seconds> free_at, std::size_t first) {
  FF_ASSERT(first < free_at.size());
  std::size_t best = first;
  for (std::size_t s = first + 1; s < free_at.size(); ++s) {
    if (free_at[s] < free_at[best]) best = s;
  }
  return best;
}

class FifoAdmission final : public AdmissionPolicy {
 public:
  const char* name() const override { return "fifo"; }
  std::size_t pick_slot(std::span<const Seconds> slot_free_at,
                        double /*battery_fraction*/) const override {
    return earliest_free(slot_free_at, 0);
  }
  bool may_use(std::size_t /*slot*/,
               double /*battery_fraction*/) const override {
    return true;
  }
};

class BatteryAwareAdmission final : public AdmissionPolicy {
 public:
  BatteryAwareAdmission(std::size_t reserved, double threshold)
      : reserved_(reserved), threshold_(threshold) {}

  const char* name() const override { return "battery"; }
  std::size_t pick_slot(std::span<const Seconds> slot_free_at,
                        double battery_fraction) const override {
    // Slots [0, reserved_) are the low-battery trunk; everyone else is
    // admitted only to [reserved_, capacity).
    return earliest_free(slot_free_at,
                         battery_fraction < threshold_ ? 0 : reserved_);
  }
  bool may_use(std::size_t slot, double battery_fraction) const override {
    return battery_fraction < threshold_ || slot >= reserved_;
  }

 private:
  std::size_t reserved_;
  double threshold_;
};

}  // namespace

void ServerParams::validate() const {
  FF_REQUIRE(capacity >= 1, "server: capacity must be >= 1");
  FF_REQUIRE(reserved_slots >= 0, "server: negative slot reservation");
  FF_REQUIRE(reserved_slots < capacity,
             "server: reservation must leave an unreserved slot");
  FF_REQUIRE(low_battery_threshold >= 0.0 && low_battery_threshold <= 1.0,
             "server: low_battery_threshold outside [0, 1]");
  make_admission_policy(*this);  // Throws on an unknown name.
}

std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const ServerParams& params) {
  if (params.admission == "fifo") {
    return std::make_unique<FifoAdmission>();
  }
  if (params.admission == "battery") {
    return std::make_unique<BatteryAwareAdmission>(
        static_cast<std::size_t>(params.reserved_slots),
        params.low_battery_threshold);
  }
  throw ConfigError("unknown admission policy: " + params.admission);
}

RemoteServer::RemoteServer(ServerParams params)
    : params_(std::move(params)),
      policy_(make_admission_policy(params_)),
      free_at_(static_cast<std::size_t>(params_.capacity), Seconds{0.0}) {
  params_.validate();
}

Seconds RemoteServer::admission_delay(Seconds t,
                                      double battery_fraction) const {
  const std::size_t slot = policy_->pick_slot(free_at_, battery_fraction);
  return free_at_[slot] > t ? free_at_[slot] - t : Seconds{};
}

std::size_t RemoteServer::busy_slots(Seconds t) const {
  std::size_t busy = 0;
  for (const Seconds f : free_at_) {
    if (f > t) ++busy;
  }
  return busy;
}

void RemoteServer::occupy(Seconds arrival, Seconds start, Seconds end,
                          double battery_fraction, Bytes size) {
  FF_REQUIRE(end >= start && start >= arrival, "server: non-causal service");
  const std::size_t slot = policy_->pick_slot(free_at_, battery_fraction);
  // `start` was quoted as arrival + admission_delay against this same slot
  // state, so the slot must be free by then (tolerance only for the
  // arrival + (free_at - arrival) float round-trip).
  const Seconds slack = Seconds{1e-9} * std::max(1.0, end.value());
  FF_REQUIRE(free_at_[slot] <= start + slack,
             "server: transfer committed into a busy slot");

  ++stats_.requests;
  if (start > arrival) {
    ++stats_.queue_waits;
    stats_.queue_wait += start - arrival;
    // Classify the wait: a free slot this client may use is a
    // work-conservation bug; only-reserved free slots are the battery
    // policy doing its job; no free slot at all is honest queueing.
    bool allowed_free = false;
    bool reserved_free = false;
    for (std::size_t s = 0; s < free_at_.size(); ++s) {
      if (free_at_[s] > arrival) continue;
      (policy_->may_use(s, battery_fraction) ? allowed_free : reserved_free) =
          true;
    }
    if (allowed_free) {
      ++stats_.conservation_violations;
    } else if (reserved_free) {
      ++stats_.reserved_deferrals;
    }
  }
  stats_.max_depth =
      std::max(stats_.max_depth,
               static_cast<std::uint64_t>(busy_slots(start)) + 1);
  stats_.busy += end - start;
  stats_.served_bytes += size;
  free_at_[slot] = end;
  horizon_ = std::max(horizon_, end);
}

}  // namespace flexfetch::medium
