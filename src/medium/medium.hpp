// SharedMedium: N clients, one access point, one finite server.
//
// The paper evaluates each laptop against a private channel; this module
// models the deployment setting instead. All clients associate with one
// 802.11 AP and contend for its airtime; every bulk fetch additionally
// occupies one of the remote server's finite service slots (server.hpp).
//
// Airtime model (quasi-static fair share): 802.11 DCF gives each of n
// stations with queued traffic an equal share of transmission
// opportunities, so a transfer that starts at time t while `n - 1` other
// clients are mid-transfer runs at
//
//     effective = nominal * degradation(t) * link_quality / n
//
// where the degradation factor comes from the client's own FaultSchedule
// (applied inside Wnic::effective_bandwidth — the medium composes with,
// never replaces, the fault layer) and link_quality in (0, 1] models a
// client's PHY rate penalty (distance, wall loss). The share is evaluated
// once at transfer start — the same quantization the roaming bandwidth
// schedule already uses for rate changes mid-transfer.
//
// What counts as "mid-transfer" is the set of *committed* intervals:
// a live Wnic registers [start, completion) of every bulk transfer it
// actually performed (ClientLink::commit_transfer). Commitment is causal —
// a transfer only sees intervals committed before it in the global event
// order — which keeps the coordinator's event loop deterministic and,
// with one client, leaves every query at exactly 1.0 (the N=1 degeneracy
// contract: a single client through a SharedMedium is bit-identical to no
// medium at all).
//
// Battery reporting: the coordinator refreshes each client's reported
// battery fraction after every simulation step (BOINC-style periodic
// device status reports). The server's battery-aware admission policy
// reads the *reported* value, so live service and counterfactual
// estimates price the same admission state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "energy/battery.hpp"
#include "medium/link.hpp"
#include "medium/server.hpp"

namespace flexfetch::medium {

/// The battery model lives in the energy module (energy/battery.hpp) so
/// admission reporting and the adaptive loss-rate policies read one
/// state; the medium keeps the historical name as an alias.
using BatteryParams = energy::BatteryParams;

struct MediumParams {
  /// Tolerance for the audit's share-sum invariant (pure float slack; the
  /// shares themselves are exact rationals of small integers).
  double share_eps = 1e-9;
  /// Time constant of the congestion memory behind expected_share: each
  /// client's committed airtime decays as exp(-age / tau), so a client
  /// transferring continuously saturates at activity 1 and one that went
  /// quiet fades out over a few tau. Matches the scale of a few FlexFetch
  /// evaluation stages.
  Seconds congestion_tau = Seconds{60.0};
};

struct MediumStats {
  std::uint64_t transfers = 0;  ///< Committed bulk transfers.
  std::uint64_t contended_transfers = 0;  ///< Started with another active.
  Seconds airtime = Seconds{0.0};  ///< Total committed transfer time.
  Bytes bytes = Bytes{0};
  double share_sum = 0.0;  ///< Sum of at-start shares (for the mean).

  double mean_share() const {
    return transfers > 0 ? share_sum / static_cast<double>(transfers) : 1.0;
  }
};

class SharedMedium {
 public:
  SharedMedium(MediumParams params, ServerParams server);

  /// Registers a client; returns its index. link_quality must be in
  /// (0, 1]. Clients must all be added before any transfer commits.
  std::size_t add_client(double link_quality, BatteryParams battery);

  /// The client's port for Wnic::attach_medium / Simulator::attach_medium.
  /// Stable for the SharedMedium's lifetime.
  ClientLink* session(std::size_t client);

  std::size_t client_count() const { return clients_.size(); }
  double link_quality(std::size_t client) const;

  /// link_quality / (1 + other clients mid-transfer at t).
  double airtime_share(std::size_t client, Seconds t) const;
  /// Whether the client has a committed interval containing `t`.
  bool client_active_at(std::size_t client, Seconds t) const;

  /// History-aware pricing share: link_quality / (1 + expected load),
  /// where the expected load sums the *other* clients' recent activity
  /// fractions (decayed committed airtime / congestion_tau, each clamped
  /// to 1). With no other committed airtime this is exactly
  /// airtime_share on an idle medium — the N=1 degeneracy holds — and it
  /// never mutates, so estimator replicas query it freely.
  double expected_share(std::size_t client, Seconds t) const;
  /// The decayed-airtime activity fraction of one client at `t`, in
  /// [0, 1].
  double activity_fraction(std::size_t client, Seconds t) const;

  /// Registers a committed transfer and occupies its server slot.
  void commit(std::size_t client, Seconds arrival, Seconds start, Seconds end,
              Bytes size, bool is_write);

  /// Advances the global frontier (the minimum next event time across all
  /// coordinated simulators): intervals ending at or before it can never
  /// be queried again and are pruned, bounding per-client interval memory
  /// by the number of in-flight overlaps instead of the run length.
  void set_frontier(Seconds t);

  /// Refreshes the client's reported battery fraction (see BatteryParams).
  void report_battery(std::size_t client, Seconds t, Joules device_energy);
  double battery_fraction(std::size_t client) const;

  const RemoteServer& server() const { return server_; }
  const MediumParams& params() const { return params_; }
  const MediumStats& stats() const { return stats_; }

 private:
  struct Interval {
    Seconds start;
    Seconds end;
  };

  /// The ClientLink implementation handed to device models: a thin
  /// (medium, client index) pair.
  class Session final : public ClientLink {
   public:
    Session(SharedMedium* medium, std::size_t client)
        : medium_(medium), client_(client) {}

    double airtime_share(Seconds t) const override {
      return medium_->airtime_share(client_, t);
    }
    double expected_share(Seconds t) const override {
      return medium_->expected_share(client_, t);
    }
    Seconds admission_delay(Seconds t) const override {
      return medium_->server_.admission_delay(
          t, medium_->battery_fraction(client_));
    }
    std::size_t queue_depth(Seconds t) const override {
      return medium_->server_.busy_slots(t);
    }
    void commit_transfer(Seconds arrival, Seconds start, Seconds end,
                         Bytes size, bool is_write) override {
      medium_->commit(client_, arrival, start, end, size, is_write);
    }

   private:
    SharedMedium* medium_;
    std::size_t client_;
  };

  struct Client {
    double link_quality = 1.0;
    BatteryParams battery;
    double reported_battery = 1.0;
    /// Committed intervals not yet behind the frontier, in start order.
    std::vector<Interval> transfers;
    /// Congestion memory: committed transfer time decayed by
    /// exp(-age / congestion_tau), last folded at `airtime_updated`.
    /// Survives frontier pruning — history is the point.
    Seconds decayed_airtime = Seconds{0.0};
    Seconds airtime_updated = Seconds{0.0};
    std::unique_ptr<Session> session;
  };

  double decayed_airtime_at(const Client& c, Seconds t) const;

  MediumParams params_;
  RemoteServer server_;
  std::vector<Client> clients_;
  MediumStats stats_;
  Seconds frontier_ = Seconds{0.0};
};

}  // namespace flexfetch::medium
