#include "medium/medium.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace flexfetch::medium {

SharedMedium::SharedMedium(MediumParams params, ServerParams server)
    : params_(params), server_(std::move(server)) {
  FF_REQUIRE(params_.congestion_tau > Seconds{0.0},
             "medium: congestion_tau must be positive");
}

std::size_t SharedMedium::add_client(double link_quality,
                                     BatteryParams battery) {
  FF_REQUIRE(link_quality > 0.0 && link_quality <= 1.0,
             "medium: link_quality must be in (0, 1]");
  // Validated, not clamped: clamping only the admission copy let an
  // out-of-range initial_fraction drift — fraction_at computed from the
  // unclamped value, so the first report_battery jumped past the admitted
  // level.
  battery.validate();
  Client c;
  c.link_quality = link_quality;
  c.battery = battery;
  c.reported_battery = battery.initial_fraction;
  c.session = std::make_unique<Session>(this, clients_.size());
  clients_.push_back(std::move(c));
  return clients_.size() - 1;
}

ClientLink* SharedMedium::session(std::size_t client) {
  FF_REQUIRE(client < clients_.size(), "medium: no such client");
  return clients_[client].session.get();
}

double SharedMedium::link_quality(std::size_t client) const {
  FF_ASSERT(client < clients_.size());
  return clients_[client].link_quality;
}

bool SharedMedium::client_active_at(std::size_t client, Seconds t) const {
  FF_ASSERT(client < clients_.size());
  // Few in-flight intervals per client (the frontier prunes the rest);
  // half-open [start, end) so back-to-back transfers never double-count.
  for (const Interval& iv : clients_[client].transfers) {
    if (iv.start <= t && t < iv.end) return true;
  }
  return false;
}

double SharedMedium::airtime_share(std::size_t client, Seconds t) const {
  FF_ASSERT(client < clients_.size());
  std::size_t active = 1;  // The querying client itself.
  for (std::size_t j = 0; j < clients_.size(); ++j) {
    if (j != client && client_active_at(j, t)) ++active;
  }
  return clients_[client].link_quality / static_cast<double>(active);
}

double SharedMedium::decayed_airtime_at(const Client& c, Seconds t) const {
  const double tau = params_.congestion_tau.value();
  FF_ASSERT(tau > 0.0);
  // Querying at or before the last fold sees the undecayed value; the
  // accumulator only ever moves forward (per-client commit ends are
  // non-decreasing).
  const double age = t > c.airtime_updated ? (t - c.airtime_updated).value() : 0.0;
  return c.decayed_airtime.value() * std::exp(-age / tau);
}

double SharedMedium::activity_fraction(std::size_t client, Seconds t) const {
  FF_ASSERT(client < clients_.size());
  return std::min(1.0, decayed_airtime_at(clients_[client], t) /
                           params_.congestion_tau.value());
}

double SharedMedium::expected_share(std::size_t client, Seconds t) const {
  FF_ASSERT(client < clients_.size());
  double load = 0.0;
  for (std::size_t j = 0; j < clients_.size(); ++j) {
    if (j != client) load += activity_fraction(j, t);
  }
  return clients_[client].link_quality / (1.0 + load);
}

void SharedMedium::commit(std::size_t client, Seconds arrival, Seconds start,
                          Seconds end, Bytes size, bool is_write) {
  FF_REQUIRE(client < clients_.size(), "medium: commit from unknown client");
  FF_REQUIRE(end >= start && start >= arrival,
             "medium: non-causal transfer interval");
  Client& c = clients_[client];
  // A client's transfers commit in its own time order, so appending keeps
  // the interval list start-sorted for the frontier pruning below.
  FF_ASSERT(c.transfers.empty() || c.transfers.back().start <= start);

  const double share = airtime_share(client, start);
  ++stats_.transfers;
  if (share < c.link_quality) ++stats_.contended_transfers;
  stats_.share_sum += share;
  stats_.airtime += end - start;
  stats_.bytes += size;

  c.transfers.push_back(Interval{start, end});
  // Fold this transfer into the congestion memory at its end instant.
  c.decayed_airtime =
      Seconds{decayed_airtime_at(c, end)} + (end - start);
  c.airtime_updated = end;
  server_.occupy(arrival, start, end, c.reported_battery, size);
  (void)is_write;  // Up/down transfers contend identically in DCF.
}

void SharedMedium::set_frontier(Seconds t) {
  if (t <= frontier_) return;
  frontier_ = t;
  for (Client& c : clients_) {
    auto it = c.transfers.begin();
    while (it != c.transfers.end() && it->end <= frontier_) ++it;
    c.transfers.erase(c.transfers.begin(), it);
  }
}

void SharedMedium::report_battery(std::size_t client, Seconds t,
                                  Joules device_energy) {
  FF_ASSERT(client < clients_.size());
  Client& c = clients_[client];
  c.reported_battery = c.battery.fraction_at(t, device_energy);
}

double SharedMedium::battery_fraction(std::size_t client) const {
  FF_ASSERT(client < clients_.size());
  return clients_[client].reported_battery;
}

}  // namespace flexfetch::medium
