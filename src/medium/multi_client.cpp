#include "medium/multi_client.hpp"

#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace flexfetch::medium {

MultiClientSim::MultiClientSim(MultiClientConfig config,
                               std::vector<ClientSpec> clients)
    : config_(std::move(config)), clients_(std::move(clients)) {
  FF_REQUIRE(!clients_.empty(), "multi-client: no clients");
  for (const ClientSpec& c : clients_) {
    FF_REQUIRE(c.policy != nullptr,
               "multi-client: client '" + c.name + "' has no policy");
  }
}

MultiClientResult MultiClientSim::run() {
  FF_REQUIRE(!ran_, "multi-client: run() called twice");
  ran_ = true;

  SharedMedium medium(config_.medium, config_.server);
  for (const ClientSpec& c : clients_) {
    medium.add_client(c.link_quality, c.battery);
  }

  std::vector<std::unique_ptr<sim::Simulator>> sims;
  sims.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    ClientSpec& c = clients_[i];
    // ClientSpec::battery is canonical: the same params drive the medium's
    // admission reporting (above) and the simulator's BatteryTracker, so an
    // adaptive policy and the server's priority see one battery state.
    c.config.battery = c.battery;
    sims.push_back(std::make_unique<sim::Simulator>(
        c.config, std::move(c.programs), *c.policy));
    sims.back()->attach_medium(medium.session(i));
    sims.back()->start();
  }

  std::optional<faults::SimAudit> audit;
  if (config_.audit.enabled) audit.emplace(config_.audit);

  // Global event loop: always advance the simulator holding the earliest
  // pending event; the strict < keeps ties on the lowest client index, so
  // the interleaving is a deterministic function of the inputs.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  for (;;) {
    std::size_t best = kNone;
    Seconds best_t = Seconds{0.0};
    for (std::size_t i = 0; i < sims.size(); ++i) {
      if (sims[i]->done()) continue;
      const Seconds t = sims[i]->next_event_time();
      if (best == kNone || t < best_t) {
        best = i;
        best_t = t;
      }
    }
    if (best == kNone) break;

    // No simulator can produce an event before best_t anymore, so
    // intervals ending at or before it are dead — prune them.
    medium.set_frontier(best_t);
    sims[best]->step();
    // BOINC-style status report: refresh the battery fraction the server's
    // admission policy sees, from the client's metered device energy.
    medium.report_battery(best, sims[best]->now(),
                          sims[best]->device_energy());
    if (audit) audit->on_medium_step(sims[best]->now(), medium);
  }

  MultiClientResult out;
  out.clients.reserve(sims.size());
  for (auto& s : sims) out.clients.push_back(s->finish());
  out.battery_final.reserve(sims.size());
  for (std::size_t i = 0; i < sims.size(); ++i) {
    out.battery_final.push_back(medium.battery_fraction(i));
  }
  out.medium = medium.stats();
  out.server = medium.server().stats();
  return out;
}

}  // namespace flexfetch::medium
