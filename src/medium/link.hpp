// The device-facing view of a shared transmission medium.
//
// One ClientLink represents one client's association with the shared
// 802.11 medium + remote server (see medium/medium.hpp). The Wnic holds it
// through a MediumHandle and uses it two ways:
//
//  * const queries — airtime_share / admission_delay / queue_depth — price
//    the *current* contention into a service computation. These never
//    mutate medium state, so FlexFetch's counterfactual estimates (which
//    replay on detached device copies) can consult them freely.
//  * commit_transfer — the live transfer registers the interval it
//    actually occupied, making it visible to every other client's future
//    queries and occupying a server slot.
//
// Like RecorderHandle, a copied MediumHandle keeps the read-only view but
// drops the live (mutating) link: estimator replicas and audit shadows see
// real contention but can never perturb the shared world. Like the fault
// schedule pointer, the view survives copies — an estimate priced against
// an empty channel would defeat the whole layer.
//
// This header is deliberately free of any dependency beyond common/ so the
// device layer can include it without linking the medium module.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace flexfetch::medium {

/// One client's port onto the shared medium. Implemented by
/// SharedMedium::Session; tests may stub it directly.
class ClientLink {
 public:
  virtual ~ClientLink() = default;

  /// Fraction of the nominal link rate this client gets for a transfer
  /// starting at `t`: link_quality / (1 + other clients mid-transfer at t).
  /// Exactly 1.0 when the client is alone on a perfect link — the N=1
  /// degeneracy contract (multiplying a bandwidth by 1.0 is a bit-exact
  /// no-op).
  virtual double airtime_share(Seconds t) const = 0;

  /// The share a transfer around `t` should be *priced* at, given the
  /// congestion observed recently — not just the instantaneous picture.
  /// Counterfactual estimates replay at instants when the medium usually
  /// looks momentarily idle; a history-aware scheme prices the load it has
  /// seen, so detached copies consult this instead of airtime_share. The
  /// default is the instantaneous share; SharedMedium overrides it with a
  /// decayed-airtime congestion estimate. Exactly airtime_share (1.0 on a
  /// perfect solo link) when no other client has committed airtime — the
  /// N=1 degeneracy contract again.
  virtual double expected_share(Seconds t) const { return airtime_share(t); }

  /// How long a request arriving at `t` waits for a server service slot
  /// under the server's admission policy (0 when a slot this client may
  /// use is free). Const: querying never reserves the slot.
  virtual Seconds admission_delay(Seconds t) const = 0;

  /// Server slots busy at `t` (strictly mid-service) — queue-depth
  /// telemetry.
  virtual std::size_t queue_depth(Seconds t) const = 0;

  /// Registers the interval a live transfer actually occupied: it becomes
  /// visible to other clients' airtime queries and occupies the server
  /// slot the admission policy picked. `arrival` is when admission was
  /// queried; `start` is arrival plus the quoted delay. Only the live
  /// path calls this; detached copies cannot (MediumHandle::live() is
  /// null there).
  virtual void commit_transfer(Seconds arrival, Seconds start, Seconds end,
                               Bytes size, bool is_write) = 0;
};

/// Non-owning attachment of a device to its ClientLink with estimator-safe
/// copy semantics: copies keep the const view (contention stays priced)
/// but lose the live link (hypothetical transfers are never committed).
class MediumHandle {
 public:
  MediumHandle() = default;
  MediumHandle(const MediumHandle& other) noexcept : view_(other.view_) {}
  MediumHandle& operator=(const MediumHandle& other) noexcept {
    if (this != &other) {
      view_ = other.view_;
      live_ = nullptr;
    }
    return *this;
  }

  void attach(ClientLink* link) {
    view_ = link;
    live_ = link;
  }

  const ClientLink* view() const { return view_; }
  ClientLink* live() const { return live_; }
  explicit operator bool() const { return view_ != nullptr; }

 private:
  const ClientLink* view_ = nullptr;
  ClientLink* live_ = nullptr;
};

}  // namespace flexfetch::medium
