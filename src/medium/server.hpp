// Finite-capacity remote server with pluggable admission scheduling.
//
// The paper's server is an infinite sink: every fetch is serviced the
// moment the WNIC asks. A deployed hoarding server is not — it has a
// finite number of concurrent service streams, and under N-client load a
// fetch waits for a slot before its first RPC completes. RemoteServer
// models that as a fixed set of slots, each with a free-at time; the
// admission policy decides which slot a request must use, so the wait is
//
//     max(0, free_at[picked slot] - arrival)
//
// and the whole model stays a deterministic pure function of the request
// sequence (no RNG, no host time).
//
// Two admission policies ship (the pluggable interface takes more):
//
//  * fifo — every request takes the earliest-free slot; waits happen only
//    when all slots are busy (work conservation).
//  * battery — SEAS-style energy-aware admission (the BOINC-MGE
//    mechanism: the scheduler orders service by the battery state clients
//    report): `reserved_slots` slots are trunk-reserved for clients that
//    report a battery fraction below `low_battery_threshold`. A
//    low-battery client may use any slot; everyone else queues for the
//    unreserved ones. Under load the low-battery clients therefore wait
//    less, keep their radios in high-power receive for less time, and
//    spend measurably less energy than under fifo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace flexfetch::medium {

struct ServerParams {
  /// Concurrent service streams the server sustains.
  int capacity = 4;
  /// Slots only low-battery clients may occupy (battery admission; fifo
  /// ignores the reservation). Must leave at least one unreserved slot.
  int reserved_slots = 1;
  /// Reported battery fraction below which a client counts as low-battery.
  double low_battery_threshold = 0.30;
  /// Admission policy factory name: "fifo" or "battery".
  std::string admission = "fifo";

  /// Throws ConfigError on nonsense (capacity < 1, reservation eating
  /// every slot, threshold outside [0, 1], unknown policy name).
  void validate() const;
};

/// Server-side decision interface: given every slot's free-at time and the
/// requesting client's reported battery fraction, pick the slot this
/// request must use and say which slots the client is allowed to occupy.
/// Implementations must be deterministic pure functions of their inputs.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  virtual const char* name() const = 0;
  /// Slot this request is assigned (ties break toward the lowest index so
  /// the choice is deterministic).
  virtual std::size_t pick_slot(std::span<const Seconds> slot_free_at,
                                double battery_fraction) const = 0;
  /// Whether this client may occupy `slot` at all — the audit uses it to
  /// tell a work-conservation violation from an intentional reservation
  /// deferral.
  virtual bool may_use(std::size_t slot, double battery_fraction) const = 0;
};

/// Builds the policy `params.admission` names. Throws ConfigError for
/// unknown names.
std::unique_ptr<AdmissionPolicy> make_admission_policy(
    const ServerParams& params);

struct ServerStats {
  std::uint64_t requests = 0;     ///< Transfers granted a slot.
  std::uint64_t queue_waits = 0;  ///< Requests that waited for their slot.
  Seconds queue_wait = Seconds{0.0};  ///< Total slot-wait time imposed.
  Bytes served_bytes = Bytes{0};
  Seconds busy = Seconds{0.0};  ///< Total slot-seconds of service granted.
  std::uint64_t max_depth = 0;  ///< Peak concurrently busy slots.
  /// Waits imposed while a slot the client may NOT use sat free — the
  /// intentional cost of a battery reservation, not a scheduling bug.
  std::uint64_t reserved_deferrals = 0;
  /// Waits imposed while a slot the client MAY use sat free. Always a
  /// bug; SimAudit fails the run if this ever becomes non-zero.
  std::uint64_t conservation_violations = 0;
};

class RemoteServer {
 public:
  explicit RemoteServer(ServerParams params);

  const ServerParams& params() const { return params_; }
  const AdmissionPolicy& admission() const { return *policy_; }
  const ServerStats& stats() const { return stats_; }

  /// Wait a request arriving at `t` with this battery report would incur.
  /// Const: the slot is not reserved until occupy().
  Seconds admission_delay(Seconds t, double battery_fraction) const;

  /// Slots strictly mid-service at `t`.
  std::size_t busy_slots(Seconds t) const;

  /// Commits a granted transfer: the request arrived at `arrival`, began
  /// service at `start` (arrival plus the admission delay quoted for it)
  /// and holds its slot until `end`. Re-derives the slot from the same
  /// state admission_delay saw — queries and commits of one client are
  /// adjacent in the deterministic event loop, so the choice matches.
  void occupy(Seconds arrival, Seconds start, Seconds end,
              double battery_fraction, Bytes size);

  /// Latest end of any granted service — the work-conservation horizon
  /// (total busy slot-seconds can never exceed capacity * horizon).
  Seconds horizon() const { return horizon_; }

 private:
  ServerParams params_;
  std::unique_ptr<AdmissionPolicy> policy_;
  std::vector<Seconds> free_at_;
  ServerStats stats_;
  Seconds horizon_ = Seconds{0.0};
};

}  // namespace flexfetch::medium
