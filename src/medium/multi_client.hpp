// MultiClientSim: N per-client simulators over one shared medium.
//
// The paper evaluates one laptop at a time; this coordinator runs N
// complete Simulator instances — each with its own traces, devices, VFS
// and policy — against one SharedMedium (one AP, one finite server). It
// advances them on a single global event loop: at every iteration the
// simulator with the earliest pending event (ties broken by client index)
// processes exactly one event, then reports its battery state to the
// medium. Because commitment of transfer intervals follows this global
// order, every client prices the contention that causally precedes it and
// the whole run is a deterministic function of the configs and seeds.
//
// Degeneracy contract: with one client the shared medium is invisible
// (share == 1.0, empty server queue), so MultiClientSim{1 client}.run()
// returns a SimResult bit-identical — energy, makespan, metrics — to
// running that Simulator standalone. The event interleaving itself is
// exact by construction: Simulator::run() is defined as start(); while
// (step()) {}; finish(), which is precisely what the coordinator executes
// for a lone client.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "faults/audit.hpp"
#include "medium/medium.hpp"
#include "sim/policy.hpp"
#include "sim/results.hpp"
#include "sim/simulator.hpp"

namespace flexfetch::medium {

/// One participating client: a full single-laptop simulation plus its
/// relationship to the shared medium.
struct ClientSpec {
  std::string name;
  sim::SimConfig config;
  std::vector<sim::ProgramSpec> programs;
  /// Owned by the caller; must outlive run() (same contract as
  /// sim::Simulator). Each client needs its own policy instance — policies
  /// carry per-run state.
  sim::Policy* policy = nullptr;
  /// PHY rate penalty in (0, 1] — see SharedMedium.
  double link_quality = 1.0;
  /// Canonical battery parameters for this client. run() copies them into
  /// `config.battery` (overwriting whatever the config carried) so the
  /// medium's admission reporting and the simulator's BatteryTracker —
  /// hence any battery-adaptive policy — observe one battery state.
  BatteryParams battery;
};

struct MultiClientConfig {
  MediumParams medium;
  ServerParams server;
  /// Coordinator-level audit (medium/server invariants after every step).
  /// Defaults to the FLEXFETCH_AUDIT build option, like SimConfig::audit.
  faults::AuditConfig audit;
};

struct MultiClientResult {
  /// Per-client results, in ClientSpec order.
  std::vector<sim::SimResult> clients;
  MediumStats medium;
  ServerStats server;
  /// Final reported battery fraction per client.
  std::vector<double> battery_final;
};

class MultiClientSim {
 public:
  MultiClientSim(MultiClientConfig config, std::vector<ClientSpec> clients);

  /// Runs every client to completion over the shared medium. Call once.
  MultiClientResult run();

 private:
  MultiClientConfig config_;
  std::vector<ClientSpec> clients_;
  bool ran_ = false;
};

}  // namespace flexfetch::medium
