// Replica synchronization bookkeeping.
//
// The paper assumes "data sets of workloads are available on both local
// hard disk and remote server and synced" and leaves the synchronization
// mechanism to the hoarding system (Section 5). This manager is that
// mechanism's core: it tracks divergence between the replicas — local
// writes that must be uploaded, remote updates that must be re-fetched —
// and hands out bounded sync batches for a daemon to ship over the WNIC.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace flexfetch::hoard {

struct SyncConfig {
  /// Period of the background sync daemon.
  Seconds interval = Seconds{120.0};
  /// Upload debt that triggers an immediate (out-of-cycle) sync.
  Bytes pressure_bytes = 16 * kMiB;
  /// Largest batch shipped per cycle (0 = unbounded).
  Bytes max_batch_bytes = Bytes{0};
};

/// One unit of pending replica traffic.
struct SyncItem {
  trace::Inode inode = 0;
  Bytes bytes = Bytes{0};
  bool upload = true;  ///< true: local -> server; false: server -> local.
  Seconds first_dirty = Seconds{0.0};
};

struct SyncStats {
  std::uint64_t batches = 0;
  Bytes uploaded = Bytes{0};
  Bytes downloaded = Bytes{0};
};

class SyncManager {
 public:
  explicit SyncManager(SyncConfig config = {});

  const SyncConfig& config() const { return config_; }

  /// A local write diverged the local replica: `bytes` must reach the
  /// server eventually.
  void on_local_write(trace::Inode inode, Bytes bytes, Seconds now);

  /// The server-side copy changed (e.g. another client synced): the local
  /// replica must re-fetch.
  void on_remote_update(trace::Inode inode, Bytes bytes, Seconds now);

  Bytes pending_upload() const { return pending_upload_; }
  Bytes pending_download() const { return pending_download_; }
  bool pressure() const { return pending_upload_ >= config_.pressure_bytes; }

  /// Age of the oldest un-synced local write (0 when clean) — the
  /// divergence-window metric.
  Seconds oldest_debt_age(Seconds now) const;

  /// Drains up to max_batch_bytes of pending work, oldest first; uploads
  /// before downloads. Marks the drained debt as synced.
  std::vector<SyncItem> take_batch(Seconds now);

  /// Next time the daemon should wake after `now`.
  Seconds next_wakeup(Seconds now) const { return now + config_.interval; }

  const SyncStats& stats() const { return stats_; }

 private:
  struct Debt {
    Bytes bytes = Bytes{0};
    Seconds first = Seconds{0.0};
  };

  SyncConfig config_;
  std::map<trace::Inode, Debt> upload_;
  std::map<trace::Inode, Debt> download_;
  Bytes pending_upload_ = Bytes{0};
  Bytes pending_download_ = Bytes{0};
  SyncStats stats_;
};

}  // namespace flexfetch::hoard
