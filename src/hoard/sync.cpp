#include "hoard/sync.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace flexfetch::hoard {

SyncManager::SyncManager(SyncConfig config) : config_(config) {
  FF_REQUIRE(config.interval > Seconds{}, "sync: non-positive interval");
}

void SyncManager::on_local_write(trace::Inode inode, Bytes bytes, Seconds now) {
  FF_REQUIRE(bytes > Bytes{}, "sync: zero-byte write");
  Debt& d = upload_[inode];
  if (d.bytes == Bytes{}) d.first = now;
  d.bytes += bytes;
  pending_upload_ += bytes;
}

void SyncManager::on_remote_update(trace::Inode inode, Bytes bytes, Seconds now) {
  FF_REQUIRE(bytes > Bytes{}, "sync: zero-byte update");
  Debt& d = download_[inode];
  if (d.bytes == Bytes{}) d.first = now;
  d.bytes += bytes;
  pending_download_ += bytes;
}

Seconds SyncManager::oldest_debt_age(Seconds now) const {
  Seconds oldest = now;
  bool any = false;
  for (const auto& [ino, d] : upload_) {
    oldest = std::min(oldest, d.first);
    any = true;
  }
  return any ? now - oldest : Seconds{};
}

std::vector<SyncItem> SyncManager::take_batch(Seconds now) {
  (void)now;
  std::vector<SyncItem> out;
  Bytes budget = config_.max_batch_bytes == Bytes{}
                     ? Bytes{std::numeric_limits<std::uint64_t>::max()}
                     : config_.max_batch_bytes;

  auto drain = [&](std::map<trace::Inode, Debt>& debts, Bytes& pending,
                   bool upload) {
    // Oldest debt first: collect entries sorted by first-dirty time.
    std::vector<std::pair<trace::Inode, Debt>> ordered(debts.begin(),
                                                       debts.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                if (a.second.first != b.second.first) {
                  return a.second.first < b.second.first;
                }
                return a.first < b.first;
              });
    for (const auto& [inode, debt] : ordered) {
      if (budget == Bytes{}) break;
      const Bytes take = std::min(debt.bytes, budget);
      out.push_back(SyncItem{.inode = inode,
                             .bytes = take,
                             .upload = upload,
                             .first_dirty = debt.first});
      budget -= take;
      pending -= take;
      (upload ? stats_.uploaded : stats_.downloaded) += take;
      if (take == debt.bytes) {
        debts.erase(inode);
      } else {
        debts[inode].bytes -= take;
      }
    }
  };

  drain(upload_, pending_upload_, /*upload=*/true);
  drain(download_, pending_download_, /*upload=*/false);
  if (!out.empty()) ++stats_.batches;
  return out;
}

}  // namespace flexfetch::hoard
