#include "hoard/hoard_set.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace flexfetch::hoard {

HoardSet::HoardSet(HoardConfig config) : config_(config) {
  FF_REQUIRE(config.recency_half_life > Seconds{}, "hoard: non-positive half-life");
  FF_REQUIRE(config.co_access_window >= Seconds{}, "hoard: negative co-access window");
  FF_REQUIRE(config.cluster_bonus >= 0, "hoard: negative cluster bonus");
}

double HoardSet::decayed_weight(const FileState& f, Seconds now) const {
  const Seconds dt = now - f.weight_time;
  if (dt <= Seconds{}) return f.weight;
  return f.weight * std::exp2(-dt / config_.recency_half_life);
}

void HoardSet::link(trace::Inode a, trace::Inode b) {
  auto& na = files_[a].neighbours;
  if (std::find(na.begin(), na.end(), b) == na.end() &&
      na.size() < config_.max_neighbours) {
    na.push_back(b);
    ++stats_.co_access_links;
  }
}

void HoardSet::record_access(trace::Inode inode, Bytes offset, Bytes size,
                             Seconds now) {
  FileState& f = files_[inode];
  f.weight = decayed_weight(f, now) + 1.0;
  f.weight_time = now;
  f.extent = std::max(f.extent, offset + size);
  ++f.accesses;
  ++stats_.accesses;
  stats_.distinct_files = files_.size();

  // Semantic clustering: an access shortly after an access to a different
  // file links the two (they belong to one activity).
  if (last_inode_ != 0 && last_inode_ != inode &&
      now - last_time_ <= config_.co_access_window) {
    link(inode, last_inode_);
    link(last_inode_, inode);
  }
  last_inode_ = inode;
  last_time_ = now;
}

void HoardSet::record_trace(const trace::Trace& trace) {
  for (const auto& r : trace) {
    if (!r.is_data_transfer()) continue;
    record_access(r.inode, r.offset, r.size, r.timestamp);
  }
}

double HoardSet::priority(trace::Inode inode, Seconds now) const {
  auto it = files_.find(inode);
  if (it == files_.end()) return 0.0;
  const FileState& f = it->second;
  double p = decayed_weight(f, now);
  // Neighbour bonus: proportional to the neighbours' own decayed weights,
  // so clusters rise and fall together.
  for (const auto n : f.neighbours) {
    auto nit = files_.find(n);
    if (nit == files_.end()) continue;
    p += config_.cluster_bonus * decayed_weight(nit->second, now);
  }
  return p;
}

std::vector<HoardCandidate> HoardSet::ranked(Seconds now) const {
  std::vector<HoardCandidate> out;
  out.reserve(files_.size());
  for (const auto& [inode, f] : files_) {
    out.push_back(HoardCandidate{.inode = inode,
                                 .size = f.extent,
                                 .priority = priority(inode, now)});
  }
  std::sort(out.begin(), out.end(),
            [](const HoardCandidate& a, const HoardCandidate& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.inode < b.inode;  // Deterministic ties.
            });
  return out;
}

std::vector<HoardCandidate> HoardSet::select(Bytes budget, Seconds now) const {
  std::vector<HoardCandidate> out;
  Bytes used = Bytes{0};
  for (const auto& c : ranked(now)) {
    if (used + c.size > budget) continue;  // Skip, keep trying smaller files.
    out.push_back(c);
    used += c.size;
  }
  return out;
}

double HoardSet::hit_confidence(Bytes budget, Seconds now) const {
  if (stats_.accesses == 0) return 0.0;
  const auto chosen = select(budget, now);
  std::uint64_t covered = 0;
  for (const auto& c : chosen) {
    covered += files_.at(c.inode).accesses;
  }
  return static_cast<double>(covered) / static_cast<double>(stats_.accesses);
}

}  // namespace flexfetch::hoard
