// Automated hoarding (Kuenning & Popek, SOSP'97) — the substrate the paper
// assumes keeps the working set replicated on the local disk (Section 1:
// "data can be kept consistent by a replication system"; Section 5 leaves
// synchronization to "a hoarding system [11]").
//
// The hoard manager observes file accesses and ranks files by a
// recency-weighted frequency priority plus a semantic-clustering bonus
// (files habitually accessed together are hoarded together). select()
// greedily fills a disk budget with the highest-priority files — the
// paper's [11] reports this captures entire working sets with high
// confidence.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace flexfetch::hoard {

struct HoardConfig {
  /// Half-life of the recency weighting: an access loses half its priority
  /// contribution after this long.
  Seconds recency_half_life = Seconds{3600.0};
  /// Accesses to different files within this window are treated as
  /// semantically related (simplified semantic distance).
  Seconds co_access_window = Seconds{1.0};
  /// Priority bonus per co-access neighbour that is itself hoard-worthy.
  double cluster_bonus = 0.25;
  /// Cap on counted neighbours (keeps hub files from dominating).
  std::size_t max_neighbours = 8;
};

struct HoardCandidate {
  trace::Inode inode = 0;
  Bytes size = Bytes{0};
  double priority = 0.0;
};

struct HoardStats {
  std::uint64_t accesses = 0;
  std::size_t distinct_files = 0;
  std::uint64_t co_access_links = 0;
};

class HoardSet {
 public:
  explicit HoardSet(HoardConfig config = {});

  /// Observes one file access of `size` bytes at `now`. The file's known
  /// extent grows monotonically (hoarding replicates whole files).
  void record_access(trace::Inode inode, Bytes offset, Bytes size, Seconds now);

  /// Feeds a whole trace through record_access (profiling convenience).
  void record_trace(const trace::Trace& trace);

  /// Priority of one file at time `now` (0 if unknown).
  double priority(trace::Inode inode, Seconds now) const;

  /// All known files with their current priorities, best first.
  std::vector<HoardCandidate> ranked(Seconds now) const;

  /// Greedily selects the highest-priority files fitting `budget` bytes.
  /// Files larger than the remaining budget are skipped, not truncated.
  std::vector<HoardCandidate> select(Bytes budget, Seconds now) const;

  /// Fraction of observed accesses that would have hit a hoard chosen with
  /// `budget` bytes at time `now` (the [11]-style confidence measure).
  double hit_confidence(Bytes budget, Seconds now) const;

  std::size_t size() const { return files_.size(); }
  const HoardStats& stats() const { return stats_; }
  const HoardConfig& config() const { return config_; }

 private:
  struct FileState {
    Bytes extent = Bytes{0};
    /// Decayed access weight, normalized to `weight_time`.
    double weight = 0.0;
    Seconds weight_time = Seconds{0.0};
    std::uint64_t accesses = 0;
    std::vector<trace::Inode> neighbours;
  };

  double decayed_weight(const FileState& f, Seconds now) const;
  void link(trace::Inode a, trace::Inode b);

  HoardConfig config_;
  std::unordered_map<trace::Inode, FileState> files_;
  trace::Inode last_inode_ = 0;
  Seconds last_time_ = Seconds{-1e18};
  HoardStats stats_;
};

}  // namespace flexfetch::hoard
