// Fixed-source baseline policies: Disk-only and WNIC-only (Section 3.1).
#pragma once

#include "sim/context.hpp"
#include "sim/policy.hpp"

namespace flexfetch::policies {

/// Always services requests from the local hard disk.
class DiskOnlyPolicy : public sim::Policy {
 public:
  device::DeviceKind select(const sim::RequestContext&, sim::SimContext&) override {
    return device::DeviceKind::kDisk;
  }
  std::string name() const override { return "Disk-only"; }
};

/// Always services requests from the remote storage over the WNIC.
class WnicOnlyPolicy : public sim::Policy {
 public:
  device::DeviceKind select(const sim::RequestContext&, sim::SimContext&) override {
    return device::DeviceKind::kNetwork;
  }
  std::string name() const override { return "WNIC-only"; }
};

}  // namespace flexfetch::policies
