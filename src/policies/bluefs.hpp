// BlueFS-like reactive policy (Nightingale & Flinn, OSDI'04) — the
// representative prior scheme the paper compares against (Sections 1.2,
// 3.1).
//
// For each request the policy estimates the access cost on both devices in
// their *current* power states and picks the cheaper one. Since a standby
// disk carries the full spin-up cost in its per-request estimate, requests
// drift to the network; every such diversion accumulates a *ghost hint* —
// the energy the request would have saved had the disk been spinning.
// When accumulated hints exceed the spin-up + spin-down investment, the
// disk is proactively spun up. This reproduces the reactive,
// recent-history-only behaviour the paper critiques (no knowledge of
// future access patterns, oscillation under mixed workloads).
#pragma once

#include <cstdint>

#include "sim/context.hpp"
#include "sim/policy.hpp"

namespace flexfetch::policies {

struct BlueFSConfig {
  /// Accumulated foregone savings (J) that trigger a disk spin-up;
  /// <= 0 derives spin-up + spin-down energy from the disk parameters.
  Joules ghost_hint_threshold = Joules{0.0};
  /// Exponential decay period of accumulated hints (0 = no decay). The
  /// default keeps hints forever: BlueFS keeps hoping an active disk would
  /// have served the traffic better — exactly the oscillation the paper
  /// criticises in Section 3.3.2.
  Seconds hint_half_life = Seconds{0.0};
};

struct BlueFSStats {
  std::uint64_t disk_selections = 0;
  std::uint64_t net_selections = 0;
  std::uint64_t ghost_spin_ups = 0;
  Joules hints_issued = Joules{0.0};
};

class BlueFSPolicy : public sim::Policy {
 public:
  explicit BlueFSPolicy(BlueFSConfig config = {});

  void begin(sim::SimContext& ctx) override;
  device::DeviceKind select(const sim::RequestContext& req,
                            sim::SimContext& ctx) override;
  std::string name() const override { return "BlueFS"; }

  const BlueFSStats& stats() const { return stats_; }
  Joules pending_hints() const { return hints_; }

 private:
  void decay_hints(Seconds now);

  BlueFSConfig config_;
  Joules hints_ = Joules{0.0};
  Seconds last_hint_time_ = Seconds{0.0};
  BlueFSStats stats_;
};

}  // namespace flexfetch::policies
