// Construction of the standard policy set compared in the paper's
// evaluation, used by the benchmark harness and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/flexfetch.hpp"
#include "policies/bluefs.hpp"
#include "policies/fixed.hpp"
#include "policies/oracle.hpp"

namespace flexfetch::policies {

/// Builds one of: "disk-only", "wnic-only", "bluefs", "flexfetch",
/// "flexfetch-static", "flexfetch-adaptive:<curve>", "oracle". FlexFetch
/// variants need `profiles` (the recorded prior-run profiles); Oracle
/// needs `future` (the trace to be replayed). The adaptive form attaches
/// a battery-driven loss-rate curve parsed by energy::make_loss_curve
/// (e.g. "flexfetch-adaptive:linear", "flexfetch-adaptive:constant@0.25",
/// "flexfetch-adaptive:horizon-ratio@1800:0.05:0.5"); `loss_rate` is the
/// fallback rate for bare "constant". Throws ConfigError for unknown
/// names, malformed curve specs, or missing inputs.
std::unique_ptr<sim::Policy> make_policy(
    const std::string& name,
    const std::vector<core::Profile>& profiles = {},
    const trace::Trace* future = nullptr,
    double loss_rate = 0.25);

/// The four policies of Figures 1-3 in paper order.
std::vector<std::string> standard_policy_names();

}  // namespace flexfetch::policies
