#include "policies/factory.hpp"

#include "common/error.hpp"

namespace flexfetch::policies {

std::unique_ptr<sim::Policy> make_policy(const std::string& name,
                                         const std::vector<core::Profile>& profiles,
                                         const trace::Trace* future,
                                         double loss_rate) {
  if (name == "disk-only") return std::make_unique<DiskOnlyPolicy>();
  if (name == "wnic-only") return std::make_unique<WnicOnlyPolicy>();
  if (name == "bluefs") return std::make_unique<BlueFSPolicy>();
  if (name == "flexfetch" || name == "flexfetch-static") {
    FF_REQUIRE(!profiles.empty(), "make_policy: FlexFetch needs profiles");
    core::FlexFetchConfig config = name == "flexfetch"
                                       ? core::FlexFetchConfig{}
                                       : core::FlexFetchConfig::static_variant();
    config.loss_rate = loss_rate;
    return std::make_unique<core::FlexFetchPolicy>(config, profiles);
  }
  if (name == "oracle") {
    FF_REQUIRE(future != nullptr, "make_policy: Oracle needs the future trace");
    return std::make_unique<OraclePolicy>(*future, loss_rate);
  }
  throw ConfigError("unknown policy '" + name + "'");
}

std::vector<std::string> standard_policy_names() {
  return {"flexfetch", "bluefs", "disk-only", "wnic-only"};
}

}  // namespace flexfetch::policies
