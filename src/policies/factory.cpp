#include "policies/factory.hpp"

#include <string_view>

#include "common/error.hpp"
#include "energy/loss_curve.hpp"

namespace flexfetch::policies {

std::unique_ptr<sim::Policy> make_policy(const std::string& name,
                                         const std::vector<core::Profile>& profiles,
                                         const trace::Trace* future,
                                         double loss_rate) {
  if (name == "disk-only") return std::make_unique<DiskOnlyPolicy>();
  if (name == "wnic-only") return std::make_unique<WnicOnlyPolicy>();
  if (name == "bluefs") return std::make_unique<BlueFSPolicy>();
  if (name == "flexfetch" || name == "flexfetch-static") {
    FF_REQUIRE(!profiles.empty(), "make_policy: FlexFetch needs profiles");
    core::FlexFetchConfig config = name == "flexfetch"
                                       ? core::FlexFetchConfig{}
                                       : core::FlexFetchConfig::static_variant();
    config.loss_rate = loss_rate;
    return std::make_unique<core::FlexFetchPolicy>(config, profiles);
  }
  // Battery-adaptive FlexFetch: "flexfetch-adaptive:<curve-spec>", where
  // the spec is anything energy::make_loss_curve accepts ("linear",
  // "constant@0.25", "horizon-ratio@1800:0.05:0.5", ...). The static
  // `loss_rate` argument doubles as the fallback rate for bare "constant".
  constexpr std::string_view kAdaptivePrefix = "flexfetch-adaptive:";
  if (name.rfind(kAdaptivePrefix, 0) == 0) {
    FF_REQUIRE(!profiles.empty(), "make_policy: FlexFetch needs profiles");
    core::FlexFetchConfig config;
    config.loss_rate = loss_rate;
    config.loss_curve = energy::make_loss_curve(
        name.substr(kAdaptivePrefix.size()), loss_rate);
    return std::make_unique<core::FlexFetchPolicy>(config, profiles);
  }
  if (name == "oracle") {
    FF_REQUIRE(future != nullptr, "make_policy: Oracle needs the future trace");
    return std::make_unique<OraclePolicy>(*future, loss_rate);
  }
  throw ConfigError("unknown policy '" + name + "'");
}

std::vector<std::string> standard_policy_names() {
  return {"flexfetch", "bluefs", "disk-only", "wnic-only"};
}

}  // namespace flexfetch::policies
