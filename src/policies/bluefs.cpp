#include "policies/bluefs.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flexfetch::policies {

using device::DeviceKind;

BlueFSPolicy::BlueFSPolicy(BlueFSConfig config) : config_(config) {
  FF_REQUIRE(config.hint_half_life >= Seconds{}, "bluefs: negative hint half-life");
}

void BlueFSPolicy::begin(sim::SimContext& ctx) {
  if (config_.ghost_hint_threshold <= Joules{}) {
    const auto& p = ctx.disk().params();
    config_.ghost_hint_threshold = p.spin_up_energy + p.spin_down_energy;
  }
}

void BlueFSPolicy::decay_hints(Seconds now) {
  if (config_.hint_half_life <= Seconds{} || hints_ <= Joules{}) return;
  const Seconds dt = now - last_hint_time_;
  if (dt > Seconds{}) {
    hints_ *= std::exp2(-dt / config_.hint_half_life);
  }
}

DeviceKind BlueFSPolicy::select(const sim::RequestContext& req,
                                sim::SimContext& ctx) {
  const Seconds now = ctx.now();
  // Per-request cost with the devices exactly as they are now — BlueFS
  // tracks only the present state and recent requests.
  const auto disk_est = ctx.disk().estimate(now, req.request);
  const auto net_est = ctx.wnic().estimate(now, req.request);

  if (disk_est.energy <= net_est.energy) {
    ++stats_.disk_selections;
    return DeviceKind::kDisk;
  }

  // The network is cheaper right now. If the disk is asleep, part of the
  // reason is the spin-up cost baked into its estimate: issue a ghost hint
  // worth the savings an already-spinning disk would have offered.
  if (!ctx.disk().is_spinning()) {
    const auto& dp = ctx.disk().params();
    const Seconds positioning = dp.avg_seek_time + dp.avg_rotation_time;
    const Joules disk_if_active =
        dp.active_power *
        (positioning + transfer_time(req.request.size, dp.bandwidth));
    const Joules hint = net_est.energy - disk_if_active;
    if (hint > Joules{}) {
      decay_hints(now);
      hints_ += hint;
      last_hint_time_ = now;
      stats_.hints_issued += hint;
      if (hints_ >= config_.ghost_hint_threshold) {
        ctx.disk().force_spin_up(now);
        hints_ = Joules{};
        ++stats_.ghost_spin_ups;
      }
    }
  }
  ++stats_.net_selections;
  return DeviceKind::kNetwork;
}

}  // namespace flexfetch::policies
