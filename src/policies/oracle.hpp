// Oracle policy: FlexFetch given a *perfect* profile — the burst structure
// of the very trace about to be replayed. Serves as the upper bound for
// the ablation study (how much of the possible saving does a one-run-old
// profile capture?).
#pragma once

#include "core/flexfetch.hpp"
#include "trace/trace.hpp"

namespace flexfetch::policies {

class OraclePolicy : public core::FlexFetchPolicy {
 public:
  /// `burst_threshold` <= 0 uses the disk access time, as FlexFetch does.
  explicit OraclePolicy(const trace::Trace& future,
                        double loss_rate = 0.25,
                        Seconds burst_threshold = Seconds{0.020});

  std::string name() const override { return "Oracle"; }
};

}  // namespace flexfetch::policies
