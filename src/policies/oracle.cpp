#include "policies/oracle.hpp"

namespace flexfetch::policies {

namespace {

core::FlexFetchConfig oracle_config(double loss_rate) {
  // A perfect profile needs no run-time correction; keep the cache filter
  // (it reflects genuine system state, not profile error).
  core::FlexFetchConfig c;
  c.loss_rate = loss_rate;
  c.adapt_splice = false;
  c.adapt_stage_audit = false;
  c.adapt_free_rider = true;
  c.adapt_cache_filter = true;
  return c;
}

}  // namespace

OraclePolicy::OraclePolicy(const trace::Trace& future, double loss_rate,
                           Seconds burst_threshold)
    : core::FlexFetchPolicy(oracle_config(loss_rate),
                            core::Profile::from_trace(future, burst_threshold)) {}

}  // namespace flexfetch::policies
