// Evaluation-stage segmentation (Section 2.2).
//
// To evaluate decisions in a timely manner, FlexFetch groups consecutive
// I/O bursts — including the think times between them — into evaluation
// stages whose profiled length just exceeds a threshold (40 s in the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "core/profile.hpp"

namespace flexfetch::core {

struct Stage {
  std::size_t first_burst = 0;
  std::size_t burst_count = 0;
  Seconds start = Seconds{0.0};   ///< Profiled start of the first burst.
  Seconds length = Seconds{0.0};  ///< Profiled span including inter-burst thinks.
  Bytes bytes = Bytes{0};

  std::size_t end_burst() const { return first_burst + burst_count; }
};

/// Splits a profile into evaluation stages of at least `min_length`
/// profiled seconds each ("whose length just exceeds a pre-determined
/// threshold"). The final stage may be shorter.
std::vector<Stage> segment_stages(const Profile& profile, Seconds min_length);

}  // namespace flexfetch::core
