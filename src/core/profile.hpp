// Program execution profiles (Section 2.1).
//
// A profile is the device-independent record of one program run: the
// sequence of I/O bursts and the think times between them. It is what
// FlexFetch records during an execution and consults in the next one.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/burst.hpp"

namespace flexfetch::core {

class Profile {
 public:
  Profile() = default;
  Profile(std::string program, std::vector<IOBurst> bursts)
      : program_(std::move(program)), bursts_(std::move(bursts)) {}

  /// Builds a profile by burst-extracting a syscall trace.
  static Profile from_trace(const trace::Trace& trace, Seconds burst_threshold);

  /// Merges several concurrently running programs' profiles into one
  /// aggregate profile, interleaving bursts by start time (Section 2.3.3:
  /// "FlexFetch merges these programs' profiles and forms evaluation stage
  /// on the aggregate profile").
  static Profile merge(const std::vector<Profile>& profiles, std::string name);

  const std::string& program() const { return program_; }
  void set_program(std::string name) { program_ = std::move(name); }

  bool empty() const { return bursts_.empty(); }
  std::size_t size() const { return bursts_.size(); }
  const IOBurst& operator[](std::size_t i) const { return bursts_[i]; }
  const std::vector<IOBurst>& bursts() const { return bursts_; }
  std::span<const IOBurst> span(std::size_t first, std::size_t count) const;

  Bytes total_bytes() const;
  /// Profiled wall span: from origin to the end of the last burst.
  Seconds span_seconds() const;

  /// Cumulative bytes of the first n bursts (prefix sums; index 0 -> 0).
  std::vector<Bytes> byte_prefix_sums() const;

  // Text serialization (versioned, line-oriented).
  void write(std::ostream& os) const;
  static Profile read(std::istream& is);

 private:
  std::string program_;
  std::vector<IOBurst> bursts_;
};

}  // namespace flexfetch::core
