#include "core/decision.hpp"

#include "common/error.hpp"

namespace flexfetch::core {

device::DeviceKind decide_source(const Estimate& disk, const Estimate& network,
                                 double loss_rate) {
  FF_REQUIRE(loss_rate >= 0.0, "loss rate must be non-negative");

  // Rule 1: disk dominates.
  if (disk.time < network.time && disk.energy < network.energy) {
    return device::DeviceKind::kDisk;
  }
  // Rule 2: network dominates.
  if (network.time < disk.time && network.energy < disk.energy) {
    return device::DeviceKind::kNetwork;
  }
  // Rule 3: network saves energy at a bounded, worthwhile performance loss.
  if (network.energy < disk.energy && disk.energy > Joules{} && disk.time > Seconds{}) {
    const double energy_saving = (disk.energy - network.energy) / disk.energy;
    const double time_loss = (network.time - disk.time) / disk.time;
    if (energy_saving >= time_loss && time_loss < loss_rate) {
      return device::DeviceKind::kNetwork;
    }
  }
  return device::DeviceKind::kDisk;
}

}  // namespace flexfetch::core
