#include "core/decision.hpp"

#include "common/error.hpp"

namespace flexfetch::core {

device::DeviceKind decide_source(const Estimate& disk, const Estimate& network,
                                 double loss_rate) {
  FF_REQUIRE(loss_rate >= 0.0, "loss rate must be non-negative");

  // Dominance is *weak*: no worse on both axes suffices (exact ties on
  // both fall to the disk, the default source). The historical strict-<
  // rules had gaps — a network estimate strictly faster at equal energy
  // (or strictly cheaper at equal time under loss_rate == 0) dominated
  // yet fell through to disk.
  //
  // Rule 1: disk is no worse on both axes.
  if (disk.time <= network.time && disk.energy <= network.energy) {
    return device::DeviceKind::kDisk;
  }
  // Rule 2: network is no worse on both axes (Rule 1 failed, so it is
  // strictly better on at least one).
  if (network.time <= disk.time && network.energy <= disk.energy) {
    return device::DeviceKind::kNetwork;
  }
  // Rule 3: network saves energy at a bounded, worthwhile performance
  // loss. Rules 1/2 leave only strict trade-offs here, and the configured
  // rate is the highest *tolerable* loss — inclusive at the boundary.
  if (network.energy < disk.energy && disk.energy > Joules{} && disk.time > Seconds{}) {
    const double energy_saving = (disk.energy - network.energy) / disk.energy;
    const double time_loss = (network.time - disk.time) / disk.time;
    if (energy_saving >= time_loss && time_loss <= loss_rate) {
      return device::DeviceKind::kNetwork;
    }
  }
  return device::DeviceKind::kDisk;
}

}  // namespace flexfetch::core
