// The FlexFetch data-source decision rule (Section 2.2).
#pragma once

#include "common/units.hpp"
#include "device/request.hpp"

namespace flexfetch::core {

/// Estimated cost of servicing an evaluation stage from one source.
struct Estimate {
  Seconds time = Seconds{0.0};
  Joules energy = Joules{0.0};
};

/// Applies the paper's three rules, given the estimates for both sources
/// and the user's maximum tolerable I/O performance loss rate (e.g. 0.25).
/// Dominance is weak (<= on both axes; an exact tie on both falls to the
/// disk, the default source) and the loss-rate bound is inclusive:
///
///  1. T_disk <= T_net  and E_disk <= E_net                     -> disk
///  2. T_net  <= T_disk and E_net  <= E_disk                    -> network
///  3. E_net < E_disk and (E_disk-E_net)/E_disk >= (T_net-T_disk)/T_disk
///     and (T_net-T_disk)/T_disk <= loss_rate                   -> network
///     otherwise                                                -> disk
device::DeviceKind decide_source(const Estimate& disk, const Estimate& network,
                                 double loss_rate);

}  // namespace flexfetch::core
