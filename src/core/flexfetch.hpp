// The FlexFetch policy (Section 2) — the paper's primary contribution.
//
// FlexFetch proactively selects the least costly data source per evaluation
// stage using the program's recorded profile, and adapts to run-time
// dynamics through four mechanisms, each individually toggleable (the
// FlexFetch-static variant of Section 3.3.4 disables all of them):
//
//  * splice re-evaluation (Section 2.3.1): as the current run progresses,
//    its partial profile replaces the matching prefix of the old profile
//    and the decision rule is re-run on the assembled profile;
//  * stage audit (Section 2.3.1): at each stage end, the energy actually
//    spent is compared against a shadow replay on the alternative device;
//    if the profile-driven choice lost, the winner is used next stage,
//    disregarding the profile until it is proven effective again;
//  * cache filtering (Section 2.3.2): profiled requests whose data is
//    resident in the buffer cache are dropped before estimation;
//  * free riding (Section 2.3.3): while other programs keep the disk
//    spinning (inter-arrival below the spin-down timeout), requests are
//    redirected to the almost-free disk.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/decision.hpp"
#include "core/estimator.hpp"
#include "core/profile.hpp"
#include "core/stage.hpp"
#include "energy/loss_curve.hpp"
#include "sim/context.hpp"
#include "sim/policy.hpp"

namespace flexfetch::core {

struct FlexFetchConfig {
  /// Maximum tolerable I/O performance loss rate (paper uses 25 %).
  /// The static fallback: consulted only when no loss_curve is set.
  double loss_rate = 0.25;
  /// Battery-adaptive loss rate (ROADMAP item 2): when set, every
  /// decision-rule evaluation queries this curve with the simulator's
  /// tracked BatteryState instead of reading the static knob — spending
  /// performance freely on wall power, aggressively near empty. Shared,
  /// stateless and const: copies of the config are cheap and decisions
  /// stay pure. `energy::make_loss_curve("constant@0.25")` reproduces the
  /// static policy bit-for-bit (gated in bench_battery).
  std::shared_ptr<const energy::LossRateCurve> loss_curve;
  /// Minimal profiled span of an evaluation stage (paper uses 40 s).
  Seconds stage_min_length = Seconds{40.0};
  /// I/O burst threshold; <= 0 derives it from the disk's average access
  /// time at begin() (the paper's choice).
  Seconds burst_threshold = Seconds{0.0};
  /// Data source used when no profile exists for the program.
  device::DeviceKind default_source = device::DeviceKind::kDisk;
  /// Relative energy margin the alternative device must win by before a
  /// stage audit counts as a loss (damps flip-flopping on near-ties).
  double audit_margin = 0.05;
  /// A loss this large overrides immediately (a clear regime change, e.g.
  /// the stale profile of Section 3.3.5); smaller losses must repeat for
  /// `audit_confirmations` consecutive stages first.
  double audit_decisive_margin = 0.30;
  std::uint32_t audit_confirmations = 2;
  /// Relative estimated-energy improvement required before a stage-entry
  /// or splice decision abandons the currently used source. Switching has
  /// real costs (a spin-up or a mode switch, plus the other device's
  /// rundown), so near-ties stay put.
  double switch_margin = 0.05;

  bool adapt_splice = true;
  bool adapt_stage_audit = true;
  bool adapt_cache_filter = true;
  bool adapt_free_rider = true;
  /// Graceful degradation under injected faults: when the chosen source is
  /// inside a fault window at dispatch time (WNIC outage, or a disk
  /// spin-up stall while the disk is down), re-run the splice decision rule
  /// so the policy may switch sources instead of stalling through it.
  bool adapt_fault_failover = true;

  /// CPU energy charged per elementary scheme operation (one request
  /// replayed by an on-line estimator / shadow device, or one syscall
  /// tracked). ~1 us on a ~2 W-active 2007 mobile CPU. This quantifies the
  /// "time, space, and energy overhead of applying the scheme" the paper's
  /// Section 5 defers; see FlexFetchPolicy::overhead_energy().
  Joules overhead_per_op = Joules{2e-6};

  /// FlexFetch-static: profile-driven decisions with every run-time
  /// adaptation disabled.
  static FlexFetchConfig static_variant() {
    FlexFetchConfig c;
    c.adapt_splice = false;
    c.adapt_stage_audit = false;
    c.adapt_cache_filter = false;
    c.adapt_free_rider = false;
    c.adapt_fault_failover = false;
    return c;
  }
};

/// One decision-rule evaluation, kept for diagnosis and tests.
struct DecisionRecord {
  Seconds time = Seconds{0.0};
  enum class Origin : std::uint8_t { kStageEntry, kSplice } origin =
      Origin::kStageEntry;
  std::size_t stage = 0;
  std::size_t first_burst = 0;
  std::size_t burst_count = 0;
  Estimate disk;
  Estimate network;
  /// The loss rate this evaluation actually used (curve-sampled or the
  /// static knob) — pins adaptive behaviour in tests and sweep deltas.
  double loss_rate = 0.0;
  device::DeviceKind decision = device::DeviceKind::kDisk;
};

/// Counters exposing how often each adaptation fired (tests/ablations).
struct FlexFetchStats {
  std::uint64_t stages_entered = 0;
  std::uint64_t splice_reevaluations = 0;
  std::uint64_t splice_switches = 0;
  std::uint64_t audit_overrides = 0;
  std::uint64_t free_rider_redirects = 0;
  std::uint64_t cache_filtered_requests = 0;
  std::uint64_t fault_reevaluations = 0;  ///< Fault-triggered decision reruns.
  std::uint64_t fault_switches = 0;       ///< ...that changed the source.

  // Scheme-overhead accounting (Section 5's deferred question).
  std::uint64_t estimator_requests_replayed = 0;
  std::uint64_t shadow_requests_replayed = 0;
  std::uint64_t syscalls_tracked = 0;

  std::uint64_t overhead_ops() const {
    return estimator_requests_replayed + shadow_requests_replayed +
           syscalls_tracked;
  }
};

class FlexFetchPolicy : public sim::Policy {
 public:
  /// Single-program form.
  FlexFetchPolicy(FlexFetchConfig config, Profile profile);

  /// Multi-program form: profiles of concurrently running programs are
  /// merged into one aggregate profile (Section 2.3.3).
  FlexFetchPolicy(FlexFetchConfig config, const std::vector<Profile>& profiles);

  // sim::Policy interface.
  void begin(sim::SimContext& ctx) override;
  device::DeviceKind select(const sim::RequestContext& req,
                            sim::SimContext& ctx) override;
  void on_syscall(const trace::SyscallRecord& r, sim::SimContext& ctx) override;
  void observe(const sim::RequestContext& req, device::DeviceKind used,
               const device::ServiceResult& result,
               sim::SimContext& ctx) override;
  void end(sim::SimContext& ctx) override;
  void export_metrics(telemetry::MetricsRegistry& metrics) const override;
  std::string name() const override;

  // Introspection.
  device::DeviceKind current_choice() const { return choice_; }
  std::size_t stage_index() const { return stage_idx_; }
  const std::vector<device::DeviceKind>& stage_choices() const {
    return stage_choices_;
  }
  const FlexFetchStats& stats() const { return stats_; }
  const FlexFetchConfig& config() const { return config_; }

  /// The profile recorded during this run (valid after end()); it replaces
  /// the old profile for the program's next execution (Section 2.3.1).
  const Profile& recorded_profile() const { return new_profile_; }

  /// Every decision-rule evaluation performed during the run.
  const std::vector<DecisionRecord>& decision_log() const {
    return decision_log_;
  }

  /// CPU energy the scheme itself spent (ops x overhead_per_op) — compare
  /// against the I/O energy it saved.
  Joules overhead_energy() const {
    return static_cast<double>(stats_.overhead_ops()) *
           config_.overhead_per_op;
  }

  /// The loss rate the next decision would use: the curve sampled at the
  /// current battery state, or the static knob when no curve is set.
  double current_loss_rate(sim::SimContext& ctx) const;

 private:
  /// current_loss_rate + bookkeeping (histogram fold, telemetry counter)
  /// — the sampling point every decision-rule evaluation goes through.
  double sample_loss_rate(sim::SimContext& ctx);

  void enter_stage(sim::SimContext& ctx);
  void finish_stage(sim::SimContext& ctx);
  void maybe_advance_stage(Seconds now, sim::SimContext& ctx);
  void maybe_splice_reevaluate(Seconds now, sim::SimContext& ctx);
  /// Pre-dispatch fault check: if the chosen source is currently faulted,
  /// re-run the decision rule (once per fault window) and maybe switch.
  void maybe_react_to_fault(sim::SimContext& ctx);

  /// Decision-rule evaluation over a burst span from the live device states.
  device::DeviceKind evaluate(std::span<const IOBurst> bursts, Seconds now,
                              sim::SimContext& ctx,
                              DecisionRecord::Origin origin,
                              std::size_t first_burst);

  std::optional<CacheFilter> make_cache_filter(sim::SimContext& ctx);
  bool free_rider_active(Seconds now, const sim::SimContext& ctx) const;

  FlexFetchConfig config_;
  Profile old_profile_;
  std::vector<Stage> stages_;
  std::vector<Bytes> prefix_bytes_;

  // Current-run observation.
  std::optional<BurstTracker> tracker_;
  Profile new_profile_;
  Bytes run_bytes_ = Bytes{0};

  // Stage machinery.
  std::size_t stage_idx_ = 0;
  Seconds stage_entry_time_ = Seconds{0.0};
  Bytes stage_bytes_done_ = Bytes{0};
  device::DeviceKind choice_ = device::DeviceKind::kDisk;
  device::DeviceKind profile_choice_ = device::DeviceKind::kDisk;
  bool trust_profile_ = true;
  device::DeviceKind forced_device_ = device::DeviceKind::kDisk;
  std::vector<device::DeviceKind> stage_choices_;

  // Splice re-evaluation.
  std::size_t splice_n_ = 1;

  // Stage audit shadow world. The shadow replays the stage's requests on
  // the alternative device with *closed-loop* timing: each request's think
  // gap (arrival minus previous completion) is preserved, so a faster
  // alternative legitimately compresses the stage and a slower one
  // stretches it — giving the audit a (time, energy) pair to judge with
  // the same rule as stage-entry decisions.
  std::optional<device::Disk> shadow_disk_;
  std::optional<device::Wnic> shadow_wnic_;
  Joules live_energy_at_stage_start_ = Joules{0.0};
  Seconds last_actual_completion_ = Seconds{0.0};
  Seconds last_shadow_completion_ = Seconds{0.0};
  std::uint32_t consecutive_audit_losses_ = 0;

  // Free rider.
  Seconds last_external_disk_activity_ = Seconds{-1e18};

  // Fault failover: start of the last fault window already reacted to,
  // so one window triggers at most one re-evaluation.
  Seconds last_fault_window_start_ = Seconds{-1.0};

  FlexFetchStats stats_;
  std::vector<DecisionRecord> decision_log_;
  /// Loss rates actually used by decisions (ff.loss_rate in metrics) —
  /// constant for the static knob, battery-shaped for adaptive curves.
  telemetry::Histogram loss_rate_hist_;
};

}  // namespace flexfetch::core
