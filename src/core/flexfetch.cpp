#include "core/flexfetch.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "faults/audit.hpp"
#include "faults/schedule.hpp"
#include "telemetry/emit.hpp"
#include "telemetry/metrics.hpp"

namespace flexfetch::core {

using device::DeviceKind;

namespace {

namespace tele = flexfetch::telemetry;

// Policy decisions and fault reactions are the cheapest, highest-signal
// events — admission level kKey so a near-silent capture still tells the
// decision story.
constexpr tele::EventDesc kDecisionStage{
    .name = "decision.stage",
    .category = tele::Category::kPolicy,
    .phase = tele::Phase::kInstant,
    .level = tele::Level::kKey,
    .n_args = 6,
    .str_mask = 0b100000,
    .track = tele::track::kPolicy,
    .keys = {"stage", "disk_t_s", "disk_e_j", "net_t_s", "net_e_j", "choice"}};

constexpr tele::EventDesc kDecisionSplice{
    .name = "decision.splice",
    .category = tele::Category::kPolicy,
    .phase = tele::Phase::kInstant,
    .level = tele::Level::kKey,
    .n_args = 6,
    .str_mask = 0b100000,
    .track = tele::track::kPolicy,
    .keys = {"stage", "disk_t_s", "disk_e_j", "net_t_s", "net_e_j", "choice"}};

constexpr tele::EventDesc kStageEnter{
    .name = "stage.enter",
    .category = tele::Category::kPolicy,
    .phase = tele::Phase::kInstant,
    .level = tele::Level::kKey,
    .n_args = 3,
    .str_mask = 0b010,
    .track = tele::track::kPolicy,
    .keys = {"stage", "choice", "trust_profile"}};

constexpr tele::EventDesc kAuditWin{
    .name = "audit.win",
    .category = tele::Category::kPolicy,
    .phase = tele::Phase::kInstant,
    .level = tele::Level::kKey,
    .n_args = 6,
    .str_mask = 0b100000,
    .track = tele::track::kPolicy,
    .keys = {"stage", "actual_t_s", "actual_e_j", "alt_t_s", "alt_e_j",
             "winner"}};

constexpr tele::EventDesc kAuditLoss{
    .name = "audit.loss",
    .category = tele::Category::kPolicy,
    .phase = tele::Phase::kInstant,
    .level = tele::Level::kKey,
    .n_args = 6,
    .str_mask = 0b100000,
    .track = tele::track::kPolicy,
    .keys = {"stage", "actual_t_s", "actual_e_j", "alt_t_s", "alt_e_j",
             "winner"}};

constexpr tele::EventDesc kProfileOverride{.name = "profile.override",
                                           .category = tele::Category::kPolicy,
                                           .phase = tele::Phase::kInstant,
                                           .level = tele::Level::kKey,
                                           .n_args = 2,
                                           .str_mask = 0b10,
                                           .track = tele::track::kPolicy,
                                           .keys = {"stage", "to"}};

constexpr tele::EventDesc kStageSpan{.name = "stage",
                                     .category = tele::Category::kPolicy,
                                     .phase = tele::Phase::kSpan,
                                     .level = tele::Level::kKey,
                                     .n_args = 2,
                                     .str_mask = 0b10,
                                     .track = tele::track::kPolicy,
                                     .keys = {"stage", "choice"}};

constexpr tele::EventDesc kSpliceSwitch{.name = "splice.switch",
                                        .category = tele::Category::kPolicy,
                                        .phase = tele::Phase::kInstant,
                                        .level = tele::Level::kKey,
                                        .n_args = 2,
                                        .str_mask = 0b10,
                                        .track = tele::track::kPolicy,
                                        .keys = {"stage", "to"}};

constexpr tele::EventDesc kFaultReevaluate{.name = "fault.reevaluate",
                                           .category = tele::Category::kFault,
                                           .phase = tele::Phase::kInstant,
                                           .level = tele::Level::kKey,
                                           .n_args = 2,
                                           .str_mask = 0b01,
                                           .track = tele::track::kFault,
                                           .keys = {"source", "window_start"}};

constexpr tele::EventDesc kFaultSwitch{.name = "fault.switch",
                                       .category = tele::Category::kFault,
                                       .phase = tele::Phase::kInstant,
                                       .level = tele::Level::kKey,
                                       .n_args = 1,
                                       .str_mask = 0b1,
                                       .track = tele::track::kFault,
                                       .keys = {"to"}};

constexpr tele::EventDesc kFreeRide{.name = "free_ride",
                                    .category = tele::Category::kPolicy,
                                    .phase = tele::Phase::kInstant,
                                    .level = tele::Level::kKey,
                                    .track = tele::track::kPolicy};

constexpr tele::EventDesc kLossRate{.name = "ff.loss_rate",
                                    .category = tele::Category::kBattery,
                                    .phase = tele::Phase::kCounter,
                                    .level = tele::Level::kVerbose,
                                    .track = tele::track::kBattery};

}  // namespace

FlexFetchPolicy::FlexFetchPolicy(FlexFetchConfig config, Profile profile)
    : config_(config), old_profile_(std::move(profile)) {
  FF_REQUIRE(config.loss_rate >= 0.0, "flexfetch: negative loss rate");
  FF_REQUIRE(config.stage_min_length > Seconds{}, "flexfetch: non-positive stage length");
}

FlexFetchPolicy::FlexFetchPolicy(FlexFetchConfig config,
                                 const std::vector<Profile>& profiles)
    : FlexFetchPolicy(config, Profile::merge(profiles, "<merged>")) {}

std::string FlexFetchPolicy::name() const {
  const bool is_static = !config_.adapt_splice && !config_.adapt_stage_audit &&
                         !config_.adapt_cache_filter && !config_.adapt_free_rider;
  std::string n = is_static ? "FlexFetch-static" : "FlexFetch";
  if (config_.loss_curve != nullptr) {
    n += "-adaptive(" + config_.loss_curve->name() + ")";
  }
  return n;
}

double FlexFetchPolicy::current_loss_rate(sim::SimContext& ctx) const {
  if (config_.loss_curve == nullptr) return config_.loss_rate;
  // No tracker (a context built outside a Simulator): a default
  // BatteryState — full charge, on battery — is the conservative read.
  const energy::BatteryState state = ctx.battery() != nullptr
                                         ? ctx.battery()->state()
                                         : energy::BatteryState{};
  return config_.loss_curve->loss_rate(state);
}

double FlexFetchPolicy::sample_loss_rate(sim::SimContext& ctx) {
  const double rate = current_loss_rate(ctx);
  loss_rate_hist_.record(rate);
  FF_EMIT_COUNTER(ctx.recorder(), kLossRate, ctx.now(), rate);
  return rate;
}

void FlexFetchPolicy::begin(sim::SimContext& ctx) {
  if (config_.burst_threshold <= Seconds{}) {
    // The paper sets the burst threshold to the disk's average access time.
    config_.burst_threshold = ctx.disk().params().access_time();
  }
  tracker_.emplace(config_.burst_threshold);
  stages_ = segment_stages(old_profile_, config_.stage_min_length);
  prefix_bytes_ = old_profile_.byte_prefix_sums();
  choice_ = config_.default_source;
  enter_stage(ctx);
}

std::optional<CacheFilter> FlexFetchPolicy::make_cache_filter(
    sim::SimContext& ctx) {
  if (!config_.adapt_cache_filter) return std::nullopt;
  // Section 2.3.2: profiled requests whose data is resident in the buffer
  // cache will not reach any device and are removed before estimation.
  return CacheFilter([this, &ctx](const BurstRequest& r) {
    const bool cached =
        ctx.vfs().range_cached_pages(r.inode, r.first_page(), r.end_page());
    if (cached) ++stats_.cache_filtered_requests;
    return cached;
  });
}

DeviceKind FlexFetchPolicy::evaluate(std::span<const IOBurst> bursts,
                                     Seconds now, sim::SimContext& ctx,
                                     DecisionRecord::Origin origin,
                                     std::size_t first_burst) {
  auto filter = make_cache_filter(ctx);
  const CacheFilter* f = filter ? &*filter : nullptr;
  for (const IOBurst& b : bursts) {
    stats_.estimator_requests_replayed += 2 * b.requests.size();
  }
  // Estimate-purity probe: the two counterfactual replays below must leave
  // the live devices and the recorder untouched.
  faults::SimAudit* audit = ctx.audit();
  std::optional<faults::PuritySnapshot> purity;
  if (audit != nullptr) {
    purity = audit->capture(ctx.disk(), ctx.wnic(), ctx.recorder());
  }
  const Estimate disk =
      SourceEstimator::estimate_disk(ctx.disk(), bursts, now, ctx.layout(), f);
  const Estimate net =
      SourceEstimator::estimate_network(ctx.wnic(), bursts, now, f);
  if (audit != nullptr) {
    audit->check_estimate_purity(*purity, ctx.disk(), ctx.wnic(),
                                 ctx.recorder());
  }
  const double loss_rate = sample_loss_rate(ctx);
  DeviceKind decision = decide_source(disk, net, loss_rate);
  // Hysteresis: abandoning the currently used source needs a clear
  // estimated win; switching itself costs a transition on one device and a
  // rundown on the other.
  if (decision != choice_) {
    const Joules current_cost =
        choice_ == DeviceKind::kDisk ? disk.energy : net.energy;
    const Joules new_cost =
        decision == DeviceKind::kDisk ? disk.energy : net.energy;
    if (new_cost > current_cost * (1.0 - config_.switch_margin)) {
      decision = choice_;
    }
  }
  decision_log_.push_back(DecisionRecord{.time = now,
                                         .origin = origin,
                                         .stage = stage_idx_,
                                         .first_burst = first_burst,
                                         .burst_count = bursts.size(),
                                         .disk = disk,
                                         .network = net,
                                         .loss_rate = loss_rate,
                                         .decision = decision});
  FF_EMIT_INSTANT(ctx.recorder(),
                  origin == DecisionRecord::Origin::kStageEntry
                      ? kDecisionStage
                      : kDecisionSplice,
                  now, static_cast<double>(stage_idx_), disk.time.value(),
                  disk.energy.value(), net.time.value(), net.energy.value(),
                  device::to_string(decision));
  return decision;
}

void FlexFetchPolicy::enter_stage(sim::SimContext& ctx) {
  const Seconds now = ctx.now();
  stage_entry_time_ = now;
  stage_bytes_done_ = Bytes{};
  ++stats_.stages_entered;

  if (stage_idx_ < stages_.size()) {
    const Stage& st = stages_[stage_idx_];
    profile_choice_ =
        evaluate(old_profile_.span(st.first_burst, st.burst_count), now, ctx,
                 DecisionRecord::Origin::kStageEntry, st.first_burst);
  } else if (!old_profile_.empty()) {
    // Profile exhausted: keep the last profile-driven choice.
    // (The audit keeps correcting it stage by stage.)
  } else {
    profile_choice_ = config_.default_source;
  }
  choice_ = trust_profile_ ? profile_choice_ : forced_device_;
  stage_choices_.push_back(choice_);
  FF_EMIT_INSTANT(ctx.recorder(), kStageEnter, now,
                  static_cast<double>(stage_idx_), device::to_string(choice_),
                  trust_profile_ ? 1.0 : 0.0);

  if (config_.adapt_stage_audit) {
    // Detached copies: shadow replays must never emit into the live
    // recorder (they share the fault schedule, like estimator replicas).
    shadow_disk_ = ctx.disk().detached_copy();
    shadow_wnic_ = ctx.wnic().detached_copy();
    shadow_disk_->reset_accounting();
    shadow_wnic_->reset_accounting();
    live_energy_at_stage_start_ =
        ctx.disk().meter().total() + ctx.wnic().meter().total();
    last_actual_completion_ = now;
    last_shadow_completion_ = now;
  }
}

void FlexFetchPolicy::finish_stage(sim::SimContext& ctx) {
  const Seconds now = ctx.now();
  if (config_.adapt_stage_audit && shadow_disk_ && shadow_wnic_ &&
      last_actual_completion_ > stage_entry_time_) {
    // The alternative world stops burning when it finishes the stage's
    // work; its compressed (or stretched) closed-loop timeline is its T.
    shadow_disk_->advance_to(last_shadow_completion_);
    shadow_wnic_->advance_to(last_shadow_completion_);
    const Estimate actual{
        .time = last_actual_completion_ - stage_entry_time_,
        .energy = ctx.disk().meter().total() + ctx.wnic().meter().total() -
                  live_energy_at_stage_start_,
    };
    const Estimate alternative{
        .time = last_shadow_completion_ - stage_entry_time_,
        .energy =
            shadow_disk_->meter().total() + shadow_wnic_->meter().total(),
    };
    // Judge with the same rule used for predictions, on measured values.
    const Estimate& disk_est =
        choice_ == DeviceKind::kDisk ? actual : alternative;
    const Estimate& net_est =
        choice_ == DeviceKind::kDisk ? alternative : actual;
    // The audit judges with the rate that applies *now* — adaptive curves
    // legitimately tighten or relax the verdict as the battery drains.
    DeviceKind winner = decide_source(disk_est, net_est, sample_loss_rate(ctx));
    const DeviceKind measured_winner = winner;
    // Hysteresis: only declare the alternative the winner when it is
    // materially better, so near-ties do not cause flip-flopping (each flip
    // risks a spin-up or a mode switch). A decisive loss (a clear regime
    // change) overrides at once; marginal losses must repeat.
    if (winner != choice_) {
      const double saving = actual.energy > Joules{}
                                ? 1.0 - alternative.energy / actual.energy
                                : 0.0;
      if (saving < config_.audit_margin) {
        winner = choice_;  // Near-tie: not a loss at all.
        consecutive_audit_losses_ = 0;
      } else if (saving < config_.audit_decisive_margin &&
                 ++consecutive_audit_losses_ < config_.audit_confirmations) {
        winner = choice_;  // Marginal: wait for confirmation.
      } else {
        consecutive_audit_losses_ = 0;
      }
    } else {
      consecutive_audit_losses_ = 0;
    }
    // audit.win/loss reports the measured verdict (before hysteresis);
    // profile.override below marks the verdicts that actually take effect.
    FF_EMIT_INSTANT(ctx.recorder(),
                    measured_winner == choice_ ? kAuditWin : kAuditLoss, now,
                    static_cast<double>(stage_idx_), actual.time.value(),
                    actual.energy.value(), alternative.time.value(),
                    alternative.energy.value(), device::to_string(winner));
    if (winner != choice_) {
      ++stats_.audit_overrides;
      FF_EMIT_INSTANT(ctx.recorder(), kProfileOverride, now,
                      static_cast<double>(stage_idx_),
                      device::to_string(winner));
    }
    if (std::getenv("FF_DEBUG_AUDIT") != nullptr) {
      std::fprintf(stderr,
                   "[audit] t=%.1f stage=%zu choice=%s profile=%s "
                   "actual=(%.1fs %.1fJ) alt=(%.1fs %.1fJ) winner=%s\n",
                   now.value(), stage_idx_, device::to_string(choice_),
                   device::to_string(profile_choice_), actual.time.value(),
                   actual.energy.value(), alternative.time.value(),
                   alternative.energy.value(), device::to_string(winner));
    }
    // The profile regains control only when its own choice for the stage
    // proved the more energy-efficient one (Section 2.3.1: "Only when the
    // profile for the previous stage is proven more effective is the
    // profile used for the next stage").
    trust_profile_ = (winner == profile_choice_);
    forced_device_ = winner;
  }
  FF_EMIT_SPAN(ctx.recorder(), kStageSpan, stage_entry_time_, now,
               static_cast<double>(stage_idx_), device::to_string(choice_));
  ++stage_idx_;
}

void FlexFetchPolicy::maybe_advance_stage(Seconds now, sim::SimContext& ctx) {
  while (true) {
    Bytes bytes_target{std::numeric_limits<std::uint64_t>::max()};
    Seconds length_target = config_.stage_min_length;
    if (stage_idx_ < stages_.size()) {
      const Stage& st = stages_[stage_idx_];
      // Stage progress is tracked primarily by requested data volume — the
      // same yardstick Section 2.3.1 uses to align the current run with the
      // profile. Wall-clock is only a generous fallback (2x the profiled
      // stage span) so a run that requests less data than profiled cannot
      // stall; advancing by time alone would let stage boundaries drift
      // ahead of the workload's real phases.
      bytes_target = st.bytes;
      length_target = 2.0 * std::max(st.length, config_.stage_min_length);
    }
    const bool bytes_done = stage_bytes_done_ >= bytes_target;
    const bool time_done = now - stage_entry_time_ >= length_target;
    if (!bytes_done && !time_done) return;
    finish_stage(ctx);
    enter_stage(ctx);
  }
}

void FlexFetchPolicy::maybe_splice_reevaluate(Seconds now,
                                              sim::SimContext& ctx) {
  if (!config_.adapt_splice || stages_.empty()) return;
  // Section 2.3.1: whenever the data requested in the current run just
  // exceeds the amount in the first N bursts of the old profile, the new
  // partial profile replaces those N bursts and the rule is re-run on the
  // assembled profile. Re-running the rule over the *future* portion of
  // the assembled profile (the old bursts from N to the end of the current
  // stage) is the operative part of that re-evaluation: the replaced
  // prefix is already in the past.
  bool reevaluated = false;
  while (splice_n_ < prefix_bytes_.size() && run_bytes_ > prefix_bytes_[splice_n_]) {
    reevaluated = true;
    ++splice_n_;
  }
  if (!reevaluated) return;
  const std::size_t n = splice_n_ - 1;
  const std::size_t stage_end = stage_idx_ < stages_.size()
                                    ? stages_[stage_idx_].end_burst()
                                    : old_profile_.size();
  if (n >= stage_end) return;  // Stage boundary logic will handle it.
  // Skip re-evaluation over a stub horizon: estimates over a fraction of a
  // stage truncate the devices' post-horizon behaviour and produce noisy
  // flips right before stage boundaries.
  const Seconds horizon =
      old_profile_[stage_end - 1].end() - old_profile_[n].start;
  if (horizon < config_.stage_min_length) return;
  ++stats_.splice_reevaluations;
  const DeviceKind decision =
      evaluate(old_profile_.span(n, stage_end - n), now, ctx,
               DecisionRecord::Origin::kSplice, n);
  if (trust_profile_ && decision != choice_) {
    choice_ = decision;
    profile_choice_ = decision;
    ++stats_.splice_switches;
    FF_EMIT_INSTANT(ctx.recorder(), kSpliceSwitch, now,
                    static_cast<double>(stage_idx_),
                    device::to_string(decision));
  }
}

void FlexFetchPolicy::on_syscall(const trace::SyscallRecord& r,
                                 sim::SimContext& ctx) {
  tracker_->on_record(r);
  ++stats_.syscalls_tracked;
  if (r.is_data_transfer()) {
    run_bytes_ += r.size;
    stage_bytes_done_ += r.size;
  }
  maybe_advance_stage(ctx.now(), ctx);
  maybe_splice_reevaluate(ctx.now(), ctx);
}

bool FlexFetchPolicy::free_rider_active(Seconds now,
                                        const sim::SimContext& ctx) const {
  if (!config_.adapt_free_rider) return false;
  // Section 2.3.3: while non-profiled disk activity recurs faster than the
  // spin-down timeout, the disk will stay spinning anyhow — ride along.
  return ctx.disk().is_spinning() &&
         now - last_external_disk_activity_ <
             ctx.disk().params().spin_down_timeout;
}

void FlexFetchPolicy::maybe_react_to_fault(sim::SimContext& ctx) {
  if (!config_.adapt_fault_failover) return;
  const faults::FaultSchedule* fs = ctx.faults();
  if (fs == nullptr) return;
  const Seconds now = ctx.now();
  // Is the source we are about to dispatch to inside a fault window? For
  // the disk, a spin-up stall only matters when a spin-up is actually
  // pending (a spinning disk services through a stall window unaffected).
  Seconds window_start = Seconds{-1.0};
  if (choice_ == DeviceKind::kNetwork) {
    if (const faults::OutageWindow* w = fs->wnic.outage_at(now)) {
      window_start = w->start;
    }
  } else if (!ctx.disk().is_spinning()) {
    if (const faults::SpinUpStall* s = fs->disk.stall_at(now)) {
      window_start = s->start;
    }
  }
  // One reaction per window: the re-evaluation already priced the whole
  // window into its decision, so repeating it every request inside the
  // same window could only flip-flop.
  if (window_start < Seconds{} || window_start == last_fault_window_start_) return;
  last_fault_window_start_ = window_start;
  ++stats_.fault_reevaluations;
  FF_EMIT_INSTANT(ctx.recorder(), kFaultReevaluate, now,
                  device::to_string(choice_), window_start.value());
  // Re-run the splice decision over the remainder of the stage. The
  // estimators replay on copies that share the live fault schedule, so the
  // faulted source is priced with the stall it would actually suffer — the
  // normal decision rule then decides whether waiting out the fault beats
  // switching (a short outage may well be cheaper than a spin-up).
  const std::size_t n = splice_n_ - 1;
  const std::size_t stage_end = stage_idx_ < stages_.size()
                                    ? stages_[stage_idx_].end_burst()
                                    : old_profile_.size();
  DeviceKind decision;
  if (!old_profile_.empty() && n < stage_end) {
    decision = evaluate(old_profile_.span(n, stage_end - n), now, ctx,
                        DecisionRecord::Origin::kSplice, n);
  } else {
    // No profiled horizon to price against: a disconnected network source
    // falls back to the disk; a stalled disk has no cheaper alternative
    // worth guessing at (the network may be faulted too), so stay put.
    decision = choice_ == DeviceKind::kNetwork ? DeviceKind::kDisk : choice_;
  }
  if (decision != choice_) {
    choice_ = decision;
    if (trust_profile_) profile_choice_ = decision;
    ++stats_.fault_switches;
    FF_EMIT_INSTANT(ctx.recorder(), kFaultSwitch, now,
                    device::to_string(decision));
  }
}

DeviceKind FlexFetchPolicy::select(const sim::RequestContext& /*req*/,
                                   sim::SimContext& ctx) {
  maybe_react_to_fault(ctx);
  if (choice_ == DeviceKind::kNetwork && free_rider_active(ctx.now(), ctx)) {
    ++stats_.free_rider_redirects;
    FF_EMIT_INSTANT(ctx.recorder(), kFreeRide, ctx.now());
    return DeviceKind::kDisk;
  }
  return choice_;
}

void FlexFetchPolicy::observe(const sim::RequestContext& req,
                              DeviceKind used,
                              const device::ServiceResult& result,
                              sim::SimContext& /*ctx*/) {
  // Track foreign disk activity for the free-rider mechanism. Write-back
  // traffic is excluded: it follows this policy's own device choice, so
  // counting it would let FlexFetch bootstrap its own "forced spin-up"
  // (flush lands on disk -> free-ride -> disk stays up -> repeat). Only
  // other programs' requests — disk-pinned data or unprofiled readers —
  // genuinely force the disk to stay spinning (Section 2.3.3).
  const bool external =
      !req.is_writeback && (!req.profiled || req.disk_pinned);
  if (used == DeviceKind::kDisk && external) {
    last_external_disk_activity_ = result.completion;
  }

  // Shadow replay for the stage audit: the alternative world services our
  // choosable requests on the other device; pinned requests stay on the
  // disk in both worlds. Timing is closed-loop: the think gap before this
  // request (relative to the previous completion) is preserved, so the
  // shadow timeline compresses when the alternative is faster.
  if (config_.adapt_stage_audit && shadow_disk_ && shadow_wnic_) {
    const Seconds think_gap =
        std::max(Seconds{}, result.arrival - last_actual_completion_);
    const Seconds alt_arrival = last_shadow_completion_ + think_gap;
    const DeviceKind alt = req.disk_pinned
                               ? DeviceKind::kDisk
                               : device::other(choice_);
    const device::ServiceResult alt_result =
        alt == DeviceKind::kDisk
            ? shadow_disk_->service(alt_arrival, req.request)
            : shadow_wnic_->service(alt_arrival, req.request);
    last_shadow_completion_ = alt_result.completion;
    last_actual_completion_ = result.completion;
    ++stats_.shadow_requests_replayed;
  }
}

void FlexFetchPolicy::export_metrics(telemetry::MetricsRegistry& m) const {
  const auto num = [](std::uint64_t v) { return static_cast<double>(v); };
  m.add("ff.stages_entered", num(stats_.stages_entered));
  m.add("ff.splice_reevaluations", num(stats_.splice_reevaluations));
  m.add("ff.splice_switches", num(stats_.splice_switches));
  m.add("ff.audit_overrides", num(stats_.audit_overrides));
  m.add("ff.free_rider_redirects", num(stats_.free_rider_redirects));
  m.add("ff.cache_filtered_requests", num(stats_.cache_filtered_requests));
  m.add("ff.fault_reevaluations", num(stats_.fault_reevaluations));
  m.add("ff.fault_switches", num(stats_.fault_switches));
  m.add("ff.estimator_requests_replayed",
        num(stats_.estimator_requests_replayed));
  m.add("ff.shadow_requests_replayed", num(stats_.shadow_requests_replayed));
  m.add("ff.syscalls_tracked", num(stats_.syscalls_tracked));
  m.set("ff.overhead_energy_j", overhead_energy().value());
  if (!loss_rate_hist_.empty()) {
    m.histogram("ff.loss_rate").merge(loss_rate_hist_);
  }
}

void FlexFetchPolicy::end(sim::SimContext& ctx) {
  maybe_advance_stage(ctx.now(), ctx);
  new_profile_ = Profile(old_profile_.program().empty() ? "<recorded>"
                                                        : old_profile_.program(),
                         tracker_->take_bursts());
}

}  // namespace flexfetch::core
