#include "core/burst.hpp"

#include "common/error.hpp"

namespace flexfetch::core {

Bytes IOBurst::total_bytes() const {
  Bytes sum = Bytes{0};
  for (const auto& r : requests) sum += r.size;
  return sum;
}

BurstTracker::BurstTracker(Seconds burst_threshold, Bytes max_merge)
    : threshold_(burst_threshold), max_merge_(max_merge) {
  FF_REQUIRE(burst_threshold > Seconds{}, "burst threshold must be positive");
  FF_REQUIRE(max_merge >= kPageSize, "merge cap below one page");
}

void BurstTracker::on_record(const trace::SyscallRecord& r) {
  if (!r.is_data_transfer()) return;
  total_bytes_ += r.size;

  const Seconds gap = has_open_ || !bursts_.empty()
                          ? std::max(Seconds{}, r.timestamp - last_end_)
                          : r.timestamp;
  if (!has_open_) {
    open_ = IOBurst{};
    open_.think_before = gap;
    open_.start = r.timestamp;
    has_open_ = true;
  } else if (gap > threshold_) {
    // Think time exceeds the burst threshold: close the burst and start a
    // new one (Section 2.1: such gaps cannot be masked by prefetching).
    bursts_.push_back(std::move(open_));
    open_ = IOBurst{};
    open_.think_before = gap;
    open_.start = r.timestamp;
  }
  append_request(r);
  last_end_ = r.timestamp + r.duration;
  open_.duration = last_end_ - open_.start;
}

void BurstTracker::append_request(const trace::SyscallRecord& r) {
  const bool is_write = r.op == trace::OpType::kWrite;
  if (!open_.requests.empty()) {
    BurstRequest& last = open_.requests.back();
    // Merge sequential same-file, same-direction continuations up to the
    // prefetch window — the expected consequence of I/O scheduling and
    // prefetching (Section 2.1).
    if (last.inode == r.inode && last.is_write == is_write &&
        last.offset + last.size == r.offset && last.size + r.size <= max_merge_) {
      last.size += r.size;
      return;
    }
  }
  open_.requests.push_back(BurstRequest{
      .inode = r.inode, .offset = r.offset, .size = r.size, .is_write = is_write});
}

void BurstTracker::finish() {
  if (has_open_) {
    bursts_.push_back(std::move(open_));
    open_ = IOBurst{};
    has_open_ = false;
  }
}

std::vector<IOBurst> BurstTracker::take_bursts() {
  finish();
  return std::move(bursts_);
}

std::vector<IOBurst> extract_bursts(const trace::Trace& trace,
                                    Seconds burst_threshold, Bytes max_merge) {
  BurstTracker tracker(burst_threshold, max_merge);
  for (const auto& r : trace) tracker.on_record(r);
  return tracker.take_bursts();
}

}  // namespace flexfetch::core
