// Per-source execution time / energy estimation (Section 2.2).
//
// FlexFetch maintains an on-line simulator for each device: to estimate
// T_disk/E_disk and T_network/E_network for an evaluation stage, it replays
// the stage's profiled bursts (including inter-burst think times, during
// which the device may time out into its low-power state) on a *copy* of
// the live device model, so estimation and actual simulation share one
// code path and the estimate reflects the device's current power state.
//
// When the WNIC is attached to a shared medium (src/medium/), its copies
// keep the read-only contention view — airtime share and server admission
// delay at the replayed instants — but drop the live commit port, so a
// network estimate prices the congestion that currently exists without
// ever occupying a server slot or committing airtime (see MediumHandle).
#pragma once

#include <functional>
#include <span>

#include "core/decision.hpp"
#include "core/profile.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "os/file_layout.hpp"

namespace flexfetch::core {

/// Returns true if a profiled request's data is resident in the buffer
/// cache and would not reach a device (Section 2.3.2 filtering).
using CacheFilter = std::function<bool(const BurstRequest&)>;

class SourceEstimator {
 public:
  /// Estimates servicing `bursts` from the disk, starting at `start_time`
  /// with the disk in the state captured by `live_disk`.
  /// `filter` (optional) drops cache-resident requests.
  static Estimate estimate_disk(const device::Disk& live_disk,
                                std::span<const IOBurst> bursts,
                                Seconds start_time, os::FileLayout& layout,
                                const CacheFilter* filter = nullptr);

  /// Estimates servicing `bursts` from the remote server over the WNIC.
  static Estimate estimate_network(const device::Wnic& live_wnic,
                                   std::span<const IOBurst> bursts,
                                   Seconds start_time,
                                   const CacheFilter* filter = nullptr);
};

}  // namespace flexfetch::core
