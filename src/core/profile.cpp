#include "core/profile.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace flexfetch::core {

Profile Profile::from_trace(const trace::Trace& trace, Seconds burst_threshold) {
  return Profile(trace.name(), extract_bursts(trace, burst_threshold));
}

Profile Profile::merge(const std::vector<Profile>& profiles, std::string name) {
  std::vector<IOBurst> all;
  for (const auto& p : profiles) {
    all.insert(all.end(), p.bursts().begin(), p.bursts().end());
  }
  std::stable_sort(all.begin(), all.end(), [](const IOBurst& a, const IOBurst& b) {
    return a.start < b.start;
  });
  // Recompute think gaps against the interleaved order.
  Seconds prev_end = Seconds{0.0};
  for (auto& b : all) {
    b.think_before = std::max(Seconds{}, b.start - prev_end);
    prev_end = std::max(prev_end, b.end());
  }
  return Profile(std::move(name), std::move(all));
}

std::span<const IOBurst> Profile::span(std::size_t first, std::size_t count) const {
  FF_ASSERT(first <= bursts_.size());
  count = std::min(count, bursts_.size() - first);
  return std::span<const IOBurst>(bursts_.data() + first, count);
}

Bytes Profile::total_bytes() const {
  Bytes sum = Bytes{0};
  for (const auto& b : bursts_) sum += b.total_bytes();
  return sum;
}

Seconds Profile::span_seconds() const {
  return bursts_.empty() ? Seconds{} : bursts_.back().end();
}

std::vector<Bytes> Profile::byte_prefix_sums() const {
  std::vector<Bytes> sums(bursts_.size() + 1, Bytes{});
  for (std::size_t i = 0; i < bursts_.size(); ++i) {
    sums[i + 1] = sums[i] + bursts_[i].total_bytes();
  }
  return sums;
}

void Profile::write(std::ostream& os) const {
  os << "# flexfetch-profile v1 name=" << program_ << '\n';
  for (const auto& b : bursts_) {
    os << strprintf("burst,%.9f,%.9f,%.9f,%zu\n", b.think_before.value(),
                    b.start.value(), b.duration.value(),
                    b.requests.size());
    for (const auto& r : b.requests) {
      os << strprintf("req,%llu,%llu,%llu,%d\n",
                      static_cast<unsigned long long>(r.inode),
                      static_cast<unsigned long long>(r.offset.value()),
                      static_cast<unsigned long long>(r.size.value()),
                      r.is_write ? 1 : 0);
    }
  }
}

Profile Profile::read(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      line.rfind("# flexfetch-profile v1", 0) != 0) {
    throw TraceError("bad profile header");
  }
  Profile p;
  const auto name_pos = line.find("name=");
  if (name_pos != std::string::npos) p.program_ = line.substr(name_pos + 5);

  IOBurst* open = nullptr;
  std::size_t expected = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    std::getline(ls, tag, ',');
    if (tag == "burst") {
      if (open != nullptr && open->requests.size() != expected) {
        throw TraceError("profile: truncated burst");
      }
      IOBurst b;
      char c = 0;
      double think = 0.0, start = 0.0, duration = 0.0;
      ls >> think >> c >> start >> c >> duration >> c >> expected;
      b.think_before = Seconds{think};
      b.start = Seconds{start};
      b.duration = Seconds{duration};
      p.bursts_.push_back(b);
      open = &p.bursts_.back();
    } else if (tag == "req") {
      if (open == nullptr) throw TraceError("profile: request before burst");
      BurstRequest r;
      char c = 0;
      int w = 0;
      std::uint64_t offset = 0, size = 0;
      ls >> r.inode >> c >> offset >> c >> size >> c >> w;
      r.offset = Bytes{offset};
      r.size = Bytes{size};
      r.is_write = w != 0;
      open->requests.push_back(r);
    } else {
      throw TraceError("profile: unknown tag '" + tag + "'");
    }
  }
  if (open != nullptr && open->requests.size() != expected) {
    throw TraceError("profile: truncated final burst");
  }
  return p;
}

}  // namespace flexfetch::core
