#include "core/stage.hpp"

#include "common/error.hpp"

namespace flexfetch::core {

std::vector<Stage> segment_stages(const Profile& profile, Seconds min_length) {
  FF_REQUIRE(min_length > Seconds{}, "stage length must be positive");
  std::vector<Stage> stages;
  if (profile.empty()) return stages;

  Stage open;
  open.first_burst = 0;
  open.start = profile[0].start;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const IOBurst& b = profile[i];
    if (open.burst_count == 0) {
      open.start = b.start;
    }
    ++open.burst_count;
    open.bytes += b.total_bytes();
    open.length = b.end() - open.start;
    // The stage closes as soon as its span *just exceeds* the threshold.
    if (open.length >= min_length) {
      stages.push_back(open);
      open = Stage{};
      open.first_burst = i + 1;
    }
  }
  if (open.burst_count > 0) stages.push_back(open);
  return stages;
}

}  // namespace flexfetch::core
