#include "core/profile_store.hpp"

#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace flexfetch::core {

namespace fs = std::filesystem;

ProfileStore::ProfileStore(std::string directory)
    : directory_(std::move(directory)) {
  fs::create_directories(directory_);
}

void ProfileStore::put(Profile profile) {
  FF_REQUIRE(!profile.program().empty(), "profile store: unnamed profile");
  profiles_[profile.program()] = std::move(profile);
}

std::optional<Profile> ProfileStore::get(const std::string& program) const {
  auto it = profiles_.find(program);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

bool ProfileStore::contains(const std::string& program) const {
  return profiles_.contains(program);
}

std::string ProfileStore::path_for(const std::string& program) const {
  std::string safe;
  for (const char c : program) {
    safe += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
             c == '_')
                ? c
                : '_';
  }
  return directory_ + "/" + safe + ".profile";
}

void ProfileStore::flush() const {
  if (directory_.empty()) return;
  for (const auto& [name, profile] : profiles_) {
    std::ofstream os(path_for(name));
    if (!os) throw Error("profile store: cannot write " + path_for(name));
    profile.write(os);
  }
}

void ProfileStore::load() {
  if (directory_.empty()) return;
  for (const auto& entry : fs::directory_iterator(directory_)) {
    if (entry.path().extension() != ".profile") continue;
    std::ifstream is(entry.path());
    if (!is) throw Error("profile store: cannot read " + entry.path().string());
    put(Profile::read(is));
  }
}

}  // namespace flexfetch::core
