// I/O burst extraction (Section 2.1).
//
// An I/O burst is a maximal run of read/write syscalls whose inter-call
// think times stay below the burst threshold (the disk's average access
// time). Within a burst, sequential same-file requests are merged into
// single requests of up to 128 KiB — the paper's model of kernel readahead
// and request merging — and are assumed to move at device peak bandwidth.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace flexfetch::core {

/// One (possibly merged) request inside a burst.
struct BurstRequest {
  trace::Inode inode = 0;
  Bytes offset = Bytes{0};
  Bytes size = Bytes{0};
  bool is_write = false;

  /// Page span [first_page(), end_page()) covered by the request — the unit
  /// FlexFetch's cache filter (Section 2.3.2) checks for residency.
  std::uint64_t first_page() const { return offset / kPageSize; }
  std::uint64_t end_page() const {
    return size == Bytes{} ? first_page()
                           : (offset + size - Bytes{1}) / kPageSize + 1;
  }
};

struct IOBurst {
  /// Think time between the previous burst's end and this burst's start
  /// (for the first burst: time from profile origin).
  Seconds think_before = Seconds{0.0};
  Seconds start = Seconds{0.0};     ///< Profiled timestamp of the first call.
  Seconds duration = Seconds{0.0};  ///< Profiled span from first call to last byte.
  std::vector<BurstRequest> requests;

  Bytes total_bytes() const;
  Seconds end() const { return start + duration; }
};

/// Incremental burst extraction; feed records in timestamp order.
class BurstTracker {
 public:
  /// `burst_threshold`: think times above this end the burst (Section 2.1
  /// sets it to the disk's average access time).
  /// `max_merge`: cap for merged sequential requests (Linux's 128 KiB
  /// prefetch window).
  explicit BurstTracker(Seconds burst_threshold,
                        Bytes max_merge = kMaxPrefetchWindow);

  /// Processes one syscall record (non-transfers are ignored).
  void on_record(const trace::SyscallRecord& r);

  /// Closes the currently open burst (end of run / end of observation).
  void finish();

  /// Bursts completed so far (finish() to include the open one).
  const std::vector<IOBurst>& bursts() const { return bursts_; }
  std::vector<IOBurst> take_bursts();

  /// Total data-transfer bytes observed so far (open burst included).
  Bytes total_bytes() const { return total_bytes_; }

  Seconds burst_threshold() const { return threshold_; }

 private:
  void append_request(const trace::SyscallRecord& r);

  Seconds threshold_;
  Bytes max_merge_;
  std::vector<IOBurst> bursts_;
  IOBurst open_;
  bool has_open_ = false;
  Seconds last_end_ = Seconds{0.0};  ///< End (ts+duration) of the previous record.
  Bytes total_bytes_ = Bytes{0};
};

/// One-shot burst extraction from a whole trace.
std::vector<IOBurst> extract_bursts(const trace::Trace& trace,
                                    Seconds burst_threshold,
                                    Bytes max_merge = kMaxPrefetchWindow);

}  // namespace flexfetch::core
