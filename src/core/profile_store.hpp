// Persistent storage of per-program profiles.
//
// At the end of a run the freshly recorded profile replaces the old one
// for future use (Section 2.3.1); the store is the component that keeps
// them between runs — in memory, optionally backed by a directory.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/profile.hpp"

namespace flexfetch::core {

class ProfileStore {
 public:
  ProfileStore() = default;

  /// A store persisted under `directory` (one file per program).
  explicit ProfileStore(std::string directory);

  /// Records/replaces the profile for its program.
  void put(Profile profile);

  /// Looks up a profile by program name.
  std::optional<Profile> get(const std::string& program) const;

  bool contains(const std::string& program) const;
  std::size_t size() const { return profiles_.size(); }

  /// Writes all profiles to the backing directory (no-op if in-memory).
  void flush() const;

  /// Loads every profile file found in the backing directory.
  void load();

 private:
  std::string path_for(const std::string& program) const;

  std::string directory_;
  std::map<std::string, Profile> profiles_;
};

}  // namespace flexfetch::core
