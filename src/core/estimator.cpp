#include "core/estimator.hpp"

#include <algorithm>

namespace flexfetch::core {
namespace {

/// Replays bursts on a detached copy of the live device; Device is Disk or
/// Wnic (both expose detached_copy(), service(t, req) and meter()). The
/// copy is explicitly detached from telemetry so a counterfactual replay
/// can never emit phantom events into the live recorder; it shares the
/// live device's fault schedule, so the estimate prices upcoming outages
/// and stalls.
template <typename Device, typename MakeRequest>
Estimate replay(const Device& live, std::span<const IOBurst> bursts,
                Seconds start_time, const CacheFilter* filter,
                MakeRequest&& make_request) {
  Device dev = live.detached_copy();
  const Joules energy_before = dev.meter().total();
  Seconds t = std::max(start_time, dev.now());
  for (const IOBurst& burst : bursts) {
    // Inter-burst think time: the device idles (and may drop to its
    // low-power state) while the program computes — so a sparse stage
    // naturally charges the disk its idle/rundown cycles.
    t += burst.think_before;
    for (const BurstRequest& r : burst.requests) {
      if (filter != nullptr && (*filter)(r)) continue;
      const auto res = dev.service(t, make_request(r));
      t = res.completion;
    }
  }
  // The horizon ends with the last burst: for a continuous workload the
  // next stage follows immediately, so charging a hypothetical rundown
  // here would systematically overprice the disk. Short splice horizons,
  // where the end-of-horizon truncation would bias the comparison, are
  // gated by the caller (FlexFetchPolicy) instead.
  dev.advance_to(t);
  return Estimate{.time = t - start_time,
                  .energy = dev.meter().total() - energy_before};
}

}  // namespace

Estimate SourceEstimator::estimate_disk(const device::Disk& live_disk,
                                        std::span<const IOBurst> bursts,
                                        Seconds start_time,
                                        os::FileLayout& layout,
                                        const CacheFilter* filter) {
  return replay(live_disk, bursts, start_time, filter,
                [&layout](const BurstRequest& r) {
                  layout.ensure(r.inode, r.offset + r.size);
                  return device::DeviceRequest{
                      .lba = layout.lba(r.inode, r.offset),
                      .size = r.size,
                      .is_write = r.is_write,
                  };
                });
}

Estimate SourceEstimator::estimate_network(const device::Wnic& live_wnic,
                                           std::span<const IOBurst> bursts,
                                           Seconds start_time,
                                           const CacheFilter* filter) {
  return replay(live_wnic, bursts, start_time, filter,
                [](const BurstRequest& r) {
                  return device::DeviceRequest{
                      .lba = Bytes{}, .size = r.size, .is_write = r.is_write};
                });
}

}  // namespace flexfetch::core
