// Timeline simulator of an 802.11 wireless NIC with CAM/PSM power management.
//
// Models the Cisco Aironet 350 behaviour described in Sections 1.1 and 3.1:
// the card idles in the continuously-aware mode (CAM), drops to the
// power-saving mode (PSM) after `psm_timeout` of inactivity, and wakes back
// to CAM to transfer data — except that a single-packet request can be
// delivered in PSM at the next beacon. Mode-switch costs (Table 2) are
// charged as energy lumps when the switch starts.
//
// Like Disk, Wnic has value semantics so the FlexFetch estimator can replay
// hypothetical requests on a copy of the live device.
#pragma once

#include <cstdint>

#include "device/energy_meter.hpp"
#include "device/request.hpp"
#include "device/wnic_params.hpp"
#include "faults/schedule.hpp"
#include "medium/link.hpp"
#include "telemetry/recorder.hpp"

namespace flexfetch::device {

enum class WnicState : std::uint8_t {
  kCam,             ///< Awake, radio continuously on.
  kSwitchingToPsm,  ///< In transition CAM -> PSM.
  kPsm,             ///< Power-saving, radio duty-cycled to beacons.
  kSwitchingToCam,  ///< In transition PSM -> CAM.
};

const char* to_string(WnicState s);

struct WnicCounters {
  std::uint64_t requests = 0;
  std::uint64_t psm_transfers = 0;  ///< Serviced without leaving PSM.
  std::uint64_t wakes = 0;          ///< PSM -> CAM switches.
  std::uint64_t sleeps = 0;         ///< CAM -> PSM switches.
  Bytes bytes_sent = Bytes{0};
  Bytes bytes_received = Bytes{0};
  std::uint64_t outage_stalls = 0;       ///< Requests stalled by an outage.
  std::uint64_t degraded_transfers = 0;  ///< Transfers at a degraded rate.
  Seconds outage_wait = Seconds{0.0};             ///< Total time waiting out outages.
  std::uint64_t contended_transfers = 0;  ///< Ran below full airtime share.
  std::uint64_t server_queue_waits = 0;   ///< Transfers that queued for a slot.
  Seconds server_queue_wait = Seconds{0.0};  ///< Total slot-queueing time.
};

class Wnic {
 public:
  explicit Wnic(WnicParams params = WnicParams::cisco_aironet350());

  const WnicParams& params() const { return params_; }

  /// Advances the internal clock, integrating idle energy and performing
  /// the timeout-driven CAM->PSM switch. Idempotent for t <= now().
  void advance_to(Seconds t);

  /// Services a request arriving at `t` (clamped to now() if earlier).
  /// A read is a receive (the data flows from the server); a write is a send.
  ServiceResult service(Seconds t, const DeviceRequest& req);

  /// Estimates servicing `req` at `t` without mutating this card.
  ServiceResult estimate(Seconds t, const DeviceRequest& req) const;

  /// A copy safe to mutate in counterfactual replays: identical timeline
  /// state, detached from the live telemetry recorder (the copy
  /// constructor already detaches — see RecorderHandle). The fault
  /// schedule pointer IS shared: estimates must price the remainder of an
  /// ongoing outage.
  Wnic detached_copy() const { return *this; }

  /// Delay until a request arriving at `t` could start transferring:
  /// power-state readiness plus, when attached to a shared medium, the
  /// server admission delay quoted at the ready instant. Injected link
  /// outages still gate transfers separately and are surfaced via
  /// ServiceResult::fault_delay instead.
  Seconds time_to_ready(Seconds t) const;

  /// Attaches a fault schedule (owned by the caller, must outlive the
  /// card and every copy). Transfers cannot start inside an outage window
  /// and run at a degraded rate inside a degradation window. nullptr
  /// detaches.
  void set_fault_schedule(const faults::WnicFaultSchedule* schedule) {
    faults_ = schedule;
  }

  /// Attaches this card to its port on a shared medium (owned by the
  /// caller, must outlive the card and every copy). Bulk transfers then
  /// run at the contended airtime share, wait for server admission, and
  /// commit their occupied interval. Copies keep the read-only view (the
  /// estimator prices contention) but never commit — see MediumHandle.
  void attach_medium(medium::ClientLink* link) { medium_.attach(link); }

  WnicState state() const { return state_; }
  Seconds now() const { return now_; }
  Seconds busy_until() const { return busy_until_; }

  const EnergyMeter& meter() const { return meter_; }
  const WnicCounters& counters() const { return counters_; }

  void reset_accounting();

  /// Attaches this card to a telemetry recorder: power-state spans land on
  /// the wnic.power track, transfer spans on wnic.io. Copies (estimator
  /// replicas, audit shadows) are always detached.
  void attach_telemetry(telemetry::Recorder* rec);

  /// Closes the open power-state span at now() — call once at end of run,
  /// after the final advance_to().
  void flush_telemetry();

 private:
  void begin_sleep();
  void begin_wake();
  /// Emits the span of the power state ending at `until` (no-op when
  /// detached) and restarts span tracking there.
  void note_state_end(WnicState ended, Seconds until);
  /// Brings the card to CAM, waiting out/paying for transitions.
  void make_cam();
  /// Waits out any outage containing now_ (power-state timers keep
  /// running); returns the stall length, 0 when not in an outage.
  Seconds wait_out_outage();
  /// Link rate at `t` with any degradation window applied.
  BytesPerSecond effective_bandwidth(Seconds t);

  WnicParams params_;
  WnicState state_ = WnicState::kCam;
  Seconds now_ = Seconds{0.0};
  Seconds idle_since_ = Seconds{0.0};
  Seconds transition_end_ = Seconds{0.0};
  Seconds busy_until_ = Seconds{0.0};
  EnergyMeter meter_;
  WnicCounters counters_;
  telemetry::RecorderHandle telem_;
  Seconds state_since_ = Seconds{0.0};  ///< Start of the current power-state span.
  /// Shared with copies (see detached_copy); null = no injected faults.
  const faults::WnicFaultSchedule* faults_ = nullptr;
  /// Copies keep the view but lose the live link (see MediumHandle).
  medium::MediumHandle medium_;
};

}  // namespace flexfetch::device
