#include "device/disk.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/emit.hpp"

namespace flexfetch::device {

namespace {

namespace tele = flexfetch::telemetry;

// One static descriptor per instrumentation site: the emit path stores
// only the pointer; names/keys/levels are never touched per event.
constexpr tele::EventDesc kPowerSpan{
    .name = "disk.power",  // Overridden per emission with the state name.
    .category = tele::Category::kDisk,
    .phase = tele::Phase::kSpan,
    .level = tele::Level::kDetail,
    .track = tele::track::kDiskPower};

constexpr tele::EventDesc kSpinUpStall{
    .name = "fault.disk.spin_up_stall",
    .category = tele::Category::kFault,
    .phase = tele::Phase::kInstant,
    .level = tele::Level::kKey,
    .n_args = 2,
    .track = tele::track::kFault,
    .keys = {"extra_s", "extra_j"}};

constexpr tele::EventDesc kRead{.name = "disk.read",
                                .category = tele::Category::kDisk,
                                .phase = tele::Phase::kSpan,
                                .level = tele::Level::kDetail,
                                .n_args = 3,
                                .track = tele::track::kDiskIo,
                                .keys = {"lba", "bytes", "energy_j"}};

constexpr tele::EventDesc kWrite{.name = "disk.write",
                                 .category = tele::Category::kDisk,
                                 .phase = tele::Phase::kSpan,
                                 .level = tele::Level::kDetail,
                                 .n_args = 3,
                                 .track = tele::track::kDiskIo,
                                 .keys = {"lba", "bytes", "energy_j"}};

constexpr tele::EventDesc kForceSpinUp{.name = "disk.force_spin_up",
                                       .category = tele::Category::kDisk,
                                       .phase = tele::Phase::kInstant,
                                       .level = tele::Level::kDetail,
                                       .track = tele::track::kDiskPower};

}  // namespace

const char* to_string(DiskState s) {
  switch (s) {
    case DiskState::kIdle: return "idle";
    case DiskState::kSpinningDown: return "spinning-down";
    case DiskState::kStandby: return "standby";
    case DiskState::kSpinningUp: return "spinning-up";
  }
  return "?";
}

Disk::Disk(DiskParams params) : params_(params) { params_.validate(); }

void Disk::attach_telemetry(telemetry::Recorder* rec) {
  telem_.attach(rec);
  state_since_ = now_;
}

void Disk::note_state_end(DiskState ended, Seconds until) {
  FF_EMIT_SPAN_NAMED(telem_.get(), kPowerSpan, to_string(ended), state_since_,
                     until);
  state_since_ = until;
}

void Disk::flush_telemetry() {
  if (!telem_) return;
  FF_EMIT_SPAN_NAMED(telem_.get(), kPowerSpan, to_string(state_), state_since_,
                     now_);
  state_since_ = now_;
}

void Disk::begin_spin_down() {
  FF_ASSERT(state_ == DiskState::kIdle);
  note_state_end(DiskState::kIdle, now_);
  meter_.add(EnergyCategory::kSpinDown, params_.spin_down_energy);
  ++counters_.spin_downs;
  state_ = DiskState::kSpinningDown;
  transition_end_ = now_ + params_.spin_down_time;
}

void Disk::begin_spin_up() {
  FF_ASSERT(state_ == DiskState::kStandby);
  note_state_end(DiskState::kStandby, now_);
  meter_.add(EnergyCategory::kSpinUp, params_.spin_up_energy);
  ++counters_.spin_ups;
  state_ = DiskState::kSpinningUp;
  transition_end_ = now_ + params_.spin_up_time;
  if (faults_ != nullptr) {
    if (const faults::SpinUpStall* stall = faults_->stall_at(now_)) {
      // Head-load retries: the spin-up stretches and burns extra energy.
      transition_end_ += stall->extra_time;
      meter_.add(EnergyCategory::kSpinUp, stall->extra_energy);
      ++counters_.spin_up_stalls;
      counters_.stall_time += stall->extra_time;
      pending_fault_delay_ += stall->extra_time;
      FF_EMIT_INSTANT(telem_.get(), kSpinUpStall, now_,
                      stall->extra_time.value(), stall->extra_energy.value());
    }
  }
}

void Disk::advance_to(Seconds t) {
  while (now_ < t) {
    switch (state_) {
      case DiskState::kIdle: {
        const Seconds deadline = idle_since_ + params_.spin_down_timeout;
        if (t < deadline) {
          meter_.add(EnergyCategory::kIdle, params_.idle_power * (t - now_));
          now_ = t;
        } else {
          meter_.add(EnergyCategory::kIdle,
                     params_.idle_power * (deadline - now_));
          now_ = deadline;
          begin_spin_down();
        }
        break;
      }
      case DiskState::kSpinningDown: {
        // Transition energy was charged as a lump at begin_spin_down().
        const Seconds step = std::min(t, transition_end_);
        now_ = step;
        if (now_ >= transition_end_) {
          note_state_end(DiskState::kSpinningDown, now_);
          state_ = DiskState::kStandby;
        }
        break;
      }
      case DiskState::kStandby: {
        meter_.add(EnergyCategory::kStandby, params_.standby_power * (t - now_));
        now_ = t;
        break;
      }
      case DiskState::kSpinningUp: {
        const Seconds step = std::min(t, transition_end_);
        now_ = step;
        if (now_ >= transition_end_) {
          note_state_end(DiskState::kSpinningUp, now_);
          state_ = DiskState::kIdle;
          idle_since_ = now_;
        }
        break;
      }
    }
  }
}

void Disk::make_ready() {
  if (state_ == DiskState::kSpinningDown) {
    // A request that arrives mid-spin-down must wait out the spin-down;
    // real disks cannot abort the unload sequence.
    advance_to(transition_end_);
  }
  if (state_ == DiskState::kStandby) {
    begin_spin_up();
  }
  if (state_ == DiskState::kSpinningUp) {
    advance_to(transition_end_);
  }
  FF_ASSERT(state_ == DiskState::kIdle);
}

ServiceResult Disk::service(Seconds t, const DeviceRequest& req) {
  FF_REQUIRE(req.size > Bytes{}, "disk request with zero size");
  const Seconds arrival = std::max(t, now_);
  advance_to(arrival);
  const Joules energy_before = meter_.total();
  pending_fault_delay_ = Seconds{};

  make_ready();
  const Seconds start = now_;

  const bool sequential =
      next_sequential_lba_.has_value() && *next_sequential_lba_ == req.lba;
  if (sequential) {
    ++counters_.sequential_hits;
  } else {
    Seconds positioning;
    if (next_sequential_lba_.has_value()) {
      const Bytes head = *next_sequential_lba_;
      const Bytes distance = head > req.lba ? head - req.lba : req.lba - head;
      positioning =
          params_.seek_time(distance == Bytes{} ? Bytes{1} : distance) +
                    params_.avg_rotation_time;
    } else {
      // First-ever request: the head position is unknown, so charge the
      // average stroke — not the distance from LBA 0, which would price
      // far files a near-full stroke on an arbitrary convention.
      positioning = params_.avg_seek_time + params_.avg_rotation_time;
    }
    meter_.add(EnergyCategory::kActiveTransfer,
               params_.active_power * positioning);
    counters_.seek_time += positioning;
    now_ += positioning;
  }

  const Seconds xfer = transfer_time(req.size, params_.bandwidth);
  meter_.add(EnergyCategory::kActiveTransfer, params_.active_power * xfer);
  now_ += xfer;

  ++counters_.requests;
  if (req.is_write) {
    counters_.bytes_written += req.size;
  } else {
    counters_.bytes_read += req.size;
  }

  state_ = DiskState::kIdle;
  idle_since_ = now_;
  busy_until_ = now_;
  next_sequential_lba_ = req.lba + req.size;

  const Joules energy = meter_.total() - energy_before;
  if (telem_) {
    // Pre-aggregated metrics fold unconditionally while attached — they
    // are the telemetry product in the metrics-only default mode.
    telem_->hist(telemetry::HistId::kDiskService)
        .record((now_ - arrival).value());
    telem_->hist(telemetry::HistId::kDiskBytes).record(req.size.as_double());
  }
  FF_EMIT_SPAN(telem_.get(), req.is_write ? kWrite : kRead, arrival, now_,
               req.lba.as_double(), req.size.as_double(), energy.value());

  return ServiceResult{
      .arrival = arrival,
      .start = start,
      .completion = now_,
      .energy = energy,
      .fault_delay = pending_fault_delay_,
  };
}

ServiceResult Disk::estimate(Seconds t, const DeviceRequest& req) const {
  Disk copy = detached_copy();
  return copy.service(t, req);
}

void Disk::force_spin_up(Seconds t) {
  advance_to(std::max(t, now_));
  if (state_ == DiskState::kStandby) {
    FF_EMIT_INSTANT(telem_.get(), kForceSpinUp, now_);
    begin_spin_up();
  } else if (state_ == DiskState::kSpinningDown) {
    advance_to(transition_end_);
    FF_EMIT_INSTANT(telem_.get(), kForceSpinUp, now_);
    begin_spin_up();
  }
  // kIdle / kSpinningUp: already (heading) up; nothing to do.
}

Seconds Disk::time_to_ready(Seconds t) const {
  const Seconds at = std::max(t, now_);
  // Spin-up duration for a spin-up beginning at `begin`, stall included —
  // keeps this closed form consistent with what service()/make_ready()
  // would actually do under an injected fault schedule.
  const auto spin_up_from = [this](Seconds begin) {
    Seconds d = params_.spin_up_time;
    if (faults_ != nullptr) {
      if (const faults::SpinUpStall* stall = faults_->stall_at(begin)) {
        d += stall->extra_time;
      }
    }
    return d;
  };
  switch (state_) {
    case DiskState::kIdle: {
      const Seconds deadline = idle_since_ + params_.spin_down_timeout;
      if (at < deadline) return Seconds{};
      // Would have spun down by `at`: wait out (remaining) spin-down + up.
      const Seconds spin_down_end = deadline + params_.spin_down_time;
      const Seconds wait =
          spin_down_end > at ? spin_down_end - at : Seconds{};
      return wait + spin_up_from(at + wait);
    }
    case DiskState::kSpinningDown: {
      const Seconds wait =
          transition_end_ > at ? transition_end_ - at : Seconds{};
      return wait + spin_up_from(at + wait);
    }
    case DiskState::kStandby:
      return spin_up_from(at);
    case DiskState::kSpinningUp:
      return transition_end_ > at ? transition_end_ - at : Seconds{};
  }
  return Seconds{};
}

void Disk::reset_accounting() {
  meter_.reset();
  counters_ = DiskCounters{};
}

void Disk::set_spin_down_timeout(Seconds timeout) {
  FF_REQUIRE(timeout > Seconds{}, "disk: non-positive spin-down timeout");
  params_.spin_down_timeout = timeout;
}

}  // namespace flexfetch::device
