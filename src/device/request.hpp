// Device-level request and service-result types.
//
// A DeviceRequest is what reaches a storage device after the OS layer
// (buffer cache, readahead, scheduler) has transformed application syscalls.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace flexfetch::device {

/// Which of the two replicated data sources services a request.
enum class DeviceKind : std::uint8_t {
  kDisk,
  kNetwork,
};

const char* to_string(DeviceKind kind);
DeviceKind other(DeviceKind kind);

struct DeviceRequest {
  /// Linear byte address on the disk (from the file-layout mapper).
  /// Ignored by the network device.
  Bytes lba = Bytes{0};
  Bytes size = Bytes{0};
  bool is_write = false;
};

/// Outcome of servicing one request on a device.
struct ServiceResult {
  Seconds arrival = Seconds{0.0};     ///< When the request reached the device.
  Seconds start = Seconds{0.0};       ///< When the device began the transfer
                             ///< (after spin-up / wake / positioning).
  Seconds completion = Seconds{0.0};  ///< When the last byte was delivered.
  Joules energy = Joules{0.0};       ///< Energy attributable to this request,
                             ///< including transition costs it triggered.
  Seconds fault_delay = Seconds{0.0}; ///< Portion of the wait caused by an injected
                             ///< fault (outage stall, spin-up retry).

  Seconds service_time() const { return completion - arrival; }
};

}  // namespace flexfetch::device
