#include "device/wnic.hpp"
#include <cstdio>

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/emit.hpp"

namespace flexfetch::device {

namespace {

namespace tele = flexfetch::telemetry;

constexpr tele::EventDesc kPowerSpan{
    .name = "wnic.power",  // Overridden per emission with the state name.
    .category = tele::Category::kWnic,
    .phase = tele::Phase::kSpan,
    .level = tele::Level::kDetail,
    .track = tele::track::kWnicPower};

constexpr tele::EventDesc kOutage{.name = "fault.wnic.outage",
                                  .category = tele::Category::kFault,
                                  .phase = tele::Phase::kSpan,
                                  .level = tele::Level::kKey,
                                  .n_args = 1,
                                  .track = tele::track::kFault,
                                  .keys = {"wait_s"}};

constexpr tele::EventDesc kDegraded{.name = "fault.wnic.degraded",
                                    .category = tele::Category::kFault,
                                    .phase = tele::Phase::kInstant,
                                    .level = tele::Level::kKey,
                                    .n_args = 1,
                                    .track = tele::track::kFault,
                                    .keys = {"factor"}};

constexpr tele::EventDesc kShare{.name = "medium.share",
                                 .category = tele::Category::kMedium,
                                 .phase = tele::Phase::kInstant,
                                 .level = tele::Level::kKey,
                                 .n_args = 1,
                                 .track = tele::track::kMedium,
                                 .keys = {"share"}};

constexpr tele::EventDesc kServerWait{.name = "server.queue_wait",
                                      .category = tele::Category::kServer,
                                      .phase = tele::Phase::kSpan,
                                      .level = tele::Level::kKey,
                                      .n_args = 1,
                                      .track = tele::track::kServer,
                                      .keys = {"wait_s"}};

constexpr tele::EventDesc kSend{.name = "wnic.send",
                                .category = tele::Category::kWnic,
                                .phase = tele::Phase::kSpan,
                                .level = tele::Level::kDetail,
                                .n_args = 3,
                                .track = tele::track::kWnicIo,
                                .keys = {"bytes", "energy_j", "psm"}};

constexpr tele::EventDesc kRecv{.name = "wnic.recv",
                                .category = tele::Category::kWnic,
                                .phase = tele::Phase::kSpan,
                                .level = tele::Level::kDetail,
                                .n_args = 3,
                                .track = tele::track::kWnicIo,
                                .keys = {"bytes", "energy_j", "psm"}};

}  // namespace

const char* to_string(WnicState s) {
  switch (s) {
    case WnicState::kCam: return "cam";
    case WnicState::kSwitchingToPsm: return "cam->psm";
    case WnicState::kPsm: return "psm";
    case WnicState::kSwitchingToCam: return "psm->cam";
  }
  return "?";
}

Wnic::Wnic(WnicParams params) : params_(params) { params_.validate(); }

void Wnic::attach_telemetry(telemetry::Recorder* rec) {
  telem_.attach(rec);
  state_since_ = now_;
}

void Wnic::note_state_end(WnicState ended, Seconds until) {
  FF_EMIT_SPAN_NAMED(telem_.get(), kPowerSpan, to_string(ended), state_since_,
                     until);
  state_since_ = until;
}

void Wnic::flush_telemetry() {
  if (!telem_) return;
  FF_EMIT_SPAN_NAMED(telem_.get(), kPowerSpan, to_string(state_), state_since_,
                     now_);
  state_since_ = now_;
}

void Wnic::begin_sleep() {
  FF_ASSERT(state_ == WnicState::kCam);
  note_state_end(WnicState::kCam, now_);
  meter_.add(EnergyCategory::kModeSwitch, params_.cam_to_psm_energy);
  ++counters_.sleeps;
  state_ = WnicState::kSwitchingToPsm;
  transition_end_ = now_ + params_.cam_to_psm_delay;
}

void Wnic::begin_wake() {
  FF_ASSERT(state_ == WnicState::kPsm);
  note_state_end(WnicState::kPsm, now_);
  meter_.add(EnergyCategory::kModeSwitch, params_.psm_to_cam_energy);
  ++counters_.wakes;
  state_ = WnicState::kSwitchingToCam;
  transition_end_ = now_ + params_.psm_to_cam_delay;
}

void Wnic::advance_to(Seconds t) {
  while (now_ < t) {
    switch (state_) {
      case WnicState::kCam: {
        const Seconds deadline = idle_since_ + params_.psm_timeout;
        if (t < deadline) {
          meter_.add(EnergyCategory::kCamIdle, params_.cam_idle_power * (t - now_));
          now_ = t;
        } else {
          meter_.add(EnergyCategory::kCamIdle,
                     params_.cam_idle_power * (deadline - now_));
          now_ = deadline;
          begin_sleep();
        }
        break;
      }
      case WnicState::kSwitchingToPsm: {
        const Seconds step = std::min(t, transition_end_);
        now_ = step;
        if (now_ >= transition_end_) {
          note_state_end(WnicState::kSwitchingToPsm, now_);
          state_ = WnicState::kPsm;
        }
        break;
      }
      case WnicState::kPsm: {
        meter_.add(EnergyCategory::kPsmIdle, params_.psm_idle_power * (t - now_));
        now_ = t;
        break;
      }
      case WnicState::kSwitchingToCam: {
        const Seconds step = std::min(t, transition_end_);
        now_ = step;
        if (now_ >= transition_end_) {
          note_state_end(WnicState::kSwitchingToCam, now_);
          state_ = WnicState::kCam;
          idle_since_ = now_;
        }
        break;
      }
    }
  }
}

void Wnic::make_cam() {
  if (state_ == WnicState::kSwitchingToPsm) {
    advance_to(transition_end_);  // Cannot abort an in-flight switch.
  }
  if (state_ == WnicState::kPsm) {
    begin_wake();
  }
  if (state_ == WnicState::kSwitchingToCam) {
    advance_to(transition_end_);
  }
  FF_ASSERT(state_ == WnicState::kCam);
}

Seconds Wnic::wait_out_outage() {
  if (faults_ == nullptr) return Seconds{};
  Seconds stalled = Seconds{0.0};
  // Loop: waiting out one window can land exactly on (never inside)
  // another, since validated windows are disjoint and sorted.
  while (const faults::OutageWindow* w = faults_->outage_at(now_)) {
    const Seconds resume = w->end;
    const Seconds wait = resume - now_;
    ++counters_.outage_stalls;
    counters_.outage_wait += wait;
    stalled += wait;
    FF_EMIT_SPAN(telem_.get(), kOutage, now_, resume, wait.value());
    // The radio keeps burning its power-state budget while disassociated
    // (it may even drop to PSM mid-outage via the normal timeout).
    advance_to(resume);
  }
  return stalled;
}

BytesPerSecond Wnic::effective_bandwidth(Seconds t) {
  BytesPerSecond bw = params_.bandwidth_at(t);
  if (faults_ != nullptr) {
    const double factor = faults_->degradation_at(t);
    if (factor != 1.0) {
      bw *= factor;
      ++counters_.degraded_transfers;
      FF_EMIT_INSTANT(telem_.get(), kDegraded, t, factor);
    }
  }
  if (medium_.view() != nullptr) {
    // Airtime fair share composes multiplicatively with the client's own
    // fault degradation. Guarded on != 1.0 so a lone client on a perfect
    // link is bit-identical to no medium at all (counters and histograms
    // included) — the N=1 degeneracy contract.
    //
    // The live card runs at the causal DCF share of the instant the
    // transfer starts; a detached replica (estimator counterfactual:
    // live() is null) prices the *expected* share instead — the decayed
    // recent congestion — because the instantaneous picture at a replayed
    // future instant is usually an empty channel even on a busy medium.
    const double share = medium_.live() != nullptr
                             ? medium_.view()->airtime_share(t)
                             : medium_.view()->expected_share(t);
    if (share != 1.0) {
      bw *= share;
      ++counters_.contended_transfers;
      if (telem_) {
        telem_->hist(telemetry::HistId::kMediumShare).record(share);
      }
      FF_EMIT_INSTANT(telem_.get(), kShare, t, share);
    }
  }
  return bw;
}

ServiceResult Wnic::service(Seconds t, const DeviceRequest& req) {
  FF_REQUIRE(req.size > Bytes{}, "wnic request with zero size");
  const Seconds arrival = std::max(t, now_);
  advance_to(arrival);
  const Seconds fault_delay = wait_out_outage();
  const Joules energy_before = meter_.total();

  ++counters_.requests;
  if (req.is_write) {
    counters_.bytes_sent += req.size;
  } else {
    counters_.bytes_received += req.size;
  }

  // Single-packet requests are delivered within PSM at the next beacon
  // ("switches back to CAM if more than one packet is ready"). Beacon
  // deliveries bypass the remote server's bulk-service queue — the AP has
  // already buffered the packet — though the airtime share still applies
  // through effective_bandwidth.
  const bool psm_deliverable = req.size <= params_.psm_packet_threshold;
  if (state_ == WnicState::kPsm && psm_deliverable) {
    ++counters_.psm_transfers;
    const Seconds start = now_;
    const Seconds lat = params_.latency + params_.psm_beacon_wait;
    meter_.add(EnergyCategory::kPsmIdle, params_.psm_idle_power * lat);
    now_ += lat;
    const Seconds xfer = transfer_time(req.size, effective_bandwidth(now_));
    const Watts p = req.is_write ? params_.psm_send_power : params_.psm_recv_power;
    meter_.add(req.is_write ? EnergyCategory::kSend : EnergyCategory::kRecv,
               p * xfer);
    now_ += xfer;
    busy_until_ = now_;
    const Joules energy = meter_.total() - energy_before;
    if (telem_) {
      telem_->hist(telemetry::HistId::kWnicService)
          .record((now_ - arrival).value());
      telem_->hist(telemetry::HistId::kWnicBytes).record(req.size.as_double());
    }
    FF_EMIT_SPAN(telem_.get(), req.is_write ? kSend : kRecv, arrival, now_,
                 req.size.as_double(), energy.value(), 1.0);
    return ServiceResult{.arrival = arrival,
                         .start = start,
                         .completion = now_,
                         .energy = energy,
                         .fault_delay = fault_delay};
  }

  make_cam();

  // Bulk transfers occupy one of the remote server's finite service slots
  // (medium/server.hpp): when every slot this client may use is busy, the
  // card idles awake in CAM until the admission policy grants one.
  const Seconds queued_at = now_;
  if (medium_.view() != nullptr) {
    const Seconds qdelay = medium_.view()->admission_delay(queued_at);
    if (qdelay > Seconds{}) {
      ++counters_.server_queue_waits;
      counters_.server_queue_wait += qdelay;
      meter_.add(EnergyCategory::kCamIdle, params_.cam_idle_power * qdelay);
      if (telem_) {
        telem_->hist(telemetry::HistId::kServerQueueDelay)
            .record(qdelay.value());
      }
      FF_EMIT_SPAN(telem_.get(), kServerWait, queued_at, queued_at + qdelay,
                   qdelay.value());
      now_ += qdelay;
    }
    if (telem_) {
      const std::size_t depth = medium_.view()->queue_depth(queued_at);
      if (depth > 0) {
        telem_->hist(telemetry::HistId::kServerQueueDepth)
            .record(static_cast<double>(depth));
      }
    }
  }
  const Seconds start = now_;

  // The transfer is a pipeline of RPCs against the remote server; each
  // round trip pays the request latency with the radio active (the card
  // keeps exchanging frames with the access point while the server
  // responds), then streams its payload.
  const std::uint64_t rpcs =
      (req.size + params_.rpc_bytes - Bytes{1}) / params_.rpc_bytes;
  const Seconds lat = params_.latency * static_cast<double>(rpcs);
  const Watts p = req.is_write ? params_.cam_send_power : params_.cam_recv_power;
  // Roaming: the transfer runs at the link rate in effect when it starts
  // (rate changes mid-transfer are quantized to request boundaries).
  const Seconds xfer = transfer_time(req.size, effective_bandwidth(now_));
  meter_.add(req.is_write ? EnergyCategory::kSend : EnergyCategory::kRecv,
             p * (lat + xfer));
  now_ += lat + xfer;

  state_ = WnicState::kCam;
  idle_since_ = now_;
  busy_until_ = now_;

  // Only the live card registers the occupied interval + server slot;
  // estimator replicas hold a view-only handle (live() == nullptr), so
  // hypothetical transfers are priced but never become visible to others.
  if (medium_.live() != nullptr) {
    medium_.live()->commit_transfer(queued_at, start, now_, req.size,
                                    req.is_write);
  }

  const Joules energy = meter_.total() - energy_before;
  if (telem_) {
    telem_->hist(telemetry::HistId::kWnicService)
        .record((now_ - arrival).value());
    telem_->hist(telemetry::HistId::kWnicBytes).record(req.size.as_double());
  }
  FF_EMIT_SPAN(telem_.get(), req.is_write ? kSend : kRecv, arrival, now_,
               req.size.as_double(), energy.value(), 0.0);

  return ServiceResult{.arrival = arrival,
                       .start = start,
                       .completion = now_,
                       .energy = energy,
                       .fault_delay = fault_delay};
}

ServiceResult Wnic::estimate(Seconds t, const DeviceRequest& req) const {
  Wnic copy = detached_copy();
  return copy.service(t, req);
}

Seconds Wnic::time_to_ready(Seconds t) const {
  const Seconds at = std::max(t, now_);
  Seconds base = Seconds{};
  switch (state_) {
    case WnicState::kCam: {
      const Seconds deadline = idle_since_ + params_.psm_timeout;
      if (at < deadline) break;
      const Seconds switch_end = deadline + params_.cam_to_psm_delay;
      const Seconds wait = switch_end > at ? switch_end - at : Seconds{};
      base = wait + params_.psm_to_cam_delay;
      break;
    }
    case WnicState::kSwitchingToPsm: {
      const Seconds wait =
          transition_end_ > at ? transition_end_ - at : Seconds{};
      base = wait + params_.psm_to_cam_delay;
      break;
    }
    case WnicState::kPsm:
      base = params_.psm_to_cam_delay;
      break;
    case WnicState::kSwitchingToCam:
      base = transition_end_ > at ? transition_end_ - at : Seconds{};
      break;
  }
  if (medium_.view() != nullptr) {
    // A bulk transfer cannot start before the server admits it either;
    // quote the admission delay at the instant the radio would be ready.
    return base + medium_.view()->admission_delay(at + base);
  }
  return base;
}

void Wnic::reset_accounting() {
  meter_.reset();
  counters_ = WnicCounters{};
}

}  // namespace flexfetch::device
