// Timeline simulator of a laptop hard disk with dynamic power management.
//
// The model follows the four-state description of Section 1.1: the disk
// transfers in the active state, spins idly in the idle state, and is spun
// down to standby after `spin_down_timeout` of inactivity. Transition costs
// (Table 1) are charged as energy lumps when the transition starts.
//
// Disk objects have value semantics: FlexFetch's on-line estimator copies
// the live disk and replays hypothetical requests on the copy, so estimation
// and simulation share one code path (Section 2.2: "we maintain an on-line
// simulator for each device").
#pragma once

#include <cstdint>
#include <optional>

#include "device/disk_params.hpp"
#include "device/energy_meter.hpp"
#include "device/request.hpp"
#include "faults/schedule.hpp"
#include "telemetry/recorder.hpp"

namespace flexfetch::device {

enum class DiskState : std::uint8_t {
  kIdle,          ///< Platters spinning, no transfer in progress.
  kSpinningDown,  ///< In transition to standby.
  kStandby,       ///< Spun down.
  kSpinningUp,    ///< In transition to idle/active.
};

const char* to_string(DiskState s);

struct DiskCounters {
  std::uint64_t requests = 0;
  std::uint64_t sequential_hits = 0;  ///< Requests that skipped positioning.
  std::uint64_t spin_ups = 0;
  std::uint64_t spin_downs = 0;
  Bytes bytes_read = Bytes{0};
  Bytes bytes_written = Bytes{0};
  Seconds seek_time = Seconds{0.0};  ///< Total head positioning (seek + rotation).
  std::uint64_t spin_up_stalls = 0;  ///< Spin-ups hit by an injected stall.
  Seconds stall_time = Seconds{0.0};          ///< Extra spin-up time from stalls.
};

class Disk {
 public:
  explicit Disk(DiskParams params = DiskParams::hitachi_dk23da());

  const DiskParams& params() const { return params_; }

  /// Advances the internal clock to `t`, integrating idle/standby energy and
  /// performing any timeout-driven spin-down. Idempotent for t <= now().
  void advance_to(Seconds t);

  /// Services a request arriving at time `t` (clamped to now() if earlier).
  /// Handles spin-up from standby, head positioning and the transfer.
  ServiceResult service(Seconds t, const DeviceRequest& req);

  /// Estimates servicing `req` at `t` without mutating this disk.
  ServiceResult estimate(Seconds t, const DeviceRequest& req) const;

  /// A copy safe to mutate in counterfactual replays: identical timeline
  /// state, but detached from the live telemetry recorder so hypothetical
  /// requests never emit phantom events. (The copy constructor already
  /// detaches — see RecorderHandle — this spelling makes the intent
  /// explicit at every replay site.) The fault schedule pointer IS shared:
  /// estimates must price the faults the live disk will face.
  Disk detached_copy() const { return *this; }

  /// Externally forces the disk towards the spinning state at time `t`
  /// (e.g. a BlueFS ghost hint). No-op if already spinning or spinning up.
  void force_spin_up(Seconds t);

  /// Delay until a request arriving at `t` would start transferring its
  /// first byte, ignoring positioning (used by reactive policies).
  /// Fault-aware: includes the stall of a spin-up that would begin inside
  /// an injected stall window.
  Seconds time_to_ready(Seconds t) const;

  /// Attaches a fault schedule (owned by the caller, must outlive the
  /// disk and every copy). Spin-ups beginning inside a stall window take
  /// longer and burn extra energy. nullptr detaches.
  void set_fault_schedule(const faults::DiskFaultSchedule* schedule) {
    faults_ = schedule;
  }

  DiskState state() const { return state_; }
  Seconds now() const { return now_; }
  bool is_spinning() const {
    return state_ == DiskState::kIdle || state_ == DiskState::kSpinningUp;
  }

  /// End of the most recent transfer; the I/O scheduler must not dispatch
  /// the next request before this.
  Seconds busy_until() const { return busy_until_; }

  /// Start of the current idle period (only meaningful in kIdle).
  Seconds idle_since() const { return idle_since_; }

  const EnergyMeter& meter() const { return meter_; }
  const DiskCounters& counters() const { return counters_; }

  Seconds break_even_time() const { return params_.break_even_time(); }

  /// Resets energy/counter accounting without touching the power state.
  void reset_accounting();

  /// Retunes the spin-down timeout (adaptive DPM controllers). Takes
  /// effect from the current idle period onwards; must not be called while
  /// the disk is mid-transition into an already-committed spin-down.
  void set_spin_down_timeout(Seconds timeout);

  /// Attaches this disk to a telemetry recorder: power-state spans land on
  /// the disk.power track, service spans on disk.io. Copies of the disk
  /// (estimator replicas, audit shadows) are always detached, so only the
  /// live device narrates the timeline.
  void attach_telemetry(telemetry::Recorder* rec);

  /// Closes the open power-state span at now() — call once at end of run,
  /// after the final advance_to().
  void flush_telemetry();

 private:
  void begin_spin_down();
  void begin_spin_up();
  /// Emits the span of the power state ending at `until` (no-op when
  /// detached) and restarts span tracking there.
  void note_state_end(DiskState ended, Seconds until);
  /// Brings the disk to the spinning (kIdle) state, waiting out or paying
  /// for whatever transitions are needed. Returns when state_ == kIdle.
  void make_ready();

  DiskParams params_;
  DiskState state_ = DiskState::kIdle;
  Seconds now_ = Seconds{0.0};
  Seconds idle_since_ = Seconds{0.0};
  Seconds transition_end_ = Seconds{0.0};  ///< Valid in kSpinningUp/kSpinningDown.
  Seconds busy_until_ = Seconds{0.0};
  std::optional<Bytes> next_sequential_lba_;
  EnergyMeter meter_;
  DiskCounters counters_;
  telemetry::RecorderHandle telem_;
  Seconds state_since_ = Seconds{0.0};  ///< Start of the current power-state span.
  /// Shared with copies (see detached_copy); null = no injected faults.
  const faults::DiskFaultSchedule* faults_ = nullptr;
  /// Stall delay charged by begin_spin_up() since the last service()
  /// entry; reported as ServiceResult::fault_delay.
  Seconds pending_fault_delay_ = Seconds{0.0};
};

}  // namespace flexfetch::device
