// Per-category energy accounting.
//
// Every joule a device model spends is attributed to exactly one category,
// so tests can assert energy conservation: sum(categories) == total().
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace flexfetch::device {

enum class EnergyCategory : std::size_t {
  kActiveTransfer,  ///< Disk read/write, head positioning included.
  kIdle,            ///< Disk spinning idle.
  kStandby,         ///< Disk spun down.
  kSpinUp,
  kSpinDown,
  kCamIdle,   ///< WNIC idle in continuously-aware mode.
  kPsmIdle,   ///< WNIC idle in power-saving mode.
  kSend,      ///< WNIC transmitting.
  kRecv,      ///< WNIC receiving.
  kModeSwitch,  ///< WNIC CAM<->PSM transitions.
  kCount,
};

const char* to_string(EnergyCategory c);

class EnergyMeter {
 public:
  void add(EnergyCategory c, Joules j);

  Joules operator[](EnergyCategory c) const {
    return joules_[static_cast<std::size_t>(c)];
  }

  Joules total() const;

  /// Energy spent on power-state transitions (spin-up/down, mode switches).
  Joules transition_energy() const;

  void reset();

  /// Multi-line human-readable breakdown (categories with zero omitted).
  std::string report() const;

 private:
  std::array<Joules, static_cast<std::size_t>(EnergyCategory::kCount)> joules_{};
};

}  // namespace flexfetch::device
