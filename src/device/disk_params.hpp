// Hard-disk model parameters.
//
// Defaults reproduce Table 1 of the paper plus the DK23DA datasheet values
// quoted in Section 3.1 (30 GB, 4200 RPM, 35 MB/s peak, 13 ms avg seek,
// 7 ms avg rotation, 20 s Linux laptop-mode spin-down timeout).
#pragma once

#include "common/units.hpp"

namespace flexfetch::device {

struct DiskParams {
  Watts active_power = Watts{2.0};    ///< P_active
  Watts idle_power = Watts{1.6};      ///< P_idle
  Watts standby_power = Watts{0.15};  ///< P_standby
  Joules spin_up_energy = Joules{5.0};
  Joules spin_down_energy = Joules{2.94};
  Seconds spin_up_time = Seconds{1.6};
  Seconds spin_down_time = Seconds{2.3};

  Bytes capacity = 30 * kGiB;
  BytesPerSecond bandwidth = BytesPerSecond{35e6};  ///< Peak sequential transfer rate.
  Seconds avg_seek_time = Seconds{13e-3};
  Seconds avg_rotation_time = Seconds{7e-3};

  /// Head-positioning model. The paper uses the average seek+rotation
  /// time (kAverage). kDistance refines it with the classic concave
  /// seek-vs-distance curve, which is what makes elevator scheduling
  /// (C-SCAN) measurably better than FIFO dispatch.
  enum class SeekModel { kAverage, kDistance };
  SeekModel seek_model = SeekModel::kAverage;
  Seconds min_seek_time = Seconds{1.5e-3};  ///< Track-to-track.
  Seconds max_seek_time = Seconds{22e-3};   ///< Full stroke.

  /// Idle period after which the disk spins down (Linux laptop-mode default).
  Seconds spin_down_timeout = Seconds{20.0};

  /// Average time to first byte of a random request — the paper's I/O burst
  /// threshold (Section 2.1).
  Seconds access_time() const { return avg_seek_time + avg_rotation_time; }

  /// Seek time for a head movement of `distance` bytes under the selected
  /// model (excludes rotation). Zero distance seeks are free.
  Seconds seek_time(Bytes distance) const;

  /// Minimum standby residence (between start of spin-down and end of the
  /// following spin-up) for a spin-down to save energy versus idling.
  ///
  /// Staying idle for T costs P_idle*T; spinning down costs
  /// E_down + E_up + P_standby*(T - T_down - T_up).
  Seconds break_even_time() const {
    const Joules transition = spin_up_energy + spin_down_energy;
    const Seconds transition_time = spin_up_time + spin_down_time;
    return (transition - standby_power * transition_time) /
           (idle_power - standby_power);
  }

  /// Throws ConfigError if the parameter set is not physically meaningful.
  void validate() const;

  /// The Hitachi DK23DA disk the paper simulates (same as the defaults).
  static DiskParams hitachi_dk23da() { return DiskParams{}; }

  /// The same disk with the distance-dependent seek curve — the
  /// simulator's default: near files (FFS directory locality) cost little
  /// more than a rotation, full strokes cost the worst case.
  static DiskParams hitachi_dk23da_distance() {
    DiskParams p;
    p.seek_model = SeekModel::kDistance;
    return p;
  }
};

}  // namespace flexfetch::device
