#include "device/adaptive_timeout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexfetch::device {

AdaptiveTimeoutController::AdaptiveTimeoutController(
    AdaptiveTimeoutConfig config)
    : config_(config) {
  FF_REQUIRE(config.min_timeout > Seconds{},
             "adaptive timeout: non-positive floor");
  FF_REQUIRE(config.max_timeout >= config.min_timeout,
             "adaptive timeout: inverted bounds");
  FF_REQUIRE(config.increase_factor > 1.0,
             "adaptive timeout: increase factor must exceed 1");
  FF_REQUIRE(config.decay_factor > 0.0 && config.decay_factor <= 1.0,
             "adaptive timeout: decay factor out of (0,1]");
}

void AdaptiveTimeoutController::observe(Disk& disk,
                                        const ServiceResult& result) {
  if (timeout_ == Seconds{}) timeout_ = disk.params().spin_down_timeout;
  ++stats_.observations;

  if (has_last_) {
    const Seconds idle_gap =
        std::max(Seconds{}, result.arrival - last_completion_);
    // Did this idle period reach the (then-current) timeout at all?
    if (idle_gap > timeout_) {
      // The disk spun down. Energy-justified only if the time it would
      // have stayed down exceeds the break-even residence.
      const Seconds down_span = idle_gap - timeout_;
      if (down_span < disk.break_even_time()) {
        ++stats_.premature_spin_downs;
        ++stats_.increases;
        timeout_ = std::min(timeout_ * config_.increase_factor,
                            config_.max_timeout);
      } else {
        timeout_ = std::max(timeout_ * config_.decay_factor,
                            config_.min_timeout);
      }
    } else {
      // No spin-down happened; slowly drift back down so the disk keeps
      // saving once the bursty pattern ends.
      timeout_ =
          std::max(timeout_ * config_.decay_factor, config_.min_timeout);
    }
  }

  disk.set_spin_down_timeout(timeout_);
  last_completion_ = result.completion;
  has_last_ = true;
  stats_.final_timeout = timeout_;
}

}  // namespace flexfetch::device
