#include "device/energy_meter.hpp"

#include <sstream>

#include "device/request.hpp"

#include "common/error.hpp"
#include "common/format.hpp"

namespace flexfetch::device {

const char* to_string(DeviceKind kind) {
  return kind == DeviceKind::kDisk ? "disk" : "network";
}

DeviceKind other(DeviceKind kind) {
  return kind == DeviceKind::kDisk ? DeviceKind::kNetwork : DeviceKind::kDisk;
}

const char* to_string(EnergyCategory c) {
  switch (c) {
    case EnergyCategory::kActiveTransfer: return "active-transfer";
    case EnergyCategory::kIdle: return "idle";
    case EnergyCategory::kStandby: return "standby";
    case EnergyCategory::kSpinUp: return "spin-up";
    case EnergyCategory::kSpinDown: return "spin-down";
    case EnergyCategory::kCamIdle: return "cam-idle";
    case EnergyCategory::kPsmIdle: return "psm-idle";
    case EnergyCategory::kSend: return "send";
    case EnergyCategory::kRecv: return "recv";
    case EnergyCategory::kModeSwitch: return "mode-switch";
    case EnergyCategory::kCount: break;
  }
  return "?";
}

void EnergyMeter::add(EnergyCategory c, Joules j) {
  FF_ASSERT(c != EnergyCategory::kCount);
  FF_ASSERT(j >= Joules{});
  joules_[static_cast<std::size_t>(c)] += j;
}

Joules EnergyMeter::total() const {
  Joules sum = Joules{0.0};
  for (const auto j : joules_) sum += j;
  return sum;
}

Joules EnergyMeter::transition_energy() const {
  return (*this)[EnergyCategory::kSpinUp] + (*this)[EnergyCategory::kSpinDown] +
         (*this)[EnergyCategory::kModeSwitch];
}

void EnergyMeter::reset() { joules_.fill(Joules{}); }

std::string EnergyMeter::report() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < joules_.size(); ++i) {
    if (joules_[i] <= Joules{}) continue;
    os << "  " << to_string(static_cast<EnergyCategory>(i)) << ": "
       << format_joules(joules_[i]) << '\n';
  }
  os << "  total: " << format_joules(total()) << '\n';
  return os.str();
}

}  // namespace flexfetch::device
