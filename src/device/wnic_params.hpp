// Wireless NIC model parameters.
//
// Defaults reproduce Table 2 of the paper (Cisco Aironet 350): CAM/PSM
// idle/recv/send powers, mode-switch delays and energies, 800 ms CAM->PSM
// idle timeout, and the 802.11b rate set.
#pragma once

#include <array>
#include <vector>

#include "common/units.hpp"

namespace flexfetch::device {

/// One step of a piecewise-constant link-rate schedule: from `start`
/// onwards the link runs at `bandwidth` (until the next step).
struct BandwidthStep {
  Seconds start = Seconds{0.0};
  BytesPerSecond bandwidth = BytesPerSecond{0.0};
};

struct WnicParams {
  // Power-saving mode (radio mostly off, wakes for beacons).
  Watts psm_idle_power = Watts{0.39};
  Watts psm_recv_power = Watts{1.42};
  Watts psm_send_power = Watts{2.48};

  // Continuously-aware mode.
  Watts cam_idle_power = Watts{1.41};
  Watts cam_recv_power = Watts{2.61};
  Watts cam_send_power = Watts{3.69};

  Seconds cam_to_psm_delay = Seconds{0.41};
  Joules cam_to_psm_energy = Joules{0.53};
  Seconds psm_to_cam_delay = Seconds{0.40};
  Joules psm_to_cam_energy = Joules{0.51};

  /// CAM idle period after which the card drops to PSM (adaptive PM of the
  /// Aironet 350, Section 3.1).
  Seconds psm_timeout = Seconds{0.8};

  /// Link bandwidth. 802.11b supports 1, 2, 5.5 and 11 Mbps depending on
  /// signal quality; the evaluation sweeps over these.
  BytesPerSecond bandwidth = units::mbps(11.0);

  /// Optional roaming schedule: the 802.11b rate adapts to signal quality
  /// as the user moves (Section 3.3: "bandwidth may be changing with the
  /// variation of reception strength when user changes the location of his
  /// computer"). Steps must be sorted by start time; empty = fixed rate.
  /// Before the first step the base `bandwidth` applies.
  std::vector<BandwidthStep> bandwidth_schedule;

  /// Effective link rate at simulation time `t`.
  BytesPerSecond bandwidth_at(Seconds t) const;

  /// One-way request latency to the remote storage server (server load,
  /// congestion, retransmissions). The evaluation sweeps this.
  Seconds latency = units::ms(1.0);

  /// Remote-storage RPC granularity: a large request is fetched from the
  /// server as a pipeline of RPCs of at most this size, and each RPC pays
  /// the request latency with the radio active (the card is exchanging
  /// request/response frames while it waits). This is what makes network
  /// access latency-sensitive for bulk data (every Figure (a) sweep).
  Bytes rpc_bytes = 16 * kKiB;

  /// Requests no larger than this can be serviced without leaving PSM
  /// ("switches back to CAM if more than one packet is ready"): a single
  /// packet is delivered at the next beacon.
  Bytes psm_packet_threshold = Bytes{1500};

  /// Mean extra delay waiting for a PSM beacon (100 ms beacon interval).
  Seconds psm_beacon_wait = Seconds{0.05};

  /// The four 802.11b rates used in the paper's bandwidth sweeps.
  static constexpr std::array<double, 4> k80211bRatesMbps{1.0, 2.0, 5.5, 11.0};

  void validate() const;

  /// The Cisco Aironet 350 card the paper simulates (same as the defaults).
  static WnicParams cisco_aironet350() { return WnicParams{}; }

  WnicParams with_bandwidth_mbps(double mbps) const {
    WnicParams p = *this;
    p.bandwidth = units::mbps(mbps);
    return p;
  }

  WnicParams with_latency(Seconds lat) const {
    WnicParams p = *this;
    p.latency = lat;
    return p;
  }
};

}  // namespace flexfetch::device
