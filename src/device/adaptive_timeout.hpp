// Adaptive disk spin-down timeout (Douglis et al. '94 / Helmbold et al.
// '96 — the paper's Section 4 related work on timeout selection).
//
// The fixed 20 s laptop-mode timeout is wrong for some workloads: sparse
// request streams with ~20 s gaps (the Thunderbird email phase) make the
// disk thrash through premature spin-downs, each costing the full
// transition energy and a spin-up delay. The controller watches the idle
// gap before every disk request:
//   * if the disk spun down but stayed down for less than the break-even
//     time, the spin-down lost energy -> the timeout doubles (capped);
//   * otherwise the timeout decays multiplicatively toward its floor, so
//     the disk resumes saving aggressively once the thrashing pattern ends.
#pragma once

#include "device/disk.hpp"

namespace flexfetch::device {

struct AdaptiveTimeoutConfig {
  Seconds min_timeout = Seconds{2.0};
  Seconds max_timeout = Seconds{120.0};
  double increase_factor = 2.0;   ///< On a premature spin-down.
  double decay_factor = 0.95;     ///< On a justified cycle or no cycle.
};

struct AdaptiveTimeoutStats {
  std::uint64_t observations = 0;
  std::uint64_t premature_spin_downs = 0;
  std::uint64_t increases = 0;
  Seconds final_timeout = Seconds{0.0};
};

class AdaptiveTimeoutController {
 public:
  explicit AdaptiveTimeoutController(AdaptiveTimeoutConfig config = {});

  /// Observes one serviced disk request and retunes the disk's timeout.
  /// Call after every disk service with its ServiceResult.
  void observe(Disk& disk, const ServiceResult& result);

  Seconds current_timeout() const { return timeout_; }
  const AdaptiveTimeoutStats& stats() const { return stats_; }

 private:
  AdaptiveTimeoutConfig config_;
  Seconds timeout_ = Seconds{0.0};  ///< 0 = adopt the disk's configured value first.
  Seconds last_completion_ = Seconds{0.0};
  bool has_last_ = false;
  AdaptiveTimeoutStats stats_;
};

}  // namespace flexfetch::device
