#include "device/disk_params.hpp"
#include "device/wnic_params.hpp"

#include <cmath>

#include "common/error.hpp"

namespace flexfetch::device {

Seconds DiskParams::seek_time(Bytes distance) const {
  if (distance == Bytes{}) return Seconds{};
  if (seek_model == SeekModel::kAverage) return avg_seek_time;
  // Concave seek curve: short hops are dominated by settle time, long
  // strokes grow with the square root of the distance.
  const double frac = std::sqrt(distance.as_double() / capacity.as_double());
  return min_seek_time + (max_seek_time - min_seek_time) * std::min(frac, 1.0);
}

void DiskParams::validate() const {
  FF_REQUIRE(active_power > Watts{} && idle_power > Watts{} &&
                 standby_power >= Watts{},
             "disk powers must be positive");
  FF_REQUIRE(idle_power > standby_power,
             "disk idle power must exceed standby power");
  FF_REQUIRE(active_power >= idle_power,
             "disk active power must be at least idle power");
  FF_REQUIRE(spin_up_energy > Joules{} && spin_down_energy > Joules{},
             "disk transition energies must be positive");
  FF_REQUIRE(spin_up_time > Seconds{} && spin_down_time > Seconds{},
             "disk transition times must be positive");
  FF_REQUIRE(bandwidth > BytesPerSecond{}, "disk bandwidth must be positive");
  FF_REQUIRE(avg_seek_time >= Seconds{} && avg_rotation_time >= Seconds{},
             "disk positioning times must be non-negative");
  FF_REQUIRE(spin_down_timeout > Seconds{},
             "disk spin-down timeout must be positive");
  FF_REQUIRE(capacity > Bytes{}, "disk capacity must be positive");
  FF_REQUIRE(min_seek_time >= Seconds{} && max_seek_time >= min_seek_time,
             "disk seek-curve bounds inverted");
}

void WnicParams::validate() const {
  FF_REQUIRE(psm_idle_power > Watts{} && cam_idle_power > Watts{},
             "wnic idle powers must be positive");
  FF_REQUIRE(cam_idle_power > psm_idle_power,
             "wnic CAM idle power must exceed PSM idle power");
  FF_REQUIRE(cam_recv_power >= cam_idle_power && cam_send_power >= cam_idle_power,
             "wnic CAM transfer powers must be at least CAM idle power");
  FF_REQUIRE(psm_recv_power >= psm_idle_power && psm_send_power >= psm_idle_power,
             "wnic PSM transfer powers must be at least PSM idle power");
  FF_REQUIRE(cam_to_psm_delay > Seconds{} && psm_to_cam_delay > Seconds{},
             "wnic mode-switch delays must be positive");
  FF_REQUIRE(cam_to_psm_energy > Joules{} && psm_to_cam_energy > Joules{},
             "wnic mode-switch energies must be positive");
  FF_REQUIRE(psm_timeout > Seconds{}, "wnic PSM timeout must be positive");
  FF_REQUIRE(bandwidth > BytesPerSecond{}, "wnic bandwidth must be positive");
  FF_REQUIRE(latency >= Seconds{}, "wnic latency must be non-negative");
  FF_REQUIRE(psm_beacon_wait >= Seconds{},
             "wnic beacon wait must be non-negative");
  FF_REQUIRE(rpc_bytes > Bytes{}, "wnic rpc size must be positive");
  for (std::size_t i = 0; i < bandwidth_schedule.size(); ++i) {
    FF_REQUIRE(bandwidth_schedule[i].bandwidth > BytesPerSecond{},
               "wnic schedule bandwidth must be positive");
    FF_REQUIRE(i == 0 || bandwidth_schedule[i - 1].start <=
                             bandwidth_schedule[i].start,
               "wnic schedule must be sorted by start time");
  }
}

BytesPerSecond WnicParams::bandwidth_at(Seconds t) const {
  BytesPerSecond bw = bandwidth;
  for (const auto& step : bandwidth_schedule) {
    if (step.start > t) break;
    bw = step.bandwidth;
  }
  return bw;
}

}  // namespace flexfetch::device
