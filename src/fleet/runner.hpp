// Block-structured fleet execution with an exact merge contract.
//
// The naive way to shard a million-user sweep — each worker Welford-folds
// its own users, parent Chan-merges the worker partials — is NOT
// bit-identical across worker counts: floating-point merge is exact in
// the statistical sense but not bitwise-associative, so 2 workers and 4
// workers round differently. The fleet runner fixes the aggregation tree
// structurally instead:
//
//   * The population is partitioned into fixed-size BLOCKS of consecutive
//     users (block b = users [b*B, min((b+1)*B, N))). Block size is part
//     of the run's configuration, independent of worker count.
//   * A block's aggregate is the sequential fold of its users in index
//     order — the same bits whoever computes it, because user cells are
//     themselves deterministic (see population.hpp).
//   * The global aggregate is the fold of block aggregates in BLOCK INDEX
//     order. Workers own interleaved blocks (block % workers == shard)
//     and emit per-block summaries; the parent sorts by block index and
//     folds. The tree shape — and therefore every rounding step — is a
//     function of (N, B) alone, so ANY worker count, completion order, or
//     kill/resume partitioning reproduces the single-process bits.
//
// That last property is what the fleet bench gates on: fingerprint(merge
// of worker output) must equal fingerprint(in-memory single-process
// fold) exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <set>
#include <string>

#include "fleet/catalog.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/population.hpp"
#include "sim/sweep.hpp"

namespace flexfetch::fleet {

struct FleetConfig {
  PopulationSpec population;
  /// Base scenario tuning. Fleet runs default to scaled-down workloads
  /// (~1 ms of simulated I/O per user) so 100k+ users stay tractable;
  /// think_scale stays 1.0 here because the population's per-user think
  /// buckets multiply on top of it.
  workloads::ScenarioTuning tuning{1.0, 0.15};
  std::uint64_t users = 1000;
  /// Users per aggregation block. Part of the determinism contract:
  /// changing it changes the fold tree and therefore the low-order bits
  /// of the aggregate (every run being compared must share it).
  std::uint64_t block_size = 256;
  /// Worker shards (blocks are dealt round-robin: block % workers).
  int workers = 1;
  /// Run every cell with metrics-only telemetry on (histograms ride the
  /// checkpoint format exactly).
  bool telemetry = false;
};

/// ceil(users / block_size); validates both are nonzero.
std::uint64_t block_count(const FleetConfig& config);

/// Builds user u's sweep cell against the catalog's shared bundle. The
/// bundle reference must outlive the returned cell (it holds a pointer).
sim::SweepCell cell_for(const UserParams& u, const PopulationGenerator& gen,
                        const workloads::ScenarioBundle& bundle,
                        const FleetConfig& config);

/// Runs one block start to finish: regenerates its users, simulates each
/// in index order, folds into a fresh aggregator. Pure function of
/// (config, block) — the catalog is only a cache.
BlockSummary run_block(const FleetConfig& config,
                       const PopulationGenerator& gen,
                       ScenarioCatalog& catalog, std::uint64_t block);

/// What a shard actually executed (blocks already in `done` are skipped,
/// so a resumed shard reports only its new work).
struct ShardRunStats {
  std::uint64_t blocks = 0;
  std::uint64_t users = 0;
};

/// Runs every block of `shard` (block % workers == shard) not already in
/// `done`, appending one checkpoint line per block to `out` (flushed per
/// line, so a kill loses at most the in-flight block).
ShardRunStats run_shard(const FleetConfig& config,
                        const PopulationGenerator& gen,
                        ScenarioCatalog& catalog, int shard,
                        const std::set<std::uint64_t>& done,
                        std::ostream& out);

/// Folds recovered block summaries in block-index order into the global
/// aggregate. Throws ConfigError unless `blocks` covers every block of
/// the run exactly (no gaps — a partial checkpoint cannot masquerade as
/// a finished run).
sim::SweepAggregator merge_blocks(
    const FleetConfig& config,
    const std::map<std::uint64_t, BlockSummary>& blocks);

/// The single-process reference: runs every block in order in-process
/// and folds directly (no serialization). The sharded path must
/// reproduce this bit-for-bit; benches fingerprint both.
sim::SweepAggregator run_monolithic(const FleetConfig& config,
                                    const PopulationGenerator& gen,
                                    ScenarioCatalog& catalog);

}  // namespace flexfetch::fleet
