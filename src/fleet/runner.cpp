#include "fleet/runner.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "common/units.hpp"
#include "faults/schedule.hpp"

namespace flexfetch::fleet {

std::uint64_t block_count(const FleetConfig& config) {
  FF_REQUIRE(config.users > 0, "fleet: zero users");
  FF_REQUIRE(config.block_size > 0, "fleet: zero block size");
  return (config.users + config.block_size - 1) / config.block_size;
}

sim::SweepCell cell_for(const UserParams& u, const PopulationGenerator& gen,
                        const workloads::ScenarioBundle& bundle,
                        const FleetConfig& config) {
  const PopulationSpec& spec = gen.spec();
  sim::SweepCell cell;
  cell.scenario = &bundle;
  cell.policy = spec.policies[u.policy];
  cell.wnic = device::WnicParams::cisco_aironet350()
                  .with_latency(units::ms(u.latency_ms))
                  .with_bandwidth_mbps(u.bandwidth_mbps);
  cell.loss_rate = gen.loss_rate_for(u);
  cell.axis = "user";
  cell.axis_value = static_cast<double>(u.index);

  // Per-user file layout, so no two users share on-disk placement.
  cell.config.layout_seed = u.stream_seed;
  // An incomplete hoard invalidates the paper's no-sync idealisation:
  // those users pay for replica synchronization traffic.
  cell.config.enable_sync = u.hoard_coverage < spec.sync_coverage_threshold;
  if (u.fault_seed != 0) {
    cell.config.faults = faults::generate_schedule(u.fault_seed);
  }
  if (config.telemetry) {
    cell.config.telemetry.enabled = true;  // metrics-only: ring stays 0
  }
  return cell;
}

BlockSummary run_block(const FleetConfig& config,
                       const PopulationGenerator& gen,
                       ScenarioCatalog& catalog, std::uint64_t block) {
  const std::uint64_t n_blocks = block_count(config);
  FF_REQUIRE(block < n_blocks, "fleet: block index out of range");

  BlockSummary summary;
  summary.block = block;
  summary.user_lo = block * config.block_size;
  summary.user_hi = std::min(summary.user_lo + config.block_size, config.users);
  for (std::uint64_t k = summary.user_lo; k < summary.user_hi; ++k) {
    const UserParams u = gen.user(k);
    const sim::SweepCell cell =
        cell_for(u, gen, catalog.bundle(u.scenario, u.think_bucket), config);
    summary.agg.add(cell, sim::run_cell(cell));
  }
  return summary;
}

ShardRunStats run_shard(const FleetConfig& config,
                        const PopulationGenerator& gen,
                        ScenarioCatalog& catalog, int shard,
                        const std::set<std::uint64_t>& done,
                        std::ostream& out) {
  FF_REQUIRE(config.workers > 0, "fleet: zero workers");
  FF_REQUIRE(shard >= 0 && shard < config.workers,
             "fleet: shard index out of range");
  const std::uint64_t n_blocks = block_count(config);
  ShardRunStats stats;
  for (std::uint64_t b = static_cast<std::uint64_t>(shard); b < n_blocks;
       b += static_cast<std::uint64_t>(config.workers)) {
    if (done.contains(b)) continue;
    const BlockSummary summary = run_block(config, gen, catalog, b);
    write_block_line(out, summary);
    out.flush();  // One durable line per block: the kill-safety unit.
    ++stats.blocks;
    stats.users += summary.user_hi - summary.user_lo;
  }
  return stats;
}

sim::SweepAggregator merge_blocks(
    const FleetConfig& config,
    const std::map<std::uint64_t, BlockSummary>& blocks) {
  const std::uint64_t n_blocks = block_count(config);
  FF_REQUIRE(blocks.size() == n_blocks,
             "fleet: merge needs every block (partial checkpoint?)");
  sim::SweepAggregator global;
  // std::map iterates in block-index order — THE fold order. Everything
  // downstream (the bit-identity gate) leans on this line.
  for (const auto& [index, summary] : blocks) {
    FF_REQUIRE(index < n_blocks, "fleet: stray block index");
    global.merge(summary.agg);
  }
  return global;
}

sim::SweepAggregator run_monolithic(const FleetConfig& config,
                                    const PopulationGenerator& gen,
                                    ScenarioCatalog& catalog) {
  const std::uint64_t n_blocks = block_count(config);
  sim::SweepAggregator global;
  for (std::uint64_t b = 0; b < n_blocks; ++b) {
    global.merge(run_block(config, gen, catalog, b).agg);
  }
  return global;
}

}  // namespace flexfetch::fleet
