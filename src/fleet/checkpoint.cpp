#include "fleet/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace flexfetch::fleet {

namespace {

using sim::RunningStat;
using sim::StratumAggregate;
using sim::SweepAggregator;
using telemetry::Histogram;
using telemetry::MetricKind;

/// Stratum keys and metric names become single tokens on the line;
/// whitespace inside one would corrupt the stream (none of the paper's
/// scenario/policy/metric names contain any — this enforces it).
void check_token(const std::string& name) {
  FF_REQUIRE(!name.empty(), "checkpoint: empty token name");
  for (const char c : name) {
    FF_REQUIRE(std::isspace(static_cast<unsigned char>(c)) == 0,
               "checkpoint: whitespace in name '" + name + "'");
  }
}

/// C99 hexfloat (%a): the only printf form that round-trips every finite
/// double exactly and prints inf/nan in strtod-parseable spellings.
void put_hex(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  os << buf;
}

/// Forward-only token reader over one line. Every accessor sets ok=false
/// on malformed input and the caller checks once at the end — truncated
/// (kill-mid-write) lines fail cleanly instead of throwing.
struct Cursor {
  std::string_view s;
  bool ok = true;

  std::string_view next() {
    while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
    if (s.empty()) {
      ok = false;
      return {};
    }
    const std::size_t end = s.find(' ');
    const std::string_view tok = s.substr(0, end);
    s.remove_prefix(end == std::string_view::npos ? s.size() : end);
    return tok;
  }

  void expect(std::string_view keyword) {
    if (next() != keyword) ok = false;
  }

  std::uint64_t u64() {
    const std::string_view tok = next();
    char buf[32];
    if (!ok || tok.empty() || tok.size() >= sizeof(buf)) {
      ok = false;
      return 0;
    }
    tok.copy(buf, tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    const unsigned long long v = std::strtoull(buf, &end, 10);
    if (end != buf + tok.size()) ok = false;
    return static_cast<std::uint64_t>(v);
  }

  double dbl() {
    const std::string_view tok = next();
    char buf[64];
    if (!ok || tok.empty() || tok.size() >= sizeof(buf)) {
      ok = false;
      return 0.0;
    }
    tok.copy(buf, tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + tok.size()) ok = false;
    return v;
  }

  /// The line must be fully consumed but for trailing spaces.
  bool at_end() {
    while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
    return s.empty();
  }
};

void put_stat(std::ostream& os, const RunningStat& s) {
  os << " stat " << s.count() << ' ';
  put_hex(os, s.mean());
  os << ' ';
  put_hex(os, s.m2());
  os << ' ';
  put_hex(os, s.min());
  os << ' ';
  put_hex(os, s.max());
}

RunningStat parse_stat(Cursor& c) {
  c.expect("stat");
  const std::uint64_t n = c.u64();
  const double mean = c.dbl();
  const double m2 = c.dbl();
  const double min = c.dbl();
  const double max = c.dbl();
  return RunningStat::from_raw(n, mean, m2, min, max);
}

void write_agg_tokens(std::ostream& os, const SweepAggregator& agg) {
  os << "agg " << agg.cells_seen() << " strata " << agg.strata().size();
  for (const auto& [key, st] : agg.strata()) {
    check_token(key);
    os << " key " << key << " cells " << st.cells;
    put_stat(os, st.energy_j);
    put_stat(os, st.disk_energy_j);
    put_stat(os, st.wnic_energy_j);
    put_stat(os, st.makespan_s);
    put_stat(os, st.io_time_s);
    os << " metrics " << st.metrics.items().size();
    for (const auto& [name, metric] : st.metrics.items()) {
      check_token(name);
      os << ' ' << name << ' ' << static_cast<int>(metric.kind) << ' ';
      put_hex(os, metric.value);
    }
    os << " hists " << st.metrics.histograms().size();
    for (const auto& [name, h] : st.metrics.histograms()) {
      check_token(name);
      os << ' ' << name << ' ' << h.count() << ' ';
      put_hex(os, h.sum());
      os << ' ';
      put_hex(os, h.min());
      os << ' ';
      put_hex(os, h.max());
      std::size_t populated = 0;
      for (const std::uint64_t b : h.buckets()) populated += (b != 0) ? 1 : 0;
      os << " nb " << populated;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (h.buckets()[i] != 0) os << ' ' << i << ' ' << h.buckets()[i];
      }
    }
  }
}

bool parse_agg_tokens(Cursor& c, SweepAggregator* agg) {
  c.expect("agg");
  const std::uint64_t total_cells = c.u64();
  c.expect("strata");
  const std::uint64_t n_strata = c.u64();
  if (!c.ok || n_strata > 1'000'000) return false;
  for (std::uint64_t s = 0; s < n_strata && c.ok; ++s) {
    c.expect("key");
    const std::string key(c.next());
    StratumAggregate st;
    c.expect("cells");
    st.cells = c.u64();
    st.energy_j = parse_stat(c);
    st.disk_energy_j = parse_stat(c);
    st.wnic_energy_j = parse_stat(c);
    st.makespan_s = parse_stat(c);
    st.io_time_s = parse_stat(c);
    c.expect("metrics");
    const std::uint64_t n_metrics = c.u64();
    if (!c.ok || n_metrics > 1'000'000) return false;
    for (std::uint64_t m = 0; m < n_metrics && c.ok; ++m) {
      const std::string name(c.next());
      const std::uint64_t kind = c.u64();
      const double value = c.dbl();
      if (!c.ok || kind > 2) return false;
      st.metrics.restore(name, static_cast<MetricKind>(kind), value);
    }
    c.expect("hists");
    const std::uint64_t n_hists = c.u64();
    if (!c.ok || n_hists > 1'000'000) return false;
    for (std::uint64_t h = 0; h < n_hists && c.ok; ++h) {
      const std::string name(c.next());
      const std::uint64_t count = c.u64();
      const double sum = c.dbl();
      const double min = c.dbl();
      const double max = c.dbl();
      c.expect("nb");
      const std::uint64_t populated = c.u64();
      if (!c.ok || populated > Histogram::kBuckets) return false;
      std::array<std::uint64_t, Histogram::kBuckets> buckets{};
      for (std::uint64_t b = 0; b < populated && c.ok; ++b) {
        const std::uint64_t i = c.u64();
        const std::uint64_t v = c.u64();
        if (!c.ok || i >= Histogram::kBuckets) return false;
        buckets[i] = v;
      }
      if (!c.ok) return false;
      st.metrics.histogram(name) = Histogram::from_raw(count, sum, min, max,
                                                       buckets);
    }
    if (!c.ok || key.empty() || agg->strata().contains(key)) return false;
    agg->restore_stratum(key, std::move(st));
  }
  return c.ok && agg->cells_seen() == total_cells;
}

}  // namespace

void write_block_line(std::ostream& os, const BlockSummary& summary) {
  os << "block " << summary.block << ' ' << summary.user_lo << ' '
     << summary.user_hi << ' ';
  write_agg_tokens(os, summary.agg);
  os << " end\n";
}

bool parse_block_line(std::string_view line, BlockSummary* out) {
  Cursor c{line};
  c.expect("block");
  BlockSummary b;
  b.block = c.u64();
  b.user_lo = c.u64();
  b.user_hi = c.u64();
  if (!c.ok || b.user_hi <= b.user_lo) return false;
  if (!parse_agg_tokens(c, &b.agg)) return false;
  c.expect("end");
  if (!c.ok || !c.at_end()) return false;
  *out = std::move(b);
  return true;
}

void write_meta_line(std::ostream& os, const ShardMeta& meta) {
  os << "meta shard " << meta.shard << " wall ";
  put_hex(os, meta.wall_seconds);
  os << " rss " << meta.peak_rss_bytes << " users " << meta.users
     << " blocks " << meta.blocks << " end\n";
}

bool parse_meta_line(std::string_view line, ShardMeta* out) {
  Cursor c{line};
  c.expect("meta");
  c.expect("shard");
  ShardMeta m;
  m.shard = static_cast<int>(c.u64());
  c.expect("wall");
  m.wall_seconds = c.dbl();
  c.expect("rss");
  m.peak_rss_bytes = c.u64();
  c.expect("users");
  m.users = c.u64();
  c.expect("blocks");
  m.blocks = c.u64();
  c.expect("end");
  if (!c.ok || !c.at_end()) return false;
  *out = m;
  return true;
}

std::string shard_file_name(int shard) {
  return "shard-" + std::to_string(shard);
}

CheckpointState load_checkpoint_dir(const std::string& dir) {
  CheckpointState state;
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return state;

  // Sort file names so the recovered state never depends on directory
  // iteration order (only duplicate-block resolution could see it, but
  // determinism is cheap here).
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().rfind("shard-", 0) == 0) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& path : files) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("block ", 0) == 0) {
        BlockSummary b;
        if (parse_block_line(line, &b) && !state.blocks.contains(b.block)) {
          state.blocks.emplace(b.block, std::move(b));
        }
      } else if (line.rfind("meta ", 0) == 0) {
        ShardMeta m;
        if (parse_meta_line(line, &m)) state.metas.push_back(m);
      }
      // Anything else (including a torn trailing line) is skipped.
    }
  }
  return state;
}

std::string fingerprint(const sim::SweepAggregator& agg) {
  std::ostringstream os;
  write_agg_tokens(os, agg);
  return std::move(os).str();
}

}  // namespace flexfetch::fleet
