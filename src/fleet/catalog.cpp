#include "fleet/catalog.hpp"

#include <utility>

#include "common/error.hpp"

namespace flexfetch::fleet {

workloads::ScenarioBundle make_scenario(std::size_t index, std::uint64_t seed,
                                        const workloads::ScenarioTuning& t) {
  switch (index) {
    case 0: return workloads::scenario_grep_make(seed, t);
    case 1: return workloads::scenario_mplayer(seed, t);
    case 2: return workloads::scenario_thunderbird(seed, t);
    case 3: return workloads::scenario_forced_spinup(seed, t);
    case 4: return workloads::scenario_stale_acroread(seed, t);
    default:
      throw ConfigError("catalog: scenario index out of range");
  }
}

ScenarioCatalog::ScenarioCatalog(std::uint64_t scenario_seed,
                                 std::vector<double> think_scales,
                                 workloads::ScenarioTuning base_tuning)
    : seed_(scenario_seed),
      think_scales_(std::move(think_scales)),
      base_(base_tuning),
      cache_(workloads::kScenarioCount * think_scales_.size()) {
  FF_REQUIRE(!think_scales_.empty(), "catalog: no think buckets");
}

const workloads::ScenarioBundle& ScenarioCatalog::bundle(
    std::size_t scenario, std::size_t think_bucket) {
  FF_REQUIRE(scenario < workloads::kScenarioCount,
             "catalog: scenario index out of range");
  FF_REQUIRE(think_bucket < think_scales_.size(),
             "catalog: think bucket out of range");
  auto& slot = cache_[scenario * think_scales_.size() + think_bucket];
  if (!slot) {
    workloads::ScenarioTuning t = base_;
    t.think_scale = base_.think_scale * think_scales_[think_bucket];
    slot = std::make_unique<workloads::ScenarioBundle>(
        make_scenario(scenario, seed_, t));
    ++built_;
  }
  return *slot;
}

}  // namespace flexfetch::fleet
