// Minimal fork/exec process fan-out for the multi-process fleet runner.
//
// The parent re-execs its own binary once per worker shard (argv carries
// the shard assignment), then waits for all of them. Process isolation —
// rather than threads — is deliberate: worker crashes cannot corrupt the
// parent, each shard's memory is bounded independently, the kernel
// reclaims everything on a kill, and the checkpoint protocol gets
// exercised for real (workers and parent share nothing but files).
#pragma once

#include <string>
#include <vector>

namespace flexfetch::fleet {

struct ProcessResult {
  /// Exit status (valid when !signaled); nonzero = worker failed.
  int exit_code = -1;
  bool signaled = false;
  int term_signal = 0;

  bool ok() const { return !signaled && exit_code == 0; }
};

/// Spawns one child per argv vector (argv[0] is the executable path) and
/// waits for every one; results index-align with `argvs`. Throws
/// SystemError-ish ConfigError if fork/exec plumbing itself fails.
std::vector<ProcessResult> run_processes(
    const std::vector<std::vector<std::string>>& argvs);

/// Path of the currently running executable (/proc/self/exe), for
/// self-re-exec. Throws ConfigError if unreadable.
std::string self_exe_path();

}  // namespace flexfetch::fleet
