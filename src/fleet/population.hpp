// Deterministic per-user parameter sampling for fleet-scale sweeps.
//
// A fleet run simulates N distinct users, each a point in the paper's
// parameter space: which scenario they run, how fast they work, how good
// their link is, how full their battery is, how complete their hoard is,
// and whether their session suffers injected faults. The population is a
// pure function of (spec, user index): user k's parameters come from an
// Rng seeded with seeds::derive_stream(master_seed, kFleetUserDomain, k),
// so ANY shard can regenerate ANY user without replaying the users before
// it. That independence is what makes the sharded runner (runner.hpp)
// embarrassingly parallel and its checkpoint/resume exact: a resumed
// shard re-derives exactly the users it owns, bit-for-bit.
//
// The sampling order inside user() is part of the determinism contract —
// reordering draws would silently re-roll every fleet artifact. Tests pin
// golden user parameters to catch that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/scenarios.hpp"

namespace flexfetch::fleet {

/// Distribution knobs for the synthetic user population. Defaults give a
/// plausible mixed fleet; benches override via flags. Weights need not be
/// normalised (only ratios matter) but must be non-negative with a
/// positive sum.
struct PopulationSpec {
  /// Root of the hierarchical seed tree. Every per-user stream, fault
  /// schedule and layout seed derives from this one value.
  std::uint64_t master_seed = 1;
  /// Structure seed handed to the scenario builders (all users share the
  /// same scenario *content* per (scenario, think bucket); what varies
  /// per user is everything else).
  std::uint64_t scenario_seed = 1;

  /// Mix over the five paper scenarios, in all_scenarios() order.
  std::vector<double> scenario_weights =
      std::vector<double>(workloads::kScenarioCount, 1.0);

  /// Policies users run, with their mix. Defaults to the four
  /// figure-table policies.
  std::vector<std::string> policies = {"disk-only", "bluefs", "flexfetch",
                                       "oracle"};
  /// Empty = uniform over `policies`.
  std::vector<double> policy_weights;

  /// Think-time scale is sampled lognormal(0, think_sigma) — median-1
  /// multiplicative user speed — then quantised to the nearest entry of
  /// `think_scales` so scenario traces are shared per bucket instead of
  /// rebuilt per user (see catalog.hpp).
  double think_sigma = 0.35;
  std::vector<double> think_scales = {0.5, 1.0, 2.0};

  /// Link latency: lognormal over milliseconds (median exp(mu)).
  double latency_log_mean_ms = 1.6;  ///< median ~5 ms
  double latency_log_sigma = 0.5;
  /// 802.11b rate the user's AP association settled at, and the mix
  /// (defaults skew toward the higher rates of a mostly-healthy fleet).
  std::vector<double> bandwidth_mbps = {1.0, 2.0, 5.5, 11.0};
  std::vector<double> bandwidth_weights = {1.0, 1.0, 2.0, 4.0};

  /// Hoard coverage: normal(mean, sigma) clamped to [0, 1]. Users below
  /// `sync_coverage_threshold` run with the replica sync daemon on
  /// (their hoard is too incomplete to assume the Section 5 no-sync
  /// idealisation).
  double hoard_mean = 0.8;
  double hoard_sigma = 0.15;
  double sync_coverage_threshold = 0.7;

  /// Battery level: uniform [battery_min, battery_max]. A fuller battery
  /// tolerates less performance loss, so the per-user loss-rate budget
  /// interpolates from loss_rate_full at 100% to loss_rate_empty at 0%.
  double battery_min = 0.05;
  double battery_max = 1.0;
  double loss_rate_full = 0.05;
  double loss_rate_empty = 0.5;

  /// Probability a user's session has an injected fault schedule (WNIC
  /// outages/degradations, spin-up stalls), seeded per user from the
  /// fault domain of the seed tree.
  double fault_probability = 0.25;
};

/// Everything the runner needs to build user k's sweep cell.
struct UserParams {
  std::uint64_t index = 0;
  /// The user's derived stream seed (doubles as their VFS layout seed).
  std::uint64_t stream_seed = 0;
  /// Index into all_scenarios() order.
  std::size_t scenario = 0;
  /// Index into PopulationSpec::policies.
  std::size_t policy = 0;
  /// Continuous lognormal draw (recorded for audit)...
  double think_scale = 1.0;
  /// ...and the bucket it quantised to (index into spec.think_scales).
  std::size_t think_bucket = 0;
  double latency_ms = 5.0;
  double bandwidth_mbps = 11.0;
  double hoard_coverage = 1.0;
  double battery_level = 1.0;
  /// 0 = fault-free session; nonzero seeds faults::generate_schedule.
  std::uint64_t fault_seed = 0;
};

/// Stateless-per-call generator: user(k) derives user k's parameters
/// from the spec alone. Copies are cheap; const calls are thread-safe.
class PopulationGenerator {
 public:
  /// Validates the spec (throws ConfigError on empty/negative mixes,
  /// inverted ranges, out-of-range probabilities).
  explicit PopulationGenerator(PopulationSpec spec);

  const PopulationSpec& spec() const { return spec_; }

  /// User k's parameters. Pure: depends only on (spec, k), never on
  /// which users were generated before — the shard-independence
  /// guarantee the fleet runner is built on.
  UserParams user(std::uint64_t k) const;

  /// The user's performance-loss budget: loss_rate_full at full battery
  /// interpolated to loss_rate_empty at zero.
  double loss_rate_for(const UserParams& u) const;

 private:
  PopulationSpec spec_;
  // Cumulative (unnormalised) weights, precomputed once.
  std::vector<double> scenario_cdf_;
  std::vector<double> policy_cdf_;
  std::vector<double> bandwidth_cdf_;
};

}  // namespace flexfetch::fleet
