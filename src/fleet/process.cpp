#include "fleet/process.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace flexfetch::fleet {

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  FF_REQUIRE(n > 0, "process: cannot read /proc/self/exe");
  buf[n] = '\0';
  return std::string(buf);
}

std::vector<ProcessResult> run_processes(
    const std::vector<std::vector<std::string>>& argvs) {
  std::vector<pid_t> pids;
  pids.reserve(argvs.size());

  for (const auto& argv : argvs) {
    FF_REQUIRE(!argv.empty(), "process: empty argv");
    // execv wants mutable char*; build the pointer table from stable
    // copies before forking so the child only calls async-signal-safe
    // functions.
    std::vector<std::string> args = argv;
    std::vector<char*> cargv;
    cargv.reserve(args.size() + 1);
    for (auto& a : args) cargv.push_back(a.data());
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    FF_REQUIRE(pid >= 0, std::string("process: fork failed: ") +
                             std::strerror(errno));
    if (pid == 0) {
      ::execv(cargv[0], cargv.data());
      // Exec failed; nothing sane to do in the child but die loudly.
      ::_exit(127);
    }
    pids.push_back(pid);
  }

  std::vector<ProcessResult> results(argvs.size());
  for (std::size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    pid_t waited = -1;
    do {
      waited = ::waitpid(pids[i], &status, 0);
    } while (waited < 0 && errno == EINTR);
    FF_REQUIRE(waited == pids[i], "process: waitpid failed");
    if (WIFEXITED(status)) {
      results[i].exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      results[i].signaled = true;
      results[i].term_signal = WTERMSIG(status);
    }
  }
  return results;
}

}  // namespace flexfetch::fleet
