// Exact, kill-safe serialization of partial fleet aggregates.
//
// A worker shard emits one line per completed user block: the block's
// SweepAggregator partial, serialized with every double in C99 hexfloat
// (%a) so the parse reconstructs the exact bit pattern — no decimal
// rounding anywhere in the save/load cycle. Lines are appended and
// flushed one at a time, so a killed worker leaves at most one PARTIAL
// trailing line; every line is terminated by an "end" sentinel and a
// newline, and the loader silently drops any line that fails to parse
// completely. Resume therefore never double-counts and never loses a
// completed block: the set of well-formed lines IS the set of durable
// blocks.
//
// The same serializer doubles as the bit-identity oracle: fingerprint()
// renders an aggregator to its canonical exact text, and two aggregators
// are bit-identical iff their fingerprints compare equal — this is the
// string the fleet bench's shard-merge identity gate diffs.
//
// Format (one record per line, space-separated tokens; stratum keys and
// metric names are whitespace-free by construction and enforced here):
//   block <idx> <lo> <hi> agg <cells> strata <n>
//     { key <key> cells <c>
//       stat <n> <mean> <m2> <min> <max>   x5 (energy, disk, wnic,
//                                             makespan, io_time)
//       metrics <m> { <name> <kind> <value> }*
//       hists <h> { <name> <count> <sum> <min> <max> nb <k> {<i> <v>}* }*
//     }* end
//   meta shard <w> wall <seconds> rss <bytes> users <n> blocks <n> end
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sweep.hpp"

namespace flexfetch::fleet {

/// The durable unit of fleet progress: the aggregate of one contiguous
/// user block [user_lo, user_hi).
struct BlockSummary {
  std::uint64_t block = 0;
  std::uint64_t user_lo = 0;
  std::uint64_t user_hi = 0;
  sim::SweepAggregator agg;
};

/// Per-shard run metadata, appended as the shard's final line.
struct ShardMeta {
  int shard = -1;
  double wall_seconds = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t users = 0;
  std::uint64_t blocks = 0;
};

/// Writes one block record (newline-terminated) in the exact format
/// above. Throws ConfigError if a stratum key or metric name contains
/// whitespace (would corrupt the token stream).
void write_block_line(std::ostream& os, const BlockSummary& summary);

/// Parses one line produced by write_block_line. Returns false (leaving
/// *out unspecified) on any malformed/truncated input — the loader's
/// partial-trailing-line tolerance.
bool parse_block_line(std::string_view line, BlockSummary* out);

void write_meta_line(std::ostream& os, const ShardMeta& meta);
bool parse_meta_line(std::string_view line, ShardMeta* out);

/// Everything recovered from a checkpoint directory.
struct CheckpointState {
  /// Completed blocks by block index (later duplicates of a block —
  /// possible when a resumed run re-lists a block an earlier run already
  /// wrote — are ignored; block contents are deterministic so any copy
  /// is as good as any other).
  std::map<std::uint64_t, BlockSummary> blocks;
  std::vector<ShardMeta> metas;
};

/// Name of shard w's checkpoint file within a checkpoint directory.
std::string shard_file_name(int shard);

/// Scans every "shard-*" file in `dir` (which may not exist — that is an
/// empty state, not an error) and returns all well-formed records.
/// Malformed lines are skipped, so a checkpoint written by a killed
/// worker loads cleanly. The scan accepts files from ANY worker count:
/// resume with a different --workers than the killed run is exact.
CheckpointState load_checkpoint_dir(const std::string& dir);

/// Canonical exact rendering of an aggregator (hexfloat doubles, sorted
/// strata). Equal strings <=> bit-identical aggregates; this is the
/// shard-merge identity gate's comparison key.
std::string fingerprint(const sim::SweepAggregator& agg);

}  // namespace flexfetch::fleet
