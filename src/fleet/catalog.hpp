// Lazy per-process cache of tuned scenario bundles.
//
// A fleet cell needs a ScenarioBundle for (scenario index, think bucket).
// Building a bundle is the expensive part of a cell (trace generation +
// compilation), so the catalog builds each distinct combination at most
// once per process and hands out stable const pointers — SweepCell holds
// a raw pointer into the catalog, which therefore must outlive every
// cell built from it. With the default 3 think buckets that is at most
// 15 bundles per worker process however many users stream through.
//
// Not thread-safe: each worker process (or the in-process baseline loop)
// owns its own catalog and runs cells sequentially.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/scenarios.hpp"

namespace flexfetch::fleet {

class ScenarioCatalog {
 public:
  /// `think_scales` are the population's quantisation buckets; a bundle
  /// for bucket b is built with tuning.think_scale = base.think_scale *
  /// think_scales[b] (workload_scale passes through unchanged).
  ScenarioCatalog(std::uint64_t scenario_seed,
                  std::vector<double> think_scales,
                  workloads::ScenarioTuning base_tuning);

  /// The bundle for (scenario, bucket), built on first use. The returned
  /// reference stays valid for the catalog's lifetime.
  const workloads::ScenarioBundle& bundle(std::size_t scenario,
                                          std::size_t think_bucket);

  std::size_t bundles_built() const { return built_; }

 private:
  std::uint64_t seed_;
  std::vector<double> think_scales_;
  workloads::ScenarioTuning base_;
  std::vector<std::unique_ptr<workloads::ScenarioBundle>> cache_;
  std::size_t built_ = 0;
};

/// Builds one paper scenario by all_scenarios() index (0 = grep+make ...
/// 4 = stale acroread). Throws ConfigError on an out-of-range index.
workloads::ScenarioBundle make_scenario(std::size_t index, std::uint64_t seed,
                                        const workloads::ScenarioTuning& t);

}  // namespace flexfetch::fleet
