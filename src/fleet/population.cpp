#include "fleet/population.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "energy/loss_curve.hpp"

namespace flexfetch::fleet {

namespace {

/// Builds the running-sum table of a weight vector. Throws unless every
/// weight is finite and non-negative with a positive total.
std::vector<double> cdf_of(const std::vector<double>& weights,
                           const char* what) {
  FF_REQUIRE(!weights.empty(), std::string("population: empty ") + what);
  std::vector<double> cdf(weights.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    FF_REQUIRE(std::isfinite(weights[i]) && weights[i] >= 0.0,
               std::string("population: bad weight in ") + what);
    sum += weights[i];
    cdf[i] = sum;
  }
  FF_REQUIRE(sum > 0.0, std::string("population: zero total weight in ") + what);
  return cdf;
}

/// Picks the first index whose cumulative weight exceeds u * total.
/// u in [0, 1); zero-weight entries are never picked.
std::size_t pick(const std::vector<double>& cdf, double u) {
  const double target = u * cdf.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1);
}

}  // namespace

PopulationGenerator::PopulationGenerator(PopulationSpec spec)
    : spec_(std::move(spec)) {
  FF_REQUIRE(spec_.scenario_weights.size() == workloads::kScenarioCount,
             "population: scenario_weights must cover every scenario");
  FF_REQUIRE(!spec_.policies.empty(), "population: no policies");
  FF_REQUIRE(spec_.policy_weights.empty() ||
                 spec_.policy_weights.size() == spec_.policies.size(),
             "population: policy_weights/policies size mismatch");
  FF_REQUIRE(!spec_.think_scales.empty(), "population: no think buckets");
  for (double s : spec_.think_scales) {
    FF_REQUIRE(s > 0.0, "population: think scale must be positive");
  }
  FF_REQUIRE(spec_.bandwidth_mbps.size() == spec_.bandwidth_weights.size(),
             "population: bandwidth_mbps/weights size mismatch");
  for (double mbps : spec_.bandwidth_mbps) {
    FF_REQUIRE(mbps > 0.0, "population: bandwidth must be positive");
  }
  FF_REQUIRE(spec_.think_sigma >= 0.0 && spec_.latency_log_sigma >= 0.0 &&
                 spec_.hoard_sigma >= 0.0,
             "population: negative sigma");
  FF_REQUIRE(spec_.battery_min >= 0.0 &&
                 spec_.battery_max <= 1.0 &&
                 spec_.battery_min <= spec_.battery_max,
             "population: battery range must be within [0, 1]");
  FF_REQUIRE(spec_.fault_probability >= 0.0 && spec_.fault_probability <= 1.0,
             "population: fault_probability must be a probability");
  FF_REQUIRE(spec_.loss_rate_full >= 0.0 && spec_.loss_rate_empty >= 0.0,
             "population: negative loss rate");

  scenario_cdf_ = cdf_of(spec_.scenario_weights, "scenario_weights");
  policy_cdf_ = cdf_of(spec_.policy_weights.empty()
                           ? std::vector<double>(spec_.policies.size(), 1.0)
                           : spec_.policy_weights,
                       "policy_weights");
  bandwidth_cdf_ = cdf_of(spec_.bandwidth_weights, "bandwidth_weights");
}

UserParams PopulationGenerator::user(std::uint64_t k) const {
  // One Rng per user, derived so user k is regenerable in isolation. The
  // draw ORDER below is frozen: changing it re-rolls every fleet result
  // (golden users are pinned in tests/test_fleet.cpp).
  Rng rng(seeds::derive_stream(spec_.master_seed, seeds::kFleetUserDomain, k));

  UserParams u;
  u.index = k;
  u.stream_seed =
      seeds::derive_stream(spec_.master_seed, seeds::kFleetUserDomain, k);
  u.scenario = pick(scenario_cdf_, rng.uniform());          // draw 1
  u.policy = pick(policy_cdf_, rng.uniform());              // draw 2
  u.think_scale = rng.lognormal(0.0, spec_.think_sigma);    // draw 3
  u.latency_ms =
      std::exp(rng.normal(spec_.latency_log_mean_ms,                // draw 4
                          spec_.latency_log_sigma));
  u.bandwidth_mbps = spec_.bandwidth_mbps[pick(bandwidth_cdf_,      // draw 5
                                               rng.uniform())];
  u.hoard_coverage = std::clamp(
      rng.normal(spec_.hoard_mean, spec_.hoard_sigma), 0.0, 1.0);   // draw 6
  u.battery_level =
      rng.uniform(spec_.battery_min, spec_.battery_max);            // draw 7
  if (rng.chance(spec_.fault_probability)) {                        // draw 8
    u.fault_seed =
        seeds::derive_stream(spec_.master_seed, seeds::kFleetFaultDomain, k);
  }

  // Quantise the continuous think draw to the nearest catalog bucket
  // (ties break to the lower index) so users share compiled traces.
  std::size_t best = 0;
  double best_dist = std::abs(u.think_scale - spec_.think_scales[0]);
  for (std::size_t i = 1; i < spec_.think_scales.size(); ++i) {
    const double d = std::abs(u.think_scale - spec_.think_scales[i]);
    if (d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  u.think_bucket = best;
  return u;
}

double PopulationGenerator::loss_rate_for(const UserParams& u) const {
  // Delegates to the shared linear curve so the fleet's battery->loss-rate
  // mapping and the adaptive policy family ("flexfetch-adaptive:linear")
  // are one formula. The curve's arithmetic is frozen to this module's
  // original interpolation; golden checkpoint digests pin it bit-for-bit.
  const energy::LinearCurve curve(spec_.loss_rate_full, spec_.loss_rate_empty);
  return curve.loss_rate(energy::BatteryState{.fraction = u.battery_level});
}

}  // namespace flexfetch::fleet
