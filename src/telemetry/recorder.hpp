// Per-simulator event recorder: leveled/sampled admission, a flat
// power-of-two ring of PackedRecords, and pre-aggregated histograms.
//
// Sweep-safety contract: one Recorder belongs to exactly one Simulator
// instance and is only touched from the thread running that simulation —
// there is no shared mutable state, so sweep cells with telemetry enabled
// can run concurrently. Event ordering is the emission order (seq), which
// is deterministic because the simulator itself is.
//
// Cost contract, per instrumentation point:
//  * telemetry off — one null-pointer branch (RecorderHandle).
//  * metrics-on (the default: ring_capacity == 0) — the admission branch
//    rejects every event before its argument expressions are evaluated
//    (see FF_EMIT_* in emit.hpp); only the fixed histogram folds run.
//  * ring capture (opt-in) — admitted events write one fixed-size
//    PackedRecord into a flat pre-allocated ring at (seq & mask): a
//    handful of stores, no per-argument loop, no allocation, no modulo.
//
// Admission is two-stage and deterministic: a per-category level mask
// (one compare), then an optional 1-in-N sampler driven by a counter
// whose phase is seeded per cell — the admitted set is a pure function
// of the (deterministic) emission sequence and the seed, so sweeps stay
// reproducible and serial == parallel bit-identity holds.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"

namespace flexfetch::telemetry {

/// Ring capacity handed to cells that opt into full event capture.
inline constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

/// Pre-aggregated hot-path histograms, folded per sample into fixed
/// enum-indexed slots (no name lookup on the emit path) and snapshotted
/// into the MetricsRegistry at the end of a run.
enum class HistId : std::uint8_t {
  kSyscallLatency,  ///< Per-syscall service delay (seconds).
  kDiskService,     ///< Per-request disk service time (seconds).
  kWnicService,     ///< Per-request WNIC service time (seconds).
  kDiskBytes,       ///< Per-request disk transfer size (bytes).
  kWnicBytes,       ///< Per-request WNIC transfer size (bytes).
  kSchedDepth,      ///< C-SCAN queue depth at batch dispatch.
  kMediumShare,     ///< Contended airtime share at bulk-transfer start.
  kServerQueueDelay,  ///< Server admission wait per queued transfer (s).
  kServerQueueDepth,  ///< Busy server slots seen at transfer arrival (>0).
  kCount,
};

inline constexpr std::size_t kHistCount =
    static_cast<std::size_t>(HistId::kCount);

/// Registry name of a built-in histogram ("hist.syscall_latency_s"...).
const char* hist_name(HistId id);

/// Telemetry knobs carried in SimConfig.
struct TelemetryConfig {
  bool enabled = false;
  /// Ring capacity in events, rounded up to a power of two; the oldest
  /// events are dropped beyond it. 0 — the default — is the metrics-only
  /// production path: no event is admitted (or even constructed), and
  /// counters/histograms are the whole telemetry product. Event capture
  /// is opt-in per cell (set kDefaultRingCapacity for full capture).
  std::size_t ring_capacity = 0;
  /// Per-category admission ceiling for ring capture: an event is
  /// admitted only when its site level is <= the mask entry for its
  /// category (0 silences a category). Defaults to full capture.
  std::array<std::uint8_t, kCategoryCount> category_levels{
      kLevelFull, kLevelFull, kLevelFull, kLevelFull, kLevelFull, kLevelFull,
      kLevelFull, kLevelFull, kLevelFull, kLevelFull, kLevelFull};
  /// Deterministic 1-in-N sampler applied after the level check: of every
  /// `sample_every` level-admitted events, exactly one is recorded. 1 (the
  /// default) disables sampling — required for byte-identical full capture.
  std::uint32_t sample_every = 1;
  /// Seeds the sampler's phase (which of each N events survives), so
  /// distinct sweep cells can sample different offsets while every rerun
  /// of one cell admits the identical set.
  std::uint64_t sample_seed = 0;

  /// Caps every category at `level` (0 silences all ring capture).
  void set_level(std::uint8_t level) { category_levels.fill(level); }
};

class Recorder {
 public:
  explicit Recorder(const TelemetryConfig& config);
  /// Test/tooling convenience: full-level capture, no sampling.
  explicit Recorder(std::size_t capacity = kDefaultRingCapacity);

  /// The single admission gate: level mask, then the 1-in-N sampler.
  /// Callers must gate emission (and argument evaluation) on this — see
  /// the FF_EMIT_* macros in emit.hpp, which guarantee it.
  bool admits(const EventDesc& d) {
    if (static_cast<std::uint8_t>(d.level) >
        level_of_[static_cast<std::size_t>(d.category)]) {
      return false;
    }
    if (sample_every_ <= 1) return true;
    return sample_tick_++ % sample_every_ == sample_phase_;
  }

  template <typename... A>
  void instant(const EventDesc& d, Seconds t, A... args) {
    static_assert(sizeof...(A) <= kMaxArgs);
    PackedRecord r{};
    r.desc = &d;
    r.start_s = t.value();
    pack_args(r, args...);
    push(r);
  }

  template <typename... A>
  void span(const EventDesc& d, Seconds start, Seconds end, A... args) {
    static_assert(sizeof...(A) <= kMaxArgs);
    PackedRecord r{};
    r.desc = &d;
    r.start_s = start.value();
    r.extra = end > start ? (end - start).value() : 0.0;
    pack_args(r, args...);
    push(r);
  }

  /// Span whose name varies per emission (device power-state spans).
  void span_named(const EventDesc& d, const char* name, Seconds start,
                  Seconds end) {
    PackedRecord r{};
    r.desc = &d;
    r.name = name;
    r.start_s = start.value();
    r.extra = end > start ? (end - start).value() : 0.0;
    push(r);
  }

  void counter(const EventDesc& d, Seconds t, double value) {
    PackedRecord r{};
    r.desc = &d;
    r.start_s = t.value();
    r.extra = value;
    push(r);
  }

  /// Built-in pre-aggregated histogram (see HistId). Folding a sample is
  /// an array index + Histogram::record — no admission, no allocation.
  Histogram& hist(HistId id) {
    return hist_[static_cast<std::size_t>(id)];
  }
  const Histogram& hist(HistId id) const {
    return hist_[static_cast<std::size_t>(id)];
  }
  /// Snapshots every non-empty built-in histogram into `m` under its
  /// hist_name.
  void export_histograms(MetricsRegistry& m) const;

  std::size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  std::size_t size() const { return static_cast<std::size_t>(count_ - first_); }
  /// Total events ever admitted, including since-dropped ones.
  std::uint64_t emitted() const { return count_; }
  /// Events overwritten (or, with no ring, discarded) before a drain saw
  /// them. Drained events are delivered, not dropped.
  std::uint64_t dropped() const { return dropped_; }

  /// Retained events, unpacked, in emission (seq) order.
  std::vector<TraceEvent> events() const;
  /// events(), then clears the ring (tallies survive).
  std::vector<TraceEvent> take_events();

  void clear();

 private:
  template <typename... A>
  static void pack_args(PackedRecord& r, A... args) {
    // Compile-time unrolled stores — the "no per-arg loop" contract.
    std::size_t i = 0;
    ((r.payload[i++] = pack_word(args)), ...);
    (void)i;
  }

  void push(const PackedRecord& r) {
    if (capacity_ == 0) {
      // Direct emission against a capture-less recorder still tallies
      // (the admission mask normally rejects long before this).
      ++count_;
      ++first_;
      ++dropped_;
      return;
    }
    if (count_ - first_ == capacity_) {
      // Full: this write lands on the oldest live record's slot
      // (first_ & mask_ == count_ & mask_ exactly when the window spans
      // the whole ring), evicting it unseen.
      ++first_;
      ++dropped_;
    }
    ring_[count_ & mask_] = r;
    ++count_;
  }

  std::size_t capacity_ = 0;  ///< Power of two (or 0: no ring).
  std::uint64_t mask_ = 0;    ///< capacity_ - 1.
  /// Flat pre-allocated ring; slot of record #n is n & mask_.
  std::unique_ptr<PackedRecord[]> ring_;
  std::uint64_t count_ = 0;    ///< Records ever pushed; also the next seq.
  std::uint64_t first_ = 0;    ///< Seq of the oldest retained record.
  std::uint64_t dropped_ = 0;  ///< Records evicted before any drain saw them.

  std::array<std::uint8_t, kCategoryCount> level_of_{};
  std::uint32_t sample_every_ = 1;
  std::uint64_t sample_phase_ = 0;
  std::uint64_t sample_tick_ = 0;

  std::array<Histogram, kHistCount> hist_{};
};

/// Non-owning attachment of an instrumented component to a Recorder that
/// deliberately does not survive copying: device models are copied
/// wholesale for estimation and shadow replay (Section 2.2 of the paper),
/// and those hypothetical worlds must stay silent. The null check is the
/// telemetry-off fast path — one predictable branch per instrumentation
/// point.
class RecorderHandle {
 public:
  RecorderHandle() = default;
  RecorderHandle(const RecorderHandle& /*other*/) noexcept : rec_(nullptr) {}
  RecorderHandle& operator=(const RecorderHandle& other) noexcept {
    if (this != &other) rec_ = nullptr;
    return *this;
  }

  void attach(Recorder* rec) { rec_ = rec; }
  Recorder* get() const { return rec_; }
  explicit operator bool() const { return rec_ != nullptr; }
  Recorder* operator->() const { return rec_; }

 private:
  Recorder* rec_ = nullptr;
};

}  // namespace flexfetch::telemetry
