// Per-simulator event recorder: a bounded ring buffer of TraceEvents.
//
// Sweep-safety contract: one Recorder belongs to exactly one Simulator
// instance and is only touched from the thread running that simulation —
// there is no shared mutable state, so sweep cells with telemetry enabled
// can run concurrently. Event ordering is the emission order (seq), which
// is deterministic because the simulator itself is.
//
// Cost contract: when no recorder is attached, every instrumentation point
// reduces to a single null-pointer branch (see RecorderHandle); when one
// is attached, emitting copies a fixed-size struct into the ring — no
// allocation past the ring's growth to capacity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "telemetry/event.hpp"

namespace flexfetch::telemetry {

/// Telemetry knobs carried in SimConfig.
struct TelemetryConfig {
  bool enabled = false;
  /// Ring capacity in events; the oldest events are dropped beyond it.
  /// 0 = metrics-only mode: instrumentation runs (so counters and drop
  /// tallies stay exact) but no event is retained — what sweeps use to
  /// collect per-cell metrics without holding hundreds of event buffers.
  std::size_t ring_capacity = std::size_t{1} << 16;
};

class Recorder {
 public:
  explicit Recorder(std::size_t capacity = std::size_t{1} << 16);

  void instant(Category c, const char* name, std::uint32_t trk, Seconds t,
               std::initializer_list<Arg> args = {});
  void span(Category c, const char* name, std::uint32_t trk, Seconds start,
            Seconds end, std::initializer_list<Arg> args = {});
  void counter(Category c, const char* name, std::uint32_t trk, Seconds t,
               double value);
  void emit(TraceEvent ev);

  std::size_t capacity() const { return capacity_; }
  /// Events currently retained (<= capacity).
  std::size_t size() const { return buf_.size(); }
  /// Total events ever emitted, including dropped ones.
  std::uint64_t emitted() const { return next_seq_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Retained events in emission (seq) order.
  std::vector<TraceEvent> events() const;
  /// Moves the retained events out (emission order) and clears the ring.
  std::vector<TraceEvent> take_events();

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> buf_;  ///< Grows to capacity, then wraps.
  std::size_t head_ = 0;         ///< Next overwrite position once full.
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Non-owning attachment of an instrumented component to a Recorder that
/// deliberately does not survive copying: device models are copied
/// wholesale for estimation and shadow replay (Section 2.2 of the paper),
/// and those hypothetical worlds must stay silent. The null check is the
/// telemetry-off fast path — one predictable branch per instrumentation
/// point.
class RecorderHandle {
 public:
  RecorderHandle() = default;
  RecorderHandle(const RecorderHandle& /*other*/) noexcept : rec_(nullptr) {}
  RecorderHandle& operator=(const RecorderHandle& other) noexcept {
    if (this != &other) rec_ = nullptr;
    return *this;
  }

  void attach(Recorder* rec) { rec_ = rec; }
  Recorder* get() const { return rec_; }
  explicit operator bool() const { return rec_ != nullptr; }
  Recorder* operator->() const { return rec_; }

 private:
  Recorder* rec_ = nullptr;
};

}  // namespace flexfetch::telemetry
