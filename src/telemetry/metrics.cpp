#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace flexfetch::telemetry {

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // Zeros, negatives, and NaN underflow.
  int exp = 0;
  // frexp: v = m * 2^exp with m in [0.5, 1) — so v < 2^exp <= 2v, and
  // bucket b = exp - kMinExp covers [2^(b+kMinExp-1), 2^(b+kMinExp)).
  (void)std::frexp(v, &exp);
  const int b = exp - kMinExp;
  if (b < 0) return 0;
  if (b >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(b);
}

double Histogram::bucket_upper_edge(std::size_t b) {
  return std::ldexp(1.0, static_cast<int>(b) + kMinExp);
}

void Histogram::record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucket_of(v)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

Metric& MetricsRegistry::touch(std::string_view name, MetricKind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Metric{0.0, kind}).first;
  } else {
    FF_REQUIRE(it->second.kind == kind,
               "metrics: '" + it->first + "' used with two different kinds");
  }
  return it->second;
}

void MetricsRegistry::add(std::string_view name, double delta) {
  touch(name, MetricKind::kCounter).value += delta;
}

void MetricsRegistry::set(std::string_view name, double value) {
  touch(name, MetricKind::kGauge).value = value;
}

void MetricsRegistry::set_max(std::string_view name, double value) {
  Metric& m = touch(name, MetricKind::kMax);
  m.value = std::max(m.value, value);
}

double MetricsRegistry::value(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.value : 0.0;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return metrics_.contains(name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::restore(std::string_view name, MetricKind kind,
                              double value) {
  touch(name, kind).value = value;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, m] : other.metrics_) {
    Metric& mine = touch(name, m.kind);
    switch (m.kind) {
      case MetricKind::kCounter: mine.value += m.value; break;
      case MetricKind::kGauge: mine.value = m.value; break;
      case MetricKind::kMax: mine.value = std::max(mine.value, m.value); break;
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).merge(h);
  }
}

}  // namespace flexfetch::telemetry
