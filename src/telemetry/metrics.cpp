#include "telemetry/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace flexfetch::telemetry {

Metric& MetricsRegistry::touch(std::string_view name, MetricKind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Metric{0.0, kind}).first;
  } else {
    FF_REQUIRE(it->second.kind == kind,
               "metrics: '" + it->first + "' used with two different kinds");
  }
  return it->second;
}

void MetricsRegistry::add(std::string_view name, double delta) {
  touch(name, MetricKind::kCounter).value += delta;
}

void MetricsRegistry::set(std::string_view name, double value) {
  touch(name, MetricKind::kGauge).value = value;
}

void MetricsRegistry::set_max(std::string_view name, double value) {
  Metric& m = touch(name, MetricKind::kMax);
  m.value = std::max(m.value, value);
}

double MetricsRegistry::value(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.value : 0.0;
}

bool MetricsRegistry::contains(std::string_view name) const {
  return metrics_.contains(name);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, m] : other.metrics_) {
    Metric& mine = touch(name, m.kind);
    switch (m.kind) {
      case MetricKind::kCounter: mine.value += m.value; break;
      case MetricKind::kGauge: mine.value = m.value; break;
      case MetricKind::kMax: mine.value = std::max(mine.value, m.value); break;
    }
  }
}

}  // namespace flexfetch::telemetry
