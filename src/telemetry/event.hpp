// Structured trace events — the unit of the telemetry subsystem.
//
// Every instrumented component of the simulator (device power models, the
// VFS substrates, the FlexFetch core, the simulator loop itself) describes
// what happened as a trace event: an instant, a [start, end) span, or a
// counter sample, tagged with a category and placed on a named timeline
// track.
//
// The subsystem has two event representations:
//
//  * EventDesc + PackedRecord — the emission-side pair. Every
//    instrumentation *site* owns one static constexpr EventDesc (name,
//    category, phase, admission level, track, argument keys); emitting an
//    event writes one fixed-size POD PackedRecord (descriptor pointer +
//    timestamps + raw 8-byte payload words) into the recorder's flat ring.
//    There is no per-argument loop, no allocation, and no branch past the
//    admission check on this path.
//
//  * TraceEvent — the export-side view: self-describing, with typed Arg
//    key/value pairs, produced by unpacking PackedRecords when a ring is
//    drained. Exporters, tests, and the audit consume this form; it is
//    never constructed on the hot path.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/units.hpp"

namespace flexfetch::telemetry {

/// Which subsystem emitted the event (the Chrome-trace "cat" field).
enum class Category : std::uint8_t {
  kSim,        ///< Simulator event loop (syscall service spans).
  kDisk,       ///< Disk power model.
  kWnic,       ///< WNIC power model.
  kCache,      ///< Buffer cache.
  kWriteback,  ///< Flush daemon / synchronous eviction flushes.
  kScheduler,  ///< C-SCAN elevator.
  kPolicy,     ///< Data-source policy (FlexFetch decisions, audits...).
  kFault,      ///< Injected faults (outages, stalls) and fault reactions.
  kMedium,     ///< Shared 802.11 medium (airtime contention).
  kServer,     ///< Remote server slots / admission queueing.
  kBattery,    ///< Battery model (level, drain estimate, loss rate).
};

inline constexpr std::size_t kCategoryCount = 11;

const char* to_string(Category c);

enum class Phase : std::uint8_t {
  kInstant,  ///< A point in time.
  kSpan,     ///< A [start, start+duration] interval.
  kCounter,  ///< A sampled value (queue depth, dirty pages...).
};

/// Event admission levels, cheapest story first. An event is admitted to
/// the ring only when its level is <= the configured level for its
/// category; level 0 in the mask silences a category entirely.
enum class Level : std::uint8_t {
  kKey = 1,      ///< Policy decisions, stage transitions, faults.
  kDetail = 2,   ///< Per-request I/O spans, device power-state spans.
  kVerbose = 3,  ///< Per-syscall spans and counter samples.
};

/// The highest level: admits every instrumented site ("full capture").
inline constexpr std::uint8_t kLevelFull = static_cast<std::uint8_t>(Level::kVerbose);

/// Timeline lanes ("tid" in the Chrome trace): one per instrument so the
/// power-state story of each device reads as an uninterrupted bar.
namespace track {
inline constexpr std::uint32_t kSim = 0;
inline constexpr std::uint32_t kDiskPower = 1;
inline constexpr std::uint32_t kDiskIo = 2;
inline constexpr std::uint32_t kWnicPower = 3;
inline constexpr std::uint32_t kWnicIo = 4;
inline constexpr std::uint32_t kWriteback = 5;
inline constexpr std::uint32_t kScheduler = 6;
inline constexpr std::uint32_t kPolicy = 7;
inline constexpr std::uint32_t kFault = 8;
inline constexpr std::uint32_t kMedium = 9;
inline constexpr std::uint32_t kServer = 10;
inline constexpr std::uint32_t kBattery = 11;
inline constexpr std::uint32_t kCount = 12;
}  // namespace track

const char* track_name(std::uint32_t track);

/// One key/value annotation of the export-side TraceEvent view. Keys and
/// string values must be string literals (or otherwise outlive every use
/// of the event): events store raw pointers so unpacking never copies.
struct Arg {
  const char* key = nullptr;
  const char* str = nullptr;  ///< nullptr = numeric argument.
  double num = 0.0;
};

constexpr Arg num_arg(const char* key, double value) {
  return Arg{key, nullptr, value};
}
constexpr Arg str_arg(const char* key, const char* value) {
  return Arg{key, value, 0.0};
}

inline constexpr std::size_t kMaxArgs = 6;

/// Static descriptor of one instrumentation site: everything about an
/// event that does not change between emissions. Sites define one
/// `static constexpr EventDesc` and pass only the dynamic values (time,
/// argument payloads) at emit time, so the per-event record stays small
/// and argument *keys* are never touched on the hot path.
struct EventDesc {
  const char* name = "";  ///< String literal (default; overridable per emit).
  Category category = Category::kSim;
  Phase phase = Phase::kInstant;
  Level level = Level::kDetail;
  std::uint8_t n_args = 0;
  /// Bit i set = argument i carries a `const char*` (string literal)
  /// payload instead of a double.
  std::uint8_t str_mask = 0;
  std::uint32_t track = track::kSim;
  std::array<const char*, kMaxArgs> keys{};
};

/// Payload word encoding: doubles and string-literal pointers are stored
/// as raw 8-byte words; the descriptor's str_mask says which is which.
inline std::uint64_t pack_word(double v) {
  return std::bit_cast<std::uint64_t>(v);
}
inline std::uint64_t pack_word(const char* s) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(s));
}

/// The fixed-size binary record the emission hot path writes: one
/// descriptor pointer, an optional dynamic name, two timestamp/value
/// doubles and the raw payload words. POD, 80 bytes, trivially copyable —
/// ring writes are a handful of stores with no per-argument loop.
///
/// Deliberately no default member initializers: the recorder's ring is
/// allocated with make_unique_for_overwrite, and a trivial default
/// constructor is what keeps that allocation from writing every ring byte
/// up front. Emission always value-initializes (`PackedRecord r{};`) the
/// one record it fills.
struct PackedRecord {
  const EventDesc* desc;
  /// Usually desc->name; device power-state spans substitute the state
  /// name ("idle", "standby"...) per emission.
  const char* name;
  double start_s;
  /// Span: duration in seconds. Counter: sampled value. Instant: unused.
  double extra;
  std::array<std::uint64_t, kMaxArgs> payload;
};

static_assert(std::is_trivially_copyable_v<PackedRecord>);
static_assert(std::is_trivially_default_constructible_v<PackedRecord>);
static_assert(sizeof(PackedRecord) == 32 + 8 * kMaxArgs);

/// The export-side view of one recorded event: self-describing, ordered by
/// `seq` (emission order within one Recorder — the deterministic
/// tie-breaker for events sharing a timestamp).
struct TraceEvent {
  const char* name = "";  ///< String literal.
  Category category = Category::kSim;
  Phase phase = Phase::kInstant;
  std::uint8_t n_args = 0;
  std::uint32_t track = track::kSim;
  std::uint64_t seq = 0;
  Seconds start = Seconds{0.0};
  Seconds duration = Seconds{0.0};  ///< kSpan only.
  double value = 0.0;               ///< kCounter only.
  std::array<Arg, kMaxArgs> args{};

  Seconds end() const { return start + duration; }
};

/// Expands a PackedRecord back into the self-describing export view.
/// `seq` is reconstructed by the caller from the ring position (the ring
/// is append-ordered, so records need not carry their sequence number).
TraceEvent unpack(const PackedRecord& rec, std::uint64_t seq);

}  // namespace flexfetch::telemetry
