// Structured trace events — the unit of the telemetry subsystem.
//
// Every instrumented component of the simulator (device power models, the
// VFS substrates, the FlexFetch core, the simulator loop itself) describes
// what happened as a typed TraceEvent: an instant, a [start, end) span, or
// a counter sample, tagged with a category and placed on a named timeline
// track. Events are plain values holding only numbers and pointers to
// string literals, so emitting one never allocates and recorded events can
// outlive the simulator that produced them.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/units.hpp"

namespace flexfetch::telemetry {

/// Which subsystem emitted the event (the Chrome-trace "cat" field).
enum class Category : std::uint8_t {
  kSim,        ///< Simulator event loop (syscall service spans).
  kDisk,       ///< Disk power model.
  kWnic,       ///< WNIC power model.
  kCache,      ///< Buffer cache.
  kWriteback,  ///< Flush daemon / synchronous eviction flushes.
  kScheduler,  ///< C-SCAN elevator.
  kPolicy,     ///< Data-source policy (FlexFetch decisions, audits...).
  kFault,      ///< Injected faults (outages, stalls) and fault reactions.
};

const char* to_string(Category c);

enum class Phase : std::uint8_t {
  kInstant,  ///< A point in time.
  kSpan,     ///< A [start, start+duration] interval.
  kCounter,  ///< A sampled value (queue depth, dirty pages...).
};

/// Timeline lanes ("tid" in the Chrome trace): one per instrument so the
/// power-state story of each device reads as an uninterrupted bar.
namespace track {
inline constexpr std::uint32_t kSim = 0;
inline constexpr std::uint32_t kDiskPower = 1;
inline constexpr std::uint32_t kDiskIo = 2;
inline constexpr std::uint32_t kWnicPower = 3;
inline constexpr std::uint32_t kWnicIo = 4;
inline constexpr std::uint32_t kWriteback = 5;
inline constexpr std::uint32_t kScheduler = 6;
inline constexpr std::uint32_t kPolicy = 7;
inline constexpr std::uint32_t kFault = 8;
inline constexpr std::uint32_t kCount = 9;
}  // namespace track

const char* track_name(std::uint32_t track);

/// One key/value annotation. Keys and string values must be string
/// literals (or otherwise outlive every use of the event): events store
/// raw pointers so the emission hot path never copies or allocates.
struct Arg {
  const char* key = nullptr;
  const char* str = nullptr;  ///< nullptr = numeric argument.
  double num = 0.0;
};

constexpr Arg num_arg(const char* key, double value) {
  return Arg{key, nullptr, value};
}
constexpr Arg str_arg(const char* key, const char* value) {
  return Arg{key, value, 0.0};
}

inline constexpr std::size_t kMaxArgs = 6;

struct TraceEvent {
  const char* name = "";  ///< String literal.
  Category category = Category::kSim;
  Phase phase = Phase::kInstant;
  std::uint8_t n_args = 0;
  std::uint32_t track = track::kSim;
  /// Global emission order within one Recorder — the deterministic
  /// tie-breaker for events sharing a timestamp.
  std::uint64_t seq = 0;
  Seconds start = Seconds{0.0};
  Seconds duration = Seconds{0.0};  ///< kSpan only.
  double value = 0.0;      ///< kCounter only.
  std::array<Arg, kMaxArgs> args{};

  Seconds end() const { return start + duration; }
};

}  // namespace flexfetch::telemetry
