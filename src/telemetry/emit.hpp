// Admission-gated emission macros.
//
// Instrumentation sites must not pay for events that are rejected — in
// particular, argument expressions (to_string(state), depth arithmetic,
// unit conversions) must never be evaluated for an event the recorder
// would discard. A function call cannot promise that (arguments are
// evaluated before the call), so the gate is a macro: one null check, one
// admits() check, and only then the emission call with its arguments.
//
// REC is any expression yielding `telemetry::Recorder*` (possibly null):
// `ctx.recorder()` for policies, `telem_.get()` for device handles.
// DESC must be the site's `static constexpr EventDesc`; it is evaluated
// twice (it is an lvalue naming, not an expression with effects).
//
// Usage:
//   FF_EMIT_INSTANT(ctx.recorder(), kDecisionDesc, now, stage_no, choice);
//   FF_EMIT_SPAN(telem_.get(), kDiskIoDesc, start, end, lba, bytes);
//   FF_EMIT_SPAN_NAMED(telem_.get(), kPowerDesc, to_string(state), t0, t1);
//   FF_EMIT_COUNTER(rec, kDepthDesc, now, depth);
#pragma once

#include "telemetry/recorder.hpp"

// NOLINTBEGIN(cppcoreguidelines-macro-usage) — lazy argument evaluation is
// the point; a function cannot provide it.

#define FF_EMIT_INSTANT(REC, DESC, /*t, args...*/...)                \
  do {                                                               \
    ::flexfetch::telemetry::Recorder* ff_emit_rec_ = (REC);          \
    if (ff_emit_rec_ != nullptr && ff_emit_rec_->admits(DESC)) {     \
      ff_emit_rec_->instant((DESC), __VA_ARGS__);                    \
    }                                                                \
  } while (0)

#define FF_EMIT_SPAN(REC, DESC, /*start, end, args...*/...)          \
  do {                                                               \
    ::flexfetch::telemetry::Recorder* ff_emit_rec_ = (REC);          \
    if (ff_emit_rec_ != nullptr && ff_emit_rec_->admits(DESC)) {     \
      ff_emit_rec_->span((DESC), __VA_ARGS__);                       \
    }                                                                \
  } while (0)

#define FF_EMIT_SPAN_NAMED(REC, DESC, NAME, START, END)              \
  do {                                                               \
    ::flexfetch::telemetry::Recorder* ff_emit_rec_ = (REC);          \
    if (ff_emit_rec_ != nullptr && ff_emit_rec_->admits(DESC)) {     \
      ff_emit_rec_->span_named((DESC), (NAME), (START), (END));      \
    }                                                                \
  } while (0)

#define FF_EMIT_COUNTER(REC, DESC, T, VALUE)                         \
  do {                                                               \
    ::flexfetch::telemetry::Recorder* ff_emit_rec_ = (REC);          \
    if (ff_emit_rec_ != nullptr && ff_emit_rec_->admits(DESC)) {     \
      ff_emit_rec_->counter((DESC), (T), (VALUE));                   \
    }                                                                \
  } while (0)

// NOLINTEND(cppcoreguidelines-macro-usage)
