// Trace exporters: Chrome trace_event JSON (chrome://tracing, Perfetto)
// and a compact human-readable text timeline.
#pragma once

#include <iosfwd>
#include <span>

#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"

namespace flexfetch::telemetry {

class Recorder;

/// Writes the events as a Chrome trace_event JSON object (the "JSON Object
/// Format": {"traceEvents": [...], ...}), loadable by chrome://tracing and
/// ui.perfetto.dev. Timestamps are converted from simulated seconds to the
/// format's microseconds. Metrics, when given, ride along in "otherData".
/// Output is deterministic: events are written in emission (seq) order and
/// metrics in sorted-name order.
void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::uint64_t dropped = 0,
                        const MetricsRegistry* metrics = nullptr);

/// Convenience overload over a live recorder.
void write_chrome_trace(std::ostream& os, const Recorder& recorder,
                        const MetricsRegistry* metrics = nullptr);

/// Writes a line-per-event text timeline ordered by (time, seq) — the
/// quick-look counterpart of the Chrome trace.
void write_text_timeline(std::ostream& os, std::span<const TraceEvent> events);

}  // namespace flexfetch::telemetry
