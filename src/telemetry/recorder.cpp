#include "telemetry/recorder.hpp"

#include <algorithm>

namespace flexfetch::telemetry {

namespace {

void copy_args(TraceEvent& ev, std::initializer_list<Arg> args) {
  const std::size_t n = std::min(args.size(), kMaxArgs);
  std::copy_n(args.begin(), n, ev.args.begin());
  ev.n_args = static_cast<std::uint8_t>(n);
}

}  // namespace

Recorder::Recorder(std::size_t capacity) : capacity_(capacity) {}

void Recorder::emit(TraceEvent ev) {
  ev.seq = next_seq_++;
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  if (buf_.size() < capacity_) {
    buf_.push_back(ev);
    return;
  }
  buf_[head_] = ev;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Recorder::instant(Category c, const char* name, std::uint32_t trk,
                       Seconds t, std::initializer_list<Arg> args) {
  TraceEvent ev;
  ev.name = name;
  ev.category = c;
  ev.phase = Phase::kInstant;
  ev.track = trk;
  ev.start = t;
  copy_args(ev, args);
  emit(ev);
}

void Recorder::span(Category c, const char* name, std::uint32_t trk,
                    Seconds start, Seconds end,
                    std::initializer_list<Arg> args) {
  TraceEvent ev;
  ev.name = name;
  ev.category = c;
  ev.phase = Phase::kSpan;
  ev.track = trk;
  ev.start = start;
  ev.duration = end > start ? end - start : Seconds{};
  copy_args(ev, args);
  emit(ev);
}

void Recorder::counter(Category c, const char* name, std::uint32_t trk,
                       Seconds t, double value) {
  TraceEvent ev;
  ev.name = name;
  ev.category = c;
  ev.phase = Phase::kCounter;
  ev.track = trk;
  ev.start = t;
  ev.value = value;
  emit(ev);
}

std::vector<TraceEvent> Recorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buf_.size());
  if (buf_.size() == capacity_ && capacity_ > 0) {
    // Full ring: the oldest retained event sits at head_.
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
               buf_.end());
    out.insert(out.end(), buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
  } else {
    out = buf_;
  }
  return out;
}

std::vector<TraceEvent> Recorder::take_events() {
  std::vector<TraceEvent> out = events();
  buf_.clear();
  head_ = 0;
  return out;
}

void Recorder::clear() {
  buf_.clear();
  head_ = 0;
  next_seq_ = 0;
  dropped_ = 0;
}

}  // namespace flexfetch::telemetry
