#include "telemetry/recorder.hpp"

#include <bit>

namespace flexfetch::telemetry {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  if (n <= 1) return n;
  return std::bit_ceil(n);
}

TelemetryConfig full_capture_config(std::size_t capacity) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = capacity;
  return cfg;
}

}  // namespace

const char* hist_name(HistId id) {
  switch (id) {
    case HistId::kSyscallLatency: return "hist.syscall_latency_s";
    case HistId::kDiskService: return "hist.disk_service_s";
    case HistId::kWnicService: return "hist.wnic_service_s";
    case HistId::kDiskBytes: return "hist.disk_request_bytes";
    case HistId::kWnicBytes: return "hist.wnic_request_bytes";
    case HistId::kSchedDepth: return "hist.sched_depth";
    case HistId::kMediumShare: return "hist.medium_share";
    case HistId::kServerQueueDelay: return "hist.server_queue_wait_s";
    case HistId::kServerQueueDepth: return "hist.server_queue_depth";
    case HistId::kCount: break;
  }
  return "?";
}

Recorder::Recorder(const TelemetryConfig& config)
    : capacity_(round_up_pow2(config.ring_capacity)),
      mask_(capacity_ > 0 ? capacity_ - 1 : 0),
      sample_every_(config.sample_every > 0 ? config.sample_every : 1),
      sample_phase_(sample_every_ > 1 ? config.sample_seed % sample_every_
                                      : 0) {
  if (capacity_ > 0) {
    // for_overwrite: the ring starts uninitialised — only slots in
    // [first_, count_) are ever read, and each has been written first.
    ring_ = std::make_unique_for_overwrite<PackedRecord[]>(capacity_);
    level_of_ = config.category_levels;
  }
  // capacity 0 leaves every category level at 0: no event is admitted, so
  // the FF_EMIT_* gates skip record construction entirely (metrics-only).
}

Recorder::Recorder(std::size_t capacity)
    : Recorder(full_capture_config(capacity)) {}

void Recorder::export_histograms(MetricsRegistry& m) const {
  for (std::size_t i = 0; i < kHistCount; ++i) {
    if (hist_[i].empty()) continue;
    m.histogram(hist_name(static_cast<HistId>(i))).merge(hist_[i]);
  }
}

std::vector<TraceEvent> Recorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  // The ring is append-ordered: record #s lives at slot s & mask_.
  for (std::uint64_t seq = first_; seq < count_; ++seq) {
    out.push_back(unpack(ring_[seq & mask_], seq));
  }
  return out;
}

std::vector<TraceEvent> Recorder::take_events() {
  std::vector<TraceEvent> out = events();
  // The drained events were delivered, not dropped: advance the retained
  // window past them and leave the tallies alone.
  first_ = count_;
  return out;
}

void Recorder::clear() {
  count_ = 0;
  first_ = 0;
  dropped_ = 0;
  sample_tick_ = 0;
  for (auto& h : hist_) h = Histogram{};
}

}  // namespace flexfetch::telemetry
