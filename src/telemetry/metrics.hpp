// Named counters, gauges, and fixed-bucket histograms with deterministic
// ordering and merge.
//
// The registry is the aggregate face of telemetry: at the end of a run the
// simulator snapshots every substrate's statistics into one flat namespace
// ("cache.hits", "disk.spin_ups", "ff.audit_overrides"...) so sweeps can
// carry per-cell metrics in their results and merge them across cells.
// Keys are kept sorted (std::map), so iteration — and therefore every
// exporter — is deterministic.
//
// Histograms are the pre-aggregated face of what full event capture would
// record per event: fixed power-of-two buckets (so merging two histograms
// is a bucket-wise integer add — exact and associative), plus exact count
// and min/max and a running sum. The simulator folds hot-path samples
// (per-syscall latency, per-request device service times...) straight into
// histograms instead of materialising events, which is what makes
// metrics-on telemetry cheap enough to leave on for every cell of a
// fleet-scale sweep.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace flexfetch::telemetry {

enum class MetricKind : std::uint8_t {
  kCounter,  ///< Accumulates; merge adds.
  kGauge,    ///< Last value wins; merge takes the other's value.
  kMax,      ///< High-watermark; merge takes the maximum.
};

struct Metric {
  double value = 0.0;
  MetricKind kind = MetricKind::kCounter;
};

/// Fixed-bucket log2 histogram over non-negative samples. Bucket b counts
/// samples in [2^(b+kMinExp-1), 2^(b+kMinExp)); bucket 0 additionally
/// holds everything below the range (including exact zeros) and the last
/// bucket everything above it. The geometry is a compile-time constant,
/// so any two histograms merge bucket-wise — exactly and associatively.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  /// Exponent of the lower edge of bucket 1: 2^-32 (~2.3e-10) — deep
  /// sub-nanosecond for durations, sub-byte for sizes. The top bucket
  /// edge is 2^31 (~2.1e9): beyond any duration or transfer we simulate.
  static constexpr int kMinExp = -32;

  void record(double v);

  /// Bucket-wise integer add; count/sum/min/max fold alongside.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  bool empty() const { return count_ == 0; }

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return buckets_;
  }
  /// Index of the bucket `v` falls into (the geometry contract above).
  static std::size_t bucket_of(double v);
  /// Upper edge of bucket `b` (lower edge of `b + 1`): 2^(b + kMinExp).
  static double bucket_upper_edge(std::size_t b);

  bool operator==(const Histogram& other) const = default;

  /// Reconstructs a histogram from its serialized raw fields — the
  /// checkpoint-restore inverse of reading (count, sum, min, max,
  /// buckets). Round-tripping through from_raw yields a histogram whose
  /// merge behaviour is bit-identical to the original.
  static Histogram from_raw(std::uint64_t count, double sum, double min,
                            double max,
                            const std::array<std::uint64_t, kBuckets>& buckets) {
    Histogram h;
    h.count_ = count;
    h.sum_ = sum;
    h.min_ = min;
    h.max_ = max;
    h.buckets_ = buckets;
    return h;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  /// Adds `delta` to a counter (created at zero on first use).
  void add(std::string_view name, double delta = 1.0);
  /// Sets a gauge.
  void set(std::string_view name, double value);
  /// Raises a high-watermark gauge.
  void set_max(std::string_view name, double value);

  /// Value of a metric, 0.0 if absent.
  double value(std::string_view name) const;
  bool contains(std::string_view name) const;
  bool empty() const { return metrics_.empty() && histograms_.empty(); }
  std::size_t size() const { return metrics_.size(); }

  /// The named histogram, created empty on first use. Named histograms
  /// live beside the scalar namespace; exporters surface them separately
  /// (sweep cell JSON stays scalar-only).
  Histogram& histogram(std::string_view name);
  const Histogram* find_histogram(std::string_view name) const;

  /// Folds `other` in per metric kind: counters add, gauges take the
  /// other's value, high-watermarks take the maximum, histograms merge
  /// bucket-wise. Using one name with two different kinds is a
  /// ConfigError.
  void merge(const MetricsRegistry& other);

  /// Checkpoint-restore: recreates a metric with its exact serialized
  /// kind and value (no arithmetic — a counter restored this way is
  /// bit-identical to the one that was saved, which add() from zero
  /// cannot guarantee for every double). Throws ConfigError if the name
  /// already exists with a different kind.
  void restore(std::string_view name, MetricKind kind, double value);

  /// Sorted name -> metric view (deterministic iteration order).
  const std::map<std::string, Metric, std::less<>>& items() const {
    return metrics_;
  }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  void clear() {
    metrics_.clear();
    histograms_.clear();
  }

 private:
  Metric& touch(std::string_view name, MetricKind kind);

  std::map<std::string, Metric, std::less<>> metrics_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace flexfetch::telemetry
