// Named counters and gauges with deterministic ordering and merge.
//
// The registry is the aggregate face of telemetry: at the end of a run the
// simulator snapshots every substrate's statistics into one flat namespace
// ("cache.hits", "disk.spin_ups", "ff.audit_overrides"...) so sweeps can
// carry per-cell metrics in their results and merge them across cells.
// Keys are kept sorted (std::map), so iteration — and therefore every
// exporter — is deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace flexfetch::telemetry {

enum class MetricKind : std::uint8_t {
  kCounter,  ///< Accumulates; merge adds.
  kGauge,    ///< Last value wins; merge takes the other's value.
  kMax,      ///< High-watermark; merge takes the maximum.
};

struct Metric {
  double value = 0.0;
  MetricKind kind = MetricKind::kCounter;
};

class MetricsRegistry {
 public:
  /// Adds `delta` to a counter (created at zero on first use).
  void add(std::string_view name, double delta = 1.0);
  /// Sets a gauge.
  void set(std::string_view name, double value);
  /// Raises a high-watermark gauge.
  void set_max(std::string_view name, double value);

  /// Value of a metric, 0.0 if absent.
  double value(std::string_view name) const;
  bool contains(std::string_view name) const;
  bool empty() const { return metrics_.empty(); }
  std::size_t size() const { return metrics_.size(); }

  /// Folds `other` in per metric kind: counters add, gauges take the
  /// other's value, high-watermarks take the maximum. Using one name with
  /// two different kinds is a ConfigError.
  void merge(const MetricsRegistry& other);

  /// Sorted name -> metric view (deterministic iteration order).
  const std::map<std::string, Metric, std::less<>>& items() const {
    return metrics_;
  }

  void clear() { metrics_.clear(); }

 private:
  Metric& touch(std::string_view name, MetricKind kind);

  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace flexfetch::telemetry
