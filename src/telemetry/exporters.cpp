#include "telemetry/exporters.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <vector>

#include "telemetry/recorder.hpp"

namespace flexfetch::telemetry {

namespace {

/// Shortest-round-trip-ish deterministic double formatting; integers print
/// without a trailing ".0" (matching what the JSON grammar calls a number).
void write_num(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os << buf;
}

void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << *s;
    }
  }
  os << '"';
}

void write_args_object(std::ostream& os, const TraceEvent& ev) {
  os << "{";
  bool first = true;
  if (ev.phase == Phase::kCounter) {
    os << "\"value\": ";
    write_num(os, ev.value);
    first = false;
  }
  for (std::size_t i = 0; i < ev.n_args; ++i) {
    const Arg& a = ev.args[i];
    if (!first) os << ", ";
    first = false;
    write_json_string(os, a.key);
    os << ": ";
    if (a.str != nullptr) {
      write_json_string(os, a.str);
    } else {
      write_num(os, a.num);
    }
  }
  os << "}";
}

void write_metadata(std::ostream& os, const char* name, std::uint32_t tid,
                    const char* arg_key, const char* str_value,
                    std::uint64_t num_value) {
  os << "    {\"name\": \"" << name << "\", \"ph\": \"M\", \"pid\": 1, "
     << "\"tid\": " << tid << ", \"args\": {\"" << arg_key << "\": ";
  if (str_value != nullptr) {
    write_json_string(os, str_value);
  } else {
    os << num_value;
  }
  os << "}},\n";
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const TraceEvent> events,
                        std::uint64_t dropped,
                        const MetricsRegistry* metrics) {
  os << "{\n";
  os << "  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"otherData\": {\n";
  os << "    \"dropped_events\": " << dropped;
  if (metrics != nullptr) {
    for (const auto& [name, m] : metrics->items()) {
      os << ",\n    ";
      write_json_string(os, name.c_str());
      os << ": ";
      write_num(os, m.value);
    }
  }
  os << "\n  },\n";
  os << "  \"traceEvents\": [\n";

  write_metadata(os, "process_name", 0, "name", "flexfetch-sim", 0);
  // Ring losses surfaced in-band so trace viewers (not just otherData
  // readers) can see the capture was partial.
  write_metadata(os, "telemetry.dropped", 0, "dropped", nullptr, dropped);
  for (std::uint32_t tid = 0; tid < track::kCount; ++tid) {
    write_metadata(os, "thread_name", tid, "name", track_name(tid), 0);
    write_metadata(os, "thread_sort_index", tid, "sort_index", nullptr, tid);
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    os << "    {\"name\": ";
    write_json_string(os, ev.name);
    os << ", \"cat\": \"" << to_string(ev.category) << "\"";
    os << ", \"pid\": 1, \"tid\": " << ev.track;
    os << ", \"ts\": ";
    write_num(os, ev.start.value() * 1e6);
    switch (ev.phase) {
      case Phase::kInstant:
        os << ", \"ph\": \"i\", \"s\": \"t\"";
        break;
      case Phase::kSpan:
        os << ", \"ph\": \"X\", \"dur\": ";
        write_num(os, ev.duration.value() * 1e6);
        break;
      case Phase::kCounter:
        os << ", \"ph\": \"C\"";
        break;
    }
    os << ", \"args\": ";
    write_args_object(os, ev);
    os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
}

void write_chrome_trace(std::ostream& os, const Recorder& recorder,
                        const MetricsRegistry* metrics) {
  const auto events = recorder.events();
  write_chrome_trace(os, events, recorder.dropped(), metrics);
}

void write_text_timeline(std::ostream& os,
                         std::span<const TraceEvent> events) {
  std::vector<const TraceEvent*> order;
  order.reserve(events.size());
  for (const TraceEvent& ev : events) order.push_back(&ev);
  std::sort(order.begin(), order.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->start != b->start) return a->start < b->start;
              return a->seq < b->seq;
            });
  char buf[128];
  for (const TraceEvent* ev : order) {
    std::snprintf(buf, sizeof(buf), "%12.6f  %-12s %-24s", ev->start.value(),
                  track_name(ev->track), ev->name);
    os << buf;
    if (ev->phase == Phase::kSpan) {
      std::snprintf(buf, sizeof(buf), " dur=%.6fs", ev->duration.value());
      os << buf;
    } else if (ev->phase == Phase::kCounter) {
      os << " value=";
      write_num(os, ev->value);
    }
    for (std::size_t i = 0; i < ev->n_args; ++i) {
      const Arg& a = ev->args[i];
      os << ' ' << a.key << '=';
      if (a.str != nullptr) {
        os << a.str;
      } else {
        write_num(os, a.num);
      }
    }
    os << '\n';
  }
}

}  // namespace flexfetch::telemetry
