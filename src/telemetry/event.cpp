#include "telemetry/event.hpp"

namespace flexfetch::telemetry {

const char* to_string(Category c) {
  switch (c) {
    case Category::kSim: return "sim";
    case Category::kDisk: return "disk";
    case Category::kWnic: return "wnic";
    case Category::kCache: return "cache";
    case Category::kWriteback: return "writeback";
    case Category::kScheduler: return "scheduler";
    case Category::kPolicy: return "policy";
    case Category::kFault: return "fault";
    case Category::kMedium: return "medium";
    case Category::kServer: return "server";
    case Category::kBattery: return "battery";
  }
  return "?";
}

const char* track_name(std::uint32_t track) {
  switch (track) {
    case track::kSim: return "sim.syscalls";
    case track::kDiskPower: return "disk.power";
    case track::kDiskIo: return "disk.io";
    case track::kWnicPower: return "wnic.power";
    case track::kWnicIo: return "wnic.io";
    case track::kWriteback: return "writeback";
    case track::kScheduler: return "scheduler";
    case track::kPolicy: return "policy";
    case track::kFault: return "faults";
    case track::kMedium: return "medium";
    case track::kServer: return "server";
    case track::kBattery: return "battery";
  }
  return "?";
}

TraceEvent unpack(const PackedRecord& rec, std::uint64_t seq) {
  const EventDesc& d = *rec.desc;
  TraceEvent ev;
  ev.name = rec.name != nullptr ? rec.name : d.name;
  ev.category = d.category;
  ev.phase = d.phase;
  ev.n_args = d.n_args;
  ev.track = d.track;
  ev.seq = seq;
  ev.start = Seconds{rec.start_s};
  if (d.phase == Phase::kSpan) {
    ev.duration = Seconds{rec.extra};
  } else if (d.phase == Phase::kCounter) {
    ev.value = rec.extra;
  }
  for (std::size_t i = 0; i < d.n_args; ++i) {
    const std::uint64_t word = rec.payload[i];
    if ((d.str_mask >> i) & 1u) {
      ev.args[i] = str_arg(
          d.keys[i],
          reinterpret_cast<const char*>(static_cast<std::uintptr_t>(word)));
    } else {
      ev.args[i] = num_arg(d.keys[i], std::bit_cast<double>(word));
    }
  }
  return ev;
}

}  // namespace flexfetch::telemetry
