#include "telemetry/event.hpp"

namespace flexfetch::telemetry {

const char* to_string(Category c) {
  switch (c) {
    case Category::kSim: return "sim";
    case Category::kDisk: return "disk";
    case Category::kWnic: return "wnic";
    case Category::kCache: return "cache";
    case Category::kWriteback: return "writeback";
    case Category::kScheduler: return "scheduler";
    case Category::kPolicy: return "policy";
    case Category::kFault: return "fault";
  }
  return "?";
}

const char* track_name(std::uint32_t track) {
  switch (track) {
    case track::kSim: return "sim.syscalls";
    case track::kDiskPower: return "disk.power";
    case track::kDiskIo: return "disk.io";
    case track::kWnicPower: return "wnic.power";
    case track::kWnicIo: return "wnic.io";
    case track::kWriteback: return "writeback";
    case track::kScheduler: return "scheduler";
    case track::kPolicy: return "policy";
    case track::kFault: return "faults";
  }
  return "?";
}

}  // namespace flexfetch::telemetry
