// Fluent builder for constructing traces programmatically.
//
// Used by tests and by the synthetic workload generators. The builder keeps
// a virtual clock; `think(dt)` advances it, read/write emit records at the
// current time and advance it by the recorded call duration.
#pragma once

#include "trace/trace.hpp"

namespace flexfetch::trace {

class TraceBuilder {
 public:
  explicit TraceBuilder(std::string name = "trace") : trace_(std::move(name)) {}

  /// Sets identity for subsequently emitted records.
  TraceBuilder& process(Pid pid, ProcessGroup pgid);

  /// Advances the virtual clock (think/compute time between calls).
  TraceBuilder& think(Seconds dt);

  /// Jumps the virtual clock to an absolute time (must not go backwards).
  TraceBuilder& at(Seconds t);

  /// Emits a read record of `size` bytes at (inode, offset).
  /// `duration` is the recorded service time in the profiled run.
  TraceBuilder& read(Inode inode, Bytes offset, Bytes size, Seconds duration = Seconds{0.0});

  /// Emits a write record.
  TraceBuilder& write(Inode inode, Bytes offset, Bytes size, Seconds duration = Seconds{0.0});

  /// Emits an open/close marker (no data transfer).
  TraceBuilder& open(Inode inode);
  TraceBuilder& close(Inode inode);

  /// Reads a whole file as a run of sequential `chunk`-sized calls.
  TraceBuilder& read_file(Inode inode, Bytes file_size, Bytes chunk,
                          Seconds per_call_think = Seconds{0.0});

  /// Writes a whole file sequentially in `chunk`-sized calls.
  TraceBuilder& write_file(Inode inode, Bytes file_size, Bytes chunk,
                           Seconds per_call_think = Seconds{0.0});

  Seconds now() const { return now_; }
  const Trace& peek() const { return trace_; }

  /// Finalizes: validates and returns the trace (builder left empty).
  Trace build();

 private:
  SyscallRecord make(OpType op, Inode inode, Bytes offset, Bytes size,
                     Seconds duration) const;

  Trace trace_;
  Seconds now_ = Seconds{0.0};
  Pid pid_ = 1000;
  ProcessGroup pgid_ = 1000;
};

}  // namespace flexfetch::trace
