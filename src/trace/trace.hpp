// Trace container: an ordered sequence of syscall records plus metadata.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace flexfetch::trace {

/// Summary statistics of a trace (drives Table 3 style reporting).
struct TraceStats {
  std::size_t records = 0;
  std::size_t reads = 0;
  std::size_t writes = 0;
  std::size_t distinct_files = 0;
  Bytes bytes_read = Bytes{0};
  Bytes bytes_written = Bytes{0};
  /// Total footprint: sum over files of the highest offset touched.
  Bytes footprint = Bytes{0};
  Seconds duration = Seconds{0.0};
};

/// An ordered (by timestamp) sequence of syscall records.
///
/// Invariants maintained by the class:
///  * records are sorted by timestamp (stable for ties),
///  * every data-transfer record has size > 0.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a record; throws TraceError if a data transfer has zero size.
  void push_back(const SyscallRecord& r);

  /// Appends all records of `other`, then restores timestamp order.
  /// Used to compose concurrent-program scenarios.
  void merge(const Trace& other);

  /// Appends `other` shifted so it starts `gap` seconds after this trace
  /// ends. Used to compose sequential scenarios (grep then make).
  void append_after(const Trace& other, Seconds gap);

  /// Shifts all timestamps by delta (may not produce negative times).
  void shift(Seconds delta);

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  const SyscallRecord& operator[](std::size_t i) const { return records_[i]; }
  const SyscallRecord& at(std::size_t i) const { return records_.at(i); }

  auto begin() const { return records_.begin(); }
  auto end() const { return records_.end(); }
  const std::vector<SyscallRecord>& records() const { return records_; }

  Seconds start_time() const;
  Seconds end_time() const;  ///< Last record's timestamp + duration.

  TraceStats stats() const;

  /// Set of distinct inodes touched by data transfers.
  std::set<Inode> file_set() const;

  /// Per-file maximum end offset (an approximation of file sizes).
  std::map<Inode, Bytes> file_extents() const;

  /// Verifies ordering/invariants; throws TraceError on violation.
  void validate() const;

 private:
  void sort_records();

  std::string name_;
  std::vector<SyscallRecord> records_;
};

}  // namespace flexfetch::trace
