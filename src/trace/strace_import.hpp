// Importer for strace-collected syscall logs.
//
// The paper collected its traces with a modified strace (Section 3.2). This
// importer accepts the closest standard format — `strace -f -ttt -T -e
// trace=open,close,read,write,lseek` output — and converts it into a Trace:
//
//   1180000000.123456 read(3, "..."..., 4096) = 4096 <0.000042>
//   1180000000.125001 open("/usr/include/stdio.h", O_RDONLY) = 3 <0.000011>
//   1180000000.125100 lseek(3, 1024, SEEK_SET) = 1024 <0.000003>
//
// With `-f`, lines are prefixed by the pid:
//
//   2501  1180000000.123456 write(4, "...", 512) = 512 <0.000020>
//
// strace does not report inode numbers, so the importer tracks the
// (pid, fd) -> path mapping from open()/close() and assigns stable
// synthetic inodes per path; file offsets are tracked per descriptor the
// way the kernel would (read/write advance, lseek repositions).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace flexfetch::trace {

struct StraceImportOptions {
  /// Process group assigned to all imported records (strace does not log
  /// pgids; the paper groups one traced program per import).
  ProcessGroup pgid = 1;
  /// Shift timestamps so the first record starts at zero.
  bool rebase_time = true;
  /// Ignore unparseable lines instead of throwing.
  bool lenient = true;
};

/// Parses an strace log into a Trace. Throws TraceError on malformed input
/// unless options.lenient is set.
Trace import_strace(std::istream& is, const std::string& name,
                    const StraceImportOptions& options = {});

Trace import_strace_file(const std::string& path,
                         const StraceImportOptions& options = {});

}  // namespace flexfetch::trace
