// Text (CSV) serialization of traces — the interchange format between the
// trace collectors/generators and the simulator.
//
// Format: one header line `# flexfetch-trace v1 name=<name>` followed by one
// record per line:
//   timestamp,op,pid,pgid,fd,inode,offset,size,duration
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace flexfetch::trace {

void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);

void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

}  // namespace flexfetch::trace
