#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "common/format.hpp"

namespace flexfetch::trace {
namespace {

OpType parse_op(std::string_view s) {
  if (s == "open") return OpType::kOpen;
  if (s == "close") return OpType::kClose;
  if (s == "read") return OpType::kRead;
  if (s == "write") return OpType::kWrite;
  if (s == "seek") return OpType::kSeek;
  throw TraceError("unknown op '" + std::string(s) + "'");
}

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(field);
  return out;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& trace) {
  os << "# flexfetch-trace v1 name=" << trace.name() << '\n';
  for (const auto& r : trace) {
    os << strprintf("%.9f,%s,%u,%u,%d,%llu,%llu,%llu,%.9f\n",
                    r.timestamp.value(), to_string(r.op), r.pid, r.pgid, r.fd,
                    static_cast<unsigned long long>(r.inode),
                    static_cast<unsigned long long>(r.offset.value()),
                    static_cast<unsigned long long>(r.size.value()),
                    r.duration.value());
  }
}

Trace read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw TraceError("empty trace stream");
  constexpr std::string_view kMagic = "# flexfetch-trace v1";
  if (line.rfind(kMagic, 0) != 0) {
    throw TraceError("bad trace header: '" + line + "'");
  }
  Trace trace;
  const auto name_pos = line.find("name=");
  if (name_pos != std::string::npos) {
    trace.set_name(line.substr(name_pos + 5));
  }
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split(line, ',');
    if (fields.size() != 9) {
      throw TraceError("line " + std::to_string(lineno) + ": expected 9 fields, got " +
                       std::to_string(fields.size()));
    }
    try {
      SyscallRecord r;
      r.timestamp = Seconds{std::stod(fields[0])};
      r.op = parse_op(fields[1]);
      r.pid = static_cast<Pid>(std::stoul(fields[2]));
      r.pgid = static_cast<ProcessGroup>(std::stoul(fields[3]));
      r.fd = static_cast<Fd>(std::stoi(fields[4]));
      r.inode = std::stoull(fields[5]);
      r.offset = Bytes{std::stoull(fields[6])};
      r.size = Bytes{std::stoull(fields[7])};
      r.duration = Seconds{std::stod(fields[8])};
      trace.push_back(r);
    } catch (const TraceError&) {
      throw;
    } catch (const std::exception& e) {
      throw TraceError("line " + std::to_string(lineno) + ": " + e.what());
    }
  }
  return trace;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) throw TraceError("cannot open for writing: " + path);
  write_trace(os, trace);
  if (!os) throw TraceError("write failed: " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw TraceError("cannot open for reading: " + path);
  return read_trace(is);
}

}  // namespace flexfetch::trace
