#include "trace/builder.hpp"

#include "common/error.hpp"

namespace flexfetch::trace {

TraceBuilder& TraceBuilder::process(Pid pid, ProcessGroup pgid) {
  pid_ = pid;
  pgid_ = pgid;
  return *this;
}

TraceBuilder& TraceBuilder::think(Seconds dt) {
  FF_REQUIRE(dt >= Seconds{}, "think time must be non-negative");
  now_ += dt;
  return *this;
}

TraceBuilder& TraceBuilder::at(Seconds t) {
  FF_REQUIRE(t >= now_, "TraceBuilder::at cannot move time backwards");
  now_ = t;
  return *this;
}

SyscallRecord TraceBuilder::make(OpType op, Inode inode, Bytes offset,
                                 Bytes size, Seconds duration) const {
  SyscallRecord r;
  r.pid = pid_;
  r.pgid = pgid_;
  r.fd = 3;
  r.inode = inode;
  r.offset = offset;
  r.size = size;
  r.op = op;
  r.timestamp = now_;
  r.duration = duration;
  return r;
}

TraceBuilder& TraceBuilder::read(Inode inode, Bytes offset, Bytes size,
                                 Seconds duration) {
  trace_.push_back(make(OpType::kRead, inode, offset, size, duration));
  now_ += duration;
  return *this;
}

TraceBuilder& TraceBuilder::write(Inode inode, Bytes offset, Bytes size,
                                  Seconds duration) {
  trace_.push_back(make(OpType::kWrite, inode, offset, size, duration));
  now_ += duration;
  return *this;
}

TraceBuilder& TraceBuilder::open(Inode inode) {
  trace_.push_back(make(OpType::kOpen, inode, Bytes{}, Bytes{}, Seconds{}));
  return *this;
}

TraceBuilder& TraceBuilder::close(Inode inode) {
  trace_.push_back(make(OpType::kClose, inode, Bytes{}, Bytes{}, Seconds{}));
  return *this;
}

TraceBuilder& TraceBuilder::read_file(Inode inode, Bytes file_size, Bytes chunk,
                                      Seconds per_call_think) {
  FF_REQUIRE(chunk > Bytes{}, "read_file: chunk must be positive");
  for (Bytes off = Bytes{0}; off < file_size; off += chunk) {
    const Bytes n = std::min(chunk, file_size - off);
    read(inode, off, n);
    if (off + n < file_size) think(per_call_think);
  }
  return *this;
}

TraceBuilder& TraceBuilder::write_file(Inode inode, Bytes file_size, Bytes chunk,
                                       Seconds per_call_think) {
  FF_REQUIRE(chunk > Bytes{}, "write_file: chunk must be positive");
  for (Bytes off = Bytes{0}; off < file_size; off += chunk) {
    const Bytes n = std::min(chunk, file_size - off);
    write(inode, off, n);
    if (off + n < file_size) think(per_call_think);
  }
  return *this;
}

Trace TraceBuilder::build() {
  trace_.validate();
  Trace out = std::move(trace_);
  trace_ = Trace(out.name());
  now_ = Seconds{};
  return out;
}

}  // namespace flexfetch::trace
