#include "trace/strace_import.hpp"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "common/error.hpp"

namespace flexfetch::trace {
namespace {

/// One parsed strace line.
struct Line {
  Pid pid = 0;
  Seconds timestamp = Seconds{0.0};
  std::string_view syscall;
  std::string_view args;      ///< Text between the outer parentheses.
  long long result = -1;      ///< Value after '='.
  Seconds duration = Seconds{0.0};     ///< <...> suffix, if present.
};

bool skip_ws(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return !s.empty();
}

std::optional<double> parse_double(std::string_view& s) {
  skip_ws(s);
  const char* begin = s.data();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  s.remove_prefix(static_cast<std::size_t>(end - begin));
  return v;
}

std::optional<long long> parse_int(std::string_view& s) {
  skip_ws(s);
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{}) return std::nullopt;
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return v;
}

/// Parses one strace line; nullopt if it is not a syscall line (signal
/// notes, "resumed" fragments, exit messages...).
std::optional<Line> parse_line(std::string_view s) {
  Line out;
  if (!skip_ws(s)) return std::nullopt;

  // Optional pid column (strace -f).
  {
    std::string_view probe = s;
    const auto pid = parse_int(probe);
    if (pid && !probe.empty() && probe.front() == ' ') {
      // A pid column is followed by the timestamp; a timestamp itself
      // contains '.', so "1234  118000.5 read(...)" disambiguates by the
      // dot check below.
      std::string_view probe2 = probe;
      const auto maybe_ts = parse_double(probe2);
      if (maybe_ts && *pid >= 0 && s.find('.') != std::string_view::npos) {
        out.pid = static_cast<Pid>(*pid);
        s = probe;
      }
    }
  }

  const auto ts = parse_double(s);
  if (!ts) return std::nullopt;
  out.timestamp = Seconds{*ts};

  if (!skip_ws(s)) return std::nullopt;
  const auto paren = s.find('(');
  if (paren == std::string_view::npos) return std::nullopt;
  out.syscall = s.substr(0, paren);
  // "<... read resumed>" style fragments are not complete calls.
  if (out.syscall.find('<') != std::string_view::npos) return std::nullopt;
  s.remove_prefix(paren + 1);

  // Find the matching close paren from the right: args may contain quoted
  // parentheses, but strace always ends the call as ")= RESULT".
  const auto eq = s.rfind('=');
  if (eq == std::string_view::npos) return std::nullopt;
  auto close = s.rfind(')', eq);
  if (close == std::string_view::npos) return std::nullopt;
  out.args = s.substr(0, close);
  s.remove_prefix(eq + 1);

  const auto result = parse_int(s);
  if (!result) return std::nullopt;
  out.result = *result;

  const auto open_angle = s.find('<');
  if (open_angle != std::string_view::npos) {
    std::string_view d = s.substr(open_angle + 1);
    if (const auto dur = parse_double(d)) out.duration = Seconds{*dur};
  }
  return out;
}

/// First quoted string in an argument list (the path of open()).
std::optional<std::string> first_quoted(std::string_view args) {
  const auto open = args.find('"');
  if (open == std::string_view::npos) return std::nullopt;
  const auto close = args.find('"', open + 1);
  if (close == std::string_view::npos) return std::nullopt;
  return std::string(args.substr(open + 1, close - open - 1));
}

/// First integer argument (the fd of read/write/close/lseek).
std::optional<long long> first_int(std::string_view args) {
  return parse_int(args);
}

/// lseek(fd, offset, WHENCE) -> (offset, whence).
struct SeekArgs {
  long long offset = 0;
  std::string whence;
};

std::optional<SeekArgs> parse_seek(std::string_view args) {
  auto fd = parse_int(args);
  if (!fd) return std::nullopt;
  if (!args.empty() && args.front() == ',') args.remove_prefix(1);
  auto off = parse_int(args);
  if (!off) return std::nullopt;
  if (!args.empty() && args.front() == ',') args.remove_prefix(1);
  skip_ws(args);
  SeekArgs out;
  out.offset = *off;
  out.whence = std::string(args.substr(0, args.find_first_of(" ,)")));
  return out;
}

struct OpenFile {
  Inode inode = 0;
  Bytes offset = Bytes{0};
};

}  // namespace

Trace import_strace(std::istream& is, const std::string& name,
                    const StraceImportOptions& options) {
  Trace trace(name);
  std::unordered_map<std::string, Inode> inode_by_path;
  std::map<std::pair<Pid, Fd>, OpenFile> open_files;
  Inode next_inode = 1;
  std::optional<Seconds> origin;
  std::string raw;
  std::size_t lineno = 0;

  auto fail = [&](const std::string& what) {
    if (!options.lenient) {
      throw TraceError("strace line " + std::to_string(lineno) + ": " + what);
    }
  };

  while (std::getline(is, raw)) {
    ++lineno;
    const auto parsed = parse_line(raw);
    if (!parsed) {
      if (!raw.empty() && raw.find('(') != std::string::npos) {
        fail("unparseable syscall line");
      }
      continue;
    }
    const Line& ln = *parsed;
    if (!origin) origin = ln.timestamp;
    const Seconds t =
        options.rebase_time ? ln.timestamp - *origin : ln.timestamp;
    if (t < Seconds{}) {
      fail("timestamp before origin");
      continue;
    }

    SyscallRecord r;
    r.pid = ln.pid;
    r.pgid = options.pgid;
    r.timestamp = t;
    r.duration = ln.duration;

    if (ln.syscall == "open" || ln.syscall == "openat" ||
        ln.syscall == "creat") {
      if (ln.result < 0) continue;  // Failed open.
      const auto path = first_quoted(ln.args);
      if (!path) {
        fail("open without a path");
        continue;
      }
      auto [it, inserted] = inode_by_path.try_emplace(*path, next_inode);
      if (inserted) ++next_inode;
      const auto fd = static_cast<Fd>(ln.result);
      open_files[{ln.pid, fd}] = OpenFile{it->second, Bytes{}};
      r.op = OpType::kOpen;
      r.fd = fd;
      r.inode = it->second;
      trace.push_back(r);
    } else if (ln.syscall == "close") {
      const auto fd = first_int(ln.args);
      if (!fd) continue;
      auto it = open_files.find({ln.pid, static_cast<Fd>(*fd)});
      if (it == open_files.end()) continue;  // Sockets, pipes, ...
      r.op = OpType::kClose;
      r.fd = static_cast<Fd>(*fd);
      r.inode = it->second.inode;
      trace.push_back(r);
      open_files.erase(it);
    } else if (ln.syscall == "read" || ln.syscall == "write" ||
               ln.syscall == "pread64" || ln.syscall == "pwrite64") {
      if (ln.result <= 0) continue;  // EOF or error: no data moved.
      const auto fd = first_int(ln.args);
      if (!fd) {
        fail("read/write without fd");
        continue;
      }
      auto it = open_files.find({ln.pid, static_cast<Fd>(*fd)});
      if (it == open_files.end()) continue;  // Not a traced file.
      OpenFile& f = it->second;
      const bool is_write =
          ln.syscall == "write" || ln.syscall == "pwrite64";
      r.op = is_write ? OpType::kWrite : OpType::kRead;
      r.fd = static_cast<Fd>(*fd);
      r.inode = f.inode;
      r.offset = f.offset;
      r.size = Bytes{static_cast<std::uint64_t>(ln.result)};
      trace.push_back(r);
      // p{read,write} do not advance the descriptor; plain calls do. The
      // explicit offset of p* calls is the third argument, which we treat
      // as the running offset for simplicity of the common -e trace set.
      if (ln.syscall == "read" || ln.syscall == "write") {
        f.offset += Bytes{static_cast<std::uint64_t>(ln.result)};
      }
    } else if (ln.syscall == "lseek" || ln.syscall == "_llseek") {
      const auto seek = parse_seek(ln.args);
      if (!seek) {
        fail("bad lseek arguments");
        continue;
      }
      auto it = open_files.find(
          {ln.pid, static_cast<Fd>(first_int(ln.args).value_or(-1))});
      if (it == open_files.end()) continue;
      // The kernel-resolved position is the return value for SEEK_CUR/END.
      it->second.offset =
          ln.result >= 0
              ? Bytes{static_cast<std::uint64_t>(ln.result)}
              : Bytes{static_cast<std::uint64_t>(
                    std::max<long long>(seek->offset, 0))};
      r.op = OpType::kSeek;
      r.inode = it->second.inode;
      r.offset = it->second.offset;
      trace.push_back(r);
    }
  }
  trace.validate();
  return trace;
}

Trace import_strace_file(const std::string& path,
                         const StraceImportOptions& options) {
  std::ifstream is(path);
  if (!is) throw TraceError("cannot open strace log: " + path);
  std::string name = path;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return import_strace(is, name, options);
}

}  // namespace flexfetch::trace
