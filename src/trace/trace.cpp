#include "trace/trace.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/format.hpp"

namespace flexfetch::trace {

const char* to_string(OpType op) {
  switch (op) {
    case OpType::kOpen: return "open";
    case OpType::kClose: return "close";
    case OpType::kRead: return "read";
    case OpType::kWrite: return "write";
    case OpType::kSeek: return "seek";
  }
  return "?";
}

std::string to_string(const SyscallRecord& r) {
  return strprintf("%.6f %s pid=%u pgid=%u fd=%d ino=%llu off=%llu size=%llu dur=%.6f",
                   r.timestamp.value(), to_string(r.op), r.pid, r.pgid, r.fd,
                   static_cast<unsigned long long>(r.inode),
                   static_cast<unsigned long long>(r.offset.value()),
                   static_cast<unsigned long long>(r.size.value()),
                   r.duration.value());
}

void Trace::push_back(const SyscallRecord& r) {
  if (r.is_data_transfer() && r.size == Bytes{}) {
    throw TraceError("data-transfer record with zero size: " + to_string(r));
  }
  if (r.timestamp < Seconds{}) {
    throw TraceError("record with negative timestamp: " + to_string(r));
  }
  if (!records_.empty() && r.timestamp < records_.back().timestamp) {
    records_.push_back(r);
    sort_records();
  } else {
    records_.push_back(r);
  }
}

void Trace::merge(const Trace& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
  sort_records();
}

void Trace::append_after(const Trace& other, Seconds gap) {
  FF_REQUIRE(gap >= Seconds{}, "append_after: negative gap");
  const Seconds base = empty() ? Seconds{} : end_time();
  Trace shifted = other;
  shifted.shift(base + gap - shifted.start_time());
  merge(shifted);
}

void Trace::shift(Seconds delta) {
  if (!records_.empty() && records_.front().timestamp + delta < Seconds{}) {
    throw TraceError("shift would produce negative timestamps");
  }
  for (auto& r : records_) r.timestamp += delta;
}

Seconds Trace::start_time() const {
  return records_.empty() ? Seconds{} : records_.front().timestamp;
}

Seconds Trace::end_time() const {
  Seconds end = Seconds{0.0};
  for (const auto& r : records_) {
    end = std::max(end, r.timestamp + r.duration);
  }
  return end;
}

TraceStats Trace::stats() const {
  TraceStats s;
  s.records = records_.size();
  std::map<Inode, Bytes> extents = file_extents();
  s.distinct_files = extents.size();
  for (const auto& [ino, extent] : extents) s.footprint += extent;
  for (const auto& r : records_) {
    if (r.op == OpType::kRead) {
      ++s.reads;
      s.bytes_read += r.size;
    } else if (r.op == OpType::kWrite) {
      ++s.writes;
      s.bytes_written += r.size;
    }
  }
  s.duration = empty() ? Seconds{} : end_time() - start_time();
  return s;
}

std::set<Inode> Trace::file_set() const {
  std::set<Inode> files;
  for (const auto& r : records_) {
    if (r.is_data_transfer()) files.insert(r.inode);
  }
  return files;
}

std::map<Inode, Bytes> Trace::file_extents() const {
  std::map<Inode, Bytes> extents;
  for (const auto& r : records_) {
    if (!r.is_data_transfer()) continue;
    Bytes& e = extents[r.inode];
    e = std::max(e, r.end_offset());
  }
  return extents;
}

void Trace::validate() const {
  Seconds prev = Seconds{0.0};
  for (const auto& r : records_) {
    if (r.timestamp < prev) {
      throw TraceError("records out of order at t=" +
                       std::to_string(r.timestamp.value()));
    }
    if (r.is_data_transfer() && r.size == Bytes{}) {
      throw TraceError("zero-size transfer: " + to_string(r));
    }
    if (r.duration < Seconds{}) {
      throw TraceError("negative duration: " + to_string(r));
    }
    prev = r.timestamp;
  }
}

void Trace::sort_records() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const SyscallRecord& a, const SyscallRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
}

}  // namespace flexfetch::trace
