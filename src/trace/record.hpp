// The syscall-trace record model.
//
// FlexFetch profiles programs by intercepting file-related system calls with
// a modified strace (paper Section 3.2). Each record carries: pid, file
// descriptor, inode number, offset, size, type, timestamp, and duration —
// exactly the fields the paper's collector records.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"

namespace flexfetch::trace {

using Pid = std::uint32_t;
using ProcessGroup = std::uint32_t;
using Inode = std::uint64_t;
using Fd = std::int32_t;

enum class OpType : std::uint8_t {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kSeek,
};

const char* to_string(OpType op);

/// One intercepted file-related system call.
struct SyscallRecord {
  Pid pid = 0;
  /// Linux process group: used to associate multi-process programs (e.g.
  /// `make` spawning many `gcc`s) with one profile (Section 2.1).
  ProcessGroup pgid = 0;
  Fd fd = -1;
  Inode inode = 0;
  Bytes offset = Bytes{0};
  Bytes size = Bytes{0};
  OpType op = OpType::kRead;
  /// Wall-clock start of the call, seconds from trace origin.
  Seconds timestamp = Seconds{0.0};
  /// How long the call took in the traced run. Only used to derive think
  /// times; replay recomputes service times from the simulated devices.
  Seconds duration = Seconds{0.0};

  bool is_data_transfer() const {
    return op == OpType::kRead || op == OpType::kWrite;
  }

  Bytes end_offset() const { return offset + size; }

  bool operator==(const SyscallRecord&) const = default;
};

std::string to_string(const SyscallRecord& r);

}  // namespace flexfetch::trace
