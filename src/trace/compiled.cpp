#include "trace/compiled.hpp"

#include <algorithm>

namespace flexfetch::trace {

namespace {

// Page math mirrors os/page.hpp (same kPageSize, same formulas); the os
// layer depends on trace, so the helpers cannot be included from here.
constexpr std::uint64_t page_of(Bytes offset) { return offset / kPageSize; }

constexpr std::uint64_t page_end_of(Bytes offset, Bytes size) {
  return size == Bytes{} ? page_of(offset)
                         : (offset + size - Bytes{1}) / kPageSize + 1;
}

}  // namespace

CompiledTrace::CompiledTrace(const Trace& trace) {
  const std::size_t n = trace.size();
  think_.resize(n, Seconds{});
  first_page_.resize(n, 0);
  end_page_.resize(n, 0);
  start_time_ = trace.start_time();

  for (std::size_t i = 0; i < n; ++i) {
    const SyscallRecord& r = trace[i];
    if (i > 0) {
      const SyscallRecord& prev = trace[i - 1];
      const Seconds gap = r.timestamp - (prev.timestamp + prev.duration);
      think_[i] = std::max(Seconds{}, gap);
    }
    if (r.is_data_transfer()) {
      first_page_[i] = page_of(r.offset);
      end_page_[i] = page_end_of(r.offset, r.size);
      ++data_transfers_;
      file_set_.insert(r.inode);
      Bytes& e = file_extents_[r.inode];
      e = std::max(e, r.end_offset());
    } else {
      first_page_[i] = page_of(r.offset);
      end_page_[i] = first_page_[i];
    }
  }
}

}  // namespace flexfetch::trace
