// Pre-compiled trace: flat per-record arrays derived once from a Trace so
// the simulator's event loop and the estimator's shadow replay stop
// re-deriving them per event.
//
// The compilation lowers each trace into structure-of-arrays form:
//   * think times  — closed-loop gap before record i (traced inter-call
//     distance minus the traced service duration of record i-1),
//   * page spans   — first/end page index of each data transfer,
//   * file extents — per-inode maximum end offset (disk layout placement),
//   * file set     — distinct inodes touched by data transfers.
// All of these are pure functions of the trace, so sharing one CompiledTrace
// across simulations (e.g. every cell of a sweep grid) is safe and changes
// no simulated number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "trace/trace.hpp"

namespace flexfetch::trace {

class CompiledTrace {
 public:
  CompiledTrace() = default;
  explicit CompiledTrace(const Trace& trace);

  std::size_t size() const { return think_.size(); }
  bool empty() const { return think_.empty(); }

  /// Closed-loop think time before record i (0 for the first record).
  Seconds think(std::size_t i) const { return think_[i]; }

  /// Page span of record i: [first_page(i), end_page(i)). Zero-width for
  /// non-transfer records.
  std::uint64_t first_page(std::size_t i) const { return first_page_[i]; }
  std::uint64_t end_page(std::size_t i) const { return end_page_[i]; }

  Seconds start_time() const { return start_time_; }

  /// Number of read/write records — a reserve hint for request logs.
  std::size_t data_transfers() const { return data_transfers_; }

  const std::map<Inode, Bytes>& file_extents() const { return file_extents_; }
  const std::set<Inode>& file_set() const { return file_set_; }

 private:
  std::vector<Seconds> think_;
  std::vector<std::uint64_t> first_page_;
  std::vector<std::uint64_t> end_page_;
  std::size_t data_transfers_ = 0;
  Seconds start_time_ = Seconds{0.0};
  std::map<Inode, Bytes> file_extents_;
  std::set<Inode> file_set_;
};

}  // namespace flexfetch::trace
