// Umbrella header: the FlexFetch public API in one include.
//
//   #include "flexfetch.hpp"
//
// pulls in the trace model and importers, the device and OS substrates,
// the simulator, the FlexFetch policy and its baselines, and the synthetic
// workload generators. Individual headers remain includable for faster
// builds.
#pragma once

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

#include "trace/builder.hpp"
#include "trace/strace_import.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

#include "device/adaptive_timeout.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"

#include "os/buffer_cache.hpp"
#include "os/file_layout.hpp"
#include "os/io_scheduler.hpp"
#include "os/readahead.hpp"
#include "os/vfs.hpp"
#include "os/writeback.hpp"

#include "hoard/hoard_set.hpp"
#include "hoard/sync.hpp"

#include "sim/simulator.hpp"

#include "core/flexfetch.hpp"
#include "core/profile_store.hpp"

#include "policies/factory.hpp"

#include "workloads/scenarios.hpp"
