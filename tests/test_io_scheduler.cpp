#include "os/io_scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::os {
namespace {

device::DeviceRequest req(Bytes lba, Bytes size, bool write = false) {
  return device::DeviceRequest{.lba = lba, .size = size, .is_write = write};
}

TEST(CScan, EmptyDispatchReturnsNothing) {
  CScanScheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.dispatch().has_value());
}

TEST(CScan, DispatchesInAscendingLbaOrder) {
  CScanScheduler s;
  s.submit(req(Bytes{300}, Bytes{10}));
  s.submit(req(Bytes{100}, Bytes{10}));
  s.submit(req(Bytes{200}, Bytes{10}));
  EXPECT_EQ(s.dispatch()->lba, Bytes{100});
  EXPECT_EQ(s.dispatch()->lba, Bytes{200});
  EXPECT_EQ(s.dispatch()->lba, Bytes{300});
  EXPECT_TRUE(s.empty());
}

TEST(CScan, ServesFromHeadPositionFirst) {
  CScanScheduler s;
  s.set_head(Bytes{250});
  s.submit(req(Bytes{100}, Bytes{10}));
  s.submit(req(Bytes{300}, Bytes{10}));
  // C-SCAN continues upward from the head, then wraps.
  EXPECT_EQ(s.dispatch()->lba, Bytes{300});
  EXPECT_EQ(s.dispatch()->lba, Bytes{100});
  EXPECT_EQ(s.stats().sweeps, 1u);
}

TEST(CScan, HeadAdvancesPastDispatchedRequest) {
  CScanScheduler s;
  s.submit(req(Bytes{100}, Bytes{50}));
  s.dispatch();
  EXPECT_EQ(s.head(), Bytes{150});
}

TEST(CScan, WrapsInOneDirectionOnly) {
  CScanScheduler s;
  s.set_head(Bytes{150});
  s.submit(req(Bytes{100}, Bytes{10}));
  s.submit(req(Bytes{200}, Bytes{10}));
  s.submit(req(Bytes{120}, Bytes{10}));
  // Upward sweep: 200; wrap to lowest: 100, then 120.
  EXPECT_EQ(s.dispatch()->lba, Bytes{200});
  EXPECT_EQ(s.dispatch()->lba, Bytes{100});
  EXPECT_EQ(s.dispatch()->lba, Bytes{120});
}

TEST(CScan, MergesWithPredecessor) {
  CScanScheduler s;
  s.submit(req(Bytes{100}, Bytes{50}));
  s.submit(req(Bytes{150}, Bytes{50}));  // Starts exactly at predecessor's end.
  EXPECT_EQ(s.pending(), 1u);
  const auto r = s.dispatch();
  EXPECT_EQ(r->lba, Bytes{100});
  EXPECT_EQ(r->size, Bytes{100});
  EXPECT_EQ(s.stats().merged, 1u);
}

TEST(CScan, MergesWithSuccessor) {
  CScanScheduler s;
  s.submit(req(Bytes{150}, Bytes{50}));
  s.submit(req(Bytes{100}, Bytes{50}));  // Ends exactly at successor's start.
  EXPECT_EQ(s.pending(), 1u);
  const auto r = s.dispatch();
  EXPECT_EQ(r->lba, Bytes{100});
  EXPECT_EQ(r->size, Bytes{100});
}

TEST(CScan, BridgeMergeJoinsThreeRequests) {
  CScanScheduler s;
  s.submit(req(Bytes{100}, Bytes{50}));
  s.submit(req(Bytes{200}, Bytes{50}));
  s.submit(req(Bytes{150}, Bytes{50}));  // Bridges the gap between the two.
  EXPECT_EQ(s.pending(), 1u);
  const auto r = s.dispatch();
  EXPECT_EQ(r->lba, Bytes{100});
  EXPECT_EQ(r->size, Bytes{150});
  EXPECT_EQ(s.stats().merged, 2u);
}

TEST(CScan, DoesNotMergeAcrossDirections) {
  CScanScheduler s;
  s.submit(req(Bytes{100}, Bytes{50}, /*write=*/false));
  s.submit(req(Bytes{150}, Bytes{50}, /*write=*/true));
  EXPECT_EQ(s.pending(), 2u);
}

TEST(CScan, DoesNotMergeNonAdjacent) {
  CScanScheduler s;
  s.submit(req(Bytes{100}, Bytes{10}));
  s.submit(req(Bytes{200}, Bytes{10}));
  EXPECT_EQ(s.pending(), 2u);
}

TEST(CScan, ZeroSizeRejected) {
  CScanScheduler s;
  EXPECT_THROW(s.submit(req(Bytes{0}, Bytes{0})), ConfigError);
}

TEST(CScan, StatsCountSubmissionsAndDispatches) {
  CScanScheduler s;
  s.submit(req(Bytes{1}, Bytes{1}));
  s.submit(req(Bytes{1000}, Bytes{1}));
  s.dispatch();
  EXPECT_EQ(s.stats().submitted, 2u);
  EXPECT_EQ(s.stats().dispatched, 1u);
}

TEST(CScan, PreservesWriteFlagThroughMerge) {
  CScanScheduler s;
  s.submit(req(Bytes{100}, Bytes{50}, true));
  s.submit(req(Bytes{150}, Bytes{50}, true));
  const auto r = s.dispatch();
  EXPECT_TRUE(r->is_write);
  EXPECT_EQ(r->size, Bytes{100});
}

}  // namespace
}  // namespace flexfetch::os
