#include "os/io_scheduler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::os {
namespace {

device::DeviceRequest req(Bytes lba, Bytes size, bool write = false) {
  return device::DeviceRequest{.lba = lba, .size = size, .is_write = write};
}

TEST(CScan, EmptyDispatchReturnsNothing) {
  CScanScheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.dispatch().has_value());
}

TEST(CScan, DispatchesInAscendingLbaOrder) {
  CScanScheduler s;
  s.submit(req(300, 10));
  s.submit(req(100, 10));
  s.submit(req(200, 10));
  EXPECT_EQ(s.dispatch()->lba, 100u);
  EXPECT_EQ(s.dispatch()->lba, 200u);
  EXPECT_EQ(s.dispatch()->lba, 300u);
  EXPECT_TRUE(s.empty());
}

TEST(CScan, ServesFromHeadPositionFirst) {
  CScanScheduler s;
  s.set_head(250);
  s.submit(req(100, 10));
  s.submit(req(300, 10));
  // C-SCAN continues upward from the head, then wraps.
  EXPECT_EQ(s.dispatch()->lba, 300u);
  EXPECT_EQ(s.dispatch()->lba, 100u);
  EXPECT_EQ(s.stats().sweeps, 1u);
}

TEST(CScan, HeadAdvancesPastDispatchedRequest) {
  CScanScheduler s;
  s.submit(req(100, 50));
  s.dispatch();
  EXPECT_EQ(s.head(), 150u);
}

TEST(CScan, WrapsInOneDirectionOnly) {
  CScanScheduler s;
  s.set_head(150);
  s.submit(req(100, 10));
  s.submit(req(200, 10));
  s.submit(req(120, 10));
  // Upward sweep: 200; wrap to lowest: 100, then 120.
  EXPECT_EQ(s.dispatch()->lba, 200u);
  EXPECT_EQ(s.dispatch()->lba, 100u);
  EXPECT_EQ(s.dispatch()->lba, 120u);
}

TEST(CScan, MergesWithPredecessor) {
  CScanScheduler s;
  s.submit(req(100, 50));
  s.submit(req(150, 50));  // Starts exactly at predecessor's end.
  EXPECT_EQ(s.pending(), 1u);
  const auto r = s.dispatch();
  EXPECT_EQ(r->lba, 100u);
  EXPECT_EQ(r->size, 100u);
  EXPECT_EQ(s.stats().merged, 1u);
}

TEST(CScan, MergesWithSuccessor) {
  CScanScheduler s;
  s.submit(req(150, 50));
  s.submit(req(100, 50));  // Ends exactly at successor's start.
  EXPECT_EQ(s.pending(), 1u);
  const auto r = s.dispatch();
  EXPECT_EQ(r->lba, 100u);
  EXPECT_EQ(r->size, 100u);
}

TEST(CScan, BridgeMergeJoinsThreeRequests) {
  CScanScheduler s;
  s.submit(req(100, 50));
  s.submit(req(200, 50));
  s.submit(req(150, 50));  // Bridges the gap between the two.
  EXPECT_EQ(s.pending(), 1u);
  const auto r = s.dispatch();
  EXPECT_EQ(r->lba, 100u);
  EXPECT_EQ(r->size, 150u);
  EXPECT_EQ(s.stats().merged, 2u);
}

TEST(CScan, DoesNotMergeAcrossDirections) {
  CScanScheduler s;
  s.submit(req(100, 50, /*write=*/false));
  s.submit(req(150, 50, /*write=*/true));
  EXPECT_EQ(s.pending(), 2u);
}

TEST(CScan, DoesNotMergeNonAdjacent) {
  CScanScheduler s;
  s.submit(req(100, 10));
  s.submit(req(200, 10));
  EXPECT_EQ(s.pending(), 2u);
}

TEST(CScan, ZeroSizeRejected) {
  CScanScheduler s;
  EXPECT_THROW(s.submit(req(0, 0)), ConfigError);
}

TEST(CScan, StatsCountSubmissionsAndDispatches) {
  CScanScheduler s;
  s.submit(req(1, 1));
  s.submit(req(1000, 1));
  s.dispatch();
  EXPECT_EQ(s.stats().submitted, 2u);
  EXPECT_EQ(s.stats().dispatched, 1u);
}

TEST(CScan, PreservesWriteFlagThroughMerge) {
  CScanScheduler s;
  s.submit(req(100, 50, true));
  s.submit(req(150, 50, true));
  const auto r = s.dispatch();
  EXPECT_TRUE(r->is_write);
  EXPECT_EQ(r->size, 100u);
}

}  // namespace
}  // namespace flexfetch::os
