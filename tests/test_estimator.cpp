#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "telemetry/recorder.hpp"
#include "trace/builder.hpp"

namespace flexfetch::core {
namespace {

constexpr double kEps = 1e-6;

std::vector<IOBurst> bursts_of(const trace::Trace& t) {
  return extract_bursts(t, Seconds{0.020});
}

IOBurst single_burst(Bytes size, Seconds think_before = Seconds{0.0}) {
  IOBurst b;
  b.think_before = think_before;
  b.requests.push_back(BurstRequest{.inode = 1, .offset = Bytes{0}, .size = size});
  return b;
}

TEST(Estimator, DiskEstimateForOneBurstFromIdle) {
  device::Disk disk;
  os::FileLayout layout(kGiB, 1, Bytes{0}, Bytes{0});  // Deterministic zero gaps.
  const std::vector<IOBurst> bursts{single_burst(Bytes{35'000'000})};
  const Estimate e = SourceEstimator::estimate_disk(disk, bursts, Seconds{0.0}, layout);
  // Positioning 20 ms + transfer 1 s, at 2 W active power. The horizon
  // ends with the burst: no hypothetical rundown is charged.
  EXPECT_NEAR(e.time.value(), 1.020, kEps);
  EXPECT_NEAR(e.energy.value(), 2.04, kEps);
}

TEST(Estimator, NetworkEstimateForOneBurstFromCam) {
  device::Wnic wnic;
  const std::vector<IOBurst> bursts{single_burst(Bytes{1'375'000})};  // 1 s at 11 Mbps.
  const Estimate e = SourceEstimator::estimate_network(wnic, bursts, Seconds{0.0});
  // 84 RPCs of <= 16 KiB, each paying 1 ms latency, then the transfer,
  // all at CAM recv power.
  EXPECT_NEAR(e.time.value(), 84 * 0.001 + 1.0, kEps);
  EXPECT_NEAR(e.energy.value(), (84 * 0.001 + 1.0) * 2.61, kEps);
}

TEST(Estimator, EstimatesDoNotMutateLiveDevices) {
  device::Disk disk;
  device::Wnic wnic;
  os::FileLayout layout(kGiB);
  const std::vector<IOBurst> bursts{single_burst(Bytes{1'000'000})};
  const Joules disk_energy = disk.meter().total();
  const Joules wnic_energy = wnic.meter().total();
  SourceEstimator::estimate_disk(disk, bursts, Seconds{0.0}, layout);
  SourceEstimator::estimate_network(wnic, bursts, Seconds{0.0});
  EXPECT_DOUBLE_EQ(disk.meter().total().value(), disk_energy.value());
  EXPECT_DOUBLE_EQ(wnic.meter().total().value(), wnic_energy.value());
  EXPECT_EQ(disk.counters().requests, 0u);
  EXPECT_EQ(wnic.counters().requests, 0u);
}

TEST(Estimator, EstimatesNeverEmitTelemetry) {
  // Regression: replaying bursts on copies of live devices must not leak
  // hypothetical events into the real recorder stream. The copies used for
  // estimation are detached (detached_copy()), so the event count is
  // byte-for-byte unchanged across a whole estimate/decision pass.
  telemetry::Recorder rec;
  device::Disk disk;
  device::Wnic wnic;
  disk.attach_telemetry(&rec);
  wnic.attach_telemetry(&rec);
  // Prime the stream with real service so spans are actually being emitted.
  disk.service(Seconds{0.0}, device::DeviceRequest{.lba = Bytes{0}, .size = 64 * kKiB});
  wnic.service(Seconds{0.0}, device::DeviceRequest{.lba = Bytes{0}, .size = 256 * kKiB});
  const std::uint64_t emitted = rec.emitted();
  ASSERT_GT(emitted, 0u);

  os::FileLayout layout(kGiB, 1, Bytes{0}, Bytes{0});
  const std::vector<IOBurst> bursts{single_burst(Bytes{1'000'000})};
  SourceEstimator::estimate_disk(disk, bursts, Seconds{2.0}, layout);
  SourceEstimator::estimate_network(wnic, bursts, Seconds{2.0});
  disk.estimate(Seconds{2.0}, device::DeviceRequest{.lba = Bytes{0}, .size = 64 * kKiB});
  wnic.estimate(Seconds{2.0}, device::DeviceRequest{.lba = Bytes{0}, .size = 64 * kKiB});
  auto disk_copy = disk.detached_copy();
  disk_copy.service(Seconds{2.0}, device::DeviceRequest{.lba = Bytes{0}, .size = 64 * kKiB});
  auto wnic_copy = wnic.detached_copy();
  wnic_copy.service(Seconds{2.0}, device::DeviceRequest{.lba = Bytes{0}, .size = 256 * kKiB});

  EXPECT_EQ(rec.emitted(), emitted);
}

TEST(Estimator, ThinkTimeChargesIdleEnergy) {
  device::Disk disk;
  os::FileLayout layout(kGiB, 1, Bytes{0}, Bytes{0});
  std::vector<IOBurst> bursts{single_burst(Bytes{35'000}),
                              single_burst(Bytes{35'000}, /*think_before=*/Seconds{10.0})};
  const Estimate with_think =
      SourceEstimator::estimate_disk(disk, bursts, Seconds{0.0}, layout);
  bursts[1].think_before = Seconds{0.0};
  const Estimate without =
      SourceEstimator::estimate_disk(disk, bursts, Seconds{0.0}, layout);
  // 10 s of disk idle at 1.6 W separates the two estimates.
  EXPECT_NEAR((with_think.energy - without.energy).value(), 16.0, 0.2);
  EXPECT_NEAR((with_think.time - without.time).value(), 10.0, 0.01);
}

TEST(Estimator, LongThinkTimeTriggersSpinDownInEstimate) {
  device::Disk disk;
  os::FileLayout layout(kGiB, 1, Bytes{0}, Bytes{0});
  // 60 s gap: the simulated disk spins down mid-gap and must spin up again.
  const std::vector<IOBurst> bursts{single_burst(Bytes{35'000}),
                                    single_burst(Bytes{35'000}, Seconds{60.0})};
  const Estimate e = SourceEstimator::estimate_disk(disk, bursts, Seconds{0.0}, layout);
  // One mid-gap spin-down and the spin-up before the second burst appear.
  EXPECT_GT(e.energy, Joules{2.94 + 5.0});
  // The second request waits for the spin-up: time exceeds 61.6 s.
  EXPECT_GT(e.time, Seconds{61.6});
}

TEST(Estimator, StartsFromLiveDeviceState) {
  device::Disk standby_disk;
  standby_disk.advance_to(Seconds{100.0});  // Deep standby.
  device::Disk idle_disk;
  os::FileLayout layout(kGiB, 1, Bytes{0}, Bytes{0});
  const std::vector<IOBurst> bursts{single_burst(Bytes{35'000})};
  const Estimate from_standby =
      SourceEstimator::estimate_disk(standby_disk, bursts, Seconds{100.0}, layout);
  const Estimate from_idle =
      SourceEstimator::estimate_disk(idle_disk, bursts, Seconds{0.0}, layout);
  // The standby start pays the 5 J spin-up and the 1.6 s delay.
  EXPECT_NEAR((from_standby.energy - from_idle.energy).value(), 5.0, 0.01);
  EXPECT_NEAR((from_standby.time - from_idle.time).value(), 1.6, 0.001);
}

TEST(Estimator, CacheFilterDropsResidentRequests) {
  device::Wnic wnic;
  const std::vector<IOBurst> bursts{single_burst(Bytes{1'000'000})};
  const CacheFilter drop_all = [](const BurstRequest&) { return true; };
  const CacheFilter drop_none = [](const BurstRequest&) { return false; };
  const Estimate filtered =
      SourceEstimator::estimate_network(wnic, bursts, Seconds{0.0}, &drop_all);
  const Estimate unfiltered =
      SourceEstimator::estimate_network(wnic, bursts, Seconds{0.0}, &drop_none);
  EXPECT_LT(filtered.energy, unfiltered.energy);
  EXPECT_NEAR(filtered.time.value(), 0.0, kEps);
}

TEST(Estimator, EmptyBurstSpanCostsNothing) {
  device::Disk disk;
  os::FileLayout layout(kGiB);
  const Estimate e = SourceEstimator::estimate_disk(disk, {}, Seconds{0.0}, layout);
  EXPECT_NEAR(e.time.value(), 0.0, kEps);
  EXPECT_NEAR(e.energy.value(), 0.0, kEps);
}

TEST(Estimator, NetworkBandwidthScalesTransferTime) {
  device::Wnic slow(device::WnicParams::cisco_aironet350().with_bandwidth_mbps(1.0));
  device::Wnic fast(device::WnicParams::cisco_aironet350().with_bandwidth_mbps(11.0));
  const std::vector<IOBurst> bursts{single_burst(Bytes{1'375'000})};
  const Estimate es = SourceEstimator::estimate_network(slow, bursts, Seconds{0.0});
  const Estimate ef = SourceEstimator::estimate_network(fast, bursts, Seconds{0.0});
  // Same RPC latency on both; the transfer part scales 11x (11 s vs 1 s).
  EXPECT_NEAR((es.time - ef.time).value(), 10.0, 0.01);
}

TEST(Estimator, SequentialBurstRequestsAvoidRepeatSeeks) {
  device::Disk disk;
  os::FileLayout layout(kGiB, 1, Bytes{0}, Bytes{0});
  // One burst with two sequential 128 KiB requests on the same file.
  IOBurst b;
  b.requests.push_back(BurstRequest{.inode = 1, .offset = Bytes{0}, .size = Bytes{131072}});
  b.requests.push_back(
      BurstRequest{.inode = 1, .offset = Bytes{131072}, .size = Bytes{131072}});
  IOBurst scattered;
  scattered.requests.push_back(
      BurstRequest{.inode = 1, .offset = Bytes{0}, .size = Bytes{131072}});
  scattered.requests.push_back(
      BurstRequest{.inode = 2, .offset = Bytes{0}, .size = Bytes{131072}});
  layout.ensure(1, 10 * kMiB);
  layout.ensure(2, 1 * kMiB);
  const Estimate seq = SourceEstimator::estimate_disk(disk, {&b, 1}, Seconds{0.0}, layout);
  const Estimate rnd =
      SourceEstimator::estimate_disk(disk, {&scattered, 1}, Seconds{0.0}, layout);
  EXPECT_NEAR((rnd.time - seq.time).value(), 0.020, 1e-6);  // One extra positioning.
}

TEST(Estimator, MatchesTraceDrivenExtraction) {
  trace::TraceBuilder tb;
  tb.read_file(1, Bytes{256 * 1024}, Bytes{64 * 1024});
  const auto bursts = bursts_of(tb.build());
  device::Disk disk;
  os::FileLayout layout(kGiB, 1, Bytes{0}, Bytes{0});
  const Estimate e = SourceEstimator::estimate_disk(disk, bursts, Seconds{0.0}, layout);
  // 256 KiB split into two 128 KiB merged requests, sequential on disk:
  // one positioning + 256 KiB transfer.
  EXPECT_NEAR(e.time.value(), 0.020 + 262144 / 35e6, 1e-6);
}

}  // namespace
}  // namespace flexfetch::core
