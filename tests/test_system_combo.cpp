// Whole-system combinations and edge cases: every optional subsystem
// (roaming schedules, sync daemon, adaptive timeout, C-SCAN, FlexFetch)
// enabled at once, plus boundary inputs the individual suites skip.
#include <gtest/gtest.h>

#include "core/flexfetch.hpp"
#include "os/vfs.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

sim::SimConfig everything_on() {
  sim::SimConfig config;
  config.enable_sync = true;
  config.sync.interval = Seconds{90.0};
  config.adaptive_disk_timeout = true;
  config.disk.seek_model = device::DiskParams::SeekModel::kDistance;
  config.wnic.bandwidth_schedule = {{Seconds{300.0}, units::mbps(5.5)},
                                    {Seconds{600.0}, units::mbps(11.0)}};
  config.collect_request_log = true;
  return config;
}

TEST(SystemCombo, AllSubsystemsTogetherRunAndConserveEnergy) {
  const auto scenario = workloads::scenario_grep_make(1);
  core::FlexFetchPolicy policy(core::FlexFetchConfig{}, scenario.profiles);
  sim::Simulator simulator(everything_on(), scenario.programs, policy);
  const auto r = simulator.run();

  EXPECT_GT(r.syscalls, 1000u);
  EXPECT_GT(r.sync_bytes, Bytes{0});  // make's object writes were synced.
  EXPECT_NEAR(r.total_energy().value(), (r.disk_energy() + r.wnic_energy()).value(), 1e-6);
  EXPECT_GT(r.makespan, Seconds{0.0});
  // The request log is internally consistent.
  for (const auto& e : r.request_log) {
    EXPECT_LE(e.arrival, e.completion);
    EXPECT_GE(e.energy, Joules{0.0});
  }
}

TEST(SystemCombo, AllSubsystemsStillBeatStatic) {
  const auto scenario = workloads::scenario_stale_acroread(1);
  core::FlexFetchPolicy adaptive(core::FlexFetchConfig{}, scenario.profiles);
  sim::Simulator sa(everything_on(), scenario.programs, adaptive);
  const auto ra = sa.run();
  core::FlexFetchPolicy static_variant(core::FlexFetchConfig::static_variant(),
                                       scenario.profiles);
  sim::Simulator ss(everything_on(), scenario.programs, static_variant);
  const auto rs = ss.run();
  EXPECT_LT(ra.total_energy(), rs.total_energy());
}

TEST(SystemCombo, DeterministicWithEverythingEnabled) {
  const auto scenario = workloads::scenario_thunderbird(1);
  Joules first = Joules{0.0};
  for (int i = 0; i < 2; ++i) {
    core::FlexFetchPolicy policy(core::FlexFetchConfig{}, scenario.profiles);
    sim::Simulator simulator(everything_on(), scenario.programs, policy);
    const Joules e = simulator.run().total_energy();
    if (i == 0) {
      first = e;
    } else {
      EXPECT_DOUBLE_EQ(e.value(), first.value());
    }
  }
}

// --- Boundary inputs -------------------------------------------------------

TEST(SystemCombo, EmptyTraceProgramIsHarmless) {
  trace::TraceBuilder b("real");
  b.process(60, 60);
  b.read(1, Bytes{0}, Bytes{4096});
  std::vector<sim::ProgramSpec> programs;
  programs.push_back(sim::ProgramSpec{.trace = b.build(), .name = "real"});
  programs.push_back(sim::ProgramSpec{.trace = trace::Trace("empty"),
                                      .name = "empty"});
  policies::DiskOnlyPolicy policy;
  sim::Simulator simulator(sim::SimConfig{}, std::move(programs), policy);
  const auto r = simulator.run();
  EXPECT_EQ(r.syscalls, 1u);
}

TEST(SystemCombo, AllEmptyProgramsFinishInstantly) {
  std::vector<sim::ProgramSpec> programs;
  programs.push_back(sim::ProgramSpec{.trace = trace::Trace("e1"), .name = "e1"});
  policies::DiskOnlyPolicy policy;
  sim::Simulator simulator(sim::SimConfig{}, std::move(programs), policy);
  const auto r = simulator.run();
  EXPECT_EQ(r.syscalls, 0u);
  EXPECT_DOUBLE_EQ(r.makespan.value(), 0.0);
}

TEST(SystemCombo, FlexFetchWithEmptyMergedProfileList) {
  const core::Profile merged = core::Profile::merge({}, "none");
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.program(), "none");
  core::FlexFetchPolicy policy(core::FlexFetchConfig{}, merged);
  trace::TraceBuilder b("t");
  b.process(60, 60);
  b.read(1, Bytes{0}, Bytes{4096});
  const auto r = sim::simulate(sim::SimConfig{}, b.build(), policy);
  EXPECT_EQ(r.syscalls, 1u);  // Default-source path, no crash.
}

TEST(SystemCombo, CoalesceOrderedPreservesSubmissionOrder) {
  const std::vector<os::PageId> pages{{2, 5}, {2, 6}, {1, 0}, {1, 1}, {2, 7}};
  const auto ranges = os::Vfs::coalesce_ordered(pages);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0].inode, 2u);  // First-submitted stays first.
  EXPECT_EQ(ranges[0].page_count, 2u);
  EXPECT_EQ(ranges[1].inode, 1u);
  EXPECT_EQ(ranges[2].inode, 2u);  // Non-adjacent continuation kept apart.
  EXPECT_EQ(ranges[2].first_page, 7u);
}

TEST(SystemCombo, SyscallOnlyTraceKindsAreTolerated) {
  // A trace of opens/closes/seeks with a single real transfer.
  trace::TraceBuilder b("meta");
  b.process(60, 60);
  b.open(1);
  b.close(1);
  b.open(2);
  b.read(2, Bytes{0}, Bytes{4096});
  b.close(2);
  policies::WnicOnlyPolicy policy;
  const auto r = sim::simulate(sim::SimConfig{}, b.build(), policy);
  EXPECT_EQ(r.syscalls, 5u);
  EXPECT_EQ(r.net_requests, 1u);
}

TEST(SystemCombo, OracleComposesWithRoamingAndSync) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto oracle = policies::make_policy("oracle", {}, &scenario.oracle_future);
  sim::Simulator simulator(everything_on(), scenario.programs, *oracle);
  const auto r = simulator.run();
  EXPECT_GT(r.total_energy(), Joules{0.0});
  EXPECT_NEAR(r.total_energy().value(), (r.disk_energy() + r.wnic_energy()).value(), 1e-6);
}

TEST(SystemCombo, BlueFSComposesWithAdaptiveTimeout) {
  const auto scenario = workloads::scenario_thunderbird(1);
  sim::SimConfig config;
  config.adaptive_disk_timeout = true;
  auto bluefs = policies::make_policy("bluefs");
  sim::Simulator simulator(config, scenario.programs, *bluefs);
  const auto with = simulator.run();
  auto bluefs2 = policies::make_policy("bluefs");
  sim::Simulator s2(sim::SimConfig{}, scenario.programs, *bluefs2);
  const auto without = s2.run();
  // Adaptive timeout must not make BlueFS dramatically worse.
  EXPECT_LT(with.total_energy(), 1.2 * without.total_energy());
}

}  // namespace
}  // namespace flexfetch
