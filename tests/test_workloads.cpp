#include <gtest/gtest.h>

#include "workloads/generators.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch::workloads {
namespace {

TEST(Generators, GrepMatchesTable3Inventory) {
  const trace::Trace t = grep_trace();
  const auto s = t.stats();
  EXPECT_EQ(s.distinct_files, 1332u);  // Table 3: 1332 files.
  // Table 3: 50.4 MB footprint (within a page-rounding tolerance).
  EXPECT_NEAR(s.footprint.as_double(), 50.4e6, 0.15 * 50.4e6);
  EXPECT_EQ(s.writes, 0u);  // grep only reads.
}

TEST(Generators, GrepIsBursty) {
  const trace::Trace t = grep_trace();
  // The whole scan completes within seconds of trace time: one I/O burst
  // storm, per Section 3.3.1 ("a very short period").
  EXPECT_LT(t.stats().duration, Seconds{30.0});
}

TEST(Generators, MakeHasComputeThinkTimes) {
  const trace::Trace t = make_trace();
  const auto s = t.stats();
  // "building Linux kernel ... takes several minutes".
  EXPECT_GT(s.duration, Seconds{5 * 60.0});
  EXPECT_LT(s.duration, Seconds{30 * 60.0});
  EXPECT_GT(s.writes, 0u);  // Object files are written.
  EXPECT_GT(s.distinct_files, 700u);
}

TEST(Generators, MakeReusesHeaders) {
  const trace::Trace t = make_trace();
  const auto s = t.stats();
  // Header re-reads mean bytes_read exceeds the read footprint.
  EXPECT_GT(s.bytes_read, s.footprint / 2);
}

TEST(Generators, XmmsIsPacedByBitrate) {
  XmmsParams p;
  const trace::Trace t = xmms_trace(p);
  const auto s = t.stats();
  // 47.9 MB at 128 kbps is ~50 minutes of music.
  const double expected_duration =
      s.bytes_read.as_double() / (128000.0 / 8.0);
  EXPECT_NEAR(s.duration.value(), expected_duration, 0.2 * expected_duration);
  EXPECT_EQ(s.distinct_files, 116u);
}

TEST(Generators, XmmsMaxDurationCapsTheTrace) {
  XmmsParams p;
  p.max_duration = Seconds{60.0};
  const trace::Trace t = xmms_trace(p);
  EXPECT_LE(t.end_time(), Seconds{70.0});
  EXPECT_GT(t.size(), 0u);
}

TEST(Generators, MplayerMatchesTable3) {
  const trace::Trace t = mplayer_trace();
  const auto s = t.stats();
  EXPECT_EQ(s.distinct_files, 121u);  // 3 movies + 118 aux files.
  EXPECT_NEAR(s.footprint.as_double(), 136.3e6, 0.2 * 136.3e6);
}

TEST(Generators, MplayerIsSparseAfterStartup) {
  const trace::Trace t = mplayer_trace();
  // Playback is paced: the trace spans minutes, not seconds.
  EXPECT_GT(t.stats().duration, Seconds{5 * 60.0});
}

TEST(Generators, ThunderbirdHasTwoPhases) {
  const trace::Trace t = thunderbird_trace();
  const auto s = t.stats();
  EXPECT_EQ(s.distinct_files, 283u);  // Table 3.
  EXPECT_NEAR(s.footprint.as_double(), 188.1e6, 0.2 * 188.1e6);
  // Phase 1 (reading with think times) dominates the duration; phase 2
  // (search) dominates the bytes.
  EXPECT_GT(s.duration, Seconds{120.0});
  EXPECT_GT(s.bytes_read, static_cast<Bytes>(100e6));
}

TEST(Generators, AcroreadCurrentRunScans20MBFiles) {
  const trace::Trace t = acroread_trace();
  const auto extents = t.file_extents();
  EXPECT_EQ(extents.size(), 10u);  // Table 3: 10 files.
  for (const auto& [ino, extent] : extents) {
    EXPECT_EQ(extent, static_cast<Bytes>(20e6));
  }
}

TEST(Generators, AcroreadStaleProfileRunIsLighter) {
  const trace::Trace stale = acroread_trace(AcroreadParams::stale_profile_run());
  const trace::Trace current = acroread_trace();
  EXPECT_LT(stale.stats().bytes_read, current.stats().bytes_read / 5);
  // Stale run pauses 25 s (beyond the 20 s disk timeout); current run 10 s.
  EXPECT_GT(stale.stats().duration, current.stats().duration * 0.8);
}

TEST(Generators, SameSeedsReproduceSameTrace) {
  const trace::Trace a = grep_trace(GrepParams{}, 5, 9);
  const trace::Trace b = grep_trace(GrepParams{}, 5, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Generators, RunSeedChangesThinkTimesOnly) {
  const trace::Trace a = mplayer_trace(MplayerParams{}, 5, 1);
  const trace::Trace b = mplayer_trace(MplayerParams{}, 5, 2);
  // Same files (structure seed), different timing (run seed).
  EXPECT_EQ(a.file_set(), b.file_set());
  EXPECT_NE(a.end_time(), b.end_time());
}

TEST(Generators, StructureSeedChangesFileSizes) {
  const trace::Trace a = grep_trace(GrepParams{}, 1, 1);
  const trace::Trace b = grep_trace(GrepParams{}, 2, 1);
  EXPECT_NE(a.file_extents(), b.file_extents());
}

TEST(Scenarios, AllFiveArePresent) {
  const auto scenarios = all_scenarios(1);
  ASSERT_EQ(scenarios.size(), 5u);
  EXPECT_EQ(scenarios[0].name, "grep+make");
  EXPECT_EQ(scenarios[1].name, "mplayer");
  EXPECT_EQ(scenarios[2].name, "thunderbird");
  EXPECT_EQ(scenarios[3].name, "grep+make/xmms");
  EXPECT_EQ(scenarios[4].name, "acroread(stale-profile)");
}

TEST(Scenarios, GrepMakeSequencing) {
  const auto s = scenario_grep_make(1);
  ASSERT_EQ(s.programs.size(), 2u);
  // make starts after grep ends in the trace timeline.
  EXPECT_GT(s.programs[1].trace.start_time(),
            s.programs[0].trace.end_time());
  EXPECT_EQ(s.profiles.size(), 2u);
  EXPECT_FALSE(s.oracle_future.empty());
}

TEST(Scenarios, ProfilesComeFromADifferentRun) {
  const auto s = scenario_mplayer(1);
  ASSERT_EQ(s.profiles.size(), 1u);
  // Same files, different timing: profile bytes match the eval footprint
  // closely but not the timestamps.
  const auto eval_stats = s.programs[0].trace.stats();
  EXPECT_NEAR(s.profiles[0].total_bytes().as_double(),
              eval_stats.bytes_read.as_double(), 0.1 * 136e6);
}

TEST(Scenarios, ForcedSpinupHasPinnedXmms) {
  const auto s = scenario_forced_spinup(1);
  ASSERT_EQ(s.programs.size(), 3u);
  const auto& xmms = s.programs[2];
  EXPECT_EQ(xmms.name, "xmms");
  EXPECT_FALSE(xmms.profiled);
  EXPECT_TRUE(xmms.disk_pinned);
  // xmms plays for the duration of the programming session.
  EXPECT_GT(xmms.trace.end_time(),
            s.programs[1].trace.end_time() * 0.8);
}

TEST(Scenarios, StaleAcroreadProfileDiffersFromRun) {
  const auto s = scenario_stale_acroread(1);
  ASSERT_EQ(s.profiles.size(), 1u);
  const Bytes run_bytes = s.programs[0].trace.stats().bytes_read;
  EXPECT_LT(s.profiles[0].total_bytes(), run_bytes / 5);
}

TEST(Scenarios, DifferentSeedsProduceDifferentScenarios) {
  const auto a = scenario_thunderbird(1);
  const auto b = scenario_thunderbird(2);
  EXPECT_NE(a.programs[0].trace.end_time(), b.programs[0].trace.end_time());
}

// The default-constructed ScenarioTuning must be the EXACT identity:
// every pre-fleet artifact was generated through the untuned entry
// points, and those now delegate through the tuned ones. Record-level
// equality (SyscallRecord has defaulted operator==) catches any scaling
// helper that fails to short-circuit at 1.0.
TEST(Scenarios, DefaultTuningIsBitIdentical) {
  for (std::size_t i = 0; i < kScenarioCount; ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    const auto untuned = all_scenarios(7)[i];
    const auto tuned = all_scenarios(7, ScenarioTuning{})[i];
    ASSERT_EQ(untuned.programs.size(), tuned.programs.size());
    for (std::size_t p = 0; p < untuned.programs.size(); ++p) {
      EXPECT_EQ(untuned.programs[p].trace.records(),
                tuned.programs[p].trace.records());
    }
    EXPECT_EQ(untuned.oracle_future.records(), tuned.oracle_future.records());
    EXPECT_EQ(untuned.profiles.size(), tuned.profiles.size());
  }
}

TEST(Scenarios, TuningActuallyScales) {
  const ScenarioTuning light{1.0, 0.1};
  const auto full = scenario_grep_make(1);
  const auto scaled = scenario_grep_make(1, light);
  // A 10x-lighter workload must shed most of its records...
  EXPECT_LT(scaled.programs[0].trace.size(), full.programs[0].trace.size());
  // ...while a slower user stretches time without changing the workload.
  const ScenarioTuning slow{3.0, 1.0};
  const auto stretched = scenario_grep_make(1, slow);
  EXPECT_GT(stretched.programs[1].trace.end_time(),
            full.programs[1].trace.end_time());
  EXPECT_EQ(stretched.programs[0].trace.size(), full.programs[0].trace.size());
}

}  // namespace
}  // namespace flexfetch::workloads
