#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "telemetry/emit.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/generators.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

using telemetry::Category;
using telemetry::EventDesc;
using telemetry::Histogram;
using telemetry::Level;
using telemetry::MetricsRegistry;
using telemetry::Phase;
using telemetry::Recorder;
using telemetry::RecorderHandle;
using telemetry::TelemetryConfig;
using telemetry::TraceEvent;
namespace track = telemetry::track;

// --- Recorder ring buffer ---------------------------------------------------

constexpr EventDesc kTick{.name = "tick", .n_args = 1, .keys = {"i"}};

TEST(Recorder, RingOverflowKeepsNewestInOrder) {
  Recorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.instant(kTick, static_cast<Seconds>(i), static_cast<double>(i));
  }
  EXPECT_EQ(rec.emitted(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.size(), 4u);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);  // newest 4 survive, oldest first
    EXPECT_DOUBLE_EQ(events[i].args[0].num, static_cast<double>(6 + i));
  }
}

TEST(Recorder, ZeroCapacityIsMetricsOnly) {
  Recorder rec(0);
  for (int i = 0; i < 5; ++i) {
    rec.instant(kTick, Seconds{0.0}, static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.emitted(), 5u);   // direct emission still tallies
  EXPECT_EQ(rec.dropped(), 5u);   // ...and counts every drop
  EXPECT_TRUE(rec.events().empty());
  EXPECT_TRUE(rec.take_events().empty());
}

TEST(Recorder, TakeEventsDrainsButKeepsTallies) {
  Recorder rec(8);
  rec.instant(kTick, Seconds{1.0}, 0.0);
  rec.instant(kTick, Seconds{2.0}, 1.0);
  const auto taken = rec.take_events();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.emitted(), 2u);
  EXPECT_EQ(rec.dropped(), 0u);  // drained events were delivered, not lost
}

TEST(Recorder, PackedRecordRoundTrip) {
  static constexpr EventDesc kIo{.name = "disk.read",
                                 .category = Category::kDisk,
                                 .phase = Phase::kSpan,
                                 .level = Level::kDetail,
                                 .n_args = 3,
                                 .str_mask = 0b010,
                                 .track = track::kDiskIo,
                                 .keys = {"lba", "op", "bytes"}};
  Recorder rec(8);
  rec.span(kIo, Seconds{1.5}, Seconds{2.25}, 42.0, "read", 4096.0);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& ev = events[0];
  EXPECT_STREQ(ev.name, "disk.read");
  EXPECT_EQ(ev.category, Category::kDisk);
  EXPECT_EQ(ev.phase, Phase::kSpan);
  EXPECT_EQ(ev.track, track::kDiskIo);
  EXPECT_EQ(ev.seq, 0u);
  EXPECT_DOUBLE_EQ(ev.start.value(), 1.5);
  EXPECT_DOUBLE_EQ(ev.duration.value(), 0.75);
  ASSERT_EQ(ev.n_args, 3u);
  EXPECT_STREQ(ev.args[0].key, "lba");
  EXPECT_EQ(ev.args[0].str, nullptr);
  EXPECT_DOUBLE_EQ(ev.args[0].num, 42.0);
  EXPECT_STREQ(ev.args[1].key, "op");
  EXPECT_STREQ(ev.args[1].str, "read");
  EXPECT_STREQ(ev.args[2].key, "bytes");
  EXPECT_DOUBLE_EQ(ev.args[2].num, 4096.0);
}

TEST(Recorder, HandleCopyDetaches) {
  Recorder rec(8);
  RecorderHandle h;
  h.attach(&rec);
  ASSERT_TRUE(h);

  // Copies model estimator/shadow device clones: they must stay silent.
  RecorderHandle copy(h);
  EXPECT_FALSE(copy);
  RecorderHandle assigned;
  assigned.attach(&rec);
  assigned = h;
  EXPECT_FALSE(assigned);
  EXPECT_TRUE(h);  // the original stays attached
}

// --- Admission: levels and sampling -----------------------------------------

constexpr EventDesc kKeyEvent{.name = "key", .level = Level::kKey};
constexpr EventDesc kDetailEvent{.name = "detail", .level = Level::kDetail};
constexpr EventDesc kVerboseEvent{.name = "verbose", .level = Level::kVerbose};

TEST(Admission, LevelMaskGatesPerCategory) {
  TelemetryConfig config;
  config.enabled = true;
  config.ring_capacity = 16;
  config.set_level(static_cast<std::uint8_t>(Level::kDetail));
  Recorder rec(config);

  EXPECT_TRUE(rec.admits(kKeyEvent));
  EXPECT_TRUE(rec.admits(kDetailEvent));
  EXPECT_FALSE(rec.admits(kVerboseEvent));
}

TEST(Admission, ZeroRingCapacityRejectsEverything) {
  TelemetryConfig config;
  config.enabled = true;  // metrics-only: ring_capacity stays 0
  Recorder rec(config);
  EXPECT_FALSE(rec.admits(kKeyEvent));
  EXPECT_FALSE(rec.admits(kDetailEvent));
  EXPECT_FALSE(rec.admits(kVerboseEvent));
  EXPECT_EQ(rec.emitted(), 0u);  // rejected events are never constructed
  EXPECT_EQ(rec.dropped(), 0u);
}

/// The sampler is a pure function of (emission index, seed): the same
/// configuration admits the identical index set on every run, and the
/// phase spreads across seeds.
TEST(Admission, SamplingIsDeterministicAndSeeded) {
  constexpr int kEvents = 100;
  constexpr std::uint32_t kEvery = 4;
  auto admitted_set = [&](std::uint64_t seed) {
    TelemetryConfig config;
    config.enabled = true;
    config.ring_capacity = 256;
    config.sample_every = kEvery;
    config.sample_seed = seed;
    Recorder rec(config);
    std::vector<int> admitted;
    for (int i = 0; i < kEvents; ++i) {
      if (rec.admits(kKeyEvent)) admitted.push_back(i);
    }
    return admitted;
  };

  const auto a = admitted_set(7);
  const auto b = admitted_set(7);
  EXPECT_EQ(a, b);  // rerun with the same seed: identical admitted set
  ASSERT_EQ(a.size(), kEvents / kEvery);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // seed 7, N 4: phase 3, so indices 3, 7, 11...
    EXPECT_EQ(a[i], static_cast<int>(3 + kEvery * i));
  }
  const auto c = admitted_set(9);  // phase 1
  EXPECT_NE(a, c);
  EXPECT_EQ(c.size(), kEvents / kEvery);
}

/// The cost contract of FF_EMIT_*: a rejected event's argument
/// expressions are never evaluated (and neither is the record packed).
TEST(Admission, RejectedEmitNeverEvaluatesArgs) {
  TelemetryConfig config;
  config.enabled = true;
  config.ring_capacity = 16;
  config.set_level(static_cast<std::uint8_t>(Level::kKey));
  Recorder rec(config);

  int evaluations = 0;
  auto costly = [&]() -> double {
    ++evaluations;
    return 1.0;
  };

  FF_EMIT_INSTANT(&rec, kVerboseEvent, Seconds{0.0}, costly());
  EXPECT_EQ(evaluations, 0);  // level-rejected: arg untouched
  EXPECT_EQ(rec.emitted(), 0u);

  Recorder* null_rec = nullptr;
  FF_EMIT_INSTANT(null_rec, kKeyEvent, Seconds{0.0}, costly());
  EXPECT_EQ(evaluations, 0);  // telemetry off: arg untouched

  FF_EMIT_INSTANT(&rec, kKeyEvent, Seconds{0.0}, costly());
  EXPECT_EQ(evaluations, 1);  // admitted: evaluated exactly once
  EXPECT_EQ(rec.emitted(), 1u);
}

// --- Metrics registry -------------------------------------------------------

TEST(Metrics, CounterGaugeAndMaxSemantics) {
  MetricsRegistry m;
  m.add("c");
  m.add("c", 2.5);
  EXPECT_DOUBLE_EQ(m.value("c"), 3.5);

  m.set("g", 7.0);
  m.set("g", 4.0);
  EXPECT_DOUBLE_EQ(m.value("g"), 4.0);

  m.set_max("hw", 3.0);
  m.set_max("hw", 9.0);
  m.set_max("hw", 5.0);
  EXPECT_DOUBLE_EQ(m.value("hw"), 9.0);

  EXPECT_DOUBLE_EQ(m.value("absent"), 0.0);
  EXPECT_FALSE(m.contains("absent"));
  EXPECT_EQ(m.size(), 3u);
}

TEST(Metrics, MergeFoldsPerKind) {
  MetricsRegistry a;
  a.add("c", 10.0);
  a.set("g", 1.0);
  a.set_max("hw", 5.0);
  a.add("only_a", 1.0);

  MetricsRegistry b;
  b.add("c", 4.0);
  b.set("g", 2.0);
  b.set_max("hw", 3.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("c"), 14.0);   // counters add
  EXPECT_DOUBLE_EQ(a.value("g"), 2.0);    // gauges take the other's value
  EXPECT_DOUBLE_EQ(a.value("hw"), 5.0);   // high-watermarks take the max
  EXPECT_DOUBLE_EQ(a.value("only_a"), 1.0);
}

TEST(Metrics, KindMismatchIsConfigError) {
  MetricsRegistry m;
  m.add("x");
  EXPECT_THROW(m.set("x", 1.0), ConfigError);

  MetricsRegistry counter, gauge;
  counter.add("y");
  gauge.set("y", 1.0);
  EXPECT_THROW(counter.merge(gauge), ConfigError);
}

TEST(Metrics, ItemsIterateInSortedNameOrder) {
  MetricsRegistry m;
  m.add("zeta");
  m.add("alpha");
  m.add("mid");
  std::vector<std::string> names;
  for (const auto& [name, metric] : m.items()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// --- Histograms -------------------------------------------------------------

TEST(Histograms, RecordCoversBucketGeometry) {
  Histogram h;
  h.record(0.0);      // below range -> bucket 0
  h.record(1.0);
  h.record(1.0e12);   // above range -> clamped into the last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0e12);
  std::uint64_t total = 0;
  for (const auto b : h.buckets()) total += b;
  EXPECT_EQ(total, 3u);
}

/// Merge is a bucket-wise integer add, so it must be exact and
/// associative: (a + b) + c == a + (b + c), including count/sum/min/max.
/// Samples are chosen dyadic so even the floating-point sums are exact.
TEST(Histograms, MergeIsExactAndAssociative) {
  auto fill = [](Histogram& h, double scale, int n) {
    for (int i = 1; i <= n; ++i) h.record(scale * static_cast<double>(i));
  };
  Histogram a, b, c;
  fill(a, 0.25, 17);
  fill(b, 2.0, 23);
  fill(c, 1024.0, 11);

  Histogram left_first = a;   // (a + b) + c
  left_first.merge(b);
  left_first.merge(c);

  Histogram right_first = b;  // a + (b + c)
  right_first.merge(c);
  Histogram a2 = a;
  a2.merge(right_first);

  EXPECT_EQ(left_first, a2);

  // And both equal recording every sample into one histogram.
  Histogram sequential;
  fill(sequential, 0.25, 17);
  fill(sequential, 2.0, 23);
  fill(sequential, 1024.0, 11);
  EXPECT_EQ(left_first, sequential);
}

TEST(Histograms, RegistryMergeFoldsHistograms) {
  MetricsRegistry a, b;
  a.histogram("h").record(1.0);
  b.histogram("h").record(2.0);
  b.histogram("only_b").record(4.0);
  a.merge(b);
  ASSERT_NE(a.find_histogram("h"), nullptr);
  EXPECT_EQ(a.find_histogram("h")->count(), 2u);
  ASSERT_NE(a.find_histogram("only_b"), nullptr);
  EXPECT_EQ(a.find_histogram("only_b")->count(), 1u);
}

// --- Exporters --------------------------------------------------------------

/// A tiny scripted run must export byte-for-byte stable Chrome-trace JSON:
/// the golden below is the determinism contract for the exporter.
TEST(Exporters, GoldenChromeTraceJson) {
  static constexpr EventDesc kFreeRide{.name = "free_ride",
                                       .category = Category::kPolicy,
                                       .level = Level::kKey,
                                       .track = track::kPolicy};
  static constexpr EventDesc kActive{.name = "Active",
                                     .category = Category::kDisk,
                                     .phase = Phase::kSpan,
                                     .n_args = 2,
                                     .str_mask = 0b10,
                                     .track = track::kDiskPower,
                                     .keys = {"lba", "op"}};
  static constexpr EventDesc kDepth{.name = "sched.depth",
                                    .category = Category::kScheduler,
                                    .phase = Phase::kCounter,
                                    .level = Level::kVerbose,
                                    .track = track::kScheduler};
  Recorder rec(8);
  rec.instant(kFreeRide, Seconds{1.5});
  rec.span(kActive, Seconds{0.0}, Seconds{2.5}, 42.0, "read");
  rec.counter(kDepth, Seconds{3.0}, 7.0);

  MetricsRegistry metrics;
  metrics.add("disk.requests", 1.0);

  std::ostringstream os;
  telemetry::write_chrome_trace(os, rec.events(), rec.dropped(), &metrics);

  const std::string expected = R"({
  "displayTimeUnit": "ms",
  "otherData": {
    "dropped_events": 0,
    "disk.requests": 1
  },
  "traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "flexfetch-sim"}},
    {"name": "telemetry.dropped", "ph": "M", "pid": 1, "tid": 0, "args": {"dropped": 0}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "sim.syscalls"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 0, "args": {"sort_index": 0}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "disk.power"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 1, "args": {"sort_index": 1}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 2, "args": {"name": "disk.io"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 2, "args": {"sort_index": 2}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 3, "args": {"name": "wnic.power"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 3, "args": {"sort_index": 3}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 4, "args": {"name": "wnic.io"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 4, "args": {"sort_index": 4}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 5, "args": {"name": "writeback"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 5, "args": {"sort_index": 5}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 6, "args": {"name": "scheduler"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 6, "args": {"sort_index": 6}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 7, "args": {"name": "policy"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 7, "args": {"sort_index": 7}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 8, "args": {"name": "faults"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 8, "args": {"sort_index": 8}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 9, "args": {"name": "medium"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 9, "args": {"sort_index": 9}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 10, "args": {"name": "server"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 10, "args": {"sort_index": 10}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 11, "args": {"name": "battery"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 11, "args": {"sort_index": 11}},
    {"name": "free_ride", "cat": "policy", "pid": 1, "tid": 7, "ts": 1500000, "ph": "i", "s": "t", "args": {}},
    {"name": "Active", "cat": "disk", "pid": 1, "tid": 1, "ts": 0, "ph": "X", "dur": 2500000, "args": {"lba": 42, "op": "read"}},
    {"name": "sched.depth", "cat": "scheduler", "pid": 1, "tid": 6, "ts": 3000000, "ph": "C", "args": {"value": 7}}
  ]
}
)";
  EXPECT_EQ(os.str(), expected);
}

/// Scans JSON for structural balance, skipping string contents.
void expect_balanced_json(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Exporters, RealSimulationTraceIsWellFormed) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, trace, policy);
  ASSERT_FALSE(r.trace_events.empty());

  std::ostringstream os;
  telemetry::write_chrome_trace(os, r.trace_events, r.trace_events_dropped,
                                &r.metrics);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"disk.energy_j\""), std::string::npos);
}

TEST(Exporters, TextTimelineOrdersByTime) {
  static constexpr EventDesc kLater{.name = "later"};
  static constexpr EventDesc kEarlier{.name = "earlier"};
  Recorder rec(8);
  rec.instant(kLater, Seconds{2.0});
  rec.instant(kEarlier, Seconds{1.0});
  const auto events = rec.events();

  std::ostringstream os;
  telemetry::write_text_timeline(os, events);
  const std::string text = os.str();
  const auto earlier = text.find("earlier");
  const auto later = text.find("later");
  ASSERT_NE(earlier, std::string::npos);
  ASSERT_NE(later, std::string::npos);
  EXPECT_LT(earlier, later);
}

// --- Whole-simulator integration --------------------------------------------

TEST(Telemetry, DiskPowerSpansTileTheTimeline) {
  // Thunderbird's 22 s think times straddle the 20 s spin-down timeout, so
  // the disk cycles idle -> spin-down -> standby -> spin-up repeatedly.
  const auto trace = workloads::thunderbird_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, trace, policy);
  EXPECT_EQ(r.trace_events_dropped, 0u);

  std::vector<const TraceEvent*> spans;
  for (const auto& ev : r.trace_events) {
    if (ev.track == track::kDiskPower && ev.phase == Phase::kSpan) {
      spans.push_back(&ev);
    }
  }
  ASSERT_GT(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans.front()->start.value(), 0.0);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    // The power-state story is gap-free: each state span begins where the
    // previous one ended.
    EXPECT_DOUBLE_EQ(spans[i]->start.value(), spans[i - 1]->end().value());
  }
  EXPECT_GT(spans.back()->end(), Seconds{0.0});
  EXPECT_LE(spans.back()->end(), r.makespan * (1.0 + 1e-12) + Seconds{1e-9});
}

TEST(Telemetry, MetricsMirrorSimulatorStatistics) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;  // metrics-only: the default ring is 0
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, trace, policy);

  EXPECT_TRUE(r.trace_events.empty());
  EXPECT_DOUBLE_EQ(r.metrics.value("sim.syscalls"),
                   static_cast<double>(r.syscalls));
  EXPECT_DOUBLE_EQ(r.metrics.value("cache.hits"),
                   static_cast<double>(r.cache_stats.hits));
  EXPECT_DOUBLE_EQ(r.metrics.value("disk.energy_j"), r.disk_energy().value());
  EXPECT_DOUBLE_EQ(r.metrics.value("sim.makespan_s"), r.makespan.value());
  // Metrics-only means no event is admitted — or even constructed.
  EXPECT_DOUBLE_EQ(r.metrics.value("telemetry.events_emitted"), 0.0);
  EXPECT_DOUBLE_EQ(r.metrics.value("telemetry.dropped"), 0.0);
  // The pre-aggregated histograms carry what events used to.
  const Histogram* lat = r.metrics.find_histogram("hist.syscall_latency_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_GT(lat->count(), 0u);
  const Histogram* svc = r.metrics.find_histogram("hist.disk_service_s");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->count(), static_cast<std::uint64_t>(r.disk_requests));
}

TEST(Telemetry, RingCaptureEventsMatchHistogramCounts) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, trace, policy);
  ASSERT_EQ(r.trace_events_dropped, 0u);

  // Full capture and pre-aggregation describe the same run: every disk
  // service span in the ring has a sample in the service-time histogram.
  std::uint64_t disk_spans = 0;
  for (const auto& ev : r.trace_events) {
    if (ev.track == track::kDiskIo && ev.phase == Phase::kSpan) ++disk_spans;
  }
  const Histogram* svc = r.metrics.find_histogram("hist.disk_service_s");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->count(), disk_spans);
}

TEST(Telemetry, FlexFetchPolicyEmitsStageAndDecisionEvents) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid({&scenario}, {"flexfetch"},
                              {device::WnicParams::cisco_aironet350()});
  ASSERT_EQ(cells.size(), 1u);
  cells[0].config.telemetry.enabled = true;
  cells[0].config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;

  const auto results = sim::run_sweep(cells, {.jobs = 1});
  const sim::SimResult& r = results[0];
  EXPECT_GE(r.metrics.value("ff.stages_entered"), 1.0);

  bool saw_stage_enter = false;
  bool saw_decision = false;
  for (const auto& ev : r.trace_events) {
    if (std::string_view(ev.name) == "stage.enter") saw_stage_enter = true;
    if (std::string_view(ev.name) == "decision.stage") saw_decision = true;
  }
  EXPECT_TRUE(saw_stage_enter);
  EXPECT_TRUE(saw_decision);
}

/// Key-level capture is a strict, deterministic subset of full capture:
/// the same run at Level::kKey admits exactly the key-level events, in the
/// same order, without perturbing the simulation.
TEST(Telemetry, LeveledCaptureIsASubsetOfFullCapture) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto run_at = [&](std::uint8_t level) {
    auto cells = sim::make_grid({&scenario}, {"flexfetch"},
                                {device::WnicParams::cisco_aironet350()});
    cells[0].config.telemetry.enabled = true;
    cells[0].config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
    cells[0].config.telemetry.set_level(level);
    return sim::run_sweep(cells, {.jobs = 1})[0];
  };
  const auto full = run_at(telemetry::kLevelFull);
  const auto key = run_at(static_cast<std::uint8_t>(Level::kKey));

  ASSERT_FALSE(key.trace_events.empty());
  EXPECT_LT(key.trace_events.size(), full.trace_events.size());
  // Filtering the full capture down to key-level sites must reproduce the
  // key run: same names, same order.
  std::vector<std::string> full_key_names;
  for (const auto& ev : full.trace_events) {
    if (ev.category == Category::kPolicy || ev.category == Category::kFault) {
      full_key_names.push_back(ev.name);
    }
  }
  std::vector<std::string> key_names;
  key_names.reserve(key.trace_events.size());
  for (const auto& ev : key.trace_events) key_names.push_back(ev.name);
  EXPECT_EQ(key_names, full_key_names);
  // And the two runs simulated the identical world.
  EXPECT_EQ(full.makespan, key.makespan);
  EXPECT_EQ(full.total_energy(), key.total_energy());
}

/// Sampled capture stays bit-identical between serial and parallel sweeps:
/// admission depends only on the per-cell emission sequence and seed.
TEST(Telemetry, SampledCaptureIsIdenticalSerialVsParallel) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid({&scenario}, {"flexfetch", "disk-only"},
                              {device::WnicParams::cisco_aironet350()});
  for (auto& cell : cells) {
    cell.config.telemetry.enabled = true;
    cell.config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
    cell.config.telemetry.sample_every = 3;
    cell.config.telemetry.sample_seed = 11;
  }

  const auto serial = sim::run_sweep(cells, {.jobs = 1});
  const auto parallel = sim::run_sweep(cells, {.jobs = 2});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(cells[i].policy);
    const auto& s = serial[i].trace_events;
    const auto& p = parallel[i].trace_events;
    ASSERT_EQ(s.size(), p.size());
    ASSERT_FALSE(s.empty());
    for (std::size_t e = 0; e < s.size(); ++e) {
      EXPECT_EQ(s[e].seq, p[e].seq);
      EXPECT_STREQ(s[e].name, p[e].name);
      EXPECT_EQ(s[e].start, p[e].start);
    }
  }
}

/// The acceptance contract of the whole subsystem: switching telemetry on
/// (metrics-only, as sweeps do) must not perturb a single simulated number.
TEST(Telemetry, SweepResultsBitIdenticalTelemetryOnVsOff) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells_off = sim::make_grid({&scenario}, {"flexfetch", "disk-only"},
                                  {device::WnicParams::cisco_aironet350()});
  auto cells_on = cells_off;
  for (auto& cell : cells_on) {
    cell.config.telemetry.enabled = true;  // metrics-only by default
  }

  const auto off = sim::run_sweep(cells_off, {.jobs = 1});
  const auto on = sim::run_sweep(cells_on, {.jobs = 1});
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    SCOPED_TRACE(cells_off[i].policy);
    EXPECT_EQ(off[i].makespan, on[i].makespan);
    EXPECT_EQ(off[i].io_time, on[i].io_time);
    EXPECT_EQ(off[i].total_energy(), on[i].total_energy());
    EXPECT_EQ(off[i].disk_energy(), on[i].disk_energy());
    EXPECT_EQ(off[i].wnic_energy(), on[i].wnic_energy());
    EXPECT_EQ(off[i].syscalls, on[i].syscalls);
    EXPECT_EQ(off[i].disk_requests, on[i].disk_requests);
    EXPECT_EQ(off[i].net_requests, on[i].net_requests);
    EXPECT_EQ(off[i].disk_bytes, on[i].disk_bytes);
    EXPECT_EQ(off[i].net_bytes, on[i].net_bytes);
    EXPECT_TRUE(off[i].metrics.empty());   // off: no metrics collected
    EXPECT_FALSE(on[i].metrics.empty());   // on: per-cell metrics present
  }
}

}  // namespace
}  // namespace flexfetch
