#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/generators.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

using telemetry::Category;
using telemetry::MetricsRegistry;
using telemetry::Phase;
using telemetry::Recorder;
using telemetry::RecorderHandle;
using telemetry::TraceEvent;
namespace track = telemetry::track;

// --- Recorder ring buffer ---------------------------------------------------

TEST(Recorder, RingOverflowKeepsNewestInOrder) {
  Recorder rec(4);
  // 10 instants; names cycle so we can identify survivors.
  static const char* const kNames[] = {"e0", "e1", "e2", "e3", "e4",
                                       "e5", "e6", "e7", "e8", "e9"};
  for (int i = 0; i < 10; ++i) {
    rec.instant(Category::kSim, kNames[i], track::kSim,
                static_cast<Seconds>(i));
  }
  EXPECT_EQ(rec.emitted(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.size(), 4u);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);  // newest 4 survive, oldest first
    EXPECT_STREQ(events[i].name, kNames[6 + i]);
  }
}

TEST(Recorder, ZeroCapacityIsMetricsOnly) {
  Recorder rec(0);
  for (int i = 0; i < 5; ++i) {
    rec.instant(Category::kDisk, "x", track::kDiskIo, Seconds{0.0});
  }
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.emitted(), 5u);   // instrumentation still counts
  EXPECT_EQ(rec.dropped(), 5u);   // ...and tallies every drop
  EXPECT_TRUE(rec.events().empty());
  EXPECT_TRUE(rec.take_events().empty());
}

TEST(Recorder, TakeEventsDrainsButKeepsTallies) {
  Recorder rec(8);
  rec.instant(Category::kSim, "a", track::kSim, Seconds{1.0});
  rec.instant(Category::kSim, "b", track::kSim, Seconds{2.0});
  const auto taken = rec.take_events();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.emitted(), 2u);
}

TEST(Recorder, HandleCopyDetaches) {
  Recorder rec(8);
  RecorderHandle h;
  h.attach(&rec);
  ASSERT_TRUE(h);

  // Copies model estimator/shadow device clones: they must stay silent.
  RecorderHandle copy(h);
  EXPECT_FALSE(copy);
  RecorderHandle assigned;
  assigned.attach(&rec);
  assigned = h;
  EXPECT_FALSE(assigned);
  EXPECT_TRUE(h);  // the original stays attached
}

// --- Metrics registry -------------------------------------------------------

TEST(Metrics, CounterGaugeAndMaxSemantics) {
  MetricsRegistry m;
  m.add("c");
  m.add("c", 2.5);
  EXPECT_DOUBLE_EQ(m.value("c"), 3.5);

  m.set("g", 7.0);
  m.set("g", 4.0);
  EXPECT_DOUBLE_EQ(m.value("g"), 4.0);

  m.set_max("hw", 3.0);
  m.set_max("hw", 9.0);
  m.set_max("hw", 5.0);
  EXPECT_DOUBLE_EQ(m.value("hw"), 9.0);

  EXPECT_DOUBLE_EQ(m.value("absent"), 0.0);
  EXPECT_FALSE(m.contains("absent"));
  EXPECT_EQ(m.size(), 3u);
}

TEST(Metrics, MergeFoldsPerKind) {
  MetricsRegistry a;
  a.add("c", 10.0);
  a.set("g", 1.0);
  a.set_max("hw", 5.0);
  a.add("only_a", 1.0);

  MetricsRegistry b;
  b.add("c", 4.0);
  b.set("g", 2.0);
  b.set_max("hw", 3.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value("c"), 14.0);   // counters add
  EXPECT_DOUBLE_EQ(a.value("g"), 2.0);    // gauges take the other's value
  EXPECT_DOUBLE_EQ(a.value("hw"), 5.0);   // high-watermarks take the max
  EXPECT_DOUBLE_EQ(a.value("only_a"), 1.0);
}

TEST(Metrics, KindMismatchIsConfigError) {
  MetricsRegistry m;
  m.add("x");
  EXPECT_THROW(m.set("x", 1.0), ConfigError);

  MetricsRegistry counter, gauge;
  counter.add("y");
  gauge.set("y", 1.0);
  EXPECT_THROW(counter.merge(gauge), ConfigError);
}

TEST(Metrics, ItemsIterateInSortedNameOrder) {
  MetricsRegistry m;
  m.add("zeta");
  m.add("alpha");
  m.add("mid");
  std::vector<std::string> names;
  for (const auto& [name, metric] : m.items()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// --- Exporters --------------------------------------------------------------

/// A tiny scripted run must export byte-for-byte stable Chrome-trace JSON:
/// the golden below is the determinism contract for the exporter.
TEST(Exporters, GoldenChromeTraceJson) {
  Recorder rec(8);
  rec.instant(Category::kPolicy, "free_ride", track::kPolicy, Seconds{1.5});
  rec.span(Category::kDisk, "Active", track::kDiskPower, Seconds{0.0}, Seconds{2.5},
           {telemetry::num_arg("lba", 42.0),
            telemetry::str_arg("op", "read")});
  rec.counter(Category::kScheduler, "sched.depth", track::kScheduler, Seconds{3.0},
              7.0);

  MetricsRegistry metrics;
  metrics.add("disk.requests", 1.0);

  std::ostringstream os;
  telemetry::write_chrome_trace(os, rec.events(), rec.dropped(), &metrics);

  const std::string expected = R"({
  "displayTimeUnit": "ms",
  "otherData": {
    "dropped_events": 0,
    "disk.requests": 1
  },
  "traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "flexfetch-sim"}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "sim.syscalls"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 0, "args": {"sort_index": 0}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1, "args": {"name": "disk.power"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 1, "args": {"sort_index": 1}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 2, "args": {"name": "disk.io"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 2, "args": {"sort_index": 2}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 3, "args": {"name": "wnic.power"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 3, "args": {"sort_index": 3}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 4, "args": {"name": "wnic.io"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 4, "args": {"sort_index": 4}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 5, "args": {"name": "writeback"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 5, "args": {"sort_index": 5}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 6, "args": {"name": "scheduler"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 6, "args": {"sort_index": 6}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 7, "args": {"name": "policy"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 7, "args": {"sort_index": 7}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 8, "args": {"name": "faults"}},
    {"name": "thread_sort_index", "ph": "M", "pid": 1, "tid": 8, "args": {"sort_index": 8}},
    {"name": "free_ride", "cat": "policy", "pid": 1, "tid": 7, "ts": 1500000, "ph": "i", "s": "t", "args": {}},
    {"name": "Active", "cat": "disk", "pid": 1, "tid": 1, "ts": 0, "ph": "X", "dur": 2500000, "args": {"lba": 42, "op": "read"}},
    {"name": "sched.depth", "cat": "scheduler", "pid": 1, "tid": 6, "ts": 3000000, "ph": "C", "args": {"value": 7}}
  ]
}
)";
  EXPECT_EQ(os.str(), expected);
}

/// Scans JSON for structural balance, skipping string contents.
void expect_balanced_json(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Exporters, RealSimulationTraceIsWellFormed) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, trace, policy);
  ASSERT_FALSE(r.trace_events.empty());

  std::ostringstream os;
  telemetry::write_chrome_trace(os, r.trace_events, r.trace_events_dropped,
                                &r.metrics);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"disk.energy_j\""), std::string::npos);
}

TEST(Exporters, TextTimelineOrdersByTime) {
  Recorder rec(8);
  rec.instant(Category::kSim, "later", track::kSim, Seconds{2.0});
  rec.instant(Category::kSim, "earlier", track::kSim, Seconds{1.0});
  const auto events = rec.events();

  std::ostringstream os;
  telemetry::write_text_timeline(os, events);
  const std::string text = os.str();
  const auto earlier = text.find("earlier");
  const auto later = text.find("later");
  ASSERT_NE(earlier, std::string::npos);
  ASSERT_NE(later, std::string::npos);
  EXPECT_LT(earlier, later);
}

// --- Whole-simulator integration --------------------------------------------

TEST(Telemetry, DiskPowerSpansTileTheTimeline) {
  // Thunderbird's 22 s think times straddle the 20 s spin-down timeout, so
  // the disk cycles idle -> spin-down -> standby -> spin-up repeatedly.
  const auto trace = workloads::thunderbird_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, trace, policy);
  EXPECT_EQ(r.trace_events_dropped, 0u);

  std::vector<const TraceEvent*> spans;
  for (const auto& ev : r.trace_events) {
    if (ev.track == track::kDiskPower && ev.phase == Phase::kSpan) {
      spans.push_back(&ev);
    }
  }
  ASSERT_GT(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans.front()->start.value(), 0.0);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    // The power-state story is gap-free: each state span begins where the
    // previous one ended.
    EXPECT_DOUBLE_EQ(spans[i]->start.value(), spans[i - 1]->end().value());
  }
  EXPECT_GT(spans.back()->end(), Seconds{0.0});
  EXPECT_LE(spans.back()->end(), r.makespan * (1.0 + 1e-12) + Seconds{1e-9});
}

TEST(Telemetry, MetricsMirrorSimulatorStatistics) {
  const auto trace = workloads::grep_trace();
  sim::SimConfig config;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = 0;  // metrics-only
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, trace, policy);

  EXPECT_TRUE(r.trace_events.empty());
  EXPECT_DOUBLE_EQ(r.metrics.value("sim.syscalls"),
                   static_cast<double>(r.syscalls));
  EXPECT_DOUBLE_EQ(r.metrics.value("cache.hits"),
                   static_cast<double>(r.cache_stats.hits));
  EXPECT_DOUBLE_EQ(r.metrics.value("disk.energy_j"), r.disk_energy().value());
  EXPECT_DOUBLE_EQ(r.metrics.value("sim.makespan_s"), r.makespan.value());
  EXPECT_GT(r.metrics.value("telemetry.events_emitted"), 0.0);
  // Every emitted event was dropped: that is what metrics-only means.
  EXPECT_DOUBLE_EQ(r.metrics.value("telemetry.events_dropped"),
                   r.metrics.value("telemetry.events_emitted"));
}

TEST(Telemetry, FlexFetchPolicyEmitsStageAndDecisionEvents) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid({&scenario}, {"flexfetch"},
                              {device::WnicParams::cisco_aironet350()});
  ASSERT_EQ(cells.size(), 1u);
  cells[0].config.telemetry.enabled = true;

  const auto results = sim::run_sweep(cells, {.jobs = 1});
  const sim::SimResult& r = results[0];
  EXPECT_GE(r.metrics.value("ff.stages_entered"), 1.0);

  bool saw_stage_enter = false;
  bool saw_decision = false;
  for (const auto& ev : r.trace_events) {
    if (std::string_view(ev.name) == "stage.enter") saw_stage_enter = true;
    if (std::string_view(ev.name) == "decision.stage") saw_decision = true;
  }
  EXPECT_TRUE(saw_stage_enter);
  EXPECT_TRUE(saw_decision);
}

/// The acceptance contract of the whole subsystem: switching telemetry on
/// (metrics-only, as sweeps do) must not perturb a single simulated number.
TEST(Telemetry, SweepResultsBitIdenticalTelemetryOnVsOff) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells_off = sim::make_grid({&scenario}, {"flexfetch", "disk-only"},
                                  {device::WnicParams::cisco_aironet350()});
  auto cells_on = cells_off;
  for (auto& cell : cells_on) {
    cell.config.telemetry.enabled = true;
    cell.config.telemetry.ring_capacity = 0;
  }

  const auto off = sim::run_sweep(cells_off, {.jobs = 1});
  const auto on = sim::run_sweep(cells_on, {.jobs = 1});
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    SCOPED_TRACE(cells_off[i].policy);
    EXPECT_EQ(off[i].makespan, on[i].makespan);
    EXPECT_EQ(off[i].io_time, on[i].io_time);
    EXPECT_EQ(off[i].total_energy(), on[i].total_energy());
    EXPECT_EQ(off[i].disk_energy(), on[i].disk_energy());
    EXPECT_EQ(off[i].wnic_energy(), on[i].wnic_energy());
    EXPECT_EQ(off[i].syscalls, on[i].syscalls);
    EXPECT_EQ(off[i].disk_requests, on[i].disk_requests);
    EXPECT_EQ(off[i].net_requests, on[i].net_requests);
    EXPECT_EQ(off[i].disk_bytes, on[i].disk_bytes);
    EXPECT_EQ(off[i].net_bytes, on[i].net_bytes);
    EXPECT_TRUE(off[i].metrics.empty());   // off: no metrics collected
    EXPECT_FALSE(on[i].metrics.empty());   // on: per-cell metrics present
  }
}

}  // namespace
}  // namespace flexfetch
