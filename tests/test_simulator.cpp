#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policies/fixed.hpp"
#include "trace/builder.hpp"

namespace flexfetch::sim {
namespace {

trace::Trace tiny_trace(Seconds think = Seconds{1.0}) {
  trace::TraceBuilder b("tiny");
  b.process(50, 50);
  b.read(1, Bytes{0}, Bytes{64 * 1024});
  b.think(think);
  b.read(1, Bytes{64 * 1024}, Bytes{64 * 1024});
  return b.build();
}

SimConfig fast_config() {
  SimConfig c;
  c.collect_request_log = true;
  return c;
}

TEST(Simulator, DiskOnlySendsEverythingToDisk) {
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), tiny_trace(), policy);
  EXPECT_GT(r.disk_requests, 0u);
  EXPECT_EQ(r.net_requests, 0u);
  EXPECT_EQ(r.policy, "Disk-only");
  EXPECT_EQ(r.syscalls, 2u);
}

TEST(Simulator, WnicOnlySendsEverythingToNetwork) {
  policies::WnicOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), tiny_trace(), policy);
  EXPECT_EQ(r.disk_requests, 0u);
  EXPECT_GT(r.net_requests, 0u);
}

TEST(Simulator, EnergyIsChargedOnBothDevicesOverTheRun) {
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), tiny_trace(), policy);
  EXPECT_GT(r.disk_energy(), Joules{0.0});
  // The unused WNIC still idles (CAM then PSM) over the makespan.
  EXPECT_GT(r.wnic_energy(), Joules{0.0});
  EXPECT_NEAR(r.total_energy().value(), (r.disk_energy() + r.wnic_energy()).value(), 1e-9);
}

TEST(Simulator, MakespanCoversTraceSpan) {
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), tiny_trace(Seconds{5.0}), policy);
  EXPECT_GE(r.makespan, Seconds{5.0});  // At least the think time.
  EXPECT_LT(r.makespan, Seconds{10.0});  // But no runaway.
}

TEST(Simulator, CacheAbsorbsRepeatedReads) {
  trace::TraceBuilder b("repeat");
  for (int i = 0; i < 10; ++i) {
    b.read(1, Bytes{0}, Bytes{16 * 1024});
    b.think(Seconds{0.1});
  }
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), b.build(), policy);
  EXPECT_GT(r.cache_stats.hits, 0u);
  // Only the first read reaches the device.
  EXPECT_LE(r.disk_requests, 2u);
}

TEST(Simulator, ReadaheadMergesSequentialReads) {
  trace::TraceBuilder b("seq");
  b.read_file(1, Bytes{512 * 1024}, Bytes{4 * 1024});  // 128 4 KiB calls.
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), b.build(), policy);
  // Readahead coalesces the 128 calls into far fewer device requests.
  EXPECT_LT(r.disk_requests, 30u);
  EXPECT_GE(r.disk_bytes, Bytes{512u * 1024u});
}

TEST(Simulator, WritesAreBufferedAndFlushedInBackground) {
  trace::TraceBuilder b("writer");
  b.write_file(1, Bytes{256 * 1024}, Bytes{32 * 1024});
  b.think(Seconds{40.0});  // Give the flusher time (dirty expire + interval).
  b.read(2, Bytes{0}, Bytes{4096});
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), b.build(), policy);
  // The dirty pages eventually reach a device as write-back.
  bool saw_writeback = false;
  for (const auto& e : r.request_log) saw_writeback |= e.is_writeback;
  EXPECT_TRUE(saw_writeback);
  EXPECT_GE(r.disk_counters.bytes_written, Bytes{256u * 1024u});
}

TEST(Simulator, WritebackCanBeDisabled) {
  trace::TraceBuilder b("writer");
  b.write_file(1, Bytes{64 * 1024}, Bytes{32 * 1024});
  b.think(Seconds{60.0});
  b.read(2, Bytes{0}, Bytes{4096});
  SimConfig config = fast_config();
  config.enable_writeback = false;
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(config, b.build(), policy);
  for (const auto& e : r.request_log) EXPECT_FALSE(e.is_writeback);
}

TEST(Simulator, DiskPinnedProgramIgnoresPolicy) {
  std::vector<ProgramSpec> programs;
  programs.push_back(ProgramSpec{.trace = tiny_trace(),
                                 .name = "pinned",
                                 .profiled = false,
                                 .disk_pinned = true});
  policies::WnicOnlyPolicy policy;  // Would choose the network...
  Simulator sim(fast_config(), std::move(programs), policy);
  const SimResult r = sim.run();
  EXPECT_GT(r.disk_requests, 0u);  // ...but pinned data stays on disk.
  EXPECT_EQ(r.net_requests, 0u);
}

TEST(Simulator, ConcurrentProgramsShareTheDevices) {
  trace::TraceBuilder a("a");
  a.process(10, 10);
  a.read(1, Bytes{0}, Bytes{128 * 1024});
  trace::TraceBuilder b("b");
  b.process(20, 20);
  b.read(2, Bytes{0}, Bytes{128 * 1024});  // Same start time as program a.
  std::vector<ProgramSpec> programs;
  programs.push_back(ProgramSpec{.trace = a.build(), .name = "a"});
  programs.push_back(ProgramSpec{.trace = b.build(), .name = "b"});
  policies::DiskOnlyPolicy policy;
  Simulator sim(fast_config(), std::move(programs), policy);
  const SimResult r = sim.run();
  EXPECT_EQ(r.syscalls, 2u);
  EXPECT_GE(r.disk_requests, 2u);
  // Device serialization: the two services cannot overlap.
  ASSERT_GE(r.request_log.size(), 2u);
  const auto& first = r.request_log[0];
  const auto& second = r.request_log[1];
  EXPECT_GE(second.completion, first.completion);
}

TEST(Simulator, ThinkTimesComeFromTraceGaps) {
  policies::DiskOnlyPolicy policy;
  const SimResult fast = simulate(fast_config(), tiny_trace(Seconds{0.1}), policy);
  policies::DiskOnlyPolicy policy2;
  const SimResult slow = simulate(fast_config(), tiny_trace(Seconds{10.0}), policy2);
  EXPECT_GT(slow.makespan, fast.makespan + Seconds{9.0});
}

TEST(Simulator, IoTimeExcludesThinkTime) {
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), tiny_trace(Seconds{10.0}), policy);
  EXPECT_LT(r.io_time, Seconds{1.0});  // Two small reads: well under a second.
  EXPECT_GT(r.io_time, Seconds{0.0});
}

TEST(Simulator, EmptyProgramListRejected) {
  policies::DiskOnlyPolicy policy;
  EXPECT_THROW(Simulator(SimConfig{}, {}, policy), ConfigError);
}

TEST(Simulator, RequestLogDisabledByDefault) {
  SimConfig config;  // collect_request_log = false.
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(config, tiny_trace(), policy);
  EXPECT_TRUE(r.request_log.empty());
}

TEST(Simulator, DeterministicAcrossRuns) {
  policies::DiskOnlyPolicy p1;
  policies::DiskOnlyPolicy p2;
  const SimResult a = simulate(fast_config(), tiny_trace(), p1);
  const SimResult b = simulate(fast_config(), tiny_trace(), p2);
  EXPECT_DOUBLE_EQ(a.total_energy().value(), b.total_energy().value());
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.disk_requests, b.disk_requests);
}

TEST(Simulator, ReportMentionsPolicyAndEnergy) {
  policies::DiskOnlyPolicy policy;
  const SimResult r = simulate(fast_config(), tiny_trace(), policy);
  const std::string report = r.report();
  EXPECT_NE(report.find("Disk-only"), std::string::npos);
  EXPECT_NE(report.find("energy total"), std::string::npos);
}

}  // namespace
}  // namespace flexfetch::sim
