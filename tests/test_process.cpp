#include "os/process.hpp"

#include <gtest/gtest.h>

namespace flexfetch::os {
namespace {

TEST(ProcessTable, RegisterAndLookup) {
  ProcessTable t;
  t.register_program(100, "make");
  EXPECT_TRUE(t.known(100));
  EXPECT_EQ(t.name_of(100), "make");
  EXPECT_TRUE(t.is_profiled(100));
  EXPECT_EQ(t.size(), 1u);
}

TEST(ProcessTable, UnknownGroup) {
  ProcessTable t;
  EXPECT_FALSE(t.known(5));
  EXPECT_EQ(t.name_of(5), "<unknown>");
  EXPECT_FALSE(t.is_profiled(5));
}

TEST(ProcessTable, UnprofiledProgram) {
  ProcessTable t;
  t.register_program(200, "xmms", /*profiled=*/false);
  EXPECT_TRUE(t.known(200));
  EXPECT_FALSE(t.is_profiled(200));
}

TEST(ProcessTable, ReRegisterOverwrites) {
  ProcessTable t;
  t.register_program(100, "old", true);
  t.register_program(100, "new", false);
  EXPECT_EQ(t.name_of(100), "new");
  EXPECT_FALSE(t.is_profiled(100));
  EXPECT_EQ(t.size(), 1u);
}

}  // namespace
}  // namespace flexfetch::os
