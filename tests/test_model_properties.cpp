// Physical-model properties: monotonicity and conservation laws that must
// hold across parameter grids, expressed as parameterized sweeps.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "core/burst.hpp"
#include "core/profile.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "faults/schedule.hpp"
#include "hoard/sync.hpp"
#include "trace/builder.hpp"

namespace flexfetch {
namespace {

/// Runs a fixed request timeline against a disk and returns total energy.
Joules disk_timeline_energy(const device::DiskParams& params) {
  device::Disk disk(params);
  Seconds t = Seconds{0.0};
  for (int i = 0; i < 12; ++i) {
    const auto res = disk.service(
        t, device::DeviceRequest{.lba = static_cast<std::uint64_t>(i) * kMiB,
                                 .size = 256 * kKiB});
    t = res.completion + Seconds{i % 3 == 0 ? 30.0 : 2.0};  // Mixed gaps.
  }
  disk.advance_to(t + Seconds{60.0});
  return disk.meter().total();
}

Joules wnic_timeline_energy(const device::WnicParams& params) {
  device::Wnic wnic(params);
  Seconds t = Seconds{0.0};
  for (int i = 0; i < 12; ++i) {
    const auto res =
        wnic.service(t, device::DeviceRequest{.size = 256 * kKiB});
    t = res.completion + Seconds{i % 3 == 0 ? 5.0 : 0.3};
  }
  wnic.advance_to(t + Seconds{10.0});
  return wnic.meter().total();
}

// ---------------------------------------------------------------------------

class DiskPowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiskPowerSweep, EnergyIsMonotonicInIdlePower) {
  device::DiskParams lo = device::DiskParams::hitachi_dk23da();
  device::DiskParams hi = lo;
  lo.idle_power = Watts{GetParam()};
  hi.idle_power = Watts{GetParam() + 0.2};
  hi.active_power = std::max(hi.active_power, hi.idle_power);
  lo.active_power = std::max(lo.active_power, lo.idle_power);
  EXPECT_LE(disk_timeline_energy(lo), disk_timeline_energy(hi) + Joules{1e-9});
}

TEST_P(DiskPowerSweep, EnergyIsMonotonicInTransitionCost) {
  device::DiskParams lo = device::DiskParams::hitachi_dk23da();
  lo.idle_power = Watts{GetParam()};
  lo.active_power = std::max(lo.active_power, lo.idle_power);
  device::DiskParams hi = lo;
  hi.spin_up_energy += Joules{3.0};
  hi.spin_down_energy += Joules{2.0};
  EXPECT_LE(disk_timeline_energy(lo), disk_timeline_energy(hi) + Joules{1e-9});
}

INSTANTIATE_TEST_SUITE_P(IdlePowers, DiskPowerSweep,
                         ::testing::Values(0.8, 1.2, 1.6, 2.0));

class DiskTimeoutSweep : public ::testing::TestWithParam<double> {};

TEST_P(DiskTimeoutSweep, BreakEvenIndependentOfTimeout) {
  device::DiskParams p = device::DiskParams::hitachi_dk23da();
  p.spin_down_timeout = Seconds{GetParam()};
  EXPECT_NEAR(p.break_even_time().value(), 5.0724, 0.0001);
}

TEST_P(DiskTimeoutSweep, SpinCountsFallAsTimeoutRises) {
  device::DiskParams shorter = device::DiskParams::hitachi_dk23da();
  shorter.spin_down_timeout = Seconds{GetParam()};
  device::DiskParams longer = shorter;
  longer.spin_down_timeout = Seconds{GetParam() * 4.0};

  auto spin_downs = [](const device::DiskParams& params) {
    device::Disk disk(params);
    Seconds t = Seconds{0.0};
    for (int i = 0; i < 10; ++i) {
      const auto res =
          disk.service(t, device::DeviceRequest{.lba = Bytes{0}, .size = Bytes{4096}});
      t = res.completion + Seconds{25.0};
    }
    disk.advance_to(t + Seconds{300.0});
    return disk.counters().spin_downs;
  };
  EXPECT_GE(spin_downs(shorter), spin_downs(longer));
}

INSTANTIATE_TEST_SUITE_P(Timeouts, DiskTimeoutSweep,
                         ::testing::Values(5.0, 10.0, 20.0));

class WnicLatencySweep : public ::testing::TestWithParam<double> {};

TEST_P(WnicLatencySweep, EnergyIsMonotonicInLatency) {
  const auto lo = device::WnicParams::cisco_aironet350().with_latency(
      units::ms(GetParam()));
  const auto hi = device::WnicParams::cisco_aironet350().with_latency(
      units::ms(GetParam() + 5.0));
  EXPECT_LE(wnic_timeline_energy(lo), wnic_timeline_energy(hi) + Joules{1e-9});
}

TEST_P(WnicLatencySweep, ServiceTimeScalesWithRpcCount) {
  device::Wnic wnic(device::WnicParams::cisco_aironet350().with_latency(
      units::ms(GetParam())));
  const auto small = wnic.estimate(Seconds{0.0}, device::DeviceRequest{.size = Bytes{16384}});
  const auto large =
      wnic.estimate(Seconds{0.0}, device::DeviceRequest{.size = Bytes{4 * 16384}});
  // 4x the RPCs: at least 3 extra latencies beyond the bandwidth term.
  EXPECT_GE(large.service_time() - small.service_time(),
            3.0 * units::ms(GetParam()) - Seconds{1e-9});
}

INSTANTIATE_TEST_SUITE_P(Latencies, WnicLatencySweep,
                         ::testing::Values(0.0, 2.0, 10.0, 40.0));

class WnicBandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(WnicBandwidthSweep, TransferEnergyFallsWithBandwidth) {
  const auto slow =
      device::WnicParams::cisco_aironet350().with_bandwidth_mbps(GetParam());
  const auto fast = device::WnicParams::cisco_aironet350().with_bandwidth_mbps(
      GetParam() * 2.0);
  EXPECT_GE(wnic_timeline_energy(slow), wnic_timeline_energy(fast) - Joules{1e-9});
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, WnicBandwidthSweep,
                         ::testing::Values(1.0, 2.0, 5.5));

// ---------------------------------------------------------------------------
// Burst extraction properties over random traces.

class BurstThresholdSweep : public ::testing::TestWithParam<double> {};

trace::Trace random_trace(std::uint64_t seed) {
  Rng rng(seed);
  trace::TraceBuilder b("rand");
  b.process(60, 60);
  for (int i = 0; i < 300; ++i) {
    b.read(1 + rng.uniform_int(0, 20),
           rng.uniform_int(0, 1000) * kPageSize,
           (1 + rng.uniform_int(0, 16)) * kPageSize);
    b.think(Seconds{rng.exponential(0.05)});
  }
  return b.build();
}

TEST_P(BurstThresholdSweep, TotalBytesAreConserved) {
  const trace::Trace t = random_trace(
      static_cast<std::uint64_t>(GetParam() * 1000));
  const auto bursts = core::extract_bursts(t, Seconds{GetParam()});
  Bytes total = Bytes{0};
  for (const auto& b : bursts) total += b.total_bytes();
  EXPECT_EQ(total, t.stats().bytes_read + t.stats().bytes_written);
}

TEST_P(BurstThresholdSweep, FinerThresholdNeverMerges) {
  const trace::Trace t = random_trace(99);
  const auto fine = core::extract_bursts(t, Seconds{GetParam()});
  const auto coarse = core::extract_bursts(t, Seconds{GetParam() * 4.0});
  EXPECT_GE(fine.size(), coarse.size());
}

TEST_P(BurstThresholdSweep, ThinkTimesPartitionTheSpan) {
  const trace::Trace t = random_trace(7);
  const auto bursts = core::extract_bursts(t, Seconds{GetParam()});
  Seconds reconstructed = Seconds{0.0};
  for (const auto& b : bursts) reconstructed += b.think_before + b.duration;
  // think gaps + burst durations tile the profiled span exactly.
  EXPECT_NEAR(reconstructed.value(), t.end_time().value(), 1e-6);
}

TEST_P(BurstThresholdSweep, InterBurstGapsExceedTheThreshold) {
  const trace::Trace t = random_trace(13);
  const auto bursts = core::extract_bursts(t, Seconds{GetParam()});
  // Every burst after the first begins with a gap that could not be masked.
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    EXPECT_GT(bursts[i].think_before, Seconds{GetParam()});
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BurstThresholdSweep,
                         ::testing::Values(0.005, 0.020, 0.080));

// ---------------------------------------------------------------------------
// Profile serialization fuzz.

class ProfileFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileFuzz, SerializationRoundTripsRandomProfiles) {
  const core::Profile p =
      core::Profile::from_trace(random_trace(GetParam()), Seconds{0.020});
  std::stringstream ss;
  p.write(ss);
  const core::Profile q = core::Profile::read(ss);
  ASSERT_EQ(q.size(), p.size());
  EXPECT_EQ(q.total_bytes(), p.total_bytes());
  EXPECT_NEAR(q.span_seconds().value(), p.span_seconds().value(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Sync conservation.

class SyncFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyncFuzz, BytesAreConservedThroughBatches) {
  Rng rng(GetParam());
  hoard::SyncConfig config;
  config.max_batch_bytes = 64 * kKiB;
  hoard::SyncManager sync(config);
  Bytes written = Bytes{0};
  Bytes shipped = Bytes{0};
  Seconds t = Seconds{0.0};
  for (int i = 0; i < 200; ++i) {
    const Bytes n = (1 + rng.uniform_int(0, 31)) * kKiB;
    sync.on_local_write(1 + rng.uniform_int(0, 9), n, t);
    written += n;
    t += Seconds{rng.exponential(2.0)};
    if (rng.chance(0.3)) {
      for (const auto& item : sync.take_batch(t)) shipped += item.bytes;
    }
  }
  while (sync.pending_upload() > Bytes{0}) {
    for (const auto& item : sync.take_batch(t)) shipped += item.bytes;
  }
  EXPECT_EQ(shipped, written);
  EXPECT_EQ(sync.stats().uploaded, written);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncFuzz, ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------------------
// Readiness: time_to_ready(t) is the contract the estimator prices spin-ups
// and wakes with, so it must equal the pre-transfer delay actually observed
// when a request is served at t — probed on a detached copy so the live
// device is untouched, in every power state and across every transition
// boundary.

class ReadinessFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReadinessFuzz, DiskTimeToReadyMatchesObservedDelay) {
  Rng rng(GetParam());
  device::Disk disk;
  Seconds t = Seconds{0.0};
  for (int i = 0; i < 200; ++i) {
    t += Seconds{rng.exponential(12.0)};  // Mean near the 20 s timeout: all states.
    disk.advance_to(t);
    const Seconds predicted = disk.time_to_ready(t);
    auto probe = disk.detached_copy();
    const auto res = probe.service(
        t, device::DeviceRequest{.lba = rng.uniform_int(0, 1000) * kPageSize,
                                 .size = 64 * kKiB});
    EXPECT_NEAR((res.start - res.arrival).value(), predicted.value(), 1e-9)
        << "state " << device::to_string(disk.state()) << " at t=" << t.value();
    if (rng.chance(0.4)) {  // Occasionally really serve to vary the phase.
      t = disk.service(t, device::DeviceRequest{.lba = Bytes{0}, .size = Bytes{4096}})
              .completion;
    }
  }
}

TEST_P(ReadinessFuzz, DiskTimeToReadyPricesInjectedStalls) {
  faults::DiskFaultSchedule schedule;
  for (int i = 0; i < 60; ++i) {  // Stall window in every other 25 s slot.
    schedule.spin_up_stalls.push_back({.start = Seconds{i * 50.0},
                                       .end = Seconds{i * 50.0 + 25.0},
                                       .extra_time = Seconds{2.5},
                                       .extra_energy = Joules{5.0}});
  }
  Rng rng(GetParam());
  device::Disk disk;
  disk.set_fault_schedule(&schedule);
  Seconds t = Seconds{0.0};
  for (int i = 0; i < 200; ++i) {
    t += Seconds{rng.exponential(15.0)};
    disk.advance_to(t);
    const Seconds predicted = disk.time_to_ready(t);
    auto probe = disk.detached_copy();  // Copy shares the schedule.
    const auto res = probe.service(
        t, device::DeviceRequest{.lba = Bytes{0}, .size = 64 * kKiB});
    EXPECT_NEAR((res.start - res.arrival).value(), predicted.value(), 1e-9) << "t=" << t.value();
  }
}

TEST_P(ReadinessFuzz, WnicTimeToReadyMatchesObservedDelay) {
  Rng rng(GetParam());
  device::Wnic wnic;
  Seconds t = Seconds{0.0};
  for (int i = 0; i < 200; ++i) {
    t += Seconds{rng.exponential(2.0)};  // Mean near the CAM->PSM idle threshold.
    wnic.advance_to(t);
    const Seconds predicted = wnic.time_to_ready(t);
    auto probe = wnic.detached_copy();
    // Above psm_packet_threshold: the transfer always waits for full CAM,
    // which is exactly the delay time_to_ready() promises.
    const auto res =
        probe.service(t, device::DeviceRequest{.size = 256 * kKiB});
    EXPECT_NEAR((res.start - res.arrival).value(), predicted.value(), 1e-9)
        << "state " << device::to_string(wnic.state()) << " at t=" << t.value();
    if (rng.chance(0.4)) {
      t = wnic.service(t, device::DeviceRequest{.size = 256 * kKiB})
              .completion;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadinessFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST(Readiness, DiskBoundaryProbes) {
  // Default DK23DA: spin-down fires at 20 s and completes at 22.3 s;
  // probe just inside and outside each edge, plus deep standby.
  for (const Seconds t :
       {Seconds{0.0}, Seconds{19.999999}, Seconds{20.0}, Seconds{20.000001}, Seconds{21.0}, Seconds{22.299999}, Seconds{22.3}, Seconds{22.300001}, Seconds{300.0}}) {
    device::Disk disk;
    disk.advance_to(t);
    auto probe = disk.detached_copy();
    const auto res =
        probe.service(t, device::DeviceRequest{.lba = Bytes{0}, .size = Bytes{4096}});
    EXPECT_NEAR((res.start - res.arrival).value(), disk.time_to_ready(t).value(), 1e-9)
        << "t=" << t.value();
  }
}

TEST(Readiness, DiskTimeToReadyDuringForcedSpinUp) {
  device::Disk disk;
  disk.advance_to(Seconds{60.0});
  disk.force_spin_up(Seconds{60.0});  // kSpinningUp without a pending request.
  ASSERT_EQ(disk.state(), device::DiskState::kSpinningUp);
  for (const Seconds dt : {Seconds{0.0}, Seconds{0.4}, Seconds{0.8}, Seconds{1.2}, Seconds{1.5999}}) {
    auto probe = disk.detached_copy();
    const auto res = probe.service(
        Seconds{60.0} + dt, device::DeviceRequest{.lba = Bytes{0}, .size = Bytes{4096}});
    EXPECT_NEAR((res.start - res.arrival).value(), disk.time_to_ready(Seconds{60.0} + dt).value(), 1e-9)
        << "dt=" << dt.value();
  }
}

TEST(Readiness, WnicBoundaryProbes) {
  // Probe around the CAM->PSM idle switch and mid-transition instants.
  for (const Seconds t :
       {Seconds{0.0}, Seconds{0.5}, Seconds{0.999999}, Seconds{1.0}, Seconds{1.000001}, Seconds{1.05}, Seconds{1.5}, Seconds{10.0}}) {
    device::Wnic wnic;
    wnic.advance_to(t);
    auto probe = wnic.detached_copy();
    const auto res =
        probe.service(t, device::DeviceRequest{.size = 256 * kKiB});
    EXPECT_NEAR((res.start - res.arrival).value(), wnic.time_to_ready(t).value(), 1e-9)
        << "t=" << t.value();
  }
}

}  // namespace
}  // namespace flexfetch
