#include "hoard/sync.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::hoard {
namespace {

TEST(SyncManager, StartsClean) {
  SyncManager s;
  EXPECT_EQ(s.pending_upload(), 0u);
  EXPECT_EQ(s.pending_download(), 0u);
  EXPECT_FALSE(s.pressure());
  EXPECT_DOUBLE_EQ(s.oldest_debt_age(100.0), 0.0);
  EXPECT_TRUE(s.take_batch(0.0).empty());
}

TEST(SyncManager, LocalWritesAccumulateUploadDebt) {
  SyncManager s;
  s.on_local_write(1, 1000, 0.0);
  s.on_local_write(1, 500, 1.0);
  s.on_local_write(2, 200, 2.0);
  EXPECT_EQ(s.pending_upload(), 1700u);
  EXPECT_EQ(s.pending_download(), 0u);
}

TEST(SyncManager, RemoteUpdatesAccumulateDownloadDebt) {
  SyncManager s;
  s.on_remote_update(5, 4096, 0.0);
  EXPECT_EQ(s.pending_download(), 4096u);
}

TEST(SyncManager, OldestDebtAgeTracksFirstWrite) {
  SyncManager s;
  s.on_local_write(1, 100, 10.0);
  s.on_local_write(2, 100, 50.0);
  EXPECT_DOUBLE_EQ(s.oldest_debt_age(60.0), 50.0);
}

TEST(SyncManager, TakeBatchDrainsEverythingByDefault) {
  SyncManager s;
  s.on_local_write(1, 1000, 0.0);
  s.on_remote_update(2, 2000, 1.0);
  const auto batch = s.take_batch(5.0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].upload);
  EXPECT_FALSE(batch[1].upload);
  EXPECT_EQ(s.pending_upload(), 0u);
  EXPECT_EQ(s.pending_download(), 0u);
  EXPECT_EQ(s.stats().uploaded, 1000u);
  EXPECT_EQ(s.stats().downloaded, 2000u);
  EXPECT_EQ(s.stats().batches, 1u);
}

TEST(SyncManager, BatchIsOldestFirst) {
  SyncManager s;
  s.on_local_write(2, 100, 5.0);
  s.on_local_write(1, 100, 1.0);
  s.on_local_write(3, 100, 9.0);
  const auto batch = s.take_batch(10.0);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].inode, 1u);
  EXPECT_EQ(batch[1].inode, 2u);
  EXPECT_EQ(batch[2].inode, 3u);
}

TEST(SyncManager, MaxBatchBytesLimitsAndCarriesOver) {
  SyncConfig config;
  config.max_batch_bytes = 1500;
  SyncManager s(config);
  s.on_local_write(1, 1000, 0.0);
  s.on_local_write(2, 1000, 1.0);
  const auto first = s.take_batch(2.0);
  Bytes shipped = 0;
  for (const auto& item : first) shipped += item.bytes;
  EXPECT_EQ(shipped, 1500u);
  EXPECT_EQ(s.pending_upload(), 500u);
  const auto second = s.take_batch(3.0);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].bytes, 500u);
}

TEST(SyncManager, PressureThreshold) {
  SyncConfig config;
  config.pressure_bytes = 1000;
  SyncManager s(config);
  s.on_local_write(1, 999, 0.0);
  EXPECT_FALSE(s.pressure());
  s.on_local_write(1, 1, 0.1);
  EXPECT_TRUE(s.pressure());
}

TEST(SyncManager, ConfigValidation) {
  SyncConfig c;
  c.interval = 0.0;
  EXPECT_THROW(SyncManager{c}, ConfigError);
}

TEST(SyncManager, ZeroByteWritesRejected) {
  SyncManager s;
  EXPECT_THROW(s.on_local_write(1, 0, 0.0), ConfigError);
  EXPECT_THROW(s.on_remote_update(1, 0, 0.0), ConfigError);
}

// --- Simulator integration -------------------------------------------------

TEST(SyncIntegration, WriterWorkloadProducesSyncTraffic) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  for (int i = 0; i < 8; ++i) {
    b.write(1, static_cast<Bytes>(i) * 64 * 1024, 64 * 1024);
    b.think(30.0);
  }
  sim::SimConfig config;
  config.enable_sync = true;
  config.sync.interval = 60.0;
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, b.build(), policy);
  EXPECT_GT(r.sync_batches, 1u);
  EXPECT_GE(r.sync_bytes, 8u * 64u * 1024u);
  EXPECT_GE(r.net_bytes, r.sync_bytes);  // Sync always rides the WNIC.
}

TEST(SyncIntegration, SyncDisabledProducesNoTraffic) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  b.write(1, 0, 64 * 1024);
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(sim::SimConfig{}, b.build(), policy);
  EXPECT_EQ(r.sync_batches, 0u);
  EXPECT_EQ(r.sync_bytes, 0u);
}

TEST(SyncIntegration, TrailingDebtIsDrainedAfterProgramsEnd) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  b.write(1, 0, 128 * 1024);  // One write right at the end of the run.
  sim::SimConfig config;
  config.enable_sync = true;
  config.sync.interval = 300.0;  // Longer than the program's lifetime.
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, b.build(), policy);
  EXPECT_EQ(r.sync_bytes, 128u * 1024u);  // Still shipped eventually.
}

TEST(SyncIntegration, SyncCostsWnicEnergy) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  for (int i = 0; i < 16; ++i) {
    b.write(1, static_cast<Bytes>(i) * kMiB, kMiB);
    b.think(10.0);
  }
  const trace::Trace t = b.build();
  policies::DiskOnlyPolicy p1;
  const auto without = sim::simulate(sim::SimConfig{}, t, p1);
  sim::SimConfig config;
  config.enable_sync = true;
  config.sync.interval = 30.0;
  policies::DiskOnlyPolicy p2;
  const auto with = sim::simulate(config, t, p2);
  EXPECT_GT(with.wnic_energy(), without.wnic_energy());
}

}  // namespace
}  // namespace flexfetch::hoard
