#include "hoard/sync.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::hoard {
namespace {

TEST(SyncManager, StartsClean) {
  SyncManager s;
  EXPECT_EQ(s.pending_upload(), Bytes{0});
  EXPECT_EQ(s.pending_download(), Bytes{0});
  EXPECT_FALSE(s.pressure());
  EXPECT_DOUBLE_EQ(s.oldest_debt_age((Seconds{100.0})).value(), 0.0);
  EXPECT_TRUE(s.take_batch(Seconds{0.0}).empty());
}

TEST(SyncManager, LocalWritesAccumulateUploadDebt) {
  SyncManager s;
  s.on_local_write(1, Bytes{1000}, Seconds{0.0});
  s.on_local_write(1, Bytes{500}, Seconds{1.0});
  s.on_local_write(2, Bytes{200}, Seconds{2.0});
  EXPECT_EQ(s.pending_upload(), Bytes{1700});
  EXPECT_EQ(s.pending_download(), Bytes{0});
}

TEST(SyncManager, RemoteUpdatesAccumulateDownloadDebt) {
  SyncManager s;
  s.on_remote_update(5, Bytes{4096}, Seconds{0.0});
  EXPECT_EQ(s.pending_download(), Bytes{4096});
}

TEST(SyncManager, OldestDebtAgeTracksFirstWrite) {
  SyncManager s;
  s.on_local_write(1, Bytes{100}, Seconds{10.0});
  s.on_local_write(2, Bytes{100}, Seconds{50.0});
  EXPECT_DOUBLE_EQ(s.oldest_debt_age((Seconds{60.0})).value(), 50.0);
}

TEST(SyncManager, TakeBatchDrainsEverythingByDefault) {
  SyncManager s;
  s.on_local_write(1, Bytes{1000}, Seconds{0.0});
  s.on_remote_update(2, Bytes{2000}, Seconds{1.0});
  const auto batch = s.take_batch(Seconds{5.0});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].upload);
  EXPECT_FALSE(batch[1].upload);
  EXPECT_EQ(s.pending_upload(), Bytes{0});
  EXPECT_EQ(s.pending_download(), Bytes{0});
  EXPECT_EQ(s.stats().uploaded, Bytes{1000});
  EXPECT_EQ(s.stats().downloaded, Bytes{2000});
  EXPECT_EQ(s.stats().batches, 1u);
}

TEST(SyncManager, BatchIsOldestFirst) {
  SyncManager s;
  s.on_local_write(2, Bytes{100}, Seconds{5.0});
  s.on_local_write(1, Bytes{100}, Seconds{1.0});
  s.on_local_write(3, Bytes{100}, Seconds{9.0});
  const auto batch = s.take_batch(Seconds{10.0});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].inode, 1u);
  EXPECT_EQ(batch[1].inode, 2u);
  EXPECT_EQ(batch[2].inode, 3u);
}

TEST(SyncManager, MaxBatchBytesLimitsAndCarriesOver) {
  SyncConfig config;
  config.max_batch_bytes = Bytes{1500};
  SyncManager s(config);
  s.on_local_write(1, Bytes{1000}, Seconds{0.0});
  s.on_local_write(2, Bytes{1000}, Seconds{1.0});
  const auto first = s.take_batch(Seconds{2.0});
  Bytes shipped = Bytes{0};
  for (const auto& item : first) shipped += item.bytes;
  EXPECT_EQ(shipped, Bytes{1500});
  EXPECT_EQ(s.pending_upload(), Bytes{500});
  const auto second = s.take_batch(Seconds{3.0});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].bytes, Bytes{500});
}

TEST(SyncManager, PressureThreshold) {
  SyncConfig config;
  config.pressure_bytes = Bytes{1000};
  SyncManager s(config);
  s.on_local_write(1, Bytes{999}, Seconds{0.0});
  EXPECT_FALSE(s.pressure());
  s.on_local_write(1, Bytes{1}, Seconds{0.1});
  EXPECT_TRUE(s.pressure());
}

TEST(SyncManager, ConfigValidation) {
  SyncConfig c;
  c.interval = Seconds{0.0};
  EXPECT_THROW(SyncManager{c}, ConfigError);
}

TEST(SyncManager, ZeroByteWritesRejected) {
  SyncManager s;
  EXPECT_THROW(s.on_local_write(1, Bytes{0}, Seconds{0.0}), ConfigError);
  EXPECT_THROW(s.on_remote_update(1, Bytes{0}, Seconds{0.0}), ConfigError);
}

// --- Simulator integration -------------------------------------------------

TEST(SyncIntegration, WriterWorkloadProducesSyncTraffic) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  for (int i = 0; i < 8; ++i) {
    b.write(1, Bytes{static_cast<std::uint64_t>(i) * 64 * 1024}, Bytes{64 * 1024});
    b.think(Seconds{30.0});
  }
  sim::SimConfig config;
  config.enable_sync = true;
  config.sync.interval = Seconds{60.0};
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, b.build(), policy);
  EXPECT_GT(r.sync_batches, 1u);
  EXPECT_GE(r.sync_bytes, Bytes{8u * 64u * 1024u});
  EXPECT_GE(r.net_bytes, r.sync_bytes);  // Sync always rides the WNIC.
}

TEST(SyncIntegration, SyncDisabledProducesNoTraffic) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  b.write(1, Bytes{0}, Bytes{64 * 1024});
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(sim::SimConfig{}, b.build(), policy);
  EXPECT_EQ(r.sync_batches, 0u);
  EXPECT_EQ(r.sync_bytes, Bytes{0});
}

TEST(SyncIntegration, TrailingDebtIsDrainedAfterProgramsEnd) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  b.write(1, Bytes{0}, Bytes{128 * 1024});  // One write right at the end of the run.
  sim::SimConfig config;
  config.enable_sync = true;
  config.sync.interval = Seconds{300.0};  // Longer than the program's lifetime.
  policies::DiskOnlyPolicy policy;
  const auto r = sim::simulate(config, b.build(), policy);
  EXPECT_EQ(r.sync_bytes, Bytes{128u * 1024u});  // Still shipped eventually.
}

TEST(SyncIntegration, SyncCostsWnicEnergy) {
  trace::TraceBuilder b("writer");
  b.process(70, 70);
  for (int i = 0; i < 16; ++i) {
    b.write(1, static_cast<std::uint64_t>(i) * kMiB, kMiB);
    b.think(Seconds{10.0});
  }
  const trace::Trace t = b.build();
  policies::DiskOnlyPolicy p1;
  const auto without = sim::simulate(sim::SimConfig{}, t, p1);
  sim::SimConfig config;
  config.enable_sync = true;
  config.sync.interval = Seconds{30.0};
  policies::DiskOnlyPolicy p2;
  const auto with = sim::simulate(config, t, p2);
  EXPECT_GT(with.wnic_energy(), without.wnic_energy());
}

}  // namespace
}  // namespace flexfetch::hoard
