#include "trace/builder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::trace {
namespace {

TEST(Builder, EmitsRecordsAtVirtualClock) {
  TraceBuilder b("t");
  b.read(1, Bytes{0}, Bytes{100});
  b.think(Seconds{2.0});
  b.read(1, Bytes{100}, Bytes{100});
  const Trace t = b.build();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0].timestamp.value(), 0.0);
  EXPECT_DOUBLE_EQ(t[1].timestamp.value(), 2.0);
}

TEST(Builder, DurationAdvancesClock) {
  TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{100}, Seconds{0.5});
  b.read(1, Bytes{100}, Bytes{100});
  const Trace t = b.build();
  EXPECT_DOUBLE_EQ(t[1].timestamp.value(), 0.5);
}

TEST(Builder, ProcessSetsIdentity) {
  TraceBuilder b;
  b.process(11, 22);
  b.read(1, Bytes{0}, Bytes{10});
  const Trace t = b.build();
  EXPECT_EQ(t[0].pid, 11u);
  EXPECT_EQ(t[0].pgid, 22u);
}

TEST(Builder, AtJumpsForwardOnly) {
  TraceBuilder b;
  b.at(Seconds{5.0});
  b.read(1, Bytes{0}, Bytes{10});
  EXPECT_THROW(b.at(Seconds{1.0}), ConfigError);
  const Trace t = b.build();
  EXPECT_DOUBLE_EQ(t[0].timestamp.value(), 5.0);
}

TEST(Builder, NegativeThinkRejected) {
  TraceBuilder b;
  EXPECT_THROW(b.think(Seconds{-1.0}), ConfigError);
}

TEST(Builder, ReadFileChunksSequentially) {
  TraceBuilder b;
  b.read_file(3, Bytes{10 * 1024}, Bytes{4 * 1024});
  const Trace t = b.build();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].offset, Bytes{0});
  EXPECT_EQ(t[0].size, Bytes{4096});
  EXPECT_EQ(t[1].offset, Bytes{4096});
  EXPECT_EQ(t[2].offset, Bytes{8192});
  EXPECT_EQ(t[2].size, Bytes{10u * 1024u - 8192u});
}

TEST(Builder, WriteFileEmitsWrites) {
  TraceBuilder b;
  b.write_file(3, Bytes{8 * 1024}, Bytes{4 * 1024});
  const Trace t = b.build();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].op, OpType::kWrite);
  EXPECT_EQ(t[1].op, OpType::kWrite);
}

TEST(Builder, ReadFileWithThinkBetweenChunks) {
  TraceBuilder b;
  b.read_file(3, Bytes{12 * 1024}, Bytes{4 * 1024}, Seconds{0.1});
  const Trace t = b.build();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[1].timestamp.value(), 0.1);
  EXPECT_DOUBLE_EQ(t[2].timestamp.value(), 0.2);
}

TEST(Builder, ZeroChunkRejected) {
  TraceBuilder b;
  EXPECT_THROW(b.read_file(1, Bytes{100}, Bytes{0}), ConfigError);
}

TEST(Builder, OpenCloseAreMarkers) {
  TraceBuilder b;
  b.open(5);
  b.read(5, Bytes{0}, Bytes{10});
  b.close(5);
  const Trace t = b.build();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].op, OpType::kOpen);
  EXPECT_EQ(t[2].op, OpType::kClose);
  EXPECT_EQ(t[0].size, Bytes{0});
}

TEST(Builder, BuildResetsBuilder) {
  TraceBuilder b("x");
  b.read(1, Bytes{0}, Bytes{10});
  const Trace first = b.build();
  EXPECT_EQ(first.size(), 1u);
  EXPECT_DOUBLE_EQ(b.now().value(), 0.0);
  b.read(2, Bytes{0}, Bytes{10});
  const Trace second = b.build();
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].inode, 2u);
  EXPECT_EQ(second.name(), "x");
}

TEST(Builder, PeekDoesNotConsume) {
  TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{10});
  EXPECT_EQ(b.peek().size(), 1u);
  EXPECT_EQ(b.build().size(), 1u);
}

}  // namespace
}  // namespace flexfetch::trace
