#include "device/adaptive_timeout.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::device {
namespace {

DeviceRequest small_read(Bytes lba = Bytes{0}) {
  return DeviceRequest{.lba = lba, .size = Bytes{4096}, .is_write = false};
}

TEST(AdaptiveTimeout, AdoptsDiskTimeoutInitially) {
  Disk disk;
  AdaptiveTimeoutController c;
  const auto r = disk.service(Seconds{0.0}, small_read());
  c.observe(disk, r);
  EXPECT_DOUBLE_EQ(c.current_timeout().value(), 20.0);
}

TEST(AdaptiveTimeout, PrematureSpinDownDoublesTimeout) {
  Disk disk;
  AdaptiveTimeoutController c;
  auto r = disk.service(Seconds{0.0}, small_read());
  c.observe(disk, r);
  // Next request 22 s later: the disk spun down at 20 s, stayed down ~2 s
  // (< break-even 5.07 s) -> premature -> timeout doubles.
  r = disk.service(r.completion + Seconds{22.0}, small_read(1 * kGiB));
  c.observe(disk, r);
  EXPECT_DOUBLE_EQ(c.current_timeout().value(), 40.0);
  EXPECT_EQ(c.stats().premature_spin_downs, 1u);
  EXPECT_DOUBLE_EQ(disk.params().spin_down_timeout.value(), 40.0);
}

TEST(AdaptiveTimeout, JustifiedSpinDownDecays) {
  Disk disk;
  AdaptiveTimeoutController c;
  auto r = disk.service(Seconds{0.0}, small_read());
  c.observe(disk, r);
  // 200 s gap: the spin-down clearly paid off -> timeout decays slightly.
  r = disk.service(r.completion + Seconds{200.0}, small_read(1 * kGiB));
  c.observe(disk, r);
  EXPECT_NEAR(c.current_timeout().value(), 20.0 * 0.95, 1e-9);
  EXPECT_EQ(c.stats().premature_spin_downs, 0u);
}

TEST(AdaptiveTimeout, BusyPeriodsDecayTowardFloor) {
  AdaptiveTimeoutConfig config;
  config.min_timeout = Seconds{15.0};
  Disk disk;
  AdaptiveTimeoutController c(config);
  auto r = disk.service(Seconds{0.0}, small_read());
  c.observe(disk, r);
  for (int i = 0; i < 200; ++i) {
    r = disk.service(r.completion + Seconds{1.0}, small_read());  // Never idle long.
    c.observe(disk, r);
  }
  EXPECT_NEAR(c.current_timeout().value(), 15.0, 1e-9);  // Clamped at the floor.
}

TEST(AdaptiveTimeout, CapAtMaxTimeout) {
  AdaptiveTimeoutConfig config;
  config.max_timeout = Seconds{50.0};
  Disk disk;
  AdaptiveTimeoutController c(config);
  auto r = disk.service(Seconds{0.0}, small_read());
  c.observe(disk, r);
  // Repeated premature cycles: 20 -> 40 -> 50 (cap).
  for (int i = 0; i < 4; ++i) {
    const Seconds gap = c.current_timeout() + Seconds{2.0};  // Always premature.
    r = disk.service(r.completion + gap, small_read(1 * kGiB));
    c.observe(disk, r);
  }
  EXPECT_DOUBLE_EQ(c.current_timeout().value(), 50.0);
}

TEST(AdaptiveTimeout, RaisedTimeoutStopsTheThrash) {
  // The Thunderbird pattern: requests every ~22 s. With the fixed 20 s
  // timeout the disk spins down and right back up each time; once the
  // controller doubles the timeout the thrash ends.
  Disk fixed;
  Disk adaptive;
  AdaptiveTimeoutController c;
  ServiceResult rf = fixed.service(Seconds{0.0}, small_read());
  ServiceResult ra = adaptive.service(Seconds{0.0}, small_read());
  c.observe(adaptive, ra);
  for (int i = 1; i <= 20; ++i) {
    rf = fixed.service(rf.completion + Seconds{22.0}, small_read(static_cast<std::uint64_t>(i) * kMiB));
    ra = adaptive.service(ra.completion + Seconds{22.0}, small_read(static_cast<std::uint64_t>(i) * kMiB));
    c.observe(adaptive, ra);
  }
  EXPECT_LT(adaptive.counters().spin_ups + 5, fixed.counters().spin_ups);
  EXPECT_LT(adaptive.meter().total(), fixed.meter().total());
}

TEST(AdaptiveTimeout, ConfigValidation) {
  AdaptiveTimeoutConfig c;
  c.min_timeout = Seconds{0.0};
  EXPECT_THROW(AdaptiveTimeoutController{c}, ConfigError);
  c = AdaptiveTimeoutConfig{};
  c.max_timeout = Seconds{1.0};  // Below min.
  EXPECT_THROW(AdaptiveTimeoutController{c}, ConfigError);
  c = AdaptiveTimeoutConfig{};
  c.increase_factor = 1.0;
  EXPECT_THROW(AdaptiveTimeoutController{c}, ConfigError);
  c = AdaptiveTimeoutConfig{};
  c.decay_factor = 0.0;
  EXPECT_THROW(AdaptiveTimeoutController{c}, ConfigError);
}

TEST(AdaptiveTimeout, SimulatorIntegrationReducesThrashEnergy) {
  // Sparse 22 s reads (straddling the fixed timeout) under Disk-only.
  trace::TraceBuilder b("sparse");
  b.process(60, 60);
  for (int i = 0; i < 20; ++i) {
    b.read(1, Bytes{static_cast<std::uint64_t>(i) * 64 * 1024}, Bytes{64 * 1024});
    b.think(Seconds{22.0});
  }
  const trace::Trace t = b.build();

  policies::DiskOnlyPolicy p1;
  const auto fixed = sim::simulate(sim::SimConfig{}, t, p1);

  sim::SimConfig config;
  config.adaptive_disk_timeout = true;
  policies::DiskOnlyPolicy p2;
  const auto adaptive = sim::simulate(config, t, p2);

  EXPECT_LT(adaptive.disk_counters.spin_ups, fixed.disk_counters.spin_ups);
  EXPECT_LT(adaptive.disk_energy(), fixed.disk_energy());
}

TEST(Disk, SetSpinDownTimeoutValidates) {
  Disk d;
  EXPECT_THROW(d.set_spin_down_timeout(Seconds{0.0}), ConfigError);
  d.set_spin_down_timeout(Seconds{5.0});
  EXPECT_DOUBLE_EQ(d.params().spin_down_timeout.value(), 5.0);
}

}  // namespace
}  // namespace flexfetch::device
