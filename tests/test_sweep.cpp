#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "device/energy_meter.hpp"
#include "faults/schedule.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

/// Bit-exact equality over every observable of a SimResult (doubles are
/// compared with ==: the determinism contract is *identical* results, not
/// merely close ones).
void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.io_time, b.io_time);
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(device::EnergyCategory::kCount); ++c) {
    const auto cat = static_cast<device::EnergyCategory>(c);
    EXPECT_EQ(a.disk_meter[cat], b.disk_meter[cat]) << to_string(cat);
    EXPECT_EQ(a.wnic_meter[cat], b.wnic_meter[cat]) << to_string(cat);
  }
  EXPECT_EQ(a.disk_counters.requests, b.disk_counters.requests);
  EXPECT_EQ(a.disk_counters.sequential_hits, b.disk_counters.sequential_hits);
  EXPECT_EQ(a.disk_counters.spin_ups, b.disk_counters.spin_ups);
  EXPECT_EQ(a.disk_counters.spin_downs, b.disk_counters.spin_downs);
  EXPECT_EQ(a.disk_counters.bytes_read, b.disk_counters.bytes_read);
  EXPECT_EQ(a.disk_counters.bytes_written, b.disk_counters.bytes_written);
  EXPECT_EQ(a.disk_counters.seek_time, b.disk_counters.seek_time);
  EXPECT_EQ(a.disk_counters.spin_up_stalls, b.disk_counters.spin_up_stalls);
  EXPECT_EQ(a.disk_counters.stall_time, b.disk_counters.stall_time);
  EXPECT_EQ(a.wnic_counters.requests, b.wnic_counters.requests);
  EXPECT_EQ(a.wnic_counters.psm_transfers, b.wnic_counters.psm_transfers);
  EXPECT_EQ(a.wnic_counters.wakes, b.wnic_counters.wakes);
  EXPECT_EQ(a.wnic_counters.sleeps, b.wnic_counters.sleeps);
  EXPECT_EQ(a.wnic_counters.bytes_sent, b.wnic_counters.bytes_sent);
  EXPECT_EQ(a.wnic_counters.bytes_received, b.wnic_counters.bytes_received);
  EXPECT_EQ(a.wnic_counters.outage_stalls, b.wnic_counters.outage_stalls);
  EXPECT_EQ(a.wnic_counters.degraded_transfers,
            b.wnic_counters.degraded_transfers);
  EXPECT_EQ(a.wnic_counters.outage_wait, b.wnic_counters.outage_wait);
  EXPECT_EQ(a.cache_stats.lookups, b.cache_stats.lookups);
  EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
  EXPECT_EQ(a.cache_stats.ghost_hits, b.cache_stats.ghost_hits);
  EXPECT_EQ(a.cache_stats.insertions, b.cache_stats.insertions);
  EXPECT_EQ(a.cache_stats.evictions, b.cache_stats.evictions);
  EXPECT_EQ(a.scheduler_stats.submitted, b.scheduler_stats.submitted);
  EXPECT_EQ(a.scheduler_stats.merged, b.scheduler_stats.merged);
  EXPECT_EQ(a.scheduler_stats.dispatched, b.scheduler_stats.dispatched);
  EXPECT_EQ(a.scheduler_stats.sweeps, b.scheduler_stats.sweeps);
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.disk_requests, b.disk_requests);
  EXPECT_EQ(a.net_requests, b.net_requests);
  EXPECT_EQ(a.disk_bytes, b.disk_bytes);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.sync_batches, b.sync_batches);
  EXPECT_EQ(a.sync_bytes, b.sync_bytes);
}

TEST(Sweep, ParallelGridIsBitIdenticalToSerial) {
  const auto scenarios = workloads::all_scenarios(1);
  ASSERT_EQ(scenarios.size(), 5u);
  std::vector<const workloads::ScenarioBundle*> refs;
  for (const auto& s : scenarios) refs.push_back(&s);

  const auto cells = sim::make_grid(
      refs, {"flexfetch", "disk-only"},
      {device::WnicParams::cisco_aironet350(),
       device::WnicParams::cisco_aironet350().with_latency(units::ms(20.0))});
  ASSERT_EQ(cells.size(), 5u * 2u * 2u);

  const auto serial = sim::run_sweep(cells, {.jobs = 1});
  // On a single-core host hardware_concurrency() is 1; force a genuinely
  // concurrent pool so the test still exercises cross-thread determinism.
  const int jobs =
      std::max(4, static_cast<int>(ThreadPool::default_concurrency()));
  const auto parallel = sim::run_sweep(cells, {.jobs = jobs});

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(cells[i].scenario->name + " / " + cells[i].policy);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(Sweep, RepeatedParallelRunsAgree) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells =
      sim::make_grid({&scenario}, {"flexfetch", "wnic-only"},
                     {device::WnicParams::cisco_aironet350()});
  const auto a = sim::run_sweep(cells, {.jobs = 4});
  const auto b = sim::run_sweep(cells, {.jobs = 4});
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
}

TEST(Sweep, MakeGridOrdersWnicsInnermost) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto wnics = {device::WnicParams::cisco_aironet350(),
                      device::WnicParams::cisco_aironet350()
                          .with_bandwidth_mbps(2.0)};
  const auto cells =
      sim::make_grid({&scenario}, {"disk-only", "wnic-only"}, wnics);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].policy, "disk-only");
  EXPECT_EQ(cells[1].policy, "disk-only");
  EXPECT_EQ(cells[2].policy, "wnic-only");
  EXPECT_EQ(cells[1].wnic.bandwidth, units::mbps(2.0));
}

TEST(Sweep, UnknownPolicyPropagatesFromWorkers) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells = sim::make_grid({&scenario}, {"no-such-policy"},
                                    {device::WnicParams::cisco_aironet350()});
  EXPECT_THROW(sim::run_sweep(cells, {.jobs = 1}), ConfigError);
  EXPECT_THROW(sim::run_sweep(cells, {.jobs = 4}), ConfigError);
}

TEST(Sweep, ResolveJobsPrefersExplicitThenEnv) {
  EXPECT_EQ(sim::resolve_jobs(3), 3);
  ::setenv("FF_JOBS", "7", 1);
  EXPECT_EQ(sim::resolve_jobs(0), 7);
  EXPECT_EQ(sim::resolve_jobs(2), 2);
  ::setenv("FF_JOBS", "not-a-number", 1);
  EXPECT_EQ(sim::resolve_jobs(0),
            static_cast<int>(ThreadPool::default_concurrency()));
  ::unsetenv("FF_JOBS");
  EXPECT_EQ(sim::resolve_jobs(0),
            static_cast<int>(ThreadPool::default_concurrency()));
}

TEST(Sweep, FaultedGridIsBitIdenticalSerialVsParallel) {
  // Fault injection must not disturb the determinism contract: the same
  // seeded schedule applied to every cell yields bit-identical results
  // (and identical JSON) whether the grid runs on one thread or many.
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells =
      sim::make_grid({&scenario}, {"flexfetch", "wnic-only", "disk-only"},
                     {device::WnicParams::cisco_aironet350(),
                      device::WnicParams::cisco_aironet350().with_latency(
                          units::ms(20.0))});
  const auto schedule = faults::generate_schedule(7);
  ASSERT_FALSE(schedule.empty());
  for (auto& cell : cells) cell.config.faults = schedule;

  const auto serial = sim::run_sweep(cells, {.jobs = 1});
  const int jobs =
      std::max(4, static_cast<int>(ThreadPool::default_concurrency()));
  const auto parallel = sim::run_sweep(cells, {.jobs = jobs});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(cells[i].policy);
    expect_identical(serial[i], parallel[i]);
  }

  sim::SweepRunInfo info;
  info.jobs = jobs;
  std::ostringstream serial_json, parallel_json;
  sim::write_sweep_json(serial_json, cells, serial, info);
  sim::write_sweep_json(parallel_json, cells, parallel, info);
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

TEST(Sweep, FaultedRunIsIdenticalWithTelemetryOnOrOff) {
  // Telemetry observes; it must not perturb a faulted run either.
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid({&scenario}, {"flexfetch"},
                              {device::WnicParams::cisco_aironet350()});
  for (auto& cell : cells) {
    cell.config.faults = faults::generate_schedule(5);
  }
  const auto quiet = sim::run_sweep(cells, {.jobs = 1});
  for (auto& cell : cells) cell.config.telemetry.enabled = true;
  const auto traced = sim::run_sweep(cells, {.jobs = 1});
  ASSERT_EQ(quiet.size(), traced.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    expect_identical(quiet[i], traced[i]);
  }
  EXPECT_FALSE(traced[0].trace_events.empty());
  EXPECT_TRUE(quiet[0].trace_events.empty());
}

TEST(Sweep, JsonEmitterRecordsCellsAndSpeedup) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells = sim::make_grid({&scenario}, {"disk-only"},
                                    {device::WnicParams::cisco_aironet350()});
  const auto results = sim::run_sweep(cells, {.jobs = 1});
  sim::SweepRunInfo info;
  info.jobs = 4;
  info.wall_seconds = 2.0;
  info.serial_wall_seconds = 8.0;
  std::ostringstream os;
  sim::write_sweep_json(os, cells, results, info);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"disk-only\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": "), std::string::npos);
  EXPECT_NE(json.find("\"energy_j\": "), std::string::npos);
  EXPECT_NE(json.find("\"bandwidth_mbps\": 11"), std::string::npos);
}

}  // namespace
}  // namespace flexfetch
