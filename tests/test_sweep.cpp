#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "device/energy_meter.hpp"
#include "faults/schedule.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

/// Bit-exact equality over every observable of a SimResult (doubles are
/// compared with ==: the determinism contract is *identical* results, not
/// merely close ones).
void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.io_time, b.io_time);
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(device::EnergyCategory::kCount); ++c) {
    const auto cat = static_cast<device::EnergyCategory>(c);
    EXPECT_EQ(a.disk_meter[cat], b.disk_meter[cat]) << to_string(cat);
    EXPECT_EQ(a.wnic_meter[cat], b.wnic_meter[cat]) << to_string(cat);
  }
  EXPECT_EQ(a.disk_counters.requests, b.disk_counters.requests);
  EXPECT_EQ(a.disk_counters.sequential_hits, b.disk_counters.sequential_hits);
  EXPECT_EQ(a.disk_counters.spin_ups, b.disk_counters.spin_ups);
  EXPECT_EQ(a.disk_counters.spin_downs, b.disk_counters.spin_downs);
  EXPECT_EQ(a.disk_counters.bytes_read, b.disk_counters.bytes_read);
  EXPECT_EQ(a.disk_counters.bytes_written, b.disk_counters.bytes_written);
  EXPECT_EQ(a.disk_counters.seek_time, b.disk_counters.seek_time);
  EXPECT_EQ(a.disk_counters.spin_up_stalls, b.disk_counters.spin_up_stalls);
  EXPECT_EQ(a.disk_counters.stall_time, b.disk_counters.stall_time);
  EXPECT_EQ(a.wnic_counters.requests, b.wnic_counters.requests);
  EXPECT_EQ(a.wnic_counters.psm_transfers, b.wnic_counters.psm_transfers);
  EXPECT_EQ(a.wnic_counters.wakes, b.wnic_counters.wakes);
  EXPECT_EQ(a.wnic_counters.sleeps, b.wnic_counters.sleeps);
  EXPECT_EQ(a.wnic_counters.bytes_sent, b.wnic_counters.bytes_sent);
  EXPECT_EQ(a.wnic_counters.bytes_received, b.wnic_counters.bytes_received);
  EXPECT_EQ(a.wnic_counters.outage_stalls, b.wnic_counters.outage_stalls);
  EXPECT_EQ(a.wnic_counters.degraded_transfers,
            b.wnic_counters.degraded_transfers);
  EXPECT_EQ(a.wnic_counters.outage_wait, b.wnic_counters.outage_wait);
  EXPECT_EQ(a.wnic_counters.contended_transfers,
            b.wnic_counters.contended_transfers);
  EXPECT_EQ(a.wnic_counters.server_queue_waits,
            b.wnic_counters.server_queue_waits);
  EXPECT_EQ(a.wnic_counters.server_queue_wait,
            b.wnic_counters.server_queue_wait);
  EXPECT_EQ(a.cache_stats.lookups, b.cache_stats.lookups);
  EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
  EXPECT_EQ(a.cache_stats.ghost_hits, b.cache_stats.ghost_hits);
  EXPECT_EQ(a.cache_stats.insertions, b.cache_stats.insertions);
  EXPECT_EQ(a.cache_stats.evictions, b.cache_stats.evictions);
  EXPECT_EQ(a.scheduler_stats.submitted, b.scheduler_stats.submitted);
  EXPECT_EQ(a.scheduler_stats.merged, b.scheduler_stats.merged);
  EXPECT_EQ(a.scheduler_stats.dispatched, b.scheduler_stats.dispatched);
  EXPECT_EQ(a.scheduler_stats.sweeps, b.scheduler_stats.sweeps);
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.disk_requests, b.disk_requests);
  EXPECT_EQ(a.net_requests, b.net_requests);
  EXPECT_EQ(a.disk_bytes, b.disk_bytes);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.sync_batches, b.sync_batches);
  EXPECT_EQ(a.sync_bytes, b.sync_bytes);
}

TEST(Sweep, ParallelGridIsBitIdenticalToSerial) {
  const auto scenarios = workloads::all_scenarios(1);
  ASSERT_EQ(scenarios.size(), 5u);
  std::vector<const workloads::ScenarioBundle*> refs;
  for (const auto& s : scenarios) refs.push_back(&s);

  const auto cells = sim::make_grid(
      refs, {"flexfetch", "disk-only"},
      {device::WnicParams::cisco_aironet350(),
       device::WnicParams::cisco_aironet350().with_latency(units::ms(20.0))});
  ASSERT_EQ(cells.size(), 5u * 2u * 2u);

  const auto serial = sim::run_sweep(cells, {.jobs = 1});
  // On a single-core host hardware_concurrency() is 1; force a genuinely
  // concurrent pool so the test still exercises cross-thread determinism.
  const int jobs =
      std::max(4, static_cast<int>(ThreadPool::default_concurrency()));
  const auto parallel = sim::run_sweep(cells, {.jobs = jobs});

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(cells[i].scenario->name + " / " + cells[i].policy);
    expect_identical(serial[i], parallel[i]);
  }
}

TEST(Sweep, RepeatedParallelRunsAgree) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells =
      sim::make_grid({&scenario}, {"flexfetch", "wnic-only"},
                     {device::WnicParams::cisco_aironet350()});
  const auto a = sim::run_sweep(cells, {.jobs = 4});
  const auto b = sim::run_sweep(cells, {.jobs = 4});
  for (std::size_t i = 0; i < a.size(); ++i) expect_identical(a[i], b[i]);
}

TEST(Sweep, MakeGridOrdersWnicsInnermost) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto wnics = {device::WnicParams::cisco_aironet350(),
                      device::WnicParams::cisco_aironet350()
                          .with_bandwidth_mbps(2.0)};
  const auto cells =
      sim::make_grid({&scenario}, {"disk-only", "wnic-only"}, wnics);
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].policy, "disk-only");
  EXPECT_EQ(cells[1].policy, "disk-only");
  EXPECT_EQ(cells[2].policy, "wnic-only");
  EXPECT_EQ(cells[1].wnic.bandwidth, units::mbps(2.0));
}

TEST(Sweep, UnknownPolicyPropagatesFromWorkers) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells = sim::make_grid({&scenario}, {"no-such-policy"},
                                    {device::WnicParams::cisco_aironet350()});
  EXPECT_THROW(sim::run_sweep(cells, {.jobs = 1}), ConfigError);
  EXPECT_THROW(sim::run_sweep(cells, {.jobs = 4}), ConfigError);
}

TEST(Sweep, ResolveJobsPrefersExplicitThenEnv) {
  EXPECT_EQ(sim::resolve_jobs(3), 3);
  ::setenv("FF_JOBS", "7", 1);
  EXPECT_EQ(sim::resolve_jobs(0), 7);
  EXPECT_EQ(sim::resolve_jobs(2), 2);
  ::setenv("FF_JOBS", "not-a-number", 1);
  EXPECT_EQ(sim::resolve_jobs(0),
            static_cast<int>(ThreadPool::default_concurrency()));
  ::unsetenv("FF_JOBS");
  EXPECT_EQ(sim::resolve_jobs(0),
            static_cast<int>(ThreadPool::default_concurrency()));
}

TEST(Sweep, FaultedGridIsBitIdenticalSerialVsParallel) {
  // Fault injection must not disturb the determinism contract: the same
  // seeded schedule applied to every cell yields bit-identical results
  // (and identical JSON) whether the grid runs on one thread or many.
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells =
      sim::make_grid({&scenario}, {"flexfetch", "wnic-only", "disk-only"},
                     {device::WnicParams::cisco_aironet350(),
                      device::WnicParams::cisco_aironet350().with_latency(
                          units::ms(20.0))});
  const auto schedule = faults::generate_schedule(7);
  ASSERT_FALSE(schedule.empty());
  for (auto& cell : cells) cell.config.faults = schedule;

  const auto serial = sim::run_sweep(cells, {.jobs = 1});
  const int jobs =
      std::max(4, static_cast<int>(ThreadPool::default_concurrency()));
  const auto parallel = sim::run_sweep(cells, {.jobs = jobs});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(cells[i].policy);
    expect_identical(serial[i], parallel[i]);
  }

  sim::SweepRunInfo info;
  info.jobs = jobs;
  std::ostringstream serial_json, parallel_json;
  sim::write_sweep_json(serial_json, cells, serial, info);
  sim::write_sweep_json(parallel_json, cells, parallel, info);
  EXPECT_EQ(serial_json.str(), parallel_json.str());
}

TEST(Sweep, FaultedRunIsIdenticalWithTelemetryOnOrOff) {
  // Telemetry observes; it must not perturb a faulted run either.
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid({&scenario}, {"flexfetch"},
                              {device::WnicParams::cisco_aironet350()});
  for (auto& cell : cells) {
    cell.config.faults = faults::generate_schedule(5);
  }
  const auto quiet = sim::run_sweep(cells, {.jobs = 1});
  for (auto& cell : cells) {
    cell.config.telemetry.enabled = true;
    cell.config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;
  }
  const auto traced = sim::run_sweep(cells, {.jobs = 1});
  ASSERT_EQ(quiet.size(), traced.size());
  for (std::size_t i = 0; i < quiet.size(); ++i) {
    expect_identical(quiet[i], traced[i]);
  }
  EXPECT_FALSE(traced[0].trace_events.empty());
  EXPECT_TRUE(quiet[0].trace_events.empty());
}

TEST(Sweep, ResolveJobsDetailRecordsProvenance) {
  const auto explicit_jobs = sim::resolve_jobs_detail(3);
  EXPECT_EQ(explicit_jobs.requested, 3);
  EXPECT_EQ(explicit_jobs.effective, 3);
  EXPECT_FALSE(explicit_jobs.from_env);

  ::setenv("FF_JOBS", "5", 1);
  const auto env_jobs = sim::resolve_jobs_detail(0);
  EXPECT_EQ(env_jobs.requested, 0);
  EXPECT_EQ(env_jobs.effective, 5);
  EXPECT_TRUE(env_jobs.from_env);
  ::unsetenv("FF_JOBS");

  // Unset (0 = auto): clamps to the host's hardware concurrency.
  const auto auto_jobs = sim::resolve_jobs_detail(0);
  EXPECT_EQ(auto_jobs.requested, 0);
  EXPECT_EQ(auto_jobs.effective,
            static_cast<int>(ThreadPool::default_concurrency()));
  EXPECT_FALSE(auto_jobs.from_env);
  EXPECT_GE(auto_jobs.effective, 1);
}

// --- Streaming sweep + aggregation ------------------------------------------

TEST(Sweep, StreamingDeliversInOrderAndMatchesBatch) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells = sim::make_grid(
      {&scenario}, {"flexfetch", "disk-only", "wnic-only"},
      {device::WnicParams::cisco_aironet350(),
       device::WnicParams::cisco_aironet350().with_latency(units::ms(20.0))});
  const auto batch = sim::run_sweep(cells, {.jobs = 1});

  const int jobs =
      std::max(4, static_cast<int>(ThreadPool::default_concurrency()));
  std::vector<std::size_t> order;
  std::vector<sim::SimResult> streamed(cells.size());
  sim::run_sweep_streaming(
      cells, {.jobs = jobs},
      [&](std::size_t i, const sim::SweepCell& cell, sim::SimResult&& result) {
        EXPECT_EQ(cell.policy, cells[i].policy);
        order.push_back(i);
        streamed[i] = std::move(result);
      });

  // The sink sees every cell exactly once, in strict grid order, and each
  // streamed result is bit-identical to the batch engine's.
  ASSERT_EQ(order.size(), cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cells[i].policy);
    expect_identical(batch[i], streamed[i]);
  }
}

TEST(Sweep, StreamingPropagatesWorkerFailure) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid({&scenario}, {"disk-only", "no-such-policy"},
                              {device::WnicParams::cisco_aironet350()});
  std::vector<std::size_t> delivered;
  auto sink = [&](std::size_t i, const sim::SweepCell&, sim::SimResult&&) {
    delivered.push_back(i);
  };
  EXPECT_THROW(sim::run_sweep_streaming(cells, {.jobs = 1}, sink), ConfigError);
  EXPECT_THROW(sim::run_sweep_streaming(cells, {.jobs = 4}, sink), ConfigError);
  // Cells past the failed one are never delivered.
  for (const std::size_t i : delivered) EXPECT_LT(i, 1u);
}

TEST(Sweep, RunningStatMergeMatchesSequential) {
  const double samples[] = {3.5, -1.25, 8.0, 0.0, 2.75, 100.5, -7.0, 4.0};
  sim::RunningStat sequential;
  for (const double v : samples) sequential.add(v);

  sim::RunningStat left, right;
  for (std::size_t i = 0; i < 3; ++i) left.add(samples[i]);
  for (std::size_t i = 3; i < std::size(samples); ++i) right.add(samples[i]);
  left.merge(right);

  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_NEAR(left.mean(), sequential.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());

  // Merging an empty accumulator (either way) is the identity.
  sim::RunningStat empty;
  sim::RunningStat copy = left;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), left.count());
  EXPECT_DOUBLE_EQ(copy.mean(), left.mean());
  sim::RunningStat from_empty;
  from_empty.merge(left);
  EXPECT_EQ(from_empty.count(), left.count());
  EXPECT_DOUBLE_EQ(from_empty.mean(), left.mean());
}

TEST(Sweep, AggregateIsIdenticalForAnyWorkerCount) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid(
      {&scenario}, {"flexfetch", "disk-only"},
      {device::WnicParams::cisco_aironet350(),
       device::WnicParams::cisco_aironet350().with_latency(units::ms(20.0))});
  for (auto& cell : cells) cell.config.telemetry.enabled = true;

  auto aggregate_with = [&](int jobs) {
    sim::SweepAggregator agg;
    sim::run_sweep_streaming(
        cells, {.jobs = jobs},
        [&](std::size_t, const sim::SweepCell& cell, sim::SimResult&& result) {
          agg.add(cell, result);
        });
    sim::SweepRunInfo info;  // fixed metadata so only the strata can differ
    info.jobs = 1;
    std::ostringstream os;
    sim::write_aggregate_json(os, agg, info);
    return os.str();
  };

  const auto serial_json = aggregate_with(1);
  const auto parallel_json = aggregate_with(4);
  EXPECT_EQ(serial_json, parallel_json);
  EXPECT_NE(serial_json.find("\"mplayer/flexfetch\""), std::string::npos);
  EXPECT_NE(serial_json.find("\"energy_j\""), std::string::npos);
  EXPECT_NE(serial_json.find("\"hist.disk_service_s\""), std::string::npos);
}

TEST(Sweep, AggregatorFoldsStrataStatistics) {
  const auto scenario = workloads::scenario_mplayer(1);
  auto cells = sim::make_grid(
      {&scenario}, {"disk-only"},
      {device::WnicParams::cisco_aironet350(),
       device::WnicParams::cisco_aironet350().with_latency(units::ms(20.0))});
  const auto results = sim::run_sweep(cells, {.jobs = 1});

  sim::SweepAggregator agg;
  for (std::size_t i = 0; i < cells.size(); ++i) agg.add(cells[i], results[i]);

  EXPECT_EQ(agg.cells_seen(), cells.size());
  ASSERT_EQ(agg.strata().size(), 1u);
  const auto& [key, stratum] = *agg.strata().begin();
  EXPECT_EQ(key, "mplayer/disk-only");
  EXPECT_EQ(stratum.cells, cells.size());
  EXPECT_EQ(stratum.energy_j.count(), cells.size());
  // min <= mean <= max, and the extremes come from the actual results.
  const double e0 = results[0].total_energy().value();
  const double e1 = results[1].total_energy().value();
  EXPECT_DOUBLE_EQ(stratum.energy_j.min(), std::min(e0, e1));
  EXPECT_DOUBLE_EQ(stratum.energy_j.max(), std::max(e0, e1));
  EXPECT_NEAR(stratum.energy_j.mean(), (e0 + e1) / 2.0, 1e-9);
}

TEST(Sweep, RunningStatSingleSampleHasZeroSpread) {
  sim::RunningStat s;
  s.add(42.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.5);
  EXPECT_DOUBLE_EQ(s.min(), 42.5);
  EXPECT_DOUBLE_EQ(s.max(), 42.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  // Merging an empty partial is the identity, in either direction.
  sim::RunningStat empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.5);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.stddev(), 0.0);
}

TEST(Sweep, EmptyAggregatorEmitsNoStrata) {
  sim::SweepAggregator agg;
  EXPECT_EQ(agg.cells_seen(), 0u);
  EXPECT_TRUE(agg.strata().empty());
  std::ostringstream os;
  sim::write_aggregate_json(os, agg, sim::SweepRunInfo{});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"cells\": 0"), std::string::npos);
  EXPECT_EQ(json.find("\"energy_j\""), std::string::npos);
}

TEST(Sweep, HistogramQuantileEdgeCases) {
  telemetry::Histogram h;
  // No samples: no quantiles, by convention 0.0 at every q.
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(h, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(h, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(h, 1.0), 0.0);

  // Every sample in one bucket: every quantile is that bucket's upper
  // edge, including q <= 0 (first populated bucket).
  h.record(3.0);
  h.record(3.5);
  const double edge =
      telemetry::Histogram::bucket_upper_edge(telemetry::Histogram::bucket_of(3.0));
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(h, 0.0), edge);
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(h, 0.5), edge);
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(h, 1.0), edge);

  // Two buckets: the median stays in the lower one, the tail crosses.
  telemetry::Histogram two;
  two.record(1.5);
  two.record(1.6);
  two.record(1.7);
  two.record(1000.0);
  const double low =
      telemetry::Histogram::bucket_upper_edge(telemetry::Histogram::bucket_of(1.5));
  const double high = telemetry::Histogram::bucket_upper_edge(
      telemetry::Histogram::bucket_of(1000.0));
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(two, 0.5), low);
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(two, 0.75), low);
  EXPECT_DOUBLE_EQ(sim::histogram_quantile(two, 1.0), high);
}

TEST(Sweep, SerialFallbackIsRecordedInJson) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells = sim::make_grid({&scenario}, {"disk-only"},
                                    {device::WnicParams::cisco_aironet350()});
  const auto results = sim::run_sweep(cells, {.jobs = 1});
  sim::SweepRunInfo info;
  info.jobs = 1;
  info.serial_fallback = true;
  std::ostringstream os;
  sim::write_sweep_json(os, cells, results, info);
  EXPECT_NE(os.str().find("\"serial_fallback\": true"), std::string::npos);

  sim::SweepAggregator agg;
  for (std::size_t i = 0; i < cells.size(); ++i) agg.add(cells[i], results[i]);
  std::ostringstream agg_os;
  sim::write_aggregate_json(agg_os, agg, info);
  EXPECT_NE(agg_os.str().find("\"serial_fallback\": true"), std::string::npos);
}

TEST(Sweep, JsonEmitterRecordsCellsAndSpeedup) {
  const auto scenario = workloads::scenario_mplayer(1);
  const auto cells = sim::make_grid({&scenario}, {"disk-only"},
                                    {device::WnicParams::cisco_aironet350()});
  const auto results = sim::run_sweep(cells, {.jobs = 1});
  sim::SweepRunInfo info;
  info.jobs = 4;
  info.jobs_requested = 0;
  info.wall_seconds = 2.0;
  info.serial_wall_seconds = 8.0;
  std::ostringstream os;
  sim::write_sweep_json(os, cells, results, info);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"jobs_requested\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"disk-only\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": "), std::string::npos);
  EXPECT_NE(json.find("\"energy_j\": "), std::string::npos);
  EXPECT_NE(json.find("\"bandwidth_mbps\": 11"), std::string::npos);
}

}  // namespace
}  // namespace flexfetch
