#include "device/disk.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::device {
namespace {

constexpr double kEps = 1e-9;

DeviceRequest read_req(Bytes lba, Bytes size) {
  return DeviceRequest{.lba = lba, .size = size, .is_write = false};
}

TEST(Disk, StartsSpinningIdle) {
  Disk d;
  EXPECT_EQ(d.state(), DiskState::kIdle);
  EXPECT_TRUE(d.is_spinning());
  EXPECT_DOUBLE_EQ(d.now().value(), 0.0);
}

TEST(Disk, IdleEnergyIntegration) {
  Disk d;
  d.advance_to(Seconds{10.0});
  EXPECT_EQ(d.state(), DiskState::kIdle);
  EXPECT_NEAR(d.meter()[EnergyCategory::kIdle].value(), 16.0, kEps);  // 10 s * 1.6 W.
  EXPECT_NEAR(d.meter().total().value(), 16.0, kEps);
}

TEST(Disk, AdvanceIsIdempotentBackwards) {
  Disk d;
  d.advance_to(Seconds{5.0});
  const Joules e = d.meter().total();
  d.advance_to(Seconds{3.0});  // No-op.
  EXPECT_DOUBLE_EQ(d.meter().total().value(), e.value());
  EXPECT_DOUBLE_EQ(d.now().value(), 5.0);
}

TEST(Disk, SpinsDownAfterTimeout) {
  Disk d;
  d.advance_to(Seconds{21.0});  // Timeout at 20 s, spin-down takes 2.3 s.
  EXPECT_EQ(d.state(), DiskState::kSpinningDown);
  d.advance_to(Seconds{22.3});
  EXPECT_EQ(d.state(), DiskState::kStandby);
  EXPECT_NEAR(d.meter()[EnergyCategory::kIdle].value(), 32.0, kEps);      // 20 * 1.6.
  EXPECT_NEAR(d.meter()[EnergyCategory::kSpinDown].value(), 2.94, kEps);  // Lump.
  EXPECT_EQ(d.counters().spin_downs, 1u);
}

TEST(Disk, StandbyEnergyIntegration) {
  Disk d;
  d.advance_to(Seconds{122.3});  // 100 s of standby after the 22.3 s rundown.
  EXPECT_EQ(d.state(), DiskState::kStandby);
  EXPECT_NEAR(d.meter()[EnergyCategory::kStandby].value(), 15.0, kEps);  // 100 * 0.15.
}

TEST(Disk, RandomReadServiceFromIdle) {
  Disk d;
  const auto res = d.service(Seconds{0.0}, read_req(Bytes{1000}, Bytes{35'000'000}));
  // Positioning 20 ms, transfer 1.0 s, all at 2 W active power.
  EXPECT_NEAR(res.start.value(), 0.0, kEps);
  EXPECT_NEAR(res.completion.value(), 1.020, kEps);
  EXPECT_NEAR(res.energy.value(), 2.0 * 1.020, kEps);
  EXPECT_EQ(d.state(), DiskState::kIdle);
  EXPECT_EQ(d.counters().requests, 1u);
  EXPECT_EQ(d.counters().bytes_read, Bytes{35'000'000});
}

TEST(Disk, FirstRequestChargesAverageSeekNotDistanceFromZero) {
  // Before the head position is known there is nothing to measure a seek
  // distance from; the first request must pay the average stroke under the
  // distance seek model too, regardless of how far from LBA 0 it lands.
  const DiskParams p = DiskParams::hitachi_dk23da_distance();
  Disk near_disk(p), far_disk(p);
  const auto near_res = near_disk.service(Seconds{0.0}, read_req(4 * kKiB, Bytes{35'000}));
  const auto far_res =
      far_disk.service(Seconds{0.0}, read_req(p.capacity - kMiB, Bytes{35'000}));
  const Seconds expected =
      p.avg_seek_time + p.avg_rotation_time + Bytes{35'000} / p.bandwidth;
  EXPECT_NEAR((near_res.completion - near_res.start).value(), expected.value(), kEps);
  EXPECT_NEAR((far_res.completion - far_res.start).value(), expected.value(), kEps);
  // Identical service: the LBA convention no longer leaks into the cost.
  EXPECT_NEAR(near_res.energy.value(), far_res.energy.value(), kEps);

  // The *second* non-contiguous request prices the real head movement.
  const auto second =
      far_disk.service(far_res.completion, read_req(Bytes{0}, Bytes{35'000}));
  EXPECT_GT(second.completion - second.start, expected);
}

TEST(Disk, SequentialContinuationSkipsPositioning) {
  Disk d;
  const auto first = d.service(Seconds{0.0}, read_req(Bytes{0}, Bytes{1'000'000}));
  const auto second = d.service(first.completion, read_req(Bytes{1'000'000}, Bytes{1'000'000}));
  // Second request continues at the head position: transfer time only.
  EXPECT_NEAR((second.completion - second.arrival).value(), 1'000'000 / 35e6, kEps);
  EXPECT_EQ(d.counters().sequential_hits, 1u);
}

TEST(Disk, NonContiguousRequestPaysPositioning) {
  Disk d;
  const auto first = d.service(Seconds{0.0}, read_req(Bytes{0}, Bytes{1'000'000}));
  const auto second = d.service(first.completion, read_req(Bytes{9'000'000}, Bytes{1'000'000}));
  EXPECT_NEAR((second.completion - second.arrival).value(), 0.020 + 1'000'000 / 35e6, kEps);
  EXPECT_EQ(d.counters().sequential_hits, 0u);
}

TEST(Disk, ServiceFromStandbyPaysSpinUp) {
  Disk d;
  d.advance_to(Seconds{60.0});  // Well into standby.
  ASSERT_EQ(d.state(), DiskState::kStandby);
  const auto res = d.service(Seconds{60.0}, read_req(Bytes{0}, Bytes{3'500'000}));
  EXPECT_NEAR(res.start.value(), 61.6, kEps);  // 1.6 s spin-up first.
  EXPECT_NEAR(res.completion.value(), 61.6 + 0.020 + 0.1, kEps);
  // Energy: spin-up lump 5 J + (0.12 s at 2 W).
  EXPECT_NEAR(res.energy.value(), 5.0 + 0.24, kEps);
  EXPECT_EQ(d.counters().spin_ups, 1u);
}

TEST(Disk, ServiceDuringSpinDownWaitsOutTheTransition) {
  Disk d;
  d.advance_to(Seconds{21.0});  // Mid spin-down (20.0 .. 22.3).
  ASSERT_EQ(d.state(), DiskState::kSpinningDown);
  const auto res = d.service(Seconds{21.0}, read_req(Bytes{0}, Bytes{35'000}));
  // Must wait until 22.3, then spin up (1.6 s) -> start at 23.9.
  EXPECT_NEAR(res.start.value(), 23.9, kEps);
  EXPECT_EQ(d.counters().spin_ups, 1u);
  EXPECT_EQ(d.counters().spin_downs, 1u);
}

TEST(Disk, RequestBeforeNowIsClampedToNow) {
  Disk d;
  const auto first = d.service(Seconds{0.0}, read_req(Bytes{0}, Bytes{35'000'000}));  // Ends 1.02.
  const auto second = d.service(Seconds{0.5}, read_req(Bytes{0}, Bytes{35'000}));
  EXPECT_GE(second.arrival, first.completion - Seconds{kEps});
}

TEST(Disk, IdleTimerResetsAfterService) {
  Disk d;
  d.service(Seconds{15.0}, read_req(Bytes{0}, Bytes{35'000}));
  d.advance_to(Seconds{30.0});  // Only ~15 s since the request: still spinning.
  EXPECT_EQ(d.state(), DiskState::kIdle);
  d.advance_to(Seconds{60.0});
  EXPECT_EQ(d.state(), DiskState::kStandby);
}

TEST(Disk, EstimateDoesNotMutate) {
  Disk d;
  d.advance_to(Seconds{5.0});
  const Joules before = d.meter().total();
  const auto est = d.estimate(Seconds{5.0}, read_req(Bytes{0}, Bytes{1'000'000}));
  EXPECT_GT(est.energy, Joules{0.0});
  EXPECT_DOUBLE_EQ(d.meter().total().value(), before.value());
  EXPECT_EQ(d.counters().requests, 0u);
  EXPECT_DOUBLE_EQ(d.now().value(), 5.0);
}

TEST(Disk, ForceSpinUpFromStandby) {
  Disk d;
  d.advance_to(Seconds{60.0});
  d.force_spin_up(Seconds{60.0});
  EXPECT_EQ(d.state(), DiskState::kSpinningUp);
  d.advance_to(Seconds{61.6});
  EXPECT_EQ(d.state(), DiskState::kIdle);
  EXPECT_EQ(d.counters().spin_ups, 1u);
  EXPECT_NEAR(d.meter()[EnergyCategory::kSpinUp].value(), 5.0, kEps);
}

TEST(Disk, ForceSpinUpWhileSpinningIsNoOp) {
  Disk d;
  d.advance_to(Seconds{5.0});
  d.force_spin_up(Seconds{5.0});
  EXPECT_EQ(d.state(), DiskState::kIdle);
  EXPECT_EQ(d.counters().spin_ups, 0u);
}

TEST(Disk, TimeToReadyPerState) {
  Disk d;
  EXPECT_DOUBLE_EQ(d.time_to_ready((Seconds{5.0})).value(), 0.0);  // Idle, before timeout.
  // At t=21 the disk would be mid-spin-down: wait 1.3 s + 1.6 s spin-up.
  EXPECT_NEAR(d.time_to_ready((Seconds{21.0})).value(), 1.3 + 1.6, kEps);
  // Deep standby: just the spin-up.
  EXPECT_NEAR(d.time_to_ready((Seconds{100.0})).value(), 1.6, kEps);
}

TEST(Disk, BreakEvenMatchesParams) {
  Disk d;
  EXPECT_DOUBLE_EQ(d.break_even_time().value(), d.params().break_even_time().value());
}

TEST(Disk, ZeroSizeRequestRejected) {
  Disk d;
  EXPECT_THROW(d.service(Seconds{0.0}, read_req(Bytes{0}, Bytes{0})), ConfigError);
}

TEST(Disk, ResetAccountingKeepsPowerState) {
  Disk d;
  d.advance_to(Seconds{60.0});
  ASSERT_EQ(d.state(), DiskState::kStandby);
  d.reset_accounting();
  EXPECT_DOUBLE_EQ(d.meter().total().value(), 0.0);
  EXPECT_EQ(d.state(), DiskState::kStandby);
}

TEST(Disk, WriteCountsBytesWritten) {
  Disk d;
  d.service(Seconds{0.0}, DeviceRequest{.lba = Bytes{0}, .size = Bytes{4096}, .is_write = true});
  EXPECT_EQ(d.counters().bytes_written, Bytes{4096});
  EXPECT_EQ(d.counters().bytes_read, Bytes{0});
}

TEST(Disk, EnergyConservationOverScriptedTimeline) {
  Disk d;
  d.service(Seconds{0.0}, read_req(Bytes{0}, Bytes{1'000'000}));
  d.service(Seconds{30.0}, read_req(Bytes{5'000'000}, Bytes{2'000'000}));  // Forces a spin cycle.
  d.advance_to(Seconds{100.0});
  const auto& m = d.meter();
  const Joules sum = m[EnergyCategory::kActiveTransfer] +
                     m[EnergyCategory::kIdle] + m[EnergyCategory::kStandby] +
                     m[EnergyCategory::kSpinUp] + m[EnergyCategory::kSpinDown];
  EXPECT_NEAR(sum.value(), m.total().value(), kEps);
  EXPECT_EQ(d.counters().spin_ups, 1u);
  EXPECT_EQ(d.counters().spin_downs, 2u);  // After each idle timeout.
}

TEST(Disk, StateNames) {
  EXPECT_STREQ(to_string(DiskState::kIdle), "idle");
  EXPECT_STREQ(to_string(DiskState::kStandby), "standby");
  EXPECT_STREQ(to_string(DiskState::kSpinningUp), "spinning-up");
  EXPECT_STREQ(to_string(DiskState::kSpinningDown), "spinning-down");
}

}  // namespace
}  // namespace flexfetch::device
