#include "core/stage.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/builder.hpp"

namespace flexfetch::core {
namespace {

/// Builds a profile of `n` bursts, one every `gap` seconds, `bytes` each.
Profile uniform_profile(std::size_t n, Seconds gap, Bytes bytes) {
  trace::TraceBuilder b("u");
  for (std::size_t i = 0; i < n; ++i) {
    b.read(1, i * bytes, bytes);
    if (i + 1 < n) b.think(gap);
  }
  return Profile::from_trace(b.build(), Seconds{0.020});
}

TEST(Stage, EmptyProfileHasNoStages) {
  EXPECT_TRUE(segment_stages(Profile{}, Seconds{40.0}).empty());
}

TEST(Stage, SingleShortBurstIsOneStage) {
  const auto stages = segment_stages(uniform_profile(1, Seconds{0}, Bytes{4096}), Seconds{40.0});
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].first_burst, 0u);
  EXPECT_EQ(stages[0].burst_count, 1u);
  EXPECT_EQ(stages[0].bytes, Bytes{4096});
}

TEST(Stage, StageClosesWhenSpanJustExceedsThreshold) {
  // Bursts every 10 s: the stage spanning bursts 0..4 reaches 40 s at the
  // 5th burst and closes there.
  const auto stages = segment_stages(uniform_profile(10, Seconds{10.0}, Bytes{4096}), Seconds{40.0});
  ASSERT_GE(stages.size(), 2u);
  EXPECT_EQ(stages[0].first_burst, 0u);
  EXPECT_EQ(stages[0].burst_count, 5u);
  EXPECT_GE(stages[0].length, Seconds{40.0});
  EXPECT_EQ(stages[1].first_burst, 5u);
}

TEST(Stage, EveryBurstBelongsToExactlyOneStage) {
  const auto profile = uniform_profile(23, Seconds{7.0}, Bytes{1000});
  const auto stages = segment_stages(profile, Seconds{40.0});
  std::size_t covered = 0;
  std::size_t expected_first = 0;
  for (const auto& s : stages) {
    EXPECT_EQ(s.first_burst, expected_first);
    covered += s.burst_count;
    expected_first = s.end_burst();
  }
  EXPECT_EQ(covered, profile.size());
}

TEST(Stage, BytesSumToProfileTotal) {
  const auto profile = uniform_profile(17, Seconds{9.0}, Bytes{12345});
  const auto stages = segment_stages(profile, Seconds{40.0});
  Bytes total = Bytes{0};
  for (const auto& s : stages) total += s.bytes;
  EXPECT_EQ(total, profile.total_bytes());
}

TEST(Stage, TrailingShortStageIsKept) {
  // 6 bursts every 10 s: stage 0 takes 5 bursts, the 6th forms a short tail.
  const auto stages = segment_stages(uniform_profile(6, Seconds{10.0}, Bytes{1000}), Seconds{40.0});
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[1].burst_count, 1u);
  EXPECT_LT(stages[1].length, Seconds{40.0});
}

TEST(Stage, LargerThresholdMeansFewerStages) {
  const auto profile = uniform_profile(30, Seconds{5.0}, Bytes{1000});
  const auto small = segment_stages(profile, Seconds{20.0});
  const auto large = segment_stages(profile, Seconds{80.0});
  EXPECT_GT(small.size(), large.size());
}

TEST(Stage, RejectsNonPositiveThreshold) {
  EXPECT_THROW(segment_stages(Profile{}, Seconds{0.0}), ConfigError);
  EXPECT_THROW(segment_stages(Profile{}, Seconds{-1.0}), ConfigError);
}

TEST(Stage, StageStartMatchesFirstBurst) {
  const auto profile = uniform_profile(10, Seconds{10.0}, Bytes{1000});
  const auto stages = segment_stages(profile, Seconds{40.0});
  for (const auto& s : stages) {
    EXPECT_DOUBLE_EQ(s.start.value(), profile[s.first_burst].start.value());
  }
}

}  // namespace
}  // namespace flexfetch::core
