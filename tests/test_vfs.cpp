#include "os/vfs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::os {
namespace {

trace::SyscallRecord read_call(trace::Inode ino, Bytes off, Bytes size,
                               Seconds t = Seconds{0.0}) {
  trace::SyscallRecord r;
  r.inode = ino;
  r.offset = off;
  r.size = size;
  r.op = trace::OpType::kRead;
  r.timestamp = t;
  return r;
}

trace::SyscallRecord write_call(trace::Inode ino, Bytes off, Bytes size,
                                Seconds t = Seconds{0.0}) {
  trace::SyscallRecord r = read_call(ino, off, size, t);
  r.op = trace::OpType::kWrite;
  return r;
}

VfsConfig small_vfs(std::size_t pages = 256) {
  VfsConfig c;
  c.cache.capacity_pages = pages;
  return c;
}

TEST(Vfs, ColdReadFetchesWithReadahead) {
  Vfs vfs(small_vfs());
  const ReadPlan plan = vfs.plan_read(read_call(1, Bytes{0}, Bytes{4096}), Seconds{0.0});
  EXPECT_EQ(plan.pages_demanded, 1u);
  EXPECT_EQ(plan.pages_hit, 0u);
  ASSERT_EQ(plan.fetches.size(), 1u);
  EXPECT_EQ(plan.fetches[0].page_count, 4u);  // Min readahead window.
  EXPECT_EQ(plan.bytes_to_fetch(), Bytes{4u * 4096u});
  EXPECT_FALSE(plan.fully_cached());
}

TEST(Vfs, PrefetchedPagesHitOnNextRead) {
  Vfs vfs(small_vfs());
  vfs.plan_read(read_call(1, Bytes{0}, Bytes{4096}), Seconds{0.0});  // Prefetches pages 0-3.
  const ReadPlan plan = vfs.plan_read(read_call(1, Bytes{4096}, Bytes{4096}), Seconds{1.0});
  EXPECT_EQ(plan.pages_hit, 1u);
  // The sequential detector still extends the window beyond the hit.
  EXPECT_TRUE(plan.fully_cached() || plan.fetches[0].first_page >= 2u);
}

TEST(Vfs, RereadWithinPrefetchedAreaIsFullyCached) {
  Vfs vfs(small_vfs());
  vfs.plan_read(read_call(1, Bytes{0}, Bytes{32 * 1024}), Seconds{0.0});  // Pages 0-7 resident.
  // A short re-read of the head is non-sequential (ends before the
  // expected next page) and entirely resident: no device traffic.
  const ReadPlan plan = vfs.plan_read(read_call(1, Bytes{0}, Bytes{8 * 1024}), Seconds{1.0});
  EXPECT_TRUE(plan.fully_cached());
  EXPECT_EQ(plan.pages_hit, 2u);
}

TEST(Vfs, HolesInCacheProduceMultipleFetchRanges) {
  Vfs vfs(small_vfs());
  // Pre-cache pages 1 and 3 of the file.
  vfs.cache().fill(PageId{1, 1}, Seconds{0.0});
  vfs.cache().fill(PageId{1, 3}, Seconds{0.0});
  const ReadPlan plan = vfs.plan_read(read_call(1, Bytes{0}, Bytes{5 * 4096}), Seconds{1.0});
  // Misses: 0, 2, 4(+) -> at least three disjoint ranges.
  ASSERT_GE(plan.fetches.size(), 3u);
  EXPECT_EQ(plan.fetches[0].first_page, 0u);
  EXPECT_EQ(plan.fetches[0].page_count, 1u);
  EXPECT_EQ(plan.fetches[1].first_page, 2u);
  EXPECT_EQ(plan.pages_hit, 2u);
}

TEST(Vfs, WriteDirtiesCoveredPages) {
  Vfs vfs(small_vfs());
  const WritePlan plan = vfs.plan_write(write_call(1, Bytes{0}, Bytes{10000}), Seconds{5.0});
  EXPECT_EQ(plan.pages_dirtied, 3u);  // Pages 0-2.
  EXPECT_EQ(vfs.cache().dirty_count(), 3u);
  EXPECT_TRUE(plan.evicted_dirty.empty());
}

TEST(Vfs, EvictionUnderPressureReturnsDirtyPages) {
  Vfs vfs(small_vfs(8));
  vfs.plan_write(write_call(1, Bytes{0}, Bytes{4096}), Seconds{0.0});
  std::vector<DirtyPage> evicted;
  for (std::uint64_t i = 0; i < 30 && evicted.empty(); ++i) {
    evicted = vfs.plan_read(read_call(2, Bytes{i * 128 * 1024}, Bytes{4096}), Seconds{1.0}).evicted_dirty;
  }
  EXPECT_FALSE(evicted.empty());
}

TEST(Vfs, PlanReadRejectsWrongOp) {
  Vfs vfs(small_vfs());
  EXPECT_THROW(vfs.plan_read(write_call(1, Bytes{0}, Bytes{10}), Seconds{0.0}), ConfigError);
  EXPECT_THROW(vfs.plan_write(read_call(1, Bytes{0}, Bytes{10}), Seconds{0.0}), ConfigError);
}

TEST(Vfs, SelectWritebackDelegatesToPolicy) {
  Vfs vfs(small_vfs());
  vfs.plan_write(write_call(1, Bytes{0}, Bytes{4096}), Seconds{0.0});
  EXPECT_EQ(vfs.select_writeback(Seconds{1.0}, /*device_active=*/true).size(), 1u);
  EXPECT_TRUE(vfs.select_writeback(Seconds{1.0}, /*device_active=*/false).empty());
}

TEST(Vfs, CompleteWritebackMarksClean) {
  Vfs vfs(small_vfs());
  vfs.plan_write(write_call(1, Bytes{0}, Bytes{4096}), Seconds{0.0});
  const auto dirty = vfs.select_writeback(Seconds{1.0}, true);
  vfs.complete_writeback(dirty);
  EXPECT_EQ(vfs.cache().dirty_count(), 0u);
}

TEST(Vfs, CoalesceGroupsContiguousPages) {
  const auto ranges = Vfs::coalesce({PageId{1, 0}, PageId{1, 1}, PageId{1, 3},
                                     PageId{2, 0}, PageId{1, 2}});
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].inode, 1u);
  EXPECT_EQ(ranges[0].first_page, 0u);
  EXPECT_EQ(ranges[0].page_count, 4u);  // 0-3 merged (duplicates removed).
  EXPECT_EQ(ranges[1].inode, 2u);
}

TEST(Vfs, CoalesceDeduplicates) {
  const auto ranges = Vfs::coalesce({PageId{1, 0}, PageId{1, 0}});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].page_count, 1u);
}

TEST(Vfs, RangeCachedChecksEveryPage) {
  Vfs vfs(small_vfs());
  vfs.cache().fill(PageId{1, 0}, Seconds{0.0});
  vfs.cache().fill(PageId{1, 1}, Seconds{0.0});
  EXPECT_TRUE(vfs.range_cached(1, Bytes{0}, Bytes{8192}));
  EXPECT_TRUE(vfs.range_cached(1, Bytes{100}, Bytes{4096}));  // Straddles pages 0-1.
  EXPECT_FALSE(vfs.range_cached(1, Bytes{0}, Bytes{3 * 4096}));
  EXPECT_FALSE(vfs.range_cached(2, Bytes{0}, Bytes{4096}));
}

TEST(Vfs, ReadaheadStateSurvivesAcrossCalls) {
  Vfs vfs(small_vfs());
  vfs.plan_read(read_call(1, Bytes{0}, Bytes{4096}), Seconds{0.0});
  vfs.plan_read(read_call(1, Bytes{4096}, Bytes{4096}), Seconds{1.0});  // Sequential continuation.
  EXPECT_EQ(vfs.readahead().window_pages(1), 8u);
}

}  // namespace
}  // namespace flexfetch::os
