#include "core/flexfetch.hpp"

#include <gtest/gtest.h>

#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::core {
namespace {

using device::DeviceKind;

/// Paced workload: a small read every 4 s for `n` cycles. Sparse access
/// makes the disk idle expensively -> the network should win.
trace::Trace paced_trace(int n = 30, Bytes chunk = Bytes{256 * 1024}) {
  trace::TraceBuilder b("paced");
  b.process(60, 60);
  for (int i = 0; i < n; ++i) {
    b.read(1, chunk * static_cast<std::uint64_t>(i), chunk);
    b.think(Seconds{4.0});
  }
  return b.build();
}

/// Bursty workload: one large sequential scan. The disk's bandwidth
/// advantage dominates -> the disk should win.
trace::Trace bursty_trace(Bytes total = 60 * kMiB) {
  trace::TraceBuilder b("bursty");
  b.process(61, 61);
  b.read_file(1, total, Bytes{128 * 1024});
  return b.build();
}

Profile profile_of(const trace::Trace& t) {
  return Profile::from_trace(t, Seconds{0.020});
}

sim::SimResult run_policy(sim::Policy& policy, const trace::Trace& t) {
  return sim::simulate(sim::SimConfig{}, t, policy);
}

TEST(FlexFetch, NamesDistinguishVariants) {
  FlexFetchPolicy adaptive(FlexFetchConfig{}, Profile{});
  FlexFetchPolicy static_variant(FlexFetchConfig::static_variant(), Profile{});
  EXPECT_EQ(adaptive.name(), "FlexFetch");
  EXPECT_EQ(static_variant.name(), "FlexFetch-static");
}

TEST(FlexFetch, RejectsBadConfig) {
  FlexFetchConfig c;
  c.loss_rate = -1.0;
  EXPECT_THROW(FlexFetchPolicy(c, Profile{}), ConfigError);
  c = FlexFetchConfig{};
  c.stage_min_length = Seconds{0.0};
  EXPECT_THROW(FlexFetchPolicy(c, Profile{}), ConfigError);
}

TEST(FlexFetch, PacedWorkloadGoesToNetwork) {
  const trace::Trace t = paced_trace();
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  const auto r = run_policy(policy, t);
  EXPECT_GT(r.net_requests, r.disk_requests);
  ASSERT_FALSE(policy.stage_choices().empty());
  EXPECT_EQ(policy.stage_choices()[0], DeviceKind::kNetwork);
}

TEST(FlexFetch, BurstyWorkloadGoesToDisk) {
  const trace::Trace t = bursty_trace();
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  const auto r = run_policy(policy, t);
  EXPECT_GT(r.disk_requests, 0u);
  EXPECT_EQ(r.net_requests, 0u);
  EXPECT_EQ(policy.stage_choices()[0], DeviceKind::kDisk);
}

TEST(FlexFetch, PacedBeatsDiskOnlyOnEnergy) {
  const trace::Trace t = paced_trace();
  FlexFetchPolicy ff(FlexFetchConfig{}, profile_of(t));
  const auto ff_result = run_policy(ff, t);
  policies::DiskOnlyPolicy disk_only;
  const auto disk_result = run_policy(disk_only, t);
  EXPECT_LT(ff_result.total_energy(), disk_result.total_energy());
}

TEST(FlexFetch, BurstyBeatsWnicOnlyOnEnergy) {
  const trace::Trace t = bursty_trace();
  FlexFetchPolicy ff(FlexFetchConfig{}, profile_of(t));
  const auto ff_result = run_policy(ff, t);
  policies::WnicOnlyPolicy wnic_only;
  const auto wnic_result = run_policy(wnic_only, t);
  EXPECT_LT(ff_result.total_energy(), wnic_result.total_energy());
}

TEST(FlexFetch, EmptyProfileUsesDefaultSource) {
  FlexFetchConfig config;
  config.default_source = DeviceKind::kNetwork;
  config.adapt_stage_audit = false;  // Keep the default in force.
  FlexFetchPolicy policy(config, Profile{});
  const auto r = run_policy(policy, paced_trace(8));
  EXPECT_GT(r.net_requests, 0u);
  EXPECT_EQ(r.disk_requests, 0u);
}

TEST(FlexFetch, StagesAdvanceWithTheRun) {
  const trace::Trace t = paced_trace(60);  // ~4 min: several 40 s stages.
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  run_policy(policy, t);
  EXPECT_GE(policy.stats().stages_entered, 4u);
  EXPECT_EQ(policy.stage_choices().size(), policy.stats().stages_entered);
}

TEST(FlexFetch, RecordedProfileReflectsTheRun) {
  const trace::Trace t = paced_trace(10);
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  run_policy(policy, t);
  const Profile& recorded = policy.recorded_profile();
  EXPECT_EQ(recorded.size(), 10u);  // One burst per paced read.
  EXPECT_EQ(recorded.total_bytes(), Bytes{10u * 256u * 1024u});
}

TEST(FlexFetch, DecisionLogIsPopulated) {
  const trace::Trace t = paced_trace(20);
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  run_policy(policy, t);
  ASSERT_FALSE(policy.decision_log().empty());
  const auto& first = policy.decision_log().front();
  EXPECT_EQ(first.origin, DecisionRecord::Origin::kStageEntry);
  EXPECT_GT(first.disk.energy, Joules{0.0});
  EXPECT_GT(first.network.energy, Joules{0.0});
}

TEST(FlexFetch, BurstThresholdDerivedFromDiskWhenUnset) {
  const trace::Trace t = paced_trace(5);
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  run_policy(policy, t);
  // DK23DA access time: 13 ms seek + 7 ms rotation.
  EXPECT_DOUBLE_EQ(policy.config().burst_threshold.value(), 0.020);
}

TEST(FlexFetch, FreeRiderRedirectsWhenPinnedProgramHoldsDisk) {
  // Profiled paced program (network-favorable) + a pinned program reading
  // from the disk every 2 s, keeping it spinning.
  const trace::Trace paced = paced_trace(30);
  trace::TraceBuilder pinned_builder("pinned");
  pinned_builder.process(70, 70);
  for (int i = 0; i < 60; ++i) {
    pinned_builder.read(99, Bytes{static_cast<std::uint64_t>(i) * 64 * 1024}, Bytes{64 * 1024});
    pinned_builder.think(Seconds{2.0});
  }
  std::vector<sim::ProgramSpec> programs;
  programs.push_back(sim::ProgramSpec{.trace = paced, .name = "paced"});
  programs.push_back(sim::ProgramSpec{.trace = pinned_builder.build(),
                                      .name = "pinned",
                                      .profiled = false,
                                      .disk_pinned = true});
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(paced));
  sim::Simulator sim(sim::SimConfig{}, std::move(programs), policy);
  sim.run();
  EXPECT_GT(policy.stats().free_rider_redirects, 0u);
}

TEST(FlexFetch, StaticVariantNeverAdapts) {
  const trace::Trace t = paced_trace(30);
  FlexFetchPolicy policy(FlexFetchConfig::static_variant(), profile_of(t));
  run_policy(policy, t);
  const auto& s = policy.stats();
  EXPECT_EQ(s.splice_reevaluations, 0u);
  EXPECT_EQ(s.audit_overrides, 0u);
  EXPECT_EQ(s.free_rider_redirects, 0u);
  EXPECT_EQ(s.cache_filtered_requests, 0u);
}

TEST(FlexFetch, AuditCorrectsAStaleProfile) {
  // Profile says: tiny reads every 30 s (network-favorable). The actual
  // run scans 20 MiB every 5 s (disk-favorable).
  trace::TraceBuilder stale("app");
  stale.process(60, 60);
  for (int i = 0; i < 12; ++i) {
    stale.read(1, Bytes{static_cast<std::uint64_t>(i) * 8192}, Bytes{8192});
    stale.think(Seconds{30.0});
  }
  trace::TraceBuilder actual_builder("app");
  actual_builder.process(60, 60);
  for (int i = 0; i < 10; ++i) {
    // Distinct 20 MiB files so the buffer cache cannot absorb the run.
    actual_builder.read_file(100 + static_cast<trace::Inode>(i), 20 * kMiB,
                             Bytes{128 * 1024});
    actual_builder.think(Seconds{5.0});
  }
  const trace::Trace actual = actual_builder.build();
  const trace::Trace stale_trace = stale.build();

  FlexFetchPolicy adaptive(FlexFetchConfig{}, profile_of(stale_trace));
  const auto adaptive_result = run_policy(adaptive, actual);
  FlexFetchPolicy static_variant(FlexFetchConfig::static_variant(),
                                 profile_of(stale_trace));
  const auto static_result = run_policy(static_variant, actual);

  EXPECT_GT(adaptive.stats().audit_overrides, 0u);
  EXPECT_LT(adaptive_result.total_energy(), static_result.total_energy());
}

TEST(FlexFetch, CacheFilterDropsWarmRequests) {
  // A two-phase workload whose second phase re-reads the first phase's
  // data: phases are separate 40 s stages, so at the second stage's entry
  // the profiled requests are cache-resident and must be filtered from the
  // estimates (Section 2.3.2).
  trace::TraceBuilder b("warm");
  b.process(60, 60);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 10; ++i) {
      b.read(1, Bytes{static_cast<std::uint64_t>(i) * 16 * 1024}, Bytes{16 * 1024});
      b.think(Seconds{4.0});
    }
  }
  const trace::Trace t = b.build();
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  run_policy(policy, t);
  EXPECT_GT(policy.stats().cache_filtered_requests, 0u);
}

TEST(FlexFetch, MultiProfileConstructorMerges) {
  const trace::Trace a = paced_trace(5);
  trace::TraceBuilder bb("b");
  bb.process(61, 61);
  bb.at(Seconds{100.0});
  bb.read(2, Bytes{0}, Bytes{4096});
  const std::vector<Profile> profiles{profile_of(a), profile_of(bb.build())};
  FlexFetchPolicy policy(FlexFetchConfig{}, profiles);
  run_policy(policy, a);  // Merged profile drives the run.
  EXPECT_GE(policy.stats().stages_entered, 1u);
}

TEST(FlexFetch, SpliceReevaluationsFireOnVolumeProgress) {
  const trace::Trace t = paced_trace(30);
  FlexFetchPolicy policy(FlexFetchConfig{}, profile_of(t));
  run_policy(policy, t);
  EXPECT_GT(policy.stats().splice_reevaluations, 0u);
}

TEST(FlexFetch, LossRateGatesTheNetwork) {
  // A workload where the network saves energy at a noticeable slowdown:
  // moderate bursts with moderate gaps. A zero loss rate must refuse the
  // slower network; a generous one may accept it.
  trace::TraceBuilder b("mix");
  b.process(60, 60);
  for (int i = 0; i < 20; ++i) {
    b.read_file(1 + static_cast<trace::Inode>(i), 1 * kMiB, Bytes{128 * 1024});
    b.think(Seconds{6.0});
  }
  const trace::Trace t = b.build();

  FlexFetchConfig strict;
  strict.loss_rate = 0.0;
  FlexFetchPolicy strict_policy(strict, profile_of(t));
  const auto strict_result = run_policy(strict_policy, t);

  FlexFetchConfig loose;
  loose.loss_rate = 10.0;
  FlexFetchPolicy loose_policy(loose, profile_of(t));
  const auto loose_result = run_policy(loose_policy, t);

  // Strict: network only if it is also faster; here 1 MiB bursts at
  // 11 Mbps are clearly slower, so the disk must carry more traffic under
  // the strict rate than under the loose one.
  EXPECT_GE(strict_result.disk_bytes, loose_result.disk_bytes);
}

}  // namespace
}  // namespace flexfetch::core
