#include "core/decision.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::core {
namespace {

using device::DeviceKind;

Estimate est(Seconds t, Joules e) { return Estimate{.time = t, .energy = e}; }

TEST(Decision, Rule1DiskDominates) {
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{50}), est(Seconds{20}, Joules{100}), 0.25), DeviceKind::kDisk);
}

TEST(Decision, Rule2NetworkDominates) {
  EXPECT_EQ(decide_source(est(Seconds{20}, Joules{100}), est(Seconds{10}, Joules{50}), 0.25),
            DeviceKind::kNetwork);
}

TEST(Decision, Rule3NetworkSavesEnergyWithinLossRate) {
  // Network: 10% slower, 50% cheaper. Saving (0.5) >= loss (0.1) < 0.25.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{11}, Joules{50}), 0.25),
            DeviceKind::kNetwork);
}

TEST(Decision, Rule3RejectsWhenLossExceedsRate) {
  // Network: 30% slower (> 25% loss rate) even though it halves energy.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{13}, Joules{50}), 0.25), DeviceKind::kDisk);
}

TEST(Decision, Rule3RejectsWhenSavingBelowLoss) {
  // Network: 20% slower but only 10% cheaper: x < n.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{12}, Joules{90}), 0.25), DeviceKind::kDisk);
}

TEST(Decision, LossRateBoundaryIsInclusive) {
  // Loss exactly equals the rate: the configured rate is the highest
  // *tolerable* loss, so equality is still tolerable — accepted.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{12.5}, Joules{50}), 0.25),
            DeviceKind::kNetwork);
}

// --- Weak-dominance tie matrix (regression for the strict-< gaps). -------

TEST(Decision, EqualTimeCheaperNetworkWins) {
  // Historical gap: at equal time a strictly cheaper network fell through
  // to disk when loss_rate == 0 (Rule 3's strict bound rejected loss 0).
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{10}, Joules{60}), 0.0),
            DeviceKind::kNetwork);
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{10}, Joules{60}), 0.25),
            DeviceKind::kNetwork);
}

TEST(Decision, EqualEnergyFasterNetworkWins) {
  // Historical gap: at equal energy a strictly faster network failed every
  // rule (Rule 2 wanted strict <, Rule 3 wants strict energy saving).
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{8}, Joules{100}), 0.25),
            DeviceKind::kNetwork);
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{8}, Joules{100}), 0.0),
            DeviceKind::kNetwork);
}

TEST(Decision, EqualTimeCheaperDiskWins) {
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{60}), est(Seconds{10}, Joules{100}), 1.0),
            DeviceKind::kDisk);
}

TEST(Decision, EqualEnergyFasterDiskWins) {
  EXPECT_EQ(decide_source(est(Seconds{8}, Joules{100}), est(Seconds{10}, Joules{100}), 1.0),
            DeviceKind::kDisk);
}

TEST(Decision, SavingEqualToLossIsAccepted) {
  // (E_disk-E_net)/E_disk == (T_net-T_disk)/T_disk: ">=" accepts.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{11}, Joules{90}), 0.25),
            DeviceKind::kNetwork);
}

TEST(Decision, DiskFasterButNetworkNotCheaperFallsToDisk) {
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{12}, Joules{100}), 0.25),
            DeviceKind::kDisk);
}

TEST(Decision, NetworkFasterButDiskCheaperFallsToDisk) {
  // The asymmetric fall-through of the paper's rules: no rule selects the
  // network when the disk is the cheaper source.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{50}), est(Seconds{8}, Joules{100}), 0.25), DeviceKind::kDisk);
}

TEST(Decision, ExactTieFallsToDisk) {
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{10}, Joules{100}), 0.25),
            DeviceKind::kDisk);
}

TEST(Decision, ZeroLossRateStillAllowsDominatingNetwork) {
  EXPECT_EQ(decide_source(est(Seconds{20}, Joules{100}), est(Seconds{10}, Joules{50}), 0.0),
            DeviceKind::kNetwork);
  // But rejects any slowdown.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{10.1}, Joules{10}), 0.0),
            DeviceKind::kDisk);
}

TEST(Decision, HigherLossRateAdmitsSlowerNetwork) {
  // 50% slower, 60% cheaper: rejected at 25% loss rate, accepted at 100%.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{15}, Joules{40}), 0.25), DeviceKind::kDisk);
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{15}, Joules{40}), 1.0),
            DeviceKind::kNetwork);
}

TEST(Decision, ZeroCostEstimatesFallToDisk) {
  EXPECT_EQ(decide_source(est(Seconds{0}, Joules{0}), est(Seconds{0}, Joules{0}), 0.25), DeviceKind::kDisk);
}

TEST(Decision, NegativeLossRateRejected) {
  EXPECT_THROW(decide_source(est(Seconds{1}, Joules{1}), est(Seconds{1}, Joules{1}), -0.1), ConfigError);
}

TEST(Decision, EnergySavingAccountsRelativeToDisk) {
  // 100 -> 80 J is a 20% saving; 10 -> 11.5 s is a 15% loss; accepted at
  // the paper's 25% threshold.
  EXPECT_EQ(decide_source(est(Seconds{10}, Joules{100}), est(Seconds{11.5}, Joules{80}), 0.25),
            DeviceKind::kNetwork);
}

}  // namespace
}  // namespace flexfetch::core
