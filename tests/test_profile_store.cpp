#include "core/profile_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "trace/builder.hpp"

namespace flexfetch::core {
namespace {

Profile named_profile(const std::string& name) {
  trace::TraceBuilder b(name);
  b.read(1, Bytes{0}, Bytes{4096});
  return Profile::from_trace(b.build(), Seconds{0.020});
}

TEST(ProfileStore, PutGetRoundTrip) {
  ProfileStore store;
  store.put(named_profile("make"));
  ASSERT_TRUE(store.contains("make"));
  const auto p = store.get("make");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->program(), "make");
  EXPECT_EQ(store.size(), 1u);
}

TEST(ProfileStore, GetMissingReturnsNullopt) {
  ProfileStore store;
  EXPECT_FALSE(store.get("nope").has_value());
  EXPECT_FALSE(store.contains("nope"));
}

TEST(ProfileStore, PutReplacesExisting) {
  ProfileStore store;
  store.put(named_profile("prog"));
  trace::TraceBuilder b("prog");
  b.read(9, Bytes{0}, Bytes{8192});
  b.think(Seconds{1.0});
  b.read(9, Bytes{8192}, Bytes{8192});
  store.put(Profile::from_trace(b.build(), Seconds{0.020}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get("prog")->size(), 2u);
}

TEST(ProfileStore, RejectsUnnamedProfile) {
  ProfileStore store;
  EXPECT_THROW(store.put(Profile{}), ConfigError);
}

TEST(ProfileStore, FlushAndLoadDirectory) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "flexfetch_store_test")
          .string();
  std::filesystem::remove_all(dir);
  {
    ProfileStore store(dir);
    store.put(named_profile("grep"));
    store.put(named_profile("make"));
    store.flush();
  }
  ProfileStore loaded(dir);
  loaded.load();
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.contains("grep"));
  EXPECT_TRUE(loaded.contains("make"));
  std::filesystem::remove_all(dir);
}

TEST(ProfileStore, SanitizesProgramNamesInPaths) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "flexfetch_store_sanitize")
          .string();
  std::filesystem::remove_all(dir);
  {
    ProfileStore store(dir);
    store.put(named_profile("a/b c:d"));
    EXPECT_NO_THROW(store.flush());
  }
  ProfileStore loaded(dir);
  loaded.load();
  EXPECT_EQ(loaded.size(), 1u);
  std::filesystem::remove_all(dir);
}

TEST(ProfileStore, InMemoryFlushIsNoOp) {
  ProfileStore store;
  store.put(named_profile("x"));
  EXPECT_NO_THROW(store.flush());
  EXPECT_NO_THROW(store.load());
}

}  // namespace
}  // namespace flexfetch::core
