#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/error.hpp"
#include "trace/builder.hpp"

namespace flexfetch::trace {
namespace {

Trace sample_trace() {
  TraceBuilder b("sample");
  b.process(7, 8);
  b.open(1);
  b.read(1, Bytes{0}, Bytes{4096}, Seconds{0.001});
  b.think(Seconds{0.5});
  b.write(2, Bytes{100}, Bytes{512}, Seconds{0.002});
  b.close(1);
  return b.build();
}

TEST(TraceIo, RoundTripPreservesRecords) {
  const Trace original = sample_trace();
  std::stringstream ss;
  write_trace(ss, original);
  const Trace loaded = read_trace(ss);
  EXPECT_EQ(loaded.name(), "sample");
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].op, original[i].op) << i;
    EXPECT_EQ(loaded[i].inode, original[i].inode) << i;
    EXPECT_EQ(loaded[i].offset, original[i].offset) << i;
    EXPECT_EQ(loaded[i].size, original[i].size) << i;
    EXPECT_EQ(loaded[i].pid, original[i].pid) << i;
    EXPECT_EQ(loaded[i].pgid, original[i].pgid) << i;
    EXPECT_NEAR(loaded[i].timestamp.value(), original[i].timestamp.value(), 1e-9) << i;
    EXPECT_NEAR(loaded[i].duration.value(), original[i].duration.value(), 1e-9) << i;
  }
}

TEST(TraceIo, RejectsEmptyStream) {
  std::stringstream ss;
  EXPECT_THROW(read_trace(ss), TraceError);
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("not a trace\n");
  EXPECT_THROW(read_trace(ss), TraceError);
}

TEST(TraceIo, RejectsWrongFieldCount) {
  std::stringstream ss("# flexfetch-trace v1 name=x\n1.0,read,1,1\n");
  EXPECT_THROW(read_trace(ss), TraceError);
}

TEST(TraceIo, RejectsUnknownOp) {
  std::stringstream ss(
      "# flexfetch-trace v1 name=x\n1.0,frobnicate,1,1,3,5,0,10,0.0\n");
  EXPECT_THROW(read_trace(ss), TraceError);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# flexfetch-trace v1 name=x\n"
      "\n"
      "# a comment\n"
      "1.0,read,1,1,3,5,0,10,0.0\n");
  const Trace t = read_trace(ss);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceIo, SaveAndLoadFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "flexfetch_trace_io_test.csv")
          .string();
  const Trace original = sample_trace();
  save_trace(path, original);
  const Trace loaded = load_trace(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.name(), original.name());
  std::filesystem::remove(path);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.csv"), TraceError);
}

}  // namespace
}  // namespace flexfetch::trace
