#include "medium/multi_client.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch::medium {
namespace {

/// Field-by-field bit-identity over everything a SimResult aggregates
/// (mirrors the sweep determinism harness in test_sweep.cpp).
void expect_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.io_time, b.io_time);
  for (std::size_t c = 0;
       c < static_cast<std::size_t>(device::EnergyCategory::kCount); ++c) {
    const auto cat = static_cast<device::EnergyCategory>(c);
    EXPECT_EQ(a.disk_meter[cat], b.disk_meter[cat]) << to_string(cat);
    EXPECT_EQ(a.wnic_meter[cat], b.wnic_meter[cat]) << to_string(cat);
  }
  EXPECT_EQ(a.wnic_counters.requests, b.wnic_counters.requests);
  EXPECT_EQ(a.wnic_counters.psm_transfers, b.wnic_counters.psm_transfers);
  EXPECT_EQ(a.wnic_counters.wakes, b.wnic_counters.wakes);
  EXPECT_EQ(a.wnic_counters.sleeps, b.wnic_counters.sleeps);
  EXPECT_EQ(a.wnic_counters.bytes_sent, b.wnic_counters.bytes_sent);
  EXPECT_EQ(a.wnic_counters.bytes_received, b.wnic_counters.bytes_received);
  EXPECT_EQ(a.wnic_counters.contended_transfers,
            b.wnic_counters.contended_transfers);
  EXPECT_EQ(a.wnic_counters.server_queue_waits,
            b.wnic_counters.server_queue_waits);
  EXPECT_EQ(a.wnic_counters.server_queue_wait,
            b.wnic_counters.server_queue_wait);
  EXPECT_EQ(a.disk_counters.requests, b.disk_counters.requests);
  EXPECT_EQ(a.disk_counters.spin_ups, b.disk_counters.spin_ups);
  EXPECT_EQ(a.disk_counters.spin_downs, b.disk_counters.spin_downs);
  EXPECT_EQ(a.syscalls, b.syscalls);
  EXPECT_EQ(a.disk_requests, b.disk_requests);
  EXPECT_EQ(a.net_requests, b.net_requests);
  EXPECT_EQ(a.disk_bytes, b.disk_bytes);
  EXPECT_EQ(a.net_bytes, b.net_bytes);
  EXPECT_EQ(a.sync_batches, b.sync_batches);
  EXPECT_EQ(a.sync_bytes, b.sync_bytes);
  // Metrics: identical key sets, values and kinds (std::map iteration is
  // sorted, so zip-comparing is exact), and bit-identical histograms.
  ASSERT_EQ(a.metrics.items().size(), b.metrics.items().size());
  auto bi = b.metrics.items().begin();
  for (const auto& [name, m] : a.metrics.items()) {
    EXPECT_EQ(name, bi->first);
    EXPECT_EQ(m.value, bi->second.value) << name;
    EXPECT_EQ(m.kind, bi->second.kind) << name;
    ++bi;
  }
  EXPECT_EQ(a.metrics.histograms(), b.metrics.histograms());
}

struct Fleet {
  MultiClientConfig config;
  std::vector<ClientSpec> specs;
  /// Owns the policies the specs point at; must outlive run().
  std::vector<std::unique_ptr<sim::Policy>> policies;
};

/// N clients all running `scenario(seed + i)` under one policy.
Fleet make_fleet(std::size_t n, const std::string& policy,
                 const std::string& admission, std::uint64_t seed = 1) {
  Fleet f;
  f.config.server.capacity = 2;
  f.config.server.reserved_slots = 1;
  f.config.server.low_battery_threshold = 0.30;
  f.config.server.admission = admission;
  f.config.audit.enabled = true;
  for (std::size_t i = 0; i < n; ++i) {
    auto bundle = workloads::scenario_mplayer(seed + i);
    ClientSpec spec;
    spec.name = "client" + std::to_string(i);
    spec.programs = std::move(bundle.programs);
    f.policies.push_back(
        policies::make_policy(policy, bundle.profiles, nullptr));
    spec.policy = f.policies.back().get();
    // Client 0 is nearly drained; the rest are healthy and large enough
    // to stay above the low-battery threshold for the whole run.
    spec.battery.initial_fraction = i == 0 ? 0.10 : 0.90;
    f.specs.push_back(std::move(spec));
  }
  return f;
}

TEST(MultiClient, SingleClientDegeneracy) {
  for (auto& bundle : workloads::all_scenarios(1)) {
    SCOPED_TRACE(bundle.name);
    const auto solo_policy =
        policies::make_policy("flexfetch", bundle.profiles, nullptr);
    sim::Simulator solo(sim::SimConfig{}, bundle.programs, *solo_policy);
    const auto expected = solo.run();

    ClientSpec spec;
    spec.name = bundle.name;
    spec.programs = bundle.programs;
    const auto multi_policy =
        policies::make_policy("flexfetch", bundle.profiles, nullptr);
    spec.policy = multi_policy.get();
    MultiClientConfig config;
    config.audit.enabled = true;
    MultiClientSim sim(config, {std::move(spec)});
    auto result = sim.run();

    ASSERT_EQ(result.clients.size(), 1u);
    expect_identical(expected, result.clients[0]);
    // The medium was invisible: no contention, no queueing.
    EXPECT_EQ(result.medium.contended_transfers, 0u);
    EXPECT_EQ(result.server.queue_waits, 0u);
    EXPECT_EQ(result.clients[0].wnic_counters.contended_transfers, 0u);
    EXPECT_EQ(result.clients[0].wnic_counters.server_queue_waits, 0u);
  }
}

TEST(MultiClient, SingleClientDegeneracyWithTelemetry) {
  auto bundle = workloads::scenario_grep_make(1);
  sim::SimConfig config;
  config.telemetry.enabled = true;

  const auto solo_policy =
      policies::make_policy("flexfetch", bundle.profiles, nullptr);
  sim::Simulator solo(config, bundle.programs, *solo_policy);
  const auto expected = solo.run();

  ClientSpec spec;
  spec.config = config;
  spec.programs = bundle.programs;
  const auto multi_policy =
      policies::make_policy("flexfetch", bundle.profiles, nullptr);
  spec.policy = multi_policy.get();
  MultiClientSim sim(MultiClientConfig{}, {std::move(spec)});
  auto result = sim.run();

  ASSERT_EQ(result.clients.size(), 1u);
  expect_identical(expected, result.clients[0]);
}

TEST(MultiClient, RepeatedRunsAreBitIdentical) {
  auto run_once = [] {
    auto f = make_fleet(3, "flexfetch", "fifo");
    return MultiClientSim(f.config, std::move(f.specs)).run();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(a.clients[i], b.clients[i]);
  }
  EXPECT_EQ(a.medium.transfers, b.medium.transfers);
  EXPECT_EQ(a.medium.airtime, b.medium.airtime);
  EXPECT_EQ(a.server.queue_wait, b.server.queue_wait);
  EXPECT_EQ(a.battery_final, b.battery_final);
}

TEST(MultiClient, ContentionIsVisibleAtFourClients) {
  auto f = make_fleet(4, "wnic-only", "fifo");
  auto result = MultiClientSim(f.config, std::move(f.specs)).run();

  // Everything flows over one AP and a 2-slot server: shares drop below
  // 1.0 and at least some transfers queue for a slot.
  EXPECT_GT(result.medium.transfers, 0u);
  EXPECT_GT(result.medium.contended_transfers, 0u);
  EXPECT_LT(result.medium.mean_share(), 1.0);
  EXPECT_GT(result.server.queue_waits, 0u);
  EXPECT_GT(result.server.queue_wait, Seconds{0.0});
  EXPECT_EQ(result.server.conservation_violations, 0u);

  // Contention slows the contenders down relative to a private channel.
  auto solo_bundle = workloads::scenario_mplayer(1);
  const auto solo_policy =
      policies::make_policy("wnic-only", solo_bundle.profiles, nullptr);
  sim::Simulator solo(sim::SimConfig{}, solo_bundle.programs, *solo_policy);
  const auto alone = solo.run();
  EXPECT_GT(result.clients[0].makespan, alone.makespan);
}

TEST(MultiClient, ContentionShiftsFlexFetchTowardsDisk) {
  // Mirrors bench_contention's crowded-cafe preset: four different paper
  // scenarios on a 3 Mb/s cell (the MAC goodput of a 5.5 Mb/s PHY after
  // rate adaptation), which sits near the disk/network breakeven. Each
  // client's uncontended reference is itself, alone, with the identical
  // spec — the delta is pure contention.
  using Builder = workloads::ScenarioBundle (*)(std::uint64_t);
  const Builder builders[] = {
      workloads::scenario_grep_make, workloads::scenario_mplayer,
      workloads::scenario_thunderbird, workloads::scenario_forced_spinup};
  std::vector<workloads::ScenarioBundle> bundles;
  for (std::size_t i = 0; i < 4; ++i) bundles.push_back(builders[i](1 + i));

  const auto spec_for = [&](std::size_t i) {
    ClientSpec spec;
    spec.name = bundles[i].name;
    spec.programs = bundles[i].programs;
    spec.config.wnic = spec.config.wnic.with_bandwidth_mbps(3.0);
    spec.link_quality = 1.0 - 0.05 * static_cast<double>(i % 4);
    spec.battery.initial_fraction = i == 0 ? 0.12 : 0.40;
    return spec;
  };
  MultiClientConfig config;
  config.server.capacity = 2;
  config.server.reserved_slots = 1;
  config.server.low_battery_threshold = 0.30;
  config.audit.enabled = true;

  Bytes solo_net{0}, solo_total{0};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto policy = policies::make_policy(
        "flexfetch", bundles[i].profiles, &bundles[i].oracle_future, 0.25);
    ClientSpec spec = spec_for(i);
    spec.policy = policy.get();
    std::vector<ClientSpec> specs;
    specs.push_back(std::move(spec));
    const auto r = MultiClientSim(config, std::move(specs)).run();
    solo_net += r.clients[0].net_bytes;
    solo_total += r.clients[0].net_bytes + r.clients[0].disk_bytes;
  }

  std::vector<std::unique_ptr<sim::Policy>> policies;
  std::vector<ClientSpec> specs;
  for (std::size_t i = 0; i < 4; ++i) {
    policies.push_back(policies::make_policy(
        "flexfetch", bundles[i].profiles, &bundles[i].oracle_future, 0.25));
    ClientSpec spec = spec_for(i);
    spec.policy = policies.back().get();
    specs.push_back(std::move(spec));
  }
  const auto crowded = MultiClientSim(config, std::move(specs)).run();
  Bytes crowd_net{0}, crowd_total{0};
  for (const auto& c : crowded.clients) {
    crowd_net += c.net_bytes;
    crowd_total += c.net_bytes + c.disk_bytes;
  }

  ASSERT_GT(solo_total, Bytes{0});
  ASSERT_GT(crowd_total, Bytes{0});
  const double frac_solo = solo_net.as_double() / solo_total.as_double();
  const double frac_crowded = crowd_net.as_double() / crowd_total.as_double();
  // The shift must be material, not a stage-boundary rounding artifact:
  // the history-aware estimator prices the divided airtime and the queued
  // server into every network estimate, and whole stages flip to disk.
  EXPECT_LT(frac_crowded, frac_solo - 0.005);
}

TEST(MultiClient, BatteryAdmissionShieldsLowBatteryClient) {
  auto fifo_fleet = make_fleet(4, "wnic-only", "fifo");
  auto fifo = MultiClientSim(fifo_fleet.config, std::move(fifo_fleet.specs))
                  .run();

  auto batt_fleet = make_fleet(4, "wnic-only", "battery");
  auto batt = MultiClientSim(batt_fleet.config, std::move(batt_fleet.specs))
                  .run();

  // Client 0 (10% battery) keeps the reserved slot to itself: it queues
  // less and burns less CAM-idle energy than under FIFO.
  EXPECT_LT(batt.clients[0].wnic_counters.server_queue_wait,
            fifo.clients[0].wnic_counters.server_queue_wait);
  EXPECT_LT(batt.clients[0].total_energy(), fifo.clients[0].total_energy());
  // The healthy clients paid for it with reserved-slot deferrals, and the
  // policy never idled a slot a waiting client was allowed to use.
  EXPECT_GT(batt.server.reserved_deferrals, 0u);
  EXPECT_EQ(batt.server.conservation_violations, 0u);
  EXPECT_EQ(fifo.server.reserved_deferrals, 0u);
}

TEST(MultiClient, BatteryFractionsDischargeMonotonically) {
  auto f = make_fleet(2, "wnic-only", "fifo");
  const double start0 = f.specs[0].battery.initial_fraction;
  const double start1 = f.specs[1].battery.initial_fraction;
  auto result = MultiClientSim(f.config, std::move(f.specs)).run();
  ASSERT_EQ(result.battery_final.size(), 2u);
  EXPECT_LT(result.battery_final[0], start0);
  EXPECT_LT(result.battery_final[1], start1);
  EXPECT_GE(result.battery_final[0], 0.0);
}

TEST(MultiClient, RejectsEmptyAndNullConfigs) {
  EXPECT_THROW(MultiClientSim(MultiClientConfig{}, {}), ConfigError);
  ClientSpec no_policy;
  no_policy.programs = workloads::scenario_mplayer(1).programs;
  EXPECT_THROW(MultiClientSim(MultiClientConfig{}, {std::move(no_policy)}),
               ConfigError);
}

}  // namespace
}  // namespace flexfetch::medium
