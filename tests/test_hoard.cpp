#include "hoard/hoard_set.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/builder.hpp"
#include "workloads/generators.hpp"

namespace flexfetch::hoard {
namespace {

TEST(HoardSet, UnknownFileHasZeroPriority) {
  HoardSet h;
  EXPECT_DOUBLE_EQ(h.priority(42, Seconds{0.0}), 0.0);
  EXPECT_EQ(h.size(), 0u);
}

TEST(HoardSet, AccessRaisesPriority) {
  HoardSet h;
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{0.0});
  EXPECT_GT(h.priority(1, Seconds{0.0}), 0.0);
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{1.0});
  EXPECT_GT(h.priority(1, Seconds{1.0}), 1.0);  // Two stacked accesses.
}

TEST(HoardSet, PriorityDecaysWithHalfLife) {
  HoardConfig config;
  config.recency_half_life = Seconds{100.0};
  HoardSet h(config);
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{0.0});
  const double now_p = h.priority(1, Seconds{0.0});
  const double later_p = h.priority(1, Seconds{100.0});
  EXPECT_NEAR(later_p, now_p / 2.0, 1e-9);
}

TEST(HoardSet, FrequentFileOutranksRareFile) {
  HoardSet h;
  for (int i = 0; i < 10; ++i) {
    h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{static_cast<double>(i) * 10});
  }
  h.record_access(2, Bytes{0}, Bytes{4096}, Seconds{50.0});
  EXPECT_GT(h.priority(1, Seconds{100.0}), h.priority(2, Seconds{100.0}));
}

TEST(HoardSet, RecentFileOutranksStaleFile) {
  HoardConfig config;
  config.recency_half_life = Seconds{60.0};
  HoardSet h(config);
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{0.0});
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{1.0});
  h.record_access(2, Bytes{0}, Bytes{4096}, Seconds{1000.0});
  // File 1 was touched twice but ages ago; file 2 once, just now.
  EXPECT_GT(h.priority(2, Seconds{1000.0}), h.priority(1, Seconds{1000.0}));
}

TEST(HoardSet, ExtentTracksLargestAccess) {
  HoardSet h;
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{0.0});
  h.record_access(1, Bytes{100 * 1024}, Bytes{4096}, Seconds{1.0});
  const auto ranked = h.ranked(Seconds{1.0});
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].size, Bytes{100u * 1024u + 4096u});
}

TEST(HoardSet, CoAccessLinksNeighbours) {
  HoardConfig config;
  config.co_access_window = Seconds{1.0};
  HoardSet h(config);
  // Files 1 and 2 always accessed together; file 3 alone, far away in time.
  for (int round = 0; round < 5; ++round) {
    const double t = round * 100.0;
    h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{t});
    h.record_access(2, Bytes{0}, Bytes{4096}, Seconds{t + 0.5});
    h.record_access(3, Bytes{0}, Bytes{4096}, Seconds{t + 50.0});
  }
  EXPECT_GT(h.stats().co_access_links, 0u);
  // The clustered pair carries a bonus over the loner at equal frequency.
  EXPECT_GT(h.priority(1, Seconds{500.0}) + h.priority(2, Seconds{500.0}),
            2.0 * h.priority(3, Seconds{500.0}));
}

TEST(HoardSet, NoLinkAcrossLargeGaps) {
  HoardConfig config;
  config.co_access_window = Seconds{0.5};
  HoardSet h(config);
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{0.0});
  h.record_access(2, Bytes{0}, Bytes{4096}, Seconds{10.0});  // Way beyond the window.
  EXPECT_EQ(h.stats().co_access_links, 0u);
}

TEST(HoardSet, SelectRespectsBudget) {
  HoardSet h;
  h.record_access(1, Bytes{0}, 10 * kMiB, Seconds{0.0});
  h.record_access(2, Bytes{0}, 10 * kMiB, Seconds{1.0});
  h.record_access(3, Bytes{0}, 10 * kMiB, Seconds{2.0});
  const auto chosen = h.select(25 * kMiB, Seconds{3.0});
  EXPECT_EQ(chosen.size(), 2u);
  Bytes total = Bytes{0};
  for (const auto& c : chosen) total += c.size;
  EXPECT_LE(total, 25 * kMiB);
}

TEST(HoardSet, SelectSkipsOversizedButKeepsSmaller) {
  HoardSet h;
  // Huge file with top priority, but it does not fit; a small one does.
  for (int i = 0; i < 10; ++i) h.record_access(1, Bytes{0}, 100 * kMiB, Seconds{i});
  h.record_access(2, Bytes{0}, 1 * kMiB, Seconds{5.0});
  const auto chosen = h.select(2 * kMiB, Seconds{10.0});
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].inode, 2u);
}

TEST(HoardSet, RankedIsSortedByPriority) {
  HoardSet h;
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{0.0});
  for (int i = 0; i < 5; ++i) h.record_access(2, Bytes{0}, Bytes{4096}, Seconds{i});
  const auto ranked = h.ranked(Seconds{5.0});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].inode, 2u);
  EXPECT_GE(ranked[0].priority, ranked[1].priority);
}

TEST(HoardSet, HitConfidenceBounds) {
  HoardSet h;
  EXPECT_DOUBLE_EQ(h.hit_confidence(kGiB, Seconds{0.0}), 0.0);  // No data yet.
  h.record_access(1, Bytes{0}, Bytes{4096}, Seconds{0.0});
  EXPECT_DOUBLE_EQ(h.hit_confidence(kGiB, Seconds{0.0}), 1.0);   // Everything fits.
  EXPECT_DOUBLE_EQ(h.hit_confidence(Bytes{0}, Seconds{0.0}), 0.0);      // Nothing fits.
}

TEST(HoardSet, WorkingSetCapturedWithHighConfidence) {
  // The Kuenning-Popek claim the paper leans on: a modest hoard captures
  // the working set. The make workload re-reads hot headers constantly.
  HoardSet h;
  h.record_trace(workloads::make_trace());
  const auto stats = h.stats();
  EXPECT_GT(stats.accesses, 1000u);
  // A hoard the size of the full footprint captures everything...
  EXPECT_GT(h.hit_confidence(1 * kGiB, Seconds{1e6}), 0.999);
  // ...and even a half-footprint hoard captures well over half the
  // accesses, because access frequency is skewed.
  EXPECT_GT(h.hit_confidence(30 * kMiB, Seconds{1e6}), 0.6);
}

TEST(HoardSet, RecordTraceIgnoresNonTransfers) {
  trace::TraceBuilder b;
  b.open(1);
  b.close(1);
  HoardSet h;
  h.record_trace(b.build());
  EXPECT_EQ(h.stats().accesses, 0u);
}

TEST(HoardSet, ConfigValidation) {
  HoardConfig c;
  c.recency_half_life = Seconds{0.0};
  EXPECT_THROW(HoardSet{c}, ConfigError);
  c = HoardConfig{};
  c.cluster_bonus = -1.0;
  EXPECT_THROW(HoardSet{c}, ConfigError);
}

}  // namespace
}  // namespace flexfetch::hoard
