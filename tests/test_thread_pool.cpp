#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace flexfetch {
namespace {

TEST(ThreadPool, DefaultConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
  ThreadPool pool;
  EXPECT_EQ(pool.size(), ThreadPool::default_concurrency());
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SingleWorkerExecutesInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> pending;
  for (int i = 0; i < 64; ++i) {
    pending.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : pending) f.get();
  std::vector<int> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexFailure) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for(pool, 32, [&](std::size_t i) {
      if (i == 3) throw std::invalid_argument("index 3");
      if (i == 20) throw std::runtime_error("index 20");
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "index 3");
  }
  // No task was cancelled: everything except the two throwers ran.
  EXPECT_EQ(completed.load(), 30);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1);
      });
    }
  }  // join
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace flexfetch
