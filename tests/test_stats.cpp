#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace flexfetch {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(1.99);
  h.add(5.0);
  h.add(10.0);  // hi is exclusive -> overflow.
  h.add(25.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
}

TEST(Histogram, QuantileOnUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantileEmptyReturnsLo) {
  Histogram h(2.0, 4.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(Histogram, ToStringContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(Percentile, Basics) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), ConfigError);
  EXPECT_THROW(percentile({1.0}, -1.0), ConfigError);
  EXPECT_THROW(percentile({1.0}, 101.0), ConfigError);
}

}  // namespace
}  // namespace flexfetch
