// Must NOT compile: power squared has no meaning here.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  auto bad = Watts{2.0} * Watts{2.0};
  (void)bad;
  return 0;
}
