// Must NOT compile: adding energy to power.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  auto bad = Joules{1.0} + Watts{2.0};
  (void)bad;
  return 0;
}
