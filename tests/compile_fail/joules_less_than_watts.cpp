// Must NOT compile: cross-dimension comparison.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  bool bad = Joules{1.0} < Watts{1.0};
  (void)bad;
  return 0;
}
