// Must NOT compile: bandwidth squared has no meaning here.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  auto bad = units::mbps(11.0) * units::mbps(2.0);
  (void)bad;
  return 0;
}
