// Must NOT compile: time per energy is not part of the algebra.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  auto bad = Seconds{1.0} / Joules{1.0};
  (void)bad;
  return 0;
}
