// Must NOT compile: power is not energy.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  Joules bad = Watts{2.0};
  (void)bad;
  return 0;
}
