// Must NOT compile: units never decay implicitly.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  double bad = Joules{1.0};
  (void)bad;
  return 0;
}
