// Must NOT compile: byte-seconds have no meaning here.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  auto bad = Bytes{1024} * Seconds{1.0};
  (void)bad;
  return 0;
}
