// Must NOT compile: raw double must be wrapped explicitly.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  Seconds bad = 1.5;
  (void)bad;
  return 0;
}
