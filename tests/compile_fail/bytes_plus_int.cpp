// Must NOT compile: adding a bare integer to a byte count.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  auto bad = Bytes{4096} + 1;
  (void)bad;
  return 0;
}
