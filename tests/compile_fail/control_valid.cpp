// Positive control for the does-not-compile harness: exercises every
// operation the unit system is supposed to admit. If this file stops
// compiling, the harness's include path or flags are broken and the
// WILL_FAIL cases below prove nothing.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  constexpr Seconds t = Seconds{2.0} + units::ms(500.0) - Seconds{0.1};
  constexpr Watts p{1.5};
  constexpr Joules e = p * t + t * p;
  constexpr Watts back = e / t;
  constexpr Seconds horizon = e / back;
  constexpr double ratio = e / (p * t);
  constexpr Bytes total = 3 * kMiB + units::kib(64) - Bytes{1};
  constexpr std::uint64_t pages = total / kPageSize;
  constexpr Bytes rem = total % kPageSize;
  constexpr Seconds xfer = total / units::mbps(11.0);
  constexpr double frac_bytes = units::mbps(11.0) * t;
  constexpr bool cmp = t <= horizon && e >= Joules{} && total > rem;
  constexpr Seconds scaled = 2.0 * t / 4.0;
  static_assert(pages > 0 && cmp);
  static_assert(scaled.value() > 0.0 && ratio == 2.0);
  static_assert(frac_bytes > 0.0 && xfer.value() > 0.0);
  static_assert(transfer_time(kMiB, units::mb_per_s(35.0)).value() > 0.0);
  static_assert(pages_for(Bytes{4097}) == 2);
  return 0;
}
