// Must NOT compile: adding a bare scalar to a time.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  auto bad = Seconds{1.0} + 1.0;
  (void)bad;
  return 0;
}
