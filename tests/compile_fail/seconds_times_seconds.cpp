// Must NOT compile: seconds * seconds is not a time.
#include "common/units.hpp"

using namespace flexfetch;

int main() {
  Seconds bad = Seconds{2.0} * Seconds{3.0};
  (void)bad;
  return 0;
}
