#include "common/format.hpp"

#include <gtest/gtest.h>

namespace flexfetch {
namespace {

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(Bytes{0}), "0 B");
  EXPECT_EQ(format_bytes(Bytes{512}), "512 B");
  EXPECT_EQ(format_bytes(Bytes{1024}), "1.0 KiB");
  EXPECT_EQ(format_bytes(Bytes{1536}), "1.5 KiB");
  EXPECT_EQ(format_bytes(kMiB), "1.0 MiB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.00 GiB");
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(Seconds{0.0000005}), "0.5 us");
  EXPECT_EQ(format_seconds(Seconds{0.013}), "13.0 ms");
  EXPECT_EQ(format_seconds(Seconds{1.5}), "1.50 s");
  EXPECT_EQ(format_seconds(Seconds{90.0}), "90.00 s");
  EXPECT_EQ(format_seconds(Seconds{180.0}), "3.0 min");
}

TEST(Format, NegativeSeconds) {
  EXPECT_EQ(format_seconds(Seconds{-1.5}), "-1.50 s");
}

TEST(Format, Joules) {
  EXPECT_EQ(format_joules(Joules{1522.44}), "1522.4 J");
  EXPECT_EQ(format_joules(Joules{0.0}), "0.0 J");
}

TEST(Strprintf, FormatsLikePrintf) {
  EXPECT_EQ(strprintf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Strprintf, LongStringsAreNotTruncated) {
  const std::string big(10000, 'a');
  EXPECT_EQ(strprintf("%s", big.c_str()).size(), big.size());
}

}  // namespace
}  // namespace flexfetch
