#include "core/burst.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/builder.hpp"

namespace flexfetch::core {
namespace {

constexpr Seconds kThreshold = Seconds{0.020};  // Disk access time, per the paper.

TEST(BurstTracker, SingleBurstForBackToBackCalls) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.think(Seconds{0.001});
  b.read(1, Bytes{4096}, Bytes{4096});
  b.think(Seconds{0.005});
  b.read(2, Bytes{0}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].total_bytes(), Bytes{3u * 4096u});
}

TEST(BurstTracker, GapAboveThresholdSplitsBursts) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.think(Seconds{0.5});
  b.read(1, Bytes{4096}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_NEAR(bursts[1].think_before.value(), 0.5, 1e-9);
}

TEST(BurstTracker, GapExactlyAtThresholdStaysInBurst) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.think(kThreshold);  // Not strictly greater.
  b.read(1, Bytes{4096}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  EXPECT_EQ(bursts.size(), 1u);
}

TEST(BurstTracker, SequentialSameFileCallsMerge) {
  trace::TraceBuilder b;
  b.read_file(1, Bytes{64 * 1024}, Bytes{16 * 1024});  // 4 sequential calls.
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 1u);
  ASSERT_EQ(bursts[0].requests.size(), 1u);  // Merged into one.
  EXPECT_EQ(bursts[0].requests[0].size, Bytes{64u * 1024u});
}

TEST(BurstTracker, MergeCapsAt128KiB) {
  trace::TraceBuilder b;
  b.read_file(1, Bytes{300 * 1024}, Bytes{32 * 1024});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 1u);
  // 300 KiB at a 128 KiB cap: requests of 128, 128, 44 KiB.
  ASSERT_EQ(bursts[0].requests.size(), 3u);
  EXPECT_EQ(bursts[0].requests[0].size, Bytes{128u * 1024u});
  EXPECT_EQ(bursts[0].requests[1].size, Bytes{128u * 1024u});
  EXPECT_EQ(bursts[0].requests[2].size, Bytes{300u * 1024u - 256u * 1024u});
}

TEST(BurstTracker, NonSequentialSameFileDoesNotMerge) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.read(1, Bytes{100 * 4096}, Bytes{4096});  // Jump.
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].requests.size(), 2u);
}

TEST(BurstTracker, DifferentFilesDoNotMerge) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.read(2, Bytes{4096}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  EXPECT_EQ(bursts[0].requests.size(), 2u);
}

TEST(BurstTracker, ReadThenWriteDoesNotMerge) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.write(1, Bytes{4096}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts[0].requests.size(), 2u);
  EXPECT_FALSE(bursts[0].requests[0].is_write);
  EXPECT_TRUE(bursts[0].requests[1].is_write);
}

TEST(BurstTracker, InterleavedSequentialStreamsStayUnmergedAcrossFiles) {
  // Interleaving breaks the "last request" adjacency: the simple merger is
  // per-burst-tail, which matches the paper's single-stream readahead model.
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.read(2, Bytes{0}, Bytes{4096});
  b.read(1, Bytes{4096}, Bytes{4096});
  b.read(2, Bytes{4096}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  EXPECT_EQ(bursts[0].requests.size(), 4u);
}

TEST(BurstTracker, NonTransfersAreIgnored) {
  trace::TraceBuilder b;
  b.open(1);
  b.read(1, Bytes{0}, Bytes{4096});
  b.close(1);
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].requests.size(), 1u);
}

TEST(BurstTracker, OpenCloseGapsDoNotResetThinkAccounting) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096});
  b.think(Seconds{0.5});
  b.open(2);  // Marker inside the gap.
  b.read(2, Bytes{0}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_NEAR(bursts[1].think_before.value(), 0.5, 1e-9);
}

TEST(BurstTracker, FirstBurstThinkBeforeIsStartOffset) {
  trace::TraceBuilder b;
  b.at(Seconds{3.0});
  b.read(1, Bytes{0}, Bytes{4096});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_NEAR(bursts[0].think_before.value(), 3.0, 1e-9);
  EXPECT_NEAR(bursts[0].start.value(), 3.0, 1e-9);
}

TEST(BurstTracker, DurationSpansFirstToLastByte) {
  trace::TraceBuilder b;
  b.read(1, Bytes{0}, Bytes{4096}, Seconds{0.002});
  b.think(Seconds{0.010});
  b.read(1, Bytes{4096}, Bytes{4096}, Seconds{0.003});
  const auto bursts = extract_bursts(b.build(), kThreshold);
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_NEAR(bursts[0].duration.value(), 0.002 + 0.010 + 0.003, 1e-9);
  EXPECT_NEAR(bursts[0].end().value(), (bursts[0].start + bursts[0].duration).value(), 1e-12);
}

TEST(BurstTracker, IncrementalTotalBytes) {
  BurstTracker t(kThreshold);
  trace::SyscallRecord r;
  r.op = trace::OpType::kRead;
  r.inode = 1;
  r.size = Bytes{1000};
  r.timestamp = Seconds{0.0};
  t.on_record(r);
  EXPECT_EQ(t.total_bytes(), Bytes{1000});
  r.timestamp = Seconds{5.0};
  r.offset = Bytes{1000};
  t.on_record(r);
  EXPECT_EQ(t.total_bytes(), Bytes{2000});
  EXPECT_EQ(t.bursts().size(), 1u);  // Second burst still open.
  t.finish();
  EXPECT_EQ(t.bursts().size(), 2u);
}

TEST(BurstTracker, FinishIsIdempotent) {
  BurstTracker t(kThreshold);
  trace::SyscallRecord r;
  r.op = trace::OpType::kRead;
  r.inode = 1;
  r.size = Bytes{100};
  t.on_record(r);
  t.finish();
  t.finish();
  EXPECT_EQ(t.bursts().size(), 1u);
}

TEST(BurstTracker, TakeBurstsDrains) {
  BurstTracker t(kThreshold);
  trace::SyscallRecord r;
  r.op = trace::OpType::kRead;
  r.inode = 1;
  r.size = Bytes{100};
  t.on_record(r);
  const auto bursts = t.take_bursts();
  EXPECT_EQ(bursts.size(), 1u);
  EXPECT_TRUE(t.bursts().empty());
}

TEST(BurstTracker, RejectsBadConfig) {
  EXPECT_THROW(BurstTracker(Seconds{0.0}), ConfigError);
  EXPECT_THROW(BurstTracker(Seconds{0.02}, Bytes{100}), ConfigError);  // Below one page.
}

TEST(IOBurst, TotalBytesSumsRequests) {
  IOBurst b;
  b.requests.push_back(BurstRequest{.inode = 1, .offset = Bytes{0}, .size = Bytes{100}});
  b.requests.push_back(BurstRequest{.inode = 2, .offset = Bytes{0}, .size = Bytes{50}});
  EXPECT_EQ(b.total_bytes(), Bytes{150});
}

}  // namespace
}  // namespace flexfetch::core
