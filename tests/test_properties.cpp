// Property-based suites: invariants that must hold for every
// (scenario x policy x network condition) combination, expressed as
// parameterized gtest sweeps.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

workloads::ScenarioBundle scenario_by_name(const std::string& name) {
  if (name == "grep+make") return workloads::scenario_grep_make(1);
  if (name == "mplayer") return workloads::scenario_mplayer(1);
  if (name == "thunderbird") return workloads::scenario_thunderbird(1);
  if (name == "forced-spinup") return workloads::scenario_forced_spinup(1);
  return workloads::scenario_stale_acroread(1);
}

sim::SimResult run(const workloads::ScenarioBundle& scenario,
                   const std::string& policy_name,
                   const sim::SimConfig& config = {}) {
  auto policy = policies::make_policy(policy_name, scenario.profiles,
                                      &scenario.oracle_future);
  sim::Simulator simulator(config, scenario.programs, *policy);
  return simulator.run();
}

// ---------------------------------------------------------------------------
// Invariants over scenario x policy.

using Combo = std::tuple<std::string, std::string>;

class PolicyInvariants : public ::testing::TestWithParam<Combo> {};

TEST_P(PolicyInvariants, EnergyAccountingIsConsistent) {
  const auto& [scenario_name, policy_name] = GetParam();
  const auto scenario = scenario_by_name(scenario_name);
  const auto r = run(scenario, policy_name);

  // Conservation: total is exactly the sum of the two device meters, and
  // each meter is the sum of its categories.
  EXPECT_NEAR(r.total_energy().value(), (r.disk_energy() + r.wnic_energy()).value(), 1e-6);
  Joules disk_sum = Joules{0.0};
  Joules wnic_sum = Joules{0.0};
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(device::EnergyCategory::kCount); ++i) {
    const auto c = static_cast<device::EnergyCategory>(i);
    EXPECT_GE(r.disk_meter[c], Joules{0.0});
    EXPECT_GE(r.wnic_meter[c], Joules{0.0});
    disk_sum += r.disk_meter[c];
    wnic_sum += r.wnic_meter[c];
  }
  EXPECT_NEAR(disk_sum.value(), r.disk_energy().value(), 1e-6);
  EXPECT_NEAR(wnic_sum.value(), r.wnic_energy().value(), 1e-6);
}

TEST_P(PolicyInvariants, PhysicalLowerBoundsHold) {
  const auto& [scenario_name, policy_name] = GetParam();
  const auto scenario = scenario_by_name(scenario_name);
  const auto r = run(scenario, policy_name);

  EXPECT_GT(r.makespan, Seconds{0.0});
  EXPECT_GT(r.syscalls, 0u);
  // Both devices burn at least their lowest-power floor over the run.
  const auto& dp = device::DiskParams::hitachi_dk23da();
  const auto& wp = device::WnicParams::cisco_aironet350();
  EXPECT_GE(r.disk_energy(), dp.standby_power * r.makespan * 0.99);
  EXPECT_GE(r.wnic_energy(), wp.psm_idle_power * r.makespan * 0.99);
  // And no more than the highest-power ceiling.
  EXPECT_LE(r.disk_energy(),
            dp.active_power * r.makespan + Joules{100.0});  // + transition lumps.
  EXPECT_LE(r.wnic_energy(), wp.cam_send_power * r.makespan + Joules{100.0});
}

TEST_P(PolicyInvariants, SimulationIsDeterministic) {
  const auto& [scenario_name, policy_name] = GetParam();
  const auto scenario = scenario_by_name(scenario_name);
  const auto a = run(scenario, policy_name);
  const auto b = run(scenario, policy_name);
  EXPECT_DOUBLE_EQ(a.total_energy().value(), b.total_energy().value());
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.disk_requests, b.disk_requests);
  EXPECT_EQ(a.net_requests, b.net_requests);
  EXPECT_EQ(a.syscalls, b.syscalls);
}

TEST_P(PolicyInvariants, RequestAccountingIsCoherent) {
  const auto& [scenario_name, policy_name] = GetParam();
  const auto scenario = scenario_by_name(scenario_name);
  const auto r = run(scenario, policy_name);
  EXPECT_EQ(r.disk_requests, r.disk_counters.requests);
  EXPECT_EQ(r.net_requests, r.wnic_counters.requests);
  EXPECT_EQ(r.disk_bytes,
            r.disk_counters.bytes_read + r.disk_counters.bytes_written);
  EXPECT_EQ(r.net_bytes,
            r.wnic_counters.bytes_received + r.wnic_counters.bytes_sent);
  // Cache lookups happen for every demanded page.
  EXPECT_GT(r.cache_stats.lookups, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenariosAllPolicies, PolicyInvariants,
    ::testing::Combine(
        ::testing::Values("grep+make", "mplayer", "thunderbird",
                          "forced-spinup", "stale-acroread"),
        ::testing::Values("flexfetch", "flexfetch-static", "bluefs",
                          "disk-only", "wnic-only", "oracle")),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      std::string s =
          std::get<0>(param_info.param) + "_" + std::get<1>(param_info.param);
      for (auto& c : s) {
        if (c == '+' || c == '-' || c == '/') c = '_';
      }
      return s;
    });

// ---------------------------------------------------------------------------
// Monotonicity sweeps over network conditions.

class LatencySweep : public ::testing::TestWithParam<double> {};

TEST_P(LatencySweep, WnicOnlyNeverGetsCheaperWithMoreLatency) {
  const auto scenario = workloads::scenario_thunderbird(1);
  sim::SimConfig base;
  base.wnic = base.wnic.with_latency(units::ms(GetParam()));
  sim::SimConfig slower;
  slower.wnic = slower.wnic.with_latency(units::ms(GetParam() + 10.0));
  const Joules e1 = run(scenario, "wnic-only", base).total_energy();
  const Joules e2 = run(scenario, "wnic-only", slower).total_energy();
  EXPECT_LE(e1, e2 * 1.001);
}

TEST_P(LatencySweep, DiskOnlyIsLatencyInsensitive) {
  const auto scenario = workloads::scenario_mplayer(1);
  sim::SimConfig config;
  config.wnic = config.wnic.with_latency(units::ms(GetParam()));
  const Joules e = run(scenario, "disk-only", config).total_energy();
  sim::SimConfig fast;
  const Joules e0 = run(scenario, "disk-only", fast).total_energy();
  EXPECT_NEAR(e.value(), e0.value(), (0.01 * e0).value());
}

TEST_P(LatencySweep, FlexFetchStaysWithinLossBoundOfBestFixed) {
  const auto scenario = workloads::scenario_grep_make(1);
  sim::SimConfig config;
  config.wnic = config.wnic.with_latency(units::ms(GetParam()));
  const Joules ff = run(scenario, "flexfetch", config).total_energy();
  const Joules disk = run(scenario, "disk-only", config).total_energy();
  const Joules wnic = run(scenario, "wnic-only", config).total_energy();
  EXPECT_LT(ff, 1.20 * std::min(disk, wnic));
}

INSTANTIATE_TEST_SUITE_P(Latencies, LatencySweep,
                         ::testing::Values(0.0, 5.0, 15.0, 30.0));

class BandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthSweep, WnicOnlyNeverGetsCheaperWithLessBandwidth) {
  const auto scenario = workloads::scenario_mplayer(1);
  sim::SimConfig base;
  base.wnic = base.wnic.with_bandwidth_mbps(GetParam());
  sim::SimConfig faster;
  faster.wnic = faster.wnic.with_bandwidth_mbps(GetParam() * 2.0);
  const Joules slow_e = run(scenario, "wnic-only", base).total_energy();
  const Joules fast_e = run(scenario, "wnic-only", faster).total_energy();
  EXPECT_GE(slow_e, fast_e * 0.999);
}

TEST_P(BandwidthSweep, FlexFetchNeverLosesBadlyToBothFixedPolicies) {
  const auto scenario = workloads::scenario_mplayer(1);
  sim::SimConfig config;
  config.wnic = config.wnic.with_bandwidth_mbps(GetParam());
  const Joules ff = run(scenario, "flexfetch", config).total_energy();
  const Joules disk = run(scenario, "disk-only", config).total_energy();
  const Joules wnic = run(scenario, "wnic-only", config).total_energy();
  EXPECT_LT(ff, 1.20 * std::min(disk, wnic));
}

INSTANTIATE_TEST_SUITE_P(Bandwidths80211b, BandwidthSweep,
                         ::testing::Values(1.0, 2.0, 5.5, 11.0));

// ---------------------------------------------------------------------------
// Loss-rate sweep: the knob must be honoured.

class LossRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossRateSweep, MakespanLossStaysNearTheConfiguredBound) {
  const auto scenario = workloads::scenario_grep_make(1);
  const double loss_rate = GetParam();
  auto ff = policies::make_policy("flexfetch", scenario.profiles, nullptr,
                                  loss_rate);
  sim::Simulator sf(sim::SimConfig{}, scenario.programs, *ff);
  const auto ff_result = sf.run();
  const auto disk_result = run(scenario, "disk-only");
  // The paper's rule bounds the I/O-time extension per stage; end-to-end
  // makespan (which includes identical think times) must stay within a
  // comfortable envelope of the bound.
  EXPECT_LT(ff_result.makespan,
            disk_result.makespan * (1.0 + loss_rate + 0.25));
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossRateSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5));

}  // namespace
}  // namespace flexfetch
