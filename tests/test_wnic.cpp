#include "device/wnic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::device {
namespace {

constexpr double kEps = 1e-9;

DeviceRequest read_req(Bytes size) {
  return DeviceRequest{.lba = Bytes{0}, .size = size, .is_write = false};
}

DeviceRequest write_req(Bytes size) {
  return DeviceRequest{.lba = Bytes{0}, .size = size, .is_write = true};
}

TEST(Wnic, StartsInCam) {
  Wnic w;
  EXPECT_EQ(w.state(), WnicState::kCam);
  EXPECT_DOUBLE_EQ(w.now().value(), 0.0);
}

TEST(Wnic, CamIdleEnergy) {
  Wnic w;
  w.advance_to(Seconds{0.5});
  EXPECT_NEAR(w.meter()[EnergyCategory::kCamIdle].value(), 0.705, kEps);  // 0.5*1.41.
}

TEST(Wnic, DropsToPsmAfterTimeout) {
  Wnic w;
  w.advance_to(Seconds{1.0});  // Timeout 0.8 s, switch takes 0.41 s.
  EXPECT_EQ(w.state(), WnicState::kSwitchingToPsm);
  w.advance_to(Seconds{1.21});
  EXPECT_EQ(w.state(), WnicState::kPsm);
  EXPECT_NEAR(w.meter()[EnergyCategory::kCamIdle].value(), 0.8 * 1.41, kEps);
  EXPECT_NEAR(w.meter()[EnergyCategory::kModeSwitch].value(), 0.53, kEps);
  EXPECT_EQ(w.counters().sleeps, 1u);
}

TEST(Wnic, PsmIdleEnergy) {
  Wnic w;
  w.advance_to(Seconds{11.21});  // 10 s of PSM after the 1.21 s rundown.
  EXPECT_NEAR(w.meter()[EnergyCategory::kPsmIdle].value(), 3.9, kEps);  // 10 * 0.39.
}

TEST(Wnic, CamReadService) {
  Wnic w;
  const Bytes size = Bytes{1'375'000};  // Exactly 1 s at 11 Mbps; 84 16-KiB RPCs.
  const auto res = w.service(Seconds{0.0}, read_req(size));
  EXPECT_NEAR(res.start.value(), 0.0, kEps);
  EXPECT_NEAR(res.completion.value(), 84 * 0.001 + 1.0, kEps);  // RTTs + transfer.
  // The whole exchange (RPC waits + transfer) runs at CAM recv power.
  EXPECT_NEAR(res.energy.value(), (84 * 0.001 + 1.0) * 2.61, kEps);
  EXPECT_EQ(w.counters().bytes_received, size);
}

TEST(Wnic, WriteUsesSendPower) {
  Wnic w;
  const Bytes size = Bytes{1'375'000};
  const auto res = w.service(Seconds{0.0}, write_req(size));
  EXPECT_NEAR(res.energy.value(), (84 * 0.001 + 1.0) * 3.69, kEps);
  EXPECT_EQ(w.counters().bytes_sent, size);
  EXPECT_NEAR(w.meter()[EnergyCategory::kSend].value(), (84 * 0.001 + 1.0) * 3.69,
              kEps);
}

TEST(Wnic, LargeRequestPaysLatencyPerRpc) {
  Wnic one_rpc;   // 32 KiB fits in a single RPC.
  Wnic two_rpcs;  // 33 KiB needs two.
  const auto r1 = one_rpc.service(Seconds{0.0}, read_req(Bytes{32 * 1024}));
  const auto r2 = two_rpcs.service(Seconds{0.0}, read_req(Bytes{33 * 1024}));
  const Seconds xfer_delta = Seconds{(33.0 - 32.0) * 1024 / (11e6 / 8.0)};
  EXPECT_NEAR(((r2.completion - r2.start) - (r1.completion - r1.start)).value(),
              0.001 + xfer_delta.value(), kEps);
}

TEST(Wnic, LargeRequestFromPsmWakesToCam) {
  Wnic w;
  w.advance_to(Seconds{5.0});  // In PSM.
  ASSERT_EQ(w.state(), WnicState::kPsm);
  const auto res = w.service(Seconds{5.0}, read_req(Bytes{100'000}));
  EXPECT_NEAR(res.start.value(), 5.4, kEps);  // 0.40 s wake first.
  EXPECT_EQ(w.counters().wakes, 1u);
  EXPECT_NEAR(w.meter()[EnergyCategory::kModeSwitch].value(), 0.53 + 0.51, kEps);
  EXPECT_EQ(w.state(), WnicState::kCam);
}

TEST(Wnic, SinglePacketServedWithinPsm) {
  Wnic w;
  w.advance_to(Seconds{5.0});
  ASSERT_EQ(w.state(), WnicState::kPsm);
  const auto res = w.service(Seconds{5.0}, read_req(Bytes{1000}));  // <= 1500 B threshold.
  EXPECT_EQ(w.state(), WnicState::kPsm);  // Never left PSM.
  EXPECT_EQ(w.counters().psm_transfers, 1u);
  EXPECT_EQ(w.counters().wakes, 0u);
  // Latency + beacon wait at PSM idle power, transfer at PSM recv power.
  const Seconds xfer = Seconds{1000 / (11e6 / 8.0)};
  EXPECT_NEAR((res.completion - res.arrival).value(), 0.001 + 0.05 + xfer.value(), kEps);
  EXPECT_NEAR(res.energy.value(), (0.001 + 0.05) * 0.39 + xfer.value() * 1.42, kEps);
}

TEST(Wnic, SinglePacketInCamServedInCam) {
  Wnic w;
  const auto res = w.service(Seconds{0.0}, read_req(Bytes{1000}));
  EXPECT_EQ(w.counters().psm_transfers, 0u);
  EXPECT_NEAR(res.start.value(), 0.0, kEps);  // No beacon wait in CAM.
}

TEST(Wnic, ServiceDuringSwitchToPsmWaitsOut) {
  Wnic w;
  w.advance_to(Seconds{0.9});  // Mid CAM->PSM switch (0.8 .. 1.21).
  ASSERT_EQ(w.state(), WnicState::kSwitchingToPsm);
  const auto res = w.service(Seconds{0.9}, read_req(Bytes{100'000}));
  // Waits until 1.21, then wakes (0.40 s) -> starts at 1.61.
  EXPECT_NEAR(res.start.value(), 1.61, kEps);
  EXPECT_EQ(w.counters().wakes, 1u);
}

TEST(Wnic, IdleTimerResetsAfterService) {
  Wnic w;
  w.service(Seconds{0.0}, read_req(Bytes{10'000}));
  const Seconds end = w.now();
  w.advance_to(end + Seconds{0.5});
  EXPECT_EQ(w.state(), WnicState::kCam);
  w.advance_to(end + Seconds{0.8} + Seconds{0.41} + Seconds{0.01});
  EXPECT_EQ(w.state(), WnicState::kPsm);
}

TEST(Wnic, EstimateDoesNotMutate) {
  Wnic w;
  const Joules before = w.meter().total();
  const auto est = w.estimate(Seconds{0.0}, read_req(Bytes{1'000'000}));
  EXPECT_GT(est.energy, Joules{0.0});
  EXPECT_DOUBLE_EQ(w.meter().total().value(), before.value());
  EXPECT_EQ(w.counters().requests, 0u);
}

TEST(Wnic, TimeToReadyPerState) {
  Wnic w;
  EXPECT_DOUBLE_EQ(w.time_to_ready((Seconds{0.1})).value(), 0.0);  // CAM before timeout.
  // At t=1.0 the card would be mid switch-to-PSM: 0.21 s remain + 0.40 wake.
  EXPECT_NEAR(w.time_to_ready((Seconds{1.0})).value(), 0.21 + 0.40, kEps);
  EXPECT_NEAR(w.time_to_ready((Seconds{10.0})).value(), 0.40, kEps);  // Deep PSM.
}

TEST(Wnic, BandwidthAffectsTransferTime) {
  Wnic slow(WnicParams::cisco_aironet350().with_bandwidth_mbps(1.0));
  Wnic fast(WnicParams::cisco_aironet350().with_bandwidth_mbps(11.0));
  const auto rs = slow.service(Seconds{0.0}, read_req(Bytes{125'000}));   // 8 16-KiB RPCs.
  const auto rf = fast.service(Seconds{0.0}, read_req(Bytes{125'000}));
  EXPECT_NEAR((rs.completion - rs.start).value(), 8 * 0.001 + 1.0, kEps);
  EXPECT_NEAR((rf.completion - rf.start).value(), 8 * 0.001 + 1.0 / 11.0, kEps);
}

TEST(Wnic, LatencyIsChargedPerRequest) {
  Wnic w(WnicParams::cisco_aironet350().with_latency(Seconds{0.030}));
  const auto res = w.service(Seconds{0.0}, read_req(Bytes{11'000}));
  EXPECT_NEAR((res.completion - res.start).value(), 0.030 + 11'000 / (11e6 / 8.0), kEps);
}

TEST(Wnic, ZeroSizeRequestRejected) {
  Wnic w;
  EXPECT_THROW(w.service(Seconds{0.0}, read_req(Bytes{0})), ConfigError);
}

TEST(Wnic, EnergyConservation) {
  Wnic w;
  w.service(Seconds{0.0}, read_req(Bytes{500'000}));
  w.service(Seconds{3.0}, write_req(Bytes{20'000}));
  w.advance_to(Seconds{10.0});
  const auto& m = w.meter();
  const Joules sum = m[EnergyCategory::kCamIdle] + m[EnergyCategory::kPsmIdle] +
                     m[EnergyCategory::kSend] + m[EnergyCategory::kRecv] +
                     m[EnergyCategory::kModeSwitch];
  EXPECT_NEAR(sum.value(), m.total().value(), kEps);
}

TEST(Wnic, ResetAccountingKeepsState) {
  Wnic w;
  w.advance_to(Seconds{5.0});
  ASSERT_EQ(w.state(), WnicState::kPsm);
  w.reset_accounting();
  EXPECT_DOUBLE_EQ(w.meter().total().value(), 0.0);
  EXPECT_EQ(w.state(), WnicState::kPsm);
}

TEST(Wnic, StateNames) {
  EXPECT_STREQ(to_string(WnicState::kCam), "cam");
  EXPECT_STREQ(to_string(WnicState::kPsm), "psm");
  EXPECT_STREQ(to_string(WnicState::kSwitchingToPsm), "cam->psm");
  EXPECT_STREQ(to_string(WnicState::kSwitchingToCam), "psm->cam");
}

}  // namespace
}  // namespace flexfetch::device
