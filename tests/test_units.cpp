#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace flexfetch {
namespace {

// ---------------------------------------------------------------------------
// Zero-overhead guarantees: the wrappers are storage-identical to their
// underlying representation and usable in constant expressions.
// ---------------------------------------------------------------------------

static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Joules) == sizeof(double));
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(BytesPerSecond) == sizeof(double));
static_assert(sizeof(Bytes) == sizeof(std::uint64_t));
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<Bytes>);

static_assert((Watts{2.0} * Seconds{3.0}).value() == 6.0);
static_assert((Joules{6.0} / Watts{2.0}).value() == 3.0);
static_assert(Seconds{}.value() == 0.0);
static_assert(Bytes{}.value() == 0);
static_assert(pages_for(Bytes{1}) == 1);
static_assert(transfer_time(Bytes{100}, BytesPerSecond{50.0}).value() == 2.0);

// ---------------------------------------------------------------------------
// Constants and conversion helpers.
// ---------------------------------------------------------------------------

TEST(Units, ByteConstants) {
  EXPECT_EQ(kKiB, Bytes{1024});
  EXPECT_EQ(kMiB, Bytes{1024u * 1024u});
  EXPECT_EQ(kGiB, Bytes{1024u * 1024u * 1024u});
  EXPECT_EQ(kPageSize, Bytes{4096});
  EXPECT_EQ(kMaxPrefetchWindow, Bytes{128u * 1024u});
}

TEST(Units, MbpsIsDecimalMegabitsPerSecond) {
  EXPECT_DOUBLE_EQ(units::mbps(11.0).value(), 11e6 / 8.0);
  EXPECT_DOUBLE_EQ(units::mbps(1.0).value(), 125000.0);
}

TEST(Units, MbPerSIsDecimalMegabytes) {
  EXPECT_DOUBLE_EQ(units::mb_per_s(35.0).value(), 35e6);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(units::ms(13.0).value(), 0.013);
  EXPECT_DOUBLE_EQ(units::us(500.0).value(), 0.0005);
  EXPECT_DOUBLE_EQ(units::minutes(2.0).value(), 120.0);
}

TEST(Units, SizeHelpers) {
  EXPECT_EQ(units::kib(16), Bytes{16u * 1024u});
  EXPECT_EQ(units::mib(3), Bytes{3u * 1024u * 1024u});
}

// ---------------------------------------------------------------------------
// Same-dimension arithmetic identities.
// ---------------------------------------------------------------------------

TEST(Units, AdditiveIdentities) {
  const Seconds a{1.5}, b{2.25};
  EXPECT_EQ((a + b) - b, a);  // exact: 1.5 and 2.25 are binary fractions
  EXPECT_EQ(a + Seconds{}, a);
  EXPECT_EQ(a - a, Seconds{});
  EXPECT_EQ(-(-a), a);

  Seconds acc{};
  acc += a;
  acc += b;
  acc -= b;
  EXPECT_EQ(acc, a);
}

TEST(Units, ScalarScalingIdentities) {
  const Joules e{7.0};
  EXPECT_EQ(e * 1.0, e);
  EXPECT_EQ(1.0 * e, e);
  EXPECT_EQ((e * 4.0) / 4.0, e);
  EXPECT_DOUBLE_EQ((e * 2.0).value(), 14.0);

  Joules j{3.0};
  j *= 2.0;
  EXPECT_EQ(j, Joules{6.0});
  j /= 2.0;
  EXPECT_EQ(j, Joules{3.0});
}

TEST(Units, SameDimensionRatioIsDimensionless) {
  const double ratio = Seconds{9.0} / Seconds{4.5};
  EXPECT_DOUBLE_EQ(ratio, 2.0);
  static_assert(std::is_same_v<decltype(Seconds{1.0} / Seconds{1.0}), double>);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
  EXPECT_GE(Joules{2.0}, Joules{2.0});
  EXPECT_NE(Watts{0.1}, Watts{0.2});
  EXPECT_LT(Bytes{100}, Bytes{200});
}

// ---------------------------------------------------------------------------
// Cross-dimension algebra round-trips: the operator set is closed under the
// physics (power * time = energy and its inverses; size / rate = time).
// ---------------------------------------------------------------------------

TEST(Units, PowerTimeEnergyRoundTrip) {
  const Watts p{2.5};
  const Seconds t{4.0};
  const Joules e = p * t;
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  EXPECT_EQ(t * p, e);  // commutative
  EXPECT_EQ(e / t, p);  // exact: 10/4 and 10/2.5 are representable
  EXPECT_EQ(e / p, t);
  static_assert(std::is_same_v<decltype(p * t), Joules>);
  static_assert(std::is_same_v<decltype(e / t), Watts>);
  static_assert(std::is_same_v<decltype(e / p), Seconds>);
}

TEST(Units, BandwidthRoundTrip) {
  const Bytes size{1'000'000};
  const BytesPerSecond bw{250'000.0};
  const Seconds t = size / bw;
  EXPECT_DOUBLE_EQ(t.value(), 4.0);
  // rate * time recovers the (fractional) byte count.
  EXPECT_DOUBLE_EQ(bw * t, size.as_double());
  EXPECT_DOUBLE_EQ(t * bw, size.as_double());
  static_assert(std::is_same_v<decltype(size / bw), Seconds>);
  static_assert(std::is_same_v<decltype(bw * t), double>);
}

TEST(Units, TransferTime) {
  EXPECT_EQ(transfer_time(Bytes{35'000'000}, units::mb_per_s(35.0)),
            Seconds{1.0});
  EXPECT_EQ(transfer_time(Bytes{}, units::mbps(11.0)), Seconds{});
  // Zero bandwidth treated as instantaneous rather than dividing by zero.
  EXPECT_EQ(transfer_time(kKiB, BytesPerSecond{}), Seconds{});
  // Agrees with the raw operator when bw > 0.
  EXPECT_EQ(transfer_time(kKiB, units::mbps(8.0)), kKiB / units::mbps(8.0));
}

TEST(Units, TransferTime11MbpsOf128KiB) {
  // 128 KiB at 11 Mbps is ~95 ms: the WNIC is an order of magnitude slower
  // than the disk for bulk data, which drives the paper's trade-off.
  const Seconds t = transfer_time(128 * kKiB, units::mbps(11.0));
  EXPECT_NEAR(t.value(), 0.0953, 0.0005);
  const Seconds disk = transfer_time(128 * kKiB, units::mb_per_s(35.0));
  EXPECT_LT(disk, t / 20.0);
}

// ---------------------------------------------------------------------------
// Energy as the integral of power over time: tiling a span into sub-spans
// must conserve energy exactly when the tile widths are binary fractions
// (this is how the energy meters accumulate, so exactness matters for the
// serial == parallel byte-identity gate).
// ---------------------------------------------------------------------------

TEST(Units, EnergyIntegralSpanTiling) {
  const Watts p{3.25};
  const Seconds total{8.0};
  const Joules whole = p * total;

  for (const int tiles : {2, 4, 8, 16, 32}) {
    const Seconds dt = total / static_cast<double>(tiles);
    Joules sum{};
    for (int i = 0; i < tiles; ++i) sum += p * dt;
    EXPECT_EQ(sum, whole) << "tiles=" << tiles;
  }
}

TEST(Units, EnergyIntegralPiecewisePower) {
  // A two-state power timeline (active/idle) integrated span by span equals
  // the closed form, and average power falls out of the ratio operator.
  const std::vector<std::pair<Watts, Seconds>> timeline = {
      {Watts{2.0}, Seconds{0.5}},
      {Watts{0.25}, Seconds{4.0}},
      {Watts{2.0}, Seconds{1.5}},
  };
  Joules e{};
  Seconds makespan{};
  for (const auto& [p, dt] : timeline) {
    e += p * dt;
    makespan += dt;
  }
  EXPECT_DOUBLE_EQ(e.value(), 2.0 * 0.5 + 0.25 * 4.0 + 2.0 * 1.5);
  EXPECT_EQ(makespan, Seconds{6.0});
  EXPECT_DOUBLE_EQ((e / makespan).value(), e.value() / 6.0);
}

// ---------------------------------------------------------------------------
// Bytes: integer-exact semantics.
// ---------------------------------------------------------------------------

TEST(Units, BytesIntegerArithmetic) {
  const Bytes b{10 * 1024};
  EXPECT_EQ(b + b, Bytes{20 * 1024});
  EXPECT_EQ(b - kKiB, Bytes{9 * 1024});
  EXPECT_EQ(b * 3, Bytes{30 * 1024});
  EXPECT_EQ(3 * b, b * 3);
  EXPECT_EQ(b / 4, Bytes{2560});
  EXPECT_EQ(b / kKiB, 10u);  // dimensionless count
  EXPECT_EQ(Bytes{10'000} % kKiB, Bytes{10'000 - 9 * 1024});
}

TEST(Units, BytesStayExactWhereDoubleWouldNot) {
  // 2^53 + 1 is not representable as a double; the uint64 backing keeps it.
  const Bytes big{(1ull << 53) + 1};
  EXPECT_EQ(big.value(), (1ull << 53) + 1);
  EXPECT_EQ((big + Bytes{1}) - Bytes{1}, big);
  EXPECT_NE(big, Bytes{1ull << 53});
}

TEST(Units, PagesForRoundsUp) {
  EXPECT_EQ(pages_for(Bytes{}), 0u);
  EXPECT_EQ(pages_for(Bytes{1}), 1u);
  EXPECT_EQ(pages_for(kPageSize), 1u);
  EXPECT_EQ(pages_for(kPageSize + Bytes{1}), 2u);
  EXPECT_EQ(pages_for(kMaxPrefetchWindow), 32u);
  EXPECT_EQ(pages_for(units::mib(1)), 256u);
}

// ---------------------------------------------------------------------------
// Default construction is the dimension's zero — relied on throughout the
// simulator for accumulators.
// ---------------------------------------------------------------------------

TEST(Units, DefaultIsZero) {
  EXPECT_EQ(Seconds{}.value(), 0.0);
  EXPECT_EQ(Joules{}.value(), 0.0);
  EXPECT_EQ(Watts{}.value(), 0.0);
  EXPECT_EQ(BytesPerSecond{}.value(), 0.0);
  EXPECT_EQ(Bytes{}.value(), 0u);
  EXPECT_EQ(Joules{} + Joules{1.0}, Joules{1.0});
}

}  // namespace
}  // namespace flexfetch
