#include "common/units.hpp"

#include <gtest/gtest.h>

namespace flexfetch {
namespace {

TEST(Units, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(kMaxPrefetchWindow, 128u * 1024u);
}

TEST(Units, MbpsIsDecimalMegabitsPerSecond) {
  EXPECT_DOUBLE_EQ(units::mbps(11.0), 11e6 / 8.0);
  EXPECT_DOUBLE_EQ(units::mbps(1.0), 125000.0);
}

TEST(Units, MbPerSIsDecimalMegabytes) {
  EXPECT_DOUBLE_EQ(units::mb_per_s(35.0), 35e6);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(units::ms(13.0), 0.013);
  EXPECT_DOUBLE_EQ(units::us(500.0), 0.0005);
  EXPECT_DOUBLE_EQ(units::minutes(2.0), 120.0);
}

TEST(Units, SizeHelpers) {
  EXPECT_EQ(units::kib(16), 16u * 1024u);
  EXPECT_EQ(units::mib(3), 3u * 1024u * 1024u);
}

TEST(Units, PagesForRoundsUp) {
  EXPECT_EQ(pages_for(0), 0u);
  EXPECT_EQ(pages_for(1), 1u);
  EXPECT_EQ(pages_for(4096), 1u);
  EXPECT_EQ(pages_for(4097), 2u);
  EXPECT_EQ(pages_for(128 * kKiB), 32u);
}

TEST(Units, TransferTime) {
  EXPECT_DOUBLE_EQ(transfer_time(35'000'000, units::mb_per_s(35.0)), 1.0);
  EXPECT_DOUBLE_EQ(transfer_time(0, units::mbps(11.0)), 0.0);
  // Zero bandwidth treated as instantaneous rather than dividing by zero.
  EXPECT_DOUBLE_EQ(transfer_time(1024, 0.0), 0.0);
}

TEST(Units, TransferTime11MbpsOf128KiB) {
  // 128 KiB at 11 Mbps is ~95 ms: the WNIC is an order of magnitude slower
  // than the disk for bulk data, which drives the paper's trade-off.
  const Seconds t = transfer_time(128 * kKiB, units::mbps(11.0));
  EXPECT_NEAR(t, 0.0953, 0.0005);
  const Seconds disk = transfer_time(128 * kKiB, units::mb_per_s(35.0));
  EXPECT_LT(disk, t / 20.0);
}

}  // namespace
}  // namespace flexfetch
