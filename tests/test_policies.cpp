#include <gtest/gtest.h>

#include "common/error.hpp"
#include "energy/loss_curve.hpp"
#include "policies/bluefs.hpp"
#include "policies/factory.hpp"
#include "policies/fixed.hpp"
#include "policies/oracle.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::policies {
namespace {

using device::DeviceKind;

trace::Trace paced_trace(int n = 30) {
  trace::TraceBuilder b("paced");
  b.process(60, 60);
  for (int i = 0; i < n; ++i) {
    b.read(1, Bytes{static_cast<std::uint64_t>(i) * 256 * 1024}, Bytes{256 * 1024});
    b.think(Seconds{4.0});
  }
  return b.build();
}

trace::Trace bursty_trace() {
  trace::TraceBuilder b("bursty");
  b.process(61, 61);
  b.read_file(1, 60 * kMiB, Bytes{128 * 1024});
  return b.build();
}

TEST(FixedPolicies, Names) {
  EXPECT_EQ(DiskOnlyPolicy{}.name(), "Disk-only");
  EXPECT_EQ(WnicOnlyPolicy{}.name(), "WNIC-only");
}

TEST(BlueFS, UsesSpinningDiskForBulkData) {
  BlueFSPolicy policy;
  const auto r = sim::simulate(sim::SimConfig{}, bursty_trace(), policy);
  // A spinning disk is cheaper per-request for 128 KiB chunks.
  EXPECT_GT(r.disk_requests, r.net_requests);
  EXPECT_GT(policy.stats().disk_selections, 0u);
}

TEST(BlueFS, AvoidsSpinningUpForSparseSmallRequests) {
  trace::TraceBuilder b("sparse");
  b.process(60, 60);
  for (int i = 0; i < 10; ++i) {
    b.read(1, Bytes{static_cast<std::uint64_t>(i) * 8192}, Bytes{8192});
    b.think(Seconds{30.0});  // Disk spins down in between.
  }
  BlueFSPolicy policy;
  const auto r = sim::simulate(sim::SimConfig{}, b.build(), policy);
  // After the disk first spins down, small requests go to the network.
  EXPECT_GT(r.net_requests, 0u);
  EXPECT_GT(policy.stats().net_selections, 0u);
}

TEST(BlueFS, GhostHintsAccumulateAndTriggerSpinUp) {
  // Many network-served requests while the disk sleeps accumulate hints
  // until the disk is proactively spun up.
  trace::TraceBuilder b("stream");
  b.process(60, 60);
  b.think(Seconds{30.0});  // Let the disk spin down first.
  for (int i = 0; i < 400; ++i) {
    b.read(1, Bytes{static_cast<std::uint64_t>(i) * 256 * 1024}, Bytes{256 * 1024});
    b.think(Seconds{1.0});
  }
  BlueFSPolicy policy;
  sim::simulate(sim::SimConfig{}, b.build(), policy);
  EXPECT_GT(policy.stats().hints_issued, Joules{0.0});
  EXPECT_GT(policy.stats().ghost_spin_ups, 0u);
}

TEST(BlueFS, HintsDecayOverTime) {
  BlueFSConfig config;
  config.hint_half_life = Seconds{1.0};
  BlueFSPolicy policy(config);
  // One isolated network request while the disk sleeps issues a hint;
  // after many half-lives the pending amount must be negligible.
  trace::TraceBuilder b("one");
  b.process(60, 60);
  b.think(Seconds{30.0});
  b.read(1, Bytes{0}, Bytes{256 * 1024});
  b.think(Seconds{60.0});
  b.read(1, Bytes{256 * 1024}, Bytes{256 * 1024});
  sim::simulate(sim::SimConfig{}, b.build(), policy);
  EXPECT_LT(policy.pending_hints(), policy.stats().hints_issued);
}

TEST(BlueFS, RejectsNegativeHalfLife) {
  BlueFSConfig c;
  c.hint_half_life = -Seconds{1.0};
  EXPECT_THROW(BlueFSPolicy{c}, ConfigError);
}

TEST(Oracle, NameAndBehaviour) {
  const trace::Trace t = paced_trace();
  OraclePolicy policy(t);
  EXPECT_EQ(policy.name(), "Oracle");
  const auto r = sim::simulate(sim::SimConfig{}, t, policy);
  // Perfect knowledge of the paced workload: network.
  EXPECT_GT(r.net_requests, 0u);
}

TEST(Oracle, CompetitiveWithFixedPoliciesOnBothShapes) {
  for (const trace::Trace& t : {paced_trace(), bursty_trace()}) {
    OraclePolicy oracle(t);
    const auto oracle_result = sim::simulate(sim::SimConfig{}, t, oracle);
    DiskOnlyPolicy disk;
    const auto disk_result = sim::simulate(sim::SimConfig{}, t, disk);
    WnicOnlyPolicy wnic;
    const auto wnic_result = sim::simulate(sim::SimConfig{}, t, wnic);
    const Joules best =
        std::min(disk_result.total_energy(), wnic_result.total_energy());
    // The oracle should be within a small tolerance of the better fixed
    // policy (it can also beat both by switching mid-run).
    EXPECT_LT(oracle_result.total_energy(), best * 1.10) << t.name();
  }
}

TEST(Factory, BuildsEveryKnownPolicy) {
  const trace::Trace t = paced_trace(5);
  const std::vector<core::Profile> profiles{
      core::Profile::from_trace(t, Seconds{0.020})};
  for (const std::string name :
       {"disk-only", "wnic-only", "bluefs", "flexfetch", "flexfetch-static",
        "oracle"}) {
    auto policy = make_policy(name, profiles, &t);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(Factory, PolicyNamesMatchPaperLabels) {
  const trace::Trace t = paced_trace(5);
  const std::vector<core::Profile> profiles{
      core::Profile::from_trace(t, Seconds{0.020})};
  EXPECT_EQ(make_policy("flexfetch", profiles)->name(), "FlexFetch");
  EXPECT_EQ(make_policy("flexfetch-static", profiles)->name(),
            "FlexFetch-static");
  EXPECT_EQ(make_policy("bluefs")->name(), "BlueFS");
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_policy("nonsense"), ConfigError);
}

TEST(Factory, ParsesAdaptiveSpecs) {
  const trace::Trace t = paced_trace(5);
  const std::vector<core::Profile> profiles{
      core::Profile::from_trace(t, Seconds{0.020})};
  EXPECT_EQ(make_policy("flexfetch-adaptive:constant@0.25", profiles)->name(),
            "FlexFetch-adaptive(constant@0.25)");
  EXPECT_EQ(make_policy("flexfetch-adaptive:linear", profiles)->name(),
            "FlexFetch-adaptive(linear@0.05:0.5)");
  EXPECT_EQ(make_policy("flexfetch-adaptive:step@0.3:0.1:0.6", profiles)
                ->name(),
            "FlexFetch-adaptive(step@0.3:0.1:0.6)");
  EXPECT_EQ(make_policy("flexfetch-adaptive:horizon-ratio", profiles)->name(),
            "FlexFetch-adaptive(horizon-ratio@1800:0.05:0.5)");
  // A bare constant inherits the cell's loss_rate knob.
  EXPECT_EQ(
      make_policy("flexfetch-adaptive:constant", profiles, nullptr, 0.4)
          ->name(),
      "FlexFetch-adaptive(constant@0.4)");
}

TEST(Factory, AdaptiveRejectsBadSpecsAndMissingProfiles) {
  const trace::Trace t = paced_trace(5);
  const std::vector<core::Profile> profiles{
      core::Profile::from_trace(t, Seconds{0.020})};
  EXPECT_THROW(make_policy("flexfetch-adaptive:parabolic", profiles),
               ConfigError);
  EXPECT_THROW(make_policy("flexfetch-adaptive:linear@0.1", profiles),
               ConfigError);
  EXPECT_THROW(make_policy("flexfetch-adaptive:linear"), ConfigError);
}

TEST(Factory, ConstantCurveReproducesStaticFlexFetch) {
  // The degeneracy gate in miniature (bench_battery runs the full sweep):
  // FlexFetch with `constant@0.25` must make the same decisions, spend the
  // same energy and take the same time as the static 25% knob.
  for (const trace::Trace& t : {paced_trace(), bursty_trace()}) {
    const std::vector<core::Profile> profiles{
        core::Profile::from_trace(t, Seconds{0.020})};
    auto fixed = make_policy("flexfetch", profiles);
    auto adaptive =
        make_policy("flexfetch-adaptive:constant@0.25", profiles);
    const auto r_fixed = sim::simulate(sim::SimConfig{}, t, *fixed);
    const auto r_adaptive = sim::simulate(sim::SimConfig{}, t, *adaptive);
    EXPECT_EQ(r_fixed.total_energy().value(),
              r_adaptive.total_energy().value())
        << t.name();
    EXPECT_EQ(r_fixed.makespan.value(), r_adaptive.makespan.value())
        << t.name();
    EXPECT_EQ(r_fixed.disk_requests, r_adaptive.disk_requests) << t.name();
    EXPECT_EQ(r_fixed.net_requests, r_adaptive.net_requests) << t.name();
  }
}

TEST(Factory, AdaptiveDecisionsUseCurveSampledRates) {
  // A near-empty battery with a linear curve must decide with a rate near
  // loss_rate_empty; the decision log pins the sampled values.
  const trace::Trace t = paced_trace();
  const std::vector<core::Profile> profiles{
      core::Profile::from_trace(t, Seconds{0.020})};
  core::FlexFetchConfig config;
  config.loss_curve = energy::make_loss_curve("linear@0.05:0.5");
  core::FlexFetchPolicy policy(config, profiles);
  sim::SimConfig sc;
  sc.battery.capacity = Joules{50000.0};
  sc.battery.initial_fraction = 0.05;
  sim::simulate(sc, t, policy);
  ASSERT_FALSE(policy.decision_log().empty());
  for (const auto& rec : policy.decision_log()) {
    // Battery in [0, 0.05] -> linear rate in [0.4775, 0.5].
    EXPECT_GE(rec.loss_rate, 0.45);
    EXPECT_LE(rec.loss_rate, 0.5);
  }
}

TEST(Factory, FlexFetchWithoutProfilesThrows) {
  EXPECT_THROW(make_policy("flexfetch"), ConfigError);
}

TEST(Factory, OracleWithoutFutureThrows) {
  EXPECT_THROW(make_policy("oracle"), ConfigError);
}

TEST(Factory, StandardPolicySetMatchesPaperOrder) {
  const auto names = standard_policy_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "flexfetch");
  EXPECT_EQ(names[1], "bluefs");
  EXPECT_EQ(names[2], "disk-only");
  EXPECT_EQ(names[3], "wnic-only");
}

}  // namespace
}  // namespace flexfetch::policies
