#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace flexfetch {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(19);
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 5)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 6.0, 0.01) << "value " << v;
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, NormalClampedStaysInRange) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.normal_clamped(0.0, 5.0, -1.0, 1.0);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(43);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.zipf(100, 1.2);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng rng(47);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(1000, 1.2) <= 10) ++low;
  }
  // With s=1.2 the top-10 ranks should dominate well beyond uniform (1%).
  EXPECT_GT(low, n / 4);
}

TEST(Rng, ZipfDegenerateN1) {
  Rng rng(53);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.zipf(1, 1.5), 1u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(59);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbability) {
  Rng rng(61);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(67);
  Rng b = a.fork();
  // The fork and the parent should not generate the same next values.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

// Golden pins for the centralized seed derivation (common/rng.hpp
// seeds::). These literals are load-bearing: every fleet population,
// fault schedule, and scenario seed flows through these functions, so a
// change here re-rolls every fleet artifact. Update them only with a
// deliberate, documented re-roll.
TEST(Seeds, DeriveStreamGoldenValues) {
  static_assert(seeds::derive_stream(1, 2) == 0x8662547e20f327b6ULL);
  EXPECT_EQ(seeds::derive_stream(1, seeds::kFleetUserDomain, 0),
            0x8abe8b67e645f2d2ULL);
  EXPECT_EQ(seeds::derive_stream(1, seeds::kFleetUserDomain, 1),
            0x928c588336a51cb5ULL);
  EXPECT_EQ(seeds::derive_stream(1, seeds::kFleetFaultDomain, 7),
            0x23d12f59a1eab54aULL);
  EXPECT_EQ(seeds::derive_stream(1, seeds::kFleetScenarioDomain, 3),
            0x0d2d50ed6327c1a1ULL);
  EXPECT_EQ(seeds::derive_stream(2, seeds::kFleetUserDomain, 0),
            0x11395858cfd38ab8ULL);
}

TEST(Seeds, StreamsAreDistinctAcrossIndexAndDomain) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    seen.insert(seeds::derive_stream(1, seeds::kFleetUserDomain, k));
    seen.insert(seeds::derive_stream(1, seeds::kFleetFaultDomain, k));
  }
  EXPECT_EQ(seen.size(), 2000u);  // No collisions in practical ranges.
}

// The legacy helpers are FROZEN arithmetic: they exist to give the
// historical ad-hoc seed expressions one named home, and they must keep
// producing the exact values the pre-fleet artifacts were generated
// with. If one of these fails, every committed BENCH_*.json is stale.
TEST(Seeds, LegacyHelpersAreFrozen) {
  static_assert(seeds::profile_run(1) == 2);
  static_assert(seeds::eval_run(1) == 3);
  static_assert(seeds::profile_run(5) == 10);
  static_assert(seeds::eval_run(5) == 11);
  static_assert(seeds::domain(42, 0x67726570ULL) == (42ULL ^ 0x67726570ULL));
  EXPECT_EQ(seeds::domain(7, 0x6d616b65ULL), 7ULL ^ 0x6d616b65ULL);
}

}  // namespace
}  // namespace flexfetch
