// Fleet subsystem: population determinism across shard boundaries, exact
// checkpoint round-trips, block-merge bit-identity for every worker
// grouping, and kill/resume equivalence.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/catalog.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/population.hpp"
#include "fleet/runner.hpp"
#include "sim/sweep.hpp"

namespace flexfetch::fleet {
namespace {

bool users_equal(const UserParams& a, const UserParams& b) {
  return a.index == b.index && a.stream_seed == b.stream_seed &&
         a.scenario == b.scenario && a.policy == b.policy &&
         a.think_scale == b.think_scale && a.think_bucket == b.think_bucket &&
         a.latency_ms == b.latency_ms &&
         a.bandwidth_mbps == b.bandwidth_mbps &&
         a.hoard_coverage == b.hoard_coverage &&
         a.battery_level == b.battery_level && a.fault_seed == b.fault_seed;
}

TEST(Population, UserKRegeneratesIndependentOfEnumeration) {
  const PopulationGenerator gen{PopulationSpec{}};
  // Enumerate 0..N in order, then regenerate a scatter of indices cold
  // (as a resumed shard would): bit-identical parameters either way.
  std::vector<UserParams> seq;
  for (std::uint64_t k = 0; k < 300; ++k) seq.push_back(gen.user(k));
  const PopulationGenerator cold{PopulationSpec{}};
  for (const std::uint64_t k : {0ULL, 1ULL, 17ULL, 255ULL, 256ULL, 299ULL}) {
    EXPECT_TRUE(users_equal(seq[k], cold.user(k))) << "user " << k;
  }
}

TEST(Population, ShardBoundaryDoesNotExist) {
  // The defining fleet property: user k's parameters do not depend on any
  // partitioning. Simulate 3 shards regenerating interleaved ranges and
  // compare against the full sequence.
  const PopulationGenerator gen{PopulationSpec{}};
  for (int shard = 0; shard < 3; ++shard) {
    const PopulationGenerator shard_gen{PopulationSpec{}};
    for (std::uint64_t k = static_cast<std::uint64_t>(shard); k < 200;
         k += 3) {
      EXPECT_TRUE(users_equal(gen.user(k), shard_gen.user(k)));
    }
  }
}

TEST(Population, MasterSeedSelectsTheWholePopulation) {
  PopulationSpec a;
  PopulationSpec b;
  b.master_seed = 2;
  const PopulationGenerator ga{a};
  const PopulationGenerator gb{b};
  int diffs = 0;
  for (std::uint64_t k = 0; k < 50; ++k) {
    if (!users_equal(ga.user(k), gb.user(k))) ++diffs;
  }
  EXPECT_GT(diffs, 45);  // Essentially every user re-rolls.
}

TEST(Population, SampledParametersStayInRange) {
  const PopulationSpec spec;
  const PopulationGenerator gen{spec};
  int faulted = 0;
  int synced = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    const UserParams u = gen.user(k);
    EXPECT_LT(u.scenario, workloads::kScenarioCount);
    EXPECT_LT(u.policy, spec.policies.size());
    EXPECT_LT(u.think_bucket, spec.think_scales.size());
    EXPECT_GT(u.think_scale, 0.0);
    EXPECT_GT(u.latency_ms, 0.0);
    EXPECT_TRUE(u.bandwidth_mbps == 1.0 || u.bandwidth_mbps == 2.0 ||
                u.bandwidth_mbps == 5.5 || u.bandwidth_mbps == 11.0);
    EXPECT_GE(u.hoard_coverage, 0.0);
    EXPECT_LE(u.hoard_coverage, 1.0);
    EXPECT_GE(u.battery_level, spec.battery_min);
    EXPECT_LE(u.battery_level, spec.battery_max);
    faulted += u.fault_seed != 0 ? 1 : 0;
    synced += u.hoard_coverage < spec.sync_coverage_threshold ? 1 : 0;
    const double lr = gen.loss_rate_for(u);
    EXPECT_GE(lr, spec.loss_rate_full);
    EXPECT_LE(lr, spec.loss_rate_empty);
  }
  // fault_probability = 0.25 over 2000 draws: a loose 3-sigma-ish band.
  EXPECT_GT(faulted, 380);
  EXPECT_LT(faulted, 620);
  // hoard normal(0.8, 0.15) below 0.7 is ~25% of users.
  EXPECT_GT(synced, 300);
  EXPECT_LT(synced, 700);
}

TEST(Population, RejectsMalformedSpecs) {
  PopulationSpec bad;
  bad.scenario_weights = {1.0};  // Wrong arity.
  EXPECT_THROW(PopulationGenerator{bad}, ConfigError);

  bad = PopulationSpec{};
  bad.policies.clear();
  EXPECT_THROW(PopulationGenerator{bad}, ConfigError);

  bad = PopulationSpec{};
  bad.fault_probability = 1.5;
  EXPECT_THROW(PopulationGenerator{bad}, ConfigError);

  bad = PopulationSpec{};
  bad.battery_min = 0.9;
  bad.battery_max = 0.1;
  EXPECT_THROW(PopulationGenerator{bad}, ConfigError);

  bad = PopulationSpec{};
  bad.scenario_weights.assign(workloads::kScenarioCount, 0.0);
  EXPECT_THROW(PopulationGenerator{bad}, ConfigError);
}

TEST(Population, ZeroWeightEntriesAreNeverPicked) {
  PopulationSpec spec;
  spec.scenario_weights = {0.0, 1.0, 0.0, 1.0, 0.0};
  const PopulationGenerator gen{spec};
  for (std::uint64_t k = 0; k < 500; ++k) {
    const std::size_t s = gen.user(k).scenario;
    EXPECT_TRUE(s == 1 || s == 3) << "user " << k << " scenario " << s;
  }
}

TEST(Catalog, BuildsLazilyAndReturnsStableReferences) {
  ScenarioCatalog catalog(1, {0.5, 1.0}, workloads::ScenarioTuning{1.0, 0.1});
  EXPECT_EQ(catalog.bundles_built(), 0u);
  const auto* first = &catalog.bundle(1, 0);
  EXPECT_EQ(catalog.bundles_built(), 1u);
  EXPECT_EQ(first, &catalog.bundle(1, 0));  // Cached, same object.
  EXPECT_EQ(catalog.bundles_built(), 1u);
  catalog.bundle(1, 1);
  EXPECT_EQ(catalog.bundles_built(), 2u);
  EXPECT_THROW(catalog.bundle(workloads::kScenarioCount, 0), ConfigError);
  EXPECT_THROW(catalog.bundle(0, 2), ConfigError);
}

/// Small-but-real fleet configuration shared by the merge/checkpoint
/// tests: tiny workloads, telemetry ON so histograms ride the format.
FleetConfig small_config() {
  FleetConfig config;
  config.users = 37;          // Deliberately not a multiple of block_size.
  config.block_size = 8;      // 5 blocks, last one ragged.
  config.workers = 1;
  config.telemetry = true;
  config.tuning.workload_scale = 0.05;
  return config;
}

TEST(Runner, BlockPartitioningCoversUsersExactly) {
  const FleetConfig config = small_config();
  EXPECT_EQ(block_count(config), 5u);
  const PopulationGenerator gen{config.population};
  ScenarioCatalog catalog(config.population.scenario_seed,
                          config.population.think_scales, config.tuning);
  std::uint64_t covered = 0;
  for (std::uint64_t b = 0; b < block_count(config); ++b) {
    const BlockSummary s = run_block(config, gen, catalog, b);
    EXPECT_EQ(s.user_lo, b * config.block_size);
    EXPECT_EQ(s.agg.cells_seen(), s.user_hi - s.user_lo);
    covered += s.user_hi - s.user_lo;
  }
  EXPECT_EQ(covered, config.users);
}

TEST(Checkpoint, BlockLineRoundTripsBitExactly) {
  const FleetConfig config = small_config();
  const PopulationGenerator gen{config.population};
  ScenarioCatalog catalog(config.population.scenario_seed,
                          config.population.think_scales, config.tuning);
  const BlockSummary original = run_block(config, gen, catalog, 2);
  ASSERT_FALSE(original.agg.strata().empty());

  std::ostringstream os;
  write_block_line(os, original);
  const std::string line = os.str();
  ASSERT_EQ(line.back(), '\n');

  BlockSummary parsed;
  ASSERT_TRUE(parse_block_line(
      std::string_view(line).substr(0, line.size() - 1), &parsed));
  EXPECT_EQ(parsed.block, original.block);
  EXPECT_EQ(parsed.user_lo, original.user_lo);
  EXPECT_EQ(parsed.user_hi, original.user_hi);
  // fingerprint() equality is the bit-identity oracle: every count, mean,
  // M2, min, max, metric, and histogram bucket round-tripped exactly.
  EXPECT_EQ(fingerprint(parsed.agg), fingerprint(original.agg));

  // With telemetry on the strata carry histograms, so the round-trip
  // above actually exercised the histogram encoding.
  bool saw_histogram = false;
  for (const auto& [key, st] : original.agg.strata()) {
    saw_histogram = saw_histogram || !st.metrics.histograms().empty();
  }
  EXPECT_TRUE(saw_histogram);
}

TEST(Checkpoint, TruncatedLinesAreRejectedNotMisparsed) {
  const FleetConfig config = small_config();
  const PopulationGenerator gen{config.population};
  ScenarioCatalog catalog(config.population.scenario_seed,
                          config.population.think_scales, config.tuning);
  std::ostringstream os;
  write_block_line(os, run_block(config, gen, catalog, 0));
  std::string line = os.str();
  line.pop_back();  // strip newline
  BlockSummary out;
  ASSERT_TRUE(parse_block_line(line, &out));
  // Every proper prefix — a torn write — must fail cleanly.
  for (const std::size_t cut : {line.size() - 1, line.size() - 4,
                                line.size() / 2, line.size() / 4, 7UL, 0UL}) {
    BlockSummary torn;
    EXPECT_FALSE(parse_block_line(std::string_view(line).substr(0, cut),
                                  &torn))
        << "prefix of length " << cut << " parsed";
  }
  EXPECT_FALSE(parse_block_line(line + " trailing", &out));
}

TEST(Checkpoint, MetaLineRoundTrips) {
  ShardMeta m;
  m.shard = 3;
  m.wall_seconds = 1.25e-3;
  m.peak_rss_bytes = 123456789;
  m.users = 500;
  m.blocks = 2;
  std::ostringstream os;
  write_meta_line(os, m);
  std::string line = os.str();
  line.pop_back();
  ShardMeta parsed;
  ASSERT_TRUE(parse_meta_line(line, &parsed));
  EXPECT_EQ(parsed.shard, m.shard);
  EXPECT_EQ(parsed.wall_seconds, m.wall_seconds);
  EXPECT_EQ(parsed.peak_rss_bytes, m.peak_rss_bytes);
  EXPECT_EQ(parsed.users, m.users);
  EXPECT_EQ(parsed.blocks, m.blocks);
}

TEST(Runner, AnyWorkerGroupingMergesToTheMonolithicBits) {
  const FleetConfig base = small_config();
  const PopulationGenerator gen{base.population};

  ScenarioCatalog mono_catalog(base.population.scenario_seed,
                               base.population.think_scales, base.tuning);
  const std::string reference =
      fingerprint(run_monolithic(base, gen, mono_catalog));

  // Every worker count from 1 to one-per-block, each shard run through
  // the FULL serialize -> parse -> merge path.
  for (int workers = 1; workers <= 5; ++workers) {
    FleetConfig config = base;
    config.workers = workers;
    std::map<std::uint64_t, BlockSummary> blocks;
    for (int shard = 0; shard < workers; ++shard) {
      ScenarioCatalog catalog(config.population.scenario_seed,
                              config.population.think_scales, config.tuning);
      std::ostringstream out;
      run_shard(config, gen, catalog, shard, {}, out);
      std::istringstream in(out.str());
      std::string line;
      while (std::getline(in, line)) {
        BlockSummary b;
        ASSERT_TRUE(parse_block_line(line, &b));
        blocks.emplace(b.block, std::move(b));
      }
    }
    EXPECT_EQ(fingerprint(merge_blocks(config, blocks)), reference)
        << workers << " workers";
  }
}

TEST(Runner, MergeRefusesPartialCoverage) {
  const FleetConfig config = small_config();
  const PopulationGenerator gen{config.population};
  ScenarioCatalog catalog(config.population.scenario_seed,
                          config.population.think_scales, config.tuning);
  std::map<std::uint64_t, BlockSummary> blocks;
  for (std::uint64_t b = 0; b + 1 < block_count(config); ++b) {
    BlockSummary s = run_block(config, gen, catalog, b);
    blocks.emplace(b, std::move(s));
  }
  EXPECT_THROW(merge_blocks(config, blocks), ConfigError);
}

TEST(Runner, KillAndResumeReproducesUninterruptedBits) {
  const FleetConfig config = small_config();
  const PopulationGenerator gen{config.population};

  ScenarioCatalog mono_catalog(config.population.scenario_seed,
                               config.population.think_scales, config.tuning);
  const std::string reference =
      fingerprint(run_monolithic(config, gen, mono_catalog));

  // First life: the worker dies mid-run — keep only the first two durable
  // lines plus a TORN third line (simulating a kill mid-write).
  ScenarioCatalog catalog1(config.population.scenario_seed,
                           config.population.think_scales, config.tuning);
  std::ostringstream full;
  run_shard(config, gen, catalog1, 0, {}, full);
  std::istringstream lines(full.str());
  std::string line;
  std::string survived;
  int kept = 0;
  while (std::getline(lines, line) && kept < 2) {
    survived += line + "\n";
    ++kept;
  }
  survived += line.substr(0, line.size() / 3);  // torn, no newline

  // Recovery: parse what survived, then resume with the done-set.
  std::map<std::uint64_t, BlockSummary> blocks;
  std::istringstream survived_in(survived);
  while (std::getline(survived_in, line)) {
    BlockSummary b;
    if (parse_block_line(line, &b)) blocks.emplace(b.block, std::move(b));
  }
  ASSERT_EQ(blocks.size(), 2u);  // The torn line did not count.

  std::set<std::uint64_t> done;
  for (const auto& [index, b] : blocks) done.insert(index);
  ScenarioCatalog catalog2(config.population.scenario_seed,
                           config.population.think_scales, config.tuning);
  std::ostringstream second_life;
  const ShardRunStats stats =
      run_shard(config, gen, catalog2, 0, done, second_life);
  EXPECT_EQ(stats.blocks, block_count(config) - 2);

  std::istringstream second_in(second_life.str());
  while (std::getline(second_in, line)) {
    BlockSummary b;
    ASSERT_TRUE(parse_block_line(line, &b));
    EXPECT_FALSE(blocks.contains(b.block));  // Never re-runs durable work.
    blocks.emplace(b.block, std::move(b));
  }
  EXPECT_EQ(fingerprint(merge_blocks(config, blocks)), reference);
}

TEST(Checkpoint, DirectoryLoadSkipsTornAndForeignLines) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "flexfetch_fleet_ckpt_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const FleetConfig config = small_config();
  const PopulationGenerator gen{config.population};
  ScenarioCatalog catalog(config.population.scenario_seed,
                          config.population.think_scales, config.tuning);

  {
    std::ofstream out(dir / shard_file_name(0));
    write_block_line(out, run_block(config, gen, catalog, 0));
    write_block_line(out, run_block(config, gen, catalog, 1));
    ShardMeta m;
    m.shard = 0;
    m.users = 16;
    m.blocks = 2;
    write_meta_line(out, m);
    out << "block 2 16 24 agg 8 strata";  // torn mid-write, no newline
  }
  {
    std::ofstream out(dir / "not-a-shard.txt");
    out << "garbage that the loader must never read\n";
  }

  const CheckpointState state = load_checkpoint_dir((dir).string());
  EXPECT_EQ(state.blocks.size(), 2u);
  EXPECT_TRUE(state.blocks.contains(0));
  EXPECT_TRUE(state.blocks.contains(1));
  ASSERT_EQ(state.metas.size(), 1u);
  EXPECT_EQ(state.metas[0].blocks, 2u);

  EXPECT_TRUE(load_checkpoint_dir((dir / "missing").string()).blocks.empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace flexfetch::fleet
