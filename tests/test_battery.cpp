// Battery model + loss-rate curve family (ROADMAP item 2).
//
// Property tests pinned by ISSUE: fraction/horizon monotonicity, the
// dead-battery boundary, EWMA convergence on a constant-power trace,
// wall-power semantics, spec parsing round-trips, and the regression
// tests for the BatteryParams clamp-drift fix (validate-not-clamp).
#include "energy/battery.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "energy/loss_curve.hpp"

namespace flexfetch::energy {
namespace {

// ---------------------------------------------------------------------------
// BatteryParams::validate — the clamp-drift regression surface.

TEST(BatteryParams, ValidateAcceptsBoundaries) {
  BatteryParams p;
  p.initial_fraction = 0.0;
  EXPECT_NO_THROW(p.validate());
  p.initial_fraction = 1.0;
  EXPECT_NO_THROW(p.validate());
  p.base_drain = Watts{0.0};
  EXPECT_NO_THROW(p.validate());
}

TEST(BatteryParams, ValidateRejectsOutOfRangeFraction) {
  BatteryParams p;
  p.initial_fraction = -0.01;
  EXPECT_THROW(p.validate(), ConfigError);
  p.initial_fraction = 1.01;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(BatteryParams, ValidateRejectsBadCapacityAndDrain) {
  BatteryParams p;
  p.capacity = Joules{0.0};
  EXPECT_THROW(p.validate(), ConfigError);
  p.capacity = Joules{-5.0};
  EXPECT_THROW(p.validate(), ConfigError);
  p = BatteryParams{};
  p.base_drain = Watts{-1.0};
  EXPECT_THROW(p.validate(), ConfigError);
}

// ---------------------------------------------------------------------------
// fraction_at / horizon properties.

TEST(BatteryParams, FractionMonotoneNonIncreasingInTime) {
  BatteryParams p;
  p.capacity = Joules{1000.0};
  p.base_drain = Watts{5.0};
  double prev = p.fraction_at(Seconds{0.0}, Joules{0.0});
  EXPECT_DOUBLE_EQ(prev, 1.0);
  for (double t = 0.0; t <= 400.0; t += 7.5) {
    const double f = p.fraction_at(Seconds{t}, Joules{0.0});
    EXPECT_LE(f, prev) << "t=" << t;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  // Past exhaustion the clamp holds it at zero, never below.
  EXPECT_DOUBLE_EQ(p.fraction_at(Seconds{1e6}, Joules{0.0}), 0.0);
}

TEST(BatteryParams, FractionMonotoneNonIncreasingInDeviceEnergy) {
  BatteryParams p;
  p.capacity = Joules{1000.0};
  p.base_drain = Watts{0.0};
  double prev = 1.0;
  for (double e = 0.0; e <= 2000.0; e += 50.0) {
    const double f = p.fraction_at(Seconds{10.0}, Joules{e});
    EXPECT_LE(f, prev) << "device_energy=" << e;
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 0.0);  // 2x capacity spent: clamped to empty.
}

TEST(BatteryParams, RemainingMatchesFractionTimesCapacity) {
  BatteryParams p;
  p.capacity = Joules{500.0};
  p.base_drain = Watts{1.0};
  const Seconds t{100.0};
  const Joules dev{150.0};
  EXPECT_DOUBLE_EQ(p.remaining_at(t, dev).value(),
                   p.fraction_at(t, dev) * p.capacity.value());
}

TEST(BatteryParams, WallPowerNeverDrains) {
  BatteryParams p;
  p.initial_fraction = 0.6;
  p.on_wall_power = true;
  EXPECT_DOUBLE_EQ(p.drained_at(Seconds{1e6}, Joules{1e9}).value(), 0.0);
  EXPECT_DOUBLE_EQ(p.fraction_at(Seconds{1e6}, Joules{1e9}), 0.6);
}

// ---------------------------------------------------------------------------
// BatteryTracker: EWMA estimation and the energy horizon.

TEST(BatteryTracker, SeededWithBaseDrainBeforeObservations) {
  BatteryParams p;
  p.base_drain = Watts{7.0};
  BatteryTracker tr(p);
  EXPECT_DOUBLE_EQ(tr.drain_estimate().value(), 7.0);
  EXPECT_DOUBLE_EQ(tr.fraction(), 1.0);
}

TEST(BatteryTracker, RejectsInvalidParams) {
  BatteryParams p;
  p.initial_fraction = 2.0;
  EXPECT_THROW(BatteryTracker{p}, ConfigError);
  EXPECT_THROW(BatteryTracker(BatteryParams{}, Seconds{0.0}), ConfigError);
  EXPECT_THROW(
      BatteryTracker(BatteryParams{}, Seconds{30.0}, Seconds{-1.0}),
      ConfigError);
}

TEST(BatteryTracker, EwmaConvergesOnConstantPowerTrace) {
  BatteryParams p;
  p.capacity = Joules{1e6};
  p.base_drain = Watts{10.0};
  BatteryTracker tr(p, /*tau=*/Seconds{30.0},
                    /*min_sample_interval=*/Seconds{1.0});
  // Devices add a constant 5 W on top of the 10 W base: after many time
  // constants the estimate must converge to 15 W.
  for (double t = 2.0; t <= 600.0; t += 2.0) {
    EXPECT_TRUE(tr.observe(Seconds{t}, Joules{5.0 * t}));
  }
  EXPECT_NEAR(tr.drain_estimate().value(), 15.0, 1e-3);
}

TEST(BatteryTracker, EwmaInvariantToSamplingGrain) {
  // The same trajectory sampled at 2 s and at 10 s must land on (nearly)
  // the same estimate: the alpha = 1 - exp(-dt/tau) weight integrates the
  // window, it does not count samples.
  BatteryParams p;
  p.capacity = Joules{1e6};
  p.base_drain = Watts{10.0};
  BatteryTracker fine(p), coarse(p);
  for (double t = 2.0; t <= 300.0; t += 2.0) {
    fine.observe(Seconds{t}, Joules{5.0 * t});
  }
  for (double t = 10.0; t <= 300.0; t += 10.0) {
    coarse.observe(Seconds{t}, Joules{5.0 * t});
  }
  EXPECT_NEAR(fine.drain_estimate().value(), coarse.drain_estimate().value(),
              0.05);
}

TEST(BatteryTracker, SubsamplingSkipsCloseObservations) {
  BatteryParams p;
  BatteryTracker tr(p, Seconds{30.0}, /*min_sample_interval=*/Seconds{1.0});
  EXPECT_FALSE(tr.observe(Seconds{0.5}, Joules{0.0}));   // Too close.
  EXPECT_TRUE(tr.observe(Seconds{1.0}, Joules{0.0}));    // Exactly at bound.
  EXPECT_FALSE(tr.observe(Seconds{1.5}, Joules{0.0}));
  EXPECT_TRUE(tr.observe(Seconds{2.5}, Joules{0.0}));
}

TEST(BatteryTracker, HorizonMonotoneNonIncreasingOnConstantDrain) {
  BatteryParams p;
  p.capacity = Joules{10000.0};
  p.base_drain = Watts{10.0};
  BatteryTracker tr(p);
  double prev = tr.horizon().value();
  for (double t = 5.0; t <= 500.0; t += 5.0) {
    tr.observe(Seconds{t}, Joules{0.0});
    const double h = tr.horizon().value();
    EXPECT_LE(h, prev + 1e-9) << "t=" << t;
    prev = h;
  }
}

TEST(BatteryTracker, DeadBatteryBoundary) {
  BatteryParams p;
  p.capacity = Joules{100.0};
  p.base_drain = Watts{10.0};
  BatteryTracker tr(p);
  tr.observe(Seconds{20.0}, Joules{0.0});  // 200 J demanded of a 100 J pack.
  EXPECT_DOUBLE_EQ(tr.fraction(), 0.0);
  EXPECT_DOUBLE_EQ(tr.horizon().value(), 0.0);
  const BatteryState s = tr.state();
  EXPECT_TRUE(s.dead());
  // Every adaptive curve saturates at its empty rate on a dead battery.
  EXPECT_DOUBLE_EQ(LinearCurve(0.05, 0.5).loss_rate(s), 0.5);
  EXPECT_DOUBLE_EQ(StepCurve(0.2, 0.05, 0.5).loss_rate(s), 0.5);
  EXPECT_DOUBLE_EQ(HorizonRatioCurve(Seconds{1800.0}, 0.05, 0.5).loss_rate(s),
                   0.5);
}

TEST(BatteryTracker, WallPowerState) {
  BatteryParams p;
  p.initial_fraction = 0.3;
  p.on_wall_power = true;
  BatteryTracker tr(p);
  tr.observe(Seconds{100.0}, Joules{5000.0});
  EXPECT_DOUBLE_EQ(tr.fraction(), 0.3);
  EXPECT_TRUE(std::isinf(tr.horizon().value()));
  const BatteryState s = tr.state();
  EXPECT_FALSE(s.dead());
  // Adaptive curves treat plugged-in energy as free...
  EXPECT_DOUBLE_EQ(LinearCurve(0.05, 0.5).loss_rate(s), 0.0);
  EXPECT_DOUBLE_EQ(StepCurve(0.2, 0.05, 0.5).loss_rate(s), 0.0);
  EXPECT_DOUBLE_EQ(HorizonRatioCurve(Seconds{1800.0}, 0.05, 0.5).loss_rate(s),
                   0.0);
  // ...but the constant curve is state-blind by contract (frozen baseline).
  EXPECT_DOUBLE_EQ(ConstantCurve(0.25).loss_rate(s), 0.25);
}

// ---------------------------------------------------------------------------
// Loss-rate curves.

BatteryState at_fraction(double f) {
  return BatteryState{.fraction = f};
}

TEST(LossCurve, LinearMatchesFleetInterpolation) {
  // The fleet's PopulationGenerator::loss_rate_for delegates to this
  // curve; its historical arithmetic is frozen. Checked bit-for-bit.
  const double full = 0.05, empty = 0.5;
  const LinearCurve curve(full, empty);
  for (double level = 0.0; level <= 1.0; level += 0.083) {
    const double drain = 1.0 - level;
    const double expected = full + (empty - full) * drain;
    EXPECT_EQ(curve.loss_rate(at_fraction(level)), expected) << level;
  }
}

TEST(LossCurve, LinearEndpoints) {
  const LinearCurve curve(0.05, 0.5);
  EXPECT_DOUBLE_EQ(curve.loss_rate(at_fraction(1.0)), 0.05);
  EXPECT_DOUBLE_EQ(curve.loss_rate(at_fraction(0.0)), 0.5);
}

TEST(LossCurve, StepSwitchesAtThreshold) {
  const StepCurve curve(0.2, 0.1, 0.4);
  EXPECT_DOUBLE_EQ(curve.loss_rate(at_fraction(0.21)), 0.1);
  EXPECT_DOUBLE_EQ(curve.loss_rate(at_fraction(0.2)), 0.4);  // At: below.
  EXPECT_DOUBLE_EQ(curve.loss_rate(at_fraction(0.0)), 0.4);
}

TEST(LossCurve, HorizonRatioSweepsFullToEmpty) {
  const HorizonRatioCurve curve(Seconds{1800.0}, 0.05, 0.5);
  BatteryState s;
  s.fraction = 0.5;
  s.horizon = Seconds{1800.0};  // At the reference: halfway.
  EXPECT_DOUBLE_EQ(curve.loss_rate(s), 0.05 + (0.5 - 0.05) * 0.5);
  s.horizon = Seconds{1e12};  // Effectively unbounded: near rate_full.
  EXPECT_NEAR(curve.loss_rate(s), 0.05, 1e-6);
  s.horizon = Seconds{0.0};  // Dead: saturates at rate_empty.
  EXPECT_DOUBLE_EQ(curve.loss_rate(s), 0.5);
}

TEST(LossCurve, HorizonRatioMonotoneInHorizon) {
  const HorizonRatioCurve curve(Seconds{1800.0}, 0.05, 0.5);
  BatteryState s;
  double prev = std::numeric_limits<double>::infinity();
  for (double h = 0.0; h <= 7200.0; h += 120.0) {
    s.horizon = Seconds{h};
    const double r = curve.loss_rate(s);
    EXPECT_LE(r, prev);
    prev = r;
  }
}

TEST(LossCurve, ConstructorValidation) {
  EXPECT_THROW(ConstantCurve{-0.1}, ConfigError);
  EXPECT_THROW(LinearCurve(-0.1, 0.5), ConfigError);
  EXPECT_THROW(StepCurve(1.5, 0.1, 0.4), ConfigError);
  EXPECT_THROW(HorizonRatioCurve(Seconds{0.0}, 0.05, 0.5), ConfigError);
}

// ---------------------------------------------------------------------------
// Spec parsing.

TEST(LossCurveSpec, RoundTripsCanonicalNames) {
  for (const char* spec :
       {"constant@0.25", "linear@0.05:0.5", "step@0.2:0.25:0.5",
        "horizon-ratio@1800:0.05:0.5"}) {
    EXPECT_EQ(make_loss_curve(spec)->name(), spec) << spec;
  }
}

TEST(LossCurveSpec, BareKindsUseDefaults) {
  EXPECT_EQ(make_loss_curve("constant", 0.1)->name(), "constant@0.1");
  EXPECT_EQ(make_loss_curve("linear")->name(), "linear@0.05:0.5");
  EXPECT_EQ(make_loss_curve("step", 0.25)->name(), "step@0.2:0.25:0.5");
  EXPECT_EQ(make_loss_curve("horizon-ratio")->name(),
            "horizon-ratio@1800:0.05:0.5");
  EXPECT_EQ(make_loss_curve("horizon-ratio@900")->name(),
            "horizon-ratio@900:0.05:0.5");
}

TEST(LossCurveSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(make_loss_curve("parabolic"), ConfigError);
  EXPECT_THROW(make_loss_curve("constant@a"), ConfigError);
  EXPECT_THROW(make_loss_curve("constant@0.1:0.2"), ConfigError);
  EXPECT_THROW(make_loss_curve("linear@0.1"), ConfigError);
  EXPECT_THROW(make_loss_curve("step@0.2:0.1"), ConfigError);
  EXPECT_THROW(make_loss_curve("horizon-ratio@1800:0.05"), ConfigError);
  EXPECT_THROW(make_loss_curve("linear@"), ConfigError);
  EXPECT_THROW(make_loss_curve(""), ConfigError);
}

}  // namespace
}  // namespace flexfetch::energy
