#include "medium/medium.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/wnic.hpp"
#include "medium/server.hpp"

namespace flexfetch::medium {
namespace {

constexpr double kEps = 1e-9;

ServerParams two_slot(const std::string& admission) {
  ServerParams p;
  p.capacity = 2;
  p.reserved_slots = 1;
  p.low_battery_threshold = 0.30;
  p.admission = admission;
  return p;
}

TEST(ServerParams, ValidateRejectsNonsense) {
  ServerParams p;
  p.capacity = 0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ServerParams{};
  p.reserved_slots = p.capacity;  // Must leave one unreserved slot.
  EXPECT_THROW(p.validate(), ConfigError);
  p = ServerParams{};
  p.low_battery_threshold = 1.5;
  EXPECT_THROW(p.validate(), ConfigError);
  p = ServerParams{};
  p.admission = "round-robin";
  EXPECT_THROW(p.validate(), ConfigError);
  EXPECT_NO_THROW(ServerParams{}.validate());
}

TEST(RemoteServer, FifoTakesEarliestFreeSlot) {
  RemoteServer s(two_slot("fifo"));
  EXPECT_EQ(s.admission_delay(Seconds{0.0}, 1.0), Seconds{0.0});
  s.occupy(Seconds{0.0}, Seconds{0.0}, Seconds{10.0}, 1.0, Bytes{100});
  // One slot busy until 10: still no wait.
  EXPECT_EQ(s.admission_delay(Seconds{1.0}, 1.0), Seconds{0.0});
  s.occupy(Seconds{1.0}, Seconds{1.0}, Seconds{4.0}, 1.0, Bytes{100});
  // Both busy; the earliest-free slot opens at 4.
  EXPECT_NEAR(s.admission_delay(Seconds{2.0}, 1.0).value(), 2.0, kEps);
  s.occupy(Seconds{2.0}, Seconds{4.0}, Seconds{6.0}, 1.0, Bytes{100});
  EXPECT_EQ(s.stats().requests, 3u);
  EXPECT_EQ(s.stats().queue_waits, 1u);
  EXPECT_NEAR(s.stats().queue_wait.value(), 2.0, kEps);
  EXPECT_EQ(s.stats().conservation_violations, 0u);
  EXPECT_EQ(s.stats().max_depth, 2u);
}

TEST(RemoteServer, BatteryReservesTrunkSlotForLowBattery) {
  RemoteServer s(two_slot("battery"));
  // A healthy client may only use the unreserved slot (index >= 1).
  s.occupy(Seconds{0.0}, Seconds{0.0}, Seconds{10.0}, 0.9, Bytes{100});
  // Second healthy client: slot 0 is free but reserved — it must wait for
  // slot 1, and the wait is classified as a reserved deferral.
  EXPECT_NEAR(s.admission_delay(Seconds{1.0}, 0.9).value(), 9.0, kEps);
  s.occupy(Seconds{1.0}, Seconds{10.0}, Seconds{12.0}, 0.9, Bytes{100});
  EXPECT_EQ(s.stats().reserved_deferrals, 1u);
  EXPECT_EQ(s.stats().conservation_violations, 0u);
  // A low-battery client sails into the reserved slot with no wait.
  EXPECT_EQ(s.admission_delay(Seconds{2.0}, 0.1), Seconds{0.0});
  s.occupy(Seconds{2.0}, Seconds{2.0}, Seconds{5.0}, 0.1, Bytes{100});
  EXPECT_EQ(s.stats().queue_waits, 1u);
}

TEST(RemoteServer, StatsTrackBusyAndBytes) {
  RemoteServer s(two_slot("fifo"));
  s.occupy(Seconds{0.0}, Seconds{0.0}, Seconds{3.0}, 1.0, Bytes{500});
  s.occupy(Seconds{1.0}, Seconds{1.0}, Seconds{2.0}, 1.0, Bytes{250});
  EXPECT_NEAR(s.stats().busy.value(), 4.0, kEps);
  EXPECT_EQ(s.stats().served_bytes, Bytes{750});
  EXPECT_EQ(s.horizon(), Seconds{3.0});
  EXPECT_EQ(s.busy_slots(Seconds{1.5}), 2u);
  EXPECT_EQ(s.busy_slots(Seconds{2.5}), 1u);
  EXPECT_EQ(s.busy_slots(Seconds{3.0}), 0u);
}

TEST(SharedMedium, SoloClientAlwaysSeesFullShare) {
  SharedMedium m(MediumParams{}, ServerParams{});
  const std::size_t c = m.add_client(1.0, BatteryParams{});
  EXPECT_DOUBLE_EQ(m.airtime_share(c, Seconds{0.0}), 1.0);
  m.commit(c, Seconds{0.0}, Seconds{0.0}, Seconds{5.0}, Bytes{100}, false);
  // Its own transfer never counts against it.
  EXPECT_DOUBLE_EQ(m.airtime_share(c, Seconds{2.0}), 1.0);
  EXPECT_EQ(m.stats().contended_transfers, 0u);
}

TEST(SharedMedium, ConcurrentTransfersSplitAirtime) {
  SharedMedium m(MediumParams{}, ServerParams{});
  const std::size_t a = m.add_client(1.0, BatteryParams{});
  const std::size_t b = m.add_client(1.0, BatteryParams{});
  m.commit(a, Seconds{0.0}, Seconds{0.0}, Seconds{10.0}, Bytes{100}, false);
  // b starts while a is mid-transfer: half share, and the interval is
  // half-open so t == end does not count.
  EXPECT_DOUBLE_EQ(m.airtime_share(b, Seconds{5.0}), 0.5);
  EXPECT_DOUBLE_EQ(m.airtime_share(b, Seconds{10.0}), 1.0);
}

TEST(SharedMedium, LinkQualityScalesShare) {
  SharedMedium m(MediumParams{}, ServerParams{});
  const std::size_t a = m.add_client(0.8, BatteryParams{});
  const std::size_t b = m.add_client(1.0, BatteryParams{});
  EXPECT_DOUBLE_EQ(m.airtime_share(a, Seconds{0.0}), 0.8);
  m.commit(b, Seconds{0.0}, Seconds{0.0}, Seconds{10.0}, Bytes{100}, false);
  EXPECT_DOUBLE_EQ(m.airtime_share(a, Seconds{1.0}), 0.4);
  EXPECT_THROW(m.add_client(0.0, BatteryParams{}), ConfigError);
  EXPECT_THROW(m.add_client(1.5, BatteryParams{}), ConfigError);
}

TEST(SharedMedium, FrontierPrunesDeadIntervals) {
  SharedMedium m(MediumParams{}, ServerParams{});
  const std::size_t a = m.add_client(1.0, BatteryParams{});
  const std::size_t b = m.add_client(1.0, BatteryParams{});
  m.commit(a, Seconds{0.0}, Seconds{0.0}, Seconds{2.0}, Bytes{100}, false);
  m.commit(a, Seconds{2.0}, Seconds{2.0}, Seconds{4.0}, Bytes{100}, false);
  EXPECT_TRUE(m.client_active_at(a, Seconds{1.0}));
  m.set_frontier(Seconds{3.0});
  // The [0,2) interval is behind the frontier and gone; [2,4) survives
  // because it still covers times >= 3.
  EXPECT_FALSE(m.client_active_at(a, Seconds{1.0}));
  EXPECT_TRUE(m.client_active_at(a, Seconds{3.5}));
  EXPECT_DOUBLE_EQ(m.airtime_share(b, Seconds{3.5}), 0.5);
  // The frontier never moves backwards.
  m.set_frontier(Seconds{1.0});
  EXPECT_TRUE(m.client_active_at(a, Seconds{3.5}));
}

TEST(SharedMedium, ExpectedShareTracksRecentCongestionAndDecays) {
  MediumParams params;
  params.congestion_tau = Seconds{10.0};
  SharedMedium m(params, ServerParams{});
  const std::size_t a = m.add_client(1.0, BatteryParams{});
  const std::size_t b = m.add_client(1.0, BatteryParams{});

  // Nothing committed yet: expected == instantaneous == 1.0 (the N=1-style
  // degeneracy that keeps estimator replicas inert on an idle medium).
  EXPECT_DOUBLE_EQ(m.expected_share(a, Seconds{0.0}), 1.0);

  // b transfers continuously for several tau: its activity saturates, so
  // a's expected share approaches 1/2 even at an instant where b happens
  // to be idle (t = 60 is past b's last committed end).
  for (int k = 0; k < 6; ++k) {
    const double t = 10.0 * k;
    m.commit(b, Seconds{t}, Seconds{t}, Seconds{t + 10.0}, Bytes{100}, false);
  }
  EXPECT_FALSE(m.client_active_at(b, Seconds{60.0}));
  EXPECT_DOUBLE_EQ(m.airtime_share(a, Seconds{60.0}), 1.0);
  const double busy = m.expected_share(a, Seconds{60.0});
  EXPECT_DOUBLE_EQ(busy, 0.5);  // activity is clamped at 1 → share 1/2

  // ...and fades once b goes quiet: a few tau later the memory is gone.
  const double later = m.expected_share(a, Seconds{120.0});
  EXPECT_GT(later, busy);
  EXPECT_GT(m.expected_share(a, Seconds{300.0}), 0.99);
  // b's own expectation never counts b's own transfers.
  EXPECT_DOUBLE_EQ(m.expected_share(b, Seconds{60.0}), 1.0);
  // Frontier pruning must NOT erase congestion memory — history is the
  // point.
  m.set_frontier(Seconds{61.0});
  EXPECT_DOUBLE_EQ(m.expected_share(a, Seconds{60.0}), busy);
  EXPECT_THROW(SharedMedium(MediumParams{.congestion_tau = Seconds{0.0}},
                            ServerParams{}),
               ConfigError);
}

TEST(SharedMedium, BatteryReportsDischargeAndClamp) {
  BatteryParams batt;
  batt.capacity = Joules{1000.0};
  batt.initial_fraction = 0.5;
  batt.base_drain = Watts{1.0};
  SharedMedium m(MediumParams{}, ServerParams{});
  const std::size_t c = m.add_client(1.0, batt);
  EXPECT_DOUBLE_EQ(m.battery_fraction(c), 0.5);
  m.report_battery(c, Seconds{100.0}, Joules{100.0});
  // 0.5 - (100 J platform + 100 J devices) / 1000 J.
  EXPECT_NEAR(m.battery_fraction(c), 0.3, kEps);
  m.report_battery(c, Seconds{1000.0}, Joules{1000.0});
  EXPECT_DOUBLE_EQ(m.battery_fraction(c), 0.0);  // Clamped at empty.
}

TEST(SharedMedium, AddClientValidatesBatteryInsteadOfClamping) {
  // Clamp-drift regression: add_client used to silently clamp an
  // out-of-range initial_fraction into [0, 1], masking configuration bugs
  // (a 1.2 "120% battery" was admitted at full charge). Bad parameters
  // must throw at the construction site instead.
  SharedMedium m(MediumParams{}, ServerParams{});
  BatteryParams batt;
  batt.initial_fraction = 1.2;
  EXPECT_THROW(m.add_client(1.0, batt), ConfigError);
  batt.initial_fraction = -0.1;
  EXPECT_THROW(m.add_client(1.0, batt), ConfigError);
  batt = BatteryParams{};
  batt.capacity = Joules{0.0};
  EXPECT_THROW(m.add_client(1.0, batt), ConfigError);
  batt = BatteryParams{};
  batt.base_drain = Watts{-2.0};
  EXPECT_THROW(m.add_client(1.0, batt), ConfigError);

  // In-range boundary values are admitted verbatim: the reported fraction
  // starts exactly at initial_fraction, no clamp drift.
  batt = BatteryParams{};
  batt.initial_fraction = 0.0;
  const std::size_t c = m.add_client(1.0, batt);
  EXPECT_DOUBLE_EQ(m.battery_fraction(c), 0.0);
  // A later report never lifts it above the admitted level on battery
  // power (discharge is monotone).
  m.report_battery(c, Seconds{10.0}, Joules{0.0});
  EXPECT_DOUBLE_EQ(m.battery_fraction(c), 0.0);
}

// ---------------------------------------------------------------------------
// Wnic integration through a stub ClientLink.

/// Scriptable link: fixed share and admission delay, counts commits.
class StubLink final : public ClientLink {
 public:
  double share = 1.0;
  Seconds delay = Seconds{0.0};
  int commits = 0;
  Seconds last_arrival = Seconds{0.0};
  Seconds last_start = Seconds{0.0};

  double airtime_share(Seconds) const override { return share; }
  Seconds admission_delay(Seconds) const override { return delay; }
  std::size_t queue_depth(Seconds) const override { return 0; }
  void commit_transfer(Seconds arrival, Seconds start, Seconds end, Bytes,
                       bool) override {
    ++commits;
    last_arrival = arrival;
    last_start = start;
    EXPECT_GE(end, start);
  }
};

device::DeviceRequest bulk_read() {
  return device::DeviceRequest{
      .lba = Bytes{0}, .size = Bytes{1'375'000}, .is_write = false};
}

TEST(WnicMedium, PaysAdmissionDelayInCamIdle) {
  device::Wnic contended;
  device::Wnic solo;
  StubLink link;
  link.delay = Seconds{2.0};
  contended.attach_medium(&link);
  const auto res = contended.service(Seconds{0.0}, bulk_read());
  const auto base = solo.service(Seconds{0.0}, bulk_read());
  // The whole service shifts right by the queue wait...
  EXPECT_NEAR(res.completion.value(), base.completion.value() + 2.0, kEps);
  EXPECT_NEAR(res.start.value(), base.start.value() + 2.0, kEps);
  // ...and the wait is billed at CAM idle power on top of the transfer.
  EXPECT_NEAR(res.energy.value(),
              base.energy.value() +
                  (contended.params().cam_idle_power * Seconds{2.0}).value(),
              kEps);
  EXPECT_EQ(contended.counters().server_queue_waits, 1u);
  EXPECT_NEAR(contended.counters().server_queue_wait.value(), 2.0, kEps);
  // The commit covers [start, completion) and remembers the arrival.
  EXPECT_EQ(link.commits, 1);
  EXPECT_NEAR(link.last_arrival.value(), 0.0, kEps);
  EXPECT_NEAR(link.last_start.value(), 2.0, kEps);
}

TEST(WnicMedium, ShareScalesEffectiveBandwidth) {
  device::Wnic contended;
  device::Wnic solo;
  StubLink link;
  link.share = 0.5;
  contended.attach_medium(&link);
  const auto res = contended.service(Seconds{0.0}, bulk_read());
  const auto base = solo.service(Seconds{0.0}, bulk_read());
  // Same RPC latency, twice the streaming time (1 s -> 2 s at 11 Mbps).
  EXPECT_NEAR(res.completion.value(), base.completion.value() + 1.0, kEps);
  EXPECT_EQ(contended.counters().contended_transfers, 1u);
  EXPECT_EQ(solo.counters().contended_transfers, 0u);
}

TEST(WnicMedium, FullShareIsBitIdenticalToNoMedium) {
  device::Wnic attached;
  device::Wnic detached;
  StubLink link;  // share 1.0, delay 0 — an idle, perfect medium.
  attached.attach_medium(&link);
  const auto a = attached.service(Seconds{0.0}, bulk_read());
  const auto b = detached.service(Seconds{0.0}, bulk_read());
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(attached.meter().total(), detached.meter().total());
  EXPECT_EQ(attached.counters().contended_transfers, 0u);
  EXPECT_EQ(attached.counters().server_queue_waits, 0u);
  EXPECT_EQ(link.commits, 1);  // Still committed — just invisible.
}

TEST(WnicMedium, EstimatePricesContentionButNeverCommits) {
  device::Wnic w;
  StubLink link;
  link.delay = Seconds{3.0};
  link.share = 0.5;
  w.attach_medium(&link);
  const auto est = w.estimate(Seconds{0.0}, bulk_read());
  // The counterfactual copy saw the delay and the halved share...
  EXPECT_GT(est.completion.value(), 4.0);
  // ...but committed nothing and left the live card untouched.
  EXPECT_EQ(link.commits, 0);
  EXPECT_EQ(w.counters().requests, 0u);
  EXPECT_EQ(w.now(), Seconds{0.0});
  // The live service afterwards does commit.
  w.service(Seconds{0.0}, bulk_read());
  EXPECT_EQ(link.commits, 1);
}

TEST(WnicMedium, TimeToReadyIncludesAdmissionDelay) {
  device::Wnic w;
  StubLink link;
  link.delay = Seconds{1.5};
  w.attach_medium(&link);
  // In CAM before the PSM timeout the radio itself is ready instantly;
  // the server queue is the whole wait.
  EXPECT_NEAR(w.time_to_ready(Seconds{0.0}).value(), 1.5, kEps);
  device::Wnic unattached;
  EXPECT_EQ(unattached.time_to_ready(Seconds{0.0}), Seconds{0.0});
}

TEST(WnicMedium, PsmSinglePacketBypassesServerQueue) {
  device::Wnic w;
  StubLink link;
  link.delay = Seconds{5.0};
  w.attach_medium(&link);
  w.advance_to(Seconds{20.0});  // Well past the PSM timeout.
  ASSERT_EQ(w.state(), device::WnicState::kPsm);
  const device::DeviceRequest tiny{
      .lba = Bytes{0}, .size = Bytes{512}, .is_write = false};
  const auto res = w.service(Seconds{20.0}, tiny);
  // Beacon delivery: no slot wait, no commit, no wake.
  EXPECT_LT(res.completion.value(), 21.0);
  EXPECT_EQ(w.counters().server_queue_waits, 0u);
  EXPECT_EQ(link.commits, 0);
  EXPECT_EQ(w.counters().psm_transfers, 1u);
}

}  // namespace
}  // namespace flexfetch::medium
