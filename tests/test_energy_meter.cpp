#include "device/energy_meter.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/request.hpp"

namespace flexfetch::device {
namespace {

TEST(EnergyMeter, StartsEmpty) {
  EnergyMeter m;
  EXPECT_DOUBLE_EQ(m.total().value(), 0.0);
  EXPECT_DOUBLE_EQ(m[EnergyCategory::kIdle].value(), 0.0);
}

TEST(EnergyMeter, AccumulatesPerCategory) {
  EnergyMeter m;
  m.add(EnergyCategory::kIdle, Joules{1.5});
  m.add(EnergyCategory::kIdle, Joules{0.5});
  m.add(EnergyCategory::kSpinUp, Joules{5.0});
  EXPECT_DOUBLE_EQ(m[EnergyCategory::kIdle].value(), 2.0);
  EXPECT_DOUBLE_EQ(m[EnergyCategory::kSpinUp].value(), 5.0);
  EXPECT_DOUBLE_EQ(m.total().value(), 7.0);
}

TEST(EnergyMeter, TotalIsSumOfAllCategories) {
  EnergyMeter m;
  double expected = 0.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(EnergyCategory::kCount);
       ++i) {
    m.add(static_cast<EnergyCategory>(i), Joules{static_cast<double>(i) + 1.0});
    expected += static_cast<double>(i) + 1.0;
  }
  EXPECT_DOUBLE_EQ(m.total().value(), expected);
}

TEST(EnergyMeter, TransitionEnergyCoversSpinAndModeSwitch) {
  EnergyMeter m;
  m.add(EnergyCategory::kSpinUp, Joules{5.0});
  m.add(EnergyCategory::kSpinDown, Joules{2.94});
  m.add(EnergyCategory::kModeSwitch, Joules{0.53});
  m.add(EnergyCategory::kIdle, Joules{100.0});  // Not a transition.
  EXPECT_DOUBLE_EQ(m.transition_energy().value(), 8.47);
}

TEST(EnergyMeter, NegativeEnergyRejected) {
  EnergyMeter m;
  EXPECT_THROW(m.add(EnergyCategory::kIdle, Joules{-0.1}), InternalError);
}

TEST(EnergyMeter, ResetClearsEverything) {
  EnergyMeter m;
  m.add(EnergyCategory::kSend, Joules{3.0});
  m.reset();
  EXPECT_DOUBLE_EQ(m.total().value(), 0.0);
}

TEST(EnergyMeter, ReportOmitsZeroCategoriesAndShowsTotal) {
  EnergyMeter m;
  m.add(EnergyCategory::kRecv, Joules{1.0});
  const std::string r = m.report();
  EXPECT_NE(r.find("recv"), std::string::npos);
  EXPECT_EQ(r.find("spin-up"), std::string::npos);
  EXPECT_NE(r.find("total"), std::string::npos);
}

TEST(DeviceKind, OtherFlips) {
  EXPECT_EQ(other(DeviceKind::kDisk), DeviceKind::kNetwork);
  EXPECT_EQ(other(DeviceKind::kNetwork), DeviceKind::kDisk);
}

TEST(DeviceKind, Names) {
  EXPECT_STREQ(to_string(DeviceKind::kDisk), "disk");
  EXPECT_STREQ(to_string(DeviceKind::kNetwork), "network");
}

TEST(EnergyCategory, AllNamesDefined) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(EnergyCategory::kCount);
       ++i) {
    EXPECT_STRNE(to_string(static_cast<EnergyCategory>(i)), "?");
  }
}

}  // namespace
}  // namespace flexfetch::device
