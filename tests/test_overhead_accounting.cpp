// The Section 5 overhead accounting added to FlexFetch: counters must
// move with the work performed, and the charged energy must be orders of
// magnitude below the I/O energy at stake.
#include <gtest/gtest.h>

#include "core/flexfetch.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch::core {
namespace {

trace::Trace paced(int n) {
  trace::TraceBuilder b("paced");
  b.process(60, 60);
  for (int i = 0; i < n; ++i) {
    b.read(1, Bytes{static_cast<std::uint64_t>(i) * 256 * 1024}, Bytes{256 * 1024});
    b.think(Seconds{4.0});
  }
  return b.build();
}

TEST(OverheadAccounting, CountersTrackWork) {
  const trace::Trace t = paced(30);
  FlexFetchPolicy policy(FlexFetchConfig{}, Profile::from_trace(t, Seconds{0.020}));
  sim::simulate(sim::SimConfig{}, t, policy);
  const auto& s = policy.stats();
  EXPECT_EQ(s.syscalls_tracked, 30u);
  EXPECT_GT(s.estimator_requests_replayed, 0u);
  EXPECT_GT(s.shadow_requests_replayed, 0u);
  EXPECT_EQ(s.overhead_ops(), s.syscalls_tracked +
                                  s.estimator_requests_replayed +
                                  s.shadow_requests_replayed);
}

TEST(OverheadAccounting, EnergyScalesWithPerOpCost) {
  const trace::Trace t = paced(10);
  FlexFetchConfig config;
  config.overhead_per_op = Joules{1e-3};
  FlexFetchPolicy policy(config, Profile::from_trace(t, Seconds{0.020}));
  sim::simulate(sim::SimConfig{}, t, policy);
  EXPECT_DOUBLE_EQ(policy.overhead_energy().value(),
                   static_cast<double>(policy.stats().overhead_ops()) * 1e-3);
}

TEST(OverheadAccounting, ZeroCostDisablesTheCharge) {
  const trace::Trace t = paced(10);
  FlexFetchConfig config;
  config.overhead_per_op = Joules{0.0};
  FlexFetchPolicy policy(config, Profile::from_trace(t, Seconds{0.020}));
  sim::simulate(sim::SimConfig{}, t, policy);
  EXPECT_DOUBLE_EQ(policy.overhead_energy().value(), 0.0);
  EXPECT_GT(policy.stats().overhead_ops(), 0u);  // Still counted.
}

TEST(OverheadAccounting, StaticVariantDoesNoShadowWork) {
  const trace::Trace t = paced(20);
  FlexFetchPolicy policy(FlexFetchConfig::static_variant(),
                         Profile::from_trace(t, Seconds{0.020}));
  sim::simulate(sim::SimConfig{}, t, policy);
  EXPECT_EQ(policy.stats().shadow_requests_replayed, 0u);
}

TEST(OverheadAccounting, OverheadIsNegligibleOnPaperScenarios) {
  // The paper's claim: "such simulation causes minimal overhead, since
  // only a small amount of computation is needed in every 40-second
  // stage" (Section 2.2). At the default 2 uJ/op, the scheme's spend must
  // be under 0.1% of the I/O energy on every scenario.
  for (const auto& scenario : workloads::all_scenarios(1)) {
    FlexFetchPolicy policy(FlexFetchConfig{}, scenario.profiles);
    sim::Simulator simulator(sim::SimConfig{}, scenario.programs, policy);
    const auto r = simulator.run();
    EXPECT_LT(policy.overhead_energy(), 1e-3 * r.total_energy())
        << scenario.name;
  }
}

TEST(DecisionRecord, FieldsAreFilledCoherently) {
  const trace::Trace t = paced(30);
  FlexFetchPolicy policy(FlexFetchConfig{}, Profile::from_trace(t, Seconds{0.020}));
  sim::simulate(sim::SimConfig{}, t, policy);
  ASSERT_FALSE(policy.decision_log().empty());
  Seconds prev = Seconds{-1.0};
  for (const auto& d : policy.decision_log()) {
    EXPECT_GE(d.time, prev);  // Log is chronological.
    prev = d.time;
    EXPECT_GT(d.burst_count, 0u);
    EXPECT_GE(d.disk.time, Seconds{0.0});
    EXPECT_GE(d.network.time, Seconds{0.0});
    EXPECT_GE(d.disk.energy, Joules{0.0});
    EXPECT_GE(d.network.energy, Joules{0.0});
  }
}

}  // namespace
}  // namespace flexfetch::core
