// Time-varying WNIC bandwidth (roaming): schedule semantics and the
// adaptive response FlexFetch mounts when the signal degrades mid-run.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/flexfetch.hpp"
#include "device/wnic.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::device {
namespace {

WnicParams scheduled(std::vector<BandwidthStep> steps) {
  WnicParams p = WnicParams::cisco_aironet350();
  p.bandwidth_schedule = std::move(steps);
  return p;
}

TEST(Roaming, EmptyScheduleUsesBaseRate) {
  const WnicParams p = WnicParams::cisco_aironet350();
  EXPECT_DOUBLE_EQ(p.bandwidth_at(0.0), units::mbps(11.0));
  EXPECT_DOUBLE_EQ(p.bandwidth_at(1e6), units::mbps(11.0));
}

TEST(Roaming, StepsApplyFromTheirStartTime) {
  const WnicParams p = scheduled({{100.0, units::mbps(2.0)},
                                  {200.0, units::mbps(5.5)}});
  EXPECT_DOUBLE_EQ(p.bandwidth_at(0.0), units::mbps(11.0));   // Base.
  EXPECT_DOUBLE_EQ(p.bandwidth_at(100.0), units::mbps(2.0));  // Inclusive.
  EXPECT_DOUBLE_EQ(p.bandwidth_at(150.0), units::mbps(2.0));
  EXPECT_DOUBLE_EQ(p.bandwidth_at(500.0), units::mbps(5.5));
}

TEST(Roaming, UnsortedScheduleRejected) {
  WnicParams p = scheduled({{200.0, units::mbps(2.0)},
                            {100.0, units::mbps(5.5)}});
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Roaming, ZeroBandwidthStepRejected) {
  WnicParams p = scheduled({{100.0, 0.0}});
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Roaming, ServiceUsesTheRateInEffect) {
  Wnic w(scheduled({{10.0, units::mbps(1.0)}}));
  const DeviceRequest req{.lba = 0, .size = 125'000, .is_write = false};
  const auto fast = w.service(0.0, req);   // At 11 Mbps.
  const auto slow = w.service(20.0, req);  // At 1 Mbps.
  const Seconds fast_xfer = fast.completion - fast.start;
  const Seconds slow_xfer = slow.completion - slow.start;
  EXPECT_GT(slow_xfer, 5.0 * fast_xfer);
}

TEST(Roaming, EstimatorSeesTheSchedule) {
  // A copied device carries the schedule, so FlexFetch's estimates track
  // the current signal automatically.
  Wnic w(scheduled({{10.0, units::mbps(1.0)}}));
  const DeviceRequest req{.lba = 0, .size = 1'000'000, .is_write = false};
  const auto before = w.estimate(0.0, req);
  const auto after = w.estimate(20.0, req);
  EXPECT_GT(after.energy, 3.0 * before.energy);
}

TEST(Roaming, FlexFetchAbandonsADegradedLink) {
  // Paced network-friendly workload; the signal collapses to 1 Mbps
  // halfway. FlexFetch must shift to the disk for the degraded half.
  trace::TraceBuilder b("paced");
  b.process(60, 60);
  for (int i = 0; i < 40; ++i) {
    b.read(1, static_cast<Bytes>(i) * 4 * kMiB, 4 * kMiB);
    b.think(40.0);
  }
  const trace::Trace t = b.build();

  sim::SimConfig config;
  config.wnic.bandwidth_schedule = {{800.0, units::mbps(1.0)}};

  core::FlexFetchPolicy ff(core::FlexFetchConfig{},
                           core::Profile::from_trace(t, 0.020));
  sim::Simulator sf(config, {sim::ProgramSpec{.trace = t, .name = "paced"}},
                    ff);
  const auto ff_result = sf.run();

  policies::WnicOnlyPolicy wnic_only;
  sim::Simulator sw(config, {sim::ProgramSpec{.trace = t, .name = "paced"}},
                    wnic_only);
  const auto wnic_result = sw.run();

  // Some disk traffic appears after the collapse...
  EXPECT_GT(ff_result.disk_bytes, 0u);
  // ...and FlexFetch clearly beats staying on the degraded link.
  EXPECT_LT(ff_result.total_energy(), 0.9 * wnic_result.total_energy());
}

}  // namespace
}  // namespace flexfetch::device
