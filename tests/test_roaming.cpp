// Time-varying WNIC bandwidth (roaming): schedule semantics and the
// adaptive response FlexFetch mounts when the signal degrades mid-run.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/flexfetch.hpp"
#include "device/wnic.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::device {
namespace {

WnicParams scheduled(std::vector<BandwidthStep> steps) {
  WnicParams p = WnicParams::cisco_aironet350();
  p.bandwidth_schedule = std::move(steps);
  return p;
}

TEST(Roaming, EmptyScheduleUsesBaseRate) {
  const WnicParams p = WnicParams::cisco_aironet350();
  EXPECT_DOUBLE_EQ(p.bandwidth_at((Seconds{0.0})).value(), units::mbps(11.0).value());
  EXPECT_DOUBLE_EQ(p.bandwidth_at((Seconds{1e6})).value(), units::mbps(11.0).value());
}

TEST(Roaming, StepsApplyFromTheirStartTime) {
  const WnicParams p = scheduled({{Seconds{100.0}, units::mbps(2.0)},
                                  {Seconds{200.0}, units::mbps(5.5)}});
  EXPECT_DOUBLE_EQ(p.bandwidth_at((Seconds{0.0})).value(), units::mbps(11.0).value());   // Base.
  EXPECT_DOUBLE_EQ(p.bandwidth_at((Seconds{100.0})).value(), units::mbps(2.0).value());  // Inclusive.
  EXPECT_DOUBLE_EQ(p.bandwidth_at((Seconds{150.0})).value(), units::mbps(2.0).value());
  EXPECT_DOUBLE_EQ(p.bandwidth_at((Seconds{500.0})).value(), units::mbps(5.5).value());
}

TEST(Roaming, UnsortedScheduleRejected) {
  WnicParams p = scheduled({{Seconds{200.0}, units::mbps(2.0)},
                            {Seconds{100.0}, units::mbps(5.5)}});
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Roaming, ZeroBandwidthStepRejected) {
  WnicParams p = scheduled({{Seconds{100.0}, BytesPerSecond{0.0}}});
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(Roaming, ServiceUsesTheRateInEffect) {
  Wnic w(scheduled({{Seconds{10.0}, units::mbps(1.0)}}));
  const DeviceRequest req{.lba = Bytes{0}, .size = Bytes{125'000}, .is_write = false};
  const auto fast = w.service(Seconds{0.0}, req);   // At 11 Mbps.
  const auto slow = w.service(Seconds{20.0}, req);  // At 1 Mbps.
  const Seconds fast_xfer = fast.completion - fast.start;
  const Seconds slow_xfer = slow.completion - slow.start;
  EXPECT_GT(slow_xfer, 5.0 * fast_xfer);
}

TEST(Roaming, EstimatorSeesTheSchedule) {
  // A copied device carries the schedule, so FlexFetch's estimates track
  // the current signal automatically.
  Wnic w(scheduled({{Seconds{10.0}, units::mbps(1.0)}}));
  const DeviceRequest req{.lba = Bytes{0}, .size = Bytes{1'000'000}, .is_write = false};
  const auto before = w.estimate(Seconds{0.0}, req);
  const auto after = w.estimate(Seconds{20.0}, req);
  EXPECT_GT(after.energy, 3.0 * before.energy);
}

TEST(Roaming, FlexFetchAbandonsADegradedLink) {
  // Paced network-friendly workload; the signal collapses to 1 Mbps
  // halfway. FlexFetch must shift to the disk for the degraded half.
  trace::TraceBuilder b("paced");
  b.process(60, 60);
  for (int i = 0; i < 40; ++i) {
    b.read(1, static_cast<std::uint64_t>(i) * 4 * kMiB, 4 * kMiB);
    b.think(Seconds{40.0});
  }
  const trace::Trace t = b.build();

  sim::SimConfig config;
  config.wnic.bandwidth_schedule = {{Seconds{800.0}, units::mbps(1.0)}};

  core::FlexFetchPolicy ff(core::FlexFetchConfig{},
                           core::Profile::from_trace(t, Seconds{0.020}));
  sim::Simulator sf(config, {sim::ProgramSpec{.trace = t, .name = "paced"}},
                    ff);
  const auto ff_result = sf.run();

  policies::WnicOnlyPolicy wnic_only;
  sim::Simulator sw(config, {sim::ProgramSpec{.trace = t, .name = "paced"}},
                    wnic_only);
  const auto wnic_result = sw.run();

  // Some disk traffic appears after the collapse...
  EXPECT_GT(ff_result.disk_bytes, Bytes{0});
  // ...and FlexFetch clearly beats staying on the degraded link.
  EXPECT_LT(ff_result.total_energy(), 0.9 * wnic_result.total_energy());
}

}  // namespace
}  // namespace flexfetch::device
