// Fault injection + invariant audit: schedule generation/validation, the
// device-level fault semantics, additivity (an inactive schedule changes
// nothing), the SimAudit invariant checker, and the end-to-end failover
// demo (a mid-stage WNIC disconnection flips FlexFetch network -> disk).
#include "faults/schedule.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "core/flexfetch.hpp"
#include "device/disk.hpp"
#include "device/wnic.hpp"
#include "faults/audit.hpp"
#include "policies/factory.hpp"
#include "sim/simulator.hpp"
#include "workloads/scenarios.hpp"

namespace flexfetch {
namespace {

constexpr double kEps = 1e-9;

device::DeviceRequest read_req(Bytes lba, Bytes size) {
  return device::DeviceRequest{.lba = lba, .size = size, .is_write = false};
}

// ---------------------------------------------------------------------------
// Schedule generation and validation.

TEST(FaultSchedule, GenerationIsDeterministicPerSeed) {
  const auto a = faults::generate_schedule(7);
  const auto b = faults::generate_schedule(7);
  ASSERT_EQ(a.wnic.outages.size(), b.wnic.outages.size());
  for (std::size_t i = 0; i < a.wnic.outages.size(); ++i) {
    EXPECT_EQ(a.wnic.outages[i].start, b.wnic.outages[i].start);
    EXPECT_EQ(a.wnic.outages[i].end, b.wnic.outages[i].end);
  }
  ASSERT_EQ(a.wnic.degradations.size(), b.wnic.degradations.size());
  for (std::size_t i = 0; i < a.wnic.degradations.size(); ++i) {
    EXPECT_EQ(a.wnic.degradations[i].factor, b.wnic.degradations[i].factor);
  }
  ASSERT_EQ(a.disk.spin_up_stalls.size(), b.disk.spin_up_stalls.size());
  for (std::size_t i = 0; i < a.disk.spin_up_stalls.size(); ++i) {
    EXPECT_EQ(a.disk.spin_up_stalls[i].extra_time,
              b.disk.spin_up_stalls[i].extra_time);
    EXPECT_EQ(a.disk.spin_up_stalls[i].extra_energy,
              b.disk.spin_up_stalls[i].extra_energy);
  }
  // A different seed draws a different script.
  const auto c = faults::generate_schedule(8);
  EXPECT_FALSE(a.wnic.outages.size() == c.wnic.outages.size() &&
               !a.wnic.outages.empty() &&
               a.wnic.outages[0].start == c.wnic.outages[0].start);
}

TEST(FaultSchedule, GeneratedScheduleIsNonEmptyAndValid) {
  const auto s = faults::generate_schedule(1);
  EXPECT_FALSE(s.empty());
  EXPECT_NO_THROW(s.validate());
  for (std::size_t i = 1; i < s.wnic.outages.size(); ++i) {
    EXPECT_GE(s.wnic.outages[i].start, s.wnic.outages[i - 1].end);
  }
  for (const auto& d : s.wnic.degradations) {
    EXPECT_GT(d.factor, 0.0);
    EXPECT_LE(d.factor, 1.0);
  }
}

TEST(FaultSchedule, ValidateRejectsOverlappingWindows) {
  faults::FaultSchedule s;
  s.wnic.outages = {{.start = Seconds{0.0}, .end = Seconds{10.0}}, {.start = Seconds{5.0}, .end = Seconds{15.0}}};
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(FaultSchedule, ValidateRejectsBadDegradationFactor) {
  faults::FaultSchedule s;
  s.wnic.degradations = {{.start = Seconds{0.0}, .end = Seconds{10.0}, .factor = 1.5}};
  EXPECT_THROW(s.validate(), ConfigError);
  s.wnic.degradations = {{.start = Seconds{0.0}, .end = Seconds{10.0}, .factor = 0.0}};
  EXPECT_THROW(s.validate(), ConfigError);
}

TEST(FaultSchedule, PointQueriesHonourHalfOpenWindows) {
  faults::WnicFaultSchedule s;
  s.outages = {{.start = Seconds{5.0}, .end = Seconds{15.0}}, {.start = Seconds{20.0}, .end = Seconds{25.0}}};
  EXPECT_EQ(s.outage_at(Seconds{4.999}), nullptr);
  ASSERT_NE(s.outage_at(Seconds{5.0}), nullptr);
  EXPECT_EQ(s.outage_at(Seconds{5.0})->end, Seconds{15.0});
  EXPECT_NE(s.outage_at(Seconds{14.999}), nullptr);
  EXPECT_EQ(s.outage_at(Seconds{15.0}), nullptr);  // End is exclusive.
  EXPECT_NE(s.outage_at(Seconds{22.0}), nullptr);
}

// ---------------------------------------------------------------------------
// Device-level fault semantics.

TEST(FaultWnic, OutageStallsServiceUntilWindowEnd) {
  faults::WnicFaultSchedule schedule;
  schedule.outages = {{.start = Seconds{5.0}, .end = Seconds{15.0}}};
  device::Wnic w;
  w.set_fault_schedule(&schedule);
  const auto res = w.service(Seconds{6.0}, read_req(Bytes{0}, 256 * kKiB));
  EXPECT_NEAR(res.arrival.value(), 6.0, kEps);
  EXPECT_NEAR(res.fault_delay.value(), 9.0, kEps);  // Waits 6.0 -> 15.0.
  EXPECT_GE(res.start, Seconds{15.0 - kEps});
  EXPECT_EQ(w.counters().outage_stalls, 1u);
  EXPECT_NEAR(w.counters().outage_wait.value(), 9.0, kEps);
}

TEST(FaultWnic, DegradationScalesTransferTime) {
  faults::WnicFaultSchedule schedule;
  schedule.degradations = {{.start = Seconds{0.0}, .end = Seconds{100.0}, .factor = 0.5}};
  device::Wnic degraded;
  degraded.set_fault_schedule(&schedule);
  device::Wnic nominal;
  const auto slow = degraded.service(Seconds{0.0}, read_req(Bytes{0}, Bytes{1'375'000}));
  const auto fast = nominal.service(Seconds{0.0}, read_req(Bytes{0}, Bytes{1'375'000}));
  // Same RPC latency; the payload streams at half rate: 2 s vs 1 s.
  EXPECT_NEAR(((slow.completion - slow.start) - (fast.completion - fast.start)).value(),
              1.0, 1e-6);
  EXPECT_EQ(degraded.counters().degraded_transfers, 1u);
  EXPECT_EQ(nominal.counters().degraded_transfers, 0u);
}

TEST(FaultDisk, SpinUpStallStretchesAndChargesTheSpinUp) {
  faults::DiskFaultSchedule schedule;
  schedule.spin_up_stalls = {
      {.start = Seconds{50.0}, .end = Seconds{70.0}, .extra_time = Seconds{3.0}, .extra_energy = Joules{7.5}}};
  device::Disk d;
  d.set_fault_schedule(&schedule);
  d.advance_to(Seconds{60.0});  // Deep standby (spin-down completed at 22.3 s).
  ASSERT_EQ(d.state(), device::DiskState::kStandby);
  const auto res = d.service(Seconds{60.0}, read_req(Bytes{0}, Bytes{35'000}));
  // Nominal spin-up 1.6 s + 3 s of head-load retries.
  EXPECT_NEAR(res.start.value(), 60.0 + 1.6 + 3.0, kEps);
  EXPECT_NEAR(res.fault_delay.value(), 3.0, kEps);
  EXPECT_NEAR(d.meter()[device::EnergyCategory::kSpinUp].value(), 5.0 + 7.5, kEps);
  EXPECT_EQ(d.counters().spin_up_stalls, 1u);
  EXPECT_NEAR(d.counters().stall_time.value(), 3.0, kEps);
}

TEST(FaultDisk, TimeToReadyPricesTheStall) {
  faults::DiskFaultSchedule schedule;
  schedule.spin_up_stalls = {
      {.start = Seconds{50.0}, .end = Seconds{70.0}, .extra_time = Seconds{3.0}, .extra_energy = Joules{7.5}}};
  device::Disk d;
  d.set_fault_schedule(&schedule);
  d.advance_to(Seconds{60.0});
  EXPECT_NEAR(d.time_to_ready((Seconds{60.0})).value(), 1.6 + 3.0, kEps);
  // A spin-up beginning after the window is nominal again.
  EXPECT_NEAR(d.time_to_ready((Seconds{80.0})).value(), 1.6, kEps);
}

TEST(FaultDisk, DetachedCopySharesTheSchedule) {
  faults::DiskFaultSchedule schedule;
  schedule.spin_up_stalls = {
      {.start = Seconds{50.0}, .end = Seconds{70.0}, .extra_time = Seconds{3.0}, .extra_energy = Joules{7.5}}};
  device::Disk d;
  d.set_fault_schedule(&schedule);
  d.advance_to(Seconds{60.0});
  // estimate() replays on a detached copy; the copy must still price the
  // stall, or splice re-evaluation would under-estimate a faulted disk.
  const auto est = d.estimate(Seconds{60.0}, read_req(Bytes{0}, Bytes{35'000}));
  EXPECT_NEAR(est.start.value(), 60.0 + 1.6 + 3.0, kEps);
  EXPECT_EQ(d.counters().spin_up_stalls, 0u);  // Live disk untouched.
}

TEST(FaultDevice, FarFutureScheduleIsInert) {
  // Additivity: a schedule whose windows never intersect the timeline
  // leaves results bit-identical to running with no schedule at all.
  faults::WnicFaultSchedule wnic_far;
  wnic_far.outages = {{.start = Seconds{1e6}, .end = Seconds{1e6 + 60.0}}};
  wnic_far.degradations = {{.start = Seconds{1e6}, .end = Seconds{1e6 + 60.0}, .factor = 0.5}};
  faults::DiskFaultSchedule disk_far;
  disk_far.spin_up_stalls = {
      {.start = Seconds{1e6}, .end = Seconds{1e6 + 60.0}, .extra_time = Seconds{3.0}, .extra_energy = Joules{1.0}}};

  device::Wnic w_faulted, w_plain;
  w_faulted.set_fault_schedule(&wnic_far);
  device::Disk d_faulted, d_plain;
  d_faulted.set_fault_schedule(&disk_far);

  Seconds tw = Seconds{0.0}, td = Seconds{0.0};
  for (int i = 0; i < 8; ++i) {
    const auto rf = w_faulted.service(tw, read_req(Bytes{0}, 256 * kKiB));
    const auto rp = w_plain.service(tw, read_req(Bytes{0}, 256 * kKiB));
    EXPECT_EQ(rf.completion, rp.completion);
    tw = rf.completion + Seconds{i % 2 == 0 ? 30.0 : 0.5};
    const auto df = d_faulted.service(td, read_req(static_cast<std::uint64_t>(i) * kMiB, 64 * kKiB));
    const auto dp = d_plain.service(td, read_req(static_cast<std::uint64_t>(i) * kMiB, 64 * kKiB));
    EXPECT_EQ(df.completion, dp.completion);
    td = df.completion + Seconds{i % 2 == 0 ? 30.0 : 0.5};
  }
  EXPECT_EQ(w_faulted.meter().total(), w_plain.meter().total());
  EXPECT_EQ(d_faulted.meter().total(), d_plain.meter().total());
  EXPECT_EQ(w_faulted.counters().outage_stalls, 0u);
  EXPECT_EQ(w_faulted.counters().degraded_transfers, 0u);
  EXPECT_EQ(d_faulted.counters().spin_up_stalls, 0u);
}

// ---------------------------------------------------------------------------
// SimAudit.

TEST(FaultAudit, PurityCheckPassesWhenNothingMutates) {
  faults::SimAudit audit;
  device::Disk disk;
  device::Wnic wnic;
  const auto snap = audit.capture(disk, wnic, nullptr);
  const auto est = disk.estimate(Seconds{0.0}, read_req(Bytes{0}, 64 * kKiB));  // Pure.
  EXPECT_GT(est.energy, Joules{0.0});
  EXPECT_NO_THROW(audit.check_estimate_purity(snap, disk, wnic, nullptr));
}

TEST(FaultAudit, PurityCheckCatchesLiveMutation) {
  faults::SimAudit audit;
  device::Disk disk;
  device::Wnic wnic;
  const auto snap = audit.capture(disk, wnic, nullptr);
  disk.service(Seconds{0.0}, read_req(Bytes{0}, 64 * kKiB));  // "Leaked" replay.
  EXPECT_THROW(audit.check_estimate_purity(snap, disk, wnic, nullptr),
               InternalError);
}

TEST(FaultAudit, PurityCheckCatchesRecorderLeak) {
  faults::SimAudit audit;
  device::Disk disk;
  device::Wnic wnic;
  telemetry::Recorder rec;
  const auto snap = audit.capture(disk, wnic, &rec);
  static constexpr telemetry::EventDesc kPhantom{.name = "phantom"};
  rec.instant(kPhantom, Seconds{0.0});
  EXPECT_THROW(audit.check_estimate_purity(snap, disk, wnic, &rec),
               InternalError);
}

TEST(FaultAudit, FullSimulationPassesWithAuditEnabled) {
  const auto scenario = workloads::scenario_mplayer(1);
  sim::SimConfig config;
  config.audit.enabled = true;
  config.telemetry.enabled = true;
  config.faults = faults::generate_schedule(3);
  auto policy = policies::make_policy("flexfetch", scenario.profiles,
                                      &scenario.oracle_future);
  sim::Simulator simulator(config, scenario.programs, *policy);
  sim::SimResult r;
  EXPECT_NO_THROW(r = simulator.run());
  EXPECT_GT(r.total_energy(), Joules{0.0});
}

TEST(FaultAudit, EnablingTheAuditNeverChangesResults) {
  const auto scenario = workloads::scenario_mplayer(1);
  sim::SimConfig base;
  base.faults = faults::generate_schedule(3);
  sim::SimConfig audited = base;
  audited.audit.enabled = true;

  auto run_with = [&](const sim::SimConfig& config) {
    auto policy = policies::make_policy("flexfetch", scenario.profiles,
                                        &scenario.oracle_future);
    sim::Simulator simulator(config, scenario.programs, *policy);
    return simulator.run();
  };
  const auto off = run_with(base);
  const auto on = run_with(audited);
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.disk_meter.total(), on.disk_meter.total());
  EXPECT_EQ(off.wnic_meter.total(), on.wnic_meter.total());
  EXPECT_EQ(off.syscalls, on.syscalls);
  EXPECT_EQ(off.disk_requests, on.disk_requests);
  EXPECT_EQ(off.net_requests, on.net_requests);
}

TEST(FaultAudit, TelemetryOnAndOffAgreeUnderFaults) {
  const auto scenario = workloads::scenario_mplayer(1);
  sim::SimConfig off_cfg;
  off_cfg.faults = faults::generate_schedule(5);
  sim::SimConfig on_cfg = off_cfg;
  on_cfg.telemetry.enabled = true;

  auto run_with = [&](const sim::SimConfig& config) {
    auto policy = policies::make_policy("flexfetch", scenario.profiles,
                                        &scenario.oracle_future);
    sim::Simulator simulator(config, scenario.programs, *policy);
    return simulator.run();
  };
  const auto off = run_with(off_cfg);
  const auto on = run_with(on_cfg);
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.disk_meter.total(), on.disk_meter.total());
  EXPECT_EQ(off.wnic_meter.total(), on.wnic_meter.total());
  EXPECT_EQ(off.disk_requests, on.disk_requests);
  EXPECT_EQ(off.net_requests, on.net_requests);
}

// ---------------------------------------------------------------------------
// End-to-end failover: a mid-stage disconnection flips FlexFetch from the
// network to the disk, visible in stats and the exported trace.

TEST(FaultFailover, MidStageOutageFlipsNetworkToDisk) {
  const auto scenario = workloads::scenario_mplayer(1);
  const Seconds span = scenario.programs[0].trace.end_time();

  sim::SimConfig config;
  config.faults.wnic.outages = {
      {.start = span / 3.0, .end = span / 3.0 + Seconds{60.0}}};
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = telemetry::kDefaultRingCapacity;

  auto policy = policies::make_policy("flexfetch", scenario.profiles,
                                      &scenario.oracle_future);
  sim::Simulator simulator(config, scenario.programs, *policy);
  const auto r = simulator.run();

  const auto* ff = dynamic_cast<const core::FlexFetchPolicy*>(policy.get());
  ASSERT_NE(ff, nullptr);
  EXPECT_GE(ff->stats().fault_reevaluations, 1u);
  EXPECT_GE(ff->stats().fault_switches, 1u);

  bool saw_switch = false, saw_splice = false, saw_reevaluate = false;
  for (const auto& ev : r.trace_events) {
    if (std::strcmp(ev.name, "fault.switch") == 0) saw_switch = true;
    if (std::strcmp(ev.name, "fault.reevaluate") == 0) saw_reevaluate = true;
    if (std::strcmp(ev.name, "decision.splice") == 0) saw_splice = true;
  }
  EXPECT_TRUE(saw_reevaluate);
  EXPECT_TRUE(saw_switch);
  EXPECT_TRUE(saw_splice);
  EXPECT_EQ(r.metrics.items().count("ff.fault_switches"), 1u);
}

TEST(FaultFailover, StaticVariantNeverReacts) {
  const auto scenario = workloads::scenario_mplayer(1);
  const Seconds span = scenario.programs[0].trace.end_time();
  sim::SimConfig config;
  config.faults.wnic.outages = {
      {.start = span / 3.0, .end = span / 3.0 + Seconds{60.0}}};

  auto policy = policies::make_policy("flexfetch-static", scenario.profiles,
                                      &scenario.oracle_future);
  sim::Simulator simulator(config, scenario.programs, *policy);
  simulator.run();
  const auto* ff = dynamic_cast<const core::FlexFetchPolicy*>(policy.get());
  ASSERT_NE(ff, nullptr);
  EXPECT_EQ(ff->stats().fault_reevaluations, 0u);
  EXPECT_EQ(ff->stats().fault_switches, 0u);
}

}  // namespace
}  // namespace flexfetch
