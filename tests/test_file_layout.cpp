#include "os/file_layout.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::os {
namespace {

TEST(FileLayout, PlacesFilesSequentiallyWithGaps) {
  FileLayout layout(1 * kGiB, /*seed=*/1, /*min_gap=*/Bytes{4096}, /*max_gap=*/Bytes{8192});
  layout.ensure(1, 100 * kKiB);
  layout.ensure(2, 50 * kKiB);
  const Bytes lba1 = layout.lba(1, Bytes{0});
  const Bytes lba2 = layout.lba(2, Bytes{0});
  EXPECT_GE(lba1, Bytes{4096});  // First gap applied before file 1.
  // File 2 starts after file 1's end plus a gap in [4096, 8192].
  EXPECT_GE(lba2, lba1 + 100 * kKiB + Bytes{4096});
  EXPECT_LE(lba2, lba1 + 100 * kKiB + Bytes{8192});
}

TEST(FileLayout, OffsetIsLinearWithinFile) {
  FileLayout layout(1 * kGiB);
  layout.ensure(1, 1 * kMiB);
  const Bytes base = layout.lba(1, Bytes{0});
  EXPECT_EQ(layout.lba(1, Bytes{4096}), base + Bytes{4096});
  EXPECT_EQ(layout.lba(1, Bytes{999}), base + Bytes{999});
}

TEST(FileLayout, EnsureIsIdempotent) {
  FileLayout layout(1 * kGiB);
  layout.ensure(1, Bytes{100});
  const Bytes lba = layout.lba(1, Bytes{0});
  layout.ensure(1, Bytes{100});
  layout.ensure(1, Bytes{50});  // Smaller: no change.
  EXPECT_EQ(layout.lba(1, Bytes{0}), lba);
  EXPECT_EQ(layout.file_count(), 1u);
}

TEST(FileLayout, GrowingAFileKeepsItsStart) {
  FileLayout layout(1 * kGiB);
  layout.ensure(1, Bytes{100});
  const Bytes lba = layout.lba(1, Bytes{0});
  layout.ensure(1, 10 * kKiB);
  EXPECT_EQ(layout.lba(1, Bytes{0}), lba);
}

TEST(FileLayout, UnknownInodeThrows) {
  FileLayout layout(1 * kGiB);
  EXPECT_THROW(layout.lba(42, Bytes{0}), ConfigError);
  EXPECT_FALSE(layout.contains(42));
}

TEST(FileLayout, DeterministicForSameSeed) {
  FileLayout a(1 * kGiB, 7);
  FileLayout b(1 * kGiB, 7);
  for (trace::Inode i = 1; i <= 20; ++i) {
    a.ensure(i, 10 * kKiB);
    b.ensure(i, 10 * kKiB);
  }
  for (trace::Inode i = 1; i <= 20; ++i) {
    EXPECT_EQ(a.lba(i, Bytes{0}), b.lba(i, Bytes{0})) << "inode " << i;
  }
}

TEST(FileLayout, DifferentSeedsProduceDifferentGaps) {
  FileLayout a(1 * kGiB, 1);
  FileLayout b(1 * kGiB, 2);
  bool any_diff = false;
  for (trace::Inode i = 1; i <= 10; ++i) {
    a.ensure(i, 10 * kKiB);
    b.ensure(i, 10 * kKiB);
    any_diff |= (a.lba(i, Bytes{0}) != b.lba(i, Bytes{0}));
  }
  EXPECT_TRUE(any_diff);
}

TEST(FileLayout, PlaceAllOrdersByInode) {
  FileLayout layout(1 * kGiB, 3);
  std::map<trace::Inode, Bytes> extents{{5, Bytes{4096}}, {1, Bytes{4096}}, {3, Bytes{4096}}};
  layout.place_all(extents);
  EXPECT_LT(layout.lba(1, Bytes{0}), layout.lba(3, Bytes{0}));
  EXPECT_LT(layout.lba(3, Bytes{0}), layout.lba(5, Bytes{0}));
}

TEST(FileLayout, CapacityExhaustionThrows) {
  FileLayout layout(1 * kMiB, 1, Bytes{0}, Bytes{0});
  EXPECT_THROW(layout.ensure(1, 2 * kMiB), ConfigError);
}

TEST(FileLayout, RejectsBadConstruction) {
  EXPECT_THROW(FileLayout(Bytes{0}), ConfigError);
  EXPECT_THROW(FileLayout(kGiB, 1, Bytes{100}, Bytes{50}), ConfigError);
}

TEST(FileLayout, TracksBytesAllocated) {
  FileLayout layout(1 * kGiB, 1, Bytes{0}, Bytes{0});
  layout.ensure(1, Bytes{1000});
  layout.ensure(2, Bytes{2000});
  EXPECT_EQ(layout.bytes_allocated(), Bytes{3000});
  EXPECT_EQ(layout.file_count(), 2u);
}

}  // namespace
}  // namespace flexfetch::os
