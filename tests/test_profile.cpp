#include "core/profile.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "trace/builder.hpp"

namespace flexfetch::core {
namespace {

Profile sample_profile() {
  trace::TraceBuilder b("prog");
  b.read(1, Bytes{0}, Bytes{8192});
  b.think(Seconds{1.0});
  b.read_file(2, Bytes{64 * 1024}, Bytes{16 * 1024});
  b.think(Seconds{2.0});
  b.write(3, Bytes{0}, Bytes{4096});
  return Profile::from_trace(b.build(), Seconds{0.020});
}

TEST(Profile, FromTraceExtractsBursts) {
  const Profile p = sample_profile();
  EXPECT_EQ(p.program(), "prog");
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.total_bytes(), Bytes{8192u + 64u * 1024u + 4096u});
}

TEST(Profile, SpanSeconds) {
  const Profile p = sample_profile();
  EXPECT_NEAR(p.span_seconds().value(), 3.0, 1e-9);
}

TEST(Profile, EmptyProfile) {
  Profile p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.total_bytes(), Bytes{0});
  EXPECT_DOUBLE_EQ(p.span_seconds().value(), 0.0);
  EXPECT_TRUE(p.byte_prefix_sums().size() == 1 && p.byte_prefix_sums()[0] == Bytes{0});
}

TEST(Profile, BytePrefixSums) {
  const Profile p = sample_profile();
  const auto sums = p.byte_prefix_sums();
  ASSERT_EQ(sums.size(), 4u);
  EXPECT_EQ(sums[0], Bytes{0});
  EXPECT_EQ(sums[1], Bytes{8192});
  EXPECT_EQ(sums[2], Bytes{8192u + 64u * 1024u});
  EXPECT_EQ(sums[3], p.total_bytes());
}

TEST(Profile, SpanViewClampsCount) {
  const Profile p = sample_profile();
  EXPECT_EQ(p.span(0, 2).size(), 2u);
  EXPECT_EQ(p.span(2, 10).size(), 1u);
  EXPECT_EQ(p.span(3, 10).size(), 0u);
}

TEST(Profile, MergeInterleavesByStartTime) {
  trace::TraceBuilder a("a");
  a.read(1, Bytes{0}, Bytes{4096});
  a.think(Seconds{10.0});
  a.read(1, Bytes{4096}, Bytes{4096});
  trace::TraceBuilder b("b");
  b.at(Seconds{5.0});
  b.read(2, Bytes{0}, Bytes{4096});
  const Profile merged = Profile::merge(
      {Profile::from_trace(a.build(), Seconds{0.02}), Profile::from_trace(b.build(), Seconds{0.02})},
      "ab");
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].requests[0].inode, 1u);
  EXPECT_EQ(merged[1].requests[0].inode, 2u);
  EXPECT_EQ(merged[2].requests[0].inode, 1u);
  // Think gaps recomputed against the interleaved order.
  EXPECT_NEAR(merged[1].think_before.value(), 5.0, 1e-9);
  EXPECT_NEAR(merged[2].think_before.value(), 5.0, 1e-9);
  EXPECT_EQ(merged.program(), "ab");
}

TEST(Profile, MergeOfSingleProfileKeepsBursts) {
  const Profile p = sample_profile();
  const Profile m = Profile::merge({p}, "solo");
  EXPECT_EQ(m.size(), p.size());
  EXPECT_EQ(m.total_bytes(), p.total_bytes());
}

TEST(Profile, SerializationRoundTrip) {
  const Profile p = sample_profile();
  std::stringstream ss;
  p.write(ss);
  const Profile q = Profile::read(ss);
  EXPECT_EQ(q.program(), p.program());
  ASSERT_EQ(q.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(q[i].think_before.value(), p[i].think_before.value(), 1e-9);
    EXPECT_NEAR(q[i].start.value(), p[i].start.value(), 1e-9);
    EXPECT_NEAR(q[i].duration.value(), p[i].duration.value(), 1e-9);
    ASSERT_EQ(q[i].requests.size(), p[i].requests.size());
    for (std::size_t j = 0; j < p[i].requests.size(); ++j) {
      EXPECT_EQ(q[i].requests[j].inode, p[i].requests[j].inode);
      EXPECT_EQ(q[i].requests[j].offset, p[i].requests[j].offset);
      EXPECT_EQ(q[i].requests[j].size, p[i].requests[j].size);
      EXPECT_EQ(q[i].requests[j].is_write, p[i].requests[j].is_write);
    }
  }
}

TEST(Profile, ReadRejectsBadHeader) {
  std::stringstream ss("garbage\n");
  EXPECT_THROW(Profile::read(ss), TraceError);
}

TEST(Profile, ReadRejectsRequestBeforeBurst) {
  std::stringstream ss("# flexfetch-profile v1 name=x\nreq,1,0,100,0\n");
  EXPECT_THROW(Profile::read(ss), TraceError);
}

TEST(Profile, ReadRejectsTruncatedBurst) {
  std::stringstream ss(
      "# flexfetch-profile v1 name=x\nburst,0.0,0.0,1.0,2\nreq,1,0,100,0\n");
  EXPECT_THROW(Profile::read(ss), TraceError);
}

TEST(Profile, ReadRejectsUnknownTag) {
  std::stringstream ss("# flexfetch-profile v1 name=x\nbogus,1,2\n");
  EXPECT_THROW(Profile::read(ss), TraceError);
}

}  // namespace
}  // namespace flexfetch::core
