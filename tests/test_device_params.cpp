#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/disk_params.hpp"
#include "device/wnic_params.hpp"

namespace flexfetch::device {
namespace {

// Table 1 of the paper: the Hitachi DK23DA parameters.
TEST(DiskParams, DefaultsMatchTable1) {
  const DiskParams p = DiskParams::hitachi_dk23da();
  EXPECT_DOUBLE_EQ(p.active_power.value(), 2.0);
  EXPECT_DOUBLE_EQ(p.idle_power.value(), 1.6);
  EXPECT_DOUBLE_EQ(p.standby_power.value(), 0.15);
  EXPECT_DOUBLE_EQ(p.spin_up_energy.value(), 5.0);
  EXPECT_DOUBLE_EQ(p.spin_down_energy.value(), 2.94);
  EXPECT_DOUBLE_EQ(p.spin_up_time.value(), 1.6);
  EXPECT_DOUBLE_EQ(p.spin_down_time.value(), 2.3);
  EXPECT_DOUBLE_EQ(p.bandwidth.value(), 35e6);
  EXPECT_DOUBLE_EQ(p.avg_seek_time.value(), 0.013);
  EXPECT_DOUBLE_EQ(p.avg_rotation_time.value(), 0.007);
  EXPECT_DOUBLE_EQ(p.spin_down_timeout.value(), 20.0);
  EXPECT_EQ(p.capacity, Bytes{30ull * 1024 * 1024 * 1024});
}

TEST(DiskParams, AccessTimeIsSeekPlusRotation) {
  EXPECT_DOUBLE_EQ(DiskParams{}.access_time().value(), 0.020);
}

TEST(DiskParams, BreakEvenTimeHandComputed) {
  // (E_up + E_down - P_standby*(T_up + T_down)) / (P_idle - P_standby)
  // = (7.94 - 0.15*3.9) / 1.45 = 5.0724...
  EXPECT_NEAR(DiskParams{}.break_even_time().value(), 5.0724, 0.0001);
}

TEST(DiskParams, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(DiskParams{}.validate());
}

TEST(DiskParams, ValidateRejectsBadPowerOrdering) {
  DiskParams p;
  p.standby_power = Watts{2.0};  // Above idle.
  EXPECT_THROW(p.validate(), ConfigError);
  p = DiskParams{};
  p.idle_power = Watts{3.0};  // Above active.
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(DiskParams, ValidateRejectsNonPositiveBandwidthOrTimeout) {
  DiskParams p;
  p.bandwidth = BytesPerSecond{0.0};
  EXPECT_THROW(p.validate(), ConfigError);
  p = DiskParams{};
  p.spin_down_timeout = Seconds{0.0};
  EXPECT_THROW(p.validate(), ConfigError);
}

// Table 2 of the paper: the Cisco Aironet 350 parameters.
TEST(WnicParams, DefaultsMatchTable2) {
  const WnicParams p = WnicParams::cisco_aironet350();
  EXPECT_DOUBLE_EQ(p.psm_idle_power.value(), 0.39);
  EXPECT_DOUBLE_EQ(p.psm_recv_power.value(), 1.42);
  EXPECT_DOUBLE_EQ(p.psm_send_power.value(), 2.48);
  EXPECT_DOUBLE_EQ(p.cam_idle_power.value(), 1.41);
  EXPECT_DOUBLE_EQ(p.cam_recv_power.value(), 2.61);
  EXPECT_DOUBLE_EQ(p.cam_send_power.value(), 3.69);
  EXPECT_DOUBLE_EQ(p.cam_to_psm_delay.value(), 0.41);
  EXPECT_DOUBLE_EQ(p.cam_to_psm_energy.value(), 0.53);
  EXPECT_DOUBLE_EQ(p.psm_to_cam_delay.value(), 0.40);
  EXPECT_DOUBLE_EQ(p.psm_to_cam_energy.value(), 0.51);
  EXPECT_DOUBLE_EQ(p.psm_timeout.value(), 0.8);
  EXPECT_DOUBLE_EQ(p.bandwidth.value(), 11e6 / 8.0);
  EXPECT_DOUBLE_EQ(p.latency.value(), 0.001);
}

TEST(WnicParams, RateSetIs80211b) {
  ASSERT_EQ(WnicParams::k80211bRatesMbps.size(), 4u);
  EXPECT_DOUBLE_EQ(WnicParams::k80211bRatesMbps[0], 1.0);
  EXPECT_DOUBLE_EQ(WnicParams::k80211bRatesMbps[1], 2.0);
  EXPECT_DOUBLE_EQ(WnicParams::k80211bRatesMbps[2], 5.5);
  EXPECT_DOUBLE_EQ(WnicParams::k80211bRatesMbps[3], 11.0);
}

TEST(WnicParams, WithBandwidthAndLatencyAreNonDestructive) {
  const WnicParams base;
  const WnicParams bw = base.with_bandwidth_mbps(2.0);
  EXPECT_DOUBLE_EQ(bw.bandwidth.value(), 2e6 / 8.0);
  EXPECT_DOUBLE_EQ(base.bandwidth.value(), 11e6 / 8.0);
  const WnicParams lat = base.with_latency(Seconds{0.02});
  EXPECT_DOUBLE_EQ(lat.latency.value(), 0.02);
  EXPECT_DOUBLE_EQ(base.latency.value(), 0.001);
}

TEST(WnicParams, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(WnicParams{}.validate());
}

TEST(WnicParams, ValidateRejectsInvertedPowers) {
  WnicParams p;
  p.psm_idle_power = Watts{2.0};  // Above CAM idle.
  EXPECT_THROW(p.validate(), ConfigError);
  p = WnicParams{};
  p.cam_recv_power = Watts{0.5};  // Below CAM idle.
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(WnicParams, ValidateRejectsNegativeLatency) {
  WnicParams p;
  p.latency = -Seconds{0.001};
  EXPECT_THROW(p.validate(), ConfigError);
}

// The paper's motivating comparison (Section 1.1): the WNIC's transition
// costs are far below the disk's.
TEST(Params, WnicTransitionsAreCheaperThanDisk) {
  const DiskParams d;
  const WnicParams w;
  EXPECT_LT(w.psm_to_cam_energy + w.cam_to_psm_energy,
            (d.spin_up_energy + d.spin_down_energy) / 5.0);
  EXPECT_LT(w.psm_to_cam_delay + w.cam_to_psm_delay,
            (d.spin_up_time + d.spin_down_time) / 4.0);
}

}  // namespace
}  // namespace flexfetch::device
