// Randomized differential tests for the arena-backed hot path: the slot-arena
// 2Q cache and the flat C-SCAN scheduler are driven op-for-op against
// reference implementations (the former std::list/std::unordered_map and
// std::map versions, kept verbatim below) and must agree on every return
// value, eviction, stat counter, and dirty-list ordering. This is the
// bit-identity contract of the rewrite: same simulated numbers, new layout.
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "os/buffer_cache.hpp"
#include "os/io_scheduler.hpp"

namespace flexfetch::os {
namespace {

// ---------------------------------------------------------------------------
// Reference 2Q implementation (pre-arena): three std::list queues, a
// std::list dirty list, and two unordered_maps.
// ---------------------------------------------------------------------------

class Reference2Q {
 public:
  explicit Reference2Q(BufferCacheConfig config)
      : capacity_(config.capacity_pages),
        kin_(static_cast<std::size_t>(config.kin_fraction *
                                      static_cast<double>(config.capacity_pages))),
        kout_(static_cast<std::size_t>(
            config.kout_fraction * static_cast<double>(config.capacity_pages))) {
    kin_ = std::max<std::size_t>(kin_, 1);
    kout_ = std::max<std::size_t>(kout_, 1);
  }

  bool lookup(const PageId& id, Seconds /*now*/) {
    ++stats_.lookups;
    auto it = table_.find(id);
    if (it == table_.end()) {
      if (ghost_table_.contains(id)) ++stats_.ghost_hits;
      return false;
    }
    ++stats_.hits;
    Entry& e = it->second;
    if (e.queue == Queue::kAm) am_.splice(am_.begin(), am_, e.pos);
    return true;
  }

  bool contains(const PageId& id) const { return table_.contains(id); }

  std::vector<DirtyPage> fill(const PageId& id, Seconds now) {
    std::vector<DirtyPage> flushed;
    if (table_.contains(id)) return flushed;
    insert_new(id, false, now, flushed);
    return flushed;
  }

  std::vector<DirtyPage> write(const PageId& id, Seconds now) {
    std::vector<DirtyPage> flushed;
    auto it = table_.find(id);
    if (it != table_.end()) {
      Entry& e = it->second;
      if (!e.dirty) mark_dirty(id, e, now);
      if (e.queue == Queue::kAm) am_.splice(am_.begin(), am_, e.pos);
      return flushed;
    }
    insert_new(id, true, now, flushed);
    return flushed;
  }

  void mark_clean(const PageId& id) {
    auto it = table_.find(id);
    if (it == table_.end()) return;
    Entry& e = it->second;
    if (e.dirty) {
      e.dirty = false;
      dirty_.erase(e.dirty_pos);
    }
  }

  std::vector<DirtyPage> dirty_pages() const { return {dirty_.begin(), dirty_.end()}; }

  std::vector<DirtyPage> dirty_pages_older_than(Seconds now, Seconds min_age) const {
    std::vector<DirtyPage> out;
    for (const DirtyPage& d : dirty_) {
      if (now - d.dirtied_at < min_age) break;
      out.push_back(d);
    }
    return out;
  }

  std::size_t size() const { return table_.size(); }
  std::size_t dirty_count() const { return dirty_.size(); }
  const CacheStats& stats() const { return stats_; }

 private:
  enum class Queue : std::uint8_t { kA1in, kAm };

  struct Entry {
    Queue queue;
    std::list<PageId>::iterator pos;
    bool dirty = false;
    Seconds dirtied_at = Seconds{0.0};
    std::list<DirtyPage>::iterator dirty_pos;
  };

  void mark_dirty(const PageId& id, Entry& e, Seconds now) {
    e.dirty = true;
    e.dirtied_at = now;
    auto pos = dirty_.end();
    while (pos != dirty_.begin() && std::prev(pos)->dirtied_at > now) --pos;
    e.dirty_pos = dirty_.insert(pos, DirtyPage{id, now});
  }

  void insert_new(const PageId& id, bool dirty, Seconds now,
                  std::vector<DirtyPage>& flushed) {
    make_room(flushed);
    ++stats_.insertions;
    Entry e;
    if (dirty) mark_dirty(id, e, now);
    auto ghost = ghost_table_.find(id);
    if (ghost != ghost_table_.end()) {
      a1out_.erase(ghost->second);
      ghost_table_.erase(ghost);
      am_.push_front(id);
      e.queue = Queue::kAm;
      e.pos = am_.begin();
    } else {
      a1in_.push_front(id);
      e.queue = Queue::kA1in;
      e.pos = a1in_.begin();
    }
    table_.emplace(id, e);
  }

  void make_room(std::vector<DirtyPage>& flushed) {
    if (table_.size() < capacity_) return;
    if (a1in_.size() > kin_ || am_.empty()) {
      const PageId victim = a1in_.back();
      evict(victim, flushed);
      push_ghost(victim);
    } else {
      const PageId victim = am_.back();
      evict(victim, flushed);
    }
  }

  void evict(const PageId& id, std::vector<DirtyPage>& flushed) {
    auto it = table_.find(id);
    Entry& e = it->second;
    if (e.dirty) {
      flushed.push_back(DirtyPage{id, e.dirtied_at});
      dirty_.erase(e.dirty_pos);
    }
    if (e.queue == Queue::kA1in) {
      a1in_.erase(e.pos);
    } else {
      am_.erase(e.pos);
    }
    table_.erase(it);
    ++stats_.evictions;
  }

  void push_ghost(const PageId& id) {
    a1out_.push_front(id);
    ghost_table_[id] = a1out_.begin();
    while (a1out_.size() > kout_) {
      ghost_table_.erase(a1out_.back());
      a1out_.pop_back();
    }
  }

  std::size_t capacity_;
  std::size_t kin_;
  std::size_t kout_;
  std::list<PageId> a1in_;
  std::list<PageId> am_;
  std::list<PageId> a1out_;
  std::list<DirtyPage> dirty_;
  std::unordered_map<PageId, Entry, PageIdHash> table_;
  std::unordered_map<PageId, std::list<PageId>::iterator, PageIdHash> ghost_table_;
  CacheStats stats_;
};

// ---------------------------------------------------------------------------
// Reference C-SCAN implementation (pre-flattening): std::map keyed by LBA.
// ---------------------------------------------------------------------------

class ReferenceCScan {
 public:
  void submit(const device::DeviceRequest& req) {
    ++stats_.submitted;
    if (!queue_.empty()) {
      auto next = queue_.lower_bound(req.lba);
      if (next != queue_.begin()) {
        auto prev = std::prev(next);
        device::DeviceRequest& p = prev->second;
        if (p.is_write == req.is_write && p.lba + p.size == req.lba) {
          p.size += req.size;
          ++stats_.merged;
          if (next != queue_.end() && next->second.is_write == p.is_write &&
              p.lba + p.size == next->first) {
            p.size += next->second.size;
            queue_.erase(next);
            ++stats_.merged;
          }
          return;
        }
      }
      if (next != queue_.end() && next->second.is_write == req.is_write &&
          req.lba + req.size == next->first) {
        device::DeviceRequest grown = next->second;
        grown.lba = req.lba;
        grown.size += req.size;
        queue_.erase(next);
        queue_.emplace(grown.lba, grown);
        ++stats_.merged;
        return;
      }
    }
    auto [it, inserted] = queue_.emplace(req.lba, req);
    if (!inserted) {
      it->second.size = std::max(it->second.size, req.size);
      ++stats_.merged;
    }
  }

  std::optional<device::DeviceRequest> dispatch() {
    if (queue_.empty()) return std::nullopt;
    auto it = queue_.lower_bound(head_);
    if (it == queue_.end()) {
      it = queue_.begin();
      ++stats_.sweeps;
    }
    device::DeviceRequest req = it->second;
    queue_.erase(it);
    head_ = req.lba + req.size;
    ++stats_.dispatched;
    return req;
  }

  std::size_t pending() const { return queue_.size(); }
  const SchedulerStats& stats() const { return stats_; }

 private:
  std::map<Bytes, device::DeviceRequest> queue_;
  Bytes head_ = Bytes{0};
  SchedulerStats stats_;
};

bool same_dirty(const std::vector<DirtyPage>& a, const std::vector<DirtyPage>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].page != b[i].page || a[i].dirtied_at != b[i].dirtied_at) return false;
  }
  return true;
}

bool same_stats(const CacheStats& a, const CacheStats& b) {
  return a.lookups == b.lookups && a.hits == b.hits &&
         a.ghost_hits == b.ghost_hits && a.insertions == b.insertions &&
         a.evictions == b.evictions;
}

TEST(HotpathDifferential, ArenaCacheMatchesReferenceOverRandomOps) {
  BufferCacheConfig config;
  config.capacity_pages = 64;  // Small capacity => constant eviction churn.
  config.kin_fraction = 0.25;
  config.kout_fraction = 0.5;
  BufferCache arena(config);
  Reference2Q ref(config);

  std::mt19937 rng(0xf1e2d3c4u);
  std::uniform_int_distribution<std::uint64_t> page(0, 255);
  std::uniform_int_distribution<std::uint64_t> inode(1, 3);
  std::uniform_int_distribution<int> op(0, 99);
  Seconds now = Seconds{0.0};

  constexpr int kOps = 150000;
  for (int i = 0; i < kOps; ++i) {
    const PageId id{inode(rng), page(rng)};
    now += Seconds{0.001};
    const int o = op(rng);
    if (o < 35) {  // lookup
      ASSERT_EQ(arena.lookup(id, now), ref.lookup(id, now)) << "op " << i;
    } else if (o < 60) {  // fill
      ASSERT_TRUE(same_dirty(arena.fill(id, now), ref.fill(id, now)))
          << "op " << i;
    } else if (o < 85) {  // write
      ASSERT_TRUE(same_dirty(arena.write(id, now), ref.write(id, now)))
          << "op " << i;
    } else if (o < 92) {  // mark_clean
      arena.mark_clean(id);
      ref.mark_clean(id);
    } else if (o < 96) {  // contains
      ASSERT_EQ(arena.contains(id), ref.contains(id)) << "op " << i;
    } else {  // dirty queries
      ASSERT_TRUE(same_dirty(arena.dirty_pages(), ref.dirty_pages()))
          << "op " << i;
      ASSERT_TRUE(same_dirty(arena.dirty_pages_older_than(now, Seconds{0.05}),
                             ref.dirty_pages_older_than(now, Seconds{0.05})))
          << "op " << i;
    }
    ASSERT_EQ(arena.size(), ref.size()) << "op " << i;
    ASSERT_EQ(arena.dirty_count(), ref.dirty_count()) << "op " << i;
  }
  EXPECT_TRUE(same_stats(arena.stats(), ref.stats()));
  EXPECT_TRUE(same_dirty(arena.dirty_pages(), ref.dirty_pages()));
}

TEST(HotpathDifferential, ArenaCacheMatchesReferenceWithOutOfOrderTimestamps) {
  // Direct API use may mark pages dirty with non-monotone timestamps; the
  // dirty chain must keep the same sorted order as the reference list.
  BufferCacheConfig config;
  config.capacity_pages = 16;
  BufferCache arena(config);
  Reference2Q ref(config);

  std::mt19937 rng(77);
  std::uniform_int_distribution<std::uint64_t> page(0, 31);
  std::uniform_real_distribution<double> when(0.0, 10.0);
  for (int i = 0; i < 20000; ++i) {
    const PageId id{1, page(rng)};
    const Seconds t = Seconds{when(rng)};
    ASSERT_TRUE(same_dirty(arena.write(id, t), ref.write(id, t))) << "op " << i;
    ASSERT_TRUE(same_dirty(arena.dirty_pages(), ref.dirty_pages())) << "op " << i;
  }
}

TEST(HotpathDifferential, FlatCScanMatchesReferenceOverRandomOps) {
  CScanScheduler flat;
  ReferenceCScan ref;

  std::mt19937 rng(0xabad1deau);
  std::uniform_int_distribution<std::uint64_t> lba_page(0, 4095);
  std::uniform_int_distribution<std::uint64_t> npages(1, 8);
  std::uniform_int_distribution<int> coin(0, 99);

  Bytes prev_end = Bytes{0};
  constexpr int kOps = 120000;
  for (int i = 0; i < kOps; ++i) {
    const int c = coin(rng);
    if (c < 70 || ref.pending() == 0) {
      device::DeviceRequest req;
      // Half the submissions extend the previous request to exercise the
      // merge paths; the rest jump to random 4 KiB-aligned positions.
      req.lba = (c % 2 == 0) ? prev_end : Bytes{lba_page(rng) * 4096};
      req.size = Bytes{npages(rng) * 4096};
      req.is_write = c % 5 == 0;
      prev_end = req.lba + req.size;
      flat.submit(req);
      ref.submit(req);
    } else {
      const auto a = flat.dispatch();
      const auto b = ref.dispatch();
      ASSERT_EQ(a.has_value(), b.has_value()) << "op " << i;
      if (a) {
        ASSERT_EQ(a->lba, b->lba) << "op " << i;
        ASSERT_EQ(a->size, b->size) << "op " << i;
        ASSERT_EQ(a->is_write, b->is_write) << "op " << i;
      }
    }
    ASSERT_EQ(flat.pending(), ref.pending()) << "op " << i;
  }
  // Drain both queues completely and compare the final elevator order.
  while (true) {
    const auto a = flat.dispatch();
    const auto b = ref.dispatch();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ASSERT_EQ(a->lba, b->lba);
    ASSERT_EQ(a->size, b->size);
  }
  EXPECT_EQ(flat.stats().submitted, ref.stats().submitted);
  EXPECT_EQ(flat.stats().merged, ref.stats().merged);
  EXPECT_EQ(flat.stats().dispatched, ref.stats().dispatched);
  EXPECT_EQ(flat.stats().sweeps, ref.stats().sweeps);
}

}  // namespace
}  // namespace flexfetch::os
