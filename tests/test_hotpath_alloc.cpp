// Asserts the zero-allocation contract of the arena hot path: once warmed
// up, BufferCache::lookup/fill/write and CScanScheduler::submit/dispatch
// perform no heap allocation. Global operator new/delete are replaced with
// counting versions (this test lives in its own binary for that reason).
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "os/buffer_cache.hpp"
#include "os/io_scheduler.hpp"

namespace {

std::uint64_t g_allocations = 0;

std::uint64_t allocation_count() { return g_allocations; }

void* counted_alloc(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace flexfetch::os {
namespace {

TEST(HotpathAllocation, BufferCacheSteadyStateIsAllocationFree) {
  BufferCacheConfig config;
  config.capacity_pages = 1024;
  BufferCache cache(config);

  std::vector<DirtyPage> flushed;
  flushed.reserve(4096);

  // Warm-up: stream enough pages to fill the cache, the ghost list, and the
  // dirty chain, so every later operation recycles arena slots.
  for (std::uint64_t i = 0; i < 4096; ++i) {
    cache.fill(PageId{1, i}, Seconds{0.001 * static_cast<double>(i)}, flushed);
    if (i % 3 == 0) {
      cache.write(PageId{1, i}, Seconds{0.001 * static_cast<double>(i)}, flushed);
    }
  }
  flushed.clear();

  const std::uint64_t before = allocation_count();
  std::uint64_t hits = 0;
  Seconds now = Seconds{10.0};
  for (std::uint64_t i = 0; i < 100000; ++i) {
    const PageId id{1, 4096 + i % 8192};
    now += Seconds{0.001};
    hits += cache.lookup(id, now) ? 1u : 0u;
    cache.fill(id, now, flushed);
    if (i % 4 == 0) cache.write(PageId{1, i % 512}, now, flushed);
    if (i % 7 == 0) cache.mark_clean(PageId{1, i % 512});
    if (flushed.size() > 2048) flushed.clear();
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "BufferCache steady state allocated " << (after - before)
      << " times (hits=" << hits << ")";
}

TEST(HotpathAllocation, CScanSteadyStateIsAllocationFree) {
  CScanScheduler sched;
  sched.reserve(256);

  const std::uint64_t before = allocation_count();
  Bytes lba = Bytes{0};
  for (std::uint64_t i = 0; i < 100000; ++i) {
    if (i % 4 == 0) lba = Bytes{(i * 7919) % (1ull << 30)};
    sched.submit(device::DeviceRequest{.lba = lba, .size = Bytes{4096}});
    lba += Bytes{4096};
    while (sched.pending() > 128) sched.dispatch();
  }
  while (sched.dispatch()) {
  }
  const std::uint64_t after = allocation_count();
  EXPECT_EQ(after - before, 0u)
      << "CScanScheduler steady state allocated " << (after - before) << " times";
}

TEST(HotpathAllocation, ConstructionAllocatesOnlyFixedStructures) {
  // Sanity check that the counter works at all: construction must allocate
  // (the arena and the open-addressing table).
  const std::uint64_t before = allocation_count();
  BufferCache cache;
  EXPECT_GT(allocation_count(), before);
}

}  // namespace
}  // namespace flexfetch::os
