#include "os/readahead.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::os {
namespace {

TEST(Readahead, FirstReadFetchesMinWindow) {
  Readahead ra;
  const PageRange r = ra.on_read(1, Bytes{0}, Bytes{4096});
  EXPECT_EQ(r.inode, 1u);
  EXPECT_EQ(r.first_page, 0u);
  // One demanded page, but the initial window is 4 pages.
  EXPECT_EQ(r.page_count, 4u);
}

TEST(Readahead, SequentialStreamExtendsAheadOfDemand) {
  Readahead ra;
  ra.on_read(1, Bytes{0}, Bytes{4096});  // Prefetched [0, 4).
  // Page 1: demand nears the edge (1 + window/2 >= 4 after doubling check),
  // so a doubled ahead window is issued past the edge.
  const PageRange r = ra.on_read(1, Bytes{4096}, Bytes{4096});
  EXPECT_EQ(r.first_page, 1u);
  EXPECT_EQ(r.end_page(), 10u);  // last_end (2) + doubled window (8).
}

TEST(Readahead, ReadsDeepInsidePrefetchedAreaDoNotExtend) {
  Readahead ra;
  ra.on_read(1, Bytes{0}, Bytes{4096});      // [0, 4)
  ra.on_read(1, Bytes{4096}, Bytes{4096});   // extend to [.., 10), window 8.
  // Page 2: 3 + 4 < 10 -> stays inside the prefetched area.
  const PageRange r = ra.on_read(1, Bytes{2 * 4096}, Bytes{4096});
  EXPECT_EQ(r.end_page(), 10u);  // No extension beyond the current edge.
  EXPECT_EQ(ra.window_pages(1), 8u);
}

TEST(Readahead, WindowDoublesUpToThePaperCap) {
  Readahead ra;
  // Stream 4 KiB reads through the file; the ahead window must double
  // 4 -> 8 -> 16 -> 32 and then stay at 32 pages (128 KiB).
  std::uint64_t max_window = 0;
  for (std::uint64_t p = 0; p < 200; ++p) {
    ra.on_read(1, Bytes{p * 4096}, Bytes{4096});
    max_window = std::max(max_window, ra.window_pages(1));
  }
  EXPECT_EQ(max_window, 32u);
  EXPECT_EQ(ra.window_pages(1), 32u);
}

TEST(Readahead, SteadyStateExtendsInLargeChunks) {
  Readahead ra;
  std::uint64_t prev_end = 0;
  std::uint64_t extensions = 0;
  for (std::uint64_t p = 0; p < 256; ++p) {
    const PageRange r = ra.on_read(1, Bytes{p * 4096}, Bytes{4096});
    if (r.end_page() > prev_end) {
      ++extensions;
      prev_end = r.end_page();
    }
  }
  // 256 pages streamed with a 32-page steady-state window: extensions must
  // be roughly 256/16..256/32, far fewer than one per read.
  EXPECT_LT(extensions, 20u);
  EXPECT_GE(prev_end, 256u);  // Everything demanded was covered.
}

TEST(Readahead, RandomReadResetsWindow) {
  Readahead ra;
  ra.on_read(1, Bytes{0}, Bytes{4096});
  ra.on_read(1, Bytes{4096}, Bytes{4096});  // Window now 8.
  const PageRange r = ra.on_read(1, Bytes{1000 * 4096}, Bytes{4096});  // Jump.
  EXPECT_EQ(r.page_count, 4u);  // Back to the minimum window.
  EXPECT_EQ(ra.window_pages(1), 4u);
}

TEST(Readahead, LargeDemandDominatesWindow) {
  Readahead ra;
  const PageRange r = ra.on_read(1, Bytes{0}, Bytes{24 * 4096});
  EXPECT_EQ(r.page_count, 24u);  // Demand (24) > min window (4).
}

TEST(Readahead, DemandBeyondCapIsStillFetched) {
  Readahead ra;
  const PageRange r = ra.on_read(1, Bytes{0}, Bytes{64 * 4096});
  EXPECT_EQ(r.page_count, 64u);  // The cap limits prefetch, not demand.
}

TEST(Readahead, PerFileStateIsIndependent) {
  Readahead ra;
  ra.on_read(1, Bytes{0}, Bytes{4096});
  ra.on_read(1, Bytes{4096}, Bytes{4096});  // File 1 window 8.
  const PageRange r = ra.on_read(2, Bytes{0}, Bytes{4096});
  EXPECT_EQ(r.page_count, 4u);  // File 2 starts fresh.
  EXPECT_EQ(ra.window_pages(1), 8u);
  EXPECT_EQ(ra.window_pages(2), 4u);
}

TEST(Readahead, ForgetResetsFileState) {
  Readahead ra;
  ra.on_read(1, Bytes{0}, Bytes{4096});
  ra.on_read(1, Bytes{4096}, Bytes{4096});
  ra.forget(1);
  EXPECT_EQ(ra.window_pages(1), 4u);  // Default for unknown files.
  const PageRange r = ra.on_read(1, Bytes{2 * 4096}, Bytes{4096});
  EXPECT_EQ(r.page_count, 4u);  // Treated as a fresh (random) read.
}

TEST(Readahead, OverlappingContinuationCountsAsSequential) {
  Readahead ra;
  ra.on_read(1, Bytes{0}, Bytes{4 * 4096});  // Demand [0,4), next_demand = 4.
  // Re-read [2,6): starts before the expected page but reaches it.
  const PageRange r = ra.on_read(1, Bytes{2 * 4096}, Bytes{4 * 4096});
  EXPECT_GT(r.end_page(), 6u);  // Extended ahead: treated as sequential.
  EXPECT_EQ(ra.window_pages(1), 8u);
}

TEST(Readahead, BackwardReadIsNotSequential) {
  Readahead ra;
  ra.on_read(1, Bytes{10 * 4096}, Bytes{4096});  // next_demand = 11.
  const PageRange r = ra.on_read(1, Bytes{0}, Bytes{4096});  // Ends at 1 < 11.
  EXPECT_EQ(r.page_count, 4u);
  EXPECT_EQ(ra.window_pages(1), 4u);
}

TEST(Readahead, UnalignedOffsetsCoverWholePages) {
  Readahead ra;
  const PageRange r = ra.on_read(1, Bytes{100}, Bytes{200});  // Inside page 0.
  EXPECT_EQ(r.first_page, 0u);
  EXPECT_GE(r.page_count, 1u);
  const PageRange r2 = ra.on_read(2, Bytes{4000}, Bytes{200});  // Straddles pages 0-1.
  EXPECT_EQ(r2.first_page, 0u);
  EXPECT_GE(r2.page_count, 2u);
}

TEST(Readahead, ZeroSizeRejected) {
  Readahead ra;
  EXPECT_THROW(ra.on_read(1, Bytes{0}, Bytes{0}), ConfigError);
}

TEST(Readahead, ConfigValidation) {
  ReadaheadConfig c;
  c.min_window_pages = 0;
  EXPECT_THROW(Readahead{c}, ConfigError);
  c = ReadaheadConfig{};
  c.max_window_pages = 2;
  c.min_window_pages = 4;
  EXPECT_THROW(Readahead{c}, ConfigError);
}

TEST(PageRange, Accessors) {
  const PageRange r{.inode = 3, .first_page = 2, .page_count = 4};
  EXPECT_EQ(r.end_page(), 6u);
  EXPECT_EQ(r.offset(), Bytes{2u * 4096u});
  EXPECT_EQ(r.size(), Bytes{4u * 4096u});
}

}  // namespace
}  // namespace flexfetch::os
