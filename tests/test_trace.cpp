#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::trace {
namespace {

SyscallRecord rec(Seconds t, OpType op, Inode ino, Bytes off, Bytes size,
                  Seconds dur = Seconds{0.0}) {
  SyscallRecord r;
  r.pid = 100;
  r.pgid = 100;
  r.inode = ino;
  r.offset = off;
  r.size = size;
  r.op = op;
  r.timestamp = t;
  r.duration = dur;
  return r;
}

TEST(Record, OpToString) {
  EXPECT_STREQ(to_string(OpType::kOpen), "open");
  EXPECT_STREQ(to_string(OpType::kClose), "close");
  EXPECT_STREQ(to_string(OpType::kRead), "read");
  EXPECT_STREQ(to_string(OpType::kWrite), "write");
  EXPECT_STREQ(to_string(OpType::kSeek), "seek");
}

TEST(Record, DataTransferClassification) {
  EXPECT_TRUE(rec(Seconds{0}, OpType::kRead, 1, Bytes{0}, Bytes{10}).is_data_transfer());
  EXPECT_TRUE(rec(Seconds{0}, OpType::kWrite, 1, Bytes{0}, Bytes{10}).is_data_transfer());
  EXPECT_FALSE(rec(Seconds{0}, OpType::kOpen, 1, Bytes{0}, Bytes{0}).is_data_transfer());
  EXPECT_FALSE(rec(Seconds{0}, OpType::kSeek, 1, Bytes{0}, Bytes{0}).is_data_transfer());
}

TEST(Record, EndOffset) {
  EXPECT_EQ(rec(Seconds{0}, OpType::kRead, 1, Bytes{100}, Bytes{50}).end_offset(), Bytes{150});
}

TEST(Trace, PushBackKeepsOrder) {
  Trace t("t");
  t.push_back(rec(Seconds{1.0}, OpType::kRead, 1, Bytes{0}, Bytes{10}));
  t.push_back(rec(Seconds{0.5}, OpType::kRead, 2, Bytes{0}, Bytes{10}));  // Out of order on purpose.
  t.push_back(rec(Seconds{2.0}, OpType::kRead, 3, Bytes{0}, Bytes{10}));
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0].timestamp.value(), 0.5);
  EXPECT_DOUBLE_EQ(t[1].timestamp.value(), 1.0);
  EXPECT_DOUBLE_EQ(t[2].timestamp.value(), 2.0);
  EXPECT_NO_THROW(t.validate());
}

TEST(Trace, RejectsZeroSizeTransfer) {
  Trace t;
  EXPECT_THROW(t.push_back(rec(Seconds{0.0}, OpType::kRead, 1, Bytes{0}, Bytes{0})), TraceError);
  EXPECT_NO_THROW(t.push_back(rec(Seconds{0.0}, OpType::kOpen, 1, Bytes{0}, Bytes{0})));
}

TEST(Trace, RejectsNegativeTimestamp) {
  Trace t;
  EXPECT_THROW(t.push_back(rec(Seconds{-1.0}, OpType::kRead, 1, Bytes{0}, Bytes{8})), TraceError);
}

TEST(Trace, StartAndEndTimes) {
  Trace t;
  t.push_back(rec(Seconds{1.0}, OpType::kRead, 1, Bytes{0}, Bytes{10}, Seconds{0.5}));
  t.push_back(rec(Seconds{3.0}, OpType::kRead, 1, Bytes{10}, Bytes{10}, Seconds{0.25}));
  EXPECT_DOUBLE_EQ(t.start_time().value(), 1.0);
  EXPECT_DOUBLE_EQ(t.end_time().value(), 3.25);
}

TEST(Trace, EmptyTimes) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.start_time().value(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time().value(), 0.0);
}

TEST(Trace, StatsCountsReadsAndWrites) {
  Trace t;
  t.push_back(rec(Seconds{0.0}, OpType::kRead, 1, Bytes{0}, Bytes{100}));
  t.push_back(rec(Seconds{1.0}, OpType::kWrite, 2, Bytes{0}, Bytes{50}));
  t.push_back(rec(Seconds{2.0}, OpType::kRead, 1, Bytes{100}, Bytes{100}));
  t.push_back(rec(Seconds{3.0}, OpType::kOpen, 3, Bytes{0}, Bytes{0}));
  const TraceStats s = t.stats();
  EXPECT_EQ(s.records, 4u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.bytes_read, Bytes{200});
  EXPECT_EQ(s.bytes_written, Bytes{50});
  EXPECT_EQ(s.distinct_files, 2u);  // Only data-transfer files counted.
  EXPECT_EQ(s.footprint, Bytes{200u + 50u});
}

TEST(Trace, FileSetIgnoresNonTransfers) {
  Trace t;
  t.push_back(rec(Seconds{0.0}, OpType::kOpen, 9, Bytes{0}, Bytes{0}));
  t.push_back(rec(Seconds{1.0}, OpType::kRead, 1, Bytes{0}, Bytes{10}));
  const auto files = t.file_set();
  EXPECT_EQ(files.size(), 1u);
  EXPECT_TRUE(files.contains(1u));
}

TEST(Trace, FileExtentsTrackMaxEndOffset) {
  Trace t;
  t.push_back(rec(Seconds{0.0}, OpType::kRead, 1, Bytes{0}, Bytes{100}));
  t.push_back(rec(Seconds{1.0}, OpType::kRead, 1, Bytes{500}, Bytes{100}));
  t.push_back(rec(Seconds{2.0}, OpType::kRead, 1, Bytes{50}, Bytes{10}));
  const auto extents = t.file_extents();
  EXPECT_EQ(extents.at(1), Bytes{600});
}

TEST(Trace, ShiftMovesAllTimestamps) {
  Trace t;
  t.push_back(rec(Seconds{1.0}, OpType::kRead, 1, Bytes{0}, Bytes{10}));
  t.push_back(rec(Seconds{2.0}, OpType::kRead, 1, Bytes{10}, Bytes{10}));
  t.shift(Seconds{5.0});
  EXPECT_DOUBLE_EQ(t.start_time().value(), 6.0);
  t.shift(Seconds{-6.0});
  EXPECT_DOUBLE_EQ(t.start_time().value(), 0.0);
}

TEST(Trace, ShiftRejectsNegativeResult) {
  Trace t;
  t.push_back(rec(Seconds{1.0}, OpType::kRead, 1, Bytes{0}, Bytes{10}));
  EXPECT_THROW(t.shift(Seconds{-2.0}), TraceError);
}

TEST(Trace, MergeInterleavesByTimestamp) {
  Trace a;
  a.push_back(rec(Seconds{0.0}, OpType::kRead, 1, Bytes{0}, Bytes{10}));
  a.push_back(rec(Seconds{2.0}, OpType::kRead, 1, Bytes{10}, Bytes{10}));
  Trace b;
  b.push_back(rec(Seconds{1.0}, OpType::kRead, 2, Bytes{0}, Bytes{10}));
  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[1].inode, 2u);
}

TEST(Trace, AppendAfterPlacesSecondTraceAfterFirst) {
  Trace a;
  a.push_back(rec(Seconds{0.0}, OpType::kRead, 1, Bytes{0}, Bytes{10}, Seconds{1.0}));
  Trace b;
  b.push_back(rec(Seconds{100.0}, OpType::kRead, 2, Bytes{0}, Bytes{10}));
  a.append_after(b, Seconds{2.0});
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[1].timestamp.value(), 3.0);  // end (1.0) + gap (2.0).
}

TEST(Trace, ValidateDetectsNegativeDuration) {
  Trace t;
  auto r = rec(Seconds{0.0}, OpType::kRead, 1, Bytes{0}, Bytes{10});
  r.duration = -Seconds{1.0};
  t.push_back(r);
  EXPECT_THROW(t.validate(), TraceError);
}

TEST(Record, ToStringMentionsFields) {
  const std::string s = to_string(rec(Seconds{1.5}, OpType::kWrite, 42, Bytes{100}, Bytes{200}));
  EXPECT_NE(s.find("write"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("200"), std::string::npos);
}

}  // namespace
}  // namespace flexfetch::trace
