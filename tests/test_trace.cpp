#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace flexfetch::trace {
namespace {

SyscallRecord rec(Seconds t, OpType op, Inode ino, Bytes off, Bytes size,
                  Seconds dur = 0.0) {
  SyscallRecord r;
  r.pid = 100;
  r.pgid = 100;
  r.inode = ino;
  r.offset = off;
  r.size = size;
  r.op = op;
  r.timestamp = t;
  r.duration = dur;
  return r;
}

TEST(Record, OpToString) {
  EXPECT_STREQ(to_string(OpType::kOpen), "open");
  EXPECT_STREQ(to_string(OpType::kClose), "close");
  EXPECT_STREQ(to_string(OpType::kRead), "read");
  EXPECT_STREQ(to_string(OpType::kWrite), "write");
  EXPECT_STREQ(to_string(OpType::kSeek), "seek");
}

TEST(Record, DataTransferClassification) {
  EXPECT_TRUE(rec(0, OpType::kRead, 1, 0, 10).is_data_transfer());
  EXPECT_TRUE(rec(0, OpType::kWrite, 1, 0, 10).is_data_transfer());
  EXPECT_FALSE(rec(0, OpType::kOpen, 1, 0, 0).is_data_transfer());
  EXPECT_FALSE(rec(0, OpType::kSeek, 1, 0, 0).is_data_transfer());
}

TEST(Record, EndOffset) {
  EXPECT_EQ(rec(0, OpType::kRead, 1, 100, 50).end_offset(), 150u);
}

TEST(Trace, PushBackKeepsOrder) {
  Trace t("t");
  t.push_back(rec(1.0, OpType::kRead, 1, 0, 10));
  t.push_back(rec(0.5, OpType::kRead, 2, 0, 10));  // Out of order on purpose.
  t.push_back(rec(2.0, OpType::kRead, 3, 0, 10));
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0].timestamp, 0.5);
  EXPECT_DOUBLE_EQ(t[1].timestamp, 1.0);
  EXPECT_DOUBLE_EQ(t[2].timestamp, 2.0);
  EXPECT_NO_THROW(t.validate());
}

TEST(Trace, RejectsZeroSizeTransfer) {
  Trace t;
  EXPECT_THROW(t.push_back(rec(0.0, OpType::kRead, 1, 0, 0)), TraceError);
  EXPECT_NO_THROW(t.push_back(rec(0.0, OpType::kOpen, 1, 0, 0)));
}

TEST(Trace, RejectsNegativeTimestamp) {
  Trace t;
  EXPECT_THROW(t.push_back(rec(-1.0, OpType::kRead, 1, 0, 8)), TraceError);
}

TEST(Trace, StartAndEndTimes) {
  Trace t;
  t.push_back(rec(1.0, OpType::kRead, 1, 0, 10, 0.5));
  t.push_back(rec(3.0, OpType::kRead, 1, 10, 10, 0.25));
  EXPECT_DOUBLE_EQ(t.start_time(), 1.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 3.25);
}

TEST(Trace, EmptyTimes) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 0.0);
}

TEST(Trace, StatsCountsReadsAndWrites) {
  Trace t;
  t.push_back(rec(0.0, OpType::kRead, 1, 0, 100));
  t.push_back(rec(1.0, OpType::kWrite, 2, 0, 50));
  t.push_back(rec(2.0, OpType::kRead, 1, 100, 100));
  t.push_back(rec(3.0, OpType::kOpen, 3, 0, 0));
  const TraceStats s = t.stats();
  EXPECT_EQ(s.records, 4u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.bytes_read, 200u);
  EXPECT_EQ(s.bytes_written, 50u);
  EXPECT_EQ(s.distinct_files, 2u);  // Only data-transfer files counted.
  EXPECT_EQ(s.footprint, 200u + 50u);
}

TEST(Trace, FileSetIgnoresNonTransfers) {
  Trace t;
  t.push_back(rec(0.0, OpType::kOpen, 9, 0, 0));
  t.push_back(rec(1.0, OpType::kRead, 1, 0, 10));
  const auto files = t.file_set();
  EXPECT_EQ(files.size(), 1u);
  EXPECT_TRUE(files.contains(1u));
}

TEST(Trace, FileExtentsTrackMaxEndOffset) {
  Trace t;
  t.push_back(rec(0.0, OpType::kRead, 1, 0, 100));
  t.push_back(rec(1.0, OpType::kRead, 1, 500, 100));
  t.push_back(rec(2.0, OpType::kRead, 1, 50, 10));
  const auto extents = t.file_extents();
  EXPECT_EQ(extents.at(1), 600u);
}

TEST(Trace, ShiftMovesAllTimestamps) {
  Trace t;
  t.push_back(rec(1.0, OpType::kRead, 1, 0, 10));
  t.push_back(rec(2.0, OpType::kRead, 1, 10, 10));
  t.shift(5.0);
  EXPECT_DOUBLE_EQ(t.start_time(), 6.0);
  t.shift(-6.0);
  EXPECT_DOUBLE_EQ(t.start_time(), 0.0);
}

TEST(Trace, ShiftRejectsNegativeResult) {
  Trace t;
  t.push_back(rec(1.0, OpType::kRead, 1, 0, 10));
  EXPECT_THROW(t.shift(-2.0), TraceError);
}

TEST(Trace, MergeInterleavesByTimestamp) {
  Trace a;
  a.push_back(rec(0.0, OpType::kRead, 1, 0, 10));
  a.push_back(rec(2.0, OpType::kRead, 1, 10, 10));
  Trace b;
  b.push_back(rec(1.0, OpType::kRead, 2, 0, 10));
  a.merge(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[1].inode, 2u);
}

TEST(Trace, AppendAfterPlacesSecondTraceAfterFirst) {
  Trace a;
  a.push_back(rec(0.0, OpType::kRead, 1, 0, 10, 1.0));
  Trace b;
  b.push_back(rec(100.0, OpType::kRead, 2, 0, 10));
  a.append_after(b, 2.0);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[1].timestamp, 3.0);  // end (1.0) + gap (2.0).
}

TEST(Trace, ValidateDetectsNegativeDuration) {
  Trace t;
  auto r = rec(0.0, OpType::kRead, 1, 0, 10);
  r.duration = -1.0;
  t.push_back(r);
  EXPECT_THROW(t.validate(), TraceError);
}

TEST(Record, ToStringMentionsFields) {
  const std::string s = to_string(rec(1.5, OpType::kWrite, 42, 100, 200));
  EXPECT_NE(s.find("write"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("200"), std::string::npos);
}

}  // namespace
}  // namespace flexfetch::trace
