#include "common/error.hpp"

#include <gtest/gtest.h>

namespace flexfetch {
namespace {

TEST(Error, HierarchyIsCatchableAsError) {
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw TraceError("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
}

TEST(Error, MessagesCarryPrefix) {
  try {
    throw ConfigError("bad knob");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "config error: bad knob");
  }
  try {
    throw TraceError("bad line");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "trace error: bad line");
  }
}

TEST(Assert, PassingAssertIsSilent) {
  EXPECT_NO_THROW(FF_ASSERT(1 + 1 == 2));
}

TEST(Assert, FailingAssertThrowsInternalError) {
  EXPECT_THROW(FF_ASSERT(false), InternalError);
}

TEST(Assert, MessageNamesExpressionAndLocation) {
  try {
    FF_ASSERT(2 < 1);
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Require, ThrowsConfigErrorWithMessage) {
  try {
    FF_REQUIRE(false, "knob must be positive");
    FAIL() << "should have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("knob must be positive"),
              std::string::npos);
  }
}

TEST(Require, PassingIsSilent) {
  EXPECT_NO_THROW(FF_REQUIRE(true, "never"));
}

}  // namespace
}  // namespace flexfetch
