// Distance-dependent seek model and its interaction with the scheduler.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "device/disk.hpp"
#include "policies/fixed.hpp"
#include "sim/simulator.hpp"
#include "trace/builder.hpp"

namespace flexfetch::device {
namespace {

DiskParams distance_params() {
  DiskParams p = DiskParams::hitachi_dk23da();
  p.seek_model = DiskParams::SeekModel::kDistance;
  return p;
}

TEST(SeekModel, AverageModelIsConstant) {
  const DiskParams p = DiskParams::hitachi_dk23da();
  EXPECT_DOUBLE_EQ(p.seek_time((Bytes{1})).value(), 0.013);
  EXPECT_DOUBLE_EQ(p.seek_time(p.capacity).value(), 0.013);
}

TEST(SeekModel, ZeroDistanceIsFree) {
  EXPECT_DOUBLE_EQ(distance_params().seek_time((Bytes{0})).value(), 0.0);
  EXPECT_DOUBLE_EQ(DiskParams::hitachi_dk23da().seek_time((Bytes{0})).value(), 0.0);
}

TEST(SeekModel, DistanceModelIsMonotonic) {
  const DiskParams p = distance_params();
  Seconds prev = Seconds{0.0};
  for (Bytes d = Bytes{1}; d < p.capacity; d = d * 64) {
    const Seconds t = p.seek_time(d);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(SeekModel, DistanceModelBounds) {
  const DiskParams p = distance_params();
  EXPECT_GE(p.seek_time(Bytes{1}), p.min_seek_time);
  EXPECT_NEAR(p.seek_time(p.capacity).value(), p.max_seek_time.value(), 1e-12);
  // Beyond capacity clamps to the full stroke.
  EXPECT_NEAR(p.seek_time((p.capacity * 2)).value(), p.max_seek_time.value(), 1e-12);
}

TEST(SeekModel, ConcaveShape) {
  // Half the distance costs much more than half of (max-min): sqrt curve.
  const DiskParams p = distance_params();
  const Seconds half = p.seek_time(p.capacity / 2);
  const Seconds full = p.seek_time(p.capacity);
  EXPECT_GT(half - p.min_seek_time, 0.6 * (full - p.min_seek_time));
}

TEST(SeekModel, ValidateRejectsInvertedBounds) {
  DiskParams p = distance_params();
  p.min_seek_time = Seconds{0.05};
  p.max_seek_time = Seconds{0.01};
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(SeekModel, NearRequestsCheaperThanFarOnes) {
  Disk near_disk(distance_params());
  Disk far_disk(distance_params());
  const auto r0 = near_disk.service(Seconds{0.0}, DeviceRequest{.lba = Bytes{0}, .size = Bytes{4096}});
  const auto near_req =
      near_disk.service(r0.completion, DeviceRequest{.lba = Bytes{8192}, .size = Bytes{4096}});
  const auto f0 = far_disk.service(Seconds{0.0}, DeviceRequest{.lba = Bytes{0}, .size = Bytes{4096}});
  const auto far_req = far_disk.service(
      f0.completion, DeviceRequest{.lba = 20ull * kGiB, .size = Bytes{4096}});
  EXPECT_LT(near_req.completion - near_req.arrival,
            far_req.completion - far_req.arrival);
}

TEST(SeekModel, SeekTimeCounterAccumulates) {
  Disk d(distance_params());
  const auto r = d.service(Seconds{0.0}, DeviceRequest{.lba = kGiB, .size = Bytes{4096}});
  EXPECT_GT(d.counters().seek_time, Seconds{0.0});
  EXPECT_LT(d.counters().seek_time, r.completion);
}

TEST(SeekModel, CScanBeatsFifoOnScatteredBatch) {
  // A run of scattered writes flushed in one batch: the elevator must
  // produce less total positioning than age-order dispatch.
  auto build = [] {
    trace::TraceBuilder b("scatter");
    b.process(90, 90);
    const trace::Inode inodes[] = {500, 120, 480, 60, 300, 10, 450, 200,
                                   90, 400, 30, 250};
    for (const auto ino : inodes) {
      b.write(ino, Bytes{0}, 8 * kKiB);
      b.think(Seconds{0.001});
    }
    b.think(Seconds{45.0});
    b.read(999, Bytes{0}, Bytes{4096});
    return b.build();
  };
  sim::SimConfig cscan;
  cscan.disk.seek_model = DiskParams::SeekModel::kDistance;
  cscan.use_cscan = true;
  sim::SimConfig fifo = cscan;
  fifo.use_cscan = false;

  policies::DiskOnlyPolicy p1;
  const auto with = sim::simulate(cscan, build(), p1);
  policies::DiskOnlyPolicy p2;
  const auto without = sim::simulate(fifo, build(), p2);
  EXPECT_LT(with.disk_counters.seek_time, without.disk_counters.seek_time);
  EXPECT_LE(with.total_energy(), without.total_energy());
}

TEST(SeekModel, AverageModelMakesSchedulingIrrelevant) {
  auto build = [] {
    trace::TraceBuilder b("scatter");
    b.process(90, 90);
    for (int i = 0; i < 10; ++i) {
      b.write(1000 + static_cast<trace::Inode>((i * 7) % 10), Bytes{0}, 8 * kKiB);
      b.think(Seconds{0.001});
    }
    b.think(Seconds{45.0});
    b.read(999, Bytes{0}, Bytes{4096});
    return b.build();
  };
  sim::SimConfig cscan;  // Default kAverage seek model.
  cscan.use_cscan = true;
  sim::SimConfig fifo = cscan;
  fifo.use_cscan = false;

  policies::DiskOnlyPolicy p1;
  const auto with = sim::simulate(cscan, build(), p1);
  policies::DiskOnlyPolicy p2;
  const auto without = sim::simulate(fifo, build(), p2);
  // Even with constant per-seek cost, elevator order can only help (it
  // turns LBA-adjacent requests into sequential hits); never hurt.
  EXPECT_LE(with.disk_counters.seek_time,
            without.disk_counters.seek_time + Seconds{1e-9});
}

}  // namespace
}  // namespace flexfetch::device
