#include "trace/strace_import.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace flexfetch::trace {
namespace {

Trace import(const std::string& text, StraceImportOptions options = {}) {
  std::istringstream is(text);
  return import_strace(is, "test", options);
}

TEST(StraceImport, OpenReadCloseRoundTrip) {
  const Trace t = import(
      "1180000000.000000 open(\"/etc/hosts\", O_RDONLY) = 3 <0.000011>\n"
      "1180000000.000100 read(3, \"...\", 4096) = 4096 <0.000042>\n"
      "1180000000.000200 close(3) = 0 <0.000005>\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].op, OpType::kOpen);
  EXPECT_EQ(t[1].op, OpType::kRead);
  EXPECT_EQ(t[1].size, Bytes{4096});
  EXPECT_EQ(t[1].offset, Bytes{0});
  EXPECT_NEAR(t[1].duration.value(), 0.000042, 1e-9);
  EXPECT_EQ(t[2].op, OpType::kClose);
  EXPECT_EQ(t[0].inode, t[1].inode);
}

TEST(StraceImport, TimestampsAreRebased) {
  const Trace t = import(
      "1180000005.500000 open(\"/a\", O_RDONLY) = 3\n"
      "1180000006.500000 read(3, \"\", 100) = 100\n");
  EXPECT_DOUBLE_EQ(t[0].timestamp.value(), 0.0);
  EXPECT_DOUBLE_EQ(t[1].timestamp.value(), 1.0);
}

TEST(StraceImport, RebaseCanBeDisabled) {
  StraceImportOptions o;
  o.rebase_time = false;
  const Trace t = import("5.25 open(\"/a\", O_RDONLY) = 3\n", o);
  EXPECT_DOUBLE_EQ(t[0].timestamp.value(), 5.25);
}

TEST(StraceImport, SequentialReadsAdvanceTheOffset) {
  const Trace t = import(
      "0.0 open(\"/a\", O_RDONLY) = 3\n"
      "0.1 read(3, \"\", 1000) = 1000\n"
      "0.2 read(3, \"\", 1000) = 1000\n"
      "0.3 read(3, \"\", 1000) = 500\n");  // Short read at EOF.
  EXPECT_EQ(t[1].offset, Bytes{0});
  EXPECT_EQ(t[2].offset, Bytes{1000});
  EXPECT_EQ(t[3].offset, Bytes{2000});
  EXPECT_EQ(t[3].size, Bytes{500});  // The result, not the requested count.
}

TEST(StraceImport, LseekRepositionsTheDescriptor) {
  const Trace t = import(
      "0.0 open(\"/a\", O_RDONLY) = 3\n"
      "0.1 lseek(3, 8192, SEEK_SET) = 8192\n"
      "0.2 read(3, \"\", 100) = 100\n");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1].op, OpType::kSeek);
  EXPECT_EQ(t[2].offset, Bytes{8192});
}

TEST(StraceImport, SamePathSharesAnInode) {
  const Trace t = import(
      "0.0 open(\"/a\", O_RDONLY) = 3\n"
      "0.1 close(3) = 0\n"
      "0.2 open(\"/a\", O_RDONLY) = 4\n"
      "0.3 read(4, \"\", 10) = 10\n");
  EXPECT_EQ(t[0].inode, t[2].inode);
  EXPECT_EQ(t[3].inode, t[0].inode);
}

TEST(StraceImport, DistinctPathsGetDistinctInodes) {
  const Trace t = import(
      "0.0 open(\"/a\", O_RDONLY) = 3\n"
      "0.1 open(\"/b\", O_RDONLY) = 4\n");
  EXPECT_NE(t[0].inode, t[1].inode);
}

TEST(StraceImport, FailedCallsAreSkipped) {
  const Trace t = import(
      "0.0 open(\"/missing\", O_RDONLY) = -1 ENOENT (No such file)\n"
      "0.1 open(\"/a\", O_RDONLY) = 3\n"
      "0.2 read(3, \"\", 100) = 0\n"  // EOF.
      "0.3 read(3, \"\", 100) = -1 EAGAIN\n");
  ASSERT_EQ(t.size(), 1u);  // Only the successful open.
  EXPECT_EQ(t[0].op, OpType::kOpen);
}

TEST(StraceImport, UnknownDescriptorsAreIgnored) {
  // Reads on sockets/pipes (fds never opened via open) are not file I/O.
  const Trace t = import("0.0 read(7, \"\", 100) = 100\n");
  EXPECT_TRUE(t.empty());
}

TEST(StraceImport, PidColumnFromDashF) {
  const Trace t = import(
      "2501  1180000000.100000 open(\"/a\", O_RDONLY) = 3\n"
      "2501  1180000000.200000 read(3, \"\", 64) = 64\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].pid, 2501u);
  EXPECT_EQ(t[1].pid, 2501u);
}

TEST(StraceImport, PerPidDescriptorTables) {
  const Trace t = import(
      "1 0.0 open(\"/a\", O_RDONLY) = 3\n"
      "2 0.1 open(\"/b\", O_RDONLY) = 3\n"  // Same fd, different process.
      "1 0.2 read(3, \"\", 10) = 10\n"
      "2 0.3 read(3, \"\", 10) = 10\n");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[2].inode, t[0].inode);
  EXPECT_EQ(t[3].inode, t[1].inode);
  EXPECT_NE(t[2].inode, t[3].inode);
}

TEST(StraceImport, WriteDetection) {
  const Trace t = import(
      "0.0 open(\"/a\", O_WRONLY) = 3\n"
      "0.1 write(3, \"xyz\", 3) = 3\n");
  EXPECT_EQ(t[1].op, OpType::kWrite);
  EXPECT_EQ(t[1].size, Bytes{3});
}

TEST(StraceImport, NoiseLinesAreSkipped) {
  const Trace t = import(
      "--- SIGCHLD {si_signo=SIGCHLD} ---\n"
      "0.0 open(\"/a\", O_RDONLY) = 3\n"
      "0.1 <... read resumed>\"\", 100) = 100\n"
      "+++ exited with 0 +++\n");
  EXPECT_EQ(t.size(), 1u);
}

TEST(StraceImport, PgidOptionIsApplied) {
  StraceImportOptions o;
  o.pgid = 777;
  const Trace t = import("0.0 open(\"/a\", O_RDONLY) = 3\n", o);
  EXPECT_EQ(t[0].pgid, 777u);
}

TEST(StraceImport, MissingFileThrows) {
  EXPECT_THROW(import_strace_file("/no/such/strace.log"), TraceError);
}

TEST(StraceImport, ImportedTraceDrivesBurstExtraction) {
  // End-to-end sanity: the imported trace validates and has usable gaps.
  const Trace t = import(
      "0.000 open(\"/a\", O_RDONLY) = 3\n"
      "0.001 read(3, \"\", 8192) = 8192 <0.0001>\n"
      "2.000 read(3, \"\", 8192) = 8192 <0.0001>\n");
  EXPECT_NO_THROW(t.validate());
  const auto s = t.stats();
  EXPECT_EQ(s.bytes_read, Bytes{16384});
  EXPECT_GT(s.duration, Seconds{1.9});
}

}  // namespace
}  // namespace flexfetch::trace
